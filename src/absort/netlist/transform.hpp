#pragma once
// Circuit inspection and transformation utilities:
//  * validate()      -- structural invariants (no dangling operands, outputs
//                       reachable, arities consistent);
//  * to_dot()        -- Graphviz export for inspecting the constructions
//                       (Fig. 5's patch-up recursion is very visible);
//  * inject_fault()  -- testability: mutate one component (stuck control,
//                       exchanged outputs) so the test suite can show that
//                       the property checks actually detect broken hardware.

#include <cstddef>
#include <string>

#include "absort/netlist/circuit.hpp"

namespace absort::netlist {

/// Structural check; throws std::logic_error with a description on the first
/// violated invariant.  Every builder-produced circuit must pass.
void validate(const Circuit& c);

/// Graphviz dot rendering (component-level; wiring collapses to edges).
/// `max_components` guards against accidentally dumping megacircuits.
[[nodiscard]] std::string to_dot(const Circuit& c, std::size_t max_components = 4096);

enum class FaultKind : std::uint8_t {
  StuckControl0,   ///< switch/mux control reads 0 regardless of its wire
  StuckControl1,   ///< ... reads 1
  OutputsSwapped,  ///< the component's two first outputs are exchanged
};

struct Fault {
  std::size_t component = 0;  ///< index into Circuit::components()
  FaultKind kind = FaultKind::StuckControl0;
};

/// True if `kind` is applicable to the component's Kind (controls exist /
/// two outputs exist).
[[nodiscard]] bool fault_applicable(const Circuit& c, const Fault& f);

/// Evaluates the circuit with one fault injected (the circuit itself is not
/// modified).  Throws if the fault is not applicable.
[[nodiscard]] BitVec eval_with_fault(const Circuit& c, const BitVec& in, const Fault& f);

}  // namespace absort::netlist
