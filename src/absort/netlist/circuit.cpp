#include "absort/netlist/circuit.hpp"

#include <stdexcept>
#include <string>

namespace absort::netlist {
namespace {

constexpr std::array<WireId, 6> no_in() {
  return {kNoWire, kNoWire, kNoWire, kNoWire, kNoWire, kNoWire};
}
constexpr std::array<WireId, 4> no_out() { return {kNoWire, kNoWire, kNoWire, kNoWire}; }

}  // namespace

const char* kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::Input: return "Input";
    case Kind::Const: return "Const";
    case Kind::Not: return "Not";
    case Kind::And: return "And";
    case Kind::Or: return "Or";
    case Kind::Xor: return "Xor";
    case Kind::Mux21: return "Mux21";
    case Kind::Demux12: return "Demux12";
    case Kind::Comparator: return "Comparator";
    case Kind::Switch2x2: return "Switch2x2";
    case Kind::Switch4x4: return "Switch4x4";
  }
  return "?";
}

void Circuit::check_wire(WireId w, const char* ctx) const {
  if (w >= num_wires_) {
    throw std::logic_error(std::string("Circuit: operand wire ") + std::to_string(w) +
                           " does not exist yet in " + ctx);
  }
}

WireId Circuit::input() {
  Component c{Kind::Input, 0, 1, 0, no_in(), no_out()};
  c.out[0] = new_wire();
  comps_.push_back(c);
  input_wires_.push_back(c.out[0]);
  return c.out[0];
}

std::vector<WireId> Circuit::inputs(std::size_t n) {
  std::vector<WireId> ws;
  ws.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ws.push_back(input());
  return ws;
}

WireId Circuit::constant(Bit value) {
  Component c{Kind::Const, 0, 1, static_cast<std::uint8_t>(value & 1), no_in(), no_out()};
  c.out[0] = new_wire();
  comps_.push_back(c);
  return c.out[0];
}

WireId Circuit::not_gate(WireId a) {
  check_wire(a, "not");
  Component c{Kind::Not, 1, 1, 0, no_in(), no_out()};
  c.in[0] = a;
  c.out[0] = new_wire();
  comps_.push_back(c);
  return c.out[0];
}

WireId Circuit::and_gate(WireId a, WireId b) {
  check_wire(a, "and");
  check_wire(b, "and");
  Component c{Kind::And, 2, 1, 0, no_in(), no_out()};
  c.in[0] = a;
  c.in[1] = b;
  c.out[0] = new_wire();
  comps_.push_back(c);
  return c.out[0];
}

WireId Circuit::or_gate(WireId a, WireId b) {
  check_wire(a, "or");
  check_wire(b, "or");
  Component c{Kind::Or, 2, 1, 0, no_in(), no_out()};
  c.in[0] = a;
  c.in[1] = b;
  c.out[0] = new_wire();
  comps_.push_back(c);
  return c.out[0];
}

WireId Circuit::xor_gate(WireId a, WireId b) {
  check_wire(a, "xor");
  check_wire(b, "xor");
  Component c{Kind::Xor, 2, 1, 0, no_in(), no_out()};
  c.in[0] = a;
  c.in[1] = b;
  c.out[0] = new_wire();
  comps_.push_back(c);
  return c.out[0];
}

WireId Circuit::mux(WireId a0, WireId a1, WireId sel) {
  check_wire(a0, "mux");
  check_wire(a1, "mux");
  check_wire(sel, "mux");
  Component c{Kind::Mux21, 3, 1, 0, no_in(), no_out()};
  c.in[0] = a0;
  c.in[1] = a1;
  c.in[2] = sel;
  c.out[0] = new_wire();
  comps_.push_back(c);
  return c.out[0];
}

std::pair<WireId, WireId> Circuit::demux(WireId d, WireId sel) {
  check_wire(d, "demux");
  check_wire(sel, "demux");
  Component c{Kind::Demux12, 2, 2, 0, no_in(), no_out()};
  c.in[0] = d;
  c.in[1] = sel;
  c.out[0] = new_wire();
  c.out[1] = new_wire();
  comps_.push_back(c);
  return {c.out[0], c.out[1]};
}

std::pair<WireId, WireId> Circuit::comparator(WireId a, WireId b) {
  check_wire(a, "comparator");
  check_wire(b, "comparator");
  Component c{Kind::Comparator, 2, 2, 0, no_in(), no_out()};
  c.in[0] = a;
  c.in[1] = b;
  c.out[0] = new_wire();
  c.out[1] = new_wire();
  comps_.push_back(c);
  return {c.out[0], c.out[1]};
}

std::pair<WireId, WireId> Circuit::switch2x2(WireId a, WireId b, WireId ctrl) {
  check_wire(a, "switch2x2");
  check_wire(b, "switch2x2");
  check_wire(ctrl, "switch2x2");
  Component c{Kind::Switch2x2, 3, 2, 0, no_in(), no_out()};
  c.in[0] = a;
  c.in[1] = b;
  c.in[2] = ctrl;
  c.out[0] = new_wire();
  c.out[1] = new_wire();
  comps_.push_back(c);
  return {c.out[0], c.out[1]};
}

std::uint8_t Circuit::register_swap4_patterns(const Swap4Patterns& p) {
  for (const auto& pat : p) {
    for (auto v : pat) {
      if (v > 3) throw std::invalid_argument("register_swap4_patterns: index > 3");
    }
  }
  if (swap4_tables_.size() >= 255) throw std::length_error("too many swap4 pattern tables");
  // Reuse an identical table if already registered.
  for (std::size_t i = 0; i < swap4_tables_.size(); ++i) {
    if (swap4_tables_[i] == p) return static_cast<std::uint8_t>(i);
  }
  swap4_tables_.push_back(p);
  return static_cast<std::uint8_t>(swap4_tables_.size() - 1);
}

std::array<WireId, 4> Circuit::switch4x4(std::array<WireId, 4> d, WireId s0, WireId s1,
                                         std::uint8_t pattern_table) {
  for (WireId w : d) check_wire(w, "switch4x4");
  check_wire(s0, "switch4x4");
  check_wire(s1, "switch4x4");
  if (pattern_table >= swap4_tables_.size()) {
    throw std::invalid_argument("switch4x4: unregistered pattern table");
  }
  Component c{Kind::Switch4x4, 6, 4, pattern_table, no_in(), no_out()};
  for (std::size_t i = 0; i < 4; ++i) c.in[i] = d[i];
  c.in[4] = s0;
  c.in[5] = s1;
  std::array<WireId, 4> out{};
  for (std::size_t i = 0; i < 4; ++i) out[i] = c.out[i] = new_wire();
  comps_.push_back(c);
  return out;
}

void Circuit::mark_output(WireId w) {
  check_wire(w, "mark_output");
  output_wires_.push_back(w);
}

void Circuit::mark_outputs(std::span<const WireId> ws) {
  for (WireId w : ws) mark_output(w);
}

std::array<std::size_t, kNumKinds> Circuit::inventory() const noexcept {
  std::array<std::size_t, kNumKinds> inv{};
  for (const auto& c : comps_) inv[static_cast<std::size_t>(c.kind)]++;
  return inv;
}

BitVec Circuit::eval(const BitVec& in) const {
  std::vector<Bit> wires;
  return eval(in, wires);
}

BitVec Circuit::eval(const BitVec& in, std::vector<Bit>& w) const {
  if (in.size() != input_wires_.size()) {
    throw std::invalid_argument("Circuit::eval: expected " + std::to_string(input_wires_.size()) +
                                " inputs, got " + std::to_string(in.size()));
  }
  w.assign(num_wires_, 0);
  std::size_t next_input = 0;
  for (const auto& c : comps_) {
    switch (c.kind) {
      case Kind::Input:
        w[c.out[0]] = in[next_input++] & 1;
        break;
      case Kind::Const:
        w[c.out[0]] = c.aux;
        break;
      case Kind::Not:
        w[c.out[0]] = static_cast<Bit>(1 - w[c.in[0]]);
        break;
      case Kind::And:
        w[c.out[0]] = static_cast<Bit>(w[c.in[0]] & w[c.in[1]]);
        break;
      case Kind::Or:
        w[c.out[0]] = static_cast<Bit>(w[c.in[0]] | w[c.in[1]]);
        break;
      case Kind::Xor:
        w[c.out[0]] = static_cast<Bit>(w[c.in[0]] ^ w[c.in[1]]);
        break;
      case Kind::Mux21:
        w[c.out[0]] = w[c.in[2]] ? w[c.in[1]] : w[c.in[0]];
        break;
      case Kind::Demux12:
        w[c.out[0]] = w[c.in[1]] ? Bit{0} : w[c.in[0]];
        w[c.out[1]] = w[c.in[1]] ? w[c.in[0]] : Bit{0};
        break;
      case Kind::Comparator:
        w[c.out[0]] = static_cast<Bit>(w[c.in[0]] & w[c.in[1]]);
        w[c.out[1]] = static_cast<Bit>(w[c.in[0]] | w[c.in[1]]);
        break;
      case Kind::Switch2x2:
        if (w[c.in[2]]) {
          w[c.out[0]] = w[c.in[1]];
          w[c.out[1]] = w[c.in[0]];
        } else {
          w[c.out[0]] = w[c.in[0]];
          w[c.out[1]] = w[c.in[1]];
        }
        break;
      case Kind::Switch4x4: {
        const std::size_t s =
            static_cast<std::size_t>(w[c.in[5]]) * 2 + static_cast<std::size_t>(w[c.in[4]]);
        const auto& pat = swap4_tables_[c.aux][s];
        for (std::size_t q = 0; q < 4; ++q) w[c.out[q]] = w[c.in[pat[q]]];
        break;
      }
    }
  }
  BitVec out(output_wires_.size());
  for (std::size_t i = 0; i < output_wires_.size(); ++i) out[i] = w[output_wires_[i]];
  return out;
}

}  // namespace absort::netlist
