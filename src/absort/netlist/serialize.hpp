#pragma once
// Plain-text netlist serialization.
//
// A line-oriented format that round-trips any Circuit -- useful for golden
// files, interop with external tools, and diffing two builds of the same
// construction.  Format (one component per line, wires are implicit ids in
// creation order):
//
//   absort-netlist v1
//   swap4 <idx> <p00> <p01> ... <p33>        # pattern tables first
//   input
//   const <0|1>
//   not <a> | and <a> <b> | or <a> <b> | xor <a> <b>
//   mux <a0> <a1> <sel>
//   demux <d> <sel>
//   comparator <a> <b>
//   switch2 <a> <b> <ctrl>
//   switch4 <table> <d0> <d1> <d2> <d3> <s0> <s1>
//   output <wire>...

#include <iosfwd>
#include <string>

#include "absort/netlist/circuit.hpp"

namespace absort::netlist {

void write_text(std::ostream& os, const Circuit& c);
[[nodiscard]] std::string to_text(const Circuit& c);

/// Parses the format above; throws std::invalid_argument on malformed input.
[[nodiscard]] Circuit read_text(std::istream& is);
[[nodiscard]] Circuit from_text(const std::string& text);

}  // namespace absort::netlist
