#include "absort/netlist/levelized.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace absort::netlist {

LevelizedCircuit::LevelizedCircuit(Circuit c) : circuit_(std::move(c)) {
  const auto& comps = circuit_.components();
  std::vector<std::uint32_t> wire_level(circuit_.num_wires(), 0);
  std::vector<std::uint32_t> comp_level(comps.size(), 0);
  input_pos_.assign(comps.size(), 0);
  std::uint32_t next_input = 0;
  std::uint32_t max_level = 0;
  for (std::size_t i = 0; i < comps.size(); ++i) {
    const auto& comp = comps[i];
    std::uint32_t lvl = 0;
    for (std::size_t j = 0; j < comp.nin; ++j) {
      lvl = std::max(lvl, wire_level[comp.in[j]] + 1);
    }
    comp_level[i] = lvl;
    max_level = std::max(max_level, lvl);
    for (std::size_t j = 0; j < comp.nout; ++j) wire_level[comp.out[j]] = lvl;
    if (comp.kind == Kind::Input) input_pos_[i] = next_input++;
  }
  levels_.assign(max_level + 1, {});
  for (std::size_t i = 0; i < comps.size(); ++i) {
    levels_[comp_level[i]].push_back(static_cast<std::uint32_t>(i));
  }
}

std::size_t LevelizedCircuit::max_level_width() const noexcept {
  std::size_t w = 0;
  for (const auto& l : levels_) w = std::max(w, l.size());
  return w;
}

void LevelizedCircuit::eval_range(const std::vector<std::uint32_t>& level, std::size_t begin,
                                  std::size_t end, std::vector<Bit>& w, const BitVec& in) const {
  const auto& comps = circuit_.components();
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t i = level[idx];
    const auto& c = comps[i];
    switch (c.kind) {
      case Kind::Input: w[c.out[0]] = in[input_pos_[i]] & 1; break;
      case Kind::Const: w[c.out[0]] = c.aux; break;
      case Kind::Not: w[c.out[0]] = static_cast<Bit>(1 - w[c.in[0]]); break;
      case Kind::And: w[c.out[0]] = static_cast<Bit>(w[c.in[0]] & w[c.in[1]]); break;
      case Kind::Or: w[c.out[0]] = static_cast<Bit>(w[c.in[0]] | w[c.in[1]]); break;
      case Kind::Xor: w[c.out[0]] = static_cast<Bit>(w[c.in[0]] ^ w[c.in[1]]); break;
      case Kind::Mux21: w[c.out[0]] = w[c.in[2]] ? w[c.in[1]] : w[c.in[0]]; break;
      case Kind::Demux12:
        w[c.out[0]] = w[c.in[1]] ? Bit{0} : w[c.in[0]];
        w[c.out[1]] = w[c.in[1]] ? w[c.in[0]] : Bit{0};
        break;
      case Kind::Comparator:
        w[c.out[0]] = static_cast<Bit>(w[c.in[0]] & w[c.in[1]]);
        w[c.out[1]] = static_cast<Bit>(w[c.in[0]] | w[c.in[1]]);
        break;
      case Kind::Switch2x2:
        if (w[c.in[2]]) {
          w[c.out[0]] = w[c.in[1]];
          w[c.out[1]] = w[c.in[0]];
        } else {
          w[c.out[0]] = w[c.in[0]];
          w[c.out[1]] = w[c.in[1]];
        }
        break;
      case Kind::Switch4x4: {
        const std::size_t s =
            static_cast<std::size_t>(w[c.in[5]]) * 2 + static_cast<std::size_t>(w[c.in[4]]);
        const auto& pat = circuit_.swap4_tables()[c.aux][s];
        for (std::size_t q = 0; q < 4; ++q) w[c.out[q]] = w[c.in[pat[q]]];
        break;
      }
    }
  }
}

BitVec LevelizedCircuit::eval(const BitVec& in) const {
  if (in.size() != circuit_.num_inputs()) {
    throw std::invalid_argument("LevelizedCircuit::eval: input arity");
  }
  std::vector<Bit> w(circuit_.num_wires(), 0);
  for (const auto& level : levels_) eval_range(level, 0, level.size(), w, in);
  BitVec out(circuit_.num_outputs());
  for (std::size_t i = 0; i < circuit_.output_wires().size(); ++i) {
    out[i] = w[circuit_.output_wires()[i]];
  }
  return out;
}

BitVec LevelizedCircuit::eval_parallel(const BitVec& in, std::size_t threads) const {
  if (in.size() != circuit_.num_inputs()) {
    throw std::invalid_argument("LevelizedCircuit::eval_parallel: input arity");
  }
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  // Clamp to what the widest level can keep busy (one worker per
  // kParallelGrain components, rounding up so any level wide enough to pass
  // the per-level gate below can get more than one worker) so tiny circuits
  // never spawn idle workers.
  constexpr std::size_t kParallelGrain = 4096;
  threads = std::min(
      threads,
      std::max<std::size_t>(1, (max_level_width() + kParallelGrain - 1) / kParallelGrain));
  if (threads == 1) return eval(in);
  std::vector<Bit> w(circuit_.num_wires(), 0);
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (const auto& level : levels_) {
    // Only parallelize wide levels; thread spawn costs dominate narrow ones.
    if (level.size() < kParallelGrain) {
      eval_range(level, 0, level.size(), w, in);
      continue;
    }
    const std::size_t chunk = (level.size() + threads - 1) / threads;
    pool.clear();
    for (std::size_t t = 1; t < threads; ++t) {
      const std::size_t b = std::min(t * chunk, level.size());
      const std::size_t e = std::min(b + chunk, level.size());
      if (b < e) {
        pool.emplace_back([this, &level, b, e, &w, &in] { eval_range(level, b, e, w, in); });
      }
    }
    eval_range(level, 0, std::min(chunk, level.size()), w, in);
    for (auto& th : pool) th.join();
  }
  BitVec out(circuit_.num_outputs());
  for (std::size_t i = 0; i < circuit_.output_wires().size(); ++i) {
    out[i] = w[circuit_.output_wires()[i]];
  }
  return out;
}

}  // namespace absort::netlist
