#include "absort/netlist/program_opt.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <unordered_map>

namespace absort::netlist {
namespace {

using Op = WordInstr::Op;

constexpr std::uint32_t kNone = 0xFFFFFFFFu;

/// An SSA value: op plus value-id operands (a Load's `a` is the primary-input
/// index, not a value id).  Value ids are assigned in creation order, so an
/// operand id is always smaller than its user's id (topological by
/// construction).
struct Val {
  Op op;
  std::uint32_t a = 0, b = 0, c = 0;
};

/// Operand count of each op (ids that reference other values).
constexpr std::size_t arity(Op op) noexcept {
  switch (op) {
    case Op::Load:
    case Op::Const0:
    case Op::Const1:
      return 0;
    case Op::Not:
      return 1;
    case Op::And:
    case Op::Or:
    case Op::Xor:
    case Op::AndNot:
      return 2;
    case Op::Mux:
      return 3;
  }
  return 0;
}

struct KeyHash {
  std::size_t operator()(const std::array<std::uint32_t, 4>& k) const noexcept {
    std::uint64_t h = 1469598103934665603ull;
    for (const auto v : k) {
      h ^= v;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Value-numbering builder: every mk_* applies constant folding and algebraic
/// rewrites first, then interns the residual op so structurally identical
/// computations share one value (CSE).
class Builder {
 public:
  std::vector<Val> vals;

  std::uint32_t intern(Op op, std::uint32_t a = 0, std::uint32_t b = 0, std::uint32_t c = 0) {
    if ((op == Op::And || op == Op::Or || op == Op::Xor) && b < a) std::swap(a, b);
    const std::array<std::uint32_t, 4> key{static_cast<std::uint32_t>(op), a, b, c};
    const auto [it, inserted] = memo_.try_emplace(key, static_cast<std::uint32_t>(vals.size()));
    if (inserted) vals.push_back({op, a, b, c});
    return it->second;
  }

  [[nodiscard]] bool is0(std::uint32_t v) const { return vals[v].op == Op::Const0; }
  [[nodiscard]] bool is1(std::uint32_t v) const { return vals[v].op == Op::Const1; }
  /// True when one value is the NOT of the other.
  [[nodiscard]] bool complements(std::uint32_t v, std::uint32_t w) const {
    return (vals[v].op == Op::Not && vals[v].a == w) ||
           (vals[w].op == Op::Not && vals[w].a == v);
  }
  /// True when a and b are the two outputs of one two-way swap: a = s?y:x
  /// and b = s?x:y.  A symmetric op applied to such a pair is independent of
  /// s -- the pattern every comparator-after-swapper stage exhibits.
  [[nodiscard]] bool swap_pair(std::uint32_t a, std::uint32_t b) const {
    return vals[a].op == Op::Mux && vals[b].op == Op::Mux && vals[a].c == vals[b].c &&
           vals[a].a == vals[b].b && vals[a].b == vals[b].a;
  }

  std::uint32_t mk_const(bool one) { return intern(one ? Op::Const1 : Op::Const0); }

  std::uint32_t mk_not(std::uint32_t a) {
    if (is0(a)) return mk_const(true);
    if (is1(a)) return mk_const(false);
    if (vals[a].op == Op::Not) return vals[a].a;  // ~~x = x
    return intern(Op::Not, a);
  }

  std::uint32_t mk_and(std::uint32_t a, std::uint32_t b) {
    if (a == b) return a;
    if (is0(a) || is0(b)) return mk_const(false);
    if (is1(a)) return b;
    if (is1(b)) return a;
    if (complements(a, b)) return mk_const(false);
    if (swap_pair(a, b)) return mk_and(vals[a].a, vals[a].b);  // min of a swapped pair
    // Absorption and factor rules against each operand's definition.
    for (int side = 0; side < 2; ++side, std::swap(a, b)) {
      const Val& vb = vals[b];
      if (vb.op == Op::Or && (vb.a == a || vb.b == a)) return a;    // a & (a|x) = a
      if (vb.op == Op::And && (vb.a == a || vb.b == a)) return b;   // a & (a&x) = a&x
      if (vb.op == Op::AndNot && vb.a == a) return b;               // a & (a&~x) = a&~x
      if (vb.op == Op::AndNot && vb.b == a) return mk_const(false);  // a & (x&~a) = 0
    }
    // Fuse an inverted operand: a & ~x is one AndNot (the NOT may then die).
    if (vals[b].op == Op::Not) return intern(Op::AndNot, a, vals[b].a);
    if (vals[a].op == Op::Not) return intern(Op::AndNot, b, vals[a].a);
    return intern(Op::And, a, b);
  }

  std::uint32_t mk_or(std::uint32_t a, std::uint32_t b) {
    if (a == b) return a;
    if (is1(a) || is1(b)) return mk_const(true);
    if (is0(a)) return b;
    if (is0(b)) return a;
    if (complements(a, b)) return mk_const(true);
    if (swap_pair(a, b)) return mk_or(vals[a].a, vals[a].b);  // max of a swapped pair
    for (int side = 0; side < 2; ++side, std::swap(a, b)) {
      const Val& vb = vals[b];
      if (vb.op == Op::And && (vb.a == a || vb.b == a)) return a;  // a | (a&x) = a
      if (vb.op == Op::Or && (vb.a == a || vb.b == a)) return b;   // a | (a|x) = a|x
      if (vb.op == Op::AndNot && vb.a == a) return a;              // a | (a&~x) = a
      if (vb.op == Op::AndNot && vb.b == a) return mk_or(a, vb.a);  // a | (x&~a) = a|x
    }
    // Carry fusion: (u&v) | ((u^v)&y) = (u^v) ? y : (u&v) -- one mux instead
    // of the adder's or+and, valid because u&v and u^v are disjoint.
    for (int side = 0; side < 2; ++side, std::swap(a, b)) {
      const Val& va = vals[a];
      const Val& vb = vals[b];
      if (va.op != Op::And || vb.op != Op::And) continue;
      for (int s = 0; s < 2; ++s) {
        const std::uint32_t x = s ? vb.b : vb.a;  // candidate u^v
        const std::uint32_t y = s ? vb.a : vb.b;
        const Val& vx = vals[x];
        if (vx.op == Op::Xor && ((vx.a == va.a && vx.b == va.b) ||
                                 (vx.a == va.b && vx.b == va.a))) {
          return mk_mux(a, y, x);
        }
      }
    }
    return intern(Op::Or, a, b);
  }

  std::uint32_t mk_xor(std::uint32_t a, std::uint32_t b) {
    if (a == b) return mk_const(false);
    if (is0(a)) return b;
    if (is0(b)) return a;
    if (is1(a)) return mk_not(b);
    if (is1(b)) return mk_not(a);
    if (complements(a, b)) return mk_const(true);
    if (swap_pair(a, b)) return mk_xor(vals[a].a, vals[a].b);
    return intern(Op::Xor, a, b);
  }

  std::uint32_t mk_andnot(std::uint32_t a, std::uint32_t b) {  // a & ~b
    if (is0(a) || is1(b)) return mk_const(false);
    if (a == b) return mk_const(false);
    if (is0(b)) return a;
    if (is1(a)) return mk_not(b);
    if (complements(a, b)) return a;  // a & ~~a = a, and ~b & ~b = ~b
    if (vals[b].op == Op::Not) return mk_and(a, vals[b].a);  // a & ~~x = a & x
    return intern(Op::AndNot, a, b);
  }

  std::uint32_t mk_mux(std::uint32_t a, std::uint32_t b, std::uint32_t c) {  // c ? b : a
    if (is0(c)) return a;
    if (is1(c)) return b;
    if (a == b) return a;
    if (vals[c].op == Op::Not) return mk_mux(b, a, vals[c].a);  // ~x ? b : a = x ? a : b
    // Nested mux sharing the select: the inner mux's losing arm is
    // unreachable (back-to-back swappers steered by one signal).
    if (vals[a].op == Op::Mux && vals[a].c == c) return mk_mux(vals[a].a, b, c);
    if (vals[b].op == Op::Mux && vals[b].c == c) return mk_mux(a, vals[b].b, c);
    if (is0(a)) return mk_and(b, c);
    if (is0(b)) return mk_andnot(a, c);
    if (is1(b)) return mk_or(a, c);
    if (is1(a)) return mk_or(b, mk_not(c));  // c ? b : 1 = b | ~c
    if (complements(a, b)) return mk_xor(a, c);  // c ? ~a : a = a ^ c
    if (c == a) return mk_and(a, b);  // a ? b : a
    if (c == b) return mk_or(a, b);   // b ? b : a
    return intern(Op::Mux, a, b, c);
  }

 private:
  std::unordered_map<std::array<std::uint32_t, 4>, std::uint32_t, KeyHash> memo_;
};

}  // namespace

WordProgram optimize_program(const WordProgram& p, ProgramStats* stats) {
  // -- pass 1-5: SSA rename + fold + propagate + value-number, in one walk --
  Builder bld;
  std::vector<std::uint32_t> def(p.num_slots, kNone);  // slot -> current value
  const auto use = [&](std::uint32_t slot) {
    if (slot >= def.size() || def[slot] == kNone) {
      throw std::invalid_argument("optimize_program: read of an unwritten slot");
    }
    return def[slot];
  };
  for (const auto& ins : p.instrs) {
    std::uint32_t v = kNone;
    switch (ins.op) {
      case Op::Load:
        v = bld.intern(Op::Load, ins.a);
        break;
      case Op::Const0:
        v = bld.mk_const(false);
        break;
      case Op::Const1:
        v = bld.mk_const(true);
        break;
      case Op::Not:
        v = bld.mk_not(use(ins.a));
        break;
      case Op::And:
        v = bld.mk_and(use(ins.a), use(ins.b));
        break;
      case Op::Or:
        v = bld.mk_or(use(ins.a), use(ins.b));
        break;
      case Op::Xor:
        v = bld.mk_xor(use(ins.a), use(ins.b));
        break;
      case Op::AndNot:
        v = bld.mk_andnot(use(ins.a), use(ins.b));
        break;
      case Op::Mux:
        v = bld.mk_mux(use(ins.a), use(ins.b), use(ins.c));
        break;
    }
    if (ins.dst >= def.size()) {
      throw std::invalid_argument("optimize_program: dst slot out of range");
    }
    def[ins.dst] = v;
  }
  std::vector<std::uint32_t> out_vals;
  out_vals.reserve(p.output_slots.size());
  for (const auto s : p.output_slots) out_vals.push_back(use(s));

  // -- pass 6: dead-op elimination, backward from the outputs --
  std::vector<char> live(bld.vals.size(), 0);
  for (const auto v : out_vals) live[v] = 1;
  for (std::uint32_t v = static_cast<std::uint32_t>(bld.vals.size()); v-- > 0;) {
    if (!live[v]) continue;
    const Val& val = bld.vals[v];
    const std::size_t n = arity(val.op);
    if (n >= 1) live[val.a] = 1;
    if (n >= 2) live[val.b] = 1;
    if (n >= 3) live[val.c] = 1;
  }

  // -- pass 7: linear-scan slot re-allocation over the live values --
  std::vector<std::uint32_t> pos(bld.vals.size(), kNone);  // value -> emit index
  std::vector<std::uint32_t> order;                        // emit index -> value
  for (std::uint32_t v = 0; v < bld.vals.size(); ++v) {
    if (live[v]) {
      pos[v] = static_cast<std::uint32_t>(order.size());
      order.push_back(v);
    }
  }
  const std::uint32_t kEnd = static_cast<std::uint32_t>(order.size());
  std::vector<std::uint32_t> last(order.size(), 0);  // emit index -> last-use index
  for (std::uint32_t idx = 0; idx < order.size(); ++idx) {
    const Val& val = bld.vals[order[idx]];
    const std::size_t n = arity(val.op);
    if (n >= 1) last[pos[val.a]] = idx;
    if (n >= 2) last[pos[val.b]] = idx;
    if (n >= 3) last[pos[val.c]] = idx;
  }
  for (const auto v : out_vals) last[pos[v]] = kEnd;  // outputs live past the end

  WordProgram out;
  out.num_inputs = p.num_inputs;
  out.instrs.reserve(order.size());
  std::vector<std::uint32_t> slot(order.size(), kNone);
  std::vector<std::uint32_t> free_slots;
  std::uint32_t num_slots = 0;
  std::size_t live_now = 0, peak = 0;
  for (std::uint32_t idx = 0; idx < order.size(); ++idx) {
    const Val& val = bld.vals[order[idx]];
    const std::size_t n = arity(val.op);
    // Release operands dying here *before* allocating dst: the interpreter
    // reads each operand word w before storing dst word w, so in-place reuse
    // of a dying operand's slot is safe and minimizes the working set.
    std::array<std::uint32_t, 3> ops{kNone, kNone, kNone};
    if (n >= 1) ops[0] = val.a;
    if (n >= 2) ops[1] = val.b;
    if (n >= 3) ops[2] = val.c;
    for (std::size_t i = 0; i < n; ++i) {
      bool seen = false;
      for (std::size_t j = 0; j < i; ++j) seen = seen || ops[j] == ops[i];
      if (!seen && last[pos[ops[i]]] == idx) {
        free_slots.push_back(slot[pos[ops[i]]]);
        --live_now;
      }
    }
    ++live_now;
    peak = std::max(peak, live_now);
    std::uint32_t s;
    if (free_slots.empty()) {
      s = num_slots++;
    } else {
      s = free_slots.back();
      free_slots.pop_back();
    }
    slot[idx] = s;
    WordInstr ins{val.op, s, 0, 0, 0};
    if (val.op == Op::Load) ins.a = val.a;  // input index, not a value
    if (n >= 1) ins.a = slot[pos[val.a]];
    if (n >= 2) ins.b = slot[pos[val.b]];
    if (n >= 3) ins.c = slot[pos[val.c]];
    out.instrs.push_back(ins);
  }
  out.num_slots = num_slots;
  out.output_slots.reserve(out_vals.size());
  for (const auto v : out_vals) out.output_slots.push_back(slot[pos[v]]);

  if (stats) {
    stats->ops_before = p.instrs.size();
    stats->ops_after = out.instrs.size();
    stats->slots_before = p.num_slots;
    stats->slots_after = out.num_slots;
    stats->peak_live = peak;
  }
  return out;
}

}  // namespace absort::netlist
