#include "absort/netlist/batch_eval.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>

#include "absort/netlist/levelized.hpp"

namespace absort::netlist {

using wordvec::Vec;
using wordvec::Word;

namespace {

/// Interpreter core over element type T (Word = 64 lanes, wordvec::Vec = one
/// SIMD bundle) with W elements per slot.  The program is straight-line;
/// after slot re-allocation a dst may alias an operand slot, which is safe
/// because each element w reads its operands' element w before storing
/// element w.  Operand pointers are formed inside each case: a Load's `a`
/// is a primary-input index and may exceed num_slots.
template <typename T, std::size_t W>
void run_program(const std::vector<WordInstr>& prog, const T* in, T* buf) {
  const T zero{};
  const T ones = ~zero;
  for (const auto& ins : prog) {
    T* const d = buf + std::size_t{ins.dst} * W;
    switch (ins.op) {
      case WordInstr::Op::Load: {
        const T* const src = in + std::size_t{ins.a} * W;
        for (std::size_t w = 0; w < W; ++w) d[w] = src[w];
        break;
      }
      case WordInstr::Op::Const0:
        for (std::size_t w = 0; w < W; ++w) d[w] = zero;
        break;
      case WordInstr::Op::Const1:
        for (std::size_t w = 0; w < W; ++w) d[w] = ones;
        break;
      case WordInstr::Op::Not: {
        const T* const a = buf + std::size_t{ins.a} * W;
        for (std::size_t w = 0; w < W; ++w) d[w] = ~a[w];
        break;
      }
      case WordInstr::Op::And: {
        const T* const a = buf + std::size_t{ins.a} * W;
        const T* const b = buf + std::size_t{ins.b} * W;
        for (std::size_t w = 0; w < W; ++w) d[w] = a[w] & b[w];
        break;
      }
      case WordInstr::Op::Or: {
        const T* const a = buf + std::size_t{ins.a} * W;
        const T* const b = buf + std::size_t{ins.b} * W;
        for (std::size_t w = 0; w < W; ++w) d[w] = a[w] | b[w];
        break;
      }
      case WordInstr::Op::Xor: {
        const T* const a = buf + std::size_t{ins.a} * W;
        const T* const b = buf + std::size_t{ins.b} * W;
        for (std::size_t w = 0; w < W; ++w) d[w] = a[w] ^ b[w];
        break;
      }
      case WordInstr::Op::AndNot: {
        const T* const a = buf + std::size_t{ins.a} * W;
        const T* const b = buf + std::size_t{ins.b} * W;
        for (std::size_t w = 0; w < W; ++w) d[w] = a[w] & ~b[w];
        break;
      }
      case WordInstr::Op::Mux: {
        const T* const a = buf + std::size_t{ins.a} * W;
        const T* const b = buf + std::size_t{ins.b} * W;
        const T* const c = buf + std::size_t{ins.c} * W;
        for (std::size_t w = 0; w < W; ++w) d[w] = a[w] ^ (c[w] & (a[w] ^ b[w]));
        break;
      }
    }
  }
}

}  // namespace

BitSlicedEvaluator::BitSlicedEvaluator(const Circuit& c, const BatchOptions& opts) {
  compile(c, opts);
}

BitSlicedEvaluator::BitSlicedEvaluator(const LevelizedCircuit& lc, const BatchOptions& opts)
    : BitSlicedEvaluator(lc.circuit(), opts) {}

void BitSlicedEvaluator::compile(const Circuit& c, const BatchOptions& opts) {
  WordProgram raw;
  raw.num_inputs = c.num_inputs();
  std::size_t slots = c.num_wires();
  // Two scratch temporaries shared by every Switch4x4 lowering (the program
  // is sequential; a temp's value is consumed by the very next instructions).
  std::uint32_t t0 = 0, t1 = 0;
  bool have_temps = false;
  auto temps = [&] {
    if (!have_temps) {
      t0 = static_cast<std::uint32_t>(slots++);
      t1 = static_cast<std::uint32_t>(slots++);
      have_temps = true;
    }
  };

  auto& prog = raw.instrs;
  std::uint32_t next_input = 0;
  for (const auto& comp : c.components()) {
    const auto& in = comp.in;
    const auto& out = comp.out;
    switch (comp.kind) {
      case Kind::Input:
        prog.push_back({WordInstr::Op::Load, out[0], next_input++});
        break;
      case Kind::Const:
        prog.push_back({comp.aux ? WordInstr::Op::Const1 : WordInstr::Op::Const0, out[0]});
        break;
      case Kind::Not:
        prog.push_back({WordInstr::Op::Not, out[0], in[0]});
        break;
      case Kind::And:
        prog.push_back({WordInstr::Op::And, out[0], in[0], in[1]});
        break;
      case Kind::Or:
        prog.push_back({WordInstr::Op::Or, out[0], in[0], in[1]});
        break;
      case Kind::Xor:
        prog.push_back({WordInstr::Op::Xor, out[0], in[0], in[1]});
        break;
      case Kind::Mux21:
        prog.push_back({WordInstr::Op::Mux, out[0], in[0], in[1], in[2]});
        break;
      case Kind::Demux12:
        prog.push_back({WordInstr::Op::AndNot, out[0], in[0], in[1]});
        prog.push_back({WordInstr::Op::And, out[1], in[0], in[1]});
        break;
      case Kind::Comparator:
        prog.push_back({WordInstr::Op::And, out[0], in[0], in[1]});
        prog.push_back({WordInstr::Op::Or, out[1], in[0], in[1]});
        break;
      case Kind::Switch2x2:
        prog.push_back({WordInstr::Op::Mux, out[0], in[0], in[1], in[2]});
        prog.push_back({WordInstr::Op::Mux, out[1], in[1], in[0], in[2]});
        break;
      case Kind::Switch4x4: {
        // out[q] = d[pat[s][q]], s = s1*2 + s0: a two-level lane-wise mux
        // tree per output, selecting by s0 then s1.
        temps();
        const auto& pat = c.swap4_tables()[comp.aux];
        for (std::uint32_t q = 0; q < 4; ++q) {
          prog.push_back({WordInstr::Op::Mux, t0, in[pat[0][q]], in[pat[1][q]], in[4]});
          prog.push_back({WordInstr::Op::Mux, t1, in[pat[2][q]], in[pat[3][q]], in[4]});
          prog.push_back({WordInstr::Op::Mux, out[q], t0, t1, in[5]});
        }
        break;
      }
    }
  }
  raw.num_slots = slots;
  raw.output_slots.assign(c.output_wires().begin(), c.output_wires().end());

  if (opts.opt_level >= 1) {
    prog_ = optimize_program(raw, &stats_);
  } else {
    prog_ = std::move(raw);
    stats_.ops_before = stats_.ops_after = prog_.instrs.size();
    stats_.slots_before = stats_.slots_after = prog_.num_slots;
    stats_.peak_live = prog_.num_slots;
  }

  // One selection path for every engine: resolve Auto here (size-aware --
  // Auto declines Native for programs whose kernel could only build at -O0,
  // see kNativeAutoMaxInstrs), then degrade a failed Native build to the
  // Simd interpreter (counted as a jit fallback by build_native_kernel;
  // observable through backend()).
  backend_ = resolve_backend(opts.backend, prog_.instrs.size());
  if (backend_ == Backend::Native) {
    native_ = build_native_kernel(prog_);
    if (!native_) backend_ = Backend::Simd;
  }
}

void BitSlicedEvaluator::eval_pass(std::span<const Word> in_words, std::span<Word> out_words,
                                   std::span<Word> scratch) const {
  if (backend_ == Backend::Native) {
    native_->run_word(in_words.data(), out_words.data());  // slots live in locals: no scratch
    return;
  }
  run_program<Word, 1>(prog_.instrs, in_words.data(), scratch.data());
  const auto& outs = prog_.output_slots;
  for (std::size_t j = 0; j < outs.size(); ++j) out_words[j] = scratch[outs[j]];
}

void BitSlicedEvaluator::eval_pass_simd(const Vec* in, Vec* out, Vec* scratch) const {
  const auto& outs = prog_.output_slots;
  switch (backend_) {
    case Backend::Native:
      native_->run_simd(in, out);
      return;
    case Backend::Interpreter: {
      // Scalar word interpreter over the same memory layout: a Vec slot is
      // kSimdWords consecutive Words, so run_program<Word, kSimdWords> is
      // lane-for-lane the Vec computation without wide ops.
      constexpr std::size_t W = wordvec::kSimdWords;
      const Word* const iw = reinterpret_cast<const Word*>(in);
      Word* const sw = reinterpret_cast<Word*>(scratch);
      Word* const ow = reinterpret_cast<Word*>(out);
      run_program<Word, W>(prog_.instrs, iw, sw);
      for (std::size_t j = 0; j < outs.size(); ++j) {
        for (std::size_t w = 0; w < W; ++w) ow[j * W + w] = sw[std::size_t{outs[j]} * W + w];
      }
      return;
    }
    default:
      run_program<Vec, 1>(prog_.instrs, in, scratch);
      for (std::size_t j = 0; j < outs.size(); ++j) out[j] = scratch[outs[j]];
  }
}

void BitSlicedEvaluator::eval_pass_simd_x2(const Vec* in, Vec* out, Vec* scratch) const {
  const auto& outs = prog_.output_slots;
  switch (backend_) {
    case Backend::Native:
      native_->run_simd_x2(in, out);
      return;
    case Backend::Interpreter: {
      constexpr std::size_t W = 2 * wordvec::kSimdWords;
      const Word* const iw = reinterpret_cast<const Word*>(in);
      Word* const sw = reinterpret_cast<Word*>(scratch);
      Word* const ow = reinterpret_cast<Word*>(out);
      run_program<Word, W>(prog_.instrs, iw, sw);
      for (std::size_t j = 0; j < outs.size(); ++j) {
        for (std::size_t w = 0; w < W; ++w) ow[j * W + w] = sw[std::size_t{outs[j]} * W + w];
      }
      return;
    }
    default:
      run_program<Vec, 2>(prog_.instrs, in, scratch);
      for (std::size_t j = 0; j < outs.size(); ++j) {
        out[j * 2] = scratch[std::size_t{outs[j]} * 2];
        out[j * 2 + 1] = scratch[std::size_t{outs[j]} * 2 + 1];
      }
  }
}

void BitSlicedEvaluator::eval_lane_block(std::span<const BitVec> inputs, std::size_t first,
                                         std::size_t lanes, std::span<BitVec> outputs,
                                         std::vector<Vec>& scratch) const {
  const std::size_t ni = prog_.num_inputs;
  const std::size_t no = prog_.output_slots.size();
  const std::size_t ns = prog_.num_slots;
  if (lanes <= wordvec::kLanes) {
    // Single-word path; carve Word spans out of the Vec scratch.
    const std::size_t words = ni + no + ns;
    scratch.resize((words + wordvec::kSimdWords - 1) / wordvec::kSimdWords);
    Word* const base = reinterpret_cast<Word*>(scratch.data());
    const std::span<Word> in{base, ni};
    const std::span<Word> out{base + ni, no};
    const std::span<Word> buf{base + ni + no, ns};
    wordvec::pack_lanes(inputs, first, lanes, in);
    eval_pass(in, out, buf);
    wordvec::unpack_lanes(out, first, lanes, outputs);
    return;
  }
  // SIMD path: slot s occupies Vec [W*s, W*(s+1)); word w of a slot carries
  // lanes [first + 64w, first + 64w + 64) -- exactly pack_lanes_wide's
  // interleaved layout with words_per_slot = W * kSimdWords.
  const std::size_t W = lanes <= wordvec::kSimdLanes ? 1 : 2;
  const std::size_t wps = W * wordvec::kSimdWords;
  scratch.resize(W * (ni + no + ns));
  Vec* const in = scratch.data();
  Vec* const out = in + W * ni;
  Vec* const buf = out + W * no;
  wordvec::pack_lanes_wide(inputs, first, lanes, wps,
                           {reinterpret_cast<Word*>(in), wps * ni});
  if (W == 1) {
    eval_pass_simd(in, out, buf);
  } else {
    eval_pass_simd_x2(in, out, buf);
  }
  wordvec::unpack_lanes_wide({reinterpret_cast<const Word*>(out), wps * no}, first, lanes, wps,
                             outputs);
}

void BitSlicedEvaluator::check_fixpoint_lane_block(std::span<const BitVec> inputs,
                                                   std::size_t first, std::size_t lanes,
                                                   std::vector<Vec>& scratch,
                                                   std::span<Word> mismatch) const {
  const std::size_t ni = prog_.num_inputs;
  const std::size_t no = prog_.output_slots.size();
  const std::size_t ns = prog_.num_slots;
  if (no != ni) {
    throw std::logic_error("check_fixpoint_lane_block: program is not arity-preserving");
  }
  const std::size_t mwords = wordvec::num_passes(lanes);
  if (mismatch.size() < mwords) {
    throw std::invalid_argument("check_fixpoint_lane_block: mismatch span too small");
  }
  if (lanes <= wordvec::kLanes) {
    const std::size_t words = ni + no + ns;
    scratch.resize((words + wordvec::kSimdWords - 1) / wordvec::kSimdWords);
    Word* const base = reinterpret_cast<Word*>(scratch.data());
    const std::span<Word> in{base, ni};
    const std::span<Word> out{base + ni, no};
    const std::span<Word> buf{base + ni + no, ns};
    wordvec::pack_lanes(inputs, first, lanes, in);
    eval_pass(in, out, buf);
    Word acc = 0;
    for (std::size_t j = 0; j < no; ++j) acc |= in[j] ^ out[j];
    mismatch[0] = acc & wordvec::lane_mask(lanes);
    return;
  }
  const std::size_t W = lanes <= wordvec::kSimdLanes ? 1 : 2;
  const std::size_t wps = W * wordvec::kSimdWords;
  scratch.resize(W * (ni + no + ns));
  Vec* const in = scratch.data();
  Vec* const out = in + W * ni;
  Vec* const buf = out + W * no;
  wordvec::pack_lanes_wide(inputs, first, lanes, wps,
                           {reinterpret_cast<Word*>(in), wps * ni});
  if (W == 1) {
    eval_pass_simd(in, out, buf);
  } else {
    eval_pass_simd_x2(in, out, buf);
  }
  // Word w of any slot carries lanes [first + 64w, first + 64w + 64), so the
  // per-word accumulators line up with `mismatch` directly.
  const Word* const iw = reinterpret_cast<const Word*>(in);
  const Word* const ow = reinterpret_cast<const Word*>(out);
  for (std::size_t w = 0; w < mwords; ++w) {
    Word acc = 0;
    for (std::size_t j = 0; j < no; ++j) acc |= iw[j * wps + w] ^ ow[j * wps + w];
    mismatch[w] = acc;
  }
  if (lanes % wordvec::kLanes != 0) {
    mismatch[mwords - 1] &= wordvec::lane_mask(lanes % wordvec::kLanes);
  }
}

std::vector<BitVec> BitSlicedEvaluator::eval_batch(std::span<const BitVec> inputs) const {
  for (const auto& v : inputs) {
    if (v.size() != num_inputs()) {
      throw std::invalid_argument("BitSlicedEvaluator::eval_batch: input arity");
    }
  }
  std::vector<BitVec> outputs(inputs.size(), BitVec(num_outputs()));
  std::vector<Vec> scratch;
  for (std::size_t first = 0; first < inputs.size(); first += kBlockLanes) {
    eval_lane_block(inputs, first, std::min(kBlockLanes, inputs.size() - first), outputs,
                    scratch);
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// for_each_block_range

void for_each_block_range(std::size_t blocks, std::size_t threads,
                          const std::function<void(std::size_t, std::size_t)>& fn) {
  if (blocks == 0) return;
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  threads = std::min(threads, blocks);
  if (threads <= 1) {
    fn(0, blocks);
    return;
  }
  std::mutex err_m;
  std::exception_ptr err;
  const auto guarded = [&](std::size_t lo, std::size_t hi) {
    try {
      fn(lo, hi);
    } catch (...) {
      std::lock_guard lk(err_m);
      if (!err) err = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  const std::size_t per = blocks / threads;
  const std::size_t rem = blocks % threads;
  std::size_t lo = 0;
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t hi = lo + per + (t < rem ? 1 : 0);
    if (t + 1 < threads) {
      pool.emplace_back(guarded, lo, hi);
    } else {
      guarded(lo, hi);  // calling thread takes the last range
    }
    lo = hi;
  }
  for (auto& t : pool) t.join();
  if (err) std::rethrow_exception(err);
}

// ---------------------------------------------------------------------------
// BatchRunner

BatchRunner::BatchRunner(const Circuit& c, const BatchOptions& opts) : eval_(c, opts) {
  std::size_t threads = opts.threads;
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  max_threads_ = threads;
}

BatchRunner::~BatchRunner() {
  {
    std::lock_guard lk(m_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void BatchRunner::ensure_workers(std::size_t want) {
  while (workers_.size() < want) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void BatchRunner::work(std::uint64_t gen, std::span<const BitVec> inputs,
                       std::span<BitVec> outputs, std::vector<Vec>& scratch) {
  // Claim kBlockLanes-sized blocks until the cursor runs out.  The claim is
  // under the lock and re-validates the generation: a straggler that
  // snapshotted a completed job's spans must never claim blocks of a job
  // started since (its spans may point at a returned caller's buffers).
  std::unique_lock lk(m_);
  while (generation_ == gen && next_block_ < job_blocks_) {
    const std::size_t blk = next_block_++;
    lk.unlock();
    const std::size_t first = blk * kBlockLanes;
    eval_.eval_lane_block(inputs, first, std::min(kBlockLanes, inputs.size() - first), outputs,
                          scratch);
    lk.lock();
  }
}

void BatchRunner::worker_loop() {
  std::vector<Vec> scratch;  // persists across jobs: no allocation once warm
  std::uint64_t seen = 0;
  for (;;) {
    std::span<const BitVec> inputs;
    std::span<BitVec> outputs;
    {
      std::unique_lock lk(m_);
      cv_start_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      inputs = job_inputs_;
      outputs = job_outputs_;
      ++active_;
    }
    work(seen, inputs, outputs, scratch);
    {
      std::lock_guard lk(m_);
      if (--active_ == 0) cv_done_.notify_one();
    }
  }
}

std::vector<BitVec> BatchRunner::run(std::span<const BitVec> inputs) {
  std::vector<BitVec> outputs(inputs.size(), BitVec(eval_.num_outputs()));
  run(inputs, outputs);
  return outputs;
}

void BatchRunner::run(std::span<const BitVec> inputs, std::span<BitVec> outputs) {
  // Enforce the single-caller contract: two concurrent run() calls would
  // race on the job spans and the generation counter and hand one caller's
  // blocks to the other's buffers.  Fail loudly instead.
  if (in_run_.exchange(true, std::memory_order_acquire)) {
    throw std::logic_error("BatchRunner::run: entered from two threads at once");
  }
  struct RunGuard {
    std::atomic<bool>& flag;
    ~RunGuard() { flag.store(false, std::memory_order_release); }
  } guard{in_run_};
  if (outputs.size() != inputs.size()) {
    throw std::invalid_argument("BatchRunner::run: outputs.size() != inputs.size()");
  }
  for (const auto& v : inputs) {
    if (v.size() != eval_.num_inputs()) {
      throw std::invalid_argument("BatchRunner::run: input arity");
    }
  }
  const std::size_t no = eval_.num_outputs();
  for (auto& o : outputs) {
    if (o.size() != no) o.data().resize(no);  // no-op on a recycled buffer
  }
  if (inputs.empty()) return;
  const std::size_t blocks = (inputs.size() + kBlockLanes - 1) / kBlockLanes;
  // Clamp to the pass count: a batch with b blocks can keep at most b
  // workers busy, so never spawn more.
  const std::size_t helpers = std::min(max_threads_, blocks) - 1;
  if (helpers == 0) {
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      const std::size_t first = blk * kBlockLanes;
      eval_.eval_lane_block(inputs, first, std::min(kBlockLanes, inputs.size() - first),
                            outputs, caller_scratch_);
    }
    return;
  }
  std::uint64_t gen;
  {
    std::lock_guard lk(m_);
    ensure_workers(helpers);
    job_inputs_ = inputs;
    job_outputs_ = outputs;
    job_blocks_ = blocks;
    next_block_ = 0;
    gen = ++generation_;
  }
  cv_start_.notify_all();
  work(gen, inputs, outputs, caller_scratch_);
  {
    std::unique_lock lk(m_);
    cv_done_.wait(lk, [&] { return active_ == 0 && next_block_ >= job_blocks_; });
    // Drop the spans while still holding the lock: a straggler waking later
    // snapshots empty spans instead of this caller's (soon-dead) buffers.
    job_inputs_ = {};
    job_outputs_ = {};
  }
}

}  // namespace absort::netlist
