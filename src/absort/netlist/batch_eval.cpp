#include "absort/netlist/batch_eval.hpp"

#include <algorithm>
#include <stdexcept>

#include "absort/netlist/levelized.hpp"

namespace absort::netlist {

using wordvec::Word;

namespace {

/// Lanes processed per work unit: one 4-word-unrolled pass.
constexpr std::size_t kBlockLanes = 4 * wordvec::kLanes;

/// Interpreter core, unrolled over W words per slot.  The program is
/// straight-line and every dst slot is distinct from its operands within an
/// instruction, so the per-word loop vectorizes freely.
template <std::size_t W>
void run_program(const std::vector<WordInstr>& prog, const Word* in, Word* buf) {
  for (const auto& ins : prog) {
    Word* d = buf + std::size_t{ins.dst} * W;
    const Word* a = buf + std::size_t{ins.a} * W;
    const Word* b = buf + std::size_t{ins.b} * W;
    const Word* c = buf + std::size_t{ins.c} * W;
    switch (ins.op) {
      case WordInstr::Op::Load: {
        const Word* src = in + std::size_t{ins.a} * W;
        for (std::size_t w = 0; w < W; ++w) d[w] = src[w];
        break;
      }
      case WordInstr::Op::Const0:
        for (std::size_t w = 0; w < W; ++w) d[w] = 0;
        break;
      case WordInstr::Op::Const1:
        for (std::size_t w = 0; w < W; ++w) d[w] = ~Word{0};
        break;
      case WordInstr::Op::Not:
        for (std::size_t w = 0; w < W; ++w) d[w] = ~a[w];
        break;
      case WordInstr::Op::And:
        for (std::size_t w = 0; w < W; ++w) d[w] = a[w] & b[w];
        break;
      case WordInstr::Op::Or:
        for (std::size_t w = 0; w < W; ++w) d[w] = a[w] | b[w];
        break;
      case WordInstr::Op::Xor:
        for (std::size_t w = 0; w < W; ++w) d[w] = a[w] ^ b[w];
        break;
      case WordInstr::Op::AndNot:
        for (std::size_t w = 0; w < W; ++w) d[w] = a[w] & ~b[w];
        break;
      case WordInstr::Op::Mux:
        for (std::size_t w = 0; w < W; ++w) d[w] = a[w] ^ (c[w] & (a[w] ^ b[w]));
        break;
    }
  }
}

}  // namespace

BitSlicedEvaluator::BitSlicedEvaluator(const Circuit& c) { compile(c); }

BitSlicedEvaluator::BitSlicedEvaluator(const LevelizedCircuit& lc)
    : BitSlicedEvaluator(lc.circuit()) {}

void BitSlicedEvaluator::compile(const Circuit& c) {
  num_inputs_ = c.num_inputs();
  std::size_t slots = c.num_wires();
  // Two scratch temporaries shared by every Switch4x4 lowering (the program
  // is sequential; a temp's value is consumed by the very next instructions).
  std::uint32_t t0 = 0, t1 = 0;
  bool have_temps = false;
  auto temps = [&] {
    if (!have_temps) {
      t0 = static_cast<std::uint32_t>(slots++);
      t1 = static_cast<std::uint32_t>(slots++);
      have_temps = true;
    }
  };

  std::uint32_t next_input = 0;
  for (const auto& comp : c.components()) {
    const auto& in = comp.in;
    const auto& out = comp.out;
    switch (comp.kind) {
      case Kind::Input:
        prog_.push_back({WordInstr::Op::Load, out[0], next_input++});
        break;
      case Kind::Const:
        prog_.push_back({comp.aux ? WordInstr::Op::Const1 : WordInstr::Op::Const0, out[0]});
        break;
      case Kind::Not:
        prog_.push_back({WordInstr::Op::Not, out[0], in[0]});
        break;
      case Kind::And:
        prog_.push_back({WordInstr::Op::And, out[0], in[0], in[1]});
        break;
      case Kind::Or:
        prog_.push_back({WordInstr::Op::Or, out[0], in[0], in[1]});
        break;
      case Kind::Xor:
        prog_.push_back({WordInstr::Op::Xor, out[0], in[0], in[1]});
        break;
      case Kind::Mux21:
        prog_.push_back({WordInstr::Op::Mux, out[0], in[0], in[1], in[2]});
        break;
      case Kind::Demux12:
        prog_.push_back({WordInstr::Op::AndNot, out[0], in[0], in[1]});
        prog_.push_back({WordInstr::Op::And, out[1], in[0], in[1]});
        break;
      case Kind::Comparator:
        prog_.push_back({WordInstr::Op::And, out[0], in[0], in[1]});
        prog_.push_back({WordInstr::Op::Or, out[1], in[0], in[1]});
        break;
      case Kind::Switch2x2:
        prog_.push_back({WordInstr::Op::Mux, out[0], in[0], in[1], in[2]});
        prog_.push_back({WordInstr::Op::Mux, out[1], in[1], in[0], in[2]});
        break;
      case Kind::Switch4x4: {
        // out[q] = d[pat[s][q]], s = s1*2 + s0: a two-level lane-wise mux
        // tree per output, selecting by s0 then s1.
        temps();
        const auto& pat = c.swap4_tables()[comp.aux];
        for (std::uint32_t q = 0; q < 4; ++q) {
          prog_.push_back({WordInstr::Op::Mux, t0, in[pat[0][q]], in[pat[1][q]], in[4]});
          prog_.push_back({WordInstr::Op::Mux, t1, in[pat[2][q]], in[pat[3][q]], in[4]});
          prog_.push_back({WordInstr::Op::Mux, out[q], t0, t1, in[5]});
        }
        break;
      }
    }
  }
  num_slots_ = slots;
  output_slots_.assign(c.output_wires().begin(), c.output_wires().end());
}

void BitSlicedEvaluator::eval_pass(std::span<const Word> in_words, std::span<Word> out_words,
                                   std::span<Word> scratch) const {
  run_program<1>(prog_, in_words.data(), scratch.data());
  for (std::size_t j = 0; j < output_slots_.size(); ++j) out_words[j] = scratch[output_slots_[j]];
}

void BitSlicedEvaluator::eval_pass_x4(std::span<const Word> in_words, std::span<Word> out_words,
                                      std::span<Word> scratch) const {
  run_program<4>(prog_, in_words.data(), scratch.data());
  for (std::size_t j = 0; j < output_slots_.size(); ++j) {
    for (std::size_t w = 0; w < 4; ++w) {
      out_words[j * 4 + w] = scratch[std::size_t{output_slots_[j]} * 4 + w];
    }
  }
}

void BitSlicedEvaluator::eval_lane_block(std::span<const BitVec> inputs, std::size_t first,
                                         std::size_t lanes, std::span<BitVec> outputs,
                                         std::vector<Word>& scratch) const {
  const std::size_t ni = num_inputs_;
  const std::size_t no = output_slots_.size();
  if (lanes <= wordvec::kLanes) {
    scratch.resize(ni + no + num_slots_);
    const std::span<Word> in{scratch.data(), ni};
    const std::span<Word> out{scratch.data() + ni, no};
    const std::span<Word> buf{scratch.data() + ni + no, num_slots_};
    wordvec::pack_lanes(inputs, first, lanes, in);
    eval_pass(in, out, buf);
    wordvec::unpack_lanes(out, first, lanes, outputs);
    return;
  }
  // 4-word-unrolled path: slot s occupies words [4s, 4s+4); word w of a slot
  // carries lanes [first + 64w, first + 64w + 64).  tmp stages the
  // contiguous <-> interleaved transposition.
  scratch.resize(4 * (ni + no + num_slots_) + std::max(ni, no));
  Word* const in4 = scratch.data();
  Word* const out4 = in4 + 4 * ni;
  Word* const buf4 = out4 + 4 * no;
  Word* const tmp = buf4 + 4 * num_slots_;
  for (std::size_t w = 0; w < 4; ++w) {
    const std::size_t lw = lanes > w * wordvec::kLanes
                               ? std::min(wordvec::kLanes, lanes - w * wordvec::kLanes)
                               : 0;
    if (lw > 0) {
      wordvec::pack_lanes(inputs, first + w * wordvec::kLanes, lw, {tmp, ni});
      for (std::size_t i = 0; i < ni; ++i) in4[i * 4 + w] = tmp[i];
    } else {
      for (std::size_t i = 0; i < ni; ++i) in4[i * 4 + w] = 0;
    }
  }
  eval_pass_x4({in4, 4 * ni}, {out4, 4 * no}, {buf4, 4 * num_slots_});
  for (std::size_t w = 0; w < 4; ++w) {
    const std::size_t lw = lanes > w * wordvec::kLanes
                               ? std::min(wordvec::kLanes, lanes - w * wordvec::kLanes)
                               : 0;
    if (lw == 0) continue;
    for (std::size_t j = 0; j < no; ++j) tmp[j] = out4[j * 4 + w];
    wordvec::unpack_lanes({tmp, no}, first + w * wordvec::kLanes, lw, outputs);
  }
}

std::vector<BitVec> BitSlicedEvaluator::eval_batch(std::span<const BitVec> inputs) const {
  for (const auto& v : inputs) {
    if (v.size() != num_inputs_) {
      throw std::invalid_argument("BitSlicedEvaluator::eval_batch: input arity");
    }
  }
  std::vector<BitVec> outputs(inputs.size(), BitVec(num_outputs()));
  std::vector<Word> scratch;
  for (std::size_t first = 0; first < inputs.size(); first += kBlockLanes) {
    eval_lane_block(inputs, first, std::min(kBlockLanes, inputs.size() - first), outputs,
                    scratch);
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// BatchRunner

BatchRunner::BatchRunner(const Circuit& c, std::size_t threads) : eval_(c) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  max_threads_ = threads;
}

BatchRunner::~BatchRunner() {
  {
    std::lock_guard lk(m_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void BatchRunner::ensure_workers(std::size_t want) {
  while (workers_.size() < want) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void BatchRunner::work(std::uint64_t gen, std::span<const BitVec> inputs,
                       std::span<BitVec> outputs, std::vector<Word>& scratch) {
  // Claim 256-lane blocks until the cursor runs out.  The claim is under the
  // lock and re-validates the generation: a straggler that snapshotted a
  // completed job's spans must never claim blocks of a job started since
  // (its spans may point at a returned caller's buffers).
  std::unique_lock lk(m_);
  while (generation_ == gen && next_block_ < job_blocks_) {
    const std::size_t blk = next_block_++;
    lk.unlock();
    const std::size_t first = blk * kBlockLanes;
    eval_.eval_lane_block(inputs, first, std::min(kBlockLanes, inputs.size() - first), outputs,
                          scratch);
    lk.lock();
  }
}

void BatchRunner::worker_loop() {
  std::vector<Word> scratch;
  std::uint64_t seen = 0;
  for (;;) {
    std::span<const BitVec> inputs;
    std::span<BitVec> outputs;
    {
      std::unique_lock lk(m_);
      cv_start_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      inputs = job_inputs_;
      outputs = job_outputs_;
      ++active_;
    }
    work(seen, inputs, outputs, scratch);
    {
      std::lock_guard lk(m_);
      if (--active_ == 0) cv_done_.notify_one();
    }
  }
}

std::vector<BitVec> BatchRunner::run(std::span<const BitVec> inputs) {
  for (const auto& v : inputs) {
    if (v.size() != eval_.num_inputs()) {
      throw std::invalid_argument("BatchRunner::run: input arity");
    }
  }
  std::vector<BitVec> outputs(inputs.size(), BitVec(eval_.num_outputs()));
  if (inputs.empty()) return outputs;
  const std::size_t blocks = (inputs.size() + kBlockLanes - 1) / kBlockLanes;
  // Clamp to the pass count: a batch with b blocks can keep at most b
  // workers busy, so never spawn more (satellite of the eval_parallel fix).
  const std::size_t helpers = std::min(max_threads_, blocks) - 1;
  std::vector<Word> scratch;
  if (helpers == 0) {
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      const std::size_t first = blk * kBlockLanes;
      eval_.eval_lane_block(inputs, first, std::min(kBlockLanes, inputs.size() - first),
                            outputs, scratch);
    }
    return outputs;
  }
  std::uint64_t gen;
  {
    std::lock_guard lk(m_);
    ensure_workers(helpers);
    job_inputs_ = inputs;
    job_outputs_ = outputs;
    job_blocks_ = blocks;
    next_block_ = 0;
    gen = ++generation_;
  }
  cv_start_.notify_all();
  work(gen, inputs, outputs, scratch);
  {
    std::unique_lock lk(m_);
    cv_done_.wait(lk, [&] { return active_ == 0 && next_block_ >= job_blocks_; });
    // Drop the spans while still holding the lock: a straggler waking later
    // snapshots empty spans instead of this caller's (soon-dead) buffers.
    job_inputs_ = {};
    job_outputs_ = {};
  }
  return outputs;
}

}  // namespace absort::netlist
