#pragma once
// Bit-sliced batch evaluation of netlists.
//
// Circuit::eval and LevelizedCircuit::eval walk the component graph once per
// input vector, one byte-wide Bit at a time.  For a batch of independent
// requests that wastes the machine: every primitive in circuit.hpp is a pure
// Boolean function, so 64 (or, unrolled, 256) vectors can ride the bit lanes
// of uint64_t words and evaluate together in a single walk -- the classic
// bit-parallel compiled-simulation trick used by SAT-style sorting-network
// evaluators.
//
// BitSlicedEvaluator compiles a Circuit once into a flat straight-line
// program of word operations (every component lowers to 1..12 word ops; the
// instruction set is closed over {load, const, not, and, or, xor, andnot,
// mux}) and then evaluates ceil(B/64) passes over a batch of B vectors.
// Full 256-lane blocks run a 4-word-unrolled interpreter loop to amortize
// instruction dispatch.  BatchRunner shards passes across a persistent
// thread pool; passes touch disjoint lanes, so workers share nothing but the
// compiled program and the (read-only) input batch.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "absort/netlist/circuit.hpp"
#include "absort/util/wordvec.hpp"

namespace absort::netlist {

class LevelizedCircuit;

/// One word operation of the compiled straight-line program.  Operand slots
/// a/b/c index the pass-local word buffer (one slot per circuit wire plus
/// scratch temporaries); `dst` is always written, never read, by the same
/// instruction.
struct WordInstr {
  enum class Op : std::uint8_t {
    Load,    ///< dst = input word a (a = primary-input position)
    Const0,  ///< dst = all-zero
    Const1,  ///< dst = all-one
    Not,     ///< dst = ~a
    And,     ///< dst = a & b
    Or,      ///< dst = a | b
    Xor,     ///< dst = a ^ b
    AndNot,  ///< dst = a & ~b
    Mux,     ///< dst = c ? b : a, lanewise  (= a ^ (c & (a ^ b)))
  };
  Op op;
  std::uint32_t dst;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
};

/// Compiles a circuit to a word program and evaluates batches of input
/// vectors, 64 per pass (256 per unrolled block).
class BitSlicedEvaluator {
 public:
  explicit BitSlicedEvaluator(const Circuit& c);
  explicit BitSlicedEvaluator(const LevelizedCircuit& lc);

  [[nodiscard]] std::size_t num_inputs() const noexcept { return num_inputs_; }
  [[nodiscard]] std::size_t num_outputs() const noexcept { return output_slots_.size(); }
  /// Word-buffer slots one pass needs (wires + shared temporaries).
  [[nodiscard]] std::size_t num_slots() const noexcept { return num_slots_; }
  [[nodiscard]] const std::vector<WordInstr>& program() const noexcept { return prog_; }

  /// Evaluates one 64-lane pass: in_words[i] packs primary input i across
  /// the lanes; out_words[j] receives primary output j.  `scratch` must have
  /// num_slots() words (contents don't survive the call).
  void eval_pass(std::span<const wordvec::Word> in_words, std::span<wordvec::Word> out_words,
                 std::span<wordvec::Word> scratch) const;

  /// As eval_pass, but over 4 words per slot (256 lanes): slot s occupies
  /// scratch[4s .. 4s+3], and in/out words are likewise 4 consecutive words
  /// per input/output.  `scratch` must have 4 * num_slots() words.
  void eval_pass_x4(std::span<const wordvec::Word> in_words, std::span<wordvec::Word> out_words,
                    std::span<wordvec::Word> scratch) const;

  /// Evaluates the whole batch single-threaded; inputs must all have size
  /// num_inputs().  Result i is bit-for-bit Circuit::eval(inputs[i]).
  [[nodiscard]] std::vector<BitVec> eval_batch(std::span<const BitVec> inputs) const;

  /// Packs lanes [first, first+lanes) of `inputs`, evaluates them, and
  /// scatters the outputs into `outputs` (the shared primitive behind both
  /// eval_batch and BatchRunner).  lanes <= 256; `scratch` needs
  /// 4 * num_slots() words only when lanes > 64, else num_slots().
  void eval_lane_block(std::span<const BitVec> inputs, std::size_t first, std::size_t lanes,
                       std::span<BitVec> outputs, std::vector<wordvec::Word>& scratch) const;

 private:
  void compile(const Circuit& c);

  std::vector<WordInstr> prog_;
  std::vector<std::uint32_t> output_slots_;  ///< slot of each primary output
  std::size_t num_inputs_ = 0;
  std::size_t num_slots_ = 0;
};

/// Shards a batch's 256-lane blocks across a persistent worker pool.  The
/// pool is grown lazily and never beyond what a run can keep busy (no idle
/// workers for tiny batches -- see the matching clamp in
/// LevelizedCircuit::eval_parallel).  A BatchRunner may be reused across
/// runs but must not be entered from two threads at once.
class BatchRunner {
 public:
  /// threads = 0 means hardware concurrency.
  explicit BatchRunner(const Circuit& c, std::size_t threads = 0);
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  [[nodiscard]] const BitSlicedEvaluator& evaluator() const noexcept { return eval_; }
  /// Upper bound on workers (including the calling thread).
  [[nodiscard]] std::size_t max_threads() const noexcept { return max_threads_; }

  /// Evaluates the batch; identical output to BitSlicedEvaluator::eval_batch.
  [[nodiscard]] std::vector<BitVec> run(std::span<const BitVec> inputs);

 private:
  void ensure_workers(std::size_t want);
  void worker_loop();
  void work(std::uint64_t gen, std::span<const BitVec> inputs, std::span<BitVec> outputs,
            std::vector<wordvec::Word>& scratch);

  BitSlicedEvaluator eval_;
  std::size_t max_threads_;

  // Job state, guarded by m_: workers wake on a new generation, claim
  // 256-lane blocks from an atomic-style cursor, and report completion.
  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  std::span<const BitVec> job_inputs_;
  std::span<BitVec> job_outputs_;
  std::size_t job_blocks_ = 0;
  std::size_t next_block_ = 0;
  std::size_t active_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace absort::netlist
