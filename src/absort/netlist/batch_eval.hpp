#pragma once
// Bit-sliced batch evaluation of netlists.
//
// Circuit::eval and LevelizedCircuit::eval walk the component graph once per
// input vector, one byte-wide Bit at a time.  For a batch of independent
// requests that wastes the machine: every primitive in circuit.hpp is a pure
// Boolean function, so hundreds of vectors can ride the bit lanes of SIMD
// words and evaluate together in a single walk -- the classic bit-parallel
// compiled-simulation trick used by SAT-style sorting-network evaluators.
//
// BitSlicedEvaluator compiles a Circuit once into a flat straight-line
// program of word operations (every component lowers to 1..12 word ops; the
// instruction set is closed over {load, const, not, and, or, xor, andnot,
// mux} -- see program_opt.hpp for the IR and the optimizing backend that
// shrinks the lowered program before it runs).  A pass evaluates the program
// over one word per slot (64 lanes), one SIMD vector per slot
// (wordvec::kSimdLanes = 256 with GCC/Clang vector extensions), or two
// vectors per slot (512 lanes); full blocks run the widest path.
// BatchRunner shards kBlockLanes-sized blocks across a persistent thread
// pool; blocks touch disjoint lanes, so workers share nothing but the
// compiled program and the (read-only) input batch.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "absort/netlist/batch_options.hpp"
#include "absort/netlist/circuit.hpp"
#include "absort/netlist/native_engine.hpp"
#include "absort/netlist/program_opt.hpp"
#include "absort/util/wordvec.hpp"

namespace absort::netlist {

class LevelizedCircuit;

/// Lanes per work unit: one x2-unrolled SIMD pass (512 with vector
/// extensions, 128 under the scalar fallback).  BatchRunner and the model-B
/// batch paths shard batches into blocks of this many vectors.
inline constexpr std::size_t kBlockLanes = 2 * wordvec::kSimdLanes;

/// Compiles a circuit to a word program (optimized by default -- see
/// program_opt.hpp) and evaluates batches of input vectors, up to
/// kBlockLanes per pass.  opts.backend picks the engine behind the eval_*
/// entry points: the scalar word interpreter, the wide SIMD interpreter, or
/// a dlopen'd native kernel (Backend::Auto resolves at construction; Native
/// degrades to Simd -- observable via backend() -- when the kernel cannot
/// be built).  opts.threads is unused here (BatchRunner's knob).
class BitSlicedEvaluator {
 public:
  explicit BitSlicedEvaluator(const Circuit& c, const BatchOptions& opts = {});
  explicit BitSlicedEvaluator(const LevelizedCircuit& lc, const BatchOptions& opts = {});

  [[nodiscard]] std::size_t num_inputs() const noexcept { return prog_.num_inputs; }
  [[nodiscard]] std::size_t num_outputs() const noexcept { return prog_.output_slots.size(); }
  /// Word-buffer slots one pass needs (after optimization: the peak-live
  /// packing of the program's values).
  [[nodiscard]] std::size_t num_slots() const noexcept { return prog_.num_slots; }
  [[nodiscard]] const WordProgram& program() const noexcept { return prog_; }
  /// Shrinkage of the optimizing backend (ops_before == ops_after when the
  /// evaluator was built with opt_level = 0).
  [[nodiscard]] const ProgramStats& stats() const noexcept { return stats_; }

  /// The engine actually evaluating passes -- never Auto, and Simd when a
  /// requested Native kernel could not be built (the jit-fallback rung).
  [[nodiscard]] Backend backend() const noexcept { return backend_; }

  /// Evaluates one 64-lane pass: in_words[i] packs primary input i across
  /// the lanes; out_words[j] receives primary output j.  `scratch` must have
  /// num_slots() words (contents don't survive the call).  out_words may
  /// alias in_words (outputs are scattered after the program has run).
  void eval_pass(std::span<const wordvec::Word> in_words, std::span<wordvec::Word> out_words,
                 std::span<wordvec::Word> scratch) const;

  /// As eval_pass, over one SIMD vector per slot (wordvec::kSimdLanes
  /// lanes): in[i] / out[j] / scratch[s] hold vector i/j/s.  `scratch` must
  /// have num_slots() vectors.
  void eval_pass_simd(const wordvec::Vec* in, wordvec::Vec* out, wordvec::Vec* scratch) const;

  /// As eval_pass_simd, x2-unrolled (2 * wordvec::kSimdLanes lanes): slot s
  /// occupies scratch[2s .. 2s+1], inputs/outputs likewise 2 consecutive
  /// vectors each.  `scratch` must have 2 * num_slots() vectors.
  void eval_pass_simd_x2(const wordvec::Vec* in, wordvec::Vec* out,
                         wordvec::Vec* scratch) const;

  /// Evaluates the whole batch single-threaded; inputs must all have size
  /// num_inputs().  Result i is bit-for-bit Circuit::eval(inputs[i]).
  [[nodiscard]] std::vector<BitVec> eval_batch(std::span<const BitVec> inputs) const;

  /// Packs lanes [first, first+lanes) of `inputs`, evaluates them through
  /// the widest fitting pass, and scatters the outputs into `outputs` (the
  /// shared primitive behind eval_batch and BatchRunner).  lanes <=
  /// kBlockLanes; `scratch` is resized as needed and reusable across calls.
  void eval_lane_block(std::span<const BitVec> inputs, std::size_t first, std::size_t lanes,
                       std::span<BitVec> outputs, std::vector<wordvec::Vec>& scratch) const;

  /// Fixpoint probe over one lane block (the serving layer's Cheap
  /// self-check): packs lanes [first, first+lanes) of `inputs`, evaluates
  /// the program, and compares output j against input j entirely in the
  /// packed word domain -- no lane unpack, which is what makes the probe
  /// cheaper than a per-lane scan.  Requires num_outputs() == num_inputs().
  /// On return, bit (l % 64) of mismatch[l / 64] is set for every relative
  /// lane l in [0, lanes) whose evaluated outputs differ from its inputs;
  /// `mismatch` must hold at least ceil(lanes / 64) words.  lanes <=
  /// kBlockLanes; `scratch` is resized as needed and reusable across calls.
  void check_fixpoint_lane_block(std::span<const BitVec> inputs, std::size_t first,
                                 std::size_t lanes, std::vector<wordvec::Vec>& scratch,
                                 std::span<wordvec::Word> mismatch) const;

 private:
  void compile(const Circuit& c, const BatchOptions& opts);

  WordProgram prog_;
  ProgramStats stats_;
  Backend backend_ = Backend::Simd;  ///< resolved engine (never Auto)
  std::shared_ptr<const NativeKernel> native_;  ///< set iff backend_ == Native
};

/// Shards the block indices [0, blocks) across up to `threads` threads
/// (0 = hardware concurrency), clamped to the block count so small batches
/// never spawn idle workers.  Each worker runs fn(first_block, last_block)
/// on one contiguous range; a worker exception is rethrown on the calling
/// thread after all workers join.  Used by the model-B batch paths, which
/// stream sub-circuit evaluators over each block and need per-worker state
/// beyond what BatchRunner's single-evaluator pool provides.
void for_each_block_range(std::size_t blocks, std::size_t threads,
                          const std::function<void(std::size_t, std::size_t)>& fn);

/// Shards a batch's kBlockLanes-sized blocks across a persistent worker
/// pool.  The pool is grown lazily and never beyond what a run can keep busy
/// (no idle workers for tiny batches -- see the matching clamp in
/// LevelizedCircuit::eval_parallel).  A BatchRunner may be reused across
/// runs but must not be entered from two threads at once: run() enforces the
/// contract with a cheap atomic check and throws std::logic_error on a
/// concurrent entry instead of corrupting job state silently.
class BatchRunner {
 public:
  explicit BatchRunner(const Circuit& c, const BatchOptions& opts = {});
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  [[nodiscard]] const BitSlicedEvaluator& evaluator() const noexcept { return eval_; }
  /// The engine the evaluator resolved to (see BitSlicedEvaluator::backend).
  [[nodiscard]] Backend backend() const noexcept { return eval_.backend(); }
  /// Upper bound on workers (including the calling thread).
  [[nodiscard]] std::size_t max_threads() const noexcept { return max_threads_; }

  /// Evaluates the batch; identical output to BitSlicedEvaluator::eval_batch.
  [[nodiscard]] std::vector<BitVec> run(std::span<const BitVec> inputs);

  /// As run(), writing into caller-owned buffers: outputs.size() must equal
  /// inputs.size(), and each output is resized to num_outputs() if needed
  /// (no allocation when already sized).  Together with the per-worker
  /// scratch that persists across runs, a steady-state serving loop that
  /// recycles its buffers does no allocation on this path.
  void run(std::span<const BitVec> inputs, std::span<BitVec> outputs);

 private:
  void ensure_workers(std::size_t want);
  void worker_loop();
  void work(std::uint64_t gen, std::span<const BitVec> inputs, std::span<BitVec> outputs,
            std::vector<wordvec::Vec>& scratch);

  BitSlicedEvaluator eval_;
  std::size_t max_threads_;
  std::atomic<bool> in_run_{false};  ///< reentrancy guard for run()
  std::vector<wordvec::Vec> caller_scratch_;  ///< calling thread's pass buffer, reused across runs

  // Job state, guarded by m_: workers wake on a new generation, claim
  // kBlockLanes-sized blocks from an atomic-style cursor, and report
  // completion.
  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  std::span<const BitVec> job_inputs_;
  std::span<BitVec> job_outputs_;
  std::size_t job_blocks_ = 0;
  std::size_t next_block_ = 0;
  std::size_t active_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace absort::netlist
