#pragma once
// Netlist optimization: constant folding and dead-component elimination.
//
// The builders favour regular structure over minimality -- e.g. the fish
// hardware drives its write-enable demultiplexer trees from constant 1, and
// pattern-table switches may be steered by constant selects.  optimize()
// propagates constants through every component kind, rewrites what remains,
// and drops components whose outputs cannot reach a primary output.  The
// result is functionally identical (the tests check exhaustively) and the
// savings are reported so benches can quantify how much of a construction's
// cost is real datapath versus foldable scaffolding.

#include <cstddef>

#include "absort/netlist/circuit.hpp"

namespace absort::netlist {

struct OptimizeStats {
  std::size_t folded = 0;   ///< components replaced by constants/wires
  std::size_t dead = 0;     ///< components removed as unreachable
  std::size_t before = 0;   ///< component count before (excl. inputs)
  std::size_t after = 0;    ///< component count after (excl. inputs)
};

/// Returns an optimized copy of `c` with identical observable behaviour
/// (same inputs, same outputs in order).
[[nodiscard]] Circuit optimize(const Circuit& c, OptimizeStats* stats = nullptr);

}  // namespace absort::netlist
