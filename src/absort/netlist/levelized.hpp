#pragma once
// Levelized (and optionally multi-threaded) circuit evaluation.
//
// The append-order evaluator in Circuit::eval is perfect for small circuits;
// for the larger constructions (a 16k-input prefix sorter has ~7e5
// components) it helps to schedule by *level*: all components whose inputs
// are ready evaluate together.  Within a level every component writes
// disjoint wires and reads only earlier levels, so a level is embarrassingly
// parallel -- the classic levelized-compiled-simulation technique.  The
// number of levels equals the circuit's topological depth, which for these
// networks is polylogarithmic, so wide levels dominate and threads pay off.

#include <cstddef>
#include <memory>
#include <vector>

#include "absort/netlist/circuit.hpp"

namespace absort::netlist {

class LevelizedCircuit {
 public:
  /// Copies the circuit and computes the level schedule.
  explicit LevelizedCircuit(Circuit c);

  [[nodiscard]] std::size_t num_levels() const noexcept { return levels_.size(); }
  [[nodiscard]] const Circuit& circuit() const noexcept { return circuit_; }

  /// Width (component count) of the widest level.
  [[nodiscard]] std::size_t max_level_width() const noexcept;

  /// Sequential evaluation in level order; result identical to Circuit::eval.
  [[nodiscard]] BitVec eval(const BitVec& in) const;

  /// Parallel evaluation: each level's components are split across `threads`
  /// workers (a persistent pool with a per-level barrier).  threads = 0
  /// means hardware concurrency.
  [[nodiscard]] BitVec eval_parallel(const BitVec& in, std::size_t threads = 0) const;

 private:
  void eval_range(const std::vector<std::uint32_t>& level, std::size_t begin, std::size_t end,
                  std::vector<Bit>& w, const BitVec& in) const;

  Circuit circuit_;
  std::vector<std::vector<std::uint32_t>> levels_;  ///< component indices per level
  std::vector<std::uint32_t> input_pos_;  ///< component index -> primary-input position
};

}  // namespace absort::netlist
