#pragma once
// Cost / depth analysis of circuits under a pluggable cost model.
//
// Two models ship with the library:
//  * CostModel::paper_unit() -- Section II accounting: every primitive
//    (2x2 switch, 2x1 mux, 1x2 demux, comparator, logic gate) is one unit of
//    cost and one unit of depth; wiring is free.  This is the accounting all
//    of the paper's closed forms use, so measured numbers compare directly
//    against equations (1)-(27).
//  * CostModel::gate_level() -- a conservative constant-fanin gate expansion
//    (mux = 3 gates, 2x2 switch = 2 muxes = 6 gates, comparator = 2 gates,
//    demux = 2 gates).  Used to check that the asymptotic claims are not an
//    artifact of the unit accounting.

#include <array>
#include <cstddef>
#include <string>

#include "absort/netlist/circuit.hpp"

namespace absort::netlist {

struct CostModel {
  /// Cost charged per component of each Kind (indexed by Kind).
  std::array<double, kNumKinds> cost{};
  /// Depth charged per component of each Kind.
  std::array<double, kNumKinds> depth{};
  std::string name;

  [[nodiscard]] static CostModel paper_unit();
  [[nodiscard]] static CostModel gate_level();
};

struct CostReport {
  double cost = 0;          ///< total cost under the model
  double depth = 0;         ///< longest input->output path under the model
  std::size_t components = 0;  ///< raw component count (excluding Input/Const)
  std::array<std::size_t, kNumKinds> inventory{};  ///< count per Kind
};

/// Computes cost and depth of `c` under `model`.  Depth is the maximum over
/// primary outputs of the longest weighted path from any input.
[[nodiscard]] CostReport analyze(const Circuit& c, const CostModel& model);

/// Convenience: unit-cost accounting per the paper.
[[nodiscard]] inline CostReport analyze_unit(const Circuit& c) {
  return analyze(c, CostModel::paper_unit());
}

/// Human-readable one-line summary ("cost=.., depth=.., comparators=..").
[[nodiscard]] std::string summarize(const CostReport& r);

}  // namespace absort::netlist
