#include "absort/netlist/optimize.hpp"

#include <optional>
#include <stdexcept>
#include <vector>

namespace absort::netlist {
namespace {

// A folded wire is either a known constant or a wire of the new circuit.
struct Val {
  bool is_const = false;
  Bit value = 0;
  WireId wire = kNoWire;

  static Val constant(Bit b) { return {true, static_cast<Bit>(b & 1), kNoWire}; }
  static Val of(WireId w) { return {false, 0, w}; }
};

class Folder {
 public:
  explicit Folder(const Circuit& src) : src_(src) {}

  Circuit run(std::size_t& folded) {
    map_.assign(src_.num_wires(), Val{});
    for (const auto& comp : src_.components()) {
      const bool emitted = fold_component(comp);
      if (!emitted && comp.kind != Kind::Const) ++folded;
    }
    for (WireId w : src_.output_wires()) out_.mark_output(materialize(map_[w]));
    return std::move(out_);
  }

 private:
  Val in(const Component& c, std::size_t i) const { return map_[c.in[i]]; }

  // Returns the new-circuit wire for a value, creating a Const if needed.
  WireId materialize(const Val& v) {
    if (!v.is_const) return v.wire;
    WireId& cache = v.value ? const1_ : const0_;
    if (cache == kNoWire) cache = out_.constant(v.value);
    return cache;
  }

  void set(const Component& c, std::size_t i, Val v) { map_[c.out[i]] = v; }

  static bool same_wire(const Val& a, const Val& b) {
    return !a.is_const && !b.is_const && a.wire == b.wire;
  }

  // Emits (or folds) one component; returns true if a real component was
  // emitted into the new circuit.
  bool fold_component(const Component& c) {
    switch (c.kind) {
      case Kind::Input:
        set(c, 0, Val::of(out_.input()));
        return true;
      case Kind::Const:
        set(c, 0, Val::constant(c.aux));
        return false;
      case Kind::Not: {
        const auto a = in(c, 0);
        if (a.is_const) {
          set(c, 0, Val::constant(static_cast<Bit>(1 - a.value)));
          return false;
        }
        set(c, 0, Val::of(out_.not_gate(a.wire)));
        return true;
      }
      case Kind::And:
      case Kind::Or: {
        const bool is_and = c.kind == Kind::And;
        auto a = in(c, 0), b = in(c, 1);
        const Bit absorbing = is_and ? 0 : 1;
        if ((a.is_const && a.value == absorbing) || (b.is_const && b.value == absorbing)) {
          set(c, 0, Val::constant(absorbing));
          return false;
        }
        if (a.is_const) {  // identity element
          set(c, 0, b);
          return false;
        }
        if (b.is_const || same_wire(a, b)) {
          set(c, 0, a);
          return false;
        }
        set(c, 0, Val::of(is_and ? out_.and_gate(a.wire, b.wire) : out_.or_gate(a.wire, b.wire)));
        return true;
      }
      case Kind::Xor: {
        auto a = in(c, 0), b = in(c, 1);
        if (a.is_const && b.is_const) {
          set(c, 0, Val::constant(static_cast<Bit>(a.value ^ b.value)));
          return false;
        }
        if (same_wire(a, b)) {
          set(c, 0, Val::constant(0));
          return false;
        }
        if (a.is_const || b.is_const) {
          const auto& k = a.is_const ? a : b;
          const auto& w = a.is_const ? b : a;
          if (k.value == 0) {
            set(c, 0, w);
            return false;
          }
          set(c, 0, Val::of(out_.not_gate(w.wire)));
          return true;
        }
        set(c, 0, Val::of(out_.xor_gate(a.wire, b.wire)));
        return true;
      }
      case Kind::Mux21: {
        auto a0 = in(c, 0), a1 = in(c, 1), sel = in(c, 2);
        if (sel.is_const) {
          set(c, 0, sel.value ? a1 : a0);
          return false;
        }
        if (same_wire(a0, a1) || (a0.is_const && a1.is_const && a0.value == a1.value)) {
          set(c, 0, a0);
          return false;
        }
        if (a0.is_const && a1.is_const) {  // values differ: mux degenerates
          if (a1.value == 1) {
            set(c, 0, sel);  // (0, 1) -> sel
            return false;
          }
          set(c, 0, Val::of(out_.not_gate(sel.wire)));  // (1, 0) -> !sel
          return true;
        }
        set(c, 0, Val::of(out_.mux(materialize(a0), materialize(a1), sel.wire)));
        return true;
      }
      case Kind::Demux12: {
        auto d = in(c, 0), sel = in(c, 1);
        if (sel.is_const) {
          set(c, 0, sel.value ? Val::constant(0) : d);
          set(c, 1, sel.value ? d : Val::constant(0));
          return false;
        }
        if (d.is_const && d.value == 0) {
          set(c, 0, Val::constant(0));
          set(c, 1, Val::constant(0));
          return false;
        }
        const auto [o0, o1] = out_.demux(materialize(d), sel.wire);
        set(c, 0, Val::of(o0));
        set(c, 1, Val::of(o1));
        return true;
      }
      case Kind::Comparator: {
        auto a = in(c, 0), b = in(c, 1);
        if (a.is_const && b.is_const) {
          set(c, 0, Val::constant(static_cast<Bit>(a.value & b.value)));
          set(c, 1, Val::constant(static_cast<Bit>(a.value | b.value)));
          return false;
        }
        if (same_wire(a, b)) {
          set(c, 0, a);
          set(c, 1, a);
          return false;
        }
        if (a.is_const || b.is_const) {
          const auto& k = a.is_const ? a : b;
          const auto& w = a.is_const ? b : a;
          // min(x, 0) = 0, max(x, 0) = x; min(x, 1) = x, max(x, 1) = 1.
          set(c, 0, k.value ? w : Val::constant(0));
          set(c, 1, k.value ? Val::constant(1) : w);
          return false;
        }
        const auto [lo, hi] = out_.comparator(a.wire, b.wire);
        set(c, 0, Val::of(lo));
        set(c, 1, Val::of(hi));
        return true;
      }
      case Kind::Switch2x2: {
        auto a = in(c, 0), b = in(c, 1), ctrl = in(c, 2);
        if (ctrl.is_const) {
          set(c, 0, ctrl.value ? b : a);
          set(c, 1, ctrl.value ? a : b);
          return false;
        }
        if (same_wire(a, b) || (a.is_const && b.is_const && a.value == b.value)) {
          set(c, 0, a);
          set(c, 1, a);
          return false;
        }
        const auto [o0, o1] = out_.switch2x2(materialize(a), materialize(b), ctrl.wire);
        set(c, 0, Val::of(o0));
        set(c, 1, Val::of(o1));
        return true;
      }
      case Kind::Switch4x4: {
        auto s0 = in(c, 4), s1 = in(c, 5);
        if (s0.is_const && s1.is_const) {
          const auto& pat =
              src_.swap4_tables()[c.aux][static_cast<std::size_t>(s1.value) * 2 + s0.value];
          for (std::size_t q = 0; q < 4; ++q) set(c, q, in(c, pat[q]));
          return false;
        }
        const auto table = out_.register_swap4_patterns(src_.swap4_tables()[c.aux]);
        std::array<WireId, 4> d{};
        for (std::size_t q = 0; q < 4; ++q) d[q] = materialize(in(c, q));
        const auto o = out_.switch4x4(d, materialize(s0), materialize(s1), table);
        for (std::size_t q = 0; q < 4; ++q) set(c, q, Val::of(o[q]));
        return true;
      }
    }
    throw std::logic_error("fold_component: unknown kind");
  }

  const Circuit& src_;
  Circuit out_;
  std::vector<Val> map_;
  WireId const0_ = kNoWire;
  WireId const1_ = kNoWire;
};

// Removes components whose outputs cannot reach a primary output (primary
// inputs are always retained to preserve the interface).
Circuit strip_dead(const Circuit& c, std::size_t& removed) {
  std::vector<bool> live_wire(c.num_wires(), false);
  for (WireId w : c.output_wires()) live_wire[w] = true;
  const auto& comps = c.components();
  std::vector<bool> live_comp(comps.size(), false);
  for (std::size_t i = comps.size(); i-- > 0;) {
    const auto& comp = comps[i];
    bool live = comp.kind == Kind::Input;
    for (std::size_t j = 0; j < comp.nout && !live; ++j) live = live_wire[comp.out[j]];
    live_comp[i] = live;
    if (!live) {
      ++removed;
      continue;
    }
    for (std::size_t j = 0; j < comp.nin; ++j) live_wire[comp.in[j]] = true;
  }
  Circuit out;
  std::vector<WireId> remap(c.num_wires(), kNoWire);
  for (std::size_t i = 0; i < comps.size(); ++i) {
    if (!live_comp[i]) continue;
    const auto& comp = comps[i];
    const auto mi = [&](std::size_t j) { return remap[comp.in[j]]; };
    switch (comp.kind) {
      case Kind::Input: remap[comp.out[0]] = out.input(); break;
      case Kind::Const: remap[comp.out[0]] = out.constant(comp.aux); break;
      case Kind::Not: remap[comp.out[0]] = out.not_gate(mi(0)); break;
      case Kind::And: remap[comp.out[0]] = out.and_gate(mi(0), mi(1)); break;
      case Kind::Or: remap[comp.out[0]] = out.or_gate(mi(0), mi(1)); break;
      case Kind::Xor: remap[comp.out[0]] = out.xor_gate(mi(0), mi(1)); break;
      case Kind::Mux21: remap[comp.out[0]] = out.mux(mi(0), mi(1), mi(2)); break;
      case Kind::Demux12: {
        const auto [o0, o1] = out.demux(mi(0), mi(1));
        remap[comp.out[0]] = o0;
        remap[comp.out[1]] = o1;
        break;
      }
      case Kind::Comparator: {
        const auto [lo, hi] = out.comparator(mi(0), mi(1));
        remap[comp.out[0]] = lo;
        remap[comp.out[1]] = hi;
        break;
      }
      case Kind::Switch2x2: {
        const auto [o0, o1] = out.switch2x2(mi(0), mi(1), mi(2));
        remap[comp.out[0]] = o0;
        remap[comp.out[1]] = o1;
        break;
      }
      case Kind::Switch4x4: {
        const auto table = out.register_swap4_patterns(c.swap4_tables()[comp.aux]);
        const auto o = out.switch4x4({mi(0), mi(1), mi(2), mi(3)}, mi(4), mi(5), table);
        for (std::size_t q = 0; q < 4; ++q) remap[comp.out[q]] = o[q];
        break;
      }
    }
  }
  for (WireId w : c.output_wires()) out.mark_output(remap[w]);
  return out;
}

std::size_t real_components(const Circuit& c) {
  std::size_t n = 0;
  for (const auto& comp : c.components()) {
    n += (comp.kind != Kind::Input && comp.kind != Kind::Const) ? 1u : 0u;
  }
  return n;
}

}  // namespace

Circuit optimize(const Circuit& c, OptimizeStats* stats) {
  OptimizeStats s;
  s.before = real_components(c);
  Folder folder(c);
  std::size_t folded = 0;
  Circuit folded_circuit = folder.run(folded);
  s.folded = folded;
  Circuit out = strip_dead(folded_circuit, s.dead);
  s.after = real_components(out);
  if (stats) *stats = s;
  return out;
}

}  // namespace absort::netlist
