#include "absort/netlist/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace absort::netlist {
namespace {

[[noreturn]] void bad(const std::string& what, std::size_t line) {
  throw std::invalid_argument("netlist parse error at line " + std::to_string(line) + ": " +
                              what);
}

}  // namespace

void write_text(std::ostream& os, const Circuit& c) {
  os << "absort-netlist v1\n";
  for (std::size_t t = 0; t < c.swap4_tables().size(); ++t) {
    os << "swap4 " << t;
    for (const auto& pat : c.swap4_tables()[t]) {
      for (auto v : pat) os << ' ' << unsigned(v);
    }
    os << '\n';
  }
  for (const auto& comp : c.components()) {
    switch (comp.kind) {
      case Kind::Input: os << "input"; break;
      case Kind::Const: os << "const " << unsigned(comp.aux); break;
      case Kind::Not: os << "not " << comp.in[0]; break;
      case Kind::And: os << "and " << comp.in[0] << ' ' << comp.in[1]; break;
      case Kind::Or: os << "or " << comp.in[0] << ' ' << comp.in[1]; break;
      case Kind::Xor: os << "xor " << comp.in[0] << ' ' << comp.in[1]; break;
      case Kind::Mux21:
        os << "mux " << comp.in[0] << ' ' << comp.in[1] << ' ' << comp.in[2];
        break;
      case Kind::Demux12: os << "demux " << comp.in[0] << ' ' << comp.in[1]; break;
      case Kind::Comparator: os << "comparator " << comp.in[0] << ' ' << comp.in[1]; break;
      case Kind::Switch2x2:
        os << "switch2 " << comp.in[0] << ' ' << comp.in[1] << ' ' << comp.in[2];
        break;
      case Kind::Switch4x4:
        os << "switch4 " << unsigned(comp.aux);
        for (std::size_t i = 0; i < 6; ++i) os << ' ' << comp.in[i];
        break;
    }
    os << '\n';
  }
  os << "output";
  for (auto w : c.output_wires()) os << ' ' << w;
  os << '\n';
}

std::string to_text(const Circuit& c) {
  std::ostringstream os;
  write_text(os, c);
  return os.str();
}

Circuit read_text(std::istream& is) {
  Circuit c;
  std::string line;
  std::size_t lineno = 0;
  bool header_seen = false;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string op;
    ls >> op;
    if (!header_seen) {
      std::string ver;
      ls >> ver;
      if (op != "absort-netlist" || ver != "v1") bad("missing 'absort-netlist v1' header", lineno);
      header_seen = true;
      continue;
    }
    const auto rd = [&]() -> WireId {
      WireId w;
      if (!(ls >> w)) bad("missing operand", lineno);
      return w;
    };
    try {
      if (op == "swap4") {
        WireId idx = rd();
        Swap4Patterns p;
        for (auto& pat : p) {
          for (auto& v : pat) v = static_cast<std::uint8_t>(rd());
        }
        const auto got = c.register_swap4_patterns(p);
        if (got != idx) bad("pattern table index mismatch", lineno);
      } else if (op == "input") {
        c.input();
      } else if (op == "const") {
        c.constant(static_cast<Bit>(rd() & 1));
      } else if (op == "not") {
        c.not_gate(rd());
      } else if (op == "and") {
        const auto a = rd();
        c.and_gate(a, rd());
      } else if (op == "or") {
        const auto a = rd();
        c.or_gate(a, rd());
      } else if (op == "xor") {
        const auto a = rd();
        c.xor_gate(a, rd());
      } else if (op == "mux") {
        const auto a0 = rd();
        const auto a1 = rd();
        c.mux(a0, a1, rd());
      } else if (op == "demux") {
        const auto d = rd();
        c.demux(d, rd());
      } else if (op == "comparator") {
        const auto a = rd();
        c.comparator(a, rd());
      } else if (op == "switch2") {
        const auto a = rd();
        const auto b = rd();
        c.switch2x2(a, b, rd());
      } else if (op == "switch4") {
        const auto table = static_cast<std::uint8_t>(rd());
        std::array<WireId, 4> d{};
        for (auto& w : d) w = rd();
        const auto s0 = rd();
        c.switch4x4(d, s0, rd(), table);
      } else if (op == "output") {
        WireId w;
        while (ls >> w) c.mark_output(w);
      } else {
        bad("unknown opcode '" + op + "'", lineno);
      }
    } catch (const std::logic_error& e) {
      bad(e.what(), lineno);
    }
  }
  if (!header_seen) bad("empty input", 0);
  return c;
}

Circuit from_text(const std::string& text) {
  std::istringstream is(text);
  return read_text(is);
}

}  // namespace absort::netlist
