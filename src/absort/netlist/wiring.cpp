#include "absort/netlist/wiring.hpp"

#include <algorithm>
#include <stdexcept>

namespace absort::netlist::wiring {

std::vector<WireId> shuffle(const std::vector<WireId>& in, std::size_t w) {
  const std::size_t n = in.size();
  if (w == 0 || n % w != 0) throw std::invalid_argument("wiring::shuffle: w must divide n");
  const std::size_t block = n / w;
  std::vector<WireId> out(n);
  for (std::size_t j = 0; j < w; ++j) {
    for (std::size_t i = 0; i < block; ++i) out[w * i + j] = in[j * block + i];
  }
  return out;
}

std::vector<WireId> unshuffle(const std::vector<WireId>& in, std::size_t w) {
  const std::size_t n = in.size();
  if (w == 0 || n % w != 0) throw std::invalid_argument("wiring::unshuffle: w must divide n");
  const std::size_t block = n / w;
  std::vector<WireId> out(n);
  for (std::size_t j = 0; j < w; ++j) {
    for (std::size_t i = 0; i < block; ++i) out[j * block + i] = in[w * i + j];
  }
  return out;
}

std::vector<WireId> reverse(const std::vector<WireId>& in) {
  std::vector<WireId> out(in.rbegin(), in.rend());
  return out;
}

std::vector<WireId> odd_even_split(const std::vector<WireId>& in) {
  std::vector<WireId> out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); i += 2) out.push_back(in[i]);
  for (std::size_t i = 1; i < in.size(); i += 2) out.push_back(in[i]);
  return out;
}

std::vector<WireId> permute(const std::vector<WireId>& in, const std::vector<std::size_t>& perm) {
  if (perm.size() != in.size()) throw std::invalid_argument("wiring::permute: size mismatch");
  std::vector<WireId> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (perm[i] >= in.size()) throw std::invalid_argument("wiring::permute: index out of range");
    out[i] = in[perm[i]];
  }
  return out;
}

std::vector<WireId> slice(const std::vector<WireId>& in, std::size_t begin, std::size_t len) {
  if (begin + len > in.size()) throw std::out_of_range("wiring::slice");
  return {in.begin() + static_cast<std::ptrdiff_t>(begin),
          in.begin() + static_cast<std::ptrdiff_t>(begin + len)};
}

std::vector<WireId> concat(const std::vector<WireId>& a, const std::vector<WireId>& b) {
  std::vector<WireId> out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace absort::netlist::wiring
