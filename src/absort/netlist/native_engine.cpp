#include "absort/netlist/native_engine.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#if !defined(_WIN32)
#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>
#define ABSORT_HAVE_DLOPEN 1
#endif

#include "absort/netlist/codegen.hpp"
#include "absort/util/wordvec.hpp"

namespace absort::netlist {

namespace {

std::atomic<std::uint64_t> g_compiles{0};
std::atomic<std::uint64_t> g_cache_hits{0};
std::atomic<std::uint64_t> g_fallbacks{0};

/// Serializes every in-process build (emit, probe, compile, dlopen) and
/// guards the in-process kernel registry and probe cache.
std::mutex& build_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::uint64_t, std::shared_ptr<const NativeKernel>>& kernel_registry() {
  static std::map<std::uint64_t, std::shared_ptr<const NativeKernel>> reg;
  return reg;
}

void set_error(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
}

#if defined(ABSORT_HAVE_DLOPEN)

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// mkdir -p, idempotent under concurrent creators: each mkdir's return value
/// is ignored (EEXIST just means a racing process won that component), and
/// the final stat is the sole arbiter -- true iff `dir` is a directory when
/// we are done, regardless of who created it.
bool make_dirs(const std::string& dir) {
  for (std::size_t i = 1; i <= dir.size(); ++i) {
    if (i == dir.size() || dir[i] == '/') {
      (void)::mkdir(dir.substr(0, i).c_str(), 0777);
    }
  }
  struct stat st;
  return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool write_file(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  return (std::fclose(f) == 0) && ok;
}

/// Runs `cc <flags> -fPIC -shared -o out src`, discarding compiler chatter
/// (a failed compile is reported by status, and the source stays in the
/// cache directory for post-mortems).
bool run_compiler(const std::string& cc, const std::string& flags, const std::string& src,
                  const std::string& out) {
  const std::string cmd =
      cc + " " + flags + " -fPIC -shared -o '" + out + "' '" + src + "' >/dev/null 2>&1";
  return std::system(cmd.c_str()) == 0;
}

/// dlopen + ABI validation + symbol lookup.  The handle is intentionally
/// retained forever: engines hold bare function pointers into the mapping,
/// and a .so is small and content-addressed, so unloading buys nothing and
/// risks everything.
std::shared_ptr<const NativeKernel> load_kernel(const std::string& path, const WordProgram& p,
                                                std::uint64_t hash, std::string* error) {
  void* dl = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!dl) {
    const char* why = ::dlerror();
    set_error(error, "dlopen failed: " + std::string(why ? why : path));
    return nullptr;
  }
  const auto* abi = reinterpret_cast<const std::uint64_t*>(::dlsym(dl, "absort_kernel_abi"));
  if (!abi || abi[0] != kKernelAbiVersion || abi[1] != p.num_inputs ||
      abi[2] != p.output_slots.size() || abi[3] != wordvec::kSimdWords) {
    set_error(error, "kernel ABI mismatch: " + path);
    return nullptr;
  }
  auto k = std::make_shared<NativeKernel>();
  k->run_word = reinterpret_cast<NativeKernel::Fn>(::dlsym(dl, "absort_run_word"));
  k->run_simd = reinterpret_cast<NativeKernel::Fn>(::dlsym(dl, "absort_run_simd"));
  k->run_simd_x2 = reinterpret_cast<NativeKernel::Fn>(::dlsym(dl, "absort_run_simd_x2"));
  k->hash = hash;
  if (!k->run_word || !k->run_simd || !k->run_simd_x2) {
    set_error(error, "kernel symbols missing: " + path);
    return nullptr;
  }
  return k;
}

/// Probe result per compiler string: can it produce a loadable .so at all?
bool probe_toolchain_locked(const std::string& cc) {
  static std::map<std::string, bool> cache;
  const auto it = cache.find(cc);
  if (it != cache.end()) return it->second;

  const std::string dir = jit_cache_dir();
  if (!make_dirs(dir)) {
    cache.emplace(cc, false);
    return false;
  }
  const std::string tag = std::to_string(static_cast<unsigned long>(::getpid()));
  const std::string src = dir + "/probe_" + tag + ".c";
  const std::string so = dir + "/probe_" + tag + ".so";
  bool ok = write_file(src, "int absort_probe(void) { return 42; }\n") &&
            run_compiler(cc, "-O0", src, so);
  if (ok) {
    void* dl = ::dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
    ok = dl && ::dlsym(dl, "absort_probe");
    if (dl) ::dlclose(dl);  // the probe is the one .so safe to unload
  }
  (void)::unlink(src.c_str());
  (void)::unlink(so.c_str());
  cache.emplace(cc, ok);
  return ok;
}

#endif  // ABSORT_HAVE_DLOPEN

}  // namespace

JitCounters jit_counters() noexcept {
  JitCounters c;
  c.compiles = g_compiles.load(std::memory_order_relaxed);
  c.cache_hits = g_cache_hits.load(std::memory_order_relaxed);
  c.fallbacks = g_fallbacks.load(std::memory_order_relaxed);
  return c;
}

std::string jit_compiler() {
  if (const char* cc = std::getenv("ABSORT_CC"); cc && *cc) return cc;
  if (const char* cc = std::getenv("CC"); cc && *cc) return cc;
  return "cc";
}

std::string jit_cache_dir() {
  if (const char* dir = std::getenv("ABSORT_JIT_CACHE"); dir && *dir) return dir;
  if (const char* tmp = std::getenv("TMPDIR"); tmp && *tmp) {
    std::string d = tmp;
    if (d.back() == '/') d.pop_back();
    return d + "/absort-jit";
  }
  return "/tmp/absort-jit";
}

bool native_toolchain_available() {
#if defined(ABSORT_HAVE_DLOPEN)
  std::lock_guard lk(build_mutex());
  return probe_toolchain_locked(jit_compiler());
#else
  return false;
#endif
}

Backend resolve_backend(Backend requested) { return resolve_backend(requested, 0); }

Backend resolve_backend(Backend requested, std::size_t program_instrs) {
  if (requested != Backend::Auto) return requested;
  if (const char* env = std::getenv("ABSORT_BACKEND"); env && *env) {
    Backend b;
    if (parse_backend(env, b) && b != Backend::Auto) return b;
  }
  if (program_instrs > kNativeAutoMaxInstrs) return Backend::Simd;
  return native_toolchain_available() ? Backend::Native : Backend::Simd;
}

std::shared_ptr<const NativeKernel> build_native_kernel(const WordProgram& p,
                                                        std::string* error) {
#if defined(ABSORT_HAVE_DLOPEN)
  const std::string cc = jit_compiler();
  const std::string source = emit_c_source(p);
  // The cache key covers the source (program + lane layout + ABI) and the
  // compiler identity, so switching ABSORT_CC can never hit a stale entry
  // built by a different toolchain.
  const std::uint64_t hash = fnv1a64(cc, fnv1a64(source));

  std::lock_guard lk(build_mutex());
  auto& reg = kernel_registry();
  if (const auto it = reg.find(hash); it != reg.end()) {
    g_cache_hits.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  const std::string dir = jit_cache_dir();
  if (!make_dirs(dir)) {
    g_fallbacks.fetch_add(1, std::memory_order_relaxed);
    set_error(error, "cannot create jit cache dir: " + dir);
    return nullptr;
  }
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(hash));
  const std::string so_path = dir + "/absort_" + hex + ".so";

  // Disk cache: a previous process (or run) already compiled this kernel.
  if (file_exists(so_path)) {
    if (auto k = load_kernel(so_path, p, hash, error)) {
      g_cache_hits.fetch_add(1, std::memory_order_relaxed);
      reg.emplace(hash, k);
      return k;
    }
    // Stale or truncated entry: fall through and rebuild over it.
  }

  if (!probe_toolchain_locked(cc)) {
    g_fallbacks.fetch_add(1, std::memory_order_relaxed);
    set_error(error, "no working compiler: '" + cc + "'");
    return nullptr;
  }

  // Compile to a process-unique temp and rename() into place, so processes
  // racing on one cache entry each install a complete file (rename is
  // atomic within the directory; last writer wins, both are identical).
  const std::string tag = std::to_string(static_cast<unsigned long>(::getpid()));
  const std::string src_path = dir + "/absort_" + hex + ".c";
  const std::string tmp_so = so_path + "." + tag + ".tmp";
  // The source also goes through a process-unique temp + rename, so a racing
  // process's compiler never reads a half-written file -- rename replaces
  // atomically, and every writer installs identical content-addressed bytes.
  const std::string tmp_src = src_path + "." + tag + ".tmp";
  if (!write_file(tmp_src, source) ||
      ::rename(tmp_src.c_str(), src_path.c_str()) != 0) {
    (void)::unlink(tmp_src.c_str());
    g_fallbacks.fetch_add(1, std::memory_order_relaxed);
    set_error(error, "cannot write kernel source: " + src_path);
    return nullptr;
  }
  // Straight-line kernels get no benefit from gcc's expensive -O2 passes
  // (there is no control flow), and -O1's register allocation goes
  // superlinear on one huge function (measured on this class of kernel:
  // ~2k instrs 2.5s, ~15k instrs ~3min, ~52k instrs >13min), while -O0
  // stays linear (~0.2ms/instr: 52k instrs in 10s) and the emitted
  // locals-based code is already branch-free.  So -O1 only for programs
  // small enough to finish in seconds.  -march=native is attempted first
  // for wider vector ISAs.
  const char* const opt = p.instrs.size() > 4'000 ? "-O0" : "-O1";
  const bool built = run_compiler(cc, std::string(opt) + " -march=native", src_path, tmp_so) ||
                     run_compiler(cc, opt, src_path, tmp_so);
  if (!built) {
    (void)::unlink(tmp_so.c_str());
    g_fallbacks.fetch_add(1, std::memory_order_relaxed);
    set_error(error, "kernel compile failed ('" + cc + "' on " + src_path + ")");
    return nullptr;
  }
  if (::rename(tmp_so.c_str(), so_path.c_str()) != 0) {
    // A rename refusal is not a build failure: if a racing process installed
    // the entry between our existence check and here, its file is the same
    // content-addressed kernel, so load it as a cache hit instead of falling
    // back.  Only an absent so_path after a failed rename is fatal.
    (void)::unlink(tmp_so.c_str());
    if (!file_exists(so_path)) {
      g_fallbacks.fetch_add(1, std::memory_order_relaxed);
      set_error(error, "cannot install kernel: " + so_path);
      return nullptr;
    }
  }
  auto k = load_kernel(so_path, p, hash, error);
  if (!k) {
    g_fallbacks.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  g_compiles.fetch_add(1, std::memory_order_relaxed);
  reg.emplace(hash, k);
  return k;
#else
  g_fallbacks.fetch_add(1, std::memory_order_relaxed);
  set_error(error, "native backend unavailable on this platform");
  return nullptr;
#endif
}

}  // namespace absort::netlist
