#pragma once
// BatchOptions: the one knob bundle every batch-evaluation entry point takes.
//
// PR 1-2 threaded a bare `std::size_t threads` through three layers
// (BinarySorter::sort_batch -> model-B overrides -> BatchRunner /
// for_each_block_range), which left no room to grow the API: adding a second
// knob would have rippled a parameter through every signature.  BatchOptions
// is that growth point.  It lives in netlist (the lowest layer that consumes
// it) and is re-exported as sorters::BatchOptions, the name user code spells.
//
// PR 7 replaced the `bool optimize` flag with {opt_level, backend}: with a
// third evaluation path (the native codegen backend of netlist/codegen.hpp),
// backend selection became an explicit enum threaded through one path --
// BatchRunner, BatchSorter, SortService, and the CLI all decide the engine
// here instead of through scattered bools and #ifdefs.

#include <cstddef>
#include <string_view>

namespace absort::netlist {

/// Which engine evaluates a compiled word program.
enum class Backend {
  /// Resolve at engine-build time: the ABSORT_BACKEND environment variable
  /// when set (values: auto|interpreter|simd|native), else Native when a
  /// working C toolchain is found, else Simd.  ABSORT_SCALAR_WORDS keeps
  /// forcing scalar words (it degrades Vec to Word for every backend).
  Auto,
  /// The scalar word interpreter: run_program over 64-bit words, one word
  /// per slot lane group.  Same memory layout as Simd, fewer lanes per op.
  Interpreter,
  /// The wide interpreter: GCC-vector Vec ops (256 lanes, 512 x2-unrolled).
  Simd,
  /// Native codegen: the word program lowered to C, compiled to a shared
  /// object by the system compiler, and dlopen'd (see netlist/codegen.hpp
  /// and netlist/native_engine.hpp).  Falls back to Simd -- counted as a
  /// jit_fallback -- when no compiler is found or compilation fails.
  Native,
};

/// Canonical lowercase name ("auto", "interpreter", "simd", "native").
[[nodiscard]] constexpr const char* to_string(Backend b) noexcept {
  switch (b) {
    case Backend::Auto: return "auto";
    case Backend::Interpreter: return "interpreter";
    case Backend::Simd: return "simd";
    case Backend::Native: return "native";
  }
  return "?";
}

/// The valid spellings, for registry-style error messages.
[[nodiscard]] constexpr const char* backend_names() noexcept {
  return "auto|interpreter|simd|native";
}

/// Parses a backend name; returns false (leaving `out` untouched) on an
/// unknown spelling so callers can list backend_names().
[[nodiscard]] inline bool parse_backend(std::string_view name, Backend& out) noexcept {
  for (const Backend b :
       {Backend::Auto, Backend::Interpreter, Backend::Simd, Backend::Native}) {
    if (name == to_string(b)) {
      out = b;
      return true;
    }
  }
  return false;
}

struct BatchOptions {
  /// Worker threads (including the calling thread); 0 = hardware
  /// concurrency.  Always clamped to the available passes, so small batches
  /// never spawn idle workers.
  std::size_t threads = 0;

  /// Word-program optimization level: 0 keeps the naive lowering (only
  /// useful for differential tests and compile-time-sensitive one-shot
  /// batches), >= 1 runs the optimizing backend (program_opt.hpp).
  int opt_level = 1;

  /// Which engine evaluates the compiled program (see Backend).  The
  /// resolved choice is observable through BitSlicedEvaluator::backend()
  /// and BatchSorter::backend().
  Backend backend = Backend::Auto;
};

}  // namespace absort::netlist
