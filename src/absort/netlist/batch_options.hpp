#pragma once
// BatchOptions: the one knob bundle every batch-evaluation entry point takes.
//
// PR 1-2 threaded a bare `std::size_t threads` through three layers
// (BinarySorter::sort_batch -> model-B overrides -> BatchRunner /
// for_each_block_range), which left no room to grow the API: adding a second
// knob would have rippled a parameter through every signature.  BatchOptions
// is that growth point.  It lives in netlist (the lowest layer that consumes
// it) and is re-exported as sorters::BatchOptions, the name user code spells.

#include <cstddef>

namespace absort::netlist {

struct BatchOptions {
  /// Worker threads (including the calling thread); 0 = hardware
  /// concurrency.  Always clamped to the available passes, so small batches
  /// never spawn idle workers.
  std::size_t threads = 0;

  /// Run the optimizing backend (program_opt.hpp) on compiled word programs.
  /// Off is only useful for differential tests and compile-time-sensitive
  /// one-shot batches.
  bool optimize = true;
};

}  // namespace absort::netlist
