#include "absort/netlist/analyze.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace absort::netlist {
namespace {

constexpr std::size_t idx(Kind k) noexcept { return static_cast<std::size_t>(k); }

}  // namespace

CostModel CostModel::paper_unit() {
  CostModel m;
  m.name = "paper-unit";
  m.cost.fill(1.0);
  m.depth.fill(1.0);
  // Inputs and constants are not circuit elements; wiring is free.
  m.cost[idx(Kind::Input)] = 0;
  m.cost[idx(Kind::Const)] = 0;
  m.depth[idx(Kind::Input)] = 0;
  m.depth[idx(Kind::Const)] = 0;
  // Footnote 4 of the paper: "the cost of each 4x4 switch is roughly
  // equivalent to the cost of four 2x2 switches", with unit depth.
  m.cost[idx(Kind::Switch4x4)] = 4;
  return m;
}

CostModel CostModel::gate_level() {
  CostModel m;
  m.name = "gate-level";
  m.cost.fill(1.0);
  m.depth.fill(1.0);
  m.cost[idx(Kind::Input)] = 0;
  m.cost[idx(Kind::Const)] = 0;
  m.depth[idx(Kind::Input)] = 0;
  m.depth[idx(Kind::Const)] = 0;
  // 2:1 mux = (a AND !s) OR (b AND s): 3-4 gates, depth 2.
  m.cost[idx(Kind::Mux21)] = 3;
  m.depth[idx(Kind::Mux21)] = 2;
  // 2x2 switch = two 2:1 muxes sharing the select.
  m.cost[idx(Kind::Switch2x2)] = 6;
  m.depth[idx(Kind::Switch2x2)] = 2;
  // binary comparator = one AND + one OR, depth 1.
  m.cost[idx(Kind::Comparator)] = 2;
  m.depth[idx(Kind::Comparator)] = 1;
  // 1:2 demux = two AND gates (one with negated select), depth 2.
  m.cost[idx(Kind::Demux12)] = 3;
  m.depth[idx(Kind::Demux12)] = 2;
  // 4x4 pattern switch = four 4:1 muxes (three 2:1 muxes each).
  m.cost[idx(Kind::Switch4x4)] = 36;
  m.depth[idx(Kind::Switch4x4)] = 4;
  return m;
}

CostReport analyze(const Circuit& c, const CostModel& model) {
  CostReport r;
  r.inventory = c.inventory();
  std::vector<double> wire_depth(c.num_wires(), 0.0);
  for (const auto& comp : c.components()) {
    const auto k = idx(comp.kind);
    r.cost += model.cost[k];
    if (comp.kind != Kind::Input && comp.kind != Kind::Const) ++r.components;
    double in_depth = 0.0;
    for (std::size_t i = 0; i < comp.nin; ++i) {
      in_depth = std::max(in_depth, wire_depth[comp.in[i]]);
    }
    const double out_depth = in_depth + model.depth[k];
    for (std::size_t i = 0; i < comp.nout; ++i) wire_depth[comp.out[i]] = out_depth;
  }
  for (WireId w : c.output_wires()) r.depth = std::max(r.depth, wire_depth[w]);
  return r;
}

std::string summarize(const CostReport& r) {
  std::ostringstream os;
  os << "cost=" << r.cost << " depth=" << r.depth << " [";
  bool first = true;
  for (std::size_t k = 0; k < kNumKinds; ++k) {
    if (r.inventory[k] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << kind_name(static_cast<Kind>(k)) << "=" << r.inventory[k];
  }
  os << "]";
  return os.str();
}

}  // namespace absort::netlist
