#include "absort/netlist/transform.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace absort::netlist {
namespace {

// Control-input position for kinds that have one; -1 otherwise.
int control_slot(Kind k) {
  switch (k) {
    case Kind::Mux21:
    case Kind::Switch2x2: return 2;
    case Kind::Demux12: return 1;
    case Kind::Switch4x4: return 4;  // the low select bit
    default: return -1;
  }
}

}  // namespace

void validate(const Circuit& c) {
  std::vector<bool> defined(c.num_wires(), false);
  std::size_t input_count = 0;
  for (std::size_t i = 0; i < c.components().size(); ++i) {
    const auto& comp = c.components()[i];
    for (std::size_t j = 0; j < comp.nin; ++j) {
      const WireId w = comp.in[j];
      if (w >= c.num_wires() || !defined[w]) {
        throw std::logic_error("validate: component " + std::to_string(i) +
                               " reads undefined wire");
      }
    }
    for (std::size_t j = 0; j < comp.nout; ++j) {
      const WireId w = comp.out[j];
      if (w >= c.num_wires() || defined[w]) {
        throw std::logic_error("validate: component " + std::to_string(i) +
                               " redefines or overflows wire");
      }
      defined[w] = true;
    }
    if (comp.kind == Kind::Input) ++input_count;
    if (comp.kind == Kind::Switch4x4 && comp.aux >= c.swap4_tables().size()) {
      throw std::logic_error("validate: switch4x4 references unregistered pattern table");
    }
  }
  if (input_count != c.num_inputs()) throw std::logic_error("validate: input count mismatch");
  for (WireId w : c.output_wires()) {
    if (w >= c.num_wires() || !defined[w]) throw std::logic_error("validate: undefined output");
  }
}

std::string to_dot(const Circuit& c, std::size_t max_components) {
  if (c.num_components() > max_components) {
    throw std::invalid_argument("to_dot: circuit exceeds max_components (" +
                                std::to_string(c.num_components()) + " > " +
                                std::to_string(max_components) + ")");
  }
  // Map each wire to its producing component for edge drawing.
  std::vector<std::size_t> producer(c.num_wires(), 0);
  for (std::size_t i = 0; i < c.components().size(); ++i) {
    const auto& comp = c.components()[i];
    for (std::size_t j = 0; j < comp.nout; ++j) producer[comp.out[j]] = i;
  }
  std::ostringstream os;
  os << "digraph absort {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n";
  for (std::size_t i = 0; i < c.components().size(); ++i) {
    const auto& comp = c.components()[i];
    os << "  c" << i << " [label=\"" << kind_name(comp.kind) << "\"";
    if (comp.kind == Kind::Input) os << ", shape=triangle";
    if (comp.kind == Kind::Const) os << ", label=\"" << int(comp.aux) << "\", shape=circle";
    os << "];\n";
    for (std::size_t j = 0; j < comp.nin; ++j) {
      os << "  c" << producer[comp.in[j]] << " -> c" << i << ";\n";
    }
  }
  for (std::size_t o = 0; o < c.output_wires().size(); ++o) {
    os << "  out" << o << " [shape=plaintext, label=\"y" << o << "\"];\n";
    os << "  c" << producer[c.output_wires()[o]] << " -> out" << o << ";\n";
  }
  os << "}\n";
  return os.str();
}

bool fault_applicable(const Circuit& c, const Fault& f) {
  if (f.component >= c.num_components()) return false;
  const auto& comp = c.components()[f.component];
  switch (f.kind) {
    case FaultKind::StuckControl0:
    case FaultKind::StuckControl1: return control_slot(comp.kind) >= 0;
    case FaultKind::OutputsSwapped: return comp.nout >= 2;
  }
  return false;
}

BitVec eval_with_fault(const Circuit& c, const BitVec& in, const Fault& f) {
  if (!fault_applicable(c, f)) throw std::invalid_argument("eval_with_fault: not applicable");
  if (in.size() != c.num_inputs()) throw std::invalid_argument("eval_with_fault: input arity");
  std::vector<Bit> w(c.num_wires(), 0);
  std::size_t next_input = 0;
  for (std::size_t i = 0; i < c.components().size(); ++i) {
    const auto& comp = c.components()[i];
    const bool faulted = (i == f.component);
    // Effective control value, honouring stuck-at faults.
    const auto ctrl = [&](int slot) -> Bit {
      const Bit real = w[comp.in[static_cast<std::size_t>(slot)]];
      if (!faulted) return real;
      if (f.kind == FaultKind::StuckControl0) return 0;
      if (f.kind == FaultKind::StuckControl1) return 1;
      return real;
    };
    Bit o0 = 0, o1 = 0;
    switch (comp.kind) {
      case Kind::Input: o0 = in[next_input++] & 1; break;
      case Kind::Const: o0 = comp.aux; break;
      case Kind::Not: o0 = static_cast<Bit>(1 - w[comp.in[0]]); break;
      case Kind::And: o0 = static_cast<Bit>(w[comp.in[0]] & w[comp.in[1]]); break;
      case Kind::Or: o0 = static_cast<Bit>(w[comp.in[0]] | w[comp.in[1]]); break;
      case Kind::Xor: o0 = static_cast<Bit>(w[comp.in[0]] ^ w[comp.in[1]]); break;
      case Kind::Mux21: o0 = ctrl(2) ? w[comp.in[1]] : w[comp.in[0]]; break;
      case Kind::Demux12:
        o0 = ctrl(1) ? Bit{0} : w[comp.in[0]];
        o1 = ctrl(1) ? w[comp.in[0]] : Bit{0};
        break;
      case Kind::Comparator:
        o0 = static_cast<Bit>(w[comp.in[0]] & w[comp.in[1]]);
        o1 = static_cast<Bit>(w[comp.in[0]] | w[comp.in[1]]);
        break;
      case Kind::Switch2x2:
        if (ctrl(2)) {
          o0 = w[comp.in[1]];
          o1 = w[comp.in[0]];
        } else {
          o0 = w[comp.in[0]];
          o1 = w[comp.in[1]];
        }
        break;
      case Kind::Switch4x4: {
        const std::size_t s =
            static_cast<std::size_t>(w[comp.in[5]]) * 2 + static_cast<std::size_t>(ctrl(4));
        const auto& pat = c.swap4_tables()[comp.aux][s];
        Bit vals[4];
        for (std::size_t q = 0; q < 4; ++q) vals[q] = w[comp.in[pat[q]]];
        if (faulted && f.kind == FaultKind::OutputsSwapped) std::swap(vals[0], vals[1]);
        for (std::size_t q = 0; q < 4; ++q) w[comp.out[q]] = vals[q];
        continue;  // outputs written already
      }
    }
    if (faulted && f.kind == FaultKind::OutputsSwapped && comp.nout >= 2) std::swap(o0, o1);
    if (comp.nout >= 1) w[comp.out[0]] = o0;
    if (comp.nout >= 2) w[comp.out[1]] = o1;
  }
  BitVec out(c.num_outputs());
  for (std::size_t i = 0; i < c.output_wires().size(); ++i) out[i] = w[c.output_wires()[i]];
  return out;
}

}  // namespace absort::netlist
