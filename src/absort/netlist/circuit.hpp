#pragma once
// Component-level circuit graph ("netlist").
//
// This is the substrate every network in the paper is built on.  A Circuit is
// an append-only DAG of primitive components; wires are produced by exactly
// one component output and may fan out freely.  Builders append components in
// topological order by construction (an operand wire must already exist), so
// evaluation is a single linear pass.
//
// Primitive set and unit accounting follow Section II of the paper:
// "it will be assumed that each of 2x2 switch, 2x1 multiplexer, and 1x2
// demultiplexer has unit cost and unit depth"; constant-fanin logic gates
// (the comparator's AND/OR pair, prefix-adder cells, select logic) are also
// unit-cost constant-fanin elements.  See CostModel in analyze.hpp for the
// exact per-kind charging, including an alternative gate-level model.

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "absort/util/bitvec.hpp"

namespace absort::netlist {

using WireId = std::uint32_t;
inline constexpr WireId kNoWire = 0xFFFFFFFFu;

enum class Kind : std::uint8_t {
  Input,       ///< primary input; 0 in, 1 out
  Const,       ///< constant 0/1; 0 in, 1 out
  Not,         ///< 1 in, 1 out
  And,         ///< 2 in, 1 out
  Or,          ///< 2 in, 1 out
  Xor,         ///< 2 in, 1 out
  Mux21,       ///< in = {a0, a1, sel}; out = sel ? a1 : a0
  Demux12,     ///< in = {d, sel}; out0 = sel?0:d, out1 = sel?d:0
  Comparator,  ///< in = {a, b}; out0 = min = a AND b, out1 = max = a OR b
  Switch2x2,   ///< in = {a, b, ctrl}; ctrl=0 straight (a,b), ctrl=1 crossed (b,a)
  Switch4x4,   ///< in = {d0..d3, s0, s1}; out[q] = d[pattern[s1*2+s0][q]] (see Swap4Patterns)
};

/// Number of distinct component kinds (for inventory arrays).
inline constexpr std::size_t kNumKinds = 11;

/// A 4x4 switch realizes one of four fixed data permutations, chosen by its
/// two select bits.  pattern[s][q] = index of the input routed to output q
/// when the select value is s (s = s1*2 + s0).  The paper's IN-SWAP and
/// OUT-SWAP networks are four-way swappers with specific pattern tables.
using Swap4Patterns = std::array<std::array<std::uint8_t, 4>, 4>;

[[nodiscard]] const char* kind_name(Kind k) noexcept;

struct Component {
  Kind kind;
  std::uint8_t nin;
  std::uint8_t nout;
  std::uint8_t aux;  ///< Const: the constant value; Switch4x4: pattern-table index.
  std::array<WireId, 6> in;
  std::array<WireId, 4> out;
};

/// Append-only component graph with named primary outputs.
class Circuit {
 public:
  // -- builder interface ----------------------------------------------------

  /// Appends a primary input; inputs are numbered in creation order.
  WireId input();

  /// Appends `n` primary inputs and returns their wires in order.
  std::vector<WireId> inputs(std::size_t n);

  WireId constant(Bit value);
  WireId not_gate(WireId a);
  WireId and_gate(WireId a, WireId b);
  WireId or_gate(WireId a, WireId b);
  WireId xor_gate(WireId a, WireId b);

  /// out = sel ? a1 : a0.
  WireId mux(WireId a0, WireId a1, WireId sel);

  /// Returns {out0, out1}: out0 = sel ? 0 : d, out1 = sel ? d : 0.
  std::pair<WireId, WireId> demux(WireId d, WireId sel);

  /// Returns {min, max} of two bits (the paper's binary comparator: the
  /// upper output takes the smaller value so ascending order results).
  std::pair<WireId, WireId> comparator(WireId a, WireId b);

  /// Controlled 2x2 crossbar: ctrl=0 passes (a,b) straight, ctrl=1 crosses.
  std::pair<WireId, WireId> switch2x2(WireId a, WireId b, WireId ctrl);

  /// Registers a pattern table for 4x4 switches; returns its index (aux).
  std::uint8_t register_swap4_patterns(const Swap4Patterns& p);

  /// 4x4 switch: routes four data wires per the registered pattern table,
  /// chosen by select value s1*2 + s0.
  std::array<WireId, 4> switch4x4(std::array<WireId, 4> d, WireId s0, WireId s1,
                                  std::uint8_t pattern_table);

  /// Marks a wire as a primary output (outputs are ordered by marking order).
  void mark_output(WireId w);
  void mark_outputs(std::span<const WireId> ws);

  // -- inspection -----------------------------------------------------------

  [[nodiscard]] std::size_t num_components() const noexcept { return comps_.size(); }
  [[nodiscard]] std::size_t num_wires() const noexcept { return num_wires_; }
  [[nodiscard]] std::size_t num_inputs() const noexcept { return input_wires_.size(); }
  [[nodiscard]] std::size_t num_outputs() const noexcept { return output_wires_.size(); }
  [[nodiscard]] const std::vector<Component>& components() const noexcept { return comps_; }
  [[nodiscard]] const std::vector<WireId>& input_wires() const noexcept { return input_wires_; }
  [[nodiscard]] const std::vector<WireId>& output_wires() const noexcept { return output_wires_; }

  /// Component count per kind (inventory used by cost accounting and tests).
  [[nodiscard]] std::array<std::size_t, kNumKinds> inventory() const noexcept;

  // -- evaluation -----------------------------------------------------------

  /// Evaluates the circuit on `in` (size must equal num_inputs()) and returns
  /// the primary-output values in marking order.
  [[nodiscard]] BitVec eval(const BitVec& in) const;

  /// As eval(), but also exposes the value of every wire (indexed by WireId)
  /// for tracing/debug.
  [[nodiscard]] BitVec eval(const BitVec& in, std::vector<Bit>& wire_values) const;

  [[nodiscard]] const std::vector<Swap4Patterns>& swap4_tables() const noexcept {
    return swap4_tables_;
  }

 private:
  WireId new_wire() { return num_wires_++; }
  void check_wire(WireId w, const char* ctx) const;

  std::vector<Component> comps_;
  std::vector<WireId> input_wires_;
  std::vector<WireId> output_wires_;
  std::vector<Swap4Patterns> swap4_tables_;
  WireId num_wires_ = 0;
};

}  // namespace absort::netlist
