#pragma once
// Build, load, and cache native kernels for compiled word programs.
//
// This is the runtime half of the native backend (codegen.hpp emits the C):
//
//   emit  -- lower the optimized WordProgram to a C translation unit;
//   hash  -- 64-bit FNV-1a over (source, compiler identity, lane config):
//            identical programs share one kernel even when reached through
//            different (sorter, n) engine keys;
//   cache -- two levels.  An in-process registry keyed by hash (kernels are
//            process-lifetime: shared objects are never dlclosed, so a
//            function pointer handed to an engine can never dangle), and an
//            on-disk directory of compiled .so files (ABSORT_JIT_CACHE,
//            default $TMPDIR/absort-jit) that survives restarts -- a warm
//            service start skips the compiler entirely;
//   build -- write the source next to the cache entry, invoke the system
//            compiler (ABSORT_CC, then CC, then "cc") to a unique temp
//            file, and rename() it into place, so concurrent processes
//            racing on one cache entry each install a complete file;
//   load  -- dlopen(RTLD_NOW | RTLD_LOCAL) and validate the emitted ABI
//            array before any kernel function can run, so a stale or
//            truncated cache file degrades to a rebuild, never a crash.
//
// In-process builds serialize on one mutex: concurrent engine compilations
// racing on the same hash resolve to one compile plus cache hits.
//
// Every failure path (no compiler, compile error, bad ABI) returns null and
// counts a jit fallback; callers degrade to the Simd interpreter.  The
// process-wide JitCounters feed ServiceStats' jit_* fields.

#include <cstdint>
#include <memory>
#include <string>

#include "absort/netlist/batch_options.hpp"
#include "absort/netlist/program_opt.hpp"

namespace absort::netlist {

/// A loaded native kernel: the three entry points of the emitted shared
/// object (signatures mirror BitSlicedEvaluator::eval_pass /
/// eval_pass_simd / eval_pass_simd_x2's in/out pointers; kernels need no
/// scratch -- slots live in locals).  The dlopen handle is retained and
/// never closed, so the pointers stay valid for the process lifetime.
struct NativeKernel {
  using Fn = void (*)(const void* in, void* out);
  Fn run_word = nullptr;
  Fn run_simd = nullptr;
  Fn run_simd_x2 = nullptr;
  std::uint64_t hash = 0;  ///< content hash (also the cache-file key)
};

/// Process-wide JIT telemetry (monotonic; snapshot-and-diff for per-service
/// reporting).
struct JitCounters {
  std::uint64_t compiles = 0;    ///< compiler runs that produced a kernel
  std::uint64_t cache_hits = 0;  ///< kernels served from memory or disk cache
  std::uint64_t fallbacks = 0;   ///< failed Native attempts (degraded to Simd)
};
[[nodiscard]] JitCounters jit_counters() noexcept;

/// Builds (or fetches from cache) the native kernel for `p`.  Returns null
/// on any failure -- missing compiler, compile error, ABI mismatch -- after
/// counting a fallback; `error`, when non-null, receives a one-line reason.
[[nodiscard]] std::shared_ptr<const NativeKernel> build_native_kernel(
    const WordProgram& p, std::string* error = nullptr);

/// Whether the configured compiler can produce a loadable shared object
/// (probed once per compiler string, cached).  Auto resolves to Native only
/// when this holds.
[[nodiscard]] bool native_toolchain_available();

/// Auto engages Native only for programs up to this many instructions.
/// Past it, the kernel must be compiled at -O0 (gcc's -O1 register
/// allocation is superlinear on one huge straight-line function -- see the
/// measurements in native_engine.cpp), and a -O0 kernel's stack-slot
/// traffic measured *slower* than the Simd interpreter (prefix n=1024:
/// 114k vs 147k vectors/s).  An explicit Backend::Native request (API or
/// ABSORT_BACKEND=native) is always honored regardless of size.
inline constexpr std::size_t kNativeAutoMaxInstrs = 4'000;

/// Resolves Backend::Auto: the ABSORT_BACKEND environment variable when it
/// names a backend (unknown values are ignored), else Native when
/// native_toolchain_available(), else Simd.  Explicit backends pass through
/// unchanged.
[[nodiscard]] Backend resolve_backend(Backend requested);

/// As above with the compiled program's size available: Auto declines
/// Native past kNativeAutoMaxInstrs (ABSORT_BACKEND=native still forces
/// it).  This is the overload engine constructors use.
[[nodiscard]] Backend resolve_backend(Backend requested, std::size_t program_instrs);

/// The on-disk kernel cache directory: $ABSORT_JIT_CACHE, else
/// $TMPDIR/absort-jit, else /tmp/absort-jit.  (Created lazily on first
/// build.)
[[nodiscard]] std::string jit_cache_dir();

/// The compiler command the builder will invoke: $ABSORT_CC, else $CC,
/// else "cc".
[[nodiscard]] std::string jit_compiler();

}  // namespace absort::netlist
