#pragma once
// Wiring permutations (zero-cost in the paper's accounting).
//
// A "wiring" is a rearrangement of a bundle of wires; the paper uses two-way
// and four-way perfect shuffles and their reverses to build swappers, and the
// shuffle connection in the odd-even merge networks.  Wirings never create
// components -- they are pure index permutations on std::vector<WireId>.

#include <cstddef>
#include <vector>

#include "absort/netlist/circuit.hpp"

namespace absort::netlist::wiring {

/// Perfect w-way shuffle: input is w contiguous blocks of n/w wires; output
/// interleaves them (block-major -> round-robin).  out[w*i + j] = in[j*(n/w) + i].
/// For w=2 this is the classic perfect shuffle (riffle).
[[nodiscard]] std::vector<WireId> shuffle(const std::vector<WireId>& in, std::size_t w);

/// Inverse of shuffle(in, w).
[[nodiscard]] std::vector<WireId> unshuffle(const std::vector<WireId>& in, std::size_t w);

/// Reverses the bundle.
[[nodiscard]] std::vector<WireId> reverse(const std::vector<WireId>& in);

/// Even-indexed elements followed by odd-indexed elements (odd-even split).
[[nodiscard]] std::vector<WireId> odd_even_split(const std::vector<WireId>& in);

/// Applies an arbitrary permutation: out[i] = in[perm[i]].
[[nodiscard]] std::vector<WireId> permute(const std::vector<WireId>& in,
                                          const std::vector<std::size_t>& perm);

/// Sub-bundle [begin, begin+len).
[[nodiscard]] std::vector<WireId> slice(const std::vector<WireId>& in, std::size_t begin,
                                        std::size_t len);

/// Concatenation.
[[nodiscard]] std::vector<WireId> concat(const std::vector<WireId>& a,
                                         const std::vector<WireId>& b);

}  // namespace absort::netlist::wiring
