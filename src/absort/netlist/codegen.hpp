#pragma once
// C code generation for compiled word programs.
//
// The native backend (see batch_options.hpp Backend::Native) lowers an
// optimized WordProgram to a small C translation unit and hands it to the
// system compiler (native_engine.hpp owns the compile/dlopen/cache steps).
// The emitted code mirrors the interpreter's three entry points exactly --
// one 64-lane word pass, one SIMD-vector pass, one x2-unrolled pass -- over
// the same memory layout, so a kernel slots into eval_pass / eval_pass_simd
// / eval_pass_simd_x2 with no repacking.  Each program slot becomes a local
// C variable (the register allocator sees the whole straight-line program),
// which is where the win over the interpreter comes from: no dispatch per
// instruction and no slot-buffer traffic for values that live in registers.
//
// Aliasing contract: callers may pass out == in (ColumnsortBatchSorter
// evaluates columns in place), so the emitted parameters are deliberately
// NOT `restrict` and every `out[]` store is emitted after the last `in[]`
// load -- all loads are in the instruction body, all stores in the epilogue.
//
// The emitted source is self-contained (only <stdint.h>) and deterministic
// for a given (program, lane configuration), so a 64-bit FNV-1a hash of the
// source identifies a kernel: identical programs -- even reached through
// different (sorter, n) engine keys -- map to one shared object.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "absort/netlist/program_opt.hpp"

namespace absort::netlist {

/// ABI handshake exported by every emitted kernel as
/// `const uint64_t absort_kernel_abi[4]` = {version, num_inputs,
/// num_outputs, words_per_simd_slot}; native_engine validates it after
/// dlopen so a stale or truncated cache file can never run.
inline constexpr std::uint64_t kKernelAbiVersion = 1;

/// Emits the complete C translation unit for `p`: functions
/// absort_run_word / absort_run_simd / absort_run_simd_x2 (signatures
/// matching the interpreter's eval_pass family) plus the ABI array.  The
/// SIMD functions use a GCC vector_size(32) type when the host build does
/// (wordvec::kSimdWords > 1) and plain uint64_t words under
/// ABSORT_SCALAR_WORDS, keeping the kernel layout-compatible either way.
[[nodiscard]] std::string emit_c_source(const WordProgram& p);

/// 64-bit FNV-1a (seedable so callers can chain compiler identity and lane
/// configuration into a kernel's cache key).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s,
                                    std::uint64_t seed = 0xCBF29CE484222325ULL) noexcept;

}  // namespace absort::netlist
