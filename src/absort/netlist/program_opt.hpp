#pragma once
// The WordInstr IR and its optimizing backend.
//
// BitSlicedEvaluator lowers a Circuit to a flat straight-line program of
// word operations (see batch_eval.hpp).  The lowering is deliberately
// naive -- one fixed template per component kind -- so the same Switch4x4
// expands to twelve muxes even when its pattern table routes an input
// straight through, and the two shared lowering temporaries force every
// pass to keep one word (or SIMD vector) per circuit wire live.
//
// optimize_program() runs classic straight-line passes over the closed op
// set {Load, Const0/1, Not, And, Or, Xor, AndNot, Mux}:
//
//   1. SSA conversion      -- slots are renamed to single-assignment values
//                             (the lowering reuses its Switch4x4 temps);
//   2. constant folding    -- Const0/Const1 operands evaluate at compile
//                             time, including through Mux selects;
//   3. copy / NOT propagation -- folded ops that degenerate to a copy or a
//                             double negation forward their source;
//   4. algebraic rewriting -- Mux with equal/constant/complement arms
//                             becomes And/Or/Xor/AndNot or a copy, x op x
//                             collapses, And(a, Not b) fuses to AndNot;
//   5. value numbering     -- structurally identical ops (commutative ops
//                             normalized) are computed once (CSE);
//   6. dead-op elimination -- backward from the program outputs;
//   7. linear-scan slot re-allocation -- values are packed into the fewest
//                             slots (peak live count), shrinking a pass's
//                             working set to fit in cache.
//
// The optimized program is bit-identical to the original on every input
// (the batch tests check every registered sorter); ProgramStats reports the
// shrinkage so benches and the CLI can quantify it.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace absort::netlist {

/// One word operation of a compiled straight-line program.  Operand slots
/// a/b/c index the pass-local word buffer; `dst` is written by the
/// instruction and (after slot re-allocation) may reuse an operand's slot --
/// each lane w reads its operands' word w before storing word w.
struct WordInstr {
  enum class Op : std::uint8_t {
    Load,    ///< dst = input word a (a = primary-input position)
    Const0,  ///< dst = all-zero
    Const1,  ///< dst = all-one
    Not,     ///< dst = ~a
    And,     ///< dst = a & b
    Or,      ///< dst = a | b
    Xor,     ///< dst = a ^ b
    AndNot,  ///< dst = a & ~b
    Mux,     ///< dst = c ? b : a, lanewise  (= a ^ (c & (a ^ b)))
  };
  Op op;
  std::uint32_t dst;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
};

/// A compiled word program plus the I/O metadata needed to run it: the
/// number of primary inputs, the slot-buffer size one pass needs, and the
/// slot holding each primary output after the program has run.
struct WordProgram {
  std::vector<WordInstr> instrs;
  std::vector<std::uint32_t> output_slots;
  std::size_t num_inputs = 0;
  std::size_t num_slots = 0;
};

/// Shrinkage report of one optimize_program() run.
struct ProgramStats {
  std::size_t ops_before = 0;    ///< instructions as lowered
  std::size_t ops_after = 0;     ///< instructions after optimization
  std::size_t slots_before = 0;  ///< slot-buffer words per pass, as lowered
  std::size_t slots_after = 0;   ///< slot-buffer words after re-allocation
  std::size_t peak_live = 0;     ///< max values simultaneously live
};

/// Returns an optimized program computing bit-identical outputs to `p` for
/// every input.  `p` must be well formed: operands of each instruction were
/// written earlier (or are Load/Const), and output_slots refer to written
/// slots.
[[nodiscard]] WordProgram optimize_program(const WordProgram& p, ProgramStats* stats = nullptr);

}  // namespace absort::netlist
