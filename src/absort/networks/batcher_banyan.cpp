#include "absort/networks/batcher_banyan.hpp"

#include <stdexcept>

#include "absort/sorters/batcher_oem.hpp"
#include "absort/util/math.hpp"

namespace absort::networks {

BatcherBanyan::BatcherBanyan(std::size_t n)
    : BatcherBanyan(n, std::make_unique<sorters::BatcherOemSorter>(n)) {}

BatcherBanyan::BatcherBanyan(std::size_t n, std::unique_ptr<sorters::OpNetworkSorter> sorter)
    : n_(n), sorter_(std::move(sorter)), banyan_(n, OmegaFlow::Forward) {
  require_pow2(n, 2, "BatcherBanyan");
  if (!sorter_ || sorter_->size() != n) {
    throw std::invalid_argument("BatcherBanyan: sorter size mismatch");
  }
}

std::vector<std::size_t> BatcherBanyan::route(
    const std::vector<std::optional<std::size_t>>& dest) const {
  if (dest.size() != n_) throw std::invalid_argument("BatcherBanyan: dest size mismatch");
  std::vector<bool> seen(n_, false);
  std::vector<std::uint64_t> keys(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    if (dest[i]) {
      if (*dest[i] >= n_ || seen[*dest[i]]) {
        throw std::invalid_argument("BatcherBanyan: duplicate or out-of-range destination");
      }
      seen[*dest[i]] = true;
      keys[i] = *dest[i];
    } else {
      keys[i] = n_;  // idle packets sort behind every real destination
    }
  }
  // Stage 1: sort by destination.  perm[p] = input now on sorter output p.
  const auto perm = sorter_->route_words(keys);
  // Stage 2: the actives are now concentrated (outputs 0..r-1) and monotone
  // in destination -- banyan-routable without conflicts.
  std::vector<std::optional<std::size_t>> staged(n_);
  for (std::size_t p = 0; p < n_; ++p) {
    if (dest[perm[p]]) staged[p] = *dest[perm[p]];
  }
  const auto routed = banyan_.route(staged);
  if (routed.blocked()) {
    throw std::logic_error("BatcherBanyan: banyan blocked on sorted traffic");
  }
  std::vector<std::size_t> out(n_, n_);
  for (std::size_t o = 0; o < n_; ++o) {
    if (routed.output_source[o] != n_) out[o] = perm[routed.output_source[o]];
  }
  return out;
}

netlist::CostReport BatcherBanyan::cost_report() const {
  const double w = static_cast<double>(ilog2(n_) + 1);  // dest + validity
  netlist::CostReport r;
  r.components = sorter_->comparator_count() + OmegaNetwork::switch_count(n_);
  r.cost = 3.0 * w * static_cast<double>(sorter_->comparator_count()) +
           static_cast<double>(OmegaNetwork::switch_count(n_));
  r.depth = w * static_cast<double>(sorter_->comparator_depth()) +
            static_cast<double>(OmegaNetwork::stages(n_));
  return r;
}

}  // namespace absort::networks
