#include "absort/networks/omega.hpp"

#include <stdexcept>

#include "absort/netlist/wiring.hpp"
#include "absort/util/math.hpp"

namespace absort::networks {
namespace {

struct Packet {
  std::size_t source = 0;
  std::size_t dest = 0;
  bool valid = false;
};

}  // namespace

OmegaNetwork::OmegaNetwork(std::size_t n, OmegaFlow flow) : n_(n), flow_(flow) {
  require_pow2(n, 2, "OmegaNetwork");
}

std::size_t OmegaNetwork::switch_count(std::size_t n) { return n / 2 * ilog2(n); }

std::size_t OmegaNetwork::stages(std::size_t n) { return ilog2(n); }

OmegaNetwork::RouteResult OmegaNetwork::route(
    const std::vector<std::optional<std::size_t>>& dest) const {
  if (dest.size() != n_) throw std::invalid_argument("OmegaNetwork: dest size mismatch");
  const std::size_t m = ilog2(n_);
  std::vector<Packet> cur(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    if (dest[i]) {
      if (*dest[i] >= n_) throw std::invalid_argument("OmegaNetwork: destination out of range");
      cur[i] = {i, *dest[i], true};
    }
  }
  RouteResult result;
  result.output_source.assign(n_, n_);
  std::vector<Packet> tmp(n_);
  for (std::size_t s = 0; s < m; ++s) {
    if (flow_ == OmegaFlow::Forward) {
      // Perfect shuffle first: position p -> rotate-left(p) over m bits.
      for (std::size_t p = 0; p < n_; ++p) {
        tmp[((p << 1) | (p >> (m - 1))) & (n_ - 1)] = cur[p];
      }
      cur = tmp;
    }
    const std::size_t bit = flow_ == OmegaFlow::Forward ? m - 1 - s : s;
    std::vector<Packet> next(n_);
    for (std::size_t sw = 0; sw < n_ / 2; ++sw) {
      Packet& a = cur[2 * sw];
      Packet& b = cur[2 * sw + 1];
      const auto port = [&](const Packet& p) { return (p.dest >> bit) & 1u; };
      if (a.valid && b.valid && port(a) == port(b)) {
        ++result.conflicts;
        b.valid = false;  // the upper packet wins; the loser is dropped
      }
      if (a.valid) next[2 * sw + port(a)] = a;
      if (b.valid) next[2 * sw + port(b)] = b;
    }
    cur = std::move(next);
    if (flow_ == OmegaFlow::Reverse) {
      // Unshuffle after switching: position p -> rotate-right(p).
      for (std::size_t p = 0; p < n_; ++p) {
        tmp[((p >> 1) | ((p & 1) << (m - 1))) & (n_ - 1)] = cur[p];
      }
      cur = tmp;
    }
  }
  for (std::size_t p = 0; p < n_; ++p) {
    if (cur[p].valid) result.output_source[p] = cur[p].source;
  }
  return result;
}

netlist::Circuit OmegaNetwork::build_circuit() const {
  netlist::Circuit c;
  auto data = c.inputs(n_);
  const std::size_t m = ilog2(n_);
  for (std::size_t s = 0; s < m; ++s) {
    if (flow_ == OmegaFlow::Forward) data = netlist::wiring::shuffle(data, 2);
    const auto ctrls = c.inputs(n_ / 2);
    for (std::size_t sw = 0; sw < n_ / 2; ++sw) {
      const auto [o0, o1] = c.switch2x2(data[2 * sw], data[2 * sw + 1], ctrls[sw]);
      data[2 * sw] = o0;
      data[2 * sw + 1] = o1;
    }
    if (flow_ == OmegaFlow::Reverse) data = netlist::wiring::unshuffle(data, 2);
  }
  c.mark_outputs(data);
  return c;
}

std::vector<Bit> OmegaNetwork::compute_controls(
    const std::vector<std::optional<std::size_t>>& dest) const {
  if (dest.size() != n_) throw std::invalid_argument("OmegaNetwork: dest size mismatch");
  const std::size_t m = ilog2(n_);
  std::vector<Packet> cur(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    if (dest[i]) cur[i] = {i, *dest[i], true};
  }
  std::vector<Bit> controls;
  controls.reserve(switch_count(n_));
  std::vector<Packet> tmp(n_);
  for (std::size_t s = 0; s < m; ++s) {
    if (flow_ == OmegaFlow::Forward) {
      for (std::size_t p = 0; p < n_; ++p) {
        tmp[((p << 1) | (p >> (m - 1))) & (n_ - 1)] = cur[p];
      }
      cur = tmp;
    }
    const std::size_t bit = flow_ == OmegaFlow::Forward ? m - 1 - s : s;
    std::vector<Packet> next(n_);
    for (std::size_t sw = 0; sw < n_ / 2; ++sw) {
      const Packet& a = cur[2 * sw];
      const Packet& b = cur[2 * sw + 1];
      const auto port = [&](const Packet& p) { return (p.dest >> bit) & 1u; };
      if (a.valid && b.valid && port(a) == port(b)) {
        throw std::invalid_argument("OmegaNetwork::compute_controls: pattern blocks");
      }
      Bit ctrl = 0;
      if (a.valid) {
        ctrl = static_cast<Bit>(port(a));  // crossed iff the upper packet goes down
      } else if (b.valid) {
        ctrl = static_cast<Bit>(1 - port(b));  // crossed iff the lower packet goes up
      }
      controls.push_back(ctrl);
      if (a.valid) next[2 * sw + port(a)] = a;
      if (b.valid) next[2 * sw + port(b)] = b;
    }
    cur = std::move(next);
    if (flow_ == OmegaFlow::Reverse) {
      for (std::size_t p = 0; p < n_; ++p) {
        tmp[((p >> 1) | ((p & 1) << (m - 1))) & (n_ - 1)] = cur[p];
      }
      cur = tmp;
    }
  }
  return controls;
}

}  // namespace absort::networks
