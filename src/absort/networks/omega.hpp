#pragma once
// The omega (shuffle-exchange) network: lg n stages, each a perfect shuffle
// followed by n/2 2x2 switches, self-routed by destination-address bits
// (most significant first).
//
// Two flow directions share the hardware shape:
//  * Forward (the textbook omega): shuffle, then switch by destination bits
//    most-significant first.  Blocking in general (bit reversal collides),
//    but passes the identity and all cyclic shifts.
//  * Reverse (the inverse banyan): switch by destination bits
//    least-significant first, then unshuffle.  This direction is the classic
//    nonblocking *concentrator* fabric: any monotone traffic whose
//    destinations form a contiguous block routes without conflicts.  Paired
//    with a rank (prefix-count) unit it is the "ranking tree-based
//    construction [11], [13]" of Section IV, whose O(n lg^2 n) cost the
//    paper's sorter-based concentrators undercut.  See
//    rank_concentrator.hpp.

#include <cstddef>
#include <optional>
#include <vector>

#include "absort/netlist/analyze.hpp"
#include "absort/netlist/circuit.hpp"
#include "absort/util/bitvec.hpp"

namespace absort::networks {

enum class OmegaFlow {
  Forward,  ///< shuffle, then route by destination bit (MSB first)
  Reverse,  ///< route by destination bit (LSB first), then unshuffle
};

class OmegaNetwork {
 public:
  explicit OmegaNetwork(std::size_t n, OmegaFlow flow = OmegaFlow::Forward);

  [[nodiscard]] OmegaFlow flow() const noexcept { return flow_; }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// (n/2) lg n switches, depth lg n.
  [[nodiscard]] static std::size_t switch_count(std::size_t n);
  [[nodiscard]] static std::size_t stages(std::size_t n);

  struct RouteResult {
    /// For each output: the input whose packet arrived there (n = none).
    std::vector<std::size_t> output_source;
    std::size_t conflicts = 0;  ///< switch-port collisions (losers dropped)
    [[nodiscard]] bool blocked() const noexcept { return conflicts != 0; }
  };

  /// Self-routes packets; dest[i] is input i's destination or nullopt for an
  /// idle input.  Destinations need not be distinct -- collisions are
  /// counted and the losing packet is dropped (reported, never silently).
  [[nodiscard]] RouteResult route(const std::vector<std::optional<std::size_t>>& dest) const;

  /// Data-path netlist: n data inputs followed by the control input of every
  /// switch, stage by stage (controls are what the self-routing logic would
  /// set; compute_controls produces them for conflict-free patterns).
  [[nodiscard]] netlist::Circuit build_circuit() const;

  /// Switch settings realizing a conflict-free pattern (throws if blocked).
  /// Ordered exactly as build_circuit()'s control inputs.
  [[nodiscard]] std::vector<Bit> compute_controls(
      const std::vector<std::optional<std::size_t>>& dest) const;

 private:
  std::size_t n_;
  OmegaFlow flow_;
};

}  // namespace absort::networks
