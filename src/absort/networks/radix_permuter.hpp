#pragma once
// The radix permuter built from binary sorters (Section IV, Fig. 10).
//
// Jan and Oruc's radix permuter is recursively constructed from a
// distributor, two concentrators, and two half-size radix permuters; the
// paper's observation is that one binary sorter replaces all three front
// blocks: "by sorting the leading bits in the destination address, a binary
// sorter can distribute the inputs to the upper and lower half-size radix
// permuters".  With the fish binary sorter this yields the first permutation
// network with O(n lg n) bit-level cost and O(lg^3 n) bit-level routing time
// (eqs. 26-27); it is packet-switched, because the fish sorter relies on
// time multiplexing.  With the mux-merger sorter it yields an O(n lg^2 n)
// circuit-switched permuter.

#include <cstddef>
#include <memory>
#include <vector>

#include "absort/netlist/analyze.hpp"
#include "absort/sorters/sorter.hpp"

namespace absort::networks {

class RadixPermuter {
 public:
  /// n a power of two; `factory` supplies the embedded binary sorter at each
  /// recursion size (2, 4, ..., n).
  RadixPermuter(std::size_t n, sorters::SorterFactory factory);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Routes so that output dest[i] receives input i; returns `perm` with
  /// out[p] = in[perm[p]] (hence perm[dest[i]] == i).
  [[nodiscard]] std::vector<std::size_t> route(const std::vector<std::size_t>& dest) const;

  /// Moves payloads: result[dest[i]] = payload[i], realized by the network's
  /// recorded switch decisions.
  template <typename T>
  [[nodiscard]] std::vector<T> permute_packets(const std::vector<std::size_t>& dest,
                                               const std::vector<T>& payload) const {
    const auto perm = route(dest);
    std::vector<T> out;
    out.reserve(n_);
    for (std::size_t p : perm) out.push_back(payload[p]);
    return out;
  }

  /// Aggregate cost: one n-sorter + two (n/2)-permuters, recursively
  /// (eq. 26's recurrence), assembled from the sorters' real reports.
  [[nodiscard]] netlist::CostReport cost_report(const netlist::CostModel& m) const;

  /// Routing time: sorter time at each of the lg n levels, summed along one
  /// root-to-leaf path (the half-size permuters operate in parallel).
  [[nodiscard]] double routing_time(const netlist::CostModel& m) const;

 private:
  std::size_t n_;
  sorters::SorterFactory factory_;
};

}  // namespace absort::networks
