#pragma once
// Word-level permutation switching with a sorting network -- the "Batcher
// sorting network [3]" row of Table II, built for real.
//
// Every packet carries its lg n-bit destination address; one pass through a
// comparator network sorting the addresses realizes the permutation.  Each
// comparator must compare and exchange lg n-bit words, so the bit-level cost
// and time pick up a lg n factor over the binary network: O(n lg^3 n) cost
// and O(lg^3 n) permutation time, exactly as Table II charges.

#include <cstddef>
#include <memory>
#include <vector>

#include "absort/netlist/analyze.hpp"
#include "absort/sorters/sorter.hpp"

namespace absort::networks {

class SortingPermuter {
 public:
  /// n a power of two; the embedded comparator network is Batcher's
  /// odd-even merge sorter unless another OpNetworkSorter is supplied.
  explicit SortingPermuter(std::size_t n);
  SortingPermuter(std::size_t n, std::unique_ptr<sorters::OpNetworkSorter> network);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Routes so that output dest[i] receives input i (addresses are sorted).
  [[nodiscard]] std::vector<std::size_t> route(const std::vector<std::size_t>& dest) const;

  template <typename T>
  [[nodiscard]] std::vector<T> permute_packets(const std::vector<std::size_t>& dest,
                                               const std::vector<T>& payload) const {
    const auto perm = route(dest);
    std::vector<T> out;
    out.reserve(n_);
    for (std::size_t p : perm) out.push_back(payload[p]);
    return out;
  }

  /// Bit-level accounting for w-bit packets: each comparator becomes a w-bit
  /// compare-exchange (charged 3w cost units and w unit delays, the
  /// bit-serial realization Table II assumes).  w defaults to lg n (bare
  /// addresses).
  [[nodiscard]] netlist::CostReport cost_report(std::size_t word_bits = 0) const;
  [[nodiscard]] double routing_time(std::size_t word_bits = 0) const;

  /// The embedded comparator network (for lowerings that replay its op
  /// program, e.g. the word-level route circuit of networks/permuters.cpp).
  [[nodiscard]] const sorters::OpNetworkSorter& network() const noexcept { return *net_; }

 private:
  std::size_t n_;
  std::unique_ptr<sorters::OpNetworkSorter> net_;
};

}  // namespace absort::networks
