#pragma once
// (n, m)-concentrators from binary sorters (Section IV).
//
// "It should be easy to see that a binary sorter does form an (n, n)-
// concentrator.  All that is needed is to tag the inputs to be concentrated
// with 0's and tag the remaining inputs with 1's."  Sorting the tags moves
// the r tagged packets to the first r outputs; an (n, m)-concentrator with
// m < n is the same network with only the first m outputs exposed, valid
// whenever r <= m.

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "absort/sorters/sorter.hpp"

namespace absort::networks {

class Concentrator {
 public:
  /// Wraps a sorter as an (n, m)-concentrator; m defaults to n.
  explicit Concentrator(std::unique_ptr<sorters::BinarySorter> sorter, std::size_t m = 0);

  [[nodiscard]] std::size_t inputs() const noexcept { return n_; }
  [[nodiscard]] std::size_t outputs() const noexcept { return m_; }
  [[nodiscard]] const sorters::BinarySorter& sorter() const noexcept { return *sorter_; }

  /// Routes the active inputs to the first r outputs; returns, for each of
  /// the m outputs, the input index now connected to it (an output holding a
  /// non-active packet is reported as such by the mask order).  Throws if
  /// more than m inputs are active.
  [[nodiscard]] std::vector<std::size_t> concentrate(const std::vector<bool>& active) const;

  /// Moves payloads: result[j] = payload of the j-th concentrated packet for
  /// j < r; entries r..m-1 hold whatever idle packets the network carried.
  template <typename T>
  [[nodiscard]] std::vector<T> concentrate_packets(const std::vector<bool>& active,
                                                   const std::vector<T>& payload) const {
    const auto perm = concentrate(active);
    std::vector<T> out;
    out.reserve(perm.size());
    for (std::size_t j : perm) out.push_back(payload[j]);
    return out;
  }

 private:
  std::unique_ptr<sorters::BinarySorter> sorter_;
  std::size_t n_;
  std::size_t m_;
};

}  // namespace absort::networks
