#include "absort/networks/permuters.hpp"

#include <stdexcept>
#include <utility>

#include "absort/networks/benes.hpp"
#include "absort/networks/omega.hpp"
#include "absort/networks/sorting_permuter.hpp"
#include "absort/util/math.hpp"

namespace absort::permuters {

bool is_permutation(const std::vector<std::size_t>& dest, std::size_t n) {
  if (dest.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (const std::size_t d : dest) {
    if (d >= n || seen[d]) return false;
    seen[d] = true;
  }
  return true;
}

namespace {

using netlist::Circuit;
using netlist::WireId;

void check_permutation(const std::vector<std::size_t>& dest, std::size_t n, const char* who) {
  if (!is_permutation(dest, n)) {
    throw std::invalid_argument(std::string(who) + ": dest is not a permutation");
  }
}

/// Inverts a permutation: out[dest[i]] = i.
std::vector<std::size_t> invert(const std::vector<std::size_t>& dest) {
  std::vector<std::size_t> inv(dest.size());
  for (std::size_t i = 0; i < dest.size(); ++i) inv[dest[i]] = i;
  return inv;
}

/// Shared by the two switch fabrics: their circuits are the n-wide datapath
/// (n data inputs first, then the control input of every switch in
/// compute_controls order), so one request rides lg n lanes -- lane b feeds
/// data input i with bit b of i and every lane the same controls.  Output j
/// of lane b is then bit b of the source index routed to output j.
class SwitchFabricPermuter : public Permuter {
 public:
  SwitchFabricPermuter(std::size_t n, const char* who)
      : Permuter(n), who_(who), addr_bits_(ilog2(n)) {
    require_pow2(n, 2, who);
  }

  [[nodiscard]] std::size_t lanes_per_request() const noexcept override { return addr_bits_; }

  [[nodiscard]] bool encode(const std::vector<std::size_t>& dest,
                            std::span<BitVec> lanes) const override {
    std::vector<Bit> controls;
    if (!controls_for(dest, controls)) return false;
    for (std::size_t b = 0; b < addr_bits_; ++b) {
      auto& lane = lanes[b].data();
      lane.resize(n_ + controls.size());
      for (std::size_t i = 0; i < n_; ++i) lane[i] = static_cast<Bit>((i >> b) & 1);
      for (std::size_t s = 0; s < controls.size(); ++s) lane[n_ + s] = controls[s];
    }
    return true;
  }

  void decode(std::span<const BitVec> lanes,
              std::vector<std::size_t>& output_source) const override {
    output_source.assign(n_, 0);
    for (std::size_t b = 0; b < addr_bits_; ++b) {
      for (std::size_t j = 0; j < n_; ++j) {
        output_source[j] |= static_cast<std::size_t>(lanes[b][j] & 1) << b;
      }
    }
  }

 protected:
  /// Switch settings for `dest` in build_circuit() control order, or false
  /// when the fabric blocks on the pattern.
  [[nodiscard]] virtual bool controls_for(const std::vector<std::size_t>& dest,
                                          std::vector<Bit>& controls) const = 0;

  const char* who_;
  std::size_t addr_bits_;  ///< lg n
};

class BenesPermuter final : public SwitchFabricPermuter {
 public:
  explicit BenesPermuter(std::size_t n) : SwitchFabricPermuter(n, "BenesPermuter"), net_(n) {}

  [[nodiscard]] std::string name() const override { return "benes"; }

  [[nodiscard]] std::optional<std::vector<std::size_t>> route(
      const std::vector<std::size_t>& dest) const override {
    check_permutation(dest, n_, who_);
    return invert(dest);  // rearrangeable: every permutation routes
  }

  [[nodiscard]] netlist::Circuit build_route_circuit() const override {
    return net_.build_circuit();
  }

 private:
  [[nodiscard]] bool controls_for(const std::vector<std::size_t>& dest,
                                  std::vector<Bit>& controls) const override {
    controls = net_.compute_controls(dest);  // throws only on a non-permutation
    return true;
  }

  networks::BenesNetwork net_;
};

class OmegaPermuter final : public SwitchFabricPermuter {
 public:
  explicit OmegaPermuter(std::size_t n) : SwitchFabricPermuter(n, "OmegaPermuter"), net_(n) {}

  [[nodiscard]] std::string name() const override { return "omega"; }

  [[nodiscard]] std::optional<std::vector<std::size_t>> route(
      const std::vector<std::size_t>& dest) const override {
    check_permutation(dest, n_, who_);
    std::vector<std::optional<std::size_t>> od(n_);
    for (std::size_t i = 0; i < n_; ++i) od[i] = dest[i];
    auto result = net_.route(od);
    if (result.blocked()) return std::nullopt;
    return std::move(result.output_source);
  }

  [[nodiscard]] netlist::Circuit build_route_circuit() const override {
    return net_.build_circuit();
  }

 private:
  [[nodiscard]] bool controls_for(const std::vector<std::size_t>& dest,
                                  std::vector<Bit>& controls) const override {
    std::vector<std::optional<std::size_t>> od(n_);
    for (std::size_t i = 0; i < n_; ++i) od[i] = dest[i];
    try {
      controls = net_.compute_controls(od);
    } catch (const std::invalid_argument&) {
      // `dest` is pre-validated (encode precondition), so the only throw
      // left is "pattern blocks" -- the fabric's Unroutable answer.
      return false;
    }
    return true;
  }

  networks::OmegaNetwork net_;
};

/// The sorting permuter's route circuit replays the embedded comparator
/// network's op program at word level: each of the n packets is a pair
/// (key = destination tag, payload = source index), lg n bits each.  Keys are
/// primary inputs (packet-major, LSB first: input i*w + b is bit b of
/// dest[i]); payloads are constants (packet i carries i).  Every comparator
/// becomes an MSB-first word comparison steering a 2x2 switch per bit pair,
/// so keys sort ascending and the payloads arrive inverted -- output j*w + b
/// is bit b of output_source[j].  One request is one lane.
class SortingRoutePermuter final : public Permuter {
 public:
  explicit SortingRoutePermuter(std::size_t n) : Permuter(n), sp_(n), addr_bits_(ilog2(n)) {}

  [[nodiscard]] std::string name() const override { return "sorting-permuter"; }

  [[nodiscard]] std::optional<std::vector<std::size_t>> route(
      const std::vector<std::size_t>& dest) const override {
    return sp_.route(dest);  // validates; a sorter routes every permutation
  }

  [[nodiscard]] std::size_t lanes_per_request() const noexcept override { return 1; }

  [[nodiscard]] netlist::Circuit build_route_circuit() const override {
    const std::size_t w = addr_bits_;
    Circuit c;
    struct Packet {
      std::vector<WireId> key;  ///< destination tag, LSB first
      std::vector<WireId> pay;  ///< source index, LSB first
    };
    std::vector<Packet> ps(n_);
    for (std::size_t i = 0; i < n_; ++i) ps[i].key = c.inputs(w);
    for (std::size_t i = 0; i < n_; ++i) {
      ps[i].pay.reserve(w);
      for (std::size_t b = 0; b < w; ++b) {
        ps[i].pay.push_back(c.constant(static_cast<Bit>((i >> b) & 1)));
      }
    }
    for (const auto& op : sp_.network().ops()) {
      if (op.kind == sorters::OpNetworkSorter::Op::Kind::Compare) {
        Packet& a = ps[op.i];
        Packet& b = ps[op.j];
        // swap iff key_a > key_b (min lands at i): MSB-first scan with the
        // classic gt/eq ladder.
        WireId gt = c.constant(0);
        WireId eq = c.constant(1);
        for (std::size_t bit = w; bit-- > 0;) {
          const WireId x = a.key[bit];
          const WireId y = b.key[bit];
          gt = c.or_gate(gt, c.and_gate(eq, c.and_gate(x, c.not_gate(y))));
          eq = c.and_gate(eq, c.not_gate(c.xor_gate(x, y)));
        }
        const auto exchange = [&](std::vector<WireId>& wa, std::vector<WireId>& wb) {
          for (std::size_t bit = 0; bit < w; ++bit) {
            const auto [o0, o1] = c.switch2x2(wa[bit], wb[bit], gt);
            wa[bit] = o0;
            wb[bit] = o1;
          }
        };
        exchange(a.key, b.key);
        exchange(a.pay, b.pay);
      } else {
        std::vector<Packet> next(n_);
        for (std::size_t p = 0; p < n_; ++p) next[p] = std::move(ps[op.perm[p]]);
        ps = std::move(next);
      }
    }
    for (std::size_t j = 0; j < n_; ++j) c.mark_outputs(ps[j].pay);
    return c;
  }

  [[nodiscard]] bool encode(const std::vector<std::size_t>& dest,
                            std::span<BitVec> lanes) const override {
    const std::size_t w = addr_bits_;
    auto& lane = lanes[0].data();
    lane.resize(n_ * w);
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t b = 0; b < w; ++b) {
        lane[i * w + b] = static_cast<Bit>((dest[i] >> b) & 1);
      }
    }
    return true;
  }

  void decode(std::span<const BitVec> lanes,
              std::vector<std::size_t>& output_source) const override {
    const std::size_t w = addr_bits_;
    output_source.assign(n_, 0);
    for (std::size_t j = 0; j < n_; ++j) {
      for (std::size_t b = 0; b < w; ++b) {
        output_source[j] |= static_cast<std::size_t>(lanes[0][j * w + b] & 1) << b;
      }
    }
  }

 private:
  networks::SortingPermuter sp_;
  std::size_t addr_bits_;  ///< lg n
};

}  // namespace

const std::vector<RegistryEntry>& registry() {
  static const std::vector<RegistryEntry> table = {
      {"sorting-permuter", "Batcher network sorting destination tags (Table II row 1)",
       [](std::size_t n) -> std::unique_ptr<Permuter> {
         return std::make_unique<SortingRoutePermuter>(n);
       }},
      {"benes", "Benes rearrangeable fabric, looping route setup",
       [](std::size_t n) -> std::unique_ptr<Permuter> {
         return std::make_unique<BenesPermuter>(n);
       }},
      {"omega", "omega (shuffle-exchange) self-routing fabric; blocking patterns unroutable",
       [](std::size_t n) -> std::unique_ptr<Permuter> {
         return std::make_unique<OmegaPermuter>(n);
       }},
  };
  return table;
}

const RegistryEntry* find_permuter(std::string_view name) {
  for (const auto& e : registry()) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

std::unique_ptr<Permuter> make_permuter(std::string_view name, std::size_t n) {
  const auto* e = find_permuter(name);
  if (!e) {
    throw std::invalid_argument("unknown permuter '" + std::string(name) +
                                "'; available: " + permuter_names());
  }
  return e->factory(n);
}

std::string permuter_names() {
  std::string out;
  for (const auto& e : registry()) {
    if (!out.empty()) out += ", ";
    out += e.name;
  }
  return out;
}

}  // namespace absort::permuters
