#include "absort/networks/benes.hpp"

#include <stdexcept>

#include "absort/util/math.hpp"

namespace absort::networks {
namespace {

using netlist::Circuit;
using netlist::WireId;

// Looping over one recursion level: assigns each input to the upper (0) or
// lower (1) subnetwork so that the two inputs of every input switch and the
// two sources of every output switch take different sides.
void loop_level(const std::vector<std::size_t>& perm, std::vector<Bit>& controls) {
  const std::size_t n = perm.size();
  if (n == 2) {
    controls.push_back(static_cast<Bit>(perm[0] == 1));
    return;
  }
  std::vector<std::size_t> inv(n);
  for (std::size_t i = 0; i < n; ++i) inv[perm[i]] = i;

  std::vector<int> side(n, -1);
  for (std::size_t s0 = 0; s0 < n / 2; ++s0) {
    std::size_t i = 2 * s0;
    if (side[i] != -1) continue;
    int cur = 0;
    // Follow the constraint chain input -> paired output -> paired input ...
    while (i < n && side[i] == -1) {
      side[i] = cur;
      const std::size_t o = perm[i];
      const std::size_t j = inv[o ^ 1];  // source of the paired output
      if (side[j] == -1) side[j] = 1 - cur;
      i = j ^ 1;  // its input-switch partner must take the other side again
      cur = 1 - side[j];
    }
  }

  // Input-stage controls: crossed iff the even input goes to the lower net.
  for (std::size_t s = 0; s < n / 2; ++s) {
    controls.push_back(static_cast<Bit>(side[2 * s] == 1));
  }

  // Build the two subpermutations.
  std::vector<std::size_t> up(n / 2), low(n / 2);
  for (std::size_t i = 0; i < n; ++i) {
    if (side[i] == 0) {
      up[i / 2] = perm[i] / 2;
    } else {
      low[i / 2] = perm[i] / 2;
    }
  }
  loop_level(up, controls);
  loop_level(low, controls);

  // Output-stage controls: crossed iff output 2t is fed from the lower net.
  for (std::size_t t = 0; t < n / 2; ++t) {
    controls.push_back(static_cast<Bit>(side[inv[2 * t]] == 1));
  }
}

std::vector<WireId> build_level(Circuit& c, const std::vector<WireId>& in) {
  const std::size_t n = in.size();
  if (n == 2) {
    const auto ctrl = c.input();
    const auto [o0, o1] = c.switch2x2(in[0], in[1], ctrl);
    return {o0, o1};
  }
  std::vector<WireId> upper, lower;
  const auto in_ctrls = c.inputs(n / 2);
  for (std::size_t s = 0; s < n / 2; ++s) {
    const auto [u, l] = c.switch2x2(in[2 * s], in[2 * s + 1], in_ctrls[s]);
    upper.push_back(u);
    lower.push_back(l);
  }
  const auto us = build_level(c, upper);
  const auto ls = build_level(c, lower);
  const auto out_ctrls = c.inputs(n / 2);
  std::vector<WireId> out(n);
  for (std::size_t t = 0; t < n / 2; ++t) {
    const auto [o0, o1] = c.switch2x2(us[t], ls[t], out_ctrls[t]);
    out[2 * t] = o0;
    out[2 * t + 1] = o1;
  }
  return out;
}

}  // namespace

BenesNetwork::BenesNetwork(std::size_t n) : n_(n) { require_pow2(n, 2, "BenesNetwork"); }

std::size_t BenesNetwork::switch_count(std::size_t n) {
  return n / 2 * (2 * ilog2(n) - 1);
}

std::size_t BenesNetwork::switch_stages(std::size_t n) { return 2 * ilog2(n) - 1; }

std::vector<Bit> BenesNetwork::compute_controls(const std::vector<std::size_t>& dest) const {
  if (dest.size() != n_) throw std::invalid_argument("BenesNetwork: dest size mismatch");
  std::vector<bool> seen(n_, false);
  for (std::size_t d : dest) {
    if (d >= n_ || seen[d]) throw std::invalid_argument("BenesNetwork: dest is not a permutation");
    seen[d] = true;
  }
  std::vector<Bit> controls;
  controls.reserve(switch_count(n_));
  loop_level(dest, controls);
  return controls;
}

netlist::Circuit BenesNetwork::build_circuit() const {
  Circuit c;
  const auto data = c.inputs(n_);
  c.mark_outputs(build_level(c, data));
  return c;
}

}  // namespace absort::networks
