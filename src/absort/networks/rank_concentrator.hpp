#pragma once
// The ranking self-routing concentrator of the [11]/[13] style that
// Section IV compares against: a rank (prefix-count) unit assigns each
// active input its output index, and an omega fabric self-routes the packets
// -- conflict-free because concentration traffic is monotone and compact.
//
// Its measured bit-level cost is Theta(n lg^2 n) (the ranking tree
// dominates), which is precisely the figure the paper quotes for the
// "ranking tree-based constructions" and the reason its sorter-based
// concentrators (O(n lg n) combinational, O(n) time-multiplexed) win.

#include <cstddef>
#include <vector>

#include "absort/netlist/analyze.hpp"
#include "absort/networks/omega.hpp"

namespace absort::networks {

class RankConcentrator {
 public:
  explicit RankConcentrator(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Routes the r active inputs to outputs 0..r-1 in input order (stable);
  /// returns the input index on each of the first r outputs.
  [[nodiscard]] std::vector<std::size_t> concentrate(const std::vector<bool>& active) const;

  /// Rank unit + omega fabric, both as real netlists.
  [[nodiscard]] netlist::CostReport cost_report(const netlist::CostModel& m) const;

 private:
  std::size_t n_;
  OmegaNetwork omega_;
};

}  // namespace absort::networks
