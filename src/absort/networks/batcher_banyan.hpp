#pragma once
// The Batcher-banyan switch: a sorting network followed by a banyan (forward
// omega) fabric -- the classical architecture that motivates cheap sorting
// networks in packet switching, and the reason concentration/permutation
// "can be cast as sorting problems" (the paper's opening sentence).
//
// Routing a *partial* permutation (some inputs idle, active destinations
// distinct): sort the packets by destination with idle packets keyed to
// infinity; the actives emerge contiguous from output 0 in destination
// order -- concentrated and monotone -- which a banyan network then routes
// without conflicts.  The sorter here is any OpNetworkSorter via its word
// face (Batcher's odd-even merge by default); the fabric is
// OmegaNetwork(Forward).

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "absort/networks/omega.hpp"
#include "absort/sorters/sorter.hpp"

namespace absort::networks {

class BatcherBanyan {
 public:
  explicit BatcherBanyan(std::size_t n);
  BatcherBanyan(std::size_t n, std::unique_ptr<sorters::OpNetworkSorter> sorter);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Routes a partial permutation: dest[i] is input i's destination (distinct
  /// among the actives) or nullopt for idle.  Returns, per output, the input
  /// whose packet arrived (n = none).  Throws on duplicate destinations.
  [[nodiscard]] std::vector<std::size_t> route(
      const std::vector<std::optional<std::size_t>>& dest) const;

  template <typename T>
  [[nodiscard]] std::vector<std::optional<T>> permute_packets(
      const std::vector<std::optional<std::size_t>>& dest, const std::vector<T>& payload) const {
    const auto src = route(dest);
    std::vector<std::optional<T>> out(n_);
    for (std::size_t o = 0; o < n_; ++o) {
      if (src[o] != n_) out[o] = payload[src[o]];
    }
    return out;
  }

  /// Bit-level accounting: the word sorter (comparators on lg n + 1-bit
  /// keys) plus the banyan fabric.
  [[nodiscard]] netlist::CostReport cost_report() const;

 private:
  std::size_t n_;
  std::unique_ptr<sorters::OpNetworkSorter> sorter_;
  OmegaNetwork banyan_;
};

}  // namespace absort::networks
