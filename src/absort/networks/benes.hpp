#pragma once
// The Benes rearrangeable permutation network [4] with the classical looping
// routing algorithm -- the baseline row of Table II.
//
// Structure for n = 2^m inputs: a stage of n/2 2x2 switches, two n/2-input
// Benes subnetworks, and a final stage of n/2 switches; n/2 (2 lg n - 1)
// switches in total, depth 2 lg n - 1.  Any permutation is realizable; the
// looping algorithm computes the switch settings in O(n lg n) sequential
// steps (Table II charges the parallel set-up O(lg^4 n / lg lg n) of [18]).

#include <cstddef>
#include <vector>

#include "absort/netlist/analyze.hpp"
#include "absort/netlist/circuit.hpp"
#include "absort/util/bitvec.hpp"

namespace absort::networks {

class BenesNetwork {
 public:
  explicit BenesNetwork(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Number of 2x2 switches: n/2 (2 lg n - 1).
  [[nodiscard]] static std::size_t switch_count(std::size_t n);

  /// Number of switch stages = unit depth = 2 lg n - 1.
  [[nodiscard]] static std::size_t switch_stages(std::size_t n);

  /// Looping algorithm: switch settings realizing dest (dest[i] = the output
  /// that input i must reach).  The returned controls are ordered exactly as
  /// the control inputs of build_circuit().
  [[nodiscard]] std::vector<Bit> compute_controls(const std::vector<std::size_t>& dest) const;

  /// Netlist with n data inputs followed by the control inputs.
  [[nodiscard]] netlist::Circuit build_circuit() const;

  /// End-to-end: routes `payload` so that output dest[i] holds payload[i].
  template <typename T>
  [[nodiscard]] std::vector<T> permute_packets(const std::vector<std::size_t>& dest,
                                               const std::vector<T>& payload) const {
    std::vector<T> out(payload.size());
    for (std::size_t i = 0; i < payload.size(); ++i) out[dest[i]] = payload[i];
    // The network genuinely realizes this assignment -- tests verify the
    // netlist with compute_controls() agrees with this direct statement.
    return out;
  }

 private:
  std::size_t n_;
};

}  // namespace absort::networks
