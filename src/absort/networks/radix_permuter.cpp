#include "absort/networks/radix_permuter.hpp"

#include <stdexcept>
#include <utility>

#include "absort/util/math.hpp"

namespace absort::networks {

RadixPermuter::RadixPermuter(std::size_t n, sorters::SorterFactory factory)
    : n_(n), factory_(std::move(factory)) {
  require_pow2(n, 2, "RadixPermuter");
  if (!factory_) throw std::invalid_argument("RadixPermuter: null sorter factory");
}

std::vector<std::size_t> RadixPermuter::route(const std::vector<std::size_t>& dest) const {
  if (dest.size() != n_) throw std::invalid_argument("RadixPermuter: dest size mismatch");
  std::vector<bool> seen(n_, false);
  for (std::size_t d : dest) {
    if (d >= n_ || seen[d]) throw std::invalid_argument("RadixPermuter: dest is not a permutation");
    seen[d] = true;
  }
  // cur[p] = index of the input currently on wire p; addr[p] = its
  // destination.  Each level sorts a window by one destination-address bit,
  // most significant first, exactly as Fig. 10 cascades binary sorters.
  std::vector<std::size_t> cur(n_), addr = dest;
  for (std::size_t i = 0; i < n_; ++i) cur[i] = i;
  for (std::size_t window = n_; window >= 2; window /= 2) {
    const std::size_t bit = ilog2(window) - 1;
    const auto sorter = factory_(window);
    for (std::size_t lo = 0; lo < n_; lo += window) {
      BitVec tags(window);
      for (std::size_t i = 0; i < window; ++i) {
        tags[i] = static_cast<Bit>((addr[lo + i] >> bit) & 1);
      }
      const auto perm = sorter->route(tags);
      std::vector<std::size_t> cur2(window), addr2(window);
      for (std::size_t i = 0; i < window; ++i) {
        cur2[i] = cur[lo + perm[i]];
        addr2[i] = addr[lo + perm[i]];
      }
      for (std::size_t i = 0; i < window; ++i) {
        cur[lo + i] = cur2[i];
        addr[lo + i] = addr2[i];
      }
    }
  }
  // After the last level every packet sits at its destination.
  for (std::size_t p = 0; p < n_; ++p) {
    if (addr[p] != p) throw std::logic_error("RadixPermuter: routing failed to converge");
  }
  return cur;
}

netlist::CostReport RadixPermuter::cost_report(const netlist::CostModel& m) const {
  netlist::CostReport acc;
  double depth = 0;
  for (std::size_t window = n_; window >= 2; window /= 2) {
    const auto r = factory_(window)->cost_report(m);
    const double copies = static_cast<double>(n_ / window);
    acc.cost += copies * r.cost;
    acc.components += static_cast<std::size_t>(copies) * r.components;
    for (std::size_t i = 0; i < netlist::kNumKinds; ++i) {
      acc.inventory[i] += static_cast<std::size_t>(copies) * r.inventory[i];
    }
    depth += r.depth;  // one sorter per level on any input-output path
  }
  acc.depth = depth;
  return acc;
}

double RadixPermuter::routing_time(const netlist::CostModel& m) const {
  double t = 0;
  for (std::size_t window = n_; window >= 2; window /= 2) {
    t += factory_(window)->sorting_time(m);
  }
  return t;
}

}  // namespace absort::networks
