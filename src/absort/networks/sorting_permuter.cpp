#include "absort/networks/sorting_permuter.hpp"

#include <stdexcept>

#include "absort/sorters/batcher_oem.hpp"
#include "absort/util/math.hpp"

namespace absort::networks {

SortingPermuter::SortingPermuter(std::size_t n)
    : SortingPermuter(n, std::make_unique<sorters::BatcherOemSorter>(n)) {}

SortingPermuter::SortingPermuter(std::size_t n,
                                 std::unique_ptr<sorters::OpNetworkSorter> network)
    : n_(n), net_(std::move(network)) {
  require_pow2(n, 2, "SortingPermuter");
  if (!net_ || net_->size() != n) {
    throw std::invalid_argument("SortingPermuter: network size mismatch");
  }
}

std::vector<std::size_t> SortingPermuter::route(const std::vector<std::size_t>& dest) const {
  if (dest.size() != n_) throw std::invalid_argument("SortingPermuter: dest size mismatch");
  std::vector<bool> seen(n_, false);
  std::vector<std::uint64_t> keys(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    if (dest[i] >= n_ || seen[dest[i]]) {
      throw std::invalid_argument("SortingPermuter: dest is not a permutation");
    }
    seen[dest[i]] = true;
    keys[i] = dest[i];
  }
  // Sorting distinct addresses 0..n-1 ascending places each packet at its
  // destination output.
  return net_->route_words(keys);
}

netlist::CostReport SortingPermuter::cost_report(std::size_t word_bits) const {
  const double w = static_cast<double>(word_bits ? word_bits : ilog2(n_));
  netlist::CostReport r;
  r.components = net_->comparator_count();
  r.cost = 3.0 * w * static_cast<double>(net_->comparator_count());
  r.depth = w * static_cast<double>(net_->comparator_depth());
  return r;
}

double SortingPermuter::routing_time(std::size_t word_bits) const {
  return cost_report(word_bits).depth;  // self-routing: time = traversal depth
}

}  // namespace absort::networks
