#include "absort/networks/rank_concentrator.hpp"

#include <stdexcept>

#include "absort/blocks/rank.hpp"
#include "absort/util/math.hpp"

namespace absort::networks {

RankConcentrator::RankConcentrator(std::size_t n) : n_(n), omega_(n, OmegaFlow::Reverse) {
  require_pow2(n, 2, "RankConcentrator");
}

std::vector<std::size_t> RankConcentrator::concentrate(const std::vector<bool>& active) const {
  if (active.size() != n_) throw std::invalid_argument("RankConcentrator: mask size mismatch");
  std::vector<std::optional<std::size_t>> dest(n_);
  std::size_t rank = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (active[i]) dest[i] = rank++;
  }
  const auto routed = omega_.route(dest);
  if (routed.blocked()) {
    // Monotone compact traffic never blocks an omega network; reaching this
    // line means the substrate is broken, not the request pattern.
    throw std::logic_error("RankConcentrator: omega blocked on monotone compact traffic");
  }
  std::vector<std::size_t> out(routed.output_source.begin(),
                               routed.output_source.begin() + static_cast<std::ptrdiff_t>(rank));
  return out;
}

netlist::CostReport RankConcentrator::cost_report(const netlist::CostModel& m) const {
  // Rank unit netlist.
  netlist::Circuit rank;
  const auto bits = rank.inputs(n_);
  for (const auto& count : blocks::prefix_counts(rank, bits)) {
    for (auto w : count) rank.mark_output(w);
  }
  const auto rank_report = netlist::analyze(rank, m);
  const auto fabric_report = netlist::analyze(omega_.build_circuit(), m);
  netlist::CostReport acc = rank_report;
  acc.cost += fabric_report.cost;
  acc.components += fabric_report.components;
  for (std::size_t i = 0; i < netlist::kNumKinds; ++i) {
    acc.inventory[i] += fabric_report.inventory[i];
  }
  acc.depth = rank_report.depth + fabric_report.depth;
  return acc;
}

}  // namespace absort::networks
