#pragma once
// The permuter registry: every permutation-routing fabric in the library
// behind one interface, mirroring sorters/registry.hpp so the serving layer
// (service/permute_service.hpp) and the front ends can pick a fabric by name.
//
// A Permuter answers one question -- "which input's packet lands on each
// output when input i is destined for output dest[i]?" -- through two faces
// that must agree bit for bit:
//
//  (a) route(): the host reference -- the value-level routing simulation the
//      networks/ classes already provide (Benes looping, omega self-routing,
//      address-sorting).  Returns nullopt when the fabric blocks on the
//      pattern (omega on e.g. bit reversal); rearrangeable fabrics never do.
//  (b) build_route_circuit() + encode()/decode(): the same computation as a
//      netlist evaluated by the bit-sliced batch engine.  encode() packs a
//      request's destination permutation into lanes_per_request() input
//      vectors of the circuit; decode() reads the routed source indices back
//      out of the corresponding output vectors.  This is the face the
//      serving layer compiles once per (permuter, n) and amortizes across
//      micro-batches.
//
// Unified result convention: output_source[j] = i iff input i's packet
// arrives at output j, i.e. output_source is the inverse of dest.  For the
// switch-fabric permuters (benes, omega) the circuit carries the binary
// expansion of each source index through the actual switch datapath, one
// address bit per lane, with the control inputs set by the host routing
// algorithm; for the sorting permuter the circuit *is* the routing algorithm
// -- a word-level comparator network sorting the destination tags, with the
// source indices riding along as payload.

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "absort/netlist/circuit.hpp"
#include "absort/util/bitvec.hpp"

namespace absort::permuters {

/// True iff `dest` has size n and is a permutation of {0, .., n-1}.
[[nodiscard]] bool is_permutation(const std::vector<std::size_t>& dest, std::size_t n);

class Permuter {
 public:
  virtual ~Permuter() = default;

  Permuter(const Permuter&) = delete;
  Permuter& operator=(const Permuter&) = delete;

  /// Fabric size n (inputs == outputs == n).
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Host reference routing: output_source with output_source[dest[i]] == i,
  /// or nullopt when the fabric blocks on this pattern.  `dest` must be a
  /// permutation of size n (throws std::invalid_argument otherwise).
  [[nodiscard]] virtual std::optional<std::vector<std::size_t>> route(
      const std::vector<std::size_t>& dest) const = 0;

  /// The route computation as a netlist (compile once, evaluate per batch).
  [[nodiscard]] virtual netlist::Circuit build_route_circuit() const = 0;

  /// Input vectors of build_route_circuit() one request occupies: the
  /// address width lg n for the switch fabrics (one address bit per lane),
  /// 1 for the sorting permuter (whole words in one vector).
  [[nodiscard]] virtual std::size_t lanes_per_request() const noexcept = 0;

  /// Packs `dest` into lanes[0 .. lanes_per_request()): each lane is resized
  /// to the circuit's input count.  Returns false when the fabric blocks on
  /// the pattern (the lanes are then unspecified and must not be evaluated).
  /// Precondition: `dest` is a permutation of size n (the serving layer
  /// validates at submit; direct callers use is_permutation()).
  [[nodiscard]] virtual bool encode(const std::vector<std::size_t>& dest,
                                    std::span<BitVec> lanes) const = 0;

  /// Reads output_source back from the circuit's output vectors for the
  /// lanes encode() produced; output_source is resized to n.
  virtual void decode(std::span<const BitVec> lanes,
                      std::vector<std::size_t>& output_source) const = 0;

 protected:
  explicit Permuter(std::size_t n) : n_(n) {}

  std::size_t n_;
};

/// Factory signature (may throw std::invalid_argument on a bad n; every
/// registered fabric requires n a power of two >= 2).
using PermuterFactory = std::function<std::unique_ptr<Permuter>(std::size_t n)>;

struct RegistryEntry {
  const char* name;         ///< the name user-facing tools spell (e.g. "benes")
  const char* description;  ///< one-line description for listings
  PermuterFactory factory;  ///< builds the permuter at size n
};

/// Every registered permuter, in listing order.
[[nodiscard]] const std::vector<RegistryEntry>& registry();

/// Entry for `name`, or nullptr if unknown.
[[nodiscard]] const RegistryEntry* find_permuter(std::string_view name);

/// Builds permuter `name` at size n; unknown names throw std::invalid_argument
/// listing the available permuters.
[[nodiscard]] std::unique_ptr<Permuter> make_permuter(std::string_view name, std::size_t n);

/// Comma-separated registered names (for usage/error messages).
[[nodiscard]] std::string permuter_names();

}  // namespace absort::permuters
