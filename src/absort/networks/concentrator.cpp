#include "absort/networks/concentrator.hpp"

namespace absort::networks {

Concentrator::Concentrator(std::unique_ptr<sorters::BinarySorter> sorter, std::size_t m)
    : sorter_(std::move(sorter)) {
  if (!sorter_) throw std::invalid_argument("Concentrator: null sorter");
  n_ = sorter_->size();
  m_ = (m == 0) ? n_ : m;
  if (m_ > n_) throw std::invalid_argument("Concentrator: m > n");
}

std::vector<std::size_t> Concentrator::concentrate(const std::vector<bool>& active) const {
  if (active.size() != n_) throw std::invalid_argument("Concentrator: mask size mismatch");
  std::size_t r = 0;
  BitVec tags(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    tags[i] = active[i] ? 0 : 1;  // wanted packets sort to the front
    r += active[i] ? 1u : 0u;
  }
  if (r > m_) {
    throw std::invalid_argument("Concentrator: " + std::to_string(r) + " active > m = " +
                                std::to_string(m_));
  }
  auto perm = sorter_->route(tags);
  perm.resize(m_);  // an (n, m)-concentrator exposes the first m outputs
  return perm;
}

}  // namespace absort::networks
