#include "absort/sorters/sorter.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "absort/netlist/batch_eval.hpp"
#include "absort/netlist/wiring.hpp"

namespace absort::sorters {

namespace {

/// BatchSorter over a combinational sorter: one compiled circuit + the
/// persistent BatchRunner pool.
class CircuitBatchSorter final : public BatchSorter {
 public:
  CircuitBatchSorter(std::size_t n, const netlist::Circuit& c, const BatchOptions& opts)
      : BatchSorter(n), runner_(c, opts) {}

  [[nodiscard]] netlist::Backend backend() const noexcept override {
    return runner_.backend();
  }

  void run(std::span<const BitVec> batch, std::span<BitVec> out) override {
    runner_.run(batch, out);
  }

 private:
  netlist::BatchRunner runner_;
};

/// Fallback BatchSorter for sorters without a bit-sliced path: per-vector
/// sort() sharded across threads (references the sorter; see the
/// make_batch_sorter contract).
class PerVectorBatchSorter final : public BatchSorter {
 public:
  PerVectorBatchSorter(const BinarySorter& sorter, const BatchOptions& opts)
      : BatchSorter(sorter.size()), sorter_(sorter), opts_(opts) {}

  /// No word program behind this engine at all: per-vector sort() is the
  /// scalar reference path, reported as Interpreter.
  [[nodiscard]] netlist::Backend backend() const noexcept override {
    return netlist::Backend::Interpreter;
  }

  void run(std::span<const BitVec> batch, std::span<BitVec> out) override {
    if (out.size() != batch.size()) {
      throw std::invalid_argument(sorter_.name() + ": sort_batch out.size() != batch.size()");
    }
    // The batch dimension is the only parallelism -- shard whole vectors
    // across threads, at least 64 vectors per worker so tiny batches stay
    // on the calling thread.  sort() validates each input's arity.
    std::size_t threads = opts_.threads;
    if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    threads = std::min(threads, std::max<std::size_t>(1, batch.size() / 64));
    netlist::for_each_block_range(batch.size(), threads, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) out[i] = sorter_.sort(batch[i]);
    });
  }

 private:
  const BinarySorter& sorter_;
  BatchOptions opts_;
};

}  // namespace

std::vector<BitVec> BatchSorter::run(std::span<const BitVec> batch) {
  std::vector<BitVec> out(batch.size());
  run(batch, out);
  return out;
}

void BatchSorter::check(std::span<const BitVec> batch, std::span<BitVec> out) const {
  if (out.size() != batch.size()) {
    throw std::invalid_argument("BatchSorter: run out.size() != batch.size()");
  }
  for (const auto& v : batch) {
    if (v.size() != n_) throw std::invalid_argument("BatchSorter: wrong input size in batch");
  }
}

BitVec BinarySorter::sort(const BitVec& in) const {
  if (in.size() != n_) throw std::invalid_argument(name() + ": wrong input size");
  const auto perm = route(in);
  BitVec out(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = in[perm[i]];
  return out;
}

std::vector<BitVec> BinarySorter::sort_batch(std::span<const BitVec> batch,
                                             const BatchOptions& opts) const {
  std::vector<BitVec> out(batch.size());
  sort_batch(batch, out, opts);
  return out;
}

void BinarySorter::check_batch(std::span<const BitVec> batch, std::span<BitVec> out) const {
  if (out.size() != batch.size()) {
    throw std::invalid_argument(name() + ": sort_batch out.size() != batch.size()");
  }
  for (const auto& v : batch) {
    if (v.size() != n_) throw std::invalid_argument(name() + ": wrong input size in batch");
  }
}

void BinarySorter::sort_batch(std::span<const BitVec> batch, std::span<BitVec> out,
                              const BatchOptions& opts) const {
  check_batch(batch, out);
  make_batch_sorter(opts)->run(batch, out);
}

std::unique_ptr<BatchSorter> BinarySorter::make_batch_sorter(const BatchOptions& opts) const {
  if (is_combinational()) {
    return std::make_unique<CircuitBatchSorter>(n_, build_circuit(), opts);
  }
  return std::make_unique<PerVectorBatchSorter>(*this, opts);
}

netlist::Circuit BinarySorter::build_circuit() const {
  throw std::logic_error(name() + ": not a combinational network (model B); no single circuit");
}

netlist::CostReport BinarySorter::cost_report(const netlist::CostModel& m) const {
  const auto c = build_circuit();
  return netlist::analyze(c, m);
}

std::vector<std::size_t> OpNetworkSorter::route(const BitVec& tags) const {
  if (tags.size() != n_) throw std::invalid_argument(name() + ": wrong input size");
  std::vector<Bit> t(tags.begin(), tags.end());
  std::vector<std::size_t> pos(n_);
  for (std::size_t i = 0; i < n_; ++i) pos[i] = i;
  for (const auto& op : ops_) {
    if (op.kind == Op::Kind::Compare) {
      // Binary comparator: moves data only when (upper, lower) = (1, 0).
      if (t[op.i] > t[op.j]) {
        std::swap(t[op.i], t[op.j]);
        std::swap(pos[op.i], pos[op.j]);
      }
    } else {
      std::vector<Bit> t2(n_);
      std::vector<std::size_t> pos2(n_);
      for (std::size_t p = 0; p < n_; ++p) {
        t2[p] = t[op.perm[p]];
        pos2[p] = pos[op.perm[p]];
      }
      t = std::move(t2);
      pos = std::move(pos2);
    }
  }
  return pos;
}

netlist::Circuit OpNetworkSorter::build_circuit() const {
  return circuit_of_prefix(ops_.size());
}

netlist::Circuit OpNetworkSorter::circuit_of_prefix(std::size_t nops) const {
  netlist::Circuit c;
  auto wires = c.inputs(n_);
  for (std::size_t x = 0; x < nops && x < ops_.size(); ++x) {
    const auto& op = ops_[x];
    if (op.kind == Op::Kind::Compare) {
      const auto [lo, hi] = c.comparator(wires[op.i], wires[op.j]);
      wires[op.i] = lo;
      wires[op.j] = hi;
    } else {
      wires = netlist::wiring::permute(wires, op.perm);
    }
  }
  c.mark_outputs(wires);
  return c;
}

std::vector<std::uint64_t> OpNetworkSorter::sort_words(std::vector<std::uint64_t> keys) const {
  if (keys.size() != n_) throw std::invalid_argument(name() + ": wrong input size");
  for (const auto& op : ops_) {
    if (op.kind == Op::Kind::Compare) {
      if (keys[op.i] > keys[op.j]) std::swap(keys[op.i], keys[op.j]);
    } else {
      std::vector<std::uint64_t> next(n_);
      for (std::size_t p = 0; p < n_; ++p) next[p] = keys[op.perm[p]];
      keys = std::move(next);
    }
  }
  return keys;
}

std::vector<std::size_t> OpNetworkSorter::route_words(
    const std::vector<std::uint64_t>& keys) const {
  if (keys.size() != n_) throw std::invalid_argument(name() + ": wrong input size");
  std::vector<std::uint64_t> k = keys;
  std::vector<std::size_t> pos(n_);
  for (std::size_t i = 0; i < n_; ++i) pos[i] = i;
  for (const auto& op : ops_) {
    if (op.kind == Op::Kind::Compare) {
      if (k[op.i] > k[op.j]) {
        std::swap(k[op.i], k[op.j]);
        std::swap(pos[op.i], pos[op.j]);
      }
    } else {
      std::vector<std::uint64_t> k2(n_);
      std::vector<std::size_t> p2(n_);
      for (std::size_t p = 0; p < n_; ++p) {
        k2[p] = k[op.perm[p]];
        p2[p] = pos[op.perm[p]];
      }
      k = std::move(k2);
      pos = std::move(p2);
    }
  }
  return pos;
}

std::size_t OpNetworkSorter::comparator_count() const noexcept {
  std::size_t n = 0;
  for (const auto& op : ops_) n += (op.kind == Op::Kind::Compare) ? 1 : 0;
  return n;
}

std::size_t OpNetworkSorter::comparator_depth() const {
  std::vector<std::size_t> lane(n_, 0);
  for (const auto& op : ops_) {
    if (op.kind == Op::Kind::Compare) {
      const std::size_t d = std::max(lane[op.i], lane[op.j]) + 1;
      lane[op.i] = lane[op.j] = d;
    } else {
      std::vector<std::size_t> next(n_);
      for (std::size_t p = 0; p < n_; ++p) next[p] = lane[op.perm[p]];
      lane = std::move(next);
    }
  }
  std::size_t d = 0;
  for (auto v : lane) d = std::max(d, v);
  return d;
}

}  // namespace absort::sorters
