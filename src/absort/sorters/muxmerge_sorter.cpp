#include "absort/sorters/muxmerge_sorter.hpp"

#include <stdexcept>

#include "absort/blocks/swapper.hpp"
#include "absort/netlist/wiring.hpp"
#include "absort/seqclass/seqclass.hpp"
#include "absort/sorters/detail/lane.hpp"
#include "absort/util/math.hpp"

namespace absort::sorters {
namespace {

using netlist::Circuit;
using netlist::WireId;
namespace wiring = netlist::wiring;

std::vector<WireId> build_sorter_rec(Circuit& c, const std::vector<WireId>& in) {
  if (in.size() == 1) return in;
  if (in.size() == 2) {
    const auto [lo, hi] = c.comparator(in[0], in[1]);
    return {lo, hi};
  }
  const std::size_t h = in.size() / 2;
  const auto upper = build_sorter_rec(c, wiring::slice(in, 0, h));
  const auto lower = build_sorter_rec(c, wiring::slice(in, h, h));
  return build_mux_merger(c, wiring::concat(upper, lower));
}

}  // namespace

std::vector<WireId> build_mux_merger(Circuit& c, const std::vector<WireId>& in) {
  require_pow2(in.size(), 2, "build_mux_merger");
  const std::size_t m = in.size();
  if (m == 2) {
    const auto [lo, hi] = c.comparator(in[0], in[1]);
    return {lo, hi};
  }
  const std::size_t q = m / 4;
  // Select signals: the middle bit of each sorted half (the leading elements
  // of quarters 2 and 4).  s = b2*2 + b4, so b4 is the low select bit.
  const WireId b2 = in[q];
  const WireId b4 = in[3 * q];
  const auto staged = blocks::four_way_swapper(c, in, /*s0=*/b4, /*s1=*/b2,
                                               blocks::in_swap_patterns());
  const auto upper = wiring::slice(staged, 0, m / 2);
  const auto merged = build_mux_merger(c, wiring::slice(staged, m / 2, m / 2));
  return blocks::four_way_swapper(c, wiring::concat(upper, merged), /*s0=*/b4, /*s1=*/b2,
                                  blocks::out_swap_patterns());
}

std::vector<WireId> build_muxmerge_sorter(Circuit& c, const std::vector<WireId>& in) {
  return build_sorter_rec(c, in);
}

MuxMergerDecision mux_merger_decision(const BitVec& bisorted) {
  require_pow2(bisorted.size(), 4, "mux_merger_decision");
  if (!seqclass::is_bisorted(bisorted)) {
    throw std::invalid_argument("mux_merger_decision: input is not bisorted");
  }
  const std::size_t q = bisorted.size() / 4;
  MuxMergerDecision d;
  d.b2 = bisorted[q];
  d.b4 = bisorted[3 * q];
  d.select = d.b2 * 2 + d.b4;
  d.in_pattern = blocks::in_swap_patterns()[static_cast<std::size_t>(d.select)];
  d.out_pattern = blocks::out_swap_patterns()[static_cast<std::size_t>(d.select)];
  return d;
}

namespace detail {

namespace {
// Applies a quarter permutation to lanes [lo, lo+m): new quarter j gets the
// contents of old quarter pat[j].
void apply_quarters(std::vector<Lane>& v, std::size_t lo, std::size_t m,
                    const std::array<std::uint8_t, 4>& pat) {
  const std::size_t q = m / 4;
  std::vector<Lane> tmp(v.begin() + static_cast<std::ptrdiff_t>(lo),
                        v.begin() + static_cast<std::ptrdiff_t>(lo + m));
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::size_t i = 0; i < q; ++i) v[lo + j * q + i] = tmp[pat[j] * q + i];
  }
}
}  // namespace

void mux_merger_value(std::vector<Lane>& v, std::size_t lo, std::size_t m) {
  if (m == 2) {
    if (v[lo].tag > v[lo + 1].tag) std::swap(v[lo], v[lo + 1]);
    return;
  }
  const std::size_t q = m / 4;
  const std::size_t sel =
      static_cast<std::size_t>(v[lo + q].tag) * 2 + static_cast<std::size_t>(v[lo + 3 * q].tag);
  apply_quarters(v, lo, m, blocks::in_swap_patterns()[sel]);
  mux_merger_value(v, lo + m / 2, m / 2);
  apply_quarters(v, lo, m, blocks::out_swap_patterns()[sel]);
}

void muxmerge_sort_value(std::vector<Lane>& v, std::size_t lo, std::size_t m) {
  if (m <= 1) return;
  if (m == 2) {
    if (v[lo].tag > v[lo + 1].tag) std::swap(v[lo], v[lo + 1]);
    return;
  }
  muxmerge_sort_value(v, lo, m / 2);
  muxmerge_sort_value(v, lo + m / 2, m / 2);
  mux_merger_value(v, lo, m);
}

}  // namespace detail

MuxMergeSorter::MuxMergeSorter(std::size_t n) : BinarySorter(n) {
  require_pow2(n, 2, "MuxMergeSorter");
}

std::vector<std::size_t> MuxMergeSorter::route(const BitVec& tags) const {
  if (tags.size() != n_) throw std::invalid_argument("MuxMergeSorter::route: wrong input size");
  auto lanes = detail::make_lanes(tags);
  detail::muxmerge_sort_value(lanes, 0, n_);
  return detail::lane_perm(lanes);
}

netlist::Circuit MuxMergeSorter::build_circuit() const {
  Circuit c;
  const auto in = c.inputs(n_);
  c.mark_outputs(build_sorter_rec(c, in));
  return c;
}

double MuxMergeSorter::expected_unit_cost(std::size_t n) {
  if (n <= 1) return 0;
  if (n == 2) return 1;
  const double nn = static_cast<double>(n);
  return 4 * nn * lg(nn) - 7 * nn + 7;
}

double MuxMergeSorter::expected_unit_depth(std::size_t n) {
  const double l = lg(static_cast<double>(n));
  return l * l;
}

double MuxMergeSorter::paper_cost(std::size_t n) {
  const double nn = static_cast<double>(n);
  return 4 * nn * lg(nn);
}

}  // namespace absort::sorters
