#include "absort/sorters/carrying.hpp"

#include <span>
#include <stdexcept>

#include "absort/blocks/prefix_adder.hpp"
#include "absort/blocks/swapper.hpp"
#include "absort/netlist/wiring.hpp"
#include "absort/util/math.hpp"

namespace absort::sorters {
namespace {

using netlist::Circuit;
using netlist::WireId;
namespace wiring = netlist::wiring;

CarryingBundle slice(const CarryingBundle& b, std::size_t begin, std::size_t len) {
  CarryingBundle out;
  out.tags = wiring::slice(b.tags, begin, len);
  out.payload.reserve(b.payload.size());
  for (const auto& plane : b.payload) out.payload.push_back(wiring::slice(plane, begin, len));
  return out;
}

CarryingBundle concat(const CarryingBundle& a, const CarryingBundle& b) {
  CarryingBundle out;
  out.tags = wiring::concat(a.tags, b.tags);
  out.payload.reserve(a.payload.size());
  for (std::size_t p = 0; p < a.payload.size(); ++p) {
    out.payload.push_back(wiring::concat(a.payload[p], b.payload[p]));
  }
  return out;
}

// Compare-exchange of lanes i and j (i < j): the tag comparator produces the
// sorted tags; the exchange condition t_i AND NOT t_j steers one slave
// switch per payload plane.
CarryingBundle compare_lanes(Circuit& c, CarryingBundle b, std::size_t i, std::size_t j) {
  const WireId exchanged = c.and_gate(b.tags[i], c.not_gate(b.tags[j]));
  const auto [lo, hi] = c.comparator(b.tags[i], b.tags[j]);
  b.tags[i] = lo;
  b.tags[j] = hi;
  for (auto& plane : b.payload) {
    const auto [p0, p1] = c.switch2x2(plane[i], plane[j], exchanged);
    plane[i] = p0;
    plane[j] = p1;
  }
  return b;
}

// Four-way swapper applied to every plane with shared selects.
CarryingBundle swap4_all_planes(Circuit& c, const CarryingBundle& b, WireId s0, WireId s1,
                                const netlist::Swap4Patterns& pats) {
  CarryingBundle out;
  out.tags = blocks::four_way_swapper(c, b.tags, s0, s1, pats);
  out.payload.reserve(b.payload.size());
  for (const auto& plane : b.payload) {
    out.payload.push_back(blocks::four_way_swapper(c, plane, s0, s1, pats));
  }
  return out;
}

CarryingBundle merge_rec(Circuit& c, const CarryingBundle& in) {
  const std::size_t m = in.tags.size();
  if (m == 2) return compare_lanes(c, in, 0, 1);
  const std::size_t q = m / 4;
  const WireId b2 = in.tags[q];
  const WireId b4 = in.tags[3 * q];
  const auto staged = swap4_all_planes(c, in, /*s0=*/b4, /*s1=*/b2, blocks::in_swap_patterns());
  const auto upper = slice(staged, 0, m / 2);
  const auto merged = merge_rec(c, slice(staged, m / 2, m / 2));
  return swap4_all_planes(c, concat(upper, merged), b4, b2, blocks::out_swap_patterns());
}

CarryingBundle sort_rec(Circuit& c, const CarryingBundle& in) {
  const std::size_t m = in.tags.size();
  if (m == 1) return in;
  if (m == 2) return compare_lanes(c, in, 0, 1);
  const std::size_t h = m / 2;
  const auto upper = sort_rec(c, slice(in, 0, h));
  const auto lower = sort_rec(c, slice(in, h, h));
  return merge_rec(c, concat(upper, lower));
}

// ---- prefix sorter (Network 1) with payload planes -------------------------

CarryingBundle two_way_swap_all_planes(Circuit& c, const CarryingBundle& b, WireId ctrl) {
  CarryingBundle out;
  out.tags = blocks::two_way_swapper(c, b.tags, ctrl);
  out.payload.reserve(b.payload.size());
  for (const auto& plane : b.payload) {
    out.payload.push_back(blocks::two_way_swapper(c, plane, ctrl));
  }
  return out;
}

CarryingBundle shuffle2_bundle(const CarryingBundle& b) {
  CarryingBundle out;
  out.tags = wiring::shuffle(b.tags, 2);
  out.payload.reserve(b.payload.size());
  for (const auto& plane : b.payload) out.payload.push_back(wiring::shuffle(plane, 2));
  return out;
}

// Identical to prefix_sorter.cpp's select chain: one OR per level plus
// rewiring (see that file for the arithmetic).
std::vector<WireId> carry_select_chain(Circuit& c, std::vector<WireId> count) {
  std::vector<WireId> selects;
  while (count.size() >= 3) {
    const std::size_t top = count.size() - 1;
    selects.push_back(c.or_gate(count[top], count[top - 1]));
    count[top - 1] = count[top];
    count.pop_back();
  }
  return selects;
}

CarryingBundle carry_patch_up(Circuit& c, const CarryingBundle& z,
                              std::span<const WireId> selects) {
  const std::size_t m = z.tags.size();
  if (m == 2) return compare_lanes(c, z, 0, 1);
  CarryingBundle staged = z;
  for (std::size_t i = 0; i < m / 2; ++i) {
    staged = compare_lanes(c, std::move(staged), i, m - 1 - i);
  }
  const WireId s = selects[0];
  const auto sw1 = two_way_swap_all_planes(c, staged, s);
  const auto upper = slice(sw1, 0, m / 2);
  const auto lower = carry_patch_up(c, slice(sw1, m / 2, m / 2), selects.subspan(1));
  return two_way_swap_all_planes(c, concat(upper, lower), s);
}

struct CarrySorted {
  CarryingBundle out;
  std::vector<WireId> count;
};

CarrySorted carry_prefix_rec(Circuit& c, const CarryingBundle& in) {
  if (in.tags.size() == 1) return {in, {in.tags[0]}};
  const std::size_t h = in.tags.size() / 2;
  const auto upper = carry_prefix_rec(c, slice(in, 0, h));
  const auto lower = carry_prefix_rec(c, slice(in, h, h));
  const auto count = blocks::prefix_adder(c, upper.count, lower.count);
  const auto selects = carry_select_chain(c, count);
  const auto shuffled = shuffle2_bundle(concat(upper.out, lower.out));
  return {carry_patch_up(c, shuffled, selects), count};
}

}  // namespace

CarryingBundle build_carrying_prefix_sorter(Circuit& c, const CarryingBundle& in) {
  require_pow2(in.tags.size(), 2, "build_carrying_prefix_sorter");
  for (const auto& plane : in.payload) {
    if (plane.size() != in.tags.size()) {
      throw std::invalid_argument("carrying sorter: payload plane size mismatch");
    }
  }
  return carry_prefix_rec(c, in).out;
}

CarryingBundle build_carrying_muxmerge_sorter(Circuit& c, const CarryingBundle& in) {
  require_pow2(in.tags.size(), 2, "build_carrying_muxmerge_sorter");
  for (const auto& plane : in.payload) {
    if (plane.size() != in.tags.size()) {
      throw std::invalid_argument("carrying sorter: payload plane size mismatch");
    }
  }
  return sort_rec(c, in);
}

}  // namespace absort::sorters
