#pragma once
// The Section III.A reader exercise, answered.
//
// "It is left to the reader to examine this trade-off between the sorting
// and merging steps by considering other distributions of the overall
// sorting problem between the two steps."
//
// HybridOemSorter(n, b) distributes the work with a knob: the n inputs are
// split into n/b blocks sorted by Batcher's odd-even merge network, and the
// sorted blocks are then merged pairwise by shuffle + balanced merging
// blocks (valid for binary inputs by Theorems 1-2).  b = n is pure Batcher;
// b = 2 is the Fig. 4(b) alternative network's distribution (trivial block
// sorters, all the work in balanced merging).  bench_ablation's A7 sweep
// locates the cost-minimizing split.
//
// Comparator count: (n/b) * C_batcher(b) + (n/2) * sum_{j=lg(2b)}^{lg n} j.

#include <memory>

#include "absort/sorters/sorter.hpp"

namespace absort::sorters {

class HybridOemSorter final : public OpNetworkSorter {
 public:
  /// n, b powers of two with 1 <= b <= n.  Sorts binary sequences.
  HybridOemSorter(std::size_t n, std::size_t b);

  [[nodiscard]] std::string name() const override { return "hybrid-oem"; }
  [[nodiscard]] std::size_t block() const noexcept { return b_; }

  [[nodiscard]] static std::size_t expected_comparators(std::size_t n, std::size_t b);

  /// The b minimizing expected_comparators at this n.
  [[nodiscard]] static std::size_t best_block(std::size_t n);

  [[nodiscard]] static std::unique_ptr<BinarySorter> make(std::size_t n) {
    return std::make_unique<HybridOemSorter>(n, best_block(n));
  }

 private:
  std::size_t b_;
};

}  // namespace absort::sorters
