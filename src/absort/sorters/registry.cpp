#include "absort/sorters/registry.hpp"

#include <stdexcept>

#include "absort/sorters/alt_oem.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/bitonic.hpp"
#include "absort/sorters/columnsort.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/hybrid_oem.hpp"
#include "absort/sorters/multiway.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/sorters/periodic_balanced.hpp"
#include "absort/sorters/periodic_k.hpp"
#include "absort/sorters/prefix_sorter.hpp"

namespace absort::sorters {

void validate_registry(const std::vector<RegistryEntry>& table) {
  for (std::size_t i = 0; i < table.size(); ++i) {
    for (std::size_t j = i + 1; j < table.size(); ++j) {
      if (std::string_view(table[i].name) == table[j].name) {
        throw std::logic_error(std::string("sorter registry: duplicate name '") +
                               table[i].name + "'");
      }
    }
  }
}

const std::vector<RegistryEntry>& registry() {
  static const std::vector<RegistryEntry> table = [] {
    std::vector<RegistryEntry> t = {
      {"batcher", "Batcher odd-even merge network (Fig. 4a)", &BatcherOemSorter::make},
      {"bitonic", "Batcher bitonic sorter", &BitonicSorter::make},
      {"alt-oem", "alternative OEM with balanced merging blocks (Fig. 4b)",
       &AltOemSorter::make},
      {"periodic", "periodic balanced sorting network [8],[9]",
       &PeriodicBalancedSorter::make},
      {"oe-transposition", "odd-even transposition (brick wall)",
       &OddEvenTranspositionSorter::make},
      {"prefix", "Network 1: adaptive prefix binary sorter (Fig. 5)", &PrefixSorter::make},
      {"mux-merger", "Network 2: mux-merger binary sorter (Fig. 6)", &MuxMergeSorter::make},
      {"fish", "Network 3: time-multiplexed fish sorter (Fig. 7)", &FishSorter::make},
      {"hybrid-oem", "Batcher blocks + balanced merge tree (III.A exercise)",
       &HybridOemSorter::make},
      {"columnsort", "Leighton columnsort (time-multiplexed baseline)",
       &ColumnsortSorter::make},
      {"periodic-k", "constant-periodic brick sorter (period-3 block, any n)",
       &PeriodicKSorter::make},
      {"multiway-k", "k-way merge sorter over n-sorter blocks (k = 4)",
       &MultiwaySorter::make},
    };
    validate_registry(t);
    return t;
  }();
  return table;
}

const RegistryEntry* find_sorter(std::string_view name) {
  for (const auto& e : registry()) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

std::unique_ptr<BinarySorter> make_sorter(std::string_view name, std::size_t n) {
  const auto* e = find_sorter(name);
  if (!e) {
    throw std::invalid_argument("unknown sorter '" + std::string(name) +
                                "'; available: " + sorter_names());
  }
  return e->factory(n);
}

std::string sorter_names() {
  std::string out;
  for (const auto& e : registry()) {
    if (!out.empty()) out += ", ";
    out += e.name;
  }
  return out;
}

}  // namespace absort::sorters
