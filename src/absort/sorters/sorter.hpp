#pragma once
// BinarySorter: the common interface of every sorting network in the library.
//
// Each sorter exposes three consistent "faces":
//  (a) build_circuit(): the network as an explicit component netlist, used to
//      *measure* bit-level cost and depth exactly as the paper counts them;
//  (b) sort(): a value-level simulation that mirrors the netlist decision for
//      decision (tests assert bit-for-bit agreement);
//  (c) route(): the data-carrying face -- the permutation the network applies
//      to move its inputs, which is what concentrators (Section IV) and the
//      radix permuter (Fig. 10) build on.  This is precisely the property
//      that distinguishes sorting *networks* from the Boolean sorting
//      circuits of [17],[26] that "cannot carry, or move, the inputs".
//
// Sorters under network model B (the time-multiplexed fish sorter) are not
// combinational; they report cost from their real constituent datapath
// netlists and time from a cycle-accurate schedule instead.

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "absort/netlist/analyze.hpp"
#include "absort/netlist/batch_options.hpp"
#include "absort/netlist/circuit.hpp"
#include "absort/util/bitvec.hpp"

namespace absort::sorters {

/// The knob bundle every batch entry point takes ({threads, opt_level,
/// backend}); defined next to the engine it parameterizes, spelled here by
/// user code.
using BatchOptions = netlist::BatchOptions;
/// The engine-selection enum (Auto | Interpreter | Simd | Native); see
/// netlist/batch_options.hpp for resolution rules.
using Backend = netlist::Backend;

/// A reusable batch-sorting engine: the sorter's circuits compiled into the
/// bit-sliced evaluator exactly once, with thread pool and packing scratch
/// retained across run() calls -- the unit the serving layer caches per
/// (sorter, n) so repeat traffic never recompiles.  run() is bit-for-bit
/// per-vector sort() on every input.  Not reentrant: one run() at a time
/// (scratch and pool state are shared across calls).
class BatchSorter {
 public:
  virtual ~BatchSorter() = default;

  BatchSorter(const BatchSorter&) = delete;
  BatchSorter& operator=(const BatchSorter&) = delete;

  /// Input/output arity (the sorter's n).
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// The evaluation engine this instance actually runs (never Auto): the
  /// resolved BitSlicedEvaluator backend for circuit-backed engines, and
  /// Interpreter for the per-vector fallback engine (no word program at
  /// all).  Tests and ServiceStats assert against this.
  [[nodiscard]] virtual netlist::Backend backend() const noexcept = 0;

  /// Sorts batch[i] into out[i] (resized as needed); a steady-state caller
  /// that recycles its buffers allocates nothing on this path.
  virtual void run(std::span<const BitVec> batch, std::span<BitVec> out) = 0;

  /// Convenience face allocating the result vector.
  [[nodiscard]] std::vector<BitVec> run(std::span<const BitVec> batch);

 protected:
  explicit BatchSorter(std::size_t n) : n_(n) {}

  /// Shared validation for run() implementations: every input has size()
  /// bits and out.size() == batch.size() (throws std::invalid_argument).
  void check(std::span<const BitVec> batch, std::span<BitVec> out) const;

  std::size_t n_;
};

class BinarySorter {
 public:
  explicit BinarySorter(std::size_t n) : n_(n) {}
  virtual ~BinarySorter() = default;

  BinarySorter(const BinarySorter&) = delete;
  BinarySorter& operator=(const BinarySorter&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] virtual std::string name() const = 0;

  /// The permutation the network applies when its inputs carry `tags`:
  /// returns `perm` with out[i] = in[perm[i]]; applying it to the tags
  /// themselves yields the ascending-sorted sequence.
  [[nodiscard]] virtual std::vector<std::size_t> route(const BitVec& tags) const = 0;

  /// Sorts a binary sequence (by applying route() to the tags), so sort and
  /// route can never disagree.
  [[nodiscard]] BitVec sort(const BitVec& in) const;

  /// Sorts a batch of independent sequences.  Combinational sorters compile
  /// build_circuit() once into the bit-sliced batch engine (up to 512
  /// vectors per circuit walk; see netlist/batch_eval.hpp) -- result i is
  /// bit-for-bit Circuit::eval on batch[i].  Model-B sorters compile their
  /// constituent datapath circuits instead and stream the time-multiplexed
  /// schedule lanewise (FishSorter, ColumnsortSorter), or fall back to
  /// per-vector sort() sharded across threads.
  [[nodiscard]] std::vector<BitVec> sort_batch(std::span<const BitVec> batch,
                                               const BatchOptions& opts = {}) const;

  /// As above, writing result i into out[i] (resized as needed).  This is
  /// the virtual face: model-B sorters override it with their bit-sliced
  /// streaming paths; every override is bit-identical to per-vector sort().
  virtual void sort_batch(std::span<const BitVec> batch, std::span<BitVec> out,
                          const BatchOptions& opts) const;

  /// Compiles this sorter into a reusable batch engine (see BatchSorter).
  /// Combinational sorters wrap a BatchRunner over build_circuit(); model-B
  /// sorters compile their datapath circuits into a streaming executor.
  /// Sorters without a bit-sliced path return a per-vector fallback engine
  /// that references *this, so the sorter must outlive the engine.
  [[nodiscard]] virtual std::unique_ptr<BatchSorter> make_batch_sorter(
      const BatchOptions& opts = {}) const;

  /// Applies route(tags) to an arbitrary payload vector: the packets travel
  /// exactly where the network's switches carry them.
  template <typename T>
  [[nodiscard]] std::vector<T> carry(const BitVec& tags, const std::vector<T>& payload) const {
    const auto perm = route(tags);
    std::vector<T> out;
    out.reserve(payload.size());
    for (std::size_t i = 0; i < perm.size(); ++i) out.push_back(payload[perm[i]]);
    return out;
  }

  /// True if the network is a pure combinational circuit (model A).
  [[nodiscard]] virtual bool is_combinational() const { return true; }

  /// The network as a netlist (model-A sorters only; model-B throws).
  [[nodiscard]] virtual netlist::Circuit build_circuit() const;

  /// Structural self-check block for periodic networks: a circuit L (one
  /// period of the construction, containing both brick parities) whose 0-1
  /// fixpoints are exactly the sorted vectors -- L(y) == y iff y is sorted.
  /// This holds for any block whose t-fold repetition is a sorting network:
  /// sorted inputs are fixpoints of every standard comparator layer, and a
  /// fixpoint y of L satisfies y = L^t(y), which is sorted.  The serving
  /// layer's Cheap self-check tier evaluates L bit-sliced over every output
  /// lane instead of running the per-lane 0-1 oracle (see
  /// ServiceOptions::self_check).  Non-periodic sorters return nullopt.
  [[nodiscard]] virtual std::optional<netlist::Circuit> self_check_probe() const {
    return std::nullopt;
  }

  /// Cost/depth under a model; defaults to analyzing build_circuit().
  [[nodiscard]] virtual netlist::CostReport cost_report(const netlist::CostModel& m) const;

  /// Bit-level sorting time in unit delays: the depth for combinational
  /// (model A) networks; model-B networks override with their schedule's
  /// critical path (pipelined).
  [[nodiscard]] virtual double sorting_time(const netlist::CostModel& m) const {
    return cost_report(m).depth;
  }

 protected:
  /// Shared validation for sort_batch overrides: checks every input's arity
  /// and that out.size() == batch.size() (throws std::invalid_argument).
  void check_batch(std::span<const BitVec> batch, std::span<BitVec> out) const;

  std::size_t n_;
};

/// A network expressed as a straight-line program of comparator and wiring
/// operations -- the representation shared by Batcher's networks, the bitonic
/// sorter, and the alternative odd-even merge network of Fig. 4(b).
class OpNetworkSorter : public BinarySorter {
 public:
  struct Op {
    enum class Kind { Compare, Permute } kind;
    // Compare: positions i < j, min lands at i.
    std::size_t i = 0, j = 0;
    // Permute: out[p] = cur[perm[p]] (zero-cost wiring).
    std::vector<std::size_t> perm;

    static Op compare(std::size_t i, std::size_t j) {
      return Op{Kind::Compare, i, j, {}};
    }
    static Op permute(std::vector<std::size_t> p) {
      return Op{Kind::Permute, 0, 0, std::move(p)};
    }
  };

  using BinarySorter::BinarySorter;

  [[nodiscard]] std::vector<std::size_t> route(const BitVec& tags) const override;
  [[nodiscard]] netlist::Circuit build_circuit() const override;

  /// The zero-one principle (Section I): a comparator network that sorts
  /// every binary sequence sorts any totally ordered keys.  This face runs
  /// the same program on 64-bit keys -- used by the word-level permutation
  /// network and by the tests that demonstrate the principle.
  [[nodiscard]] std::vector<std::uint64_t> sort_words(std::vector<std::uint64_t> keys) const;

  /// Routing face on words: out[i] = in[perm[i]] sorts `keys` ascending.
  [[nodiscard]] std::vector<std::size_t> route_words(
      const std::vector<std::uint64_t>& keys) const;

  /// Number of comparators in the program.
  [[nodiscard]] std::size_t comparator_count() const noexcept;

  /// Maximum number of comparators on any lane's path (= unit depth).
  [[nodiscard]] std::size_t comparator_depth() const;

  /// The straight-line program itself -- clients lowering the network into
  /// other representations (e.g. the word-comparator route circuit of
  /// networks/permuters.cpp) replay these ops verbatim.
  [[nodiscard]] const std::vector<Op>& ops() const noexcept { return ops_; }

 protected:
  /// The first `nops` ops of the program as a standalone circuit -- how the
  /// periodic sorters expose one block of their structure as a
  /// self_check_probe() (every block is a prefix of the program).
  [[nodiscard]] netlist::Circuit circuit_of_prefix(std::size_t nops) const;

  std::vector<Op> ops_;
};

/// Factory signature used wherever a component network is parameterized by
/// the binary sorter it embeds (concentrators, the radix permuter, ...).
using SorterFactory = std::function<std::unique_ptr<BinarySorter>(std::size_t n)>;

}  // namespace absort::sorters
