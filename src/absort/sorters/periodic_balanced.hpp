#pragma once
// The periodic balanced sorting network of Dowd, Perl, Rudolph & Saks
// [8], [9] -- lg n identical passes of the balanced merging block.  This is
// the network the paper borrows its merging block from, and a natural
// nonadaptive baseline: cost (n/2) lg^2 n, depth lg^2 n, and the periodicity
// (every stage is the same block) that made it attractive for VLSI.

#include <memory>

#include "absort/sorters/sorter.hpp"

namespace absort::sorters {

class PeriodicBalancedSorter final : public OpNetworkSorter {
 public:
  explicit PeriodicBalancedSorter(std::size_t n);

  [[nodiscard]] std::string name() const override { return "periodic-balanced"; }

  /// One balanced merging block (the repeated pass) -- a complete sortedness
  /// probe by periodicity (see BinarySorter::self_check_probe).
  [[nodiscard]] std::optional<netlist::Circuit> self_check_probe() const override;

  /// (n/2) lg^2 n comparators, depth lg^2 n.
  [[nodiscard]] static std::size_t expected_comparators(std::size_t n);
  [[nodiscard]] static std::size_t expected_depth(std::size_t n);

  [[nodiscard]] static std::unique_ptr<BinarySorter> make(std::size_t n) {
    return std::make_unique<PeriodicBalancedSorter>(n);
  }

 private:
  std::size_t block_ops_;  ///< ops in one balanced pass (a prefix of ops_)
};

/// Odd-even transposition ("brick wall") sorter: n alternating stages of
/// adjacent comparators.  The classical O(n^2)-cost baseline; included to
/// anchor the low-tech end of the cost spectrum in the benches.
class OddEvenTranspositionSorter final : public OpNetworkSorter {
 public:
  explicit OddEvenTranspositionSorter(std::size_t n);

  [[nodiscard]] std::string name() const override { return "oe-transposition"; }

  /// One even+odd stage pair -- repeating it ceil(n/2) times is the full
  /// brick wall, so the pair is a complete sortedness probe.
  [[nodiscard]] std::optional<netlist::Circuit> self_check_probe() const override;

  [[nodiscard]] static std::size_t expected_comparators(std::size_t n);

  [[nodiscard]] static std::unique_ptr<BinarySorter> make(std::size_t n) {
    return std::make_unique<OddEvenTranspositionSorter>(n);
  }

 private:
  std::size_t block_ops_;  ///< ops in the first even+odd stage pair
};

}  // namespace absort::sorters
