#pragma once
// The sorter registry: one name -> factory table for every sorting network
// in the library, replacing the per-tool if/else construction ladders that
// each front end (CLI, benches, serving layer) used to duplicate.  The
// multiway-merge and periodic-merging lines of related work both argue for
// keeping the sorter choice pluggable behind a name; this is that seam.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "absort/sorters/sorter.hpp"

namespace absort::sorters {

struct RegistryEntry {
  const char* name;         ///< the name user-facing tools spell (e.g. "mux-merger")
  const char* description;  ///< one-line description for listings
  SorterFactory factory;    ///< builds the sorter at size n (may throw on bad n)
};

/// Every registered sorter, in listing order.
[[nodiscard]] const std::vector<RegistryEntry>& registry();

/// Throws std::logic_error on duplicate names.  registry() runs this over
/// its own table at first use; exposed so tests can exercise the guard.
void validate_registry(const std::vector<RegistryEntry>& table);

/// Entry for `name`, or nullptr if unknown.
[[nodiscard]] const RegistryEntry* find_sorter(std::string_view name);

/// Builds sorter `name` at size n; unknown names throw std::invalid_argument
/// listing the available sorters.
[[nodiscard]] std::unique_ptr<BinarySorter> make_sorter(std::string_view name, std::size_t n);

/// Comma-separated registered names (for usage/error messages).
[[nodiscard]] std::string sorter_names();

}  // namespace absort::sorters
