#pragma once
// Leighton's columnsort [14] -- the baseline the paper compares Network 3
// against in Section III.C (the only other O(n)-cost time-multiplexed binary
// sorting network).
//
// The n = r x s elements are arranged column-major in an r x s matrix with
// s | r and r >= 2(s-1)^2.  Eight steps: (1) sort columns, (2) "transpose"
// (read column-major / write row-major, same shape), (3) sort columns,
// (4) untranspose, (5) sort columns, (6) shift down by r/2 into an
// r x (s+1) matrix padded with -inf/+inf (0/1 for binary), (7) sort columns,
// (8) unshift.  The result is sorted in column-major order.
//
// The network version sorts the columns with embedded binary sorters; the
// time-multiplexed version streams the s columns through a single r-input
// sorter per sorting step, which is the construction whose cost/pipelining
// the paper contrasts with the fish sorter (see analysis/formulas.hpp).

#include <memory>

#include "absort/sorters/sorter.hpp"

namespace absort::sorters {

class ColumnsortSorter final : public BinarySorter {
 public:
  /// r rows, s columns; requires r*s = n, s | r, and r >= 2(s-1)^2.
  ColumnsortSorter(std::size_t n, std::size_t r, std::size_t s);

  [[nodiscard]] std::string name() const override { return "columnsort"; }
  [[nodiscard]] std::size_t rows() const noexcept { return r_; }
  [[nodiscard]] std::size_t cols() const noexcept { return s_; }

  [[nodiscard]] bool is_combinational() const override { return false; }
  [[nodiscard]] std::vector<std::size_t> route(const BitVec& tags) const override;

  using BinarySorter::sort_batch;
  /// Bit-sliced batch path mirroring the time-multiplexed schedule: one
  /// compiled r-input column sorter (column_sorter_circuit()) streams the
  /// matrix columns of every lane block through each of the four sorting
  /// passes; the transposes and the step-6/8 pad shift are index permutations
  /// and constant lanes on the packed words.  Requires power-of-two r (and s
  /// when s > 1); other shapes fall back to the per-vector base path.
  /// Bit-identical to sort() on every input.
  void sort_batch(std::span<const BitVec> batch, std::span<BitVec> out,
                  const BatchOptions& opts) const override;

  /// The streaming path above with the column-sorter program compiled
  /// exactly once, reusable across run() calls (per-vector fallback shapes
  /// delegate to the base engine, which references this sorter).
  [[nodiscard]] std::unique_ptr<BatchSorter> make_batch_sorter(
      const BatchOptions& opts = {}) const override;

  /// The r-input Batcher sorter the columns stream through; exposed for
  /// stats and tests (power-of-two r only).
  [[nodiscard]] netlist::Circuit column_sorter_circuit() const;

  /// Time-multiplexed datapath accounting (Section III.C's variant): one
  /// r-input Batcher sorter plus the (n,r)-multiplexer / (r,n)-demultiplexer
  /// trees that stream the s columns through it.  Requires power-of-two
  /// r and s (throws otherwise).
  [[nodiscard]] netlist::CostReport cost_report(const netlist::CostModel& m) const override;

  /// Pipelined sorting time: four column-sorting passes, each streaming s
  /// columns through the Batcher pipeline (depth + s - 1), plus the
  /// mux/demux traversals.
  [[nodiscard]] double sorting_time(const netlist::CostModel& m) const override;

  /// Column-sort invocations per full sort (4 passes x s columns).
  [[nodiscard]] std::size_t column_sorts() const noexcept { return 4 * s_; }

  /// Largest legal column count for a given n (maximizing parallel columns
  /// subject to s | r and r >= 2(s-1)^2); returns {r, s}.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> choose_shape(std::size_t n);

  [[nodiscard]] static std::unique_ptr<BinarySorter> make(std::size_t n) {
    const auto [r, s] = choose_shape(n);
    return std::make_unique<ColumnsortSorter>(n, r, s);
  }

 private:
  std::size_t r_, s_;
};

}  // namespace absort::sorters
