#pragma once
// Batcher's odd-even merge sorting network [3] (Fig. 4(a) of the paper).
//
// The classical nonadaptive baseline the adaptive networks are measured
// against: for binary sequences its bit-level cost is the comparator count
// C(n) = (n/4)(lg^2 n - lg n + 4) - 1 and its depth is lg n (lg n + 1)/2.

#include <memory>

#include "absort/sorters/sorter.hpp"

namespace absort::sorters {

class BatcherOemSorter final : public OpNetworkSorter {
 public:
  explicit BatcherOemSorter(std::size_t n);

  [[nodiscard]] std::string name() const override { return "batcher-oem"; }

  /// Closed-form comparator count / depth (for structural tests).
  [[nodiscard]] static std::size_t expected_comparators(std::size_t n);
  [[nodiscard]] static std::size_t expected_depth(std::size_t n);

  [[nodiscard]] static std::unique_ptr<BinarySorter> make(std::size_t n) {
    return std::make_unique<BatcherOemSorter>(n);
  }
};

}  // namespace absort::sorters
