#include "absort/sorters/periodic_k.hpp"

#include <stdexcept>

#include "absort/util/math.hpp"

namespace absort::sorters {

namespace {

/// Appends one brick layer: parity 0 = even brick (0,1),(2,3),...; parity 1 =
/// odd brick (1,2),(3,4),...
void brick_layer(std::vector<OpNetworkSorter::Op>& ops, std::size_t n, std::size_t parity) {
  for (std::size_t i = parity; i + 1 < n; i += 2) {
    ops.push_back(OpNetworkSorter::Op::compare(i, i + 1));
  }
}

/// Layer parity sequence of one block: period 3 -> E O E, period 4 -> E O E O.
constexpr std::size_t kBlockParity[4] = {0, 1, 0, 1};

}  // namespace

PeriodicKSorter::PeriodicKSorter(std::size_t n, std::size_t period)
    : OpNetworkSorter(n), period_(period) {
  if (period != 3 && period != 4) {
    throw std::invalid_argument("periodic-k: period must be 3 or 4");
  }
  if (n < 1) throw std::invalid_argument("periodic-k: n must be >= 1");
  iterations_ = expected_iterations(n, period);
  for (std::size_t l = 0; l < period_; ++l) brick_layer(ops_, n_, kBlockParity[l]);
  block_ops_ = ops_.size();
  for (std::size_t t = 1; t < iterations_; ++t) {
    for (std::size_t l = 0; l < period_; ++l) brick_layer(ops_, n_, kBlockParity[l]);
  }
}

std::optional<netlist::Circuit> PeriodicKSorter::self_check_probe() const {
  return circuit_of_prefix(block_ops_);
}

std::size_t PeriodicKSorter::expected_iterations(std::size_t n, std::size_t period) {
  // See the header comment: the block's layers collapse (even-even pairs are
  // idempotent) into 2t+1 (period 3) / 4t (period 4) alternating brick
  // layers, and n alternating layers starting with the even brick sort n
  // keys (odd-even transposition sort).  Always at least one application.
  std::size_t t;
  if (period == 3) {
    t = n >= 1 ? ceil_div(n - 1, 2) : 0;
  } else {
    t = ceil_div(n, 4);
  }
  return t < 1 ? 1 : t;
}

std::size_t PeriodicKSorter::expected_comparators(std::size_t n, std::size_t period) {
  const std::size_t even = n / 2;            // (0,1),(2,3),...
  const std::size_t odd = n >= 1 ? (n - 1) / 2 : 0;  // (1,2),(3,4),...
  const std::size_t block = period == 3 ? 2 * even + odd : 2 * even + 2 * odd;
  return expected_iterations(n, period) * block;
}

std::size_t PeriodicKSorter::expected_depth(std::size_t n, std::size_t period) {
  const std::size_t t = expected_iterations(n, period);
  // n >= 3: lane 1 participates in every layer (both parities touch it), so
  // depth = layers = period * t.  n == 2: odd layers are empty and each
  // block contributes its 2 even layers (periods 3 and 4 alike), so 2t.
  // n <= 1: no comparators at all.
  if (n >= 3) return period * t;
  if (n == 2) return 2 * t;
  return 0;
}

}  // namespace absort::sorters
