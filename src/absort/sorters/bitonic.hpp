#pragma once
// Batcher's bitonic sorting network [3] -- a second nonadaptive baseline.
// Comparator count n/4 * lg n (lg n + 1), depth lg n (lg n + 1)/2.

#include <memory>

#include "absort/sorters/sorter.hpp"

namespace absort::sorters {

class BitonicSorter final : public OpNetworkSorter {
 public:
  explicit BitonicSorter(std::size_t n);

  [[nodiscard]] std::string name() const override { return "bitonic"; }

  [[nodiscard]] static std::size_t expected_comparators(std::size_t n);
  [[nodiscard]] static std::size_t expected_depth(std::size_t n);

  [[nodiscard]] static std::unique_ptr<BinarySorter> make(std::size_t n) {
    return std::make_unique<BitonicSorter>(n);
  }
};

}  // namespace absort::sorters
