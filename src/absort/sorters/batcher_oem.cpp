#include "absort/sorters/batcher_oem.hpp"

#include "absort/util/math.hpp"

namespace absort::sorters {
namespace {

// Batcher's odd-even merge on the subsequence lo, lo+r, lo+2r, ... of length
// count (the two halves of which are sorted).
void oem_merge(std::vector<OpNetworkSorter::Op>& ops, std::size_t lo, std::size_t count,
               std::size_t r) {
  if (count <= 1) return;
  if (count == 2) {
    ops.push_back(OpNetworkSorter::Op::compare(lo, lo + r));
    return;
  }
  oem_merge(ops, lo, count / 2 + count % 2, 2 * r);      // even subsequence
  oem_merge(ops, lo + r, count / 2, 2 * r);              // odd subsequence
  for (std::size_t i = 1; i + 1 < count; i += 2) {
    ops.push_back(OpNetworkSorter::Op::compare(lo + i * r, lo + (i + 1) * r));
  }
}

void oem_sort(std::vector<OpNetworkSorter::Op>& ops, std::size_t lo, std::size_t count) {
  if (count <= 1) return;
  oem_sort(ops, lo, count / 2);
  oem_sort(ops, lo + count / 2, count / 2);
  oem_merge(ops, lo, count, 1);
}

}  // namespace

BatcherOemSorter::BatcherOemSorter(std::size_t n) : OpNetworkSorter(n) {
  require_pow2(n, 1, "BatcherOemSorter");
  oem_sort(ops_, 0, n);
}

std::size_t BatcherOemSorter::expected_comparators(std::size_t n) {
  // C(n) = (n/4)(lg^2 n - lg n + 4) - 1 for n a power of two >= 2 [Knuth 5.3.4].
  if (n <= 1) return 0;
  const std::size_t p = ilog2(n);
  return n * (p * p - p + 4) / 4 - 1;  // n*(...) is divisible by 4 for n >= 2
}

std::size_t BatcherOemSorter::expected_depth(std::size_t n) {
  if (n <= 1) return 0;
  const std::size_t p = ilog2(n);
  return p * (p + 1) / 2;
}

}  // namespace absort::sorters
