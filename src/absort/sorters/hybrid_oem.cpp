#include "absort/sorters/hybrid_oem.hpp"

#include "absort/sorters/batcher_oem.hpp"
#include "absort/util/math.hpp"

namespace absort::sorters {
namespace {

using Op = OpNetworkSorter::Op;

// Batcher OEM ops on the window [lo, lo+count) (same schedule as
// BatcherOemSorter, re-rooted).
void oem_merge(std::vector<Op>& ops, std::size_t lo, std::size_t count, std::size_t r) {
  if (count <= 1) return;
  if (count == 2) {
    ops.push_back(Op::compare(lo, lo + r));
    return;
  }
  oem_merge(ops, lo, count / 2 + count % 2, 2 * r);
  oem_merge(ops, lo + r, count / 2, 2 * r);
  for (std::size_t i = 1; i + 1 < count; i += 2) {
    ops.push_back(Op::compare(lo + i * r, lo + (i + 1) * r));
  }
}

void oem_sort(std::vector<Op>& ops, std::size_t lo, std::size_t count) {
  if (count <= 1) return;
  oem_sort(ops, lo, count / 2);
  oem_sort(ops, lo + count / 2, count / 2);
  oem_merge(ops, lo, count, 1);
}

void balanced_block(std::vector<Op>& ops, std::size_t lo, std::size_t count) {
  if (count <= 1) return;
  for (std::size_t i = 0; i < count / 2; ++i) {
    ops.push_back(Op::compare(lo + i, lo + count - 1 - i));
  }
  balanced_block(ops, lo, count / 2);
  balanced_block(ops, lo + count / 2, count / 2);
}

std::vector<std::size_t> window_shuffle(std::size_t n, std::size_t lo, std::size_t count) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  const std::size_t h = count / 2;
  for (std::size_t i = 0; i < h; ++i) {
    perm[lo + 2 * i] = lo + i;
    perm[lo + 2 * i + 1] = lo + h + i;
  }
  return perm;
}

}  // namespace

HybridOemSorter::HybridOemSorter(std::size_t n, std::size_t b) : OpNetworkSorter(n), b_(b) {
  require_pow2(n, 1, "HybridOemSorter n");
  require_pow2(b, 1, "HybridOemSorter b");
  if (b > n) throw std::invalid_argument("HybridOemSorter: b > n");
  // Base step: Batcher-sort each b-block.
  for (std::size_t lo = 0; lo < n; lo += b) oem_sort(ops_, lo, b);
  // Merge step: pairwise shuffle + balanced merging block, doubling sizes.
  for (std::size_t m = 2 * b; m <= n; m *= 2) {
    for (std::size_t lo = 0; lo < n; lo += m) {
      ops_.push_back(Op::permute(window_shuffle(n, lo, m)));
      balanced_block(ops_, lo, m);
    }
  }
}

std::size_t HybridOemSorter::expected_comparators(std::size_t n, std::size_t b) {
  std::size_t total = (n / b) * BatcherOemSorter::expected_comparators(b);
  for (std::size_t m = 2 * b; m <= n; m *= 2) {
    total += (n / m) * (m / 2) * ilog2(m);  // balanced block: (m/2) lg m
  }
  return total;
}

std::size_t HybridOemSorter::best_block(std::size_t n) {
  std::size_t best_b = 1, best_cost = expected_comparators(n, 1);
  for (std::size_t b = 2; b <= n; b *= 2) {
    const std::size_t cost = expected_comparators(n, b);
    if (cost < best_cost) {
      best_cost = cost;
      best_b = b;
    }
  }
  return best_b;
}

}  // namespace absort::sorters
