#include "absort/sorters/bitonic.hpp"

#include "absort/util/math.hpp"

namespace absort::sorters {
namespace {

// Sorts a bitonic sequence on [lo, lo+count) ascending, using the half-cleaner
// recursion.  Implemented with ascending comparators only by pre-reversing
// the second half at sort time (see bitonic_sort below), so Op::compare's
// min-at-smaller-index semantics apply throughout.
void bitonic_merge(std::vector<OpNetworkSorter::Op>& ops, std::size_t lo, std::size_t count) {
  if (count <= 1) return;
  const std::size_t h = count / 2;
  for (std::size_t i = 0; i < h; ++i) {
    ops.push_back(OpNetworkSorter::Op::compare(lo + i, lo + i + h));
  }
  bitonic_merge(ops, lo, h);
  bitonic_merge(ops, lo + h, h);
}

void bitonic_sort(std::vector<OpNetworkSorter::Op>& ops, std::size_t lo, std::size_t count,
                  std::size_t n) {
  if (count <= 1) return;
  const std::size_t h = count / 2;
  bitonic_sort(ops, lo, h, n);
  bitonic_sort(ops, lo + h, h, n);
  // Reverse the second half (free wiring) so ascending ++ descending forms a
  // bitonic sequence, then merge.
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = 0; i < h; ++i) perm[lo + h + i] = lo + count - 1 - i;
  ops.push_back(OpNetworkSorter::Op::permute(std::move(perm)));
  bitonic_merge(ops, lo, count);
}

}  // namespace

BitonicSorter::BitonicSorter(std::size_t n) : OpNetworkSorter(n) {
  require_pow2(n, 1, "BitonicSorter");
  bitonic_sort(ops_, 0, n, n);
}

std::size_t BitonicSorter::expected_comparators(std::size_t n) {
  if (n <= 1) return 0;
  const std::size_t p = ilog2(n);
  return n * p * (p + 1) / 4;  // divisible: p(p+1) is even and n is a power of two
}

std::size_t BitonicSorter::expected_depth(std::size_t n) {
  if (n <= 1) return 0;
  const std::size_t p = ilog2(n);
  return p * (p + 1) / 2;
}

}  // namespace absort::sorters
