#pragma once
// Network 2: the mux-merger binary sorter (Section III.B, Fig. 6, Table I).
//
// Two recursively built half-size sorters produce a *bisorted* sequence
// (Definition 3).  The mux-merger then merges it without a prefix adder: by
// Theorem 3 the two middle bits (the leading elements of quarters 2 and 4)
// determine which two quarters are clean and which two concatenate into a
// half-size bisorted sequence.  An IN-SWAP four-way swapper steers the clean
// quarters to the upper half and the bisorted pair to the lower half, the
// merger recurses on the lower half, and an OUT-SWAP four-way swapper
// arranges the quarters into ascending order (Table I).
//
// Exact accounting of this construction (asserted by the tests):
//   merger:  Cm(2) = 1, Cm(m) = 2m + Cm(m/2)      =>  Cm(m) = 4m - 7
//   sorter:  C(2) = 1,  C(n) = 2 C(n/2) + Cm(n)   =>  C(n) = 4 n lg n - 7n + 7
//   depth:   Dm(m) = 2 lg m - 1;  D(n) = lg^2 n  (exactly)
// The paper prints "D(n) = 2 lg n" after the recurrence D(n) = D(n/2) +
// 2 lg n, which solves to Theta(lg^2 n); the measured depth (= lg^2 n)
// confirms the abstract's O(lg^2 n) and flags the printed line as a typo.

#include <array>
#include <memory>

#include "absort/sorters/sorter.hpp"

namespace absort::sorters {

/// Builds the n-input mux-merger as a netlist fragment (merges a bisorted
/// input bundle into sorted order).  Exposed for Table I tests and reuse in
/// the fish sorter's k-way merger.
std::vector<netlist::WireId> build_mux_merger(netlist::Circuit& c,
                                              const std::vector<netlist::WireId>& in);

/// Builds the complete mux-merger *sorter* as a netlist fragment on an
/// existing wire bundle (used by the fish sorter's hardware datapath, where
/// the small sorter and the k-input sorters are embedded subcircuits).
std::vector<netlist::WireId> build_muxmerge_sorter(netlist::Circuit& c,
                                                   const std::vector<netlist::WireId>& in);

/// Top-level merge decision for a bisorted sequence (the Table I row it
/// exercises): the middle bits, the select value, and the quarter
/// permutations applied by IN-SWAP and OUT-SWAP.
struct MuxMergerDecision {
  Bit b2 = 0;  ///< leading element of quarter 2 (middle bit of upper half)
  Bit b4 = 0;  ///< leading element of quarter 4 (middle bit of lower half)
  int select = 0;  ///< b2*2 + b4
  std::array<std::uint8_t, 4> in_pattern{};   ///< IN-SWAP: out quarter q <- in quarter pat[q]
  std::array<std::uint8_t, 4> out_pattern{};  ///< OUT-SWAP pattern
};
[[nodiscard]] MuxMergerDecision mux_merger_decision(const BitVec& bisorted);

class MuxMergeSorter final : public BinarySorter {
 public:
  explicit MuxMergeSorter(std::size_t n);

  [[nodiscard]] std::string name() const override { return "mux-merger"; }
  [[nodiscard]] std::vector<std::size_t> route(const BitVec& tags) const override;
  [[nodiscard]] netlist::Circuit build_circuit() const override;

  [[nodiscard]] static double expected_unit_cost(std::size_t n);   // 4 n lg n - 7n + 7
  [[nodiscard]] static double expected_unit_depth(std::size_t n);  // lg^2 n
  [[nodiscard]] static double paper_cost(std::size_t n);           // 4 n lg n

  [[nodiscard]] static std::unique_ptr<BinarySorter> make(std::size_t n) {
    return std::make_unique<MuxMergeSorter>(n);
  }
};

}  // namespace absort::sorters

namespace absort::sorters::detail {
struct Lane;
/// Value-level mux-merger on lanes [lo, lo+m) (bisorted); mirrors the netlist.
void mux_merger_value(std::vector<Lane>& v, std::size_t lo, std::size_t m);
/// Value-level mux-merger sorter on lanes [lo, lo+m).
void muxmerge_sort_value(std::vector<Lane>& v, std::size_t lo, std::size_t m);
}  // namespace absort::sorters::detail
