#include "absort/sorters/multiway.hpp"

#include <algorithm>
#include <stdexcept>

#include "absort/sorters/detail/lane.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/util/math.hpp"

namespace absort::sorters {

MultiwaySorter::MultiwaySorter(std::size_t n, std::size_t k) : BinarySorter(n), k_(k) {
  require_pow2(n, 2, "MultiwaySorter n");
  require_pow2(k, 2, "MultiwaySorter k");
  if (k > n) throw std::invalid_argument("MultiwaySorter: need k <= n");
}

std::size_t MultiwaySorter::default_k(std::size_t n) {
  return std::min<std::size_t>(4, n);
}

std::vector<netlist::WireId> MultiwaySorter::build_sorter(
    netlist::Circuit& c, const std::vector<netlist::WireId>& in) const {
  const std::size_t m = in.size();
  if (m <= k_) return build_muxmerge_sorter(c, in);  // leaf n-sorter block
  // Split into k groups, sort each recursively, k-way merge the sorted runs
  // (m > k and both powers of two => k | m and m/k >= 2).
  const std::size_t gs = m / k_;
  std::vector<netlist::WireId> cat(m);
  for (std::size_t g = 0; g < k_; ++g) {
    const std::vector<netlist::WireId> group(in.begin() + static_cast<std::ptrdiff_t>(g * gs),
                                             in.begin() + static_cast<std::ptrdiff_t>((g + 1) * gs));
    const auto sorted = build_sorter(c, group);
    std::copy(sorted.begin(), sorted.end(), cat.begin() + static_cast<std::ptrdiff_t>(g * gs));
  }
  return build_kway_merger(c, cat, k_);
}

netlist::Circuit MultiwaySorter::build_circuit() const {
  netlist::Circuit c;
  const auto in = c.inputs(n_);
  c.mark_outputs(build_sorter(c, in));
  return c;
}

void MultiwaySorter::sort_value(std::vector<detail::Lane>& v, std::size_t lo,
                                std::size_t m) const {
  if (m <= k_) {
    detail::muxmerge_sort_value(v, lo, m);
    return;
  }
  const std::size_t gs = m / k_;
  for (std::size_t g = 0; g < k_; ++g) sort_value(v, lo + g * gs, gs);
  detail::kway_merge_value(v, lo, m, k_);
}

std::vector<std::size_t> MultiwaySorter::route(const BitVec& tags) const {
  if (tags.size() != n_) throw std::invalid_argument(name() + ": wrong input size");
  auto lanes = detail::make_lanes(tags);
  sort_value(lanes, 0, n_);
  return detail::lane_perm(lanes);
}

std::size_t MultiwaySorter::expected_leaf_sorters(std::size_t n, std::size_t k) {
  std::size_t leaves = 1, m = n;
  while (m > k) {
    leaves *= k;
    m /= k;
  }
  return leaves;
}

std::size_t MultiwaySorter::expected_mergers(std::size_t n, std::size_t k) {
  std::size_t total = 0, nodes = 1, m = n;
  while (m > k) {
    total += nodes;
    nodes *= k;
    m /= k;
  }
  return total;
}

}  // namespace absort::sorters
