#pragma once
// Carrying netlists: the mux-merger sorter with a w-bit payload bundle
// riding on every lane.
//
// Section III dismisses the Boolean sorting circuits of [17], [26] because
// they "cannot carry, or move, the inputs through"; a sorting *network*'s
// switches physically transport packets.  build_carrying_muxmerge_sorter
// demonstrates that property at the netlist level: the tag bits steer
// comparator-derived switch controls, and w payload bit-planes ride through
// replicated switches sharing those controls.  The tag plane's outputs equal
// the plain sorter's; the payload planes arrive in exactly the arrangement
// BinarySorter::carry computes.

#include <cstddef>
#include <vector>

#include "absort/netlist/circuit.hpp"

namespace absort::sorters {

struct CarryingBundle {
  std::vector<netlist::WireId> tags;  ///< n wires
  /// payload[p] is bit-plane p: n wires, payload[p][i] rides with tags[i].
  std::vector<std::vector<netlist::WireId>> payload;
};

/// Builds the n-input mux-merger binary sorter moving the full bundle.
/// Cost: the plain sorter's steering logic plus w payload switch planes
/// (each comparator/4x4 switch gains w slave switches sharing its control).
[[nodiscard]] CarryingBundle build_carrying_muxmerge_sorter(netlist::Circuit& c,
                                                            const CarryingBundle& in);

/// The prefix binary sorter (Network 1) moving the full bundle: the count
/// logic and patch-up selects are computed from the tag plane only; payload
/// planes ride slave switches through every comparator stage and two-way
/// swapper.
[[nodiscard]] CarryingBundle build_carrying_prefix_sorter(netlist::Circuit& c,
                                                          const CarryingBundle& in);

}  // namespace absort::sorters
