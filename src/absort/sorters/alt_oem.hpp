#pragma once
// The alternative odd-even merge sorting network of Fig. 4(b).
//
// Two recursively built half-size sorters, a two-way shuffle of their sorted
// outputs (Theorem 1 puts the shuffled sequence in class A_n), and a
// balanced merging block that sorts any member of A_n (Theorem 2).  This is
// the *nonadaptive* scaffold from which Network 1 is derived; it sorts
// binary sequences with O(n lg^2 n) cost and O(lg^2 n) depth when expanded
// recursively.
//
// The figure also shows a redundant first stage of comparators and a shuffle
// "to emphasize the relation" with Batcher's network; pass
// include_redundant_first_stage to reproduce the figure exactly.

#include <memory>

#include "absort/sorters/sorter.hpp"

namespace absort::sorters {

class AltOemSorter final : public OpNetworkSorter {
 public:
  explicit AltOemSorter(std::size_t n, bool include_redundant_first_stage = false);

  [[nodiscard]] std::string name() const override { return "alt-oem"; }

  /// Comparator count: C(n) = 2 C(n/2) + (n/2) lg n, C(1) = 0.
  [[nodiscard]] static std::size_t expected_comparators(std::size_t n);

  [[nodiscard]] static std::unique_ptr<BinarySorter> make(std::size_t n) {
    return std::make_unique<AltOemSorter>(n);
  }
};

}  // namespace absort::sorters
