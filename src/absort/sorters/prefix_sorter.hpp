#pragma once
// Network 1: the adaptive prefix binary sorter (Section III.A, Fig. 5).
//
// Construction: two recursively built half-size sorters; a two-way shuffle of
// their sorted outputs (which lands in class A_n by Theorem 1); and a
// recursive *patch-up network*.  Each patch-up level applies the balanced
// merging block's mirrored comparator stage -- leaving one half clean-sorted
// and the other in A_{n/2} (Theorem 2) -- then uses a two-way swapper to
// steer the unsorted half into the next, half-size patch-up level, and a
// second swapper to put the halves back.
//
// Which half is clean is decided by the count of 1's: the sorter maintains
// the count of each recursive block with a prefix adder ("recursively adding
// the numbers of 1's in the two half-size input sequences").  At a patch-up
// level of size m with local ones-count c, the select is s = [c >= m/2]; the
// count handed to the next level is c - s*m/2, which in hardware is a single
// OR gate per level plus rewiring (dropping the top bit), because the
// subtrahend is the power of two the compared bit represents.
//
// Paper accounting: cost 3n lg n + O(lg^2 n), depth 3 lg^2 n + 2 lg n lg lg n.
// Our construction's exact unit cost satisfies
//   C(1) = 0, C(n) = 2 C(n/2) + adder(lg n) + or_gates + P(n),
//   P(2) = 1,  P(m) = 3m/2 + P(m/2)   (comparators + two swappers)
// which the structural tests assert exactly (see expected_unit_cost).

#include <memory>

#include "absort/sorters/sorter.hpp"

namespace absort::sorters {

class PrefixSorter final : public BinarySorter {
 public:
  /// Which adder realizes the count logic (ablation: the paper cites a
  /// parallel-prefix adder; ripple-carry trades the O(lg w) combine depth
  /// for fewer gates at tiny widths).  Sorting behaviour is identical.
  enum class AdderKind { KoggeStone, Ripple };

  explicit PrefixSorter(std::size_t n, AdderKind adder = AdderKind::KoggeStone);

  [[nodiscard]] std::string name() const override { return "prefix"; }
  [[nodiscard]] AdderKind adder_kind() const noexcept { return adder_; }
  [[nodiscard]] std::vector<std::size_t> route(const BitVec& tags) const override;
  [[nodiscard]] netlist::Circuit build_circuit() const override;

  /// Exact unit cost / depth of this construction (mirrors the recurrences
  /// the builder realizes; asserted against analyze() in the tests).
  [[nodiscard]] static double expected_unit_cost(std::size_t n);
  [[nodiscard]] static double expected_unit_depth(std::size_t n);

  /// The paper's headline closed form, 3 n lg n (leading term of eq. (1)'s
  /// solution), for cost-ratio reporting.
  [[nodiscard]] static double paper_cost(std::size_t n);

  [[nodiscard]] static std::unique_ptr<BinarySorter> make(std::size_t n) {
    return std::make_unique<PrefixSorter>(n);
  }

 private:
  AdderKind adder_;
};

}  // namespace absort::sorters
