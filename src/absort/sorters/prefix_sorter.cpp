#include "absort/sorters/prefix_sorter.hpp"

#include <span>
#include <stdexcept>

#include "absort/blocks/comparator_stage.hpp"
#include "absort/blocks/prefix_adder.hpp"
#include "absort/blocks/swapper.hpp"
#include "absort/netlist/wiring.hpp"
#include "absort/util/math.hpp"

namespace absort::sorters {
namespace {

using netlist::Circuit;
using netlist::WireId;
namespace wiring = netlist::wiring;

struct SortedWithCount {
  std::vector<WireId> out;    // sorted bundle
  std::vector<WireId> count;  // ones-count, little-endian, width lg(m)+1
};

// Recursive patch-up network (Fig. 5).  `selects[j]` is the steering signal
// of the level of size m / 2^j; z is in class A_m whenever selects were
// computed from its ones-count.
std::vector<WireId> patch_up(Circuit& c, const std::vector<WireId>& z,
                             std::span<const WireId> selects) {
  const std::size_t m = z.size();
  if (m == 2) {
    const auto [lo, hi] = c.comparator(z[0], z[1]);
    return {lo, hi};
  }
  // One stage of the balanced merging block: afterwards one half is clean
  // and the other is in A_{m/2} (Theorem 2).
  const auto staged = blocks::mirrored_stage(c, z);
  // Steer the unsorted half down (select = 1 means the count >= m/2, i.e.,
  // the *lower* half is clean 1's and the upper half needs patching).
  const WireId s = selects[0];
  const auto sw1 = blocks::two_way_swapper(c, staged, s);
  const auto upper = wiring::slice(sw1, 0, m / 2);
  const auto lower_sorted = patch_up(c, wiring::slice(sw1, m / 2, m / 2), selects.subspan(1));
  // Put the halves back in ascending order.
  return blocks::two_way_swapper(c, wiring::concat(upper, lower_sorted), s);
}

// Select chain: from the ones-count of the current block (width lg m + 1),
// produce the steering signal of every patch-up level of sizes m, m/2, .., 4.
// s = [count >= m/2] = bit_{lg m} OR bit_{lg m - 1}; the next level's count
// is count - s * m/2, which is "keep bits 0..lg m - 2, new top bit =
// old bit_{lg m}" -- pure rewiring plus the OR gate.
std::vector<WireId> select_chain(Circuit& c, std::vector<WireId> count) {
  std::vector<WireId> selects;
  while (count.size() >= 3) {  // width lg m + 1 >= 3 <=> m >= 4
    const std::size_t top = count.size() - 1;
    selects.push_back(c.or_gate(count[top], count[top - 1]));
    count[top - 1] = count[top];
    count.pop_back();
  }
  return selects;
}

using AdderKind = PrefixSorter::AdderKind;

SortedWithCount build_rec(Circuit& c, const std::vector<WireId>& in, AdderKind adder) {
  if (in.size() == 1) return {in, {in[0]}};
  const std::size_t h = in.size() / 2;
  const auto upper = build_rec(c, wiring::slice(in, 0, h), adder);
  const auto lower = build_rec(c, wiring::slice(in, h, h), adder);
  const auto count = adder == AdderKind::KoggeStone
                         ? blocks::prefix_adder(c, upper.count, lower.count)
                         : blocks::ripple_adder(c, upper.count, lower.count);
  const auto selects = select_chain(c, count);
  const auto shuffled = wiring::shuffle(wiring::concat(upper.out, lower.out), 2);
  return {patch_up(c, shuffled, selects), count};
}

// ---- value-level mirror (drives route()) ----------------------------------

struct Lane {
  Bit tag;
  std::size_t id;
};

void patch_up_value(std::vector<Lane>& z, std::size_t lo, std::size_t m, std::size_t ones) {
  if (m == 2) {
    if (z[lo].tag > z[lo + 1].tag) std::swap(z[lo], z[lo + 1]);
    return;
  }
  for (std::size_t i = 0; i < m / 2; ++i) {
    auto& a = z[lo + i];
    auto& b = z[lo + m - 1 - i];
    if (a.tag > b.tag) std::swap(a, b);
  }
  const bool s = ones >= m / 2;
  if (s) {
    for (std::size_t i = 0; i < m / 2; ++i) std::swap(z[lo + i], z[lo + m / 2 + i]);
  }
  patch_up_value(z, lo + m / 2, m / 2, s ? ones - m / 2 : ones);
  if (s) {
    for (std::size_t i = 0; i < m / 2; ++i) std::swap(z[lo + i], z[lo + m / 2 + i]);
  }
}

std::size_t sort_value(std::vector<Lane>& v, std::size_t lo, std::size_t m) {
  if (m == 1) return v[lo].tag;
  const std::size_t h = m / 2;
  const std::size_t ones = sort_value(v, lo, h) + sort_value(v, lo + h, h);
  // Two-way shuffle of the two sorted halves.
  std::vector<Lane> tmp(v.begin() + static_cast<std::ptrdiff_t>(lo),
                        v.begin() + static_cast<std::ptrdiff_t>(lo + m));
  for (std::size_t i = 0; i < h; ++i) {
    v[lo + 2 * i] = tmp[i];
    v[lo + 2 * i + 1] = tmp[h + i];
  }
  patch_up_value(v, lo, m, ones);
  return ones;
}

}  // namespace

PrefixSorter::PrefixSorter(std::size_t n, AdderKind adder) : BinarySorter(n), adder_(adder) {
  require_pow2(n, 2, "PrefixSorter");
}

std::vector<std::size_t> PrefixSorter::route(const BitVec& tags) const {
  if (tags.size() != n_) throw std::invalid_argument("PrefixSorter::route: wrong input size");
  std::vector<Lane> lanes(n_);
  for (std::size_t i = 0; i < n_; ++i) lanes[i] = {tags[i], i};
  sort_value(lanes, 0, n_);
  std::vector<std::size_t> perm(n_);
  for (std::size_t i = 0; i < n_; ++i) perm[i] = lanes[i].id;
  return perm;
}

netlist::Circuit PrefixSorter::build_circuit() const {
  Circuit c;
  const auto in = c.inputs(n_);
  const auto result = build_rec(c, in, adder_);
  c.mark_outputs(result.out);
  return c;
}

namespace {

double adder_cost(std::size_t w) {
  // Mirrors blocks::prefix_adder: 2w generate/propagate gates, 3 gates per
  // Kogge-Stone cell, w-1 sum XORs.
  double cells = 0;
  for (std::size_t d = 1; d < w; d *= 2) cells += static_cast<double>(w - d);
  return 2.0 * static_cast<double>(w) + 3.0 * cells + static_cast<double>(w - 1);
}

double patchup_cost(std::size_t m) {
  if (m <= 2) return 1;
  return 1.5 * static_cast<double>(m) + patchup_cost(m / 2);
}

}  // namespace

double PrefixSorter::expected_unit_cost(std::size_t n) {
  if (n <= 1) return 0;
  const std::size_t w = ilog2(n);  // adder width = lg n
  return 2 * expected_unit_cost(n / 2) + adder_cost(w) + static_cast<double>(w - 1) +
         patchup_cost(n);
}

double PrefixSorter::expected_unit_depth(std::size_t n) {
  // Paper bound (Section III.A): 3 lg^2 n + 2 lg n lg lg n.  Used as an
  // upper bound in tests; the measured depth is reported by the benches.
  const double l = lg(static_cast<double>(n));
  return 3 * l * l + 2 * l * lg(l > 1 ? l : 2);
}

double PrefixSorter::paper_cost(std::size_t n) {
  return 3.0 * static_cast<double>(n) * lg(static_cast<double>(n));
}

}  // namespace absort::sorters
