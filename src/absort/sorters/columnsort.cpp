#include "absort/sorters/columnsort.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "absort/blocks/mux.hpp"
#include "absort/netlist/batch_eval.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/detail/lane.hpp"
#include "absort/util/math.hpp"
#include "absort/util/wordvec.hpp"

namespace absort::sorters {
namespace {

using detail::Lane;

constexpr std::size_t kPadId = std::numeric_limits<std::size_t>::max();

// Sorts every r-element column (column-major layout) by a stable zero/one
// partition -- the order a binary sorting network realizes, made
// deterministic by stability.
void sort_columns(std::vector<Lane>& v, std::size_t r) {
  std::vector<Lane> col;
  for (std::size_t c = 0; c * r < v.size(); ++c) {
    col.assign(v.begin() + static_cast<std::ptrdiff_t>(c * r),
               v.begin() + static_cast<std::ptrdiff_t>((c + 1) * r));
    std::size_t w = c * r;
    for (const auto& l : col) {
      if (l.tag == 0) v[w++] = l;
    }
    for (const auto& l : col) {
      if (l.tag == 1) v[w++] = l;
    }
  }
}

// Step 2: read the r x s matrix in column-major order and write it back
// row-major (same shape).  Step 4 is the inverse.
std::vector<Lane> transpose(const std::vector<Lane>& v, std::size_t r, std::size_t s) {
  std::vector<Lane> out(v.size());
  for (std::size_t t = 0; t < v.size(); ++t) out[(t % s) * r + t / s] = v[t];
  return out;
}

std::vector<Lane> untranspose(const std::vector<Lane>& v, std::size_t r, std::size_t s) {
  std::vector<Lane> out(v.size());
  for (std::size_t t = 0; t < v.size(); ++t) out[t] = v[(t % s) * r + t / s];
  return out;
}

}  // namespace

ColumnsortSorter::ColumnsortSorter(std::size_t n, std::size_t r, std::size_t s)
    : BinarySorter(n), r_(r), s_(s) {
  if (r * s != n || r == 0 || s == 0) {
    throw std::invalid_argument("ColumnsortSorter: need r*s = n");
  }
  if (s > 1 && r % s != 0) throw std::invalid_argument("ColumnsortSorter: need s | r");
  if (s > 1 && r < 2 * (s - 1) * (s - 1)) {
    throw std::invalid_argument("ColumnsortSorter: need r >= 2(s-1)^2");
  }
  if (s > 1 && r % 2 != 0) throw std::invalid_argument("ColumnsortSorter: need even r");
}

std::pair<std::size_t, std::size_t> ColumnsortSorter::choose_shape(std::size_t n) {
  // Largest s with s | n, s | (n/s), and n/s >= 2(s-1)^2.
  std::size_t best_s = 1;
  for (std::size_t s = 2; s * s <= n; ++s) {
    if (n % s != 0) continue;
    const std::size_t r = n / s;
    if (r % s != 0 || r % 2 != 0) continue;
    if (r >= 2 * (s - 1) * (s - 1)) best_s = s;
  }
  return {n / best_s, best_s};
}

netlist::CostReport ColumnsortSorter::cost_report(const netlist::CostModel& m) const {
  require_pow2(r_, 2, "ColumnsortSorter::cost_report r");
  if (s_ > 1) require_pow2(s_, 2, "ColumnsortSorter::cost_report s");
  netlist::CostReport acc;
  const auto add = [&acc](const netlist::CostReport& r) {
    acc.cost += r.cost;
    acc.components += r.components;
    for (std::size_t i = 0; i < netlist::kNumKinds; ++i) acc.inventory[i] += r.inventory[i];
  };
  const auto sorter = netlist::analyze(BatcherOemSorter(r_).build_circuit(), m);
  add(sorter);
  double muxdepth = 0;
  if (s_ > 1) {
    netlist::Circuit cm;
    const auto in = cm.inputs(n_);
    const auto sel = cm.inputs(ilog2(s_));
    for (auto w : blocks::mux_nk(cm, in, r_, sel)) cm.mark_output(w);
    const auto mux = netlist::analyze(cm, m);
    netlist::Circuit cd;
    const auto din = cd.inputs(r_);
    const auto dsel = cd.inputs(ilog2(s_));
    for (auto w : blocks::demux_kn(cd, din, n_, dsel)) cd.mark_output(w);
    const auto demux = netlist::analyze(cd, m);
    add(mux);
    add(demux);
    muxdepth = mux.depth + demux.depth;
  }
  // One column's dataflow path: mux, sorter, demux (the permutation steps
  // between passes are free wiring).
  acc.depth = muxdepth + sorter.depth;
  return acc;
}

double ColumnsortSorter::sorting_time(const netlist::CostModel& m) const {
  const auto r = cost_report(m);
  // Four passes; within a pass the s columns stream through the Batcher
  // pipeline (fill + one column per cycle), per Section III.C.
  return 4.0 * (r.depth + static_cast<double>(s_ - 1));
}

netlist::Circuit ColumnsortSorter::column_sorter_circuit() const {
  require_pow2(r_, 2, "ColumnsortSorter::column_sorter_circuit r");
  return BatcherOemSorter(r_).build_circuit();
}

namespace {

/// The columnsort batch engine: one compiled r-input column sorter streamed
/// over the matrix columns of every lane block, reusable across run() calls.
class ColumnsortBatchSorter final : public BatchSorter {
 public:
  ColumnsortBatchSorter(const ColumnsortSorter& s, const BatchOptions& opts)
      : BatchSorter(s.size()),
        r_(s.rows()),
        s_(s.cols()),
        threads_(opts.threads),
        col_(s.column_sorter_circuit(), opts) {}

  [[nodiscard]] netlist::Backend backend() const noexcept override { return col_.backend(); }

  void run(std::span<const BitVec> batch, std::span<BitVec> out) override;

 private:
  std::size_t r_, s_;
  std::size_t threads_;
  netlist::BitSlicedEvaluator col_;
};

}  // namespace

std::unique_ptr<BatchSorter> ColumnsortSorter::make_batch_sorter(const BatchOptions& opts) const {
  if (!is_pow2(r_) || r_ < 2 || (s_ > 1 && !is_pow2(s_))) {
    return BinarySorter::make_batch_sorter(opts);  // per-vector fallback engine
  }
  return std::make_unique<ColumnsortBatchSorter>(*this, opts);
}

void ColumnsortSorter::sort_batch(std::span<const BitVec> batch, std::span<BitVec> out,
                                  const BatchOptions& opts) const {
  check_batch(batch, out);
  make_batch_sorter(opts)->run(batch, out);
}

void ColumnsortBatchSorter::run(std::span<const BitVec> batch, std::span<BitVec> out) {
  check(batch, out);
  if (batch.empty()) return;
  using netlist::kBlockLanes;
  using wordvec::Vec;
  using wordvec::Word;
  const netlist::BitSlicedEvaluator& col = col_;
  for (auto& o : out) {
    if (o.size() != n_) o.data().resize(n_);
  }
  const std::size_t r = r_, s = s_, n = n_;
  const std::size_t blocks = (batch.size() + kBlockLanes - 1) / kBlockLanes;
  netlist::for_each_block_range(blocks, threads_, [&](std::size_t lo, std::size_t hi) {
    std::vector<Vec> a, b, ext, scr;  // per-worker
    for (std::size_t blk = lo; blk < hi; ++blk) {
      const std::size_t first = blk * kBlockLanes;
      const std::size_t lanes = std::min(kBlockLanes, batch.size() - first);
      const std::size_t W = lanes <= wordvec::kSimdLanes ? 1 : 2;
      const std::size_t wps = W * wordvec::kSimdWords;
      a.resize(W * n);
      scr.resize(W * col.num_slots());
      wordvec::pack_lanes_wide(batch, first, lanes, wps,
                               {reinterpret_cast<Word*>(a.data()), wps * n});
      // Streams every column (at Vec offset c*r*W of the packed frame)
      // through the one compiled column-sorter program, in place: the
      // evaluator scatters its outputs only after the program has run.
      const auto sort_columns_of = [&](Vec* v, std::size_t cols) {
        for (std::size_t c = 0; c < cols; ++c) {
          if (W == 1) {
            col.eval_pass_simd(v + c * r, v + c * r, scr.data());
          } else {
            col.eval_pass_simd_x2(v + 2 * c * r, v + 2 * c * r, scr.data());
          }
        }
      };
      if (s == 1) {  // degenerate single column
        sort_columns_of(a.data(), 1);
        wordvec::unpack_lanes_wide({reinterpret_cast<const Word*>(a.data()), wps * n}, first,
                                   lanes, wps, out);
        continue;
      }
      b.resize(W * n);
      sort_columns_of(a.data(), s);  // step 1
      for (std::size_t t = 0; t < n; ++t) {  // step 2: transpose
        const std::size_t d = (t % s) * r + t / s;
        for (std::size_t w = 0; w < W; ++w) b[d * W + w] = a[t * W + w];
      }
      sort_columns_of(b.data(), s);  // step 3
      for (std::size_t t = 0; t < n; ++t) {  // step 4: untranspose
        const std::size_t src = (t % s) * r + t / s;
        for (std::size_t w = 0; w < W; ++w) a[t * W + w] = b[src * W + w];
      }
      sort_columns_of(a.data(), s);  // step 5
      // step 6: shift down by r/2 -- r/2 all-zero pad lanes in front, r/2
      // all-one behind, forming an r x (s+1) matrix.
      ext.resize(W * (n + r));
      const Vec zero{};
      const Vec ones = ~zero;
      std::fill(ext.begin(), ext.begin() + static_cast<std::ptrdiff_t>(W * (r / 2)), zero);
      std::copy(a.begin(), a.end(), ext.begin() + static_cast<std::ptrdiff_t>(W * (r / 2)));
      std::fill(ext.end() - static_cast<std::ptrdiff_t>(W * (r / 2)), ext.end(), ones);
      sort_columns_of(ext.data(), s + 1);  // step 7
      // step 8: unshift -- the sorted pads sit exactly at the head and tail.
      wordvec::unpack_lanes_wide(
          {reinterpret_cast<const Word*>(ext.data() + W * (r / 2)), wps * n}, first, lanes, wps,
          out);
    }
  });
}

std::vector<std::size_t> ColumnsortSorter::route(const BitVec& tags) const {
  if (tags.size() != n_) throw std::invalid_argument("ColumnsortSorter::route: wrong input size");
  auto v = detail::make_lanes(tags);
  if (s_ == 1) {  // degenerate single column
    sort_columns(v, r_);
    return detail::lane_perm(v);
  }
  sort_columns(v, r_);              // step 1
  v = transpose(v, r_, s_);         // step 2
  sort_columns(v, r_);              // step 3
  v = untranspose(v, r_, s_);       // step 4
  sort_columns(v, r_);              // step 5
  // step 6: shift down by r/2 -- prepend r/2 "-inf" (0) pads and append r/2
  // "+inf" (1) pads, forming an r x (s+1) matrix.
  std::vector<Lane> ext;
  ext.reserve(n_ + r_);
  for (std::size_t i = 0; i < r_ / 2; ++i) ext.push_back({0, kPadId});
  ext.insert(ext.end(), v.begin(), v.end());
  for (std::size_t i = 0; i < r_ / 2; ++i) ext.push_back({1, kPadId});
  sort_columns(ext, r_);            // step 7
  // step 8: unshift -- the stable column sort leaves the 0-pads exactly at
  // the head and the 1-pads exactly at the tail.
  std::vector<std::size_t> perm;
  perm.reserve(n_);
  for (std::size_t i = r_ / 2; i < n_ + r_ / 2; ++i) {
    if (ext[i].id == kPadId) {
      throw std::logic_error("ColumnsortSorter: pad escaped its boundary column");
    }
    perm.push_back(ext[i].id);
  }
  return perm;
}

}  // namespace absort::sorters
