#include "absort/sorters/fish_sorter.hpp"

#include <algorithm>
#include <stdexcept>

#include "absort/blocks/mux.hpp"
#include "absort/blocks/swapper.hpp"
#include "absort/netlist/batch_eval.hpp"
#include "absort/netlist/wiring.hpp"
#include "absort/sorters/detail/lane.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/util/math.hpp"
#include "absort/util/wordvec.hpp"

namespace absort::sorters {
namespace {

using detail::Lane;
using netlist::Circuit;
using netlist::CostModel;
using netlist::CostReport;

// ---- value-level k-way merger (drives route()) -----------------------------

// The n/2-input k-way clean sorter: the input is clean k-sorted; a k-input
// sorter orders the blocks' leading bits and the mux/demux pair dispatches
// each block to its sorted position (we use the stable rank: 0-blocks first
// in arrival order, then 1-blocks).
void clean_sort_value(std::vector<Lane>& v, std::size_t lo, std::size_t half, std::size_t k) {
  const std::size_t bs = half / k;
  std::size_t zeros = 0;
  for (std::size_t b = 0; b < k; ++b) zeros += (v[lo + b * bs].tag == 0) ? 1u : 0u;
  std::vector<Lane> tmp(v.begin() + static_cast<std::ptrdiff_t>(lo),
                        v.begin() + static_cast<std::ptrdiff_t>(lo + half));
  std::size_t next_zero = 0, next_one = zeros;
  for (std::size_t b = 0; b < k; ++b) {
    const std::size_t rank = (tmp[b * bs].tag == 0) ? next_zero++ : next_one++;
    for (std::size_t i = 0; i < bs; ++i) v[lo + rank * bs + i] = tmp[b * bs + i];
  }
}

}  // namespace

namespace detail {

void kway_merge_value(std::vector<Lane>& v, std::size_t lo, std::size_t m, std::size_t k) {
  if (m == k) {
    detail::muxmerge_sort_value(v, lo, m);
    return;
  }
  const std::size_t bs = m / k;
  // k-SWAP: per block, the middle bit steers the clean half up; then the
  // wiring gathers upper halves into [lo, lo+m/2).
  std::vector<Lane> tmp(v.begin() + static_cast<std::ptrdiff_t>(lo),
                        v.begin() + static_cast<std::ptrdiff_t>(lo + m));
  for (std::size_t b = 0; b < k; ++b) {
    if (tmp[b * bs + bs / 2].tag) {
      for (std::size_t i = 0; i < bs / 2; ++i) std::swap(tmp[b * bs + i], tmp[b * bs + bs / 2 + i]);
    }
  }
  for (std::size_t b = 0; b < k; ++b) {
    for (std::size_t i = 0; i < bs / 2; ++i) {
      v[lo + b * (bs / 2) + i] = tmp[b * bs + i];
      v[lo + m / 2 + b * (bs / 2) + i] = tmp[b * bs + bs / 2 + i];
    }
  }
  clean_sort_value(v, lo, m / 2, k);
  kway_merge_value(v, lo + m / 2, m / 2, k);
  detail::mux_merger_value(v, lo, m);
}

}  // namespace detail

namespace {

// ---- cost assembly ---------------------------------------------------------

void accumulate(CostReport& acc, const CostReport& r) {
  acc.cost += r.cost;
  acc.components += r.components;
  for (std::size_t i = 0; i < netlist::kNumKinds; ++i) acc.inventory[i] += r.inventory[i];
}

CostReport analyze_front_mux(std::size_t n, std::size_t k, const CostModel& m) {
  Circuit c;
  const auto in = c.inputs(n);
  const auto sel = c.inputs(ilog2(k));
  for (auto w : blocks::mux_nk(c, in, n / k, sel)) c.mark_output(w);
  return netlist::analyze(c, m);
}

CostReport analyze_front_demux(std::size_t n, std::size_t k, const CostModel& m) {
  Circuit c;
  const auto in = c.inputs(n / k);
  const auto sel = c.inputs(ilog2(k));
  for (auto w : blocks::demux_kn(c, in, n, sel)) c.mark_output(w);
  return netlist::analyze(c, m);
}

CostReport analyze_k_swap(std::size_t m_sz, std::size_t k, const CostModel& m) {
  Circuit c;
  const auto in = c.inputs(m_sz);
  const auto ctrls = c.inputs(k);
  for (auto w : blocks::k_swap(c, in, ctrls)) c.mark_output(w);
  return netlist::analyze(c, m);
}

CostReport analyze_mux_merger(std::size_t m_sz, const CostModel& m) {
  Circuit c;
  const auto in = c.inputs(m_sz);
  for (auto w : build_mux_merger(c, in)) c.mark_output(w);
  return netlist::analyze(c, m);
}

// Dispatch datapath of the (half)-input k-way clean sorter: (half, half/k)-
// multiplexer, (half/k, half)-demultiplexer, and the (k,1)-multiplexer that
// presents the selected block's leading bit to the control logic.
CostReport analyze_dispatch(std::size_t half, std::size_t k, const CostModel& m) {
  Circuit c;
  const auto in = c.inputs(half);
  const auto sel = c.inputs(ilog2(k));
  const auto block = blocks::mux_nk(c, in, half / k, sel);
  const auto lead = blocks::mux_tree(c, [&] {
    std::vector<netlist::WireId> leads;
    for (std::size_t b = 0; b < k; ++b) leads.push_back(in[b * (half / k)]);
    return leads;
  }(), sel);
  c.mark_output(lead);
  const auto sel2 = c.inputs(ilog2(k));
  for (auto w : blocks::demux_kn(c, block, half, sel2)) c.mark_output(w);
  return netlist::analyze(c, m);
}

}  // namespace

FishSorter::FishSorter(std::size_t n, std::size_t k) : BinarySorter(n), k_(k) {
  require_pow2(n, 4, "FishSorter n");
  require_pow2(k, 2, "FishSorter k");
  if (k > n / 2) {
    throw std::invalid_argument("FishSorter: need k <= n/2 so the small sorter has >= 2 inputs");
  }
}

std::size_t FishSorter::default_k(std::size_t n) {
  const std::size_t k = next_pow2(std::max<std::size_t>(2, ilog2(n)));
  return std::min(k, n / 2);
}

std::vector<netlist::WireId> build_kway_merger(netlist::Circuit& c,
                                               const std::vector<netlist::WireId>& in,
                                               std::size_t k) {
  const std::size_t m = in.size();
  require_pow2(m, 2, "build_kway_merger");
  require_pow2(k, 2, "build_kway_merger k");
  if (m < k) throw std::invalid_argument("build_kway_merger: n < k");
  if (m == k) return build_muxmerge_sorter(c, in);  // singleton blocks
  const std::size_t bs = m / k;
  // k-SWAP: each block's middle bit steers its clean half to the top.
  std::vector<netlist::WireId> ctrls;
  ctrls.reserve(k);
  for (std::size_t b = 0; b < k; ++b) ctrls.push_back(in[b * bs + bs / 2]);
  const auto sw = blocks::k_swap(c, in, ctrls);
  // Upper half: clean k-sorted, so the k-way clean sorter collapses to a
  // k-input sorter on the blocks' leading bits whose sorted outputs fan out
  // (free wiring) across the clean blocks.  This is the combinational
  // equivalent of the paper's mux/demux dispatch, which moves one clean
  // block per clock step -- the *bits* of output block p are exactly the
  // p-th smallest leading bit either way.
  const std::size_t half = m / 2;
  const std::size_t cbs = half / k;
  std::vector<netlist::WireId> leads;
  leads.reserve(k);
  for (std::size_t b = 0; b < k; ++b) leads.push_back(sw[b * cbs]);
  const auto sorted_leads = build_muxmerge_sorter(c, leads);
  std::vector<netlist::WireId> merged(m);
  for (std::size_t j = 0; j < half; ++j) merged[j] = sorted_leads[j / cbs];
  // Lower half: k-sorted again (Theorem 4); recurse, then combine.
  const std::vector<netlist::WireId> lower_in(sw.begin() + static_cast<std::ptrdiff_t>(half),
                                              sw.end());
  const auto lower = build_kway_merger(c, lower_in, k);
  std::copy(lower.begin(), lower.end(), merged.begin() + static_cast<std::ptrdiff_t>(half));
  return build_mux_merger(c, merged);
}

netlist::Circuit FishSorter::small_sorter_circuit() const {
  netlist::Circuit c;
  const auto in = c.inputs(n_ / k_);
  c.mark_outputs(build_muxmerge_sorter(c, in));
  return c;
}

netlist::Circuit FishSorter::merger_circuit() const {
  netlist::Circuit c;
  const auto in = c.inputs(n_);
  c.mark_outputs(build_kway_merger(c, in, k_));
  return c;
}

namespace {

/// The fish sorter's streaming batch engine: the n/k-input small sorter and
/// the k-way merger compiled once, streamed over every lane block of a run.
class FishBatchSorter final : public BatchSorter {
 public:
  FishBatchSorter(const FishSorter& s, const BatchOptions& opts)
      : BatchSorter(s.size()),
        k_(s.k()),
        threads_(opts.threads),
        small_(s.small_sorter_circuit(), opts),
        merger_(s.merger_circuit(), opts) {}

  /// Both evaluators resolve from the same options; report the weaker one
  /// so a partial native fallback (one kernel built, one degraded) is never
  /// reported as fully Native.
  [[nodiscard]] netlist::Backend backend() const noexcept override {
    return small_.backend() == merger_.backend() ? small_.backend()
                                                 : netlist::Backend::Simd;
  }

  void run(std::span<const BitVec> batch, std::span<BitVec> out) override {
    check(batch, out);
    if (batch.empty()) return;
    using netlist::kBlockLanes;
    using wordvec::Vec;
    using wordvec::Word;
    const std::size_t n = n_;
    const std::size_t g = n / k_;
    for (auto& o : out) {
      if (o.size() != n) o.data().resize(n);
    }
    const std::size_t blocks = (batch.size() + kBlockLanes - 1) / kBlockLanes;
    netlist::for_each_block_range(blocks, threads_, [&](std::size_t lo, std::size_t hi) {
      std::vector<Vec> frame, sorted, scr_small, scr_merge;  // per-worker
      for (std::size_t blk = lo; blk < hi; ++blk) {
        const std::size_t first = blk * kBlockLanes;
        const std::size_t lanes = std::min(kBlockLanes, batch.size() - first);
        const std::size_t W = lanes <= wordvec::kSimdLanes ? 1 : 2;
        const std::size_t wps = W * wordvec::kSimdWords;
        frame.resize(W * n);
        sorted.resize(W * n);
        scr_small.resize(W * small_.num_slots());
        scr_merge.resize(W * merger_.num_slots());
        wordvec::pack_lanes_wide(batch, first, lanes, wps,
                                 {reinterpret_cast<Word*>(frame.data()), wps * n});
        // Front end: the k groups stream through the one compiled
        // small-sorter program back to back; group t occupies wires
        // [t*g, (t+1)*g) of the packed frame, so a pointer offset selects it.
        for (std::size_t t = 0; t < k_; ++t) {
          if (W == 1) {
            small_.eval_pass_simd(frame.data() + t * g, sorted.data() + t * g,
                                  scr_small.data());
          } else {
            small_.eval_pass_simd_x2(frame.data() + 2 * t * g, sorted.data() + 2 * t * g,
                                     scr_small.data());
          }
        }
        // Back end: the now k-sorted frame through the k-way merger program.
        if (W == 1) {
          merger_.eval_pass_simd(sorted.data(), frame.data(), scr_merge.data());
        } else {
          merger_.eval_pass_simd_x2(sorted.data(), frame.data(), scr_merge.data());
        }
        wordvec::unpack_lanes_wide({reinterpret_cast<const Word*>(frame.data()), wps * n},
                                   first, lanes, wps, out);
      }
    });
  }

 private:
  std::size_t k_;
  std::size_t threads_;
  netlist::BitSlicedEvaluator small_;
  netlist::BitSlicedEvaluator merger_;
};

}  // namespace

std::unique_ptr<BatchSorter> FishSorter::make_batch_sorter(const BatchOptions& opts) const {
  return std::make_unique<FishBatchSorter>(*this, opts);
}

void FishSorter::sort_batch(std::span<const BitVec> batch, std::span<BitVec> out,
                            const BatchOptions& opts) const {
  make_batch_sorter(opts)->run(batch, out);
}

std::vector<std::size_t> FishSorter::route(const BitVec& tags) const {
  if (tags.size() != n_) throw std::invalid_argument("FishSorter::route: wrong input size");
  auto lanes = detail::make_lanes(tags);
  const std::size_t g = n_ / k_;
  // Front end: each group streams through the single n/k-input sorter; the
  // demultiplexer returns it to block t of the merger input.
  for (std::size_t t = 0; t < k_; ++t) detail::muxmerge_sort_value(lanes, t * g, g);
  detail::kway_merge_value(lanes, 0, n_, k_);
  return detail::lane_perm(lanes);
}

netlist::CostReport FishSorter::cost_report(const CostModel& m) const {
  CostReport acc;
  const std::size_t g = n_ / k_;
  const auto front_mux = analyze_front_mux(n_, k_, m);
  const auto small = netlist::analyze(MuxMergeSorter(g).build_circuit(), m);
  const auto front_demux = analyze_front_demux(n_, k_, m);
  accumulate(acc, front_mux);
  accumulate(acc, small);
  accumulate(acc, front_demux);

  const auto ksorter = netlist::analyze(MuxMergeSorter(k_).build_circuit(), m);
  // Innermost merger level: the k-input sorter merges k singleton blocks.
  accumulate(acc, ksorter);
  // Dataflow depth of the k-way merger, built inside out:
  //   D(k) = d_ksorter;  D(m) = 1 + max(clean-sorter, D(m/2)) + d_mm(m).
  double merge_depth = ksorter.depth;
  for (std::size_t sz = 2 * k_; sz <= n_; sz *= 2) {
    const auto kswap = analyze_k_swap(sz, k_, m);
    const auto dispatch = analyze_dispatch(sz / 2, k_, m);
    const auto merger = analyze_mux_merger(sz, m);
    accumulate(acc, kswap);
    accumulate(acc, ksorter);
    accumulate(acc, dispatch);
    accumulate(acc, merger);
    const double clean_sorter = ksorter.depth + dispatch.depth;
    merge_depth = kswap.depth + std::max(clean_sorter, merge_depth) + merger.depth;
  }
  acc.depth = front_mux.depth + small.depth + front_demux.depth + merge_depth;
  return acc;
}

FishTiming FishSorter::timing() const {
  const auto unit = CostModel::paper_unit();
  const std::size_t g = n_ / k_;
  const double d_mux = analyze_front_mux(n_, k_, unit).depth;
  const double d_demux = analyze_front_demux(n_, k_, unit).depth;
  const double d_small = netlist::analyze(MuxMergeSorter(g).build_circuit(), unit).depth;
  const double d_ksorter = netlist::analyze(MuxMergeSorter(k_).build_circuit(), unit).depth;

  FishTiming t;
  const double pass = d_mux + d_small + d_demux;
  t.front_unpipelined = static_cast<double>(k_) * pass;
  // Pipelined: the small sorter is a pipeline of unit-delay segments; groups
  // issue one clock apart (eq. 25's O(k) term).
  t.front_pipelined = pass + static_cast<double>(k_ - 1);

  // k-way merger: per level, the clean-sorter branch and the recursive
  // branch run in parallel; the two-way mux-merger needs both.
  const auto merge_time = [&](bool pipelined_dispatch) {
    double time = d_ksorter;  // innermost level: k-input sorter on singletons
    for (std::size_t sz = 2 * k_; sz <= n_; sz *= 2) {
      const double dispatch_depth = 3.0 * static_cast<double>(ilog2(k_));
      const double dispatch = pipelined_dispatch
                                  ? dispatch_depth + static_cast<double>(k_ - 1)
                                  : static_cast<double>(k_) * dispatch_depth;
      const double clean_sorter = d_ksorter + dispatch;
      const double merger = 2.0 * static_cast<double>(ilog2(sz)) - 1.0;
      time = 1.0 /*k-swap*/ + std::max(clean_sorter, time) + merger;
    }
    return time;
  };
  t.merge = merge_time(true);
  t.merge_unpipelined = merge_time(false);
  t.total_unpipelined = t.front_unpipelined + t.merge_unpipelined;
  t.total_pipelined = t.front_pipelined + t.merge;
  return t;
}

sim::Schedule FishSorter::schedule(bool pipelined) const {
  const auto unit = CostModel::paper_unit();
  const std::size_t g = n_ / k_;
  const double d_mux = analyze_front_mux(n_, k_, unit).depth;
  const double d_demux = analyze_front_demux(n_, k_, unit).depth;
  const double d_small = netlist::analyze(MuxMergeSorter(g).build_circuit(), unit).depth;
  const double d_ksorter = netlist::analyze(MuxMergeSorter(k_).build_circuit(), unit).depth;

  sim::Schedule sched;
  double front_done = 0;
  for (std::size_t t = 0; t < k_; ++t) {
    const double start = pipelined ? static_cast<double>(t) : front_done;
    front_done =
        sched.step("front: group " + std::to_string(t) + " mux+sort+demux", start,
                   d_mux + d_small + d_demux);
  }

  // Merger levels, outermost first; the recursion's lower path enters each
  // level after the previous level's k-swap.
  double lower_entry = front_done;
  std::vector<std::pair<std::size_t, double>> branch_done;  // (level size, finish)
  for (std::size_t sz = n_; sz > k_; sz /= 2) {
    lower_entry = sched.step("merge[" + std::to_string(sz) + "]: k-swap", lower_entry, 1.0);
    double cs = sched.step("merge[" + std::to_string(sz) + "]: clean-sorter k-sort", lower_entry,
                           d_ksorter);
    const double dispatch_depth = 3.0 * static_cast<double>(ilog2(k_));
    for (std::size_t b = 0; b < k_; ++b) {
      const double start = pipelined ? cs + static_cast<double>(b)
                                     : cs + static_cast<double>(b) * dispatch_depth;
      sched.step("merge[" + std::to_string(sz) + "]: dispatch block " + std::to_string(b), start,
                 dispatch_depth);
    }
    const double cs_done = pipelined ? cs + static_cast<double>(k_ - 1) + dispatch_depth
                                     : cs + static_cast<double>(k_) * dispatch_depth;
    branch_done.push_back({sz, cs_done});
  }
  double done = sched.step("merge[" + std::to_string(k_) + "]: base k-sorter", lower_entry,
                           d_ksorter);
  for (auto it = branch_done.rbegin(); it != branch_done.rend(); ++it) {
    const double start = std::max(done, it->second);
    done = sched.step("merge[" + std::to_string(it->first) + "]: two-way mux-merger", start,
                      2.0 * static_cast<double>(ilog2(it->first)) - 1.0);
  }
  return sched;
}

BitVec kway_merge(const BitVec& k_sorted, std::size_t k) {
  require_pow2(k_sorted.size(), 2, "kway_merge");
  require_pow2(k, 2, "kway_merge k");
  if (k_sorted.size() < k) throw std::invalid_argument("kway_merge: n < k");
  auto lanes = detail::make_lanes(k_sorted);
  detail::kway_merge_value(lanes, 0, k_sorted.size(), k);
  BitVec out(k_sorted.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) out[i] = lanes[i].tag;
  return out;
}

BitVec kway_clean_sort(const BitVec& clean_k_sorted, std::size_t k) {
  require_pow2(clean_k_sorted.size(), 2, "kway_clean_sort");
  require_pow2(k, 2, "kway_clean_sort k");
  if (clean_k_sorted.size() % k != 0) {
    throw std::invalid_argument("kway_clean_sort: k must divide n");
  }
  auto lanes = detail::make_lanes(clean_k_sorted);
  clean_sort_value(lanes, 0, clean_k_sorted.size(), k);
  BitVec out(clean_k_sorted.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) out[i] = lanes[i].tag;
  return out;
}

double FishSorter::paper_cost(std::size_t n, std::size_t k) {
  // eq. (17): C(n,k) <= 2n + 4(n/k)lg(n/k) + 11n + k lg(n/k)
  //                     + 4k lg k lg(n/k) + 4k lg k
  const double nn = static_cast<double>(n), kk = static_cast<double>(k);
  const double lnk = lg(nn / kk), lk = lg(kk);
  return 2 * nn + 4 * (nn / kk) * lnk + 11 * nn + kk * lnk + 4 * kk * lk * lnk + 4 * kk * lk;
}

double FishSorter::paper_depth_bound(std::size_t n, std::size_t k) {
  // eq. (18): D(n,k) <= 2 lg k + 2 lg^2(n/k) + lg(n/k) + 2 lg n lg(n/k) + 2 lg^2 k
  const double nn = static_cast<double>(n), kk = static_cast<double>(k);
  const double lnk = lg(nn / kk), lk = lg(kk), ln = lg(nn);
  return 2 * lk + 2 * lnk * lnk + lnk + 2 * ln * lnk + 2 * lk * lk;
}

}  // namespace absort::sorters
