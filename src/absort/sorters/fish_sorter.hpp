#pragma once
// Network 3: the time-multiplexed "fish" binary sorter
// (Section III.C, Figs. 7-9, network model B).
//
// Front end: the input is divided into k groups of n/k elements; each group
// is moved through an (n, n/k)-multiplexer, sorted by a single n/k-input
// binary sorter (we use Network 2, the mux-merger sorter), and dispatched by
// an (n/k, n)-demultiplexer to its block of the merger's input -- so after k
// rounds the merger sees a k-sorted sequence.  The groups can stream through
// the small sorter back to back (pipelining), which is what turns the
// O(lg^3 n) unpipelined sorting time (eq. 24) into O(lg^2 n) (eq. 26).
//
// Back end: an n-input k-way mux-merger.  Each level applies Theorem 4:
//   * k-SWAP: one two-way swapper per sorted block, steered by the block's
//     middle bit, sends each block's clean half to the top n/2 wires (a
//     clean k-sorted sequence) and the rest to the bottom (k-sorted);
//   * the top half goes through an (n/2)-input k-way *clean sorter*: a
//     k-input binary sorter orders the blocks' leading bits, and an
//     (n/2, n/2k)-multiplexer / (n/2k, n/2)-demultiplexer pair dispatches
//     each clean block, one per clock step, to its sorted position;
//   * the bottom half recurses; a final n-input two-way mux-merger combines.
//
// Cost is O(n) (eq. 19: <= 17n + 5 lg^2 n lg lg n + ... at k = lg n); the
// cost report is assembled from the *real* netlists of every datapath block.
// Sorting time is measured on the cycle-accurate Schedule, with and without
// pipelining.

#include <memory>

#include "absort/sim/clock.hpp"
#include "absort/sorters/sorter.hpp"

namespace absort::sorters {

/// Timing of one complete sort, in unit gate delays (model-B accounting).
struct FishTiming {
  double front_unpipelined = 0;  ///< k sequential passes through mux/sorter/demux
  double front_pipelined = 0;    ///< groups streamed through the small sorter
  double merge = 0;              ///< k-way merger (dispatches pipelined)
  double merge_unpipelined = 0;  ///< k-way merger with sequential dispatches
  double total_unpipelined = 0;  ///< eq. (24) shape: O(lg^3 n) at k = lg n
  double total_pipelined = 0;    ///< eq. (26) shape: O(lg^2 n) at k = lg n
};

class FishSorter final : public BinarySorter {
 public:
  /// n and k must be powers of two with 2 <= k <= n/2.
  FishSorter(std::size_t n, std::size_t k);

  [[nodiscard]] std::string name() const override { return "fish"; }
  [[nodiscard]] std::size_t k() const noexcept { return k_; }

  [[nodiscard]] bool is_combinational() const override { return false; }
  [[nodiscard]] std::vector<std::size_t> route(const BitVec& tags) const override;

  using BinarySorter::sort_batch;
  /// Bit-sliced batch path mirroring the time-multiplexed schedule: the
  /// n/k-input small sorter is compiled once and the k groups of every lane
  /// block stream through it back to back (the front end's k rounds), then
  /// one compiled k-way merger circuit (see build_kway_merger) finishes the
  /// merge -- no per-vector sort() fallback.  Bit-identical to sort() on
  /// every input.
  void sort_batch(std::span<const BitVec> batch, std::span<BitVec> out,
                  const BatchOptions& opts) const override;

  /// The streaming path above with the small-sorter and merger programs
  /// compiled exactly once, reusable across run() calls (self-contained: the
  /// engine does not reference this sorter).
  [[nodiscard]] std::unique_ptr<BatchSorter> make_batch_sorter(
      const BatchOptions& opts = {}) const override;

  /// The front end's n/k-input sorter as a standalone circuit (the network
  /// the k groups stream through); exposed for stats and tests.
  [[nodiscard]] netlist::Circuit small_sorter_circuit() const;

  /// The back end's n-input k-way merger as a standalone circuit.
  [[nodiscard]] netlist::Circuit merger_circuit() const;

  /// Aggregated over the real constituent netlists (front mux/demux, small
  /// sorter, and every merger level's k-swap, clean sorter, and two-way
  /// mux-merger).  Depth in the report is the longest combinational path of
  /// any single clock step.
  [[nodiscard]] netlist::CostReport cost_report(const netlist::CostModel& m) const override;

  /// Sorting time on the cycle-accurate schedule.
  [[nodiscard]] FishTiming timing() const;

  /// Model-B sorting time: the pipelined schedule's critical path.
  [[nodiscard]] double sorting_time(const netlist::CostModel&) const override {
    return timing().total_pipelined;
  }

  /// Full schedule trace (for examples / debugging); pipelined front.
  [[nodiscard]] sim::Schedule schedule(bool pipelined) const;

  /// Paper closed forms for comparison (eqs. 17-18 evaluated at (n, k)).
  [[nodiscard]] static double paper_cost(std::size_t n, std::size_t k);
  [[nodiscard]] static double paper_depth_bound(std::size_t n, std::size_t k);

  /// The paper's parameter choice k = lg n, rounded to a power of two
  /// (clamped to [2, n/2]).
  [[nodiscard]] static std::size_t default_k(std::size_t n);
  [[nodiscard]] static std::unique_ptr<BinarySorter> make(std::size_t n) {
    return std::make_unique<FishSorter>(n, default_k(n));
  }

 private:
  std::size_t k_;
};

/// Value-level n-input k-way mux-merger: sorts any k-sorted sequence
/// (Theorem 4 recursion).  Exposed for the Fig. 8 reproduction and tests.
[[nodiscard]] BitVec kway_merge(const BitVec& k_sorted, std::size_t k);

/// Value-level k-way clean sorter: sorts any *clean* k-sorted sequence by
/// ordering the blocks (Fig. 9).  Exposed for the Fig. 9 reproduction.
[[nodiscard]] BitVec kway_clean_sort(const BitVec& clean_k_sorted, std::size_t k);

/// Builds the n-input k-way mux-merger (Theorem 4 recursion) as a netlist
/// fragment: k-SWAP steered by the blocks' middle bits, a k-way clean sorter
/// on the upper half (a k-input sorter on the blocks' leading bits whose
/// sorted outputs fan out across each clean block -- the combinational
/// collapse of the paper's one-block-per-clock dispatch), recursion on the
/// lower half, and a final two-way mux-merger.  Sorts any k-sorted input's
/// *bits*; it does not carry inputs (the dispatch permutation is not wired).
/// in.size() must be a power of two >= k with k | in.size().
std::vector<netlist::WireId> build_kway_merger(netlist::Circuit& c,
                                               const std::vector<netlist::WireId>& in,
                                               std::size_t k);

}  // namespace absort::sorters

namespace absort::sorters::detail {
struct Lane;
/// Value-level n-input k-way mux-merger on lanes [lo, lo+m) (k-sorted);
/// mirrors build_kway_merger decision for decision.  Exposed for the
/// multiway sorter's route(), which merges k recursively sorted groups.
void kway_merge_value(std::vector<Lane>& v, std::size_t lo, std::size_t m, std::size_t k);
}  // namespace absort::sorters::detail
