#include "absort/sorters/radix_wordsort.hpp"

#include <optional>
#include <stdexcept>

#include "absort/blocks/rank.hpp"
#include "absort/util/math.hpp"

namespace absort::sorters {

RadixWordSorter::RadixWordSorter(std::size_t n, std::size_t bits)
    : n_(n), bits_(bits), omega_(n, networks::OmegaFlow::Reverse) {
  require_pow2(n, 2, "RadixWordSorter");
  if (bits == 0 || bits > 64) throw std::invalid_argument("RadixWordSorter: bits in [1, 64]");
}

std::vector<std::size_t> RadixWordSorter::route(const std::vector<std::uint64_t>& keys) const {
  if (keys.size() != n_) throw std::invalid_argument("RadixWordSorter: wrong input size");
  for (auto k : keys) {
    if (bits_ < 64 && (k >> bits_) != 0) {
      throw std::invalid_argument("RadixWordSorter: key exceeds declared width");
    }
  }
  // perm[p] = original index of the key currently at position p.
  std::vector<std::size_t> perm(n_);
  std::vector<std::uint64_t> cur = keys;
  for (std::size_t i = 0; i < n_; ++i) perm[i] = i;
  for (std::size_t b = 0; b < bits_; ++b) {
    // Stable partition by bit b = concentrate the 0-keys (dest = rank among
    // zeros) and the 1-keys (dest = #zeros + rank among ones); each class is
    // monotone compact traffic for the omega fabric.
    std::size_t zeros = 0;
    for (auto k : cur) zeros += ((k >> b) & 1u) == 0 ? 1u : 0u;
    std::vector<std::optional<std::size_t>> dz(n_), d1(n_);
    std::size_t rz = 0, r1 = zeros;
    for (std::size_t i = 0; i < n_; ++i) {
      if (((cur[i] >> b) & 1u) == 0) {
        dz[i] = rz++;
      } else {
        d1[i] = r1++;
      }
    }
    const auto routed0 = omega_.route(dz);
    const auto routed1 = omega_.route(d1);
    if (routed0.blocked() || routed1.blocked()) {
      throw std::logic_error("RadixWordSorter: omega blocked on monotone compact traffic");
    }
    std::vector<std::uint64_t> nk(n_);
    std::vector<std::size_t> np(n_);
    for (std::size_t p = 0; p < n_; ++p) {
      const std::size_t src =
          routed0.output_source[p] != n_ ? routed0.output_source[p] : routed1.output_source[p];
      nk[p] = cur[src];
      np[p] = perm[src];
    }
    cur = std::move(nk);
    perm = std::move(np);
  }
  return perm;
}

std::vector<std::uint64_t> RadixWordSorter::sort(const std::vector<std::uint64_t>& keys) const {
  const auto perm = route(keys);
  std::vector<std::uint64_t> out;
  out.reserve(n_);
  for (auto p : perm) out.push_back(keys[p]);
  return out;
}

netlist::CostReport RadixWordSorter::cost_report(const netlist::CostModel& m) const {
  netlist::Circuit rank;
  const auto bits = rank.inputs(n_);
  for (const auto& count : blocks::prefix_counts(rank, bits)) {
    for (auto w : count) rank.mark_output(w);
  }
  const auto rank_report = netlist::analyze(rank, m);
  const auto fabric = netlist::analyze(omega_.build_circuit(), m);
  netlist::CostReport acc;
  const double passes = static_cast<double>(bits_);
  acc.cost = passes * (rank_report.cost + 2 * fabric.cost);
  acc.components = bits_ * (rank_report.components + 2 * fabric.components);
  for (std::size_t i = 0; i < netlist::kNumKinds; ++i) {
    acc.inventory[i] = bits_ * (rank_report.inventory[i] + 2 * fabric.inventory[i]);
  }
  acc.depth = passes * (rank_report.depth + fabric.depth);
  return acc;
}

}  // namespace absort::sorters
