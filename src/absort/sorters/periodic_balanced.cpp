#include "absort/sorters/periodic_balanced.hpp"

#include "absort/util/math.hpp"

namespace absort::sorters {
namespace {

using Op = OpNetworkSorter::Op;

void balanced_block_ops(std::vector<Op>& ops, std::size_t lo, std::size_t count) {
  if (count <= 1) return;
  for (std::size_t i = 0; i < count / 2; ++i) {
    ops.push_back(Op::compare(lo + i, lo + count - 1 - i));
  }
  balanced_block_ops(ops, lo, count / 2);
  balanced_block_ops(ops, lo + count / 2, count / 2);
}

}  // namespace

PeriodicBalancedSorter::PeriodicBalancedSorter(std::size_t n) : OpNetworkSorter(n) {
  require_pow2(n, 1, "PeriodicBalancedSorter");
  for (std::size_t pass = 0; pass < ilog2(n); ++pass) {
    balanced_block_ops(ops_, 0, n);
    if (pass == 0) block_ops_ = ops_.size();
  }
  if (ilog2(n) == 0) block_ops_ = 0;  // n == 1: no passes at all
}

std::optional<netlist::Circuit> PeriodicBalancedSorter::self_check_probe() const {
  return circuit_of_prefix(block_ops_);
}

std::size_t PeriodicBalancedSorter::expected_comparators(std::size_t n) {
  if (n <= 1) return 0;
  const std::size_t p = ilog2(n);
  return n / 2 * p * p;
}

std::size_t PeriodicBalancedSorter::expected_depth(std::size_t n) {
  if (n <= 1) return 0;
  const std::size_t p = ilog2(n);
  return p * p;
}

OddEvenTranspositionSorter::OddEvenTranspositionSorter(std::size_t n) : OpNetworkSorter(n) {
  if (n == 0) throw std::invalid_argument("OddEvenTranspositionSorter: n == 0");
  block_ops_ = 0;
  for (std::size_t stage = 0; stage < n; ++stage) {
    for (std::size_t i = stage % 2; i + 1 < n; i += 2) {
      ops_.push_back(Op::compare(i, i + 1));
    }
    if (stage == 1) block_ops_ = ops_.size();
  }
}

std::optional<netlist::Circuit> OddEvenTranspositionSorter::self_check_probe() const {
  // n == 1 leaves block_ops_ at 0 (empty probe: a single element is always
  // sorted); n >= 2 records the first even+odd stage pair.
  return circuit_of_prefix(block_ops_);
}

std::size_t OddEvenTranspositionSorter::expected_comparators(std::size_t n) {
  std::size_t total = 0;
  for (std::size_t stage = 0; stage < n; ++stage) {
    total += (n - (stage % 2)) / 2;
  }
  return total;
}

}  // namespace absort::sorters
