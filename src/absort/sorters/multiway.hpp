#pragma once
// Multiway merge sorter in the style of Shi-Yan-Wagh (arXiv:1407.0961):
// instead of recursing over halves and 2-way merging (Batcher), the input is
// split into k groups, each group is sorted recursively, and the k sorted
// runs are combined by a single k-way merger.  The recursion bottoms out in
// an n-sorter block (here the mux-merger sorter on <= k inputs), and the
// k-way merger is the fish path's combinational build_kway_merger (Theorem 4
// recursion: k-SWAP, clean sorter on the upper half, recurse on the lower,
// final two-way mux-merger) -- this family is precisely the fish sorter's
// merge tree with the time-multiplexed front end unrolled into hardware.
//
// A wider k trades merger depth (one k-way merge replaces lg k rounds of
// 2-way merges) against leaf-sorter size, giving the service a cost/latency
// point between mux-merger (k = 2 shape) and the model-B fish sorter.
// Fully combinational: build_circuit() flows through the word-program
// compiler, SIMD interpreter, and native JIT unchanged, and the default
// CircuitBatchSorter compile-once path serves batches.

#include <memory>

#include "absort/sorters/sorter.hpp"

namespace absort::sorters::detail {
struct Lane;
}  // namespace absort::sorters::detail

namespace absort::sorters {

class MultiwaySorter final : public BinarySorter {
 public:
  /// n and k must be powers of two with 2 <= k <= n.
  MultiwaySorter(std::size_t n, std::size_t k);

  [[nodiscard]] std::string name() const override { return "multiway-k"; }
  [[nodiscard]] std::size_t k() const noexcept { return k_; }

  [[nodiscard]] std::vector<std::size_t> route(const BitVec& tags) const override;
  [[nodiscard]] netlist::Circuit build_circuit() const override;

  /// Block counts of the construction (asserted by the tests): the number of
  /// leaf n-sorter blocks and of k-way merger blocks in the recursion tree.
  [[nodiscard]] static std::size_t expected_leaf_sorters(std::size_t n, std::size_t k);
  [[nodiscard]] static std::size_t expected_mergers(std::size_t n, std::size_t k);

  /// Registry default: k = 4 (clamped to n), the smallest genuinely multiway
  /// fan-in.
  [[nodiscard]] static std::size_t default_k(std::size_t n);
  [[nodiscard]] static std::unique_ptr<BinarySorter> make(std::size_t n) {
    return std::make_unique<MultiwaySorter>(n, default_k(n));
  }

 private:
  void sort_value(std::vector<detail::Lane>& v, std::size_t lo, std::size_t m) const;
  std::vector<netlist::WireId> build_sorter(netlist::Circuit& c,
                                            const std::vector<netlist::WireId>& in) const;

  std::size_t k_;
};

}  // namespace absort::sorters
