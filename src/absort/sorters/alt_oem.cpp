#include "absort/sorters/alt_oem.hpp"

#include "absort/util/math.hpp"

namespace absort::sorters {
namespace {

using Op = OpNetworkSorter::Op;

// Emits the mirrored-comparator recursion of the balanced merging block on
// the window [lo, lo+count).
void balanced_block(std::vector<Op>& ops, std::size_t lo, std::size_t count) {
  if (count <= 1) return;
  for (std::size_t i = 0; i < count / 2; ++i) {
    ops.push_back(Op::compare(lo + i, lo + count - 1 - i));
  }
  balanced_block(ops, lo, count / 2);
  balanced_block(ops, lo + count / 2, count / 2);
}

// Identity permutation on n positions with the window [lo, lo+count)
// replaced by a two-way shuffle of its halves.
std::vector<std::size_t> window_shuffle(std::size_t n, std::size_t lo, std::size_t count) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  const std::size_t h = count / 2;
  for (std::size_t i = 0; i < h; ++i) {
    perm[lo + 2 * i] = lo + i;
    perm[lo + 2 * i + 1] = lo + h + i;
  }
  return perm;
}

void alt_oem_sort(std::vector<Op>& ops, std::size_t lo, std::size_t count, std::size_t n) {
  if (count <= 1) return;
  alt_oem_sort(ops, lo, count / 2, n);
  alt_oem_sort(ops, lo + count / 2, count / 2, n);
  ops.push_back(Op::permute(window_shuffle(n, lo, count)));
  balanced_block(ops, lo, count);
}

}  // namespace

AltOemSorter::AltOemSorter(std::size_t n, bool include_redundant_first_stage)
    : OpNetworkSorter(n) {
  require_pow2(n, 1, "AltOemSorter");
  if (include_redundant_first_stage && n >= 2) {
    // The figure's redundant stage: comparators on adjacent pairs followed by
    // an unshuffle that separates mins from maxes (then the normal recursion
    // re-sorts everything anyway).
    for (std::size_t i = 0; i + 1 < n; i += 2) ops_.push_back(Op::compare(i, i + 1));
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n / 2; ++i) {
      perm[i] = 2 * i;
      perm[n / 2 + i] = 2 * i + 1;
    }
    ops_.push_back(Op::permute(std::move(perm)));
  }
  alt_oem_sort(ops_, 0, n, n);
}

std::size_t AltOemSorter::expected_comparators(std::size_t n) {
  if (n <= 1) return 0;
  // Balanced block on m inputs: (m/2) lg m comparators.
  const std::size_t p = ilog2(n);
  return 2 * expected_comparators(n / 2) + (n / 2) * p;
}

}  // namespace absort::sorters
