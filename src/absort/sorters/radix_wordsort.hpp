#pragma once
// Word-level sorting by repeated binary sorting steps.
//
// Section I: "the permutation and sorting problems can be broken into a
// sequence of sorting steps on binary sequences."  RadixWordSorter makes the
// sorting half of that sentence concrete: w LSD-first passes, each a
// *stable* binary partition of the keys by one bit.  A stable partition is
// exactly a pair of concentrations (the 0-keys to the top in order, the
// 1-keys below in order), realized self-routing by rank units + omega
// fabrics (see rank_concentrator.hpp); each pass's hardware is therefore
// O(n lg^2 n) bit-level, for O(w n lg^2 n) total.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "absort/netlist/analyze.hpp"
#include "absort/networks/omega.hpp"

namespace absort::sorters {

class RadixWordSorter {
 public:
  /// Sorts n-element vectors of keys < 2^bits.  n a power of two.
  RadixWordSorter(std::size_t n, std::size_t bits);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t key_bits() const noexcept { return bits_; }

  /// Stable ascending sort.
  [[nodiscard]] std::vector<std::uint64_t> sort(const std::vector<std::uint64_t>& keys) const;

  /// The permutation applied: out[i] = in[perm[i]]; stable.
  [[nodiscard]] std::vector<std::size_t> route(const std::vector<std::uint64_t>& keys) const;

  /// Hardware accounting: `bits` passes, each one rank unit + two omega
  /// fabrics (one per key class).
  [[nodiscard]] netlist::CostReport cost_report(const netlist::CostModel& m) const;

 private:
  std::size_t n_;
  std::size_t bits_;
  networks::OmegaNetwork omega_;
};

}  // namespace absort::sorters
