#pragma once
// Constant-periodic sorting network in the style of Piotrów's small-constant-
// periodic merging networks (arXiv:1409.1749, 1401.0396): ONE fixed block of
// p comparator layers (p = 3 or 4) applied t times.  A physical realization
// needs only the single block -- data recirculates through it t times -- which
// is the hardware appeal of constant periodicity, and the regularity is what
// the serving layer's Cheap self-check tier exploits (one block is a complete
// sortedness probe; see BinarySorter::self_check_probe).
//
// Block structure (E = even brick: comparators (0,1),(2,3),...; O = odd
// brick: (1,2),(3,4),...):
//   period 3: [E, O, E]      period 4: [E, O, E, O]
//
// Iteration count, proved by layer idempotence (E.E = E as a function, since
// a second even pass over already-exchanged pairs is a no-op):
//   period 3: block^t collapses to E (O E)^t -- 2t+1 alternating brick
//             layers -- and n alternating layers sort n keys (odd-even
//             transposition), so t = ceil((n-1)/2) suffices;
//   period 4: block^t is 4t alternating layers as written, so t = ceil(n/4).
//
// Works for EVERY n >= 1 (no power-of-two restriction -- bricks truncate at
// the boundary), which makes this the registry's only arbitrary-n
// combinational sorter.  Cost is Theta(n^2) like the brick wall, but the
// period (hardware footprint: one block of <= 2n comparators) is constant --
// a genuinely different cost/latency point for the service to route between.
// Piotrów's actual constructions reach O(log n) iterations with position-
// dependent comparator scales; reproducing those is an open direction noted
// in ROADMAP.md.

#include <memory>

#include "absort/sorters/sorter.hpp"

namespace absort::sorters {

class PeriodicKSorter final : public OpNetworkSorter {
 public:
  /// n >= 1; period must be 3 or 4.
  explicit PeriodicKSorter(std::size_t n, std::size_t period = 3);

  [[nodiscard]] std::string name() const override { return "periodic-k"; }
  [[nodiscard]] std::size_t period() const noexcept { return period_; }
  /// Number of times the block is applied (t above).
  [[nodiscard]] std::size_t iterations() const noexcept { return iterations_; }

  /// One block of the construction -- the periodic structure makes a single
  /// block a complete sortedness probe (see sorter.hpp).
  [[nodiscard]] std::optional<netlist::Circuit> self_check_probe() const override;

  /// Closed forms asserted by the tests.
  [[nodiscard]] static std::size_t expected_iterations(std::size_t n, std::size_t period);
  [[nodiscard]] static std::size_t expected_comparators(std::size_t n, std::size_t period);
  [[nodiscard]] static std::size_t expected_depth(std::size_t n, std::size_t period);

  [[nodiscard]] static std::unique_ptr<BinarySorter> make(std::size_t n) {
    return std::make_unique<PeriodicKSorter>(n);
  }

 private:
  std::size_t period_;
  std::size_t iterations_;
  std::size_t block_ops_;  ///< ops in one block (a prefix of ops_)
};

}  // namespace absort::sorters
