#pragma once
// Internal value-level representation: a "lane" is a wire carrying a tag bit
// plus the identity of the input currently on it.  Value simulators move
// lanes exactly as the netlist's switches move data, which is how route()
// (the data-carrying face) is produced.

#include <cstddef>
#include <vector>

#include "absort/util/bitvec.hpp"

namespace absort::sorters::detail {

struct Lane {
  Bit tag;
  std::size_t id;
};

inline std::vector<Lane> make_lanes(const BitVec& tags) {
  std::vector<Lane> lanes(tags.size());
  for (std::size_t i = 0; i < tags.size(); ++i) lanes[i] = {tags[i], i};
  return lanes;
}

inline std::vector<std::size_t> lane_perm(const std::vector<Lane>& lanes) {
  std::vector<std::size_t> perm(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) perm[i] = lanes[i].id;
  return perm;
}

}  // namespace absort::sorters::detail
