#include "absort/edge/edge_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace absort::edge {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

EdgeClient::~EdgeClient() { close(); }

EdgeClient::EdgeClient(EdgeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      inbuf_(std::move(other.inbuf_)),
      next_id_(other.next_id_.load()) {}

EdgeClient& EdgeClient::operator=(EdgeClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    inbuf_ = std::move(other.inbuf_);
    next_id_.store(other.next_id_.load());
  }
  return *this;
}

void EdgeClient::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("edge client: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(EINVAL, std::generic_category(), "edge client: bad address");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    throw_errno("edge client: connect");
  }
  int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  inbuf_.clear();
}

void EdgeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void EdgeClient::write_all(const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t wrote = ::write(fd_, data + sent, len - sent);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw_errno("edge client: write");
    }
    sent += static_cast<std::size_t>(wrote);
  }
}

void EdgeClient::send(const Request& req) {
  std::vector<std::uint8_t> bytes;
  encode_request(req, bytes);
  std::lock_guard lk(send_m_);
  write_all(bytes.data(), bytes.size());
}

std::uint64_t EdgeClient::send_sort(std::string_view sorter, const BitVec& input,
                                    std::uint32_t deadline_us) {
  Request req;
  req.type = MessageType::Sort;
  req.id = next_id();
  req.deadline_us = deadline_us;
  req.sorter = std::string(sorter);
  req.input = input;
  send(req);
  return req.id;
}

std::uint64_t EdgeClient::send_permute(std::string_view permuter,
                                       const std::vector<std::uint16_t>& dest,
                                       std::uint32_t deadline_us) {
  Request req;
  req.type = MessageType::Permute;
  req.id = next_id();
  req.deadline_us = deadline_us;
  req.sorter = std::string(permuter);
  req.dest = dest;
  send(req);
  return req.id;
}

void EdgeClient::send_raw(const std::vector<std::uint8_t>& bytes) {
  std::lock_guard lk(send_m_);
  write_all(bytes.data(), bytes.size());
}

bool EdgeClient::recv(Response& out) {
  for (;;) {
    const auto res = decode_response(inbuf_, out);
    if (res.error == DecodeError::None) {
      inbuf_.erase(inbuf_.begin(), inbuf_.begin() + static_cast<std::ptrdiff_t>(res.consumed));
      return true;
    }
    if (res.error != DecodeError::NeedMore) {
      throw std::runtime_error(std::string("edge client: malformed response: ") +
                               to_string(res.error));
    }
    std::uint8_t chunk[16384];
    const ssize_t got = ::read(fd_, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR) continue;
      throw_errno("edge client: read");
    }
    if (got == 0) {
      if (!inbuf_.empty()) throw std::runtime_error("edge client: truncated response stream");
      return false;  // orderly EOF
    }
    inbuf_.insert(inbuf_.end(), chunk, chunk + got);
  }
}

Response EdgeClient::sort(std::string_view sorter, const BitVec& input,
                          std::uint32_t deadline_us) {
  const std::uint64_t id = send_sort(sorter, input, deadline_us);
  Response resp;
  if (!recv(resp)) throw std::runtime_error("edge client: connection closed mid-request");
  if (resp.id != id) throw std::runtime_error("edge client: response id mismatch (pipelined use needs recv())");
  return resp;
}

Response EdgeClient::permute(std::string_view permuter, const std::vector<std::uint16_t>& dest,
                             std::uint32_t deadline_us) {
  const std::uint64_t id = send_permute(permuter, dest, deadline_us);
  Response resp;
  if (!recv(resp)) throw std::runtime_error("edge client: connection closed mid-request");
  if (resp.id != id) throw std::runtime_error("edge client: response id mismatch (pipelined use needs recv())");
  return resp;
}

std::string EdgeClient::statsz() {
  Request req;
  req.type = MessageType::Stats;
  req.id = next_id();
  send(req);
  Response resp;
  if (!recv(resp)) throw std::runtime_error("edge client: connection closed mid-request");
  if (resp.type != MessageType::Stats || resp.status != WireStatus::Ok) {
    throw std::runtime_error("edge client: statsz refused");
  }
  return resp.stats_json;
}

}  // namespace absort::edge
