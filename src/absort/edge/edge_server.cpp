#include "absort/edge/edge_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "absort/networks/permuters.hpp"
#include "absort/service/stats_json.hpp"
#include "absort/sorters/registry.hpp"

namespace absort::edge {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

/// Per-connection state.  The read side (inbuf, reading_disabled, epollout)
/// is touched only by the owning reactor thread; the write side (outbuf,
/// out_off, closed, close_after_flush) is shared with the waiters and
/// guarded by `m`.  Only the owning reactor ever write()s the fd, so
/// response bytes never interleave.
struct EdgeServer::Connection {
  int fd = -1;
  std::size_t reactor = 0;

  std::vector<std::uint8_t> inbuf;
  bool reading_disabled = false;  ///< fatal decode error: drain writes, then close
  bool epollout = false;          ///< EPOLLOUT currently armed

  std::mutex m;
  std::vector<std::uint8_t> outbuf;
  std::size_t out_off = 0;
  bool closed = false;
  bool close_after_flush = false;

  std::atomic<std::size_t> inflight{0};
  /// Ids of requests submitted and not yet answered, guarded by `m`.  A
  /// frame reusing a live id is a protocol error (the client could never
  /// match the two responses) and is rejected without touching the service.
  std::unordered_set<std::uint64_t> inflight_ids;
};

struct EdgeServer::Reactor {
  std::size_t index = 0;
  int epfd = -1;
  int wakefd = -1;
  std::thread thread;

  /// Owned connections by fd; reactor thread only.
  std::unordered_map<int, std::shared_ptr<Connection>> conns;

  std::mutex m;  ///< guards fresh + writable
  std::vector<std::shared_ptr<Connection>> fresh;     ///< handed over by the acceptor
  std::vector<std::shared_ptr<Connection>> writable;  ///< have new waiter output
};

EdgeServer::EdgeServer(service::SortService& service, EdgeOptions opts)
    : service_(service), opts_(opts) {
  opts_.reactors = std::max<std::size_t>(1, opts_.reactors);
  opts_.waiters = std::max<std::size_t>(1, opts_.waiters);
  opts_.max_connections = std::max<std::size_t>(1, opts_.max_connections);
  opts_.max_inflight_per_conn = std::max<std::size_t>(1, opts_.max_inflight_per_conn);
}

EdgeServer::EdgeServer(service::SortService& service, service::PermuteService& permute,
                       EdgeOptions opts)
    : EdgeServer(service, opts) {
  permute_ = &permute;
}

EdgeServer::~EdgeServer() { stop(); }

void EdgeServer::start() {
  if (started_) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("edge: socket");
  int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(opts_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, opts_.listen_backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    throw_errno("edge: bind/listen");
  }
  socklen_t len = sizeof addr;
  (void)::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  reactors_.clear();
  for (std::size_t i = 0; i < opts_.reactors; ++i) {
    auto r = std::make_unique<Reactor>();
    r->index = i;
    r->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    r->wakefd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (r->epfd < 0 || r->wakefd < 0) throw_errno("edge: epoll/eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = r->wakefd;
    if (::epoll_ctl(r->epfd, EPOLL_CTL_ADD, r->wakefd, &ev) != 0) throw_errno("edge: epoll_ctl");
    if (i == 0) {
      ev.data.fd = listen_fd_;
      if (::epoll_ctl(r->epfd, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
        throw_errno("edge: epoll_ctl listen");
      }
    }
    reactors_.push_back(std::move(r));
  }
  stopping_.store(false);
  for (auto& r : reactors_) {
    r->thread = std::thread([this, rp = r.get()] { reactor_loop(*rp); });
  }
  waiter_threads_.reserve(opts_.waiters);
  for (std::size_t i = 0; i < opts_.waiters; ++i) {
    waiter_threads_.emplace_back([this] { waiter_loop(); });
  }
  started_ = true;
}

void EdgeServer::stop() {
  if (!started_) return;
  stopping_.store(true);
  for (auto& r : reactors_) wake(*r);
  for (auto& r : reactors_) {
    if (r->thread.joinable()) r->thread.join();
  }
  // Reactors are the only producers, so closing the queue now lets the
  // waiters drain everything still pending (the service answers every
  // accepted future) and exit.
  {
    std::lock_guard lk(cq_m_);
    cq_closed_ = true;
  }
  cq_cv_.notify_all();
  for (auto& t : waiter_threads_) t.join();
  waiter_threads_.clear();
  for (auto& r : reactors_) {
    ::close(r->epfd);
    ::close(r->wakefd);
  }
  reactors_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  started_ = false;
}

void EdgeServer::wake(Reactor& r) {
  const std::uint64_t one = 1;
  (void)!::write(r.wakefd, &one, sizeof one);
}

void EdgeServer::reactor_loop(Reactor& r) {
  epoll_event evs[64];
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int nd = ::epoll_wait(r.epfd, evs, 64, -1);
    if (nd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < nd; ++i) {
      const int fd = evs[i].data.fd;
      if (fd == r.wakefd) {
        std::uint64_t drain = 0;
        (void)!::read(r.wakefd, &drain, sizeof drain);
        continue;
      }
      if (fd == listen_fd_) {
        accept_ready(r);
        continue;
      }
      const auto it = r.conns.find(fd);
      if (it == r.conns.end()) continue;  // closed earlier in this batch
      const auto conn = it->second;
      if (evs[i].events & (EPOLLERR | EPOLLHUP)) {
        close_conn(r, conn);
        continue;
      }
      if (evs[i].events & EPOLLIN) on_readable(r, conn);
      if (evs[i].events & EPOLLOUT) try_flush(r, conn);
    }
    // Adopt freshly accepted connections and flush waiter output.
    std::vector<std::shared_ptr<Connection>> fresh, writable;
    {
      std::lock_guard lk(r.m);
      fresh.swap(r.fresh);
      writable.swap(r.writable);
    }
    for (const auto& c : fresh) adopt(r, c);
    for (const auto& c : writable) try_flush(r, c);
  }
  // Teardown: close every owned connection (waiter output still pending is
  // dropped -- the client sees EOF).
  std::vector<std::shared_ptr<Connection>> all;
  all.reserve(r.conns.size());
  for (const auto& [fd, conn] : r.conns) all.push_back(conn);
  for (const auto& conn : all) close_conn(r, conn);
}

void EdgeServer::accept_ready(Reactor& r) {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (or transient error): wait for the next event
    if (open_conns_.load(std::memory_order_relaxed) >= opts_.max_connections) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    set_nodelay(fd);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_conns_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->reactor = next_reactor_++ % reactors_.size();
    Reactor& target = *reactors_[conn->reactor];
    if (&target == &r) {
      adopt(r, conn);
    } else {
      {
        std::lock_guard lk(target.m);
        target.fresh.push_back(conn);
      }
      wake(target);
    }
  }
}

void EdgeServer::adopt(Reactor& r, const std::shared_ptr<Connection>& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = conn->fd;
  if (::epoll_ctl(r.epfd, EPOLL_CTL_ADD, conn->fd, &ev) != 0) {
    std::lock_guard lk(conn->m);
    conn->closed = true;
    ::close(conn->fd);
    open_conns_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  r.conns.emplace(conn->fd, conn);
}

void EdgeServer::on_readable(Reactor& r, const std::shared_ptr<Connection>& conn) {
  if (conn->reading_disabled) return;
  std::uint8_t chunk[16384];
  for (;;) {
    const ssize_t got = ::read(conn->fd, chunk, sizeof chunk);
    if (got > 0) {
      bytes_in_.fetch_add(static_cast<std::uint64_t>(got), std::memory_order_relaxed);
      conn->inbuf.insert(conn->inbuf.end(), chunk, chunk + got);
      if (got == static_cast<ssize_t>(sizeof chunk)) continue;
      break;
    }
    if (got == 0) {  // orderly peer close
      close_conn(r, conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(r, conn);
    return;
  }

  std::size_t off = 0;
  while (off < conn->inbuf.size()) {
    Request req;
    const auto res = decode_request(std::span(conn->inbuf).subspan(off), req);
    if (res.error == DecodeError::None) {
      off += res.consumed;
      handle_request(r, conn, std::move(req));
      continue;
    }
    if (res.error == DecodeError::NeedMore) break;
    // Malformed frame: answer BadRequest (with whatever id was readable),
    // then close once the response has flushed -- a corrupt length prefix
    // leaves no way to find the next frame boundary.
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    Response err;
    err.type = MessageType::Sort;
    err.id = req.id;
    err.status = WireStatus::BadRequest;
    responses_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard lk(conn->m);
      conn->close_after_flush = true;
    }
    conn->reading_disabled = true;
    enqueue_response(conn, err, /*from_reactor=*/true);
    off = conn->inbuf.size();
    break;
  }
  conn->inbuf.erase(conn->inbuf.begin(),
                    conn->inbuf.begin() + static_cast<std::ptrdiff_t>(off));
}

void EdgeServer::handle_request(Reactor&, const std::shared_ptr<Connection>& conn,
                                Request&& req) {
  if (req.type == MessageType::Stats) {
    Response resp;
    resp.type = MessageType::Stats;
    resp.id = req.id;
    resp.status = WireStatus::Ok;
    resp.stats_json = service::stats_json(stats());
    responses_.fetch_add(1, std::memory_order_relaxed);
    enqueue_response(conn, resp, /*from_reactor=*/true);
    return;
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  const auto respond_now = [&](WireStatus status) {
    Response resp;
    resp.type = req.type;
    resp.id = req.id;
    resp.status = status;
    responses_.fetch_add(1, std::memory_order_relaxed);
    enqueue_response(conn, resp, /*from_reactor=*/true);
  };

  const bool is_permute = req.type == MessageType::Permute;
  if (is_permute) {
    // Permute frames need a PermuteService wired in; without one the edge is
    // a sort-only deployment and the workload name cannot resolve.
    if (permute_ == nullptr || permuters::find_permuter(req.sorter) == nullptr) {
      respond_now(WireStatus::BadRequest);
      return;
    }
  } else if (sorters::find_sorter(req.sorter) == nullptr) {
    respond_now(WireStatus::BadRequest);
    return;
  }
  // A frame reusing an id still in flight on this connection is a protocol
  // error: the client could never match the two responses, so it is rejected
  // before touching the service.  Only this reactor admits ids for this
  // connection, so check-then-insert below cannot race another admit.
  bool duplicate = false;
  {
    std::lock_guard lk(conn->m);
    duplicate = conn->inflight_ids.count(req.id) != 0;
  }
  if (duplicate) {
    duplicate_ids_.fetch_add(1, std::memory_order_relaxed);
    respond_now(WireStatus::BadRequest);
    return;
  }
  // Per-client fairness: a connection at its in-flight cap is shed before
  // the request can crowd the shared queue.
  if (conn->inflight.load(std::memory_order_relaxed) >= opts_.max_inflight_per_conn) {
    shedded_.fetch_add(1, std::memory_order_relaxed);
    respond_now(WireStatus::Shedded);
    return;
  }
  const auto deadline =
      req.deadline_us == 0
          ? service::SortService::Clock::time_point::max()
          : service::SortService::Clock::now() + std::chrono::microseconds(req.deadline_us);
  Pending pending;
  pending.conn = conn;
  pending.id = req.id;
  pending.type = req.type;
  try {
    if (is_permute) {
      std::vector<std::uint32_t> dest(req.dest.begin(), req.dest.end());
      pending.permute_future = permute_->submit(req.sorter, std::move(dest), deadline);
    } else {
      pending.sort_future = service_.submit(req.sorter, std::move(req.input), deadline);
    }
  } catch (...) {
    respond_now(WireStatus::BadRequest);
    return;
  }
  conn->inflight.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lk(conn->m);
    conn->inflight_ids.insert(req.id);
  }
  {
    std::lock_guard lk(cq_m_);
    cq_.push_back(std::move(pending));
  }
  cq_cv_.notify_one();
}

void EdgeServer::waiter_loop() {
  for (;;) {
    Pending p;
    {
      std::unique_lock lk(cq_m_);
      cq_cv_.wait(lk, [&] { return cq_closed_ || !cq_.empty(); });
      if (cq_.empty()) return;  // closed and drained
      p = std::move(cq_.front());
      cq_.pop_front();
    }
    Response resp;
    resp.type = p.type;
    resp.id = p.id;
    try {
      if (p.type == MessageType::Permute) {
        auto result = p.permute_future.get();
        resp.status = to_wire_status(result.status);
        if (result.status == service::Status::Ok) {
          resp.output_source.resize(result.output_source.size());
          for (std::size_t i = 0; i < result.output_source.size(); ++i) {
            resp.output_source[i] = static_cast<std::uint16_t>(result.output_source[i]);
          }
        }
      } else {
        auto result = p.sort_future.get();
        resp.status = to_wire_status(result.status);
        if (result.status == service::Status::Ok) resp.output = std::move(result.output);
      }
    } catch (...) {
      // Factory failure for this (sorter, n): a configuration error, not an
      // overload condition.
      resp.status = WireStatus::BadRequest;
    }
    if (resp.status == WireStatus::Shedded) shedded_.fetch_add(1, std::memory_order_relaxed);
    p.conn->inflight.fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard lk(p.conn->m);
      p.conn->inflight_ids.erase(p.id);
    }
    responses_.fetch_add(1, std::memory_order_relaxed);
    enqueue_response(p.conn, resp, /*from_reactor=*/false);
  }
}

void EdgeServer::enqueue_response(const std::shared_ptr<Connection>& conn, const Response& resp,
                                  bool from_reactor) {
  Reactor& r = *reactors_[conn->reactor];
  {
    std::lock_guard lk(conn->m);
    if (conn->closed) return;
    encode_response(resp, conn->outbuf);
  }
  if (from_reactor) {
    try_flush(r, conn);
  } else {
    {
      std::lock_guard lk(r.m);
      r.writable.push_back(conn);
    }
    wake(r);
  }
}

void EdgeServer::try_flush(Reactor& r, const std::shared_ptr<Connection>& conn) {
  bool close_now = false;
  {
    std::unique_lock lk(conn->m);
    if (conn->closed) return;
    while (conn->out_off < conn->outbuf.size()) {
      const ssize_t wrote = ::write(conn->fd, conn->outbuf.data() + conn->out_off,
                                    conn->outbuf.size() - conn->out_off);
      if (wrote > 0) {
        conn->out_off += static_cast<std::size_t>(wrote);
        bytes_out_.fetch_add(static_cast<std::uint64_t>(wrote), std::memory_order_relaxed);
        continue;
      }
      if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn->epollout) {
          epoll_event ev{};
          ev.events = EPOLLIN | EPOLLOUT;
          ev.data.fd = conn->fd;
          (void)::epoll_ctl(r.epfd, EPOLL_CTL_MOD, conn->fd, &ev);
          conn->epollout = true;
        }
        return;
      }
      close_now = true;  // write error: peer is gone
      break;
    }
    if (!close_now) {
      conn->outbuf.clear();
      conn->out_off = 0;
      if (conn->epollout) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = conn->fd;
        (void)::epoll_ctl(r.epfd, EPOLL_CTL_MOD, conn->fd, &ev);
        conn->epollout = false;
      }
      close_now = conn->close_after_flush;
    }
  }
  if (close_now) close_conn(r, conn);
}

void EdgeServer::close_conn(Reactor& r, const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard lk(conn->m);
    if (conn->closed) return;
    conn->closed = true;
  }
  (void)::epoll_ctl(r.epfd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  r.conns.erase(conn->fd);
  open_conns_.fetch_sub(1, std::memory_order_relaxed);
}

namespace {

void merge_histogram(service::HistogramSnapshot& into, const service::HistogramSnapshot& from) {
  for (std::size_t b = 0; b < service::kHistBuckets; ++b) into.counts[b] += from.counts[b];
  into.total += from.total;
  into.sum += from.sum;
}

}  // namespace

service::ServiceStats EdgeServer::stats() const {
  auto s = service_.stats();
  if (permute_ != nullptr) {
    // Combined view across both workloads: counters sum, per-shard slices
    // and engine lines concatenate (sort shards first), histograms merge
    // bucket-wise.  The jit_* fields are deltas of *process-wide* counters,
    // so the sort service's view already covers permute-triggered JIT
    // activity -- adding the permute deltas would double-count.
    const auto p = permute_->stats();
    s.submitted += p.submitted;
    s.completed += p.completed;
    s.rejected += p.rejected;
    s.expired += p.expired;
    s.stopped += p.stopped;
    s.failed += p.failed;
    s.unroutable += p.unroutable;
    s.batches += p.batches;
    s.compiled += p.compiled;
    s.steals += p.steals;
    s.stolen_requests += p.stolen_requests;
    s.degraded += p.degraded;
    s.self_check_failed += p.self_check_failed;
    // cheap_checks is sort-side only (PermuteService has no probe tier)
    s.per_shard.insert(s.per_shard.end(), p.per_shard.begin(), p.per_shard.end());
    s.engines.insert(s.engines.end(), p.engines.begin(), p.engines.end());
    merge_histogram(s.batch_size, p.batch_size);
    merge_histogram(s.queue_wait_us, p.queue_wait_us);
    merge_histogram(s.eval_us, p.eval_us);
  }
  s.shedded = shedded_.load(std::memory_order_relaxed);
  s.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  s.duplicate_ids = duplicate_ids_.load(std::memory_order_relaxed);
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_dropped = dropped_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return s;
}

EdgeCounters EdgeServer::counters() const {
  EdgeCounters c;
  c.connections_accepted = accepted_.load(std::memory_order_relaxed);
  c.connections_dropped = dropped_.load(std::memory_order_relaxed);
  c.shedded = shedded_.load(std::memory_order_relaxed);
  c.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  c.duplicate_ids = duplicate_ids_.load(std::memory_order_relaxed);
  c.requests = requests_.load(std::memory_order_relaxed);
  c.responses = responses_.load(std::memory_order_relaxed);
  c.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  c.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace absort::edge
