#pragma once
// Wire framing for the TCP serving edge: a length-prefixed binary protocol
// carrying sort requests/responses and statsz telemetry pulls.
//
// Every frame is  [u32 length (LE)] [payload of `length` bytes] ; `length`
// never exceeds kMaxFrameBytes, so a reader can reject a hostile length
// before buffering it.  Payload layouts (all integers little-endian):
//
//   request payload                      response payload
//   ----------------------------------   ----------------------------------
//   u16  magic   (kMagic)                u16  magic   (kMagic)
//   u8   version (kVersion)              u8   version (kVersion)
//   u8   type    (Sort|Stats|Permute)    u8   type    (echoes the request)
//   u64  id      (echoed in response)    u64  id      (echoed)
//   u32  deadline_us (0 = none)          u8   status  (WireStatus)
//   -- Sort only ----------------------  -- Sort + Ok only -----------------
//   u8   name_len (1..kMaxSorterName)    u32  n
//   ..   sorter name bytes               ..   packed bits, ceil(n/8) bytes
//   u32  n (1..kMaxN)                    -- Permute + Ok only ---------------
//   ..   packed bits, ceil(n/8) bytes    u32  n
//   -- Permute only -------------------  ..   n x u16 output_source (a
//   u8   name_len (1..kMaxSorterName)         permutation; output j receives
//   ..   permuter name bytes                  input output_source[j])
//   u32  n (1..kMaxN)                    -- Stats + Ok only ----------------
//   ..   n x u16 dest (a permutation)    ..   ServiceStats JSON bytes
//
// Packed bits: element i of the sequence is bit (i & 7) of payload byte
// (i >> 3), LSB first; pad bits in the final byte must be zero.  Permutation
// sequences are u16 little-endian entries; every entry must be < n and
// appear exactly once (BadPermutation otherwise) -- the decoder never hands
// the service a `dest` it would have to re-validate.
//
// decode_request / decode_response never throw on wire bytes: every
// malformed input yields a typed DecodeError, every read is bounds-checked,
// and an incomplete buffer is the non-error NeedMore (read more and retry).
// Versioning rule: magic identifies the protocol, version the layout; a
// decoder rejects versions it does not know (BadVersion) instead of
// guessing, and unknown type bytes are BadType.  *Additive* message kinds
// keep the version (Permute was added this way): an old peer answers a new
// kind with BadType, which a client reads as "not supported here"; only a
// layout change to an existing message requires a version bump.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "absort/service/sort_service.hpp"
#include "absort/util/bitvec.hpp"

namespace absort::edge {

inline constexpr std::uint16_t kMagic = 0xAB5E;   ///< "absort edge"
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kMaxSorterName = 64;
inline constexpr std::size_t kMaxN = 1u << 16;    ///< largest sortable request
/// Hard cap on one frame's payload: the largest legal request (max-length
/// name + kMaxN packed bits) rounded up generously; statsz JSON responses
/// stay far below it.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

enum class MessageType : std::uint8_t {
  Sort = 1,     ///< sort one packed bit sequence
  Stats = 2,    ///< pull the ServiceStats JSON snapshot
  Permute = 3,  ///< route one destination permutation (additive since v1)
};

/// Terminal status of one request, on the wire.
enum class WireStatus : std::uint8_t {
  Ok = 0,
  Shedded = 1,     ///< load-shed: admission control or queue overflow
  Expired = 2,     ///< deadline passed before evaluation
  Failed = 3,      ///< every degradation rung failed server-side
  BadRequest = 4,  ///< malformed frame or unknown sorter / bad n
  Stopped = 5,     ///< server shutting down
  Unroutable = 6,  ///< well-formed pattern the permuter fabric blocks on
};

[[nodiscard]] const char* to_string(WireStatus s);

/// Service-side terminal status -> wire status.
[[nodiscard]] WireStatus to_wire_status(service::Status s);

/// Typed outcome of a decode attempt.  NeedMore is the only non-terminal
/// value: the buffer holds a prefix of a valid frame.  Everything else means
/// the stream is unrecoverable at this point (length-prefixed framing cannot
/// resync after a corrupt header) and the connection should be dropped after
/// an optional BadRequest response.
enum class DecodeError : std::uint8_t {
  None = 0,      ///< one frame decoded; `consumed` bytes were used
  NeedMore,      ///< incomplete frame; read more bytes and retry
  BadMagic,      ///< payload does not start with kMagic
  BadVersion,    ///< version byte != kVersion
  BadType,       ///< unknown MessageType / WireStatus byte
  Oversized,       ///< declared length exceeds kMaxFrameBytes (or n > kMaxN)
  BadLength,       ///< declared length contradicts the payload structure
  BadName,         ///< sorter name length 0 or > kMaxSorterName
  BadPayload,      ///< nonzero pad bits in the packed payload
  EmptyPayload,    ///< n == 0: a frame with nothing to work on
  BadPermutation,  ///< permutation entry out of range or duplicated
};

[[nodiscard]] const char* to_string(DecodeError e);

struct Request {
  MessageType type = MessageType::Sort;
  std::uint64_t id = 0;           ///< client-chosen, echoed in the response
  std::uint32_t deadline_us = 0;  ///< relative deadline budget; 0 = none
  std::string sorter;             ///< workload name: the sorter (Sort) or permuter (Permute)
  BitVec input;                   ///< Sort only
  std::vector<std::uint16_t> dest;  ///< Permute only; a permutation of 0..n-1
};

struct Response {
  MessageType type = MessageType::Sort;
  std::uint64_t id = 0;
  WireStatus status = WireStatus::Ok;
  BitVec output;           ///< Sort + Ok only
  std::vector<std::uint16_t> output_source;  ///< Permute + Ok only
  std::string stats_json;  ///< Stats + Ok only
};

struct DecodeResult {
  DecodeError error = DecodeError::None;
  std::size_t consumed = 0;  ///< bytes to drop from the buffer (None only)

  [[nodiscard]] bool ok() const noexcept { return error == DecodeError::None; }
};

/// Appends one framed request/response to `out` (never fails; inputs are
/// produced by this process, so size limits are asserted, not errored).
void encode_request(const Request& r, std::vector<std::uint8_t>& out);
void encode_response(const Response& r, std::vector<std::uint8_t>& out);

/// Decodes the first frame of `buf` into `out`.  On None, `consumed` bytes
/// of `buf` were used and `out` is fully populated; on NeedMore nothing was
/// consumed; on any error `out` is unspecified (its `id` holds whatever was
/// readable, for error responses) and the stream should be abandoned.
[[nodiscard]] DecodeResult decode_request(std::span<const std::uint8_t> buf, Request& out);
[[nodiscard]] DecodeResult decode_response(std::span<const std::uint8_t> buf, Response& out);

/// Packed-bit helpers (exposed for tests).
void pack_bits(const BitVec& v, std::vector<std::uint8_t>& out);  ///< appends ceil(n/8) bytes
[[nodiscard]] bool unpack_bits(std::span<const std::uint8_t> bytes, std::size_t n,
                               BitVec& out);  ///< false on nonzero pad bits

}  // namespace absort::edge
