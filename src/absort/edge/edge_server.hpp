#pragma once
// EdgeServer: the network serving edge -- an epoll-based TCP front end over
// SortService (and, optionally, PermuteService for Permute frames) speaking
// the length-prefixed binary protocol of frame.hpp.
//
// Architecture (all counts configurable via EdgeOptions):
//
//   * one or more *reactor* threads, each running its own epoll loop over
//     non-blocking sockets; reactor 0 also owns the listening socket and
//     hands accepted connections round-robin to the others;
//   * a per-connection state machine: a read buffer that frames are decoded
//     out of (strictly bounds-checked; any malformed frame answers
//     BadRequest, counts a decode error, and closes the connection after the
//     flush -- length-prefixed framing cannot resync past a corrupt header),
//     and a write buffer flushed by the owning reactor alone, so response
//     bytes never interleave;
//   * a pool of *waiter* threads that block on the SortService futures and
//     hand the encoded responses back to the owning reactor through an
//     eventfd wakeup.  Responses carry the request's id, so they may
//     complete out of order and clients match them by id.
//
// Admission control rides the service's own Block/Reject queue semantics:
//   * with Overflow::Reject, a full submission queue answers QueueFull,
//     which the edge maps to an explicit `Shedded` response -- overload
//     turns into load shedding, never unbounded buffering;
//   * with Overflow::Block, a full queue blocks the submitting reactor,
//     which stops reading -- backpressure propagates to clients through TCP
//     itself (pick Reject for SLO serving, Block for batch feeds);
//   * a per-connection in-flight cap sheds the greediest clients first
//     (fairness): a connection at its cap gets Shedded without the request
//     ever touching the shared queue;
//   * a connection cap: accepts beyond it are dropped immediately.
//
// A Stats frame answers with the live ServiceStats JSON (service counters +
// histograms plus the edge's accepted/dropped/shedded/decode-error/bytes
// counters) -- the wire form of `absort_cli serve --stats`, rendered by the
// same service/stats_json helper.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "absort/edge/frame.hpp"
#include "absort/service/permute_service.hpp"
#include "absort/service/sort_service.hpp"

namespace absort::edge {

struct EdgeOptions {
  /// TCP port to listen on; 0 asks the kernel for a free port (see port()).
  std::uint16_t port = 0;

  /// Epoll event loops (clamped to >= 1).  One reactor saturates the
  /// single-dispatcher service; more help when decode/encode dominates.
  std::size_t reactors = 1;

  /// Threads blocking on SortService futures (clamped to >= 1).  Each waiter
  /// delays at most one micro-batch's completion, so a few suffice.
  std::size_t waiters = 4;

  /// Connection cap: accepts beyond it are closed immediately
  /// (connections_dropped).
  std::size_t max_connections = 64;

  /// Per-connection in-flight request cap: requests beyond it are answered
  /// Shedded without touching the shared queue (per-client fairness).
  std::size_t max_inflight_per_conn = 64;

  int listen_backlog = 128;
};

/// Monotonic edge-side counters (see ServiceStats for the combined view).
struct EdgeCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_dropped = 0;
  std::uint64_t shedded = 0;        ///< Shedded responses (in-flight cap + QueueFull)
  std::uint64_t decode_errors = 0;  ///< malformed frames (connection closed)
  std::uint64_t duplicate_ids = 0;  ///< frames reusing an id still in flight on the connection
  std::uint64_t requests = 0;       ///< well-formed Sort/Permute frames received
  std::uint64_t responses = 0;      ///< responses enqueued (any status)
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class EdgeServer {
 public:
  /// The service must outlive the server (construct service first, server
  /// second; destruction order then stops the edge before the service).
  /// Without a PermuteService, Permute frames answer BadRequest.
  explicit EdgeServer(service::SortService& service, EdgeOptions opts = {});
  EdgeServer(service::SortService& service, service::PermuteService& permute,
             EdgeOptions opts = {});
  ~EdgeServer();  ///< stop()

  EdgeServer(const EdgeServer&) = delete;
  EdgeServer& operator=(const EdgeServer&) = delete;

  /// Binds, listens, and spawns the reactor + waiter threads.  Throws
  /// std::system_error when the socket cannot be set up.
  void start();

  /// Closes the listener and every connection, drains the waiters, joins all
  /// threads.  Idempotent.
  void stop();

  /// The bound port (useful with EdgeOptions::port = 0).  Valid after
  /// start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] bool running() const noexcept { return started_ && !stopping_.load(); }

  /// Service snapshot with the edge counters filled in -- what a Stats frame
  /// returns as JSON.
  [[nodiscard]] service::ServiceStats stats() const;

  [[nodiscard]] EdgeCounters counters() const;

  [[nodiscard]] const EdgeOptions& options() const noexcept { return opts_; }

 private:
  struct Connection;
  struct Reactor;

  /// One submitted request whose future a waiter resolves into a response.
  /// `type` selects which future is live (Sort or Permute).
  struct Pending {
    std::shared_ptr<Connection> conn;
    std::uint64_t id = 0;
    MessageType type = MessageType::Sort;
    std::future<service::SortResult> sort_future;
    std::future<service::PermuteResult> permute_future;
  };

  void reactor_loop(Reactor& r);
  void waiter_loop();
  void accept_ready(Reactor& r);
  void adopt(Reactor& r, const std::shared_ptr<Connection>& conn);
  void on_readable(Reactor& r, const std::shared_ptr<Connection>& conn);
  void handle_request(Reactor& r, const std::shared_ptr<Connection>& conn, Request&& req);
  /// Encodes and queues `resp` on `conn`; `from_reactor` flushes inline,
  /// waiters instead wake the owning reactor through its eventfd.
  void enqueue_response(const std::shared_ptr<Connection>& conn, const Response& resp,
                        bool from_reactor);
  void try_flush(Reactor& r, const std::shared_ptr<Connection>& conn);
  void close_conn(Reactor& r, const std::shared_ptr<Connection>& conn);
  void wake(Reactor& r);

  service::SortService& service_;
  service::PermuteService* permute_ = nullptr;  ///< optional second workload
  EdgeOptions opts_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};

  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::size_t next_reactor_ = 0;  ///< round-robin accept assignment (reactor 0 only)
  std::atomic<std::size_t> open_conns_{0};

  // Completion queue: reactors push, waiters pop.
  std::mutex cq_m_;
  std::condition_variable cq_cv_;
  std::deque<Pending> cq_;
  bool cq_closed_ = false;
  std::vector<std::thread> waiter_threads_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> shedded_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
  std::atomic<std::uint64_t> duplicate_ids_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
};

}  // namespace absort::edge
