#include "absort/edge/frame.hpp"

#include <cassert>
#include <cstring>

namespace absort::edge {

namespace {

// -- little-endian scalar IO over a bounds-checked cursor --------------------

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/// Reads little-endian scalars off a span, refusing to run past the end.
struct Cursor {
  std::span<const std::uint8_t> buf;
  std::size_t pos = 0;

  [[nodiscard]] std::size_t left() const noexcept { return buf.size() - pos; }

  bool u8(std::uint8_t& v) noexcept {
    if (left() < 1) return false;
    v = buf[pos++];
    return true;
  }
  bool u16(std::uint16_t& v) noexcept {
    if (left() < 2) return false;
    v = static_cast<std::uint16_t>(buf[pos] | (buf[pos + 1] << 8));
    pos += 2;
    return true;
  }
  bool u32(std::uint32_t& v) noexcept {
    if (left() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[pos + static_cast<std::size_t>(i)]) << (8 * i);
    pos += 4;
    return true;
  }
  bool u64(std::uint64_t& v) noexcept {
    if (left() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[pos + static_cast<std::size_t>(i)]) << (8 * i);
    pos += 8;
    return true;
  }
  bool bytes(std::size_t len, std::span<const std::uint8_t>& v) noexcept {
    if (left() < len) return false;
    v = buf.subspan(pos, len);
    pos += len;
    return true;
  }
};

std::size_t packed_bytes(std::size_t n) noexcept { return (n + 7) / 8; }

/// Frames the payload bytes appended by `fill`: reserves the u32 length
/// slot, runs `fill`, then patches the length in.
template <typename Fill>
void frame(std::vector<std::uint8_t>& out, Fill&& fill) {
  const std::size_t length_at = out.size();
  put_u32(out, 0);
  const std::size_t payload_at = out.size();
  fill();
  const std::size_t len = out.size() - payload_at;
  assert(len <= kMaxFrameBytes);
  for (int i = 0; i < 4; ++i) {
    out[length_at + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(len >> (8 * i));
  }
}

/// Shared prologue of both frame kinds: length prefix + magic/version/type +
/// id.  Returns None with the cursor parked after `id`, or the typed error.
DecodeError decode_prologue(std::span<const std::uint8_t> buf, Cursor& c, std::uint8_t& type,
                            std::uint64_t& id, std::size_t& frame_end) {
  Cursor len_c{buf};
  std::uint32_t len = 0;
  if (!len_c.u32(len)) return DecodeError::NeedMore;
  if (len > kMaxFrameBytes) return DecodeError::Oversized;
  if (len_c.left() < len) return DecodeError::NeedMore;
  // From here on the whole frame is buffered: any short read inside it is a
  // structural contradiction (BadLength), not NeedMore.
  c = Cursor{buf.subspan(len_c.pos, len)};
  frame_end = len_c.pos + len;

  std::uint16_t magic = 0;
  std::uint8_t version = 0;
  if (!c.u16(magic)) return DecodeError::BadLength;
  if (magic != kMagic) return DecodeError::BadMagic;
  if (!c.u8(version)) return DecodeError::BadLength;
  if (version != kVersion) return DecodeError::BadVersion;
  if (!c.u8(type)) return DecodeError::BadLength;
  if (!c.u64(id)) return DecodeError::BadLength;
  return DecodeError::None;
}

DecodeError decode_sort_body(Cursor& c, std::string& sorter, BitVec& input) {
  std::uint8_t name_len = 0;
  if (!c.u8(name_len)) return DecodeError::BadLength;
  if (name_len == 0 || name_len > kMaxSorterName) return DecodeError::BadName;
  std::span<const std::uint8_t> name;
  if (!c.bytes(name_len, name)) return DecodeError::BadLength;
  sorter.assign(reinterpret_cast<const char*>(name.data()), name.size());

  std::uint32_t n = 0;
  if (!c.u32(n)) return DecodeError::BadLength;
  if (n == 0) return DecodeError::EmptyPayload;
  if (n > kMaxN) return DecodeError::Oversized;
  std::span<const std::uint8_t> packed;
  if (!c.bytes(packed_bytes(n), packed)) return DecodeError::BadLength;
  if (!unpack_bits(packed, n, input)) return DecodeError::BadPayload;
  return DecodeError::None;
}

/// Reads [u32 n][n x u16] and validates it is a permutation of 0..n-1, so no
/// consumer ever sees a `dest`/`output_source` with holes or repeats.
DecodeError read_permutation(Cursor& c, std::vector<std::uint16_t>& perm) {
  std::uint32_t n = 0;
  if (!c.u32(n)) return DecodeError::BadLength;
  if (n == 0) return DecodeError::EmptyPayload;
  if (n > kMaxN) return DecodeError::Oversized;
  std::span<const std::uint8_t> raw;
  if (!c.bytes(2 * static_cast<std::size_t>(n), raw)) return DecodeError::BadLength;
  perm.resize(n);
  std::vector<bool> seen(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint16_t v = static_cast<std::uint16_t>(raw[2 * i] | (raw[2 * i + 1] << 8));
    if (v >= n || seen[v]) return DecodeError::BadPermutation;
    seen[v] = true;
    perm[i] = v;
  }
  return DecodeError::None;
}

DecodeError decode_permute_body(Cursor& c, std::string& permuter,
                                std::vector<std::uint16_t>& dest) {
  std::uint8_t name_len = 0;
  if (!c.u8(name_len)) return DecodeError::BadLength;
  if (name_len == 0 || name_len > kMaxSorterName) return DecodeError::BadName;
  std::span<const std::uint8_t> name;
  if (!c.bytes(name_len, name)) return DecodeError::BadLength;
  permuter.assign(reinterpret_cast<const char*>(name.data()), name.size());
  return read_permutation(c, dest);
}

void put_permutation(std::vector<std::uint8_t>& out, const std::vector<std::uint16_t>& perm) {
  put_u32(out, static_cast<std::uint32_t>(perm.size()));
  for (const std::uint16_t v : perm) put_u16(out, v);
}

}  // namespace

const char* to_string(WireStatus s) {
  switch (s) {
    case WireStatus::Ok: return "ok";
    case WireStatus::Shedded: return "shedded";
    case WireStatus::Expired: return "expired";
    case WireStatus::Failed: return "failed";
    case WireStatus::BadRequest: return "bad-request";
    case WireStatus::Stopped: return "stopped";
    case WireStatus::Unroutable: return "unroutable";
  }
  return "?";
}

WireStatus to_wire_status(service::Status s) {
  switch (s) {
    case service::Status::Ok: return WireStatus::Ok;
    case service::Status::QueueFull: return WireStatus::Shedded;
    case service::Status::Expired: return WireStatus::Expired;
    case service::Status::Stopped: return WireStatus::Stopped;
    case service::Status::Failed: return WireStatus::Failed;
    case service::Status::Unroutable: return WireStatus::Unroutable;
  }
  return WireStatus::Failed;
}

const char* to_string(DecodeError e) {
  switch (e) {
    case DecodeError::None: return "none";
    case DecodeError::NeedMore: return "need-more";
    case DecodeError::BadMagic: return "bad-magic";
    case DecodeError::BadVersion: return "bad-version";
    case DecodeError::BadType: return "bad-type";
    case DecodeError::Oversized: return "oversized";
    case DecodeError::BadLength: return "bad-length";
    case DecodeError::BadName: return "bad-name";
    case DecodeError::BadPayload: return "bad-payload";
    case DecodeError::EmptyPayload: return "empty-payload";
    case DecodeError::BadPermutation: return "bad-permutation";
  }
  return "?";
}

void pack_bits(const BitVec& v, std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  out.resize(start + packed_bytes(v.size()), 0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[start + (i >> 3)] |= static_cast<std::uint8_t>((v[i] & 1) << (i & 7));
  }
}

bool unpack_bits(std::span<const std::uint8_t> bytes, std::size_t n, BitVec& out) {
  assert(bytes.size() == packed_bytes(n));
  out = BitVec(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = (bytes[i >> 3] >> (i & 7)) & 1;
  // Pad bits must be zero so every sequence has exactly one encoding.
  if (n % 8 != 0) {
    const std::uint8_t pad = static_cast<std::uint8_t>(bytes[n >> 3] >> (n & 7));
    if (pad != 0) return false;
  }
  return true;
}

void encode_request(const Request& r, std::vector<std::uint8_t>& out) {
  assert(r.type != MessageType::Sort ||
         (!r.sorter.empty() && r.sorter.size() <= kMaxSorterName && !r.input.empty() &&
          r.input.size() <= kMaxN));
  assert(r.type != MessageType::Permute ||
         (!r.sorter.empty() && r.sorter.size() <= kMaxSorterName && !r.dest.empty() &&
          r.dest.size() <= kMaxN));
  frame(out, [&] {
    put_u16(out, kMagic);
    out.push_back(kVersion);
    out.push_back(static_cast<std::uint8_t>(r.type));
    put_u64(out, r.id);
    put_u32(out, r.deadline_us);
    if (r.type == MessageType::Sort) {
      out.push_back(static_cast<std::uint8_t>(r.sorter.size()));
      out.insert(out.end(), r.sorter.begin(), r.sorter.end());
      put_u32(out, static_cast<std::uint32_t>(r.input.size()));
      pack_bits(r.input, out);
    } else if (r.type == MessageType::Permute) {
      out.push_back(static_cast<std::uint8_t>(r.sorter.size()));
      out.insert(out.end(), r.sorter.begin(), r.sorter.end());
      put_permutation(out, r.dest);
    }
  });
}

void encode_response(const Response& r, std::vector<std::uint8_t>& out) {
  assert(r.type != MessageType::Sort || r.status != WireStatus::Ok || r.output.size() <= kMaxN);
  assert(r.type != MessageType::Permute || r.status != WireStatus::Ok ||
         (!r.output_source.empty() && r.output_source.size() <= kMaxN));
  frame(out, [&] {
    put_u16(out, kMagic);
    out.push_back(kVersion);
    out.push_back(static_cast<std::uint8_t>(r.type));
    put_u64(out, r.id);
    out.push_back(static_cast<std::uint8_t>(r.status));
    if (r.status == WireStatus::Ok) {
      if (r.type == MessageType::Sort) {
        put_u32(out, static_cast<std::uint32_t>(r.output.size()));
        pack_bits(r.output, out);
      } else if (r.type == MessageType::Permute) {
        put_permutation(out, r.output_source);
      } else {
        out.insert(out.end(), r.stats_json.begin(), r.stats_json.end());
      }
    }
  });
}

DecodeResult decode_request(std::span<const std::uint8_t> buf, Request& out) {
  Cursor c;
  std::uint8_t type = 0;
  std::size_t frame_end = 0;
  out = Request{};
  if (const auto e = decode_prologue(buf, c, type, out.id, frame_end); e != DecodeError::None) {
    return {e, 0};
  }
  if (type != static_cast<std::uint8_t>(MessageType::Sort) &&
      type != static_cast<std::uint8_t>(MessageType::Stats) &&
      type != static_cast<std::uint8_t>(MessageType::Permute)) {
    return {DecodeError::BadType, 0};
  }
  out.type = static_cast<MessageType>(type);
  if (!c.u32(out.deadline_us)) return {DecodeError::BadLength, 0};
  if (out.type == MessageType::Sort) {
    if (const auto e = decode_sort_body(c, out.sorter, out.input); e != DecodeError::None) {
      return {e, 0};
    }
  } else if (out.type == MessageType::Permute) {
    if (const auto e = decode_permute_body(c, out.sorter, out.dest); e != DecodeError::None) {
      return {e, 0};
    }
  }
  if (c.left() != 0) return {DecodeError::BadLength, 0};  // trailing junk
  return {DecodeError::None, frame_end};
}

DecodeResult decode_response(std::span<const std::uint8_t> buf, Response& out) {
  Cursor c;
  std::uint8_t type = 0;
  std::size_t frame_end = 0;
  out = Response{};
  if (const auto e = decode_prologue(buf, c, type, out.id, frame_end); e != DecodeError::None) {
    return {e, 0};
  }
  if (type != static_cast<std::uint8_t>(MessageType::Sort) &&
      type != static_cast<std::uint8_t>(MessageType::Stats) &&
      type != static_cast<std::uint8_t>(MessageType::Permute)) {
    return {DecodeError::BadType, 0};
  }
  out.type = static_cast<MessageType>(type);
  std::uint8_t status = 0;
  if (!c.u8(status)) return {DecodeError::BadLength, 0};
  if (status > static_cast<std::uint8_t>(WireStatus::Unroutable)) return {DecodeError::BadType, 0};
  out.status = static_cast<WireStatus>(status);
  if (out.status == WireStatus::Ok) {
    if (out.type == MessageType::Sort) {
      std::uint32_t n = 0;
      if (!c.u32(n)) return {DecodeError::BadLength, 0};
      if (n == 0) return {DecodeError::EmptyPayload, 0};
      if (n > kMaxN) return {DecodeError::Oversized, 0};
      std::span<const std::uint8_t> packed;
      if (!c.bytes(packed_bytes(n), packed)) return {DecodeError::BadLength, 0};
      if (!unpack_bits(packed, n, out.output)) return {DecodeError::BadPayload, 0};
    } else if (out.type == MessageType::Permute) {
      if (const auto e = read_permutation(c, out.output_source); e != DecodeError::None) {
        return {e, 0};
      }
    } else {
      std::span<const std::uint8_t> json;
      (void)c.bytes(c.left(), json);
      out.stats_json.assign(reinterpret_cast<const char*>(json.data()), json.size());
    }
  }
  if (c.left() != 0) return {DecodeError::BadLength, 0};
  return {DecodeError::None, frame_end};
}

}  // namespace absort::edge
