#pragma once
// EdgeClient: a small blocking client for the edge protocol, used by the
// load generator (bench_edge), the CLI selftest, and tests.
//
// Two usage styles:
//   * synchronous: sort() / statsz() -- one request, wait for its response
//     (single-threaded use);
//   * pipelined: send() from one thread while a second thread recv()s --
//     sockets are full-duplex, and the protocol's per-request ids let
//     responses complete out of order, so an open-loop generator can keep
//     hundreds of requests in flight on one connection.
//
// The client trusts the server, so protocol violations throw
// std::runtime_error instead of returning typed errors (the hardened decode
// path is the server's; see frame.hpp).

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "absort/edge/frame.hpp"
#include "absort/util/bitvec.hpp"

namespace absort::edge {

class EdgeClient {
 public:
  EdgeClient() = default;
  ~EdgeClient();

  EdgeClient(const EdgeClient&) = delete;
  EdgeClient& operator=(const EdgeClient&) = delete;
  EdgeClient(EdgeClient&& other) noexcept;
  EdgeClient& operator=(EdgeClient&& other) noexcept;

  /// Connects to a numeric IPv4 address (e.g. "127.0.0.1").  Throws
  /// std::system_error on failure.
  void connect(const std::string& host, std::uint16_t port);
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Sends one framed request (thread-safe against concurrent senders; a
  /// frame is always written contiguously).  Throws on a broken connection.
  void send(const Request& req);

  /// Convenience: builds and sends a Sort request with a fresh id (returned).
  std::uint64_t send_sort(std::string_view sorter, const BitVec& input,
                          std::uint32_t deadline_us = 0);

  /// Convenience: builds and sends a Permute request with a fresh id
  /// (returned).  `dest` must be a permutation of 0..n-1.
  std::uint64_t send_permute(std::string_view permuter,
                             const std::vector<std::uint16_t>& dest,
                             std::uint32_t deadline_us = 0);

  /// Blocks for the next response (receiver-thread only).  Returns false on
  /// orderly server EOF; throws std::runtime_error on a torn or malformed
  /// stream.
  [[nodiscard]] bool recv(Response& out);

  /// Synchronous round trips (single-threaded use only).
  [[nodiscard]] Response sort(std::string_view sorter, const BitVec& input,
                              std::uint32_t deadline_us = 0);
  [[nodiscard]] Response permute(std::string_view permuter,
                                 const std::vector<std::uint16_t>& dest,
                                 std::uint32_t deadline_us = 0);
  [[nodiscard]] std::string statsz();

  /// Sends raw bytes as-is -- for tests that need to speak garbage.
  void send_raw(const std::vector<std::uint8_t>& bytes);

 private:
  std::uint64_t next_id() noexcept { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  void write_all(const std::uint8_t* data, std::size_t len);

  int fd_ = -1;
  std::vector<std::uint8_t> inbuf_;  ///< receiver-thread only
  std::atomic<std::uint64_t> next_id_{1};
  std::mutex send_m_;
};

}  // namespace absort::edge
