#include "absort/util/rng.hpp"

#include <algorithm>
#include <stdexcept>

#include "absort/util/math.hpp"

namespace absort {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single word.
constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return v % bound;
}

Bit Xoshiro256::biased_bit(std::uint64_t p_num, std::uint64_t p_den) noexcept {
  return static_cast<Bit>(below(p_den) < p_num);
}

namespace workload {

BitVec random_bits(Xoshiro256& rng, std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.bit();
  return v;
}

BitVec random_bits_with_ones(Xoshiro256& rng, std::size_t n, std::size_t ones) {
  if (ones > n) throw std::invalid_argument("random_bits_with_ones: ones > n");
  BitVec v(n, 0);
  // Floyd's algorithm would also work; with one byte per bit a simple
  // fill-and-shuffle of the first `ones` positions is clear and O(n).
  for (std::size_t i = 0; i < ones; ++i) v[i] = 1;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.below(i);
    std::swap(v[i - 1], v[j]);
  }
  return v;
}

BitVec random_class_a(Xoshiro256& rng, std::size_t n) {
  require_pow2(n, 2, "random_class_a");
  const std::size_t pairs = n / 2;
  // Split the n/2 pairs into three (possibly empty) runs ka + kb + kc = pairs.
  const std::size_t ka = rng.below(pairs + 1);
  const std::size_t kb = rng.below(pairs - ka + 1);
  const std::size_t kc = pairs - ka - kb;
  const Bit a = rng.bit();  // 00 vs 11 for the first run
  const Bit b = rng.bit();  // 01 vs 10 for the middle run
  const Bit c = rng.bit();  // 00 vs 11 for the last run
  BitVec v;
  for (std::size_t i = 0; i < ka; ++i) {
    v.push_back(a);
    v.push_back(a);
  }
  for (std::size_t i = 0; i < kb; ++i) {
    v.push_back(b);
    v.push_back(static_cast<Bit>(1 - b));
  }
  for (std::size_t i = 0; i < kc; ++i) {
    v.push_back(c);
    v.push_back(c);
  }
  return v;
}

BitVec random_bisorted(Xoshiro256& rng, std::size_t n) {
  require_pow2(n, 2, "random_bisorted");
  const std::size_t h = n / 2;
  const auto upper = BitVec::sorted_with_ones(h, rng.below(h + 1));
  const auto lower = BitVec::sorted_with_ones(h, rng.below(h + 1));
  return upper.concat(lower);
}

BitVec random_k_sorted(Xoshiro256& rng, std::size_t n, std::size_t k) {
  require_pow2(n, 2, "random_k_sorted");
  if (k == 0 || n % k != 0) throw std::invalid_argument("random_k_sorted: k must divide n");
  const std::size_t block = n / k;
  BitVec v;
  for (std::size_t b = 0; b < k; ++b) {
    v = v.concat(BitVec::sorted_with_ones(block, rng.below(block + 1)));
  }
  return v;
}

BitVec random_clean_k_sorted(Xoshiro256& rng, std::size_t n, std::size_t k) {
  require_pow2(n, 2, "random_clean_k_sorted");
  if (k == 0 || n % k != 0) throw std::invalid_argument("random_clean_k_sorted: k must divide n");
  const std::size_t block = n / k;
  BitVec v;
  for (std::size_t b = 0; b < k; ++b) {
    const Bit bit = rng.bit();
    v = v.concat(bit ? BitVec::ones(block) : BitVec::zeros(block));
  }
  return v;
}

std::vector<std::size_t> random_permutation(Xoshiro256& rng, std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::swap(p[i - 1], p[rng.below(i)]);
  }
  return p;
}

}  // namespace workload
}  // namespace absort
