#include "absort/util/wordvec.hpp"

#include <cassert>

namespace absort::wordvec {

void pack_lanes(std::span<const BitVec> batch, std::size_t first, std::size_t lanes,
                std::span<Word> words) {
  assert(lanes <= kLanes);
  assert(first + lanes <= batch.size());
  const std::size_t n = words.size();
  for (std::size_t i = 0; i < n; ++i) words[i] = 0;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const BitVec& v = batch[first + lane];
    assert(v.size() == n);
    // Branchless: the bytes are 0/1 with data-dependent values, so a
    // conditional |= mispredicts half the time on random batches.
    for (std::size_t i = 0; i < n; ++i) {
      words[i] |= static_cast<Word>(v[i] & 1) << lane;
    }
  }
}

void unpack_lanes(std::span<const Word> words, std::size_t first, std::size_t lanes,
                  std::span<BitVec> out) {
  assert(lanes <= kLanes);
  assert(first + lanes <= out.size());
  const std::size_t n = words.size();
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    BitVec& v = out[first + lane];
    assert(v.size() == n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<Bit>((words[i] >> lane) & 1);
    }
  }
}

void pack_lanes_wide(std::span<const BitVec> batch, std::size_t first, std::size_t lanes,
                     std::size_t words_per_slot, std::span<Word> words) {
  assert(lanes <= words_per_slot * kLanes);
  assert(first + lanes <= batch.size());
  assert(words.size() % words_per_slot == 0);
  const std::size_t n = words.size() / words_per_slot;
  for (auto& w : words) w = 0;
  for (std::size_t w = 0; w * kLanes < lanes; ++w) {
    const std::size_t lw = std::min(kLanes, lanes - w * kLanes);
    for (std::size_t lane = 0; lane < lw; ++lane) {
      const BitVec& v = batch[first + w * kLanes + lane];
      assert(v.size() == n);
      // Branchless for the same reason as pack_lanes above.
      for (std::size_t i = 0; i < n; ++i) {
        words[i * words_per_slot + w] |= static_cast<Word>(v[i] & 1) << lane;
      }
    }
  }
}

void unpack_lanes_wide(std::span<const Word> words, std::size_t first, std::size_t lanes,
                       std::size_t words_per_slot, std::span<BitVec> out) {
  assert(lanes <= words_per_slot * kLanes);
  assert(first + lanes <= out.size());
  assert(words.size() % words_per_slot == 0);
  const std::size_t n = words.size() / words_per_slot;
  for (std::size_t w = 0; w * kLanes < lanes; ++w) {
    const std::size_t lw = std::min(kLanes, lanes - w * kLanes);
    for (std::size_t lane = 0; lane < lw; ++lane) {
      BitVec& v = out[first + w * kLanes + lane];
      assert(v.size() == n);
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = static_cast<Bit>((words[i * words_per_slot + w] >> lane) & 1);
      }
    }
  }
}

}  // namespace absort::wordvec
