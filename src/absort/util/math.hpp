#pragma once
// Small integer-math helpers used throughout the library.
//
// The paper (Chien & Oruc, TPDS'94) assumes all network sizes are powers of
// two and all logarithms are base 2; these helpers make those assumptions
// explicit and checked.

#include <cstddef>
#include <cstdint>

namespace absort {

/// True iff `x` is a power of two (0 is not).
[[nodiscard]] constexpr bool is_pow2(std::size_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Floor of log2(x); precondition x >= 1.
[[nodiscard]] constexpr std::size_t ilog2(std::size_t x) noexcept {
  std::size_t r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// Ceiling of log2(x); precondition x >= 1.
[[nodiscard]] constexpr std::size_t ceil_log2(std::size_t x) noexcept {
  return is_pow2(x) ? ilog2(x) : ilog2(x) + 1;
}

/// Smallest power of two >= x; precondition x >= 1.
[[nodiscard]] constexpr std::size_t next_pow2(std::size_t x) noexcept {
  return std::size_t{1} << ceil_log2(x);
}

/// Ceiling division.
[[nodiscard]] constexpr std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

/// lg(n) as a double for analytic formulas (n >= 1).
[[nodiscard]] double lg(double n) noexcept;

/// Throws std::invalid_argument unless n is a power of two and n >= min.
void require_pow2(std::size_t n, std::size_t min, const char* what);

}  // namespace absort
