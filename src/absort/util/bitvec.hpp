#pragma once
// BitVec: a dynamic sequence of bits, the universal data type of this library.
//
// Every network in the paper sorts *binary* sequences; BitVec is the value
// representation used by value-level simulators, sequence-class predicates,
// and test oracles.  It is deliberately a thin wrapper over
// std::vector<std::uint8_t> (one byte per bit) so that elements are cheap to
// address individually — the networks permute single bits, they do not do
// word-parallel arithmetic.

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace absort {

using Bit = std::uint8_t;  ///< 0 or 1.

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t n, Bit fill = 0) : bits_(n, fill) {}
  BitVec(std::initializer_list<int> init);

  /// Parse from a string of '0'/'1'; any other character (space, '/', '_')
  /// is ignored, so the paper's notation "101010/11" parses directly.
  static BitVec parse(std::string_view s);

  /// All-zero / all-one sequences.
  static BitVec zeros(std::size_t n) { return BitVec(n, 0); }
  static BitVec ones(std::size_t n) { return BitVec(n, 1); }

  /// The ascending sorted sequence of length n with `ones` trailing 1's.
  static BitVec sorted_with_ones(std::size_t n, std::size_t ones);

  /// Sequence whose bits are the little-endian binary expansion of `value`
  /// (bit 0 of value -> element 0).  Handy for exhaustive enumeration.
  static BitVec from_bits_of(std::uint64_t value, std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return bits_.size(); }
  [[nodiscard]] bool empty() const noexcept { return bits_.empty(); }

  Bit& operator[](std::size_t i) { return bits_[i]; }
  const Bit& operator[](std::size_t i) const { return bits_[i]; }
  Bit at(std::size_t i) const;

  void push_back(Bit b) { bits_.push_back(b & 1); }

  [[nodiscard]] std::size_t count_ones() const noexcept;
  [[nodiscard]] std::size_t count_zeros() const noexcept { return size() - count_ones(); }

  /// Ascending-sorted means all 0's precede all 1's.
  [[nodiscard]] bool is_sorted_ascending() const noexcept;

  /// Sub-sequence [begin, begin+len).
  [[nodiscard]] BitVec slice(std::size_t begin, std::size_t len) const;

  /// Concatenation.
  [[nodiscard]] BitVec concat(const BitVec& rhs) const;

  /// Perfect two-way shuffle of this sequence's two halves:
  /// (u0 u1 .. l0 l1 ..) -> (u0 l0 u1 l1 ..).  Size must be even.
  [[nodiscard]] BitVec shuffle2() const;

  [[nodiscard]] BitVec reversed() const;

  /// String of '0'/'1' characters; if group > 0, inserts '/' every `group`
  /// elements to match the paper's notation.
  [[nodiscard]] std::string str(std::size_t group = 0) const;

  [[nodiscard]] std::span<const Bit> span() const noexcept { return bits_; }
  [[nodiscard]] const std::vector<Bit>& data() const noexcept { return bits_; }
  [[nodiscard]] std::vector<Bit>& data() noexcept { return bits_; }

  auto begin() noexcept { return bits_.begin(); }
  auto end() noexcept { return bits_.end(); }
  auto begin() const noexcept { return bits_.begin(); }
  auto end() const noexcept { return bits_.end(); }

  friend bool operator==(const BitVec&, const BitVec&) = default;

 private:
  std::vector<Bit> bits_;
};

std::ostream& operator<<(std::ostream& os, const BitVec& v);

}  // namespace absort
