#include "absort/util/math.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace absort {

double lg(double n) noexcept { return std::log2(n); }

void require_pow2(std::size_t n, std::size_t min, const char* what) {
  if (!is_pow2(n) || n < min) {
    throw std::invalid_argument(std::string(what) + ": size " + std::to_string(n) +
                                " must be a power of two >= " + std::to_string(min));
  }
}

}  // namespace absort
