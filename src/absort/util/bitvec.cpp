#include "absort/util/bitvec.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace absort {

BitVec::BitVec(std::initializer_list<int> init) {
  bits_.reserve(init.size());
  for (int v : init) bits_.push_back(static_cast<Bit>(v != 0));
}

BitVec BitVec::parse(std::string_view s) {
  BitVec v;
  v.bits_.reserve(s.size());
  for (char c : s) {
    if (c == '0') {
      v.bits_.push_back(0);
    } else if (c == '1') {
      v.bits_.push_back(1);
    }
    // anything else is separator noise ('/', ' ', '_') and is skipped
  }
  return v;
}

BitVec BitVec::sorted_with_ones(std::size_t n, std::size_t ones) {
  if (ones > n) throw std::invalid_argument("BitVec::sorted_with_ones: ones > n");
  BitVec v(n, 0);
  for (std::size_t i = n - ones; i < n; ++i) v.bits_[i] = 1;
  return v;
}

BitVec BitVec::from_bits_of(std::uint64_t value, std::size_t n) {
  if (n > 64) throw std::invalid_argument("BitVec::from_bits_of: n > 64");
  BitVec v(n, 0);
  for (std::size_t i = 0; i < n; ++i) v.bits_[i] = static_cast<Bit>((value >> i) & 1u);
  return v;
}

Bit BitVec::at(std::size_t i) const {
  if (i >= bits_.size()) throw std::out_of_range("BitVec::at");
  return bits_[i];
}

std::size_t BitVec::count_ones() const noexcept {
  return static_cast<std::size_t>(std::count(bits_.begin(), bits_.end(), Bit{1}));
}

bool BitVec::is_sorted_ascending() const noexcept {
  return std::is_sorted(bits_.begin(), bits_.end());
}

BitVec BitVec::slice(std::size_t begin, std::size_t len) const {
  if (begin + len > bits_.size()) throw std::out_of_range("BitVec::slice");
  BitVec out;
  out.bits_.assign(bits_.begin() + static_cast<std::ptrdiff_t>(begin),
                   bits_.begin() + static_cast<std::ptrdiff_t>(begin + len));
  return out;
}

BitVec BitVec::concat(const BitVec& rhs) const {
  BitVec out = *this;
  out.bits_.insert(out.bits_.end(), rhs.bits_.begin(), rhs.bits_.end());
  return out;
}

BitVec BitVec::shuffle2() const {
  if (bits_.size() % 2 != 0) throw std::invalid_argument("BitVec::shuffle2: odd size");
  const std::size_t h = bits_.size() / 2;
  BitVec out(bits_.size());
  for (std::size_t i = 0; i < h; ++i) {
    out.bits_[2 * i] = bits_[i];
    out.bits_[2 * i + 1] = bits_[h + i];
  }
  return out;
}

BitVec BitVec::reversed() const {
  BitVec out = *this;
  std::reverse(out.bits_.begin(), out.bits_.end());
  return out;
}

std::string BitVec::str(std::size_t group) const {
  std::string s;
  s.reserve(bits_.size() + (group ? bits_.size() / group : 0));
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (group != 0 && i != 0 && i % group == 0) s.push_back('/');
    s.push_back(bits_[i] ? '1' : '0');
  }
  return s;
}

std::ostream& operator<<(std::ostream& os, const BitVec& v) { return os << v.str(); }

}  // namespace absort
