#pragma once
// Word-level bit-lane packing for batch evaluation.
//
// A bit-sliced evaluator processes one independent input vector per *bit
// lane* of a machine word: bit L of word i carries element i of vector L.
// This header provides the transposition between that lane-major layout and
// the library's one-byte-per-bit BitVec representation, plus the small lane
// arithmetic (masks, broadcasts) the evaluator needs.  Keeping the layout
// code here, out of the netlist compiler, also lets tests exercise the
// transposition round trip in isolation.

#include <cstddef>
#include <cstdint>
#include <span>

#include "absort/util/bitvec.hpp"

namespace absort::wordvec {

using Word = std::uint64_t;

/// Lanes carried by one word.
inline constexpr std::size_t kLanes = 64;

// SIMD word type for the wide interpreter paths.  GCC/Clang vector
// extensions give a portable 256-bit lane bundle (AVX2 on x86 when the ISA
// allows, two SSE/NEON ops otherwise); define ABSORT_SCALAR_WORDS to force
// the plain-uint64 fallback (Vec degenerates to Word and the "wide" paths
// simply carry fewer lanes).
#if defined(__GNUC__) && !defined(ABSORT_SCALAR_WORDS)
#define ABSORT_WORDVEC_SIMD 1
typedef Word Vec __attribute__((vector_size(32)));
/// Words carried by one Vec.
inline constexpr std::size_t kSimdWords = 4;
#else
using Vec = Word;
inline constexpr std::size_t kSimdWords = 1;
#endif

/// Lanes carried by one Vec (256 with vector extensions, 64 scalar).
inline constexpr std::size_t kSimdLanes = kSimdWords * kLanes;

/// All-zero / all-one words (one per possible Bit value).
[[nodiscard]] constexpr Word broadcast(Bit b) noexcept {
  return b ? ~Word{0} : Word{0};
}

/// Word with the low `lanes` bits set (lanes <= 64; 64 -> all ones).
[[nodiscard]] constexpr Word lane_mask(std::size_t lanes) noexcept {
  return lanes >= kLanes ? ~Word{0} : (Word{1} << lanes) - 1;
}

/// Number of 64-lane passes needed for a batch of `b` vectors.
[[nodiscard]] constexpr std::size_t num_passes(std::size_t b) noexcept {
  return (b + kLanes - 1) / kLanes;
}

/// Packs vectors batch[first .. first+lanes) (all of equal length n) into
/// lane-major words: bit L of words[i] = batch[first + L][i].  `words` must
/// have size n; lanes above `lanes` are cleared.
void pack_lanes(std::span<const BitVec> batch, std::size_t first, std::size_t lanes,
                std::span<Word> words);

/// Inverse of pack_lanes: scatters bit L of words[i] into out[first + L][i].
/// Each out[first + L] must already be sized to words.size().
void unpack_lanes(std::span<const Word> words, std::size_t first, std::size_t lanes,
                  std::span<BitVec> out);

/// Packs vectors batch[first .. first+lanes) into the W-word-interleaved
/// lane-major layout the wide interpreter uses: word words[i*W + w] carries
/// lanes [first + w*64, first + (w+1)*64) of element i.  `words` must have
/// size n*W (n = vector length); lanes beyond `lanes` (<= 64*W) are cleared.
void pack_lanes_wide(std::span<const BitVec> batch, std::size_t first, std::size_t lanes,
                     std::size_t words_per_slot, std::span<Word> words);

/// Inverse of pack_lanes_wide; each out[first + L] must be sized to
/// words.size() / words_per_slot.
void unpack_lanes_wide(std::span<const Word> words, std::size_t first, std::size_t lanes,
                       std::size_t words_per_slot, std::span<BitVec> out);

}  // namespace absort::wordvec
