#pragma once
// Word-level bit-lane packing for batch evaluation.
//
// A bit-sliced evaluator processes one independent input vector per *bit
// lane* of a machine word: bit L of word i carries element i of vector L.
// This header provides the transposition between that lane-major layout and
// the library's one-byte-per-bit BitVec representation, plus the small lane
// arithmetic (masks, broadcasts) the evaluator needs.  Keeping the layout
// code here, out of the netlist compiler, also lets tests exercise the
// transposition round trip in isolation.

#include <cstddef>
#include <cstdint>
#include <span>

#include "absort/util/bitvec.hpp"

namespace absort::wordvec {

using Word = std::uint64_t;

/// Lanes carried by one word.
inline constexpr std::size_t kLanes = 64;

/// All-zero / all-one words (one per possible Bit value).
[[nodiscard]] constexpr Word broadcast(Bit b) noexcept {
  return b ? ~Word{0} : Word{0};
}

/// Word with the low `lanes` bits set (lanes <= 64; 64 -> all ones).
[[nodiscard]] constexpr Word lane_mask(std::size_t lanes) noexcept {
  return lanes >= kLanes ? ~Word{0} : (Word{1} << lanes) - 1;
}

/// Number of 64-lane passes needed for a batch of `b` vectors.
[[nodiscard]] constexpr std::size_t num_passes(std::size_t b) noexcept {
  return (b + kLanes - 1) / kLanes;
}

/// Packs vectors batch[first .. first+lanes) (all of equal length n) into
/// lane-major words: bit L of words[i] = batch[first + L][i].  `words` must
/// have size n; lanes above `lanes` are cleared.
void pack_lanes(std::span<const BitVec> batch, std::size_t first, std::size_t lanes,
                std::span<Word> words);

/// Inverse of pack_lanes: scatters bit L of words[i] into out[first + L][i].
/// Each out[first + L] must already be sized to words.size().
void unpack_lanes(std::span<const Word> words, std::size_t first, std::size_t lanes,
                  std::span<BitVec> out);

}  // namespace absort::wordvec
