#pragma once
// Deterministic PRNG and workload generators.
//
// xoshiro256** (public-domain algorithm by Blackman & Vigna): fast, seedable,
// and identical across platforms, so every test and benchmark workload is
// reproducible from its printed seed.

#include <cstdint>
#include <vector>

#include "absort/util/bitvec.hpp"

namespace absort {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Uniform integer in [0, bound).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform bit.
  Bit bit() noexcept { return static_cast<Bit>((*this)() >> 63); }

  /// Bernoulli(p_num / p_den) bit.
  Bit biased_bit(std::uint64_t p_num, std::uint64_t p_den) noexcept;

 private:
  std::uint64_t s_[4];
};

/// Workload generators used by tests and benchmarks.
namespace workload {

/// Uniform random binary sequence of length n.
BitVec random_bits(Xoshiro256& rng, std::size_t n);

/// Random binary sequence with exactly `ones` ones (uniform over positions).
BitVec random_bits_with_ones(Xoshiro256& rng, std::size_t n, std::size_t ones);

/// Random sequence from class A_n (Definition 1): a run of 00|11 pairs, then
/// a run of 01|10 pairs, then a run of 00|11 pairs.
BitVec random_class_a(Xoshiro256& rng, std::size_t n);

/// Random bisorted sequence (Definition 3): both halves sorted.
BitVec random_bisorted(Xoshiro256& rng, std::size_t n);

/// Random k-sorted sequence (Definition 4): k sorted blocks of n/k.
BitVec random_k_sorted(Xoshiro256& rng, std::size_t n, std::size_t k);

/// Random clean k-sorted sequence (Definition 5): k clean blocks of n/k.
BitVec random_clean_k_sorted(Xoshiro256& rng, std::size_t n, std::size_t k);

/// Uniform random permutation of {0, .., n-1}.
std::vector<std::size_t> random_permutation(Xoshiro256& rng, std::size_t n);

}  // namespace workload
}  // namespace absort
