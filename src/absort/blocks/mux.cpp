#include "absort/blocks/mux.hpp"

#include <stdexcept>

#include "absort/util/math.hpp"

namespace absort::blocks {

using netlist::Circuit;
using netlist::WireId;

WireId mux_tree(Circuit& c, const std::vector<WireId>& in, std::span<const WireId> sel) {
  require_pow2(in.size(), 1, "mux_tree");
  const std::size_t levels = ilog2(in.size());
  if (sel.size() != levels) throw std::invalid_argument("mux_tree: wrong select width");
  std::vector<WireId> cur = in;
  // Combine with the low select bit at the leaves so that the selected index
  // is the little-endian value of `sel`.
  for (std::size_t l = 0; l < levels; ++l) {
    std::vector<WireId> next;
    next.reserve(cur.size() / 2);
    for (std::size_t i = 0; i + 1 < cur.size(); i += 2) {
      next.push_back(c.mux(cur[i], cur[i + 1], sel[l]));
    }
    cur = std::move(next);
  }
  return cur[0];
}

std::vector<WireId> mux_nk(Circuit& c, const std::vector<WireId>& in, std::size_t k,
                           std::span<const WireId> sel) {
  if (k == 0 || in.size() % k != 0) throw std::invalid_argument("mux_nk: k must divide n");
  const std::size_t groups = in.size() / k;
  require_pow2(groups, 1, "mux_nk groups");
  std::vector<WireId> out;
  out.reserve(k);
  // Couple k (groups,1)-multiplexers: output j selects element j of the
  // chosen group.
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<WireId> lane;
    lane.reserve(groups);
    for (std::size_t g = 0; g < groups; ++g) lane.push_back(in[g * k + j]);
    out.push_back(mux_tree(c, lane, sel));
  }
  return out;
}

std::vector<WireId> demux_tree(Circuit& c, WireId d, std::span<const WireId> sel, std::size_t m) {
  require_pow2(m, 1, "demux_tree");
  const std::size_t levels = ilog2(m);
  if (sel.size() != levels) throw std::invalid_argument("demux_tree: wrong select width");
  std::vector<WireId> cur{d};
  // Split with the high select bit first so out[value(sel)] receives d with
  // `sel` read little-endian.
  for (std::size_t l = levels; l > 0; --l) {
    std::vector<WireId> next;
    next.reserve(cur.size() * 2);
    for (WireId w : cur) {
      const auto [o0, o1] = c.demux(w, sel[l - 1]);
      next.push_back(o0);
      next.push_back(o1);
    }
    // `next` is ordered by the bits consumed so far (most significant first);
    // continue splitting each in place.
    cur = std::move(next);
  }
  return cur;
}

std::vector<WireId> demux_kn(Circuit& c, const std::vector<WireId>& in, std::size_t n,
                             std::span<const WireId> sel) {
  const std::size_t k = in.size();
  if (k == 0 || n % k != 0) throw std::invalid_argument("demux_kn: k must divide n");
  const std::size_t groups = n / k;
  require_pow2(groups, 1, "demux_kn groups");
  // Couple k (1,groups)-demultiplexers; lane j feeds element j of each group.
  std::vector<WireId> out(n, netlist::kNoWire);
  for (std::size_t j = 0; j < k; ++j) {
    const auto lane = demux_tree(c, in[j], sel, groups);
    for (std::size_t g = 0; g < groups; ++g) out[g * k + j] = lane[g];
  }
  return out;
}

}  // namespace absort::blocks
