#pragma once
// The balanced merging block (Dowd, Perl, Rudolph & Saks [8], [9]).
//
// Stage 1 compares mirrored pairs (i, n-1-i); then the block recurses on
// each half independently.  Cost (n/2)*lg n comparators, depth lg n.
//
// For binary inputs drawn from class A_n (which is exactly what the shuffle
// of two sorted halves produces -- Theorem 1), the block sorts: Theorem 2
// shows stage 1 leaves one half clean and the other in A_{n/2}, and a clean
// half passes through the recursive stages unchanged.  This is the
// *nonadaptive* O(n lg n) merger that Network 1's adaptive patch-up improves
// to O(n) by recursing into only the unsorted half.

#include <vector>

#include "absort/netlist/circuit.hpp"

namespace absort::blocks {

/// Full balanced merging block on `in`; returns the output bundle.
std::vector<netlist::WireId> balanced_merging_block(netlist::Circuit& c,
                                                    const std::vector<netlist::WireId>& in);

}  // namespace absort::blocks
