#include "absort/blocks/comparator_stage.hpp"

#include <stdexcept>

namespace absort::blocks {

using netlist::Circuit;
using netlist::WireId;

std::vector<WireId> compare_at(Circuit& c, std::vector<WireId> in, std::size_t i, std::size_t j) {
  if (i >= j || j >= in.size()) throw std::invalid_argument("compare_at: bad indices");
  const auto [lo, hi] = c.comparator(in[i], in[j]);
  in[i] = lo;
  in[j] = hi;
  return in;
}

std::vector<WireId> adjacent_stage(Circuit& c, const std::vector<WireId>& in) {
  if (in.size() % 2 != 0) throw std::invalid_argument("adjacent_stage: odd size");
  std::vector<WireId> out = in;
  for (std::size_t i = 0; i + 1 < in.size(); i += 2) {
    const auto [lo, hi] = c.comparator(in[i], in[i + 1]);
    out[i] = lo;
    out[i + 1] = hi;
  }
  return out;
}

std::vector<WireId> mirrored_stage(Circuit& c, const std::vector<WireId>& in) {
  if (in.size() % 2 != 0) throw std::invalid_argument("mirrored_stage: odd size");
  const std::size_t n = in.size();
  std::vector<WireId> out = in;
  for (std::size_t i = 0; i < n / 2; ++i) {
    const auto [lo, hi] = c.comparator(in[i], in[n - 1 - i]);
    out[i] = lo;
    out[n - 1 - i] = hi;
  }
  return out;
}

}  // namespace absort::blocks
