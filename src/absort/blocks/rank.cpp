#include "absort/blocks/rank.hpp"

#include <stdexcept>

#include "absort/blocks/prefix_adder.hpp"
#include "absort/util/math.hpp"

namespace absort::blocks {
namespace {

using netlist::Circuit;
using netlist::WireId;

// Truncating adder at fixed width (drops the carry-out; counts here never
// exceed n, which fits the fixed width).
std::vector<WireId> add_fixed(Circuit& c, const std::vector<WireId>& a,
                              const std::vector<WireId>& b) {
  auto s = prefix_adder(c, a, b);
  s.resize(a.size());
  return s;
}

// Inclusive prefix counts over bits[lo, lo+len), all at width `w`.
// Returns len bundles; the last is the block total.
std::vector<std::vector<WireId>> inclusive_rec(Circuit& c, const std::vector<WireId>& bits,
                                               std::size_t lo, std::size_t len, std::size_t w,
                                               WireId zero) {
  if (len == 1) {
    std::vector<WireId> one(w, zero);
    one[0] = bits[lo];
    return {one};
  }
  const std::size_t h = len / 2;
  auto left = inclusive_rec(c, bits, lo, h, w, zero);
  auto right = inclusive_rec(c, bits, lo + h, h, w, zero);
  const auto& left_total = left.back();
  for (auto& r : right) r = add_fixed(c, r, left_total);
  left.insert(left.end(), right.begin(), right.end());
  return left;
}

}  // namespace

std::vector<std::vector<WireId>> prefix_counts(Circuit& c, const std::vector<WireId>& bits) {
  require_pow2(bits.size(), 1, "prefix_counts");
  const std::size_t w = ilog2(bits.size()) + 1;
  const WireId zero = c.constant(0);
  const auto inclusive = inclusive_rec(c, bits, 0, bits.size(), w, zero);
  // exclusive[i] = inclusive[i-1]; exclusive[0] = 0.
  std::vector<std::vector<WireId>> out(bits.size());
  out[0].assign(w, zero);
  for (std::size_t i = 1; i < bits.size(); ++i) out[i] = inclusive[i - 1];
  return out;
}

std::vector<WireId> population_count(Circuit& c, const std::vector<WireId>& bits) {
  require_pow2(bits.size(), 1, "population_count");
  const std::size_t w = ilog2(bits.size()) + 1;
  const WireId zero = c.constant(0);
  return inclusive_rec(c, bits, 0, bits.size(), w, zero).back();
}

}  // namespace absort::blocks
