#pragma once
// Swapping networks (Fig. 2 of the paper).
//
// A two-way swapper exchanges the two halves of its inputs when its control
// is 1: a two-way shuffle, a stage of n/2 2x2 switches sharing the control,
// and a reversed shuffle (cost n/2, depth 1).
//
// A four-way swapper permutes the four quarters of its inputs in one of four
// fixed patterns chosen by two select signals: a four-way shuffle, a stage of
// n/4 4x4 switches, and a reversed shuffle (cost n = four units per 4x4
// switch, depth 1).  The paper instantiates it twice, as IN-SWAP and
// OUT-SWAP, with the pattern tables used by the mux-merger (Table I).

#include <array>
#include <vector>

#include "absort/netlist/circuit.hpp"

namespace absort::blocks {

/// Two-way swapper: ctrl=0 passes through, ctrl=1 swaps upper/lower halves.
std::vector<netlist::WireId> two_way_swapper(netlist::Circuit& c,
                                             const std::vector<netlist::WireId>& in,
                                             netlist::WireId ctrl);

/// Quarter-permutation tables for the mux-merger's four-way swappers, indexed
/// by the select value s = b2*2 + b4 where b2/b4 are the middle bits of the
/// two sorted halves (Table I).  pattern[s][q] = input quarter routed to
/// output quarter q.
[[nodiscard]] netlist::Swap4Patterns in_swap_patterns() noexcept;
[[nodiscard]] netlist::Swap4Patterns out_swap_patterns() noexcept;

/// Four-way swapper with an arbitrary pattern table.  s0 is the low select
/// bit, s1 the high bit.  Size must be a multiple of 4.
std::vector<netlist::WireId> four_way_swapper(netlist::Circuit& c,
                                              const std::vector<netlist::WireId>& in,
                                              netlist::WireId s0, netlist::WireId s1,
                                              const netlist::Swap4Patterns& patterns);

/// The k-SWAP stage of the fish sorter's k-way mux-merger: k independent
/// (n/k)-input two-way swappers, one per sorted block, each controlled by its
/// own signal; block b's upper half lands in the top n/2 outputs at block
/// position b, its lower half in the bottom n/2 at block position b.
std::vector<netlist::WireId> k_swap(netlist::Circuit& c, const std::vector<netlist::WireId>& in,
                                    const std::vector<netlist::WireId>& ctrls);

}  // namespace absort::blocks
