#pragma once
// Parallel-prefix (carry-lookahead) adder.
//
// The prefix binary sorter (Network 1, Fig. 5) determines which half of each
// patch-up stage is clean by comparing the number of 1's against a power of
// two; the counts are produced "by recursively adding the numbers of 1's in
// the two half-size input sequences" with a lg n-bit prefix adder.  The paper
// cites [5] for a prefix adder with O(w) cost and O(lg w) depth; we use the
// Kogge-Stone recurrence, whose cost is O(w lg w) with depth lg w + 2 --
// still a strictly lower-order term in the sorter (the paper's own accounting
// of the adder contributes only the O(lg^2 n) slack in eq. (1)'s solution).

#include <span>
#include <vector>

#include "absort/netlist/circuit.hpp"

namespace absort::blocks {

/// Adds two equal-width little-endian numbers; returns w+1 sum bits
/// (the last is the carry-out).
std::vector<netlist::WireId> prefix_adder(netlist::Circuit& c,
                                          std::span<const netlist::WireId> a,
                                          std::span<const netlist::WireId> b);

/// Ripple-carry alternative (cost 5w - 3, depth ~2w): the ablation baseline
/// for the prefix sorter's count logic -- smaller at tiny widths, linear
/// depth instead of logarithmic.
std::vector<netlist::WireId> ripple_adder(netlist::Circuit& c,
                                          std::span<const netlist::WireId> a,
                                          std::span<const netlist::WireId> b);

}  // namespace absort::blocks
