#include "absort/blocks/swapper.hpp"

#include <stdexcept>

#include "absort/netlist/wiring.hpp"

namespace absort::blocks {

using netlist::Circuit;
using netlist::Swap4Patterns;
using netlist::WireId;
namespace wiring = netlist::wiring;

std::vector<WireId> two_way_swapper(Circuit& c, const std::vector<WireId>& in, WireId ctrl) {
  if (in.size() % 2 != 0) throw std::invalid_argument("two_way_swapper: odd size");
  const std::size_t h = in.size() / 2;
  // Two-way shuffle pairs input i with input h+i on one switch; the reversed
  // shuffle puts switch outputs back into half-major order.
  const auto shuffled = wiring::shuffle(in, 2);
  std::vector<WireId> switched(in.size());
  for (std::size_t i = 0; i < h; ++i) {
    const auto [o0, o1] = c.switch2x2(shuffled[2 * i], shuffled[2 * i + 1], ctrl);
    switched[2 * i] = o0;
    switched[2 * i + 1] = o1;
  }
  return wiring::unshuffle(switched, 2);
}

Swap4Patterns in_swap_patterns() noexcept {
  // Derived from Table I / Theorem 3 (quarters 0-based).  After IN-SWAP the
  // two clean quarters occupy the upper half and the two quarters forming a
  // bisorted sequence occupy the lower half, in an order that keeps each
  // lower quarter internally sorted:
  //   s=0 (b2=0,b4=0): clean {q0,q2} up, pair (q1,q3) down
  //   s=1 (b2=0,b4=1): clean {q0,q3} up, pair (q1,q2) down
  //   s=2 (b2=1,b4=0): clean {q2,q1} up, pair (q3,q0) down
  //   s=3 (b2=1,b4=1): clean {q1,q3} up, pair (q0,q2) down
  return Swap4Patterns{{{0, 2, 1, 3}, {0, 3, 1, 2}, {2, 1, 3, 0}, {1, 3, 0, 2}}};
}

Swap4Patterns out_swap_patterns() noexcept {
  // After the recursive merger sorts the lower half (m0, m1), OUT-SWAP
  // arranges quarters into ascending order (matches the paper's three
  // patterns {identity, (243), (13)(24)}; (243) serves both s=1 and s=2):
  //   s=0: [q_a, q_b, m0, m1]  (both cleans are 0-quarters)    -> identity
  //   s=1: [q_a, m0, m1, q_b]  (one 0-quarter, one 1-quarter)  -> (243)
  //   s=2: [q_a, m0, m1, q_b]                                   -> (243)
  //   s=3: [m0, m1, q_a, q_b]  (both cleans are 1-quarters)    -> (13)(24)
  return Swap4Patterns{{{0, 1, 2, 3}, {0, 2, 3, 1}, {0, 2, 3, 1}, {2, 3, 0, 1}}};
}

std::vector<WireId> four_way_swapper(Circuit& c, const std::vector<WireId>& in, WireId s0,
                                     WireId s1, const Swap4Patterns& patterns) {
  if (in.size() % 4 != 0) throw std::invalid_argument("four_way_swapper: size % 4 != 0");
  const std::size_t q = in.size() / 4;
  const std::uint8_t table = c.register_swap4_patterns(patterns);
  // Four-way shuffle groups one wire of each quarter onto each 4x4 switch.
  const auto shuffled = wiring::shuffle(in, 4);
  std::vector<WireId> switched(in.size());
  for (std::size_t i = 0; i < q; ++i) {
    const auto out = c.switch4x4(
        {shuffled[4 * i], shuffled[4 * i + 1], shuffled[4 * i + 2], shuffled[4 * i + 3]}, s0, s1,
        table);
    for (std::size_t j = 0; j < 4; ++j) switched[4 * i + j] = out[j];
  }
  return wiring::unshuffle(switched, 4);
}

std::vector<WireId> k_swap(Circuit& c, const std::vector<WireId>& in,
                           const std::vector<WireId>& ctrls) {
  const std::size_t k = ctrls.size();
  if (k == 0 || in.size() % k != 0) throw std::invalid_argument("k_swap: k must divide n");
  const std::size_t block = in.size() / k;
  if (block % 2 != 0) throw std::invalid_argument("k_swap: block size must be even");
  std::vector<WireId> upper, lower;
  upper.reserve(in.size() / 2);
  lower.reserve(in.size() / 2);
  for (std::size_t b = 0; b < k; ++b) {
    const auto blk = wiring::slice(in, b * block, block);
    const auto swapped = two_way_swapper(c, blk, ctrls[b]);
    for (std::size_t i = 0; i < block / 2; ++i) upper.push_back(swapped[i]);
    for (std::size_t i = block / 2; i < block; ++i) lower.push_back(swapped[i]);
  }
  return wiring::concat(upper, lower);
}

}  // namespace absort::blocks
