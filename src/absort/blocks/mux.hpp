#pragma once
// Multiplexer and demultiplexer trees (Fig. 3 of the paper).
//
// An (m,1)-multiplexer is a balanced binary tree of lg m levels of (2,1)-
// multiplexers (cost m-1, depth lg m).  An (n,k)-multiplexer couples k
// (n/k,1)-multiplexers to select one of n/k groups of k inputs (the paper
// charges it n cost and lg(n/k) depth; the exact built cost is n-k).
// Demultiplexers are the mirror image built from (1,2)-demultiplexers.

#include <span>
#include <vector>

#include "absort/netlist/circuit.hpp"

namespace absort::blocks {

/// (m,1)-multiplexer: selects in[value(sel)] where sel is little-endian and
/// has exactly lg m bits; m must be a power of two.
netlist::WireId mux_tree(netlist::Circuit& c, const std::vector<netlist::WireId>& in,
                         std::span<const netlist::WireId> sel);

/// (n,k)-multiplexer: input is n/k contiguous groups of k wires; returns the
/// k wires of group value(sel).  sel has lg(n/k) bits, little-endian.
std::vector<netlist::WireId> mux_nk(netlist::Circuit& c, const std::vector<netlist::WireId>& in,
                                    std::size_t k, std::span<const netlist::WireId> sel);

/// (1,m)-demultiplexer: routes d to out[value(sel)]; all other outputs are 0.
/// Returns m wires; m must be a power of two, sel has lg m bits.
std::vector<netlist::WireId> demux_tree(netlist::Circuit& c, netlist::WireId d,
                                        std::span<const netlist::WireId> sel, std::size_t m);

/// (k,n)-demultiplexer: routes the k input wires to group value(sel) of the
/// n/k output groups; all other outputs are 0.  Returns n wires.
std::vector<netlist::WireId> demux_kn(netlist::Circuit& c, const std::vector<netlist::WireId>& in,
                                      std::size_t n, std::span<const netlist::WireId> sel);

}  // namespace absort::blocks
