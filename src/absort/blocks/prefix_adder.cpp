#include "absort/blocks/prefix_adder.hpp"

#include <stdexcept>

namespace absort::blocks {

using netlist::Circuit;
using netlist::WireId;

std::vector<WireId> prefix_adder(Circuit& c, std::span<const WireId> a,
                                 std::span<const WireId> b) {
  if (a.size() != b.size()) throw std::invalid_argument("prefix_adder: width mismatch");
  const std::size_t w = a.size();
  if (w == 0) throw std::invalid_argument("prefix_adder: zero width");

  // Generate/propagate per position.
  std::vector<WireId> g(w), p(w);
  for (std::size_t i = 0; i < w; ++i) {
    g[i] = c.and_gate(a[i], b[i]);
    p[i] = c.xor_gate(a[i], b[i]);
  }

  // Kogge-Stone prefix: after the pass with distance d, G[i]/P[i] cover the
  // window [i-2d+1, i].  P doubles as the carry-propagate chain; XOR is a
  // valid propagate signal for carry computation.
  std::vector<WireId> G = g, P = p;
  for (std::size_t d = 1; d < w; d *= 2) {
    std::vector<WireId> G2 = G, P2 = P;
    for (std::size_t i = d; i < w; ++i) {
      G2[i] = c.or_gate(G[i], c.and_gate(P[i], G[i - d]));
      P2[i] = c.and_gate(P[i], P[i - d]);
    }
    G = std::move(G2);
    P = std::move(P2);
  }

  // carry into position i is G[i-1] (prefix generate of [0, i-1]).
  std::vector<WireId> sum(w + 1);
  sum[0] = p[0];
  for (std::size_t i = 1; i < w; ++i) sum[i] = c.xor_gate(p[i], G[i - 1]);
  sum[w] = G[w - 1];  // carry-out
  return sum;
}

std::vector<WireId> ripple_adder(Circuit& c, std::span<const WireId> a,
                                 std::span<const WireId> b) {
  if (a.size() != b.size()) throw std::invalid_argument("ripple_adder: width mismatch");
  const std::size_t w = a.size();
  if (w == 0) throw std::invalid_argument("ripple_adder: zero width");
  std::vector<WireId> sum(w + 1);
  // Half adder at the LSB, full adders above.
  sum[0] = c.xor_gate(a[0], b[0]);
  WireId carry = c.and_gate(a[0], b[0]);
  for (std::size_t i = 1; i < w; ++i) {
    const WireId axb = c.xor_gate(a[i], b[i]);
    sum[i] = c.xor_gate(axb, carry);
    carry = c.or_gate(c.and_gate(a[i], b[i]), c.and_gate(axb, carry));
  }
  sum[w] = carry;
  return sum;
}

}  // namespace absort::blocks
