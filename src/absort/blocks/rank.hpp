#pragma once
// Rank (prefix-count) circuits.
//
// The self-routing concentrators of [11], [13] rank the active requests with
// a tree of counters before routing them; ranking is what costs them
// O(n lg^2 n) bit level (Section IV).  prefix_counts builds that circuit:
// for every position i, the number of 1's strictly before i, as a fixed
// (lg n + 1)-bit little-endian bundle.

#include <vector>

#include "absort/netlist/circuit.hpp"

namespace absort::blocks {

/// Exclusive prefix population counts of `bits` (n a power of two); result
/// [i] is a (lg n + 1)-wide little-endian count of ones in bits[0..i).
/// Built as a balanced tree of prefix adders: cost Theta(n lg^2 n).
std::vector<std::vector<netlist::WireId>> prefix_counts(netlist::Circuit& c,
                                                        const std::vector<netlist::WireId>& bits);

/// Total population count of `bits`, (lg n + 1) bits little-endian.
std::vector<netlist::WireId> population_count(netlist::Circuit& c,
                                              const std::vector<netlist::WireId>& bits);

}  // namespace absort::blocks
