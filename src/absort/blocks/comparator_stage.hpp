#pragma once
// Comparator-stage builders shared by the sorting networks.
//
// A binary comparator places min(a,b) = a AND b on its upper output and
// max(a,b) = a OR b on its lower output, so cascades of comparators produce
// ascending order (0's on top), matching every figure in the paper.

#include <vector>

#include "absort/netlist/circuit.hpp"

namespace absort::blocks {

/// One comparator across positions (i, j) of the bundle, min staying at the
/// smaller index.  Returns the updated bundle.
std::vector<netlist::WireId> compare_at(netlist::Circuit& c, std::vector<netlist::WireId> in,
                                        std::size_t i, std::size_t j);

/// Comparators on adjacent pairs: (0,1), (2,3), ...  Size must be even.
std::vector<netlist::WireId> adjacent_stage(netlist::Circuit& c,
                                            const std::vector<netlist::WireId>& in);

/// The balanced merging block's first stage: comparators on mirrored pairs
/// (i, n-1-i), min at i.  This is the stage Theorem 2 analyses.
std::vector<netlist::WireId> mirrored_stage(netlist::Circuit& c,
                                            const std::vector<netlist::WireId>& in);

}  // namespace absort::blocks
