#include "absort/blocks/balanced_merger.hpp"

#include "absort/blocks/comparator_stage.hpp"
#include "absort/netlist/wiring.hpp"
#include "absort/util/math.hpp"

namespace absort::blocks {

using netlist::Circuit;
using netlist::WireId;
namespace wiring = netlist::wiring;

std::vector<WireId> balanced_merging_block(Circuit& c, const std::vector<WireId>& in) {
  require_pow2(in.size(), 1, "balanced_merging_block");
  if (in.size() == 1) return in;
  const std::size_t h = in.size() / 2;
  const auto staged = mirrored_stage(c, in);
  const auto upper = balanced_merging_block(c, wiring::slice(staged, 0, h));
  const auto lower = balanced_merging_block(c, wiring::slice(staged, h, h));
  return wiring::concat(upper, lower);
}

}  // namespace absort::blocks
