#include "absort/seqclass/seqclass.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

namespace absort::seqclass {
namespace {

// Matches a maximal run of identical pairs starting at pair index `p`:
// either (00)* or (11)*.  Returns the pair index just past the run.
std::size_t match_clean_pairs(const BitVec& v, std::size_t p) noexcept {
  const std::size_t pairs = v.size() / 2;
  if (p >= pairs) return p;
  const Bit b = v[2 * p];
  while (p < pairs && v[2 * p] == b && v[2 * p + 1] == b) ++p;
  return p;
}

// Matches a maximal run of alternating pairs starting at pair index `p`:
// either (01)* or (10)*.  Returns the pair index just past the run.
std::size_t match_alt_pairs(const BitVec& v, std::size_t p) noexcept {
  const std::size_t pairs = v.size() / 2;
  if (p >= pairs) return p;
  const Bit b = v[2 * p];
  while (p < pairs && v[2 * p] == b && v[2 * p + 1] == static_cast<Bit>(1 - b)) ++p;
  return p;
}

}  // namespace

bool is_clean_sorted(const BitVec& v) noexcept {
  return std::all_of(v.begin(), v.end(), [&](Bit b) { return b == (v.empty() ? 0 : v[0]); });
}

bool in_class_a(const BitVec& v) noexcept {
  if (v.size() % 2 != 0) return false;
  const std::size_t pairs = v.size() / 2;
  // Try every split: clean-run to pair a, alternating-run to pair b, clean
  // run to the end.  The greedy maximal matches are not sufficient on their
  // own because a (00)* run can also begin a (01)* run's complement, so we
  // enumerate the (at most O(1)) maximal-run boundaries explicitly: a run of
  // identical pairs and a run of alternating pairs can only overlap at their
  // boundary, so greedy matching with one step of backtracking suffices.
  // For robustness we simply try all O(n^2) splits -- n is small wherever
  // this predicate runs in tests.
  for (std::size_t a = 0; a <= pairs; ++a) {
    // segment 1: pairs [0, a) must be (00)* or (11)* (uniform type)
    if (a > 0) {
      const Bit t = v[0];
      bool ok = true;
      for (std::size_t p = 0; p < a && ok; ++p) ok = (v[2 * p] == t && v[2 * p + 1] == t);
      if (!ok) continue;
    }
    for (std::size_t b = a; b <= pairs; ++b) {
      // segment 2: pairs [a, b) must be (01)* or (10)* (uniform type)
      if (b > a) {
        const Bit t = v[2 * a];
        bool ok = true;
        for (std::size_t p = a; p < b && ok; ++p) {
          ok = (v[2 * p] == t && v[2 * p + 1] == static_cast<Bit>(1 - t));
        }
        if (!ok) continue;
      }
      // segment 3: pairs [b, pairs) must be (00)* or (11)*
      bool ok = true;
      if (b < pairs) {
        const Bit t = v[2 * b];
        for (std::size_t p = b; p < pairs && ok; ++p) {
          ok = (v[2 * p] == t && v[2 * p + 1] == t);
        }
      }
      if (ok) return true;
    }
  }
  return false;
}

bool in_class_a_linear(const BitVec& v) noexcept {
  if (v.size() % 2 != 0) return false;
  const std::size_t pairs = v.size() / 2;
  // Decompose into maximal runs of identical pairs; each pair must be one of
  // 00/11 (clean) or 01/10 (alternating), which is always true of a bit
  // pair, so only the run-category sequence matters: it must parse as
  // C? A? C? (each letter one run).
  int state = 0;  // 0: before first clean run, 1: after C1, 2: after A, 3: after C2
  std::size_t p = 0;
  while (p < pairs) {
    const Bit first = v[2 * p];
    const Bit second = v[2 * p + 1];
    const bool clean = first == second;
    std::size_t q = p;
    while (q < pairs && v[2 * q] == first && v[2 * q + 1] == second) ++q;
    if (clean) {
      if (state == 0) {
        state = 1;  // C1
      } else if (state == 1 || state == 2) {
        state = 3;  // C2 (an A run may be absent)
      } else {
        return false;  // third clean run
      }
    } else {
      if (state <= 1) {
        state = 2;  // A
      } else {
        return false;  // alternating run after A or C2
      }
    }
    p = q;
  }
  return true;
}

bool is_bisorted(const BitVec& v) noexcept {
  if (v.size() % 2 != 0) return false;
  const std::size_t h = v.size() / 2;
  return std::is_sorted(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(h)) &&
         std::is_sorted(v.begin() + static_cast<std::ptrdiff_t>(h), v.end());
}

bool is_k_sorted(const BitVec& v, std::size_t k) noexcept {
  if (k == 0 || v.size() % k != 0) return false;
  const std::size_t block = v.size() / k;
  for (std::size_t b = 0; b < k; ++b) {
    const auto first = v.begin() + static_cast<std::ptrdiff_t>(b * block);
    if (!std::is_sorted(first, first + static_cast<std::ptrdiff_t>(block))) return false;
  }
  return true;
}

bool is_clean_k_sorted(const BitVec& v, std::size_t k) noexcept {
  if (k == 0 || v.size() % k != 0) return false;
  const std::size_t block = v.size() / k;
  for (std::size_t b = 0; b < k; ++b) {
    const Bit t = v[b * block];
    for (std::size_t i = 0; i < block; ++i) {
      if (v[b * block + i] != t) return false;
    }
  }
  return true;
}

std::vector<BitVec> enumerate_class_a(std::size_t n) {
  if (n % 2 != 0) throw std::invalid_argument("enumerate_class_a: n must be even");
  const std::size_t pairs = n / 2;
  std::set<std::vector<Bit>> seen;
  std::vector<BitVec> out;
  for (std::size_t ka = 0; ka <= pairs; ++ka) {
    for (std::size_t kb = 0; ka + kb <= pairs; ++kb) {
      const std::size_t kc = pairs - ka - kb;
      for (Bit a : {Bit{0}, Bit{1}}) {
        for (Bit b : {Bit{0}, Bit{1}}) {
          for (Bit c : {Bit{0}, Bit{1}}) {
            BitVec v;
            for (std::size_t i = 0; i < ka; ++i) {
              v.push_back(a);
              v.push_back(a);
            }
            for (std::size_t i = 0; i < kb; ++i) {
              v.push_back(b);
              v.push_back(static_cast<Bit>(1 - b));
            }
            for (std::size_t i = 0; i < kc; ++i) {
              v.push_back(c);
              v.push_back(c);
            }
            if (seen.insert(v.data()).second) out.push_back(std::move(v));
          }
        }
      }
    }
  }
  return out;
}

std::size_t class_a_count(std::size_t n) {
  if (n == 0 || n % 2 != 0) throw std::invalid_argument("class_a_count: n must be even >= 2");
  return n * n - n + 2;
}

std::vector<BitVec> enumerate_bisorted(std::size_t n) {
  if (n % 2 != 0) throw std::invalid_argument("enumerate_bisorted: n must be even");
  const std::size_t h = n / 2;
  std::vector<BitVec> out;
  out.reserve((h + 1) * (h + 1));
  for (std::size_t u = 0; u <= h; ++u) {
    for (std::size_t l = 0; l <= h; ++l) {
      out.push_back(BitVec::sorted_with_ones(h, u).concat(BitVec::sorted_with_ones(h, l)));
    }
  }
  return out;
}

std::vector<BitVec> enumerate_k_sorted(std::size_t n, std::size_t k) {
  if (k == 0 || n % k != 0) throw std::invalid_argument("enumerate_k_sorted: k must divide n");
  const std::size_t block = n / k;
  std::vector<BitVec> out;
  std::vector<std::size_t> ones(k, 0);
  for (;;) {
    BitVec v;
    for (std::size_t b = 0; b < k; ++b) v = v.concat(BitVec::sorted_with_ones(block, ones[b]));
    out.push_back(std::move(v));
    // odometer over (block+1)^k combinations
    std::size_t i = 0;
    while (i < k && ones[i] == block) {
      ones[i] = 0;
      ++i;
    }
    if (i == k) break;
    ++ones[i];
  }
  return out;
}

BitVec theorem1_shuffle(const BitVec& upper, const BitVec& lower) {
  if (upper.size() != lower.size()) {
    throw std::invalid_argument("theorem1_shuffle: halves must have equal size");
  }
  return upper.concat(lower).shuffle2();
}

BitVec balanced_first_stage(const BitVec& v) {
  if (v.size() % 2 != 0) throw std::invalid_argument("balanced_first_stage: odd size");
  BitVec out = v;
  const std::size_t n = v.size();
  for (std::size_t i = 0; i < n / 2; ++i) {
    const Bit a = v[i];
    const Bit b = v[n - 1 - i];
    out[i] = a & b;          // min
    out[n - 1 - i] = a | b;  // max
  }
  return out;
}

}  // namespace absort::seqclass
