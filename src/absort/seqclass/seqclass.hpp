#pragma once
// The paper's binary-sequence classes (Definitions 1-5) as executable
// predicates, plus enumerators and the structural transforms that Theorems
// 1-4 reason about.  These are the ground truth the property tests check the
// networks against.

#include <cstddef>
#include <vector>

#include "absort/util/bitvec.hpp"

namespace absort::seqclass {

/// Definition 2: all elements identical (all 0 or all 1).
/// The empty sequence is vacuously clean-sorted.
[[nodiscard]] bool is_clean_sorted(const BitVec& v) noexcept;

/// Definition 1: membership in class A_n, the regular language
///   ((00)* + (11)*) ((01)* + (10)*) ((00)* + (11)*)
/// intersected with {0,1}^n.  Size must be even (the class is built from
/// 2-bit groups); odd sizes are never members.
[[nodiscard]] bool in_class_a(const BitVec& v) noexcept;

/// Linear-time membership check (single scan over maximal pair runs); the
/// tests verify it against in_class_a exhaustively.  Use this in hot paths.
[[nodiscard]] bool in_class_a_linear(const BitVec& v) noexcept;

/// Definition 3: both halves sorted ascending.  Size must be even.
[[nodiscard]] bool is_bisorted(const BitVec& v) noexcept;

/// Definition 4: k equal-size sorted (ascending) blocks.  k must divide size.
[[nodiscard]] bool is_k_sorted(const BitVec& v, std::size_t k) noexcept;

/// Definition 5: k equal-size *clean* blocks.
[[nodiscard]] bool is_clean_k_sorted(const BitVec& v, std::size_t k) noexcept;

/// Enumerate every member of A_n (without duplicates).  |A_n| = O(n^2), so
/// this is cheap even for n in the thousands.
[[nodiscard]] std::vector<BitVec> enumerate_class_a(std::size_t n);

/// |A_n| in closed form: n^2 - n + 2 for even n >= 2.  Derivation: with
/// P = n/2 pairs, the members with all three runs nonempty contribute
/// 8 C(P-1, 2) (two types for each run, compositions of P into three
/// positive parts, segmentations recoverable from maximal runs); exactly one
/// empty clean run contributes 2 * 4(P-1); clean-only strings (at most one
/// type change) contribute 2P; the pure alternating strings 2.  Summing:
/// 4P^2 - 2P + 2 = n^2 - n + 2.
[[nodiscard]] std::size_t class_a_count(std::size_t n);

/// Enumerate every bisorted sequence of length n: (n/2+1)^2 members.
[[nodiscard]] std::vector<BitVec> enumerate_bisorted(std::size_t n);

/// Enumerate every k-sorted sequence of length n: (n/k+1)^k members
/// (intended for small k and n).
[[nodiscard]] std::vector<BitVec> enumerate_k_sorted(std::size_t n, std::size_t k);

// ---------------------------------------------------------------------------
// Structural transforms referenced by the theorems.
// ---------------------------------------------------------------------------

/// Theorem 1 setting: shuffle of the concatenation of two sorted halves.
/// Returns shuffle2(upper ++ lower); the theorem asserts the result is in A_n.
[[nodiscard]] BitVec theorem1_shuffle(const BitVec& upper, const BitVec& lower);

/// The first comparator stage of the balanced merging block: for each i in
/// [0, n/2), compare positions i and n-1-i, putting the min at i and the max
/// at n-1-i.  Theorem 2 asserts: for input in A_n, one output half is clean
/// and the other belongs to A_{n/2}.
[[nodiscard]] BitVec balanced_first_stage(const BitVec& v);

}  // namespace absort::seqclass
