#include "absort/sim/clocked_circuit.hpp"

#include <stdexcept>

namespace absort::sim {

ClockedCircuit::ClockedCircuit(netlist::Circuit comb, std::vector<std::size_t> free_pos,
                               std::vector<RegisterBinding> regs)
    : comb_(std::move(comb)), free_pos_(std::move(free_pos)), regs_(std::move(regs)) {
  std::vector<bool> claimed(comb_.num_inputs(), false);
  const auto claim = [&](std::size_t pos) {
    if (pos >= claimed.size() || claimed[pos]) {
      throw std::invalid_argument("ClockedCircuit: input position claimed twice or out of range");
    }
    claimed[pos] = true;
  };
  for (auto p : free_pos_) claim(p);
  for (const auto& r : regs_) {
    claim(r.q_input_pos);
    if (r.d >= comb_.num_wires()) throw std::invalid_argument("ClockedCircuit: bad register d");
  }
  for (bool c : claimed) {
    if (!c) throw std::invalid_argument("ClockedCircuit: unclaimed primary input");
  }
  reset();
}

void ClockedCircuit::reset() {
  state_.resize(regs_.size());
  for (std::size_t i = 0; i < regs_.size(); ++i) state_[i] = regs_[i].init;
  cycles_ = 0;
}

BitVec ClockedCircuit::step(const BitVec& free_values) {
  if (free_values.size() != free_pos_.size()) {
    throw std::invalid_argument("ClockedCircuit::step: wrong free-input count");
  }
  scratch_in_.assign(comb_.num_inputs(), 0);
  for (std::size_t i = 0; i < free_pos_.size(); ++i) scratch_in_[free_pos_[i]] = free_values[i];
  for (std::size_t i = 0; i < regs_.size(); ++i) scratch_in_[regs_[i].q_input_pos] = state_[i];
  BitVec in(comb_.num_inputs());
  for (std::size_t i = 0; i < scratch_in_.size(); ++i) in[i] = scratch_in_[i];
  const auto out = comb_.eval(in, wire_values_);
  for (std::size_t i = 0; i < regs_.size(); ++i) state_[i] = wire_values_[regs_[i].d];
  ++cycles_;
  return out;
}

}  // namespace absort::sim
