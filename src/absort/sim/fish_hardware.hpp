#pragma once
// FishHardware: the fish binary sorter (Network 3) as an actual clocked
// circuit -- registers, write enables, select counters and all.
//
// Where sorters::FishSorter models model B with a value-level simulator plus
// a cycle-accurate schedule, this class *builds the sequential hardware*:
//
//   phase 1 (k cycles)       the (n, n/k)-multiplexer selects group t, the
//                            single n/k-input mux-merger sorter sorts it, and
//                            the (n/k, n)-demultiplexer writes it into block t
//                            of the merger register bank M (per-block write
//                            enables come from a 1-to-k demux of constant 1);
//   phase 2 (lg(n/k) x k     each k-way-merger level's clean sorter streams
//    cycles)                 its k clean blocks, one per cycle, through its
//                            (m/2, m/2k)-multiplexer into its dispatch bank
//                            at the block's *rank* -- ranks are computed
//                            combinationally by prefix counters over the
//                            blocks' leading bits (the hardware equivalent of
//                            the k-input sorter the paper charges);
//   phase 3 (1 cycle)        the combinational cascade of two-way mux-mergers
//                            over the dispatch banks and the base k-input
//                            sorter produces the sorted output.
//
// The k-SWAP stages are pure combinational logic between register banks.
// The external controller (drive_sort) supplies only counters and phase
// gates, exactly the "global clock that times our steps" of Section II.

#include <cstddef>
#include <vector>

#include "absort/netlist/analyze.hpp"
#include "absort/sim/clocked_circuit.hpp"
#include "absort/sim/trace.hpp"
#include "absort/util/bitvec.hpp"

namespace absort::sim {

class FishHardware {
 public:
  /// n, k powers of two, 2 <= k <= n/2 (same shape rules as FishSorter).
  FishHardware(std::size_t n, std::size_t k);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] std::size_t levels() const noexcept { return levels_; }

  /// Clock cycles of one complete sort: k + lg(n/k)*k + 1.
  [[nodiscard]] std::size_t cycles_per_sort() const noexcept {
    return k_ + levels_ * k_ + 1;
  }

  /// Runs the full schedule on `in` and returns the sorted outputs.
  [[nodiscard]] BitVec sort(const BitVec& in);

  /// Overlapped schedule: every level's dispatch window runs concurrently
  /// (all level gates open, sharing the dispatch counter) -- legal because
  /// each level's clean blocks are combinational from the M bank, not from
  /// other levels' dispatch banks.  k + k + 1 cycles instead of
  /// k + lg(n/k)*k + 1: the hardware form of eq. (26)'s pipelining gain.
  [[nodiscard]] BitVec sort_overlapped(const BitVec& in);

  [[nodiscard]] std::size_t cycles_per_sort_overlapped() const noexcept { return 2 * k_ + 1; }

  /// Frame streaming: the merger bank M is ping-pong buffered, so while
  /// frame f dispatches from one bank the front end loads frame f+1 into the
  /// other.  Steady-state throughput is one frame per k cycles (vs 2k+1
  /// isolated); total cycles for F frames: k*(F+1) + 1.
  [[nodiscard]] std::vector<BitVec> sort_stream(const std::vector<BitVec>& frames);

  [[nodiscard]] std::size_t cycles_per_stream(std::size_t frames) const noexcept {
    return k_ * (frames + 1) + 1;
  }

  /// The underlying sequential machine (for tests/inspection).
  [[nodiscard]] const ClockedCircuit& machine() const noexcept { return cc_; }

  /// Cost/depth of the combinational datapath (includes the register-hold
  /// multiplexers and rank/write-enable control that the paper's abstract
  /// accounting does not charge -- the measured "hardware overhead" of
  /// realizing model B, reported by bench_fig7_fish).
  [[nodiscard]] netlist::CostReport datapath_report(const netlist::CostModel& m) const;

  /// A Trace laid out for this machine (control signals + outputs per
  /// cycle); attach it to record the next sort, e.g. for VCD export.
  [[nodiscard]] Trace make_trace() const;
  void attach_trace(Trace* t) noexcept { trace_ = t; }

 private:
  std::size_t n_, k_, levels_;
  // free-input layout offsets (data, front select, phase gate, dispatch
  // counter, level gates, merger-side bank select)
  std::size_t off_x_, off_fs_, off_phase1_, off_dc_, off_la_, off_bank_;
  ClockedCircuit cc_;
  Trace* trace_ = nullptr;

  ClockedCircuit build();
  BitVec step_traced(const BitVec& free);
};

}  // namespace absort::sim
