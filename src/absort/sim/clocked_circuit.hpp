#pragma once
// ClockedCircuit: a synchronous sequential circuit -- the literal realization
// of network model B ("The adaptive sorting networks under this model can be
// viewed as simple sequential or clocked circuits", Section II).
//
// A ClockedCircuit wraps a combinational Circuit whose primary inputs are
// split into *free* inputs (driven by the controller each cycle) and
// *register* outputs (state).  Each register binds a data wire `d` to one of
// the circuit's Input components: on every clock step the circuit is
// evaluated with the current state, the marked outputs are returned, and
// each register latches the value on its `d` wire.

#include <cstddef>
#include <vector>

#include "absort/netlist/circuit.hpp"

namespace absort::sim {

struct RegisterBinding {
  std::size_t q_input_pos;  ///< which primary input of the circuit is this register's Q
  netlist::WireId d;        ///< wire latched on the clock edge
  Bit init = 0;             ///< reset value
};

class ClockedCircuit {
 public:
  /// `free_pos[i]` is the primary-input position fed by element i of the
  /// per-cycle input vector.  Every input position must be claimed exactly
  /// once (by a free input or a register).
  ClockedCircuit(netlist::Circuit comb, std::vector<std::size_t> free_pos,
                 std::vector<RegisterBinding> regs);

  [[nodiscard]] std::size_t num_free_inputs() const noexcept { return free_pos_.size(); }
  [[nodiscard]] std::size_t num_registers() const noexcept { return regs_.size(); }
  [[nodiscard]] std::size_t cycles() const noexcept { return cycles_; }
  [[nodiscard]] const netlist::Circuit& combinational() const noexcept { return comb_; }
  [[nodiscard]] const std::vector<RegisterBinding>& registers() const noexcept { return regs_; }

  /// The combinational core with every register's next-state (d) wire also
  /// marked as an output -- the *observable* circuit a sequential-equivalence
  /// or optimization pass must preserve.  (Optimizing `combinational()`
  /// alone would treat all next-state logic as dead.)
  [[nodiscard]] netlist::Circuit observable_combinational() const {
    netlist::Circuit c = comb_;
    for (const auto& r : regs_) c.mark_output(r.d);
    return c;
  }

  /// Resets all registers to their init values and the cycle counter to 0.
  void reset();

  /// One clock cycle: evaluate with (free values, state), latch, and return
  /// the marked outputs as seen this cycle.
  BitVec step(const BitVec& free_values);

  /// Current register state (for inspection in tests).
  [[nodiscard]] const std::vector<Bit>& state() const noexcept { return state_; }

 private:
  netlist::Circuit comb_;
  std::vector<std::size_t> free_pos_;
  std::vector<RegisterBinding> regs_;
  std::vector<Bit> state_;
  std::vector<Bit> scratch_in_;
  std::vector<Bit> wire_values_;
  std::size_t cycles_ = 0;
};

}  // namespace absort::sim
