#include "absort/sim/fish_hardware.hpp"

#include <stdexcept>

#include "absort/blocks/mux.hpp"
#include "absort/blocks/swapper.hpp"
#include "absort/netlist/wiring.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/util/math.hpp"

namespace absort::sim {
namespace {

using netlist::Circuit;
using netlist::WireId;
namespace wiring = netlist::wiring;

// out = r + c (conditioned increment): ripple of half adders, width |r|.
// The result is truncated to |r| bits (sufficient for prefix counts < k).
std::vector<WireId> increment_if(Circuit& c, const std::vector<WireId>& r, WireId cond) {
  std::vector<WireId> out(r.size());
  WireId carry = cond;
  for (std::size_t j = 0; j < r.size(); ++j) {
    out[j] = c.xor_gate(r[j], carry);
    carry = c.and_gate(r[j], carry);
  }
  return out;
}

// a + b over equal widths, truncated to the same width (ripple; widths here
// are lg k, so cost is negligible next to the dispatch datapath).
std::vector<WireId> add_trunc(Circuit& c, const std::vector<WireId>& a,
                              const std::vector<WireId>& b) {
  std::vector<WireId> out(a.size());
  WireId carry = c.constant(0);
  for (std::size_t j = 0; j < a.size(); ++j) {
    const WireId axb = c.xor_gate(a[j], b[j]);
    out[j] = c.xor_gate(axb, carry);
    carry = c.or_gate(c.and_gate(a[j], b[j]), c.and_gate(axb, carry));
  }
  return out;
}

}  // namespace

FishHardware::FishHardware(std::size_t n, std::size_t k)
    : n_(n), k_(k), levels_(0), off_x_(0), off_fs_(0), off_phase1_(0), off_dc_(0), off_la_(0),
      off_bank_(0), cc_(build()) {}

ClockedCircuit FishHardware::build() {
  require_pow2(n_, 4, "FishHardware n");
  require_pow2(k_, 2, "FishHardware k");
  if (k_ > n_ / 2) throw std::invalid_argument("FishHardware: need k <= n/2");
  const std::size_t g = n_ / k_;
  const std::size_t lgk = ilog2(k_);
  levels_ = ilog2(n_ / k_);

  Circuit c;
  // ---- primary inputs, fixed layout -----------------------------------
  std::vector<std::size_t> free_pos;
  off_x_ = free_pos.size();
  const auto x = c.inputs(n_);
  for (std::size_t i = 0; i < n_; ++i) free_pos.push_back(i);
  off_fs_ = free_pos.size();
  const auto fs = c.inputs(lgk);
  for (std::size_t i = 0; i < lgk; ++i) free_pos.push_back(n_ + i);
  off_phase1_ = free_pos.size();
  const WireId phase1 = c.input();
  free_pos.push_back(n_ + lgk);
  off_dc_ = free_pos.size();
  const auto dc = c.inputs(lgk);
  for (std::size_t i = 0; i < lgk; ++i) free_pos.push_back(n_ + lgk + 1 + i);
  off_la_ = free_pos.size();
  const auto la = c.inputs(levels_);
  for (std::size_t i = 0; i < levels_; ++i) free_pos.push_back(n_ + 2 * lgk + 1 + i);
  off_bank_ = free_pos.size();
  const WireId bank = c.input();  // which M bank the merger reads this cycle
  free_pos.push_back(n_ + 2 * lgk + 1 + levels_);

  std::size_t next_input_pos = n_ + 2 * lgk + 2 + levels_;
  std::vector<RegisterBinding> regs;

  // Register banks: ping-pong merger inputs M0/M1 (the front end always
  // writes the bank the merger is *not* reading, which is what makes frame
  // streaming possible) and one dispatch bank per level.
  std::vector<WireId> m0_q, m1_q;
  for (std::size_t i = 0; i < n_; ++i) {
    m0_q.push_back(c.input());
    regs.push_back({next_input_pos++, netlist::kNoWire, 0});
  }
  for (std::size_t i = 0; i < n_; ++i) {
    m1_q.push_back(c.input());
    regs.push_back({next_input_pos++, netlist::kNoWire, 0});
  }
  std::vector<std::vector<WireId>> u_q(levels_);
  for (std::size_t l = 0; l < levels_; ++l) {
    const std::size_t bank_sz = (n_ >> l) / 2;
    for (std::size_t i = 0; i < bank_sz; ++i) {
      u_q[l].push_back(c.input());
      regs.push_back({next_input_pos++, netlist::kNoWire, 0});
    }
  }
  // Base lane register: the k-wide bottom of the merger cascade must be
  // latched alongside the dispatch banks, or frame streaming would mix the
  // next frame's base values into the previous frame's output.
  std::vector<WireId> base_q;
  for (std::size_t i = 0; i < k_; ++i) {
    base_q.push_back(c.input());
    regs.push_back({next_input_pos++, netlist::kNoWire, 0});
  }
  std::size_t reg_cursor = 0;  // walks `regs` in the same order as creation

  const WireId one = c.constant(1);

  // ---- phase-1 datapath: front mux -> small sorter -> demux -> M -------
  {
    const auto muxed = blocks::mux_nk(c, x, g, fs);
    const auto sorted = sorters::build_muxmerge_sorter(c, muxed);
    const auto demuxed = blocks::demux_kn(c, sorted, n_, fs);
    const auto block_en = blocks::demux_tree(c, one, fs, k_);
    const WireId not_bank = c.not_gate(bank);
    for (std::size_t i = 0; i < n_; ++i) {
      // front writes M0 when the merger reads M1 (bank = 1) and vice versa
      const WireId we0 = c.and_gate(block_en[i / g], c.and_gate(phase1, bank));
      regs[reg_cursor++].d = c.mux(m0_q[i], demuxed[i], we0);
    }
    for (std::size_t i = 0; i < n_; ++i) {
      const WireId we1 = c.and_gate(block_en[i / g], c.and_gate(phase1, not_bank));
      regs[reg_cursor++].d = c.mux(m1_q[i], demuxed[i], we1);
    }
  }

  // ---- merger chain: k-swaps + per-level clean-sorter dispatch ---------
  std::vector<WireId> cur(n_);
  for (std::size_t i = 0; i < n_; ++i) cur[i] = c.mux(m0_q[i], m1_q[i], bank);
  std::vector<std::vector<WireId>> dispatch_next(levels_);
  for (std::size_t l = 0; l < levels_; ++l) {
    const std::size_t m = n_ >> l;
    const std::size_t blk = m / k_;
    std::vector<WireId> ctrls;
    for (std::size_t b = 0; b < k_; ++b) ctrls.push_back(cur[b * blk + blk / 2]);
    const auto swapped = blocks::k_swap(c, cur, ctrls);
    const auto upper = wiring::slice(swapped, 0, m / 2);
    cur = wiring::slice(swapped, m / 2, m / 2);

    // Rank unit: prefix counters over the clean blocks' leading bits.
    const std::size_t bs = (m / 2) / k_;
    std::vector<WireId> leads;
    for (std::size_t b = 0; b < k_; ++b) leads.push_back(upper[b * bs]);
    std::vector<WireId> zero_bits(lgk, c.constant(0));
    std::vector<std::vector<WireId>> ones_before{zero_bits}, zeros_before{zero_bits};
    for (std::size_t b = 0; b < k_; ++b) {
      ones_before.push_back(increment_if(c, ones_before.back(), leads[b]));
      zeros_before.push_back(increment_if(c, zeros_before.back(), c.not_gate(leads[b])));
    }
    const auto& z_total = zeros_before[k_];  // truncated to lg k bits (mod k)
    std::vector<std::vector<WireId>> rank(k_);
    for (std::size_t b = 0; b < k_; ++b) {
      const auto one_rank = add_trunc(c, z_total, ones_before[b]);
      rank[b].resize(lgk);
      for (std::size_t j = 0; j < lgk; ++j) {
        rank[b][j] = c.mux(zeros_before[b][j], one_rank[j], leads[b]);
      }
    }
    // Select the dispatched block's rank with the dispatch counter.
    std::vector<WireId> rank_sel(lgk);
    for (std::size_t j = 0; j < lgk; ++j) {
      std::vector<WireId> lane;
      for (std::size_t b = 0; b < k_; ++b) lane.push_back(rank[b][j]);
      rank_sel[j] = blocks::mux_tree(c, lane, dc);
    }

    const auto block_sel = blocks::mux_nk(c, upper, bs, dc);
    const auto dispatched = blocks::demux_kn(c, block_sel, m / 2, rank_sel);
    const auto bank_en = blocks::demux_tree(c, one, rank_sel, k_);
    dispatch_next[l].resize(m / 2);
    for (std::size_t i = 0; i < m / 2; ++i) {
      const WireId we = c.and_gate(bank_en[i / bs], la[l]);
      dispatch_next[l][i] = c.mux(u_q[l][i], dispatched[i], we);
    }
  }
  for (std::size_t l = 0; l < levels_; ++l) {
    for (std::size_t i = 0; i < dispatch_next[l].size(); ++i) {
      regs[reg_cursor++].d = dispatch_next[l][i];
    }
  }

  // ---- base lane: sort the k-wide bottom and latch it with the dispatches
  {
    const auto base_sorted = sorters::build_muxmerge_sorter(c, cur);  // |cur| == k
    WireId any_la = la[0];
    for (std::size_t l = 1; l < levels_; ++l) any_la = c.or_gate(any_la, la[l]);
    for (std::size_t i = 0; i < k_; ++i) {
      regs[reg_cursor++].d = c.mux(base_q[i], base_sorted[i], any_la);
    }
  }

  // ---- phase-3 combinational output: mux-merger cascade over registers --
  std::vector<WireId> merged = base_q;
  for (std::size_t l = levels_; l-- > 0;) {
    merged = sorters::build_mux_merger(c, wiring::concat(u_q[l], merged));
  }
  c.mark_outputs(merged);

  return ClockedCircuit(std::move(c), std::move(free_pos), std::move(regs));
}

BitVec FishHardware::sort(const BitVec& in) {
  if (in.size() != n_) throw std::invalid_argument("FishHardware::sort: wrong input size");
  const std::size_t lgk = ilog2(k_);
  cc_.reset();
  const std::size_t nfree = cc_.num_free_inputs();
  BitVec free(nfree, 0);
  for (std::size_t i = 0; i < n_; ++i) free[off_x_ + i] = in[i];

  BitVec out;
  // phase 1: stream the k groups through the small sorter into M.
  free[off_phase1_] = 1;
  for (std::size_t t = 0; t < k_; ++t) {
    for (std::size_t j = 0; j < lgk; ++j) free[off_fs_ + j] = static_cast<Bit>((t >> j) & 1);
    out = step_traced(free);
  }
  free[off_phase1_] = 0;
  free[off_bank_] = 1;  // the frame was loaded into M1; the merger reads it
  // phase 2: per level, dispatch the k clean blocks to their ranks.
  for (std::size_t l = 0; l < levels_; ++l) {
    free[off_la_ + l] = 1;
    for (std::size_t b = 0; b < k_; ++b) {
      for (std::size_t j = 0; j < lgk; ++j) free[off_dc_ + j] = static_cast<Bit>((b >> j) & 1);
      out = step_traced(free);
    }
    free[off_la_ + l] = 0;
  }
  // phase 3: one settle cycle so the outputs reflect the final registers.
  out = step_traced(free);
  return out;
}

BitVec FishHardware::sort_overlapped(const BitVec& in) {
  if (in.size() != n_) throw std::invalid_argument("FishHardware::sort_overlapped: wrong size");
  const std::size_t lgk = ilog2(k_);
  cc_.reset();
  BitVec free(cc_.num_free_inputs(), 0);
  for (std::size_t i = 0; i < n_; ++i) free[off_x_ + i] = in[i];

  BitVec out;
  free[off_phase1_] = 1;
  for (std::size_t t = 0; t < k_; ++t) {
    for (std::size_t j = 0; j < lgk; ++j) free[off_fs_ + j] = static_cast<Bit>((t >> j) & 1);
    out = step_traced(free);
  }
  free[off_phase1_] = 0;
  free[off_bank_] = 1;  // the frame was loaded into M1; the merger reads it
  for (std::size_t l = 0; l < levels_; ++l) free[off_la_ + l] = 1;  // all levels at once
  for (std::size_t b = 0; b < k_; ++b) {
    for (std::size_t j = 0; j < lgk; ++j) free[off_dc_ + j] = static_cast<Bit>((b >> j) & 1);
    out = step_traced(free);
  }
  for (std::size_t l = 0; l < levels_; ++l) free[off_la_ + l] = 0;
  out = step_traced(free);
  return out;
}

std::vector<BitVec> FishHardware::sort_stream(const std::vector<BitVec>& frames) {
  for (const auto& f : frames) {
    if (f.size() != n_) throw std::invalid_argument("FishHardware::sort_stream: frame size");
  }
  const std::size_t lgk = ilog2(k_);
  cc_.reset();
  BitVec free(cc_.num_free_inputs(), 0);
  std::vector<BitVec> results;
  results.reserve(frames.size());
  if (frames.empty()) return results;

  const auto set_x = [&](const BitVec& f) {
    for (std::size_t i = 0; i < n_; ++i) free[off_x_ + i] = f[i];
  };
  const auto set_fs = [&](std::size_t t) {
    for (std::size_t j = 0; j < lgk; ++j) free[off_fs_ + j] = static_cast<Bit>((t >> j) & 1);
  };
  const auto set_dc = [&](std::size_t b) {
    for (std::size_t j = 0; j < lgk; ++j) free[off_dc_ + j] = static_cast<Bit>((b >> j) & 1);
  };

  // Prologue: load frame 0 into M1 (merger side parked on M0).
  free[off_phase1_] = 1;
  free[off_bank_] = 0;
  set_x(frames[0]);
  for (std::size_t t = 0; t < k_; ++t) {
    set_fs(t);
    (void)step_traced(free);
  }

  // Steady state: frame f dispatches (all level gates open) from its bank
  // while frame f+1 streams into the other.
  for (std::size_t f = 0; f < frames.size(); ++f) {
    free[off_bank_] = static_cast<Bit>(f % 2 == 0 ? 1 : 0);
    const bool loading = f + 1 < frames.size();
    free[off_phase1_] = loading ? 1 : 0;
    if (loading) set_x(frames[f + 1]);
    for (std::size_t l = 0; l < levels_; ++l) free[off_la_ + l] = 1;
    for (std::size_t b = 0; b < k_; ++b) {
      set_dc(b);
      set_fs(b);  // front and dispatch share the period's counter
      const auto out = step_traced(free);
      if (f > 0 && b == 0) results.push_back(out);  // previous frame's result
    }
  }
  // Epilogue: one settle cycle exposes the last frame's outputs.
  free[off_phase1_] = 0;
  for (std::size_t l = 0; l < levels_; ++l) free[off_la_ + l] = 0;
  results.push_back(step_traced(free));
  return results;
}

netlist::CostReport FishHardware::datapath_report(const netlist::CostModel& m) const {
  return netlist::analyze(cc_.combinational(), m);
}

Trace FishHardware::make_trace() const {
  std::vector<TraceSignal> sig;
  sig.push_back({"x", n_});
  sig.push_back({"front_sel", std::max<std::size_t>(1, ilog2(k_))});
  sig.push_back({"phase1", 1});
  sig.push_back({"dispatch_sel", std::max<std::size_t>(1, ilog2(k_))});
  sig.push_back({"level_active", levels_});
  sig.push_back({"bank", 1});
  sig.push_back({"out", n_});
  return Trace(std::move(sig));
}

BitVec FishHardware::step_traced(const BitVec& free) {
  auto out = cc_.step(free);
  if (trace_ != nullptr) trace_->record(free.concat(out));
  return out;
}

}  // namespace absort::sim
