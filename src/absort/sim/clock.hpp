#pragma once
// Schedule: critical-path time accounting for network model B.
//
// Model B (Section II) assumes "a global clock that times our steps for
// moving various groups of inputs through (n,k)-multiplexer and (k,m)-
// demultiplexer blocks".  Sorting time is measured in unit gate delays: a
// step that traverses a sub-network of depth d takes d units, sequential
// steps add, and independent branches contribute the max of their finish
// times.  A Schedule records the steps so benches and examples can print the
// timeline, and its critical path is the sorting time T(n,k) of eqs. (22)-(26).

#include <cstddef>
#include <string>
#include <vector>

namespace absort::sim {

struct Step {
  std::string label;
  double start = 0;
  double finish = 0;
};

class Schedule {
 public:
  /// Records a step beginning at `start` and lasting `duration` unit delays;
  /// returns its finish time.
  double step(std::string label, double start, double duration) {
    steps_.push_back({std::move(label), start, start + duration});
    if (steps_.back().finish > critical_path_) critical_path_ = steps_.back().finish;
    return start + duration;
  }

  [[nodiscard]] double critical_path() const noexcept { return critical_path_; }
  [[nodiscard]] const std::vector<Step>& steps() const noexcept { return steps_; }

 private:
  std::vector<Step> steps_;
  double critical_path_ = 0;
};

}  // namespace absort::sim
