#pragma once
// Cycle traces for model-B machines, exportable as VCD (value change dump)
// for any waveform viewer.  A Trace is a sequence of frames (cycle, named
// signal groups); FishHardware::sort can record one.

#include <cstddef>
#include <string>
#include <vector>

#include "absort/util/bitvec.hpp"

namespace absort::sim {

struct TraceSignal {
  std::string name;
  std::size_t width = 1;
};

class Trace {
 public:
  /// Declares the signal layout; every frame must supply exactly
  /// sum(width) bits, concatenated in declaration order.
  explicit Trace(std::vector<TraceSignal> signals);

  [[nodiscard]] std::size_t frame_width() const noexcept { return width_; }
  [[nodiscard]] std::size_t num_frames() const noexcept { return frames_.size(); }

  void record(const BitVec& frame);

  /// VCD rendering (one timestep per frame).
  [[nodiscard]] std::string to_vcd(const std::string& module_name = "absort") const;

 private:
  std::vector<TraceSignal> signals_;
  std::size_t width_ = 0;
  std::vector<BitVec> frames_;
};

}  // namespace absort::sim
