#include "absort/sim/trace.hpp"

#include <sstream>
#include <stdexcept>

namespace absort::sim {
namespace {

// VCD identifier for signal i: printable ASCII starting at '!'.
std::string vcd_id(std::size_t i) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + i % 94));
    i /= 94;
  } while (i != 0);
  return id;
}

}  // namespace

Trace::Trace(std::vector<TraceSignal> signals) : signals_(std::move(signals)) {
  for (const auto& s : signals_) {
    if (s.width == 0) throw std::invalid_argument("Trace: zero-width signal " + s.name);
    width_ += s.width;
  }
}

void Trace::record(const BitVec& frame) {
  if (frame.size() != width_) throw std::invalid_argument("Trace::record: frame width mismatch");
  frames_.push_back(frame);
}

std::string Trace::to_vcd(const std::string& module_name) const {
  std::ostringstream os;
  os << "$timescale 1ns $end\n$scope module " << module_name << " $end\n";
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    os << "$var wire " << signals_[i].width << ' ' << vcd_id(i) << ' ' << signals_[i].name
       << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";
  for (std::size_t f = 0; f < frames_.size(); ++f) {
    os << '#' << f << '\n';
    std::size_t off = 0;
    for (std::size_t i = 0; i < signals_.size(); ++i) {
      const auto& sig = signals_[i];
      bool changed = f == 0;
      if (!changed) {
        for (std::size_t b = 0; b < sig.width && !changed; ++b) {
          changed = frames_[f][off + b] != frames_[f - 1][off + b];
        }
      }
      if (changed) {
        if (sig.width == 1) {
          os << int(frames_[f][off]) << vcd_id(i) << '\n';
        } else {
          os << 'b';
          for (std::size_t b = sig.width; b-- > 0;) os << int(frames_[f][off + b]);
          os << ' ' << vcd_id(i) << '\n';
        }
      }
      off += sig.width;
    }
  }
  return os.str();
}

}  // namespace absort::sim
