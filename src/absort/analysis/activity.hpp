#pragma once
// Switch-activity analysis: for a given circuit and input distribution, how
// many steering elements actually *act* (comparators that exchange, switches
// that cross, muxes whose select is high)?  A cheap dynamic-power proxy that
// separates the adaptive networks (few, condition-driven exchanges) from the
// oblivious comparator networks (data-independent wiring, data-dependent
// exchanges everywhere) -- reported by bench_ablation.

#include <array>
#include <cstddef>

#include "absort/netlist/circuit.hpp"
#include "absort/util/rng.hpp"

namespace absort::analysis {

struct ActivityReport {
  /// Per component Kind: how many instances were "active" summed over all
  /// evaluated inputs (exchange performed / control high / select nonzero).
  std::array<double, netlist::kNumKinds> active{};
  std::array<std::size_t, netlist::kNumKinds> population{};  ///< instances per kind
  std::size_t samples = 0;

  /// Mean fraction of steering elements active per evaluation.
  [[nodiscard]] double steering_activity() const;
};

/// Evaluates `samples` uniform random inputs and tallies activity.
[[nodiscard]] ActivityReport measure_activity(const netlist::Circuit& c, Xoshiro256& rng,
                                              std::size_t samples);

}  // namespace absort::analysis
