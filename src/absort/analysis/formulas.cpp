#include "absort/analysis/formulas.hpp"

#include <cmath>

#include "absort/sorters/fish_sorter.hpp"
#include "absort/util/math.hpp"

namespace absort::analysis {
namespace {

double dl(std::size_t n) { return static_cast<double>(n); }
double l(std::size_t n) { return lg(dl(n)); }
double ll(std::size_t n) { return lg(std::max(2.0, l(n))); }

// Paterson's improvement of AKS; the constant is the commonly quoted ~6100.
constexpr double kAksDepthConstant = 6100.0;

}  // namespace

Complexity batcher_binary_sorter(std::size_t n) {
  const double p = l(n);
  const double depth = p * (p + 1) / 2;
  return {dl(n) / 4 * (p * p - p + 4) - 1, depth, depth};
}

Complexity prefix_sorter_paper(std::size_t n) {
  const double depth = 3 * l(n) * l(n) + 2 * l(n) * ll(n);
  return {3 * dl(n) * l(n), depth, depth};
}

Complexity muxmerge_sorter_paper(std::size_t n) {
  // Depth: the recurrence D(n) = D(n/2) + 2 lg n, D(2) = 1, solved exactly
  // = lg^2 n + lg n - 1 (the construction measures lg^2 n; the paper's
  // per-level bound 2 lg n is loose by the "-1" per level).
  const double depth = l(n) * l(n) + l(n) - 1;
  return {4 * dl(n) * l(n), depth, depth};
}

Complexity fish_sorter_paper(std::size_t n, std::size_t k) {
  Complexity c;
  c.cost = sorters::FishSorter::paper_cost(n, k);
  c.depth = sorters::FishSorter::paper_depth_bound(n, k);
  // eq. (25): pipelined time O(lg^2(n/k)) + O(k) + O(lg k) + O(lg n lg k).
  const double nk = dl(n) / dl(k);
  c.time = 2 * lg(nk) * lg(nk) + dl(k) + lg(dl(k)) + 2 * l(n) * lg(dl(k));
  return c;
}

Complexity aks_model(std::size_t n) {
  const double depth = kAksDepthConstant * l(n);
  return {dl(n) / 2 * depth, depth, depth};
}

Complexity columnsort_timemux(std::size_t n, bool pipelined) {
  // lg^2 n columns of r = n/lg^2 n elements; one r-input Batcher sorter,
  // (n,r)-mux and (r,n)-demux per sorting step (cost comparable to the fish
  // sorter's front end), 4 sorting passes.
  const double s = l(n) * l(n);
  const double r = dl(n) / s;
  const auto batcher = batcher_binary_sorter(static_cast<std::size_t>(std::max(2.0, r)));
  Complexity c;
  c.cost = batcher.cost + 2 * dl(n);  // one sorter + mux/demux trees
  c.depth = batcher.depth + 2 * lg(s);
  const double pass_unpipelined = s * batcher.depth;       // s columns, one at a time
  const double pass_pipelined = batcher.depth + (s - 1);   // streamed
  c.time = 4 * (pipelined ? pass_pipelined : pass_unpipelined) + 4 * 2 * lg(s);
  return c;
}

Complexity columnsort_network(std::size_t n) {
  // lg^2 n parallel Batcher sorters of n/lg^2 n inputs, 4 passes.
  const double s = l(n) * l(n);
  const double r = dl(n) / s;
  const auto batcher = batcher_binary_sorter(static_cast<std::size_t>(std::max(2.0, r)));
  return {4 * s * batcher.cost, 4 * batcher.depth, 4 * batcher.depth};
}

Complexity benes_permuter(std::size_t n) {
  // Switches n/2 (2 lg n - 1) plus O(n lg n) routing processors of bit-level
  // cost lg n each [18]; permutation time O(lg^4 n / lg lg n).
  return {dl(n) / 2 * (2 * l(n) - 1) + dl(n) * l(n) * l(n), 2 * l(n) - 1,
          l(n) * l(n) * l(n) * l(n) / ll(n)};
}

Complexity batcher_permuter(std::size_t n) {
  // Sorting lg n-bit addresses: every comparator becomes a lg n-bit
  // bit-serial comparator => cost and time gain a lg n factor over the
  // binary sorter.
  const auto b = batcher_binary_sorter(n);
  return {b.cost * l(n), b.depth * l(n), b.time * l(n)};
}

Complexity jan_oruc_permuter(std::size_t n) {
  return {dl(n) * l(n) * l(n), l(n) * l(n), l(n) * l(n) * ll(n)};
}

Complexity this_paper_permuter_fish(std::size_t n) {
  // eq. (26): C_rp(n) = sum over levels of the fish sorter's O(n) cost
  // = O(n lg n); eq. (27): time = lg n levels x O(lg^2 n) = O(lg^3 n).
  Complexity acc;
  for (std::size_t w = n; w >= 4; w /= 2) {
    const std::size_t k = sorters::FishSorter::default_k(w);
    const auto f = fish_sorter_paper(w, k);
    acc.cost += dl(n) / dl(w) * f.cost;
    acc.depth += f.depth;
    acc.time += f.time;
  }
  // windows of size 2: plain comparators
  acc.cost += dl(n) / 2;
  acc.depth += 1;
  acc.time += 1;
  return acc;
}

Complexity this_paper_permuter_muxmerge(std::size_t n) {
  Complexity acc;
  for (std::size_t w = n; w >= 2; w /= 2) {
    const auto s = muxmerge_sorter_paper(w);
    acc.cost += dl(n) / dl(w) * s.cost;
    acc.depth += s.depth;
    acc.time += s.time;
  }
  return acc;
}

double aks_depth_crossover_lg_n() {
  // Solve kAksDepthConstant * L = L^2 + L - 1 for L = lg n.
  double lo = 1, hi = 1e6;
  const auto f = [](double L) { return (L * L + L - 1) - kAksDepthConstant * L; };
  for (int it = 0; it < 200; ++it) {
    const double mid = (lo + hi) / 2;
    if (f(mid) < 0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace absort::analysis
