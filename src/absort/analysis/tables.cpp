#include "absort/analysis/tables.hpp"

#include <iomanip>
#include <sstream>

namespace absort::analysis {

std::vector<Table2Row> table2(std::size_t n) {
  std::vector<Table2Row> rows;
  rows.push_back({"Benes [4] (+routing model [18])", "O(n lg^2 n)", "O(lg n)",
                  "O(lg^4 n / lg lg n)", benes_permuter(n), std::nullopt});
  rows.push_back({"Batcher sorting network [3]", "O(n lg^3 n)", "O(lg^3 n)", "O(lg^3 n)",
                  batcher_permuter(n), std::nullopt});
  rows.push_back({"Koppelman-Oruc [13]", "O(n lg^3 n)", "O(lg^3 n)", "O(lg^3 n)",
                  batcher_permuter(n), std::nullopt});
  rows.push_back({"Jan-Oruc radix permuter [11]", "O(n lg^2 n)", "O(lg^2 n)",
                  "O(lg^2 n lg lg n)", jan_oruc_permuter(n), std::nullopt});
  rows.push_back({"This paper (fish sorters)", "O(n lg n)", "O(lg^3 n)", "O(lg^3 n)",
                  this_paper_permuter_fish(n), std::nullopt});
  rows.push_back({"This paper (mux-merger sorters)", "O(n lg^2 n)", "O(lg^3 n)", "O(lg^3 n)",
                  this_paper_permuter_muxmerge(n), std::nullopt});
  return rows;
}

std::string render_table2(const std::vector<Table2Row>& rows, std::size_t n) {
  std::ostringstream os;
  os << "Table II: permutation network complexities in bit level (n = " << n << ")\n";
  os << std::left << std::setw(34) << "construction" << std::setw(14) << "cost"
     << std::setw(12) << "depth" << std::setw(22) << "perm. time" << std::setw(14)
     << "cost@n" << std::setw(12) << "time@n" << std::setw(26) << "measured cost/time@n" << "\n";
  os << std::string(134, '-') << "\n";
  for (const auto& r : rows) {
    os << std::left << std::setw(34) << r.construction << std::setw(14) << r.cost_expr
       << std::setw(12) << r.depth_expr << std::setw(22) << r.time_expr;
    os << std::right << std::setw(12) << std::fixed << std::setprecision(0) << r.model.cost
       << "  " << std::setw(10) << r.model.time << "  ";
    if (r.measured) {
      os << std::setw(12) << r.measured->cost << " / " << std::setw(9) << r.measured->time;
    } else {
      os << std::setw(24) << "(analytic only)";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace absort::analysis
