#pragma once
// Crossover and scaling sweeps between complexity models (experiment E-X2:
// the abstract's claims about Batcher and AKS).

#include <cstddef>
#include <functional>
#include <vector>

namespace absort::analysis {

struct RatioPoint {
  std::size_t n;
  double a = 0;
  double b = 0;
  double ratio = 0;  ///< a / b
};

/// Evaluates two size->value models at n = 2^lo_exp .. 2^hi_exp.
[[nodiscard]] std::vector<RatioPoint> ratio_sweep(
    const std::function<double(std::size_t)>& a, const std::function<double(std::size_t)>& b,
    std::size_t lo_exp, std::size_t hi_exp);

/// Smallest n = 2^e in [2^lo_exp, 2^hi_exp] with a(n) < b(n); 0 if none.
[[nodiscard]] std::size_t first_crossover(const std::function<double(std::size_t)>& a,
                                          const std::function<double(std::size_t)>& b,
                                          std::size_t lo_exp, std::size_t hi_exp);

}  // namespace absort::analysis
