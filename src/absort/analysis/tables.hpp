#pragma once
// Table II generator: "Complexities of various permutation network designs
// in bit level" -- the paper's closing comparison, regenerated with the
// printed order expressions and their evaluated values at a concrete n,
// alongside *measured* values for the rows we actually built.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "absort/analysis/formulas.hpp"

namespace absort::analysis {

struct Table2Row {
  std::string construction;  ///< design + citation, as the paper lists it
  std::string cost_expr;     ///< printed asymptotic cost
  std::string depth_expr;
  std::string time_expr;     ///< printed permutation time
  Complexity model;          ///< the expressions evaluated at n
  std::optional<Complexity> measured;  ///< from our built network, when we built it
};

/// The analytic rows of Table II at size n (measured fields empty; the bench
/// fills them for the rows this library implements).
[[nodiscard]] std::vector<Table2Row> table2(std::size_t n);

/// Fixed-width text rendering (printed by bench_tab2_permuters).
[[nodiscard]] std::string render_table2(const std::vector<Table2Row>& rows, std::size_t n);

}  // namespace absort::analysis
