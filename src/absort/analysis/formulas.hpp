#pragma once
// Closed-form complexity models: the paper's equations (1)-(27) plus the
// literature baselines it compares against (Batcher, AKS, columnsort,
// Benes).  Everything is in bit-level units (constant-fanin gates / unit
// gate delays), matching Section II's accounting, so the benches can print
// "paper formula vs measured" side by side.

#include <cstddef>

namespace absort::analysis {

/// Bit-level cost / depth / sorting-or-routing time of one construction.
struct Complexity {
  double cost = 0;
  double depth = 0;
  double time = 0;
};

// ---- binary sorters --------------------------------------------------------

/// Batcher's odd-even merge network on binary inputs:
/// cost (n/4)(lg^2 n - lg n + 4) - 1, depth = time = lg n (lg n + 1)/2.
Complexity batcher_binary_sorter(std::size_t n);

/// Network 1 (prefix sorter), Section III.A's solution:
/// cost 3 n lg n + O(lg^2 n), depth = time = 3 lg^2 n + 2 lg n lg lg n.
Complexity prefix_sorter_paper(std::size_t n);

/// Network 2 (mux-merger sorter): cost 4 n lg n; depth = time = the solved
/// recurrence Theta(lg^2 n) (the printed "2 lg n" is a typo; we evaluate the
/// recurrence D(n) = D(n/2) + 2 lg n exactly).
Complexity muxmerge_sorter_paper(std::size_t n);

/// Network 3 (fish sorter) at parameter k: cost per eq. (17), depth per
/// eq. (18); time = pipelined eq. (25)-(26).
Complexity fish_sorter_paper(std::size_t n, std::size_t k);

/// The AKS sorting network with Paterson's constants: depth ~ 6100 lg n,
/// cost ~ (n/2) * depth comparators.  The abstract's claim -- our networks
/// beat AKS "until n becomes extremely large" -- is quantified by
/// aks_crossover_lg_n() below.
Complexity aks_model(std::size_t n);

/// Time-multiplexed columnsort (Section III.C discussion): lg^2 n columns of
/// n / lg^2 n elements, each sorting step streamed through one Batcher
/// sorter: cost O(n), time O(lg^4 n) unpipelined / O(lg^2 n) pipelined.
/// `pipelined` selects which time is reported.
Complexity columnsort_timemux(std::size_t n, bool pipelined);

/// Non-multiplexed binary columnsort (lg^2 n parallel Batcher sorters):
/// cost O(n lg^2 n) -- the paper contrasts this with the mux-merger's
/// O(n lg n).
Complexity columnsort_network(std::size_t n);

// ---- permutation networks (Table II rows) ----------------------------------

/// Benes network including the bit-level cost of its routing processors
/// ([18]): cost O(n lg^2 n), depth O(lg n), time O(lg^4 n / lg lg n).
Complexity benes_permuter(std::size_t n);

/// Batcher-based permutation network: cost O(n lg^3 n), time O(lg^3 n).
Complexity batcher_permuter(std::size_t n);

/// Jan-Oruc radix permuter [11]: cost O(n lg^2 n), time O(lg^2 n lg lg n).
Complexity jan_oruc_permuter(std::size_t n);

/// This paper's permuter with fish sorters (eqs. 26-27): cost O(n lg n),
/// time O(lg^3 n); packet-switched.
Complexity this_paper_permuter_fish(std::size_t n);

/// This paper's permuter with mux-merger sorters: cost O(n lg^2 n),
/// time O(lg^3 n); circuit-switched.
Complexity this_paper_permuter_muxmerge(std::size_t n);

// ---- crossover -------------------------------------------------------------

/// Smallest lg n at which the AKS binary sorter's *depth* drops below the
/// mux-merger sorter's depth (its cost never does: 6100/2 n lg n vs 4 n lg n).
/// Returns lg n (about 3000+, i.e., n ~ 2^3000 -- "extremely large").
double aks_depth_crossover_lg_n();

}  // namespace absort::analysis
