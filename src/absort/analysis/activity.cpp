#include "absort/analysis/activity.hpp"

#include <vector>

namespace absort::analysis {

using netlist::Kind;

double ActivityReport::steering_activity() const {
  double act = 0, pop = 0;
  for (Kind k : {Kind::Comparator, Kind::Switch2x2, Kind::Switch4x4, Kind::Mux21,
                 Kind::Demux12}) {
    act += active[static_cast<std::size_t>(k)];
    pop += static_cast<double>(population[static_cast<std::size_t>(k)]);
  }
  if (pop == 0 || samples == 0) return 0;
  return act / (pop * static_cast<double>(samples));
}

ActivityReport measure_activity(const netlist::Circuit& c, Xoshiro256& rng,
                                std::size_t samples) {
  ActivityReport r;
  r.samples = samples;
  r.population = c.inventory();
  std::vector<Bit> w;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto in = workload::random_bits(rng, c.num_inputs());
    (void)c.eval(in, w);
    for (const auto& comp : c.components()) {
      bool active = false;
      switch (comp.kind) {
        case Kind::Comparator:
          // an exchange happened iff (upper, lower) was (1, 0)
          active = w[comp.in[0]] == 1 && w[comp.in[1]] == 0;
          break;
        case Kind::Switch2x2: active = w[comp.in[2]] != 0; break;
        case Kind::Mux21: active = w[comp.in[2]] != 0; break;
        case Kind::Demux12: active = w[comp.in[1]] != 0; break;
        case Kind::Switch4x4: active = (w[comp.in[4]] | w[comp.in[5]]) != 0; break;
        default: break;
      }
      if (active) r.active[static_cast<std::size_t>(comp.kind)] += 1;
    }
  }
  return r;
}

}  // namespace absort::analysis
