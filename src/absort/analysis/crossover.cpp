#include "absort/analysis/crossover.hpp"

namespace absort::analysis {

std::vector<RatioPoint> ratio_sweep(const std::function<double(std::size_t)>& a,
                                    const std::function<double(std::size_t)>& b,
                                    std::size_t lo_exp, std::size_t hi_exp) {
  std::vector<RatioPoint> out;
  for (std::size_t e = lo_exp; e <= hi_exp; ++e) {
    const std::size_t n = std::size_t{1} << e;
    const double av = a(n), bv = b(n);
    out.push_back({n, av, bv, bv != 0 ? av / bv : 0});
  }
  return out;
}

std::size_t first_crossover(const std::function<double(std::size_t)>& a,
                            const std::function<double(std::size_t)>& b, std::size_t lo_exp,
                            std::size_t hi_exp) {
  for (std::size_t e = lo_exp; e <= hi_exp; ++e) {
    const std::size_t n = std::size_t{1} << e;
    if (a(n) < b(n)) return n;
  }
  return 0;
}

}  // namespace absort::analysis
