#include "absort/service/stats_json.hpp"

#include <cstdarg>
#include <cstdio>

namespace absort::service {

namespace {

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

std::string histogram_json(const HistogramSnapshot& h) {
  std::string out;
  append(out, "{\"total\": %llu, \"mean\": %.1f, \"p50\": %llu, \"p90\": %llu, \"p99\": %llu, ",
         static_cast<unsigned long long>(h.total), h.mean(),
         static_cast<unsigned long long>(h.percentile(0.50)),
         static_cast<unsigned long long>(h.percentile(0.90)),
         static_cast<unsigned long long>(h.percentile(0.99)));
  out += "\"buckets\": [";
  bool first = true;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    if (h.counts[b] == 0) continue;
    append(out, "%s{\"le\": %llu, \"count\": %llu}", first ? "" : ", ",
           static_cast<unsigned long long>(HistogramSnapshot::bucket_upper(b)),
           static_cast<unsigned long long>(h.counts[b]));
    first = false;
  }
  out += "]}";
  return out;
}

std::string stats_json(const ServiceStats& s) {
  std::string out = "{\n";
  const auto counter = [&](const char* k, std::uint64_t v) {
    append(out, "  \"%s\": %llu,\n", k, static_cast<unsigned long long>(v));
  };
  counter("submitted", s.submitted);
  counter("completed", s.completed);
  counter("rejected", s.rejected);
  counter("expired", s.expired);
  counter("stopped", s.stopped);
  counter("failed", s.failed);
  counter("unroutable", s.unroutable);
  counter("batches", s.batches);
  counter("compiled", s.compiled);
  counter("jit_compiles", s.jit_compiles);
  counter("jit_cache_hits", s.jit_cache_hits);
  counter("jit_fallbacks", s.jit_fallbacks);
  counter("steals", s.steals);
  counter("stolen_requests", s.stolen_requests);
  counter("retries", s.retries);
  counter("quarantined", s.quarantined);
  counter("degraded", s.degraded);
  counter("self_check_failed", s.self_check_failed);
  counter("cheap_checks", s.cheap_checks);
  counter("unrecoverable", s.unrecoverable);
  counter("shedded", s.shedded);
  counter("decode_errors", s.decode_errors);
  counter("duplicate_ids", s.duplicate_ids);
  counter("connections_accepted", s.connections_accepted);
  counter("connections_dropped", s.connections_dropped);
  counter("bytes_in", s.bytes_in);
  counter("bytes_out", s.bytes_out);
  counter("shards", s.per_shard.size());
  out += "  \"per_shard\": [";
  for (std::size_t i = 0; i < s.per_shard.size(); ++i) {
    const ShardStats& sh = s.per_shard[i];
    append(out,
           "%s{\"routed\": %llu, \"batches\": %llu, \"steals\": %llu, "
           "\"stolen_requests\": %llu, \"queue_depth\": %llu, \"lane_occupancy\": %.4f}",
           i == 0 ? "" : ", ", static_cast<unsigned long long>(sh.routed),
           static_cast<unsigned long long>(sh.batches),
           static_cast<unsigned long long>(sh.steals),
           static_cast<unsigned long long>(sh.stolen_requests),
           static_cast<unsigned long long>(sh.queue_depth), sh.lane_occupancy);
  }
  out += "],\n";
  out += "  \"engines\": [";
  for (std::size_t i = 0; i < s.engines.size(); ++i) {
    const EngineInfo& e = s.engines[i];
    append(out, "%s{\"sorter\": \"%s\", \"n\": %llu, \"shard\": %llu, \"backend\": \"%s\"}",
           i == 0 ? "" : ", ", e.sorter.c_str(), static_cast<unsigned long long>(e.n),
           static_cast<unsigned long long>(e.shard), netlist::to_string(e.backend));
  }
  out += "],\n";
  out += "  \"batch_size\": " + histogram_json(s.batch_size) + ",\n";
  out += "  \"queue_wait_us\": " + histogram_json(s.queue_wait_us) + ",\n";
  out += "  \"eval_us\": " + histogram_json(s.eval_us) + "\n}";
  return out;
}

}  // namespace absort::service
