#include "absort/service/sort_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>

#include "absort/netlist/transform.hpp"
#include "absort/service/fault_injection.hpp"

namespace absort::service {

namespace {

std::uint64_t us_between(SortService::Clock::time_point a, SortService::Clock::time_point b) {
  const auto d = std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

}  // namespace

SortService::SortService(ServiceOptions opts) : opts_(std::move(opts)) {
  opts_.shards = std::max<std::size_t>(1, opts_.shards);
  opts_.queue_capacity = std::max<std::size_t>(1, opts_.queue_capacity);
  opts_.max_batch_lanes = std::max<std::size_t>(1, opts_.max_batch_lanes);
  opts_.compile_attempts = std::max<std::size_t>(1, opts_.compile_attempts);
  opts_.quarantine_after = std::max<std::size_t>(1, opts_.quarantine_after);
  // A plan that perturbs outputs makes the *complete* self-check mandatory:
  // Status::Ok must always mean a correct result, and the Cheap probe cannot
  // see corruption that forges a sorted output with the wrong popcount.
  if (opts_.fault_plan && opts_.fault_plan->corrupts_outputs()) {
    opts_.self_check = SelfCheck::Full;
  }
  // Divide the machine: N shards each running engines at the default worker
  // count would stack N full-size BatchRunner pools onto the same cores.
  if (opts_.shards > 1 && opts_.batch.threads == 0) {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    opts_.batch.threads = std::max<std::size_t>(1, hw / opts_.shards);
  }
  jit_baseline_ = netlist::jit_counters();

  states_.reserve(opts_.shards);
  for (std::size_t i = 0; i < opts_.shards; ++i) {
    states_.push_back(std::make_unique<ShardState>());
  }

  ExecutorOptions eo;
  eo.shards = opts_.shards;
  eo.steal_threshold = opts_.steal_threshold;
  eo.pin_threads = opts_.pin_threads;
  eo.queue_capacity = opts_.queue_capacity;
  eo.max_batch_lanes = opts_.max_batch_lanes;
  eo.max_linger = opts_.max_linger;
  eo.overflow = opts_.overflow == ServiceOptions::Overflow::Reject
                    ? ExecutorOptions::Overflow::Reject
                    : ExecutorOptions::Overflow::Block;
  exec_ = std::make_unique<Executor>(
      eo, [this](std::size_t shard, const Key& key, std::vector<Request>& batch) {
        process(shard, key, batch);
      });
}

SortService::~SortService() { stop(); }

void SortService::stop() { exec_->stop(); }

std::size_t SortService::route(const Key& key) const noexcept {
  return static_cast<std::size_t>(hash_name_n(key.first->name, key.second) %
                                  exec_->shard_count());
}

std::size_t SortService::shard_of(std::string_view sorter, std::size_t n) const {
  const auto* entry = sorters::find_sorter(sorter);
  if (!entry) {
    throw std::invalid_argument("SortService: unknown sorter '" + std::string(sorter) +
                                "'; available: " + sorters::sorter_names());
  }
  return route(Key{entry, n});
}

std::future<SortResult> SortService::submit(std::string_view sorter, BitVec input,
                                            Clock::time_point deadline) {
  const auto* entry = sorters::find_sorter(sorter);
  if (!entry) {
    throw std::invalid_argument("SortService: unknown sorter '" + std::string(sorter) +
                                "'; available: " + sorters::sorter_names());
  }
  Request req{entry, input.size(), std::move(input), std::promise<SortResult>{}, deadline, {}};
  auto future = req.promise.get_future();

  switch (exec_->submit(route(req.key()), req)) {
    case Admit::Accepted:
      submitted_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Admit::QueueFull:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      req.promise.set_value(SortResult{Status::QueueFull, {}});
      break;
    case Admit::Expired:
      expired_.fetch_add(1, std::memory_order_relaxed);
      req.promise.set_value(SortResult{Status::Expired, {}});
      break;
    case Admit::Stopped:
      stopped_.fetch_add(1, std::memory_order_relaxed);
      req.promise.set_value(SortResult{Status::Stopped, {}});
      break;
  }
  return future;
}

SortResult SortService::sort(std::string_view sorter, BitVec input) {
  return submit(sorter, std::move(input)).get();
}

SortService::Engine* SortService::ensure_engine(std::size_t shard, const Key& key,
                                                std::exception_ptr& factory_error) {
  auto& engines = states_[shard]->engines;
  auto it = engines.find(key);
  if (it == engines.end()) it = engines.emplace(key, Engine{}).first;
  Engine& e = it->second;

  if (!e.sorter) {
    try {
      e.sorter = key.first->factory(key.second);
    } catch (...) {
      // A factory failure is a deterministic configuration error (bad n for
      // this sorter): no fallback exists, so it surfaces as an exception --
      // and the next identical request will fail identically.
      factory_error = std::current_exception();
      return nullptr;
    }
  }

  // Consult the global ladder (cold path: once per micro-batch).  Parole
  // counts batches the key served per-vector on *any* shard; a quarantine
  // any shard recorded is honored here before the engine could run.
  bool quarantined;
  {
    std::lock_guard lk(ladder_m_);
    Ladder& L = ladder_[key];
    if (L.quarantined && L.parole > 0 && --L.parole == 0) {
      L.quarantined = false;
      L.strikes = 0;
    }
    quarantined = L.quarantined;
  }
  if (quarantined) {
    // Drop this shard's engine (and its worker pool): a key another shard
    // caught misbehaving must not keep a live batch path anywhere.
    e.batch.reset();
    return &e;
  }

  if (!e.batch) {
    // Rung 1: compile with capped exponential backoff.  The fault plan can
    // make an attempt throw; real make_batch_sorter failures retry the same
    // way.  Persistent failure quarantines the key onto the per-vector path
    // instead of failing requests.
    auto* plan = opts_.fault_plan.get();
    auto backoff = opts_.compile_backoff;
    for (std::size_t attempt = 0; attempt < opts_.compile_attempts && !e.batch; ++attempt) {
      if (attempt > 0) {
        retries_.fetch_add(1, std::memory_order_relaxed);
        if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, opts_.compile_backoff_cap);
      }
      try {
        if (plan && plan->fail_compile(key.first->name, key.second)) {
          throw InjectedFault(std::string("injected compile failure: ") + key.first->name +
                              " n=" + std::to_string(key.second));
        }
        e.batch = e.sorter->make_batch_sorter(opts_.batch);
      } catch (...) {
        // swallowed: the ladder answers requests either way
      }
    }
    if (e.batch) {
      compiled_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard lk(engines_m_);
      engine_infos_.push_back(
          EngineInfo{key.first->name, key.second, shard, e.batch->backend()});
    } else {
      std::lock_guard lk(ladder_m_);
      Ladder& L = ladder_[key];
      if (!L.quarantined) {
        L.quarantined = true;
        L.parole = opts_.probation;
        quarantined_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return &e;
}

void SortService::strike(Engine& e, const Key& key) {
  std::lock_guard lk(ladder_m_);
  Ladder& L = ladder_[key];
  if (L.quarantined) {
    e.batch.reset();  // another shard quarantined it mid-batch; fall in line
    return;
  }
  if (++L.strikes >= opts_.quarantine_after) {
    L.quarantined = true;
    L.parole = opts_.probation;
    e.batch.reset();  // drop the engine (and its worker pool) until parole
    quarantined_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SortService::ensure_probe(Engine& e) {
  if (e.probe_tried) return;
  e.probe_tried = true;
  try {
    if (auto block = e.sorter->self_check_probe()) {
      e.probe = std::make_unique<netlist::BitSlicedEvaluator>(*block, opts_.batch);
    }
  } catch (...) {
    // The check must never take serving down: a sorter whose probe fails to
    // compile simply stays on the Full oracle (e.probe remains null).
    e.probe.reset();
  }
}

BitVec SortService::per_vector(Engine& e, const BitVec& in) {
  if (e.sorter->is_combinational()) {
    if (!e.fallback) {
      if (!e.circuit) e.circuit.emplace(e.sorter->build_circuit());
      e.fallback = std::make_unique<netlist::LevelizedCircuit>(*e.circuit);
    }
    return e.fallback->eval(in);
  }
  return e.sorter->sort(in);
}

void SortService::process(std::size_t shard, const Key& key, std::vector<Request>& batch) {
  ShardState& st = *states_[shard];
  std::vector<BitVec>& inputs = st.inputs;
  std::vector<BitVec>& outputs = st.outputs;
  const auto formed = Clock::now();
  // Cancel what already missed its deadline; collect the rest.
  inputs.clear();
  std::vector<Request*> live;
  live.reserve(batch.size());
  for (auto& r : batch) {
    queue_wait_h_.record(us_between(r.enqueued, formed));
    if (r.deadline <= formed) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      r.promise.set_value(SortResult{Status::Expired, {}});
      continue;
    }
    live.push_back(&r);
    inputs.push_back(std::move(r.input));
  }
  if (live.empty()) return;

  std::exception_ptr factory_error;
  Engine* engine = ensure_engine(shard, key, factory_error);
  if (!engine) {
    failed_.fetch_add(live.size(), std::memory_order_relaxed);
    for (auto* r : live) r->promise.set_exception(factory_error);
    return;
  }
  Engine& e = *engine;
  auto* plan = opts_.fault_plan.get();

  outputs.resize(inputs.size());
  // Rung 2: the batch path, possibly perturbed by the fault plan.  Any
  // exception here is a strike, never an answer -- the per-vector rung below
  // still owns the requests.  ensure_engine cleared e.batch if the key is
  // quarantined anywhere.
  bool batch_ok = false;
  if (e.batch) {
    const auto t0 = Clock::now();
    try {
      std::optional<netlist::Fault> injected;
      if (plan) {
        const auto spike = plan->latency_spike();
        if (spike.count() > 0) std::this_thread::sleep_for(spike);
        if (plan->fail_eval(key.first->name, key.second)) {
          throw InjectedFault(std::string("injected eval failure: ") + key.first->name +
                              " n=" + std::to_string(key.second));
        }
        if (e.sorter->is_combinational()) {
          if (!e.circuit) e.circuit.emplace(e.sorter->build_circuit());
          injected = plan->pick_circuit_fault(*e.circuit);
        }
      }
      if (injected) {
        // Structural fault: the whole batch rides the faulted circuit, as it
        // would through broken steering hardware.
        for (std::size_t i = 0; i < live.size(); ++i) {
          outputs[i] = netlist::eval_with_fault(*e.circuit, inputs[i], *injected);
        }
      } else {
        e.batch->run(inputs, outputs);
      }
      if (plan) {
        for (const std::size_t lane : plan->pick_corrupt_lanes(live.size())) {
          plan->corrupt_bits(outputs[lane].data());
        }
      }
      batch_ok = true;
    } catch (...) {
      strike(e, key);
    }
    eval_h_.record(us_between(t0, Clock::now()));
  }

  // Rung 3: per-vector repair/fallback.  With batch_ok, the optional
  // self-check (Full: per-lane 0-1 oracle; Cheap: bit-sliced structural
  // probe, falling back to the oracle for probe-less sorters) re-evaluates
  // only mismatched lanes; without it, the whole batch retreats to the
  // per-vector path.  Rung 4: a lane whose fallback also threw is answered
  // Status::Failed.
  std::size_t degraded = 0;
  std::vector<std::uint8_t> lane_failed(live.size(), 0);
  const auto repair = [&](std::size_t i) {
    try {
      outputs[i] = per_vector(e, inputs[i]);
      ++degraded;
    } catch (...) {
      lane_failed[i] = 1;
    }
  };
  if (batch_ok && opts_.self_check != SelfCheck::Off) {
    if (opts_.self_check == SelfCheck::Cheap) ensure_probe(e);
    bool struck = false;
    if (opts_.self_check == SelfCheck::Cheap && e.probe) {
      // One probe pass per kBlockLanes outputs: L(y) != y flags the lane
      // (the probe's 0-1 fixpoints are exactly the sorted vectors).  The
      // comparison happens in the packed word domain -- no unpack, which is
      // where the tier's discount over the per-lane Full oracle comes from.
      auto& mm = st.probe_mismatch;
      mm.assign(wordvec::num_passes(live.size()), 0);
      for (std::size_t first = 0; first < live.size(); first += netlist::kBlockLanes) {
        const std::size_t lanes = std::min(netlist::kBlockLanes, live.size() - first);
        e.probe->check_fixpoint_lane_block(
            {outputs.data(), live.size()}, first, lanes, st.probe_scratch,
            {mm.data() + first / wordvec::kLanes, wordvec::num_passes(lanes)});
      }
      cheap_checks_.fetch_add(live.size(), std::memory_order_relaxed);
      for (std::size_t i = 0; i < live.size(); ++i) {
        if ((mm[i / wordvec::kLanes] >> (i % wordvec::kLanes)) & 1) {
          self_check_failed_.fetch_add(1, std::memory_order_relaxed);
          struck = true;
          repair(i);
        }
      }
    } else {
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (!outputs[i].is_sorted_ascending() ||
            outputs[i].count_ones() != inputs[i].count_ones()) {
          self_check_failed_.fetch_add(1, std::memory_order_relaxed);
          struck = true;
          repair(i);
        }
      }
    }
    if (struck) strike(e, key);
  } else if (!batch_ok) {
    for (std::size_t i = 0; i < live.size(); ++i) repair(i);
  }

  auto& c = exec_->counters(shard);
  batches_.fetch_add(1, std::memory_order_relaxed);
  c.batches.fetch_add(1, std::memory_order_relaxed);
  c.lanes.fetch_add(live.size(), std::memory_order_relaxed);
  batch_size_h_.record(live.size());
  degraded_.fetch_add(degraded, std::memory_order_relaxed);
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (lane_failed[i]) {
      unrecoverable_.fetch_add(1, std::memory_order_relaxed);
      live[i]->promise.set_value(SortResult{Status::Failed, {}});
    } else {
      completed_.fetch_add(1, std::memory_order_relaxed);
      live[i]->promise.set_value(SortResult{Status::Ok, std::move(outputs[i])});
    }
  }
}

ServiceStats SortService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.stopped = stopped_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.compiled = compiled_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.self_check_failed = self_check_failed_.load(std::memory_order_relaxed);
  s.cheap_checks = cheap_checks_.load(std::memory_order_relaxed);
  s.unrecoverable = unrecoverable_.load(std::memory_order_relaxed);
  const auto jit = netlist::jit_counters();
  s.jit_compiles = jit.compiles - jit_baseline_.compiles;
  s.jit_cache_hits = jit.cache_hits - jit_baseline_.cache_hits;
  s.jit_fallbacks = jit.fallbacks - jit_baseline_.fallbacks;
  {
    std::lock_guard lk(engines_m_);
    s.engines = engine_infos_;
  }
  const std::size_t nsh = exec_->shard_count();
  s.per_shard.reserve(nsh);
  for (std::size_t i = 0; i < nsh; ++i) {
    const auto& c = exec_->counters(i);
    ShardStats ss;
    ss.routed = c.routed.load(std::memory_order_relaxed);
    ss.batches = c.batches.load(std::memory_order_relaxed);
    ss.steals = c.steals.load(std::memory_order_relaxed);
    ss.stolen_requests = c.stolen_requests.load(std::memory_order_relaxed);
    ss.queue_depth = exec_->queue_depth(i);
    const std::uint64_t lanes = c.lanes.load(std::memory_order_relaxed);
    ss.lane_occupancy =
        ss.batches == 0
            ? 0.0
            : static_cast<double>(lanes) /
                  (static_cast<double>(ss.batches) * static_cast<double>(opts_.max_batch_lanes));
    s.steals += ss.steals;
    s.stolen_requests += ss.stolen_requests;
    s.per_shard.push_back(ss);
  }
  s.batch_size = batch_size_h_.snapshot();
  s.queue_wait_us = queue_wait_h_.snapshot();
  s.eval_us = eval_h_.snapshot();
  return s;
}

}  // namespace absort::service
