#include "absort/service/sort_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "absort/netlist/transform.hpp"
#include "absort/service/fault_injection.hpp"

namespace absort::service {

namespace {

std::uint64_t us_between(SortService::Clock::time_point a, SortService::Clock::time_point b) {
  const auto d = std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::QueueFull: return "queue-full";
    case Status::Expired: return "expired";
    case Status::Stopped: return "stopped";
    case Status::Failed: return "failed";
  }
  return "?";
}

SortService::SortService(ServiceOptions opts) : opts_(opts) {
  opts_.queue_capacity = std::max<std::size_t>(1, opts_.queue_capacity);
  opts_.max_batch_lanes = std::max<std::size_t>(1, opts_.max_batch_lanes);
  opts_.compile_attempts = std::max<std::size_t>(1, opts_.compile_attempts);
  opts_.quarantine_after = std::max<std::size_t>(1, opts_.quarantine_after);
  // A plan that perturbs outputs makes the self-check mandatory: Status::Ok
  // must always mean a correct result.
  if (opts_.fault_plan && opts_.fault_plan->corrupts_outputs()) opts_.self_check = true;
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

SortService::~SortService() { stop(); }

void SortService::stop() {
  {
    std::lock_guard lk(m_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  // call_once also blocks late callers until the join completes, so stop()
  // has returned-means-drained semantics for every caller.
  std::call_once(join_once_, [this] { dispatcher_.join(); });
}

std::future<SortResult> SortService::submit(std::string_view sorter, BitVec input,
                                            Clock::time_point deadline) {
  const auto* entry = sorters::find_sorter(sorter);
  if (!entry) {
    throw std::invalid_argument("SortService: unknown sorter '" + std::string(sorter) +
                                "'; available: " + sorters::sorter_names());
  }
  std::promise<SortResult> promise;
  auto future = promise.get_future();
  const auto reject = [&](Status s, std::atomic<std::uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
    promise.set_value(SortResult{s, {}});
    return std::move(future);
  };

  std::unique_lock lk(m_);
  if (stopping_) return reject(Status::Stopped, stopped_);
  if (queue_.size() >= opts_.queue_capacity) {
    if (opts_.overflow == ServiceOptions::Overflow::Reject) {
      return reject(Status::QueueFull, rejected_);
    }
    // Block policy: wait for a slot, but never past the request's deadline.
    // (An unbounded deadline waits plainly: wait_until at time_point::max()
    // can overflow inside the standard library and time out immediately.)
    const auto have_slot = [&] { return stopping_ || queue_.size() < opts_.queue_capacity; };
    bool got_slot = true;
    if (deadline == Clock::time_point::max()) {
      cv_space_.wait(lk, have_slot);
    } else {
      got_slot = cv_space_.wait_until(lk, deadline, have_slot);
    }
    if (stopping_) return reject(Status::Stopped, stopped_);
    if (!got_slot) return reject(Status::Expired, expired_);
  }
  const auto now = Clock::now();
  queue_.push_back(Request{entry, input.size(), std::move(input), std::move(promise), deadline,
                           now});
  submitted_.fetch_add(1, std::memory_order_relaxed);
  lk.unlock();
  cv_work_.notify_one();
  return future;
}

SortResult SortService::sort(std::string_view sorter, BitVec input) {
  return submit(sorter, std::move(input)).get();
}

void SortService::take_matching(const Key& key, std::vector<Request>& batch) {
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < opts_.max_batch_lanes;) {
    if (it->entry == key.first && it->n == key.second) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void SortService::dispatch_loop() {
  std::vector<Request> batch;
  std::vector<BitVec> inputs;   // reused across micro-batches
  std::vector<BitVec> outputs;  // reused across micro-batches
  for (;;) {
    batch.clear();
    Key key{};
    {
      std::unique_lock lk(m_);
      cv_work_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      key = Key{queue_.front().entry, queue_.front().n};
      take_matching(key, batch);
      // Linger for same-key stragglers: worth one pass through the engine
      // only if the batch is not already full.  The budget is anchored at
      // the oldest request's enqueue time (so a request never waits more
      // than max_linger total) and clipped to the earliest deadline in the
      // batch.  Skipped entirely while draining.
      if (!stopping_ && opts_.max_linger.count() > 0 &&
          batch.size() < opts_.max_batch_lanes) {
        auto until = batch.front().enqueued + opts_.max_linger;
        for (const auto& r : batch) until = std::min(until, r.deadline);
        while (!stopping_ && batch.size() < opts_.max_batch_lanes) {
          if (cv_work_.wait_until(lk, until) == std::cv_status::timeout) break;
          take_matching(key, batch);
        }
      }
    }
    cv_space_.notify_all();  // extraction freed queue slots
    process(key, batch, inputs, outputs);
  }
}

SortService::Engine* SortService::ensure_engine(const Key& key,
                                                std::exception_ptr& factory_error) {
  auto it = engines_.find(key);
  if (it == engines_.end()) it = engines_.emplace(key, Engine{}).first;
  Engine& e = it->second;

  if (!e.sorter) {
    try {
      e.sorter = key.first->factory(key.second);
    } catch (...) {
      // A factory failure is a deterministic configuration error (bad n for
      // this sorter): no fallback exists, so it surfaces as an exception --
      // and the next identical request will fail identically.
      factory_error = std::current_exception();
      return nullptr;
    }
  }

  // Parole: a quarantined key sits out `probation` batches on the per-vector
  // path, then gets its strikes cleared and the batch path retried.
  if (e.quarantined && e.parole > 0 && --e.parole == 0) {
    e.quarantined = false;
    e.strikes = 0;
  }

  if (!e.batch && !e.quarantined) {
    // Rung 1: compile with capped exponential backoff.  The fault plan can
    // make an attempt throw; real make_batch_sorter failures retry the same
    // way.  Persistent failure quarantines the key onto the per-vector path
    // instead of failing requests.
    auto* plan = opts_.fault_plan.get();
    auto backoff = opts_.compile_backoff;
    for (std::size_t attempt = 0; attempt < opts_.compile_attempts && !e.batch; ++attempt) {
      if (attempt > 0) {
        retries_.fetch_add(1, std::memory_order_relaxed);
        if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, opts_.compile_backoff_cap);
      }
      try {
        if (plan && plan->fail_compile(key.first->name, key.second)) {
          throw InjectedFault(std::string("injected compile failure: ") + key.first->name +
                              " n=" + std::to_string(key.second));
        }
        e.batch = e.sorter->make_batch_sorter(opts_.batch);
      } catch (...) {
        // swallowed: the ladder answers requests either way
      }
    }
    if (e.batch) {
      compiled_.fetch_add(1, std::memory_order_relaxed);
    } else {
      e.quarantined = true;
      e.parole = opts_.probation;
      quarantined_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return &e;
}

void SortService::strike(Engine& e) {
  if (e.quarantined) return;
  if (++e.strikes >= opts_.quarantine_after) {
    e.quarantined = true;
    e.parole = opts_.probation;
    e.batch.reset();  // drop the engine (and its worker pool) until parole
    quarantined_.fetch_add(1, std::memory_order_relaxed);
  }
}

BitVec SortService::per_vector(Engine& e, const BitVec& in) {
  if (e.sorter->is_combinational()) {
    if (!e.fallback) {
      if (!e.circuit) e.circuit.emplace(e.sorter->build_circuit());
      e.fallback = std::make_unique<netlist::LevelizedCircuit>(*e.circuit);
    }
    return e.fallback->eval(in);
  }
  return e.sorter->sort(in);
}

void SortService::process(const Key& key, std::vector<Request>& batch,
                          std::vector<BitVec>& inputs, std::vector<BitVec>& outputs) {
  const auto formed = Clock::now();
  // Cancel what already missed its deadline; collect the rest.
  inputs.clear();
  std::vector<Request*> live;
  live.reserve(batch.size());
  for (auto& r : batch) {
    queue_wait_h_.record(us_between(r.enqueued, formed));
    if (r.deadline <= formed) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      r.promise.set_value(SortResult{Status::Expired, {}});
      continue;
    }
    live.push_back(&r);
    inputs.push_back(std::move(r.input));
  }
  if (live.empty()) return;

  std::exception_ptr factory_error;
  Engine* engine = ensure_engine(key, factory_error);
  if (!engine) {
    failed_.fetch_add(live.size(), std::memory_order_relaxed);
    for (auto* r : live) r->promise.set_exception(factory_error);
    return;
  }
  Engine& e = *engine;
  auto* plan = opts_.fault_plan.get();

  outputs.resize(inputs.size());
  // Rung 2: the batch path, possibly perturbed by the fault plan.  Any
  // exception here is a strike, never an answer -- the per-vector rung below
  // still owns the requests.
  bool batch_ok = false;
  if (e.batch && !e.quarantined) {
    const auto t0 = Clock::now();
    try {
      std::optional<netlist::Fault> injected;
      if (plan) {
        const auto spike = plan->latency_spike();
        if (spike.count() > 0) std::this_thread::sleep_for(spike);
        if (plan->fail_eval(key.first->name, key.second)) {
          throw InjectedFault(std::string("injected eval failure: ") + key.first->name +
                              " n=" + std::to_string(key.second));
        }
        if (e.sorter->is_combinational()) {
          if (!e.circuit) e.circuit.emplace(e.sorter->build_circuit());
          injected = plan->pick_circuit_fault(*e.circuit);
        }
      }
      if (injected) {
        // Structural fault: the whole batch rides the faulted circuit, as it
        // would through broken steering hardware.
        for (std::size_t i = 0; i < live.size(); ++i) {
          outputs[i] = netlist::eval_with_fault(*e.circuit, inputs[i], *injected);
        }
      } else {
        e.batch->run(inputs, outputs);
      }
      if (plan) {
        for (const std::size_t lane : plan->pick_corrupt_lanes(live.size())) {
          plan->corrupt_bits(outputs[lane].data());
        }
      }
      batch_ok = true;
    } catch (...) {
      strike(e);
    }
    eval_h_.record(us_between(t0, Clock::now()));
  }

  // Rung 3: per-vector repair/fallback.  With batch_ok, the optional
  // self-check re-evaluates only mismatched lanes (sorted + population count
  // is a complete correctness oracle for 0-1 outputs); without it, the whole
  // batch retreats to the per-vector path.  Rung 4: a lane whose fallback
  // also threw is answered Status::Failed.
  std::size_t degraded = 0;
  std::vector<std::uint8_t> lane_failed(live.size(), 0);
  const auto repair = [&](std::size_t i) {
    try {
      outputs[i] = per_vector(e, inputs[i]);
      ++degraded;
    } catch (...) {
      lane_failed[i] = 1;
    }
  };
  if (batch_ok && opts_.self_check) {
    bool struck = false;
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (!outputs[i].is_sorted_ascending() ||
          outputs[i].count_ones() != inputs[i].count_ones()) {
        self_check_failed_.fetch_add(1, std::memory_order_relaxed);
        struck = true;
        repair(i);
      }
    }
    if (struck) strike(e);
  } else if (!batch_ok) {
    for (std::size_t i = 0; i < live.size(); ++i) repair(i);
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_size_h_.record(live.size());
  degraded_.fetch_add(degraded, std::memory_order_relaxed);
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (lane_failed[i]) {
      unrecoverable_.fetch_add(1, std::memory_order_relaxed);
      live[i]->promise.set_value(SortResult{Status::Failed, {}});
    } else {
      completed_.fetch_add(1, std::memory_order_relaxed);
      live[i]->promise.set_value(SortResult{Status::Ok, std::move(outputs[i])});
    }
  }
}

ServiceStats SortService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.stopped = stopped_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.compiled = compiled_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.self_check_failed = self_check_failed_.load(std::memory_order_relaxed);
  s.unrecoverable = unrecoverable_.load(std::memory_order_relaxed);
  s.batch_size = batch_size_h_.snapshot();
  s.queue_wait_us = queue_wait_h_.snapshot();
  s.eval_us = eval_h_.snapshot();
  return s;
}

}  // namespace absort::service
