#include "absort/service/sort_service.hpp"

#include <algorithm>
#include <stdexcept>

namespace absort::service {

namespace {

std::uint64_t us_between(SortService::Clock::time_point a, SortService::Clock::time_point b) {
  const auto d = std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::QueueFull: return "queue-full";
    case Status::Expired: return "expired";
    case Status::Stopped: return "stopped";
  }
  return "?";
}

SortService::SortService(ServiceOptions opts) : opts_(opts) {
  opts_.queue_capacity = std::max<std::size_t>(1, opts_.queue_capacity);
  opts_.max_batch_lanes = std::max<std::size_t>(1, opts_.max_batch_lanes);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

SortService::~SortService() { stop(); }

void SortService::stop() {
  {
    std::lock_guard lk(m_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  // call_once also blocks late callers until the join completes, so stop()
  // has returned-means-drained semantics for every caller.
  std::call_once(join_once_, [this] { dispatcher_.join(); });
}

std::future<SortResult> SortService::submit(std::string_view sorter, BitVec input,
                                            Clock::time_point deadline) {
  const auto* entry = sorters::find_sorter(sorter);
  if (!entry) {
    throw std::invalid_argument("SortService: unknown sorter '" + std::string(sorter) +
                                "'; available: " + sorters::sorter_names());
  }
  std::promise<SortResult> promise;
  auto future = promise.get_future();
  const auto reject = [&](Status s, std::atomic<std::uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
    promise.set_value(SortResult{s, {}});
    return std::move(future);
  };

  std::unique_lock lk(m_);
  if (stopping_) return reject(Status::Stopped, stopped_);
  if (queue_.size() >= opts_.queue_capacity) {
    if (opts_.overflow == ServiceOptions::Overflow::Reject) {
      return reject(Status::QueueFull, rejected_);
    }
    // Block policy: wait for a slot, but never past the request's deadline.
    // (An unbounded deadline waits plainly: wait_until at time_point::max()
    // can overflow inside the standard library and time out immediately.)
    const auto have_slot = [&] { return stopping_ || queue_.size() < opts_.queue_capacity; };
    bool got_slot = true;
    if (deadline == Clock::time_point::max()) {
      cv_space_.wait(lk, have_slot);
    } else {
      got_slot = cv_space_.wait_until(lk, deadline, have_slot);
    }
    if (stopping_) return reject(Status::Stopped, stopped_);
    if (!got_slot) return reject(Status::Expired, expired_);
  }
  const auto now = Clock::now();
  queue_.push_back(Request{entry, input.size(), std::move(input), std::move(promise), deadline,
                           now});
  submitted_.fetch_add(1, std::memory_order_relaxed);
  lk.unlock();
  cv_work_.notify_one();
  return future;
}

SortResult SortService::sort(std::string_view sorter, BitVec input) {
  return submit(sorter, std::move(input)).get();
}

void SortService::take_matching(const Key& key, std::vector<Request>& batch) {
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < opts_.max_batch_lanes;) {
    if (it->entry == key.first && it->n == key.second) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void SortService::dispatch_loop() {
  std::vector<Request> batch;
  std::vector<BitVec> inputs;   // reused across micro-batches
  std::vector<BitVec> outputs;  // reused across micro-batches
  for (;;) {
    batch.clear();
    Key key{};
    {
      std::unique_lock lk(m_);
      cv_work_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      key = Key{queue_.front().entry, queue_.front().n};
      take_matching(key, batch);
      // Linger for same-key stragglers: worth one pass through the engine
      // only if the batch is not already full.  The budget is anchored at
      // the oldest request's enqueue time (so a request never waits more
      // than max_linger total) and clipped to the earliest deadline in the
      // batch.  Skipped entirely while draining.
      if (!stopping_ && opts_.max_linger.count() > 0 &&
          batch.size() < opts_.max_batch_lanes) {
        auto until = batch.front().enqueued + opts_.max_linger;
        for (const auto& r : batch) until = std::min(until, r.deadline);
        while (!stopping_ && batch.size() < opts_.max_batch_lanes) {
          if (cv_work_.wait_until(lk, until) == std::cv_status::timeout) break;
          take_matching(key, batch);
        }
      }
    }
    cv_space_.notify_all();  // extraction freed queue slots
    process(key, batch, inputs, outputs);
  }
}

void SortService::process(const Key& key, std::vector<Request>& batch,
                          std::vector<BitVec>& inputs, std::vector<BitVec>& outputs) {
  const auto formed = Clock::now();
  // Cancel what already missed its deadline; collect the rest.
  inputs.clear();
  std::vector<Request*> live;
  live.reserve(batch.size());
  for (auto& r : batch) {
    queue_wait_h_.record(us_between(r.enqueued, formed));
    if (r.deadline <= formed) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      r.promise.set_value(SortResult{Status::Expired, {}});
      continue;
    }
    live.push_back(&r);
    inputs.push_back(std::move(r.input));
  }
  if (live.empty()) return;

  const auto fail_all = [&](std::exception_ptr e) {
    failed_.fetch_add(live.size(), std::memory_order_relaxed);
    for (auto* r : live) r->promise.set_exception(e);
  };

  // Per-(sorter, n) engine cache: compile on first sight, reuse forever.
  auto it = engines_.find(key);
  if (it == engines_.end()) {
    Engine e;
    try {
      e.sorter = key.first->factory(key.second);
      e.batch = e.sorter->make_batch_sorter(opts_.batch);
    } catch (...) {
      fail_all(std::current_exception());
      return;
    }
    compiled_.fetch_add(1, std::memory_order_relaxed);
    it = engines_.emplace(key, std::move(e)).first;
  }

  outputs.resize(inputs.size());
  const auto t0 = Clock::now();
  try {
    it->second.batch->run(inputs, outputs);
  } catch (...) {
    fail_all(std::current_exception());
    return;
  }
  eval_h_.record(us_between(t0, Clock::now()));
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_size_h_.record(live.size());
  completed_.fetch_add(live.size(), std::memory_order_relaxed);
  for (std::size_t i = 0; i < live.size(); ++i) {
    live[i]->promise.set_value(SortResult{Status::Ok, std::move(outputs[i])});
  }
}

ServiceStats SortService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.stopped = stopped_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.compiled = compiled_.load(std::memory_order_relaxed);
  s.batch_size = batch_size_h_.snapshot();
  s.queue_wait_us = queue_wait_h_.snapshot();
  s.eval_us = eval_h_.snapshot();
  return s;
}

}  // namespace absort::service
