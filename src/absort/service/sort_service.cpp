#include "absort/service/sort_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#if defined(__linux__) && defined(__GLIBC__)
#include <pthread.h>
#include <sched.h>
#endif

#include "absort/netlist/transform.hpp"
#include "absort/service/fault_injection.hpp"

namespace absort::service {

namespace {

std::uint64_t us_between(SortService::Clock::time_point a, SortService::Clock::time_point b) {
  const auto d = std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

/// How often an empty shard re-scans siblings for steal opportunities while
/// at least one of them is backlogged.  Idle shards with no backlogged
/// sibling do a plain (poll-free) cv wait instead.
constexpr std::chrono::microseconds kStealPoll{100};

/// splitmix64 finalizer: full-avalanche mix for the affinity hash.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// FNV-1a over the sorter name so routing is stable across runs (a pointer
/// hash would reshuffle shards with every ASLR draw).
std::uint64_t hash_key(std::string_view name, std::size_t n) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char ch : name) {
    h ^= static_cast<std::uint8_t>(ch);
    h *= 0x100000001B3ULL;
  }
  return mix64(h ^ (static_cast<std::uint64_t>(n) * 0x9E3779B97F4A7C15ULL));
}

/// Best-effort dispatcher pinning; a no-op where pthread_setaffinity_np is
/// unavailable or the process affinity mask forbids the core.
void pin_to_core(std::size_t index) {
#if defined(__linux__) && defined(__GLIBC__)
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(index % hw), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof set, &set);
#else
  (void)index;
#endif
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::QueueFull: return "queue-full";
    case Status::Expired: return "expired";
    case Status::Stopped: return "stopped";
    case Status::Failed: return "failed";
  }
  return "?";
}

SortService::SortService(ServiceOptions opts) : opts_(std::move(opts)) {
  opts_.shards = std::max<std::size_t>(1, opts_.shards);
  opts_.queue_capacity = std::max<std::size_t>(1, opts_.queue_capacity);
  opts_.max_batch_lanes = std::max<std::size_t>(1, opts_.max_batch_lanes);
  opts_.compile_attempts = std::max<std::size_t>(1, opts_.compile_attempts);
  opts_.quarantine_after = std::max<std::size_t>(1, opts_.quarantine_after);
  // A plan that perturbs outputs makes the self-check mandatory: Status::Ok
  // must always mean a correct result.
  if (opts_.fault_plan && opts_.fault_plan->corrupts_outputs()) opts_.self_check = true;
  // Divide the machine: N shards each running engines at the default worker
  // count would stack N full-size BatchRunner pools onto the same cores.
  if (opts_.shards > 1 && opts_.batch.threads == 0) {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    opts_.batch.threads = std::max<std::size_t>(1, hw / opts_.shards);
  }
  jit_baseline_ = netlist::jit_counters();

  shards_.reserve(opts_.shards);
  for (std::size_t i = 0; i < opts_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i));
  }
  // Dispatchers start only after every shard exists: thieves scan shards_.
  for (auto& sh : shards_) {
    Shard* p = sh.get();
    p->dispatcher = std::thread([this, p] { dispatch_loop(*p); });
  }
}

SortService::~SortService() { stop(); }

void SortService::stop() {
  for (auto& sh : shards_) {
    {
      std::lock_guard lk(sh->m);
      sh->stopping = true;
    }
    sh->cv_work.notify_all();
    sh->cv_space.notify_all();
  }
  // call_once also blocks late callers until the join completes, so stop()
  // has returned-means-drained semantics for every caller.  A thief holding
  // a stolen batch answers it before seeing stopping, so joins cover steals
  // in flight.
  std::call_once(join_once_, [this] {
    for (auto& sh : shards_) sh->dispatcher.join();
  });
}

std::size_t SortService::route(const Key& key) const noexcept {
  return static_cast<std::size_t>(hash_key(key.first->name, key.second) % shards_.size());
}

std::size_t SortService::shard_of(std::string_view sorter, std::size_t n) const {
  const auto* entry = sorters::find_sorter(sorter);
  if (!entry) {
    throw std::invalid_argument("SortService: unknown sorter '" + std::string(sorter) +
                                "'; available: " + sorters::sorter_names());
  }
  return route(Key{entry, n});
}

std::future<SortResult> SortService::submit(std::string_view sorter, BitVec input,
                                            Clock::time_point deadline) {
  const auto* entry = sorters::find_sorter(sorter);
  if (!entry) {
    throw std::invalid_argument("SortService: unknown sorter '" + std::string(sorter) +
                                "'; available: " + sorters::sorter_names());
  }
  std::promise<SortResult> promise;
  auto future = promise.get_future();
  const auto reject = [&](Status s, std::atomic<std::uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
    promise.set_value(SortResult{s, {}});
    return std::move(future);
  };

  const Key key{entry, input.size()};
  const std::size_t idx = route(key);
  Shard& sh = *shards_[idx];

  std::unique_lock lk(sh.m);
  if (sh.stopping) return reject(Status::Stopped, stopped_);
  if (sh.queue.size() >= opts_.queue_capacity) {
    if (opts_.overflow == ServiceOptions::Overflow::Reject) {
      return reject(Status::QueueFull, rejected_);
    }
    // Block policy: wait for a slot on this shard, but never past the
    // request's deadline.  (An unbounded deadline waits plainly: wait_until
    // at time_point::max() can overflow inside the standard library and time
    // out immediately.)
    const auto have_slot = [&] { return sh.stopping || sh.queue.size() < opts_.queue_capacity; };
    bool got_slot = true;
    if (deadline == Clock::time_point::max()) {
      sh.cv_space.wait(lk, have_slot);
    } else {
      got_slot = sh.cv_space.wait_until(lk, deadline, have_slot);
    }
    if (sh.stopping) return reject(Status::Stopped, stopped_);
    if (!got_slot) return reject(Status::Expired, expired_);
  }
  const auto now = Clock::now();
  sh.queue.push_back(Request{entry, input.size(), std::move(input), std::move(promise), deadline,
                             now});
  const std::size_t depth = sh.queue.size();
  sh.depth.store(depth, std::memory_order_relaxed);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  sh.c.routed.fetch_add(1, std::memory_order_relaxed);
  lk.unlock();
  sh.cv_work.notify_one();
  // Backlogged: poke one round-robin sibling so an idle shard starts its
  // steal scan instead of sleeping through the imbalance.
  if (opts_.steal_threshold > 0 && shards_.size() > 1 && depth >= opts_.steal_threshold) {
    const std::size_t t = next_poke_.fetch_add(1, std::memory_order_relaxed) % (shards_.size() - 1);
    shards_[(idx + 1 + t) % shards_.size()]->cv_work.notify_one();
  }
  return future;
}

SortResult SortService::sort(std::string_view sorter, BitVec input) {
  return submit(sorter, std::move(input)).get();
}

void SortService::take_matching(Shard& sh, const Key& key, std::vector<Request>& batch) {
  for (auto it = sh.queue.begin();
       it != sh.queue.end() && batch.size() < opts_.max_batch_lanes;) {
    if (it->entry == key.first && it->n == key.second) {
      batch.push_back(std::move(*it));
      it = sh.queue.erase(it);
    } else {
      ++it;
    }
  }
  sh.depth.store(sh.queue.size(), std::memory_order_relaxed);
}

bool SortService::sibling_backlogged(const Shard& self) const {
  for (const auto& sh : shards_) {
    if (sh.get() == &self) continue;
    if (sh->depth.load(std::memory_order_relaxed) >= opts_.steal_threshold) return true;
  }
  return false;
}

bool SortService::try_steal(Shard& thief, Key& key, std::vector<Request>& batch) {
  const std::size_t nsh = shards_.size();
  for (std::size_t off = 1; off < nsh; ++off) {
    Shard& victim = *shards_[(thief.index + off) % nsh];
    // Cheap pre-check on the lock-free depth mirror; confirmed under the
    // victim's lock (another thief, or the victim itself, may have drained
    // it in between).  Only the victim's lock is ever held, so steals can
    // never deadlock against submits, dispatch, or other steals.
    if (victim.depth.load(std::memory_order_relaxed) < opts_.steal_threshold) continue;
    std::unique_lock lk(victim.m);
    if (victim.queue.size() < opts_.steal_threshold || victim.queue.empty()) continue;
    key = Key{victim.queue.front().entry, victim.queue.front().n};
    take_matching(victim, key, batch);
    lk.unlock();
    victim.cv_space.notify_all();  // extraction freed the victim's slots
    thief.c.steals.fetch_add(1, std::memory_order_relaxed);
    thief.c.stolen_requests.fetch_add(batch.size(), std::memory_order_relaxed);
    return true;
  }
  return false;
}

void SortService::dispatch_loop(Shard& sh) {
  if (opts_.pin_threads) pin_to_core(sh.index);
  std::vector<Request> batch;
  std::vector<BitVec> inputs;   // reused across micro-batches (per-shard arena)
  std::vector<BitVec> outputs;  // reused across micro-batches (per-shard arena)
  const bool can_steal = opts_.steal_threshold > 0 && shards_.size() > 1;
  for (;;) {
    batch.clear();
    Key key{};
    bool stolen = false;
    {
      std::unique_lock lk(sh.m);
      for (;;) {
        if (!sh.queue.empty()) break;
        if (sh.stopping) return;  // own queue drained; siblings drain their own
        if (can_steal && sibling_backlogged(sh)) {
          lk.unlock();
          if (try_steal(sh, key, batch)) {
            stolen = true;
            break;
          }
          lk.lock();
          // The backlog vanished between the scan and the lock (victim or
          // another thief drained it): poll briefly while any sibling still
          // looks backlogged, then fall back to the plain wait above.
          if (sh.queue.empty() && !sh.stopping) sh.cv_work.wait_for(lk, kStealPoll);
        } else {
          sh.cv_work.wait(lk);
        }
      }
      if (!stolen) {
        key = Key{sh.queue.front().entry, sh.queue.front().n};
        take_matching(sh, key, batch);
        // Linger for same-key stragglers: worth one pass through the engine
        // only if the batch is not already full.  The budget is anchored at
        // the oldest request's enqueue time (so a request never waits more
        // than max_linger total) and clipped to the earliest deadline in the
        // batch.  Skipped entirely while draining.
        if (!sh.stopping && opts_.max_linger.count() > 0 &&
            batch.size() < opts_.max_batch_lanes) {
          auto until = batch.front().enqueued + opts_.max_linger;
          for (const auto& r : batch) until = std::min(until, r.deadline);
          while (!sh.stopping && batch.size() < opts_.max_batch_lanes) {
            if (sh.cv_work.wait_until(lk, until) == std::cv_status::timeout) break;
            take_matching(sh, key, batch);
          }
        }
      }
    }
    if (!stolen) sh.cv_space.notify_all();  // extraction freed queue slots
    process(sh, key, batch, inputs, outputs);
  }
}

SortService::Engine* SortService::ensure_engine(Shard& sh, const Key& key,
                                                std::exception_ptr& factory_error) {
  auto it = sh.engines.find(key);
  if (it == sh.engines.end()) it = sh.engines.emplace(key, Engine{}).first;
  Engine& e = it->second;

  if (!e.sorter) {
    try {
      e.sorter = key.first->factory(key.second);
    } catch (...) {
      // A factory failure is a deterministic configuration error (bad n for
      // this sorter): no fallback exists, so it surfaces as an exception --
      // and the next identical request will fail identically.
      factory_error = std::current_exception();
      return nullptr;
    }
  }

  // Consult the global ladder (cold path: once per micro-batch).  Parole
  // counts batches the key served per-vector on *any* shard; a quarantine
  // any shard recorded is honored here before the engine could run.
  bool quarantined;
  {
    std::lock_guard lk(ladder_m_);
    Ladder& L = ladder_[key];
    if (L.quarantined && L.parole > 0 && --L.parole == 0) {
      L.quarantined = false;
      L.strikes = 0;
    }
    quarantined = L.quarantined;
  }
  if (quarantined) {
    // Drop this shard's engine (and its worker pool): a key another shard
    // caught misbehaving must not keep a live batch path anywhere.
    e.batch.reset();
    return &e;
  }

  if (!e.batch) {
    // Rung 1: compile with capped exponential backoff.  The fault plan can
    // make an attempt throw; real make_batch_sorter failures retry the same
    // way.  Persistent failure quarantines the key onto the per-vector path
    // instead of failing requests.
    auto* plan = opts_.fault_plan.get();
    auto backoff = opts_.compile_backoff;
    for (std::size_t attempt = 0; attempt < opts_.compile_attempts && !e.batch; ++attempt) {
      if (attempt > 0) {
        retries_.fetch_add(1, std::memory_order_relaxed);
        if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, opts_.compile_backoff_cap);
      }
      try {
        if (plan && plan->fail_compile(key.first->name, key.second)) {
          throw InjectedFault(std::string("injected compile failure: ") + key.first->name +
                              " n=" + std::to_string(key.second));
        }
        e.batch = e.sorter->make_batch_sorter(opts_.batch);
      } catch (...) {
        // swallowed: the ladder answers requests either way
      }
    }
    if (e.batch) {
      compiled_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard lk(engines_m_);
      engine_infos_.push_back(
          EngineInfo{key.first->name, key.second, sh.index, e.batch->backend()});
    } else {
      std::lock_guard lk(ladder_m_);
      Ladder& L = ladder_[key];
      if (!L.quarantined) {
        L.quarantined = true;
        L.parole = opts_.probation;
        quarantined_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return &e;
}

void SortService::strike(Engine& e, const Key& key) {
  std::lock_guard lk(ladder_m_);
  Ladder& L = ladder_[key];
  if (L.quarantined) {
    e.batch.reset();  // another shard quarantined it mid-batch; fall in line
    return;
  }
  if (++L.strikes >= opts_.quarantine_after) {
    L.quarantined = true;
    L.parole = opts_.probation;
    e.batch.reset();  // drop the engine (and its worker pool) until parole
    quarantined_.fetch_add(1, std::memory_order_relaxed);
  }
}

BitVec SortService::per_vector(Engine& e, const BitVec& in) {
  if (e.sorter->is_combinational()) {
    if (!e.fallback) {
      if (!e.circuit) e.circuit.emplace(e.sorter->build_circuit());
      e.fallback = std::make_unique<netlist::LevelizedCircuit>(*e.circuit);
    }
    return e.fallback->eval(in);
  }
  return e.sorter->sort(in);
}

void SortService::process(Shard& sh, const Key& key, std::vector<Request>& batch,
                          std::vector<BitVec>& inputs, std::vector<BitVec>& outputs) {
  const auto formed = Clock::now();
  // Cancel what already missed its deadline; collect the rest.
  inputs.clear();
  std::vector<Request*> live;
  live.reserve(batch.size());
  for (auto& r : batch) {
    queue_wait_h_.record(us_between(r.enqueued, formed));
    if (r.deadline <= formed) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      r.promise.set_value(SortResult{Status::Expired, {}});
      continue;
    }
    live.push_back(&r);
    inputs.push_back(std::move(r.input));
  }
  if (live.empty()) return;

  std::exception_ptr factory_error;
  Engine* engine = ensure_engine(sh, key, factory_error);
  if (!engine) {
    failed_.fetch_add(live.size(), std::memory_order_relaxed);
    for (auto* r : live) r->promise.set_exception(factory_error);
    return;
  }
  Engine& e = *engine;
  auto* plan = opts_.fault_plan.get();

  outputs.resize(inputs.size());
  // Rung 2: the batch path, possibly perturbed by the fault plan.  Any
  // exception here is a strike, never an answer -- the per-vector rung below
  // still owns the requests.  ensure_engine cleared e.batch if the key is
  // quarantined anywhere.
  bool batch_ok = false;
  if (e.batch) {
    const auto t0 = Clock::now();
    try {
      std::optional<netlist::Fault> injected;
      if (plan) {
        const auto spike = plan->latency_spike();
        if (spike.count() > 0) std::this_thread::sleep_for(spike);
        if (plan->fail_eval(key.first->name, key.second)) {
          throw InjectedFault(std::string("injected eval failure: ") + key.first->name +
                              " n=" + std::to_string(key.second));
        }
        if (e.sorter->is_combinational()) {
          if (!e.circuit) e.circuit.emplace(e.sorter->build_circuit());
          injected = plan->pick_circuit_fault(*e.circuit);
        }
      }
      if (injected) {
        // Structural fault: the whole batch rides the faulted circuit, as it
        // would through broken steering hardware.
        for (std::size_t i = 0; i < live.size(); ++i) {
          outputs[i] = netlist::eval_with_fault(*e.circuit, inputs[i], *injected);
        }
      } else {
        e.batch->run(inputs, outputs);
      }
      if (plan) {
        for (const std::size_t lane : plan->pick_corrupt_lanes(live.size())) {
          plan->corrupt_bits(outputs[lane].data());
        }
      }
      batch_ok = true;
    } catch (...) {
      strike(e, key);
    }
    eval_h_.record(us_between(t0, Clock::now()));
  }

  // Rung 3: per-vector repair/fallback.  With batch_ok, the optional
  // self-check re-evaluates only mismatched lanes (sorted + population count
  // is a complete correctness oracle for 0-1 outputs); without it, the whole
  // batch retreats to the per-vector path.  Rung 4: a lane whose fallback
  // also threw is answered Status::Failed.
  std::size_t degraded = 0;
  std::vector<std::uint8_t> lane_failed(live.size(), 0);
  const auto repair = [&](std::size_t i) {
    try {
      outputs[i] = per_vector(e, inputs[i]);
      ++degraded;
    } catch (...) {
      lane_failed[i] = 1;
    }
  };
  if (batch_ok && opts_.self_check) {
    bool struck = false;
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (!outputs[i].is_sorted_ascending() ||
          outputs[i].count_ones() != inputs[i].count_ones()) {
        self_check_failed_.fetch_add(1, std::memory_order_relaxed);
        struck = true;
        repair(i);
      }
    }
    if (struck) strike(e, key);
  } else if (!batch_ok) {
    for (std::size_t i = 0; i < live.size(); ++i) repair(i);
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  sh.c.batches.fetch_add(1, std::memory_order_relaxed);
  sh.c.lanes.fetch_add(live.size(), std::memory_order_relaxed);
  batch_size_h_.record(live.size());
  degraded_.fetch_add(degraded, std::memory_order_relaxed);
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (lane_failed[i]) {
      unrecoverable_.fetch_add(1, std::memory_order_relaxed);
      live[i]->promise.set_value(SortResult{Status::Failed, {}});
    } else {
      completed_.fetch_add(1, std::memory_order_relaxed);
      live[i]->promise.set_value(SortResult{Status::Ok, std::move(outputs[i])});
    }
  }
}

ServiceStats SortService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.stopped = stopped_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.compiled = compiled_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.self_check_failed = self_check_failed_.load(std::memory_order_relaxed);
  s.unrecoverable = unrecoverable_.load(std::memory_order_relaxed);
  const auto jit = netlist::jit_counters();
  s.jit_compiles = jit.compiles - jit_baseline_.compiles;
  s.jit_cache_hits = jit.cache_hits - jit_baseline_.cache_hits;
  s.jit_fallbacks = jit.fallbacks - jit_baseline_.fallbacks;
  {
    std::lock_guard lk(engines_m_);
    s.engines = engine_infos_;
  }
  s.per_shard.reserve(shards_.size());
  for (const auto& sh : shards_) {
    ShardStats ss;
    ss.routed = sh->c.routed.load(std::memory_order_relaxed);
    ss.batches = sh->c.batches.load(std::memory_order_relaxed);
    ss.steals = sh->c.steals.load(std::memory_order_relaxed);
    ss.stolen_requests = sh->c.stolen_requests.load(std::memory_order_relaxed);
    ss.queue_depth = sh->depth.load(std::memory_order_relaxed);
    const std::uint64_t lanes = sh->c.lanes.load(std::memory_order_relaxed);
    ss.lane_occupancy =
        ss.batches == 0
            ? 0.0
            : static_cast<double>(lanes) /
                  (static_cast<double>(ss.batches) * static_cast<double>(opts_.max_batch_lanes));
    s.steals += ss.steals;
    s.stolen_requests += ss.stolen_requests;
    s.per_shard.push_back(ss);
  }
  s.batch_size = batch_size_h_.snapshot();
  s.queue_wait_us = queue_wait_h_.snapshot();
  s.eval_us = eval_h_.snapshot();
  return s;
}

}  // namespace absort::service
