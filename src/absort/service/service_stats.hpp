#pragma once
// Observability for the serving layer: cheap-to-record counters and
// log2-bucketed histograms, snapshotted as a plain-value ServiceStats that
// renders itself as JSON.
//
// Recording is lock-free (relaxed atomics): the submit path and the
// coalescing loop bump counters and histogram buckets without ever taking
// the service mutex, so observability costs nanoseconds per request.
// Snapshots are not atomic across fields -- a snapshot taken while traffic
// is in flight is a consistent-enough view for dashboards and tests, not a
// linearizable one (totals may be mid-update by one request).

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "absort/netlist/batch_options.hpp"

namespace absort::service {

/// Histogram buckets: bucket 0 holds value 0, bucket b >= 1 holds values in
/// [2^(b-1), 2^b - 1].  40 buckets cover ~5.5e11 (microsecond latencies up
/// to ~6 days; batch sizes far past any real lane width).
inline constexpr std::size_t kHistBuckets = 40;

/// Plain-value histogram snapshot.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistBuckets> counts{};
  std::uint64_t total = 0;  ///< number of recorded values
  std::uint64_t sum = 0;    ///< sum of recorded values

  [[nodiscard]] double mean() const;

  /// Upper bound of the bucket containing the p-quantile (p in [0, 1]); 0
  /// when empty.  Log2 buckets make this an upper estimate within 2x.
  [[nodiscard]] std::uint64_t percentile(double p) const;

  /// Inclusive value range [lower, upper] of bucket b.
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t b);
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t b);

  /// JSON object: {"total":..,"mean":..,"p50":..,"p90":..,"p99":..,
  /// "buckets":[{"le":..,"count":..}, ...]} (non-empty buckets only).
  [[nodiscard]] std::string to_json() const;
};

/// Thread-safe recording side of HistogramSnapshot.
class Histogram {
 public:
  void record(std::uint64_t v) noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kHistBuckets> counts_{};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Per-shard slice of a sharded SortService's counters (see
/// SortService::stats(); one entry per executor, indexed by shard).
struct ShardStats {
  std::uint64_t routed = 0;           ///< requests the affinity hash sent here
  std::uint64_t batches = 0;          ///< micro-batches this shard evaluated
  std::uint64_t steals = 0;           ///< batches this shard stole from siblings
  std::uint64_t stolen_requests = 0;  ///< requests inside those stolen batches
  std::uint64_t queue_depth = 0;      ///< submission-queue depth at snapshot time
  /// Mean live-lane fill of this shard's batches relative to max_batch_lanes
  /// (1.0 = every batch full); 0 before the first batch.
  double lane_occupancy = 0.0;
};

/// One compiled (sorter, n, shard) engine in the service's caches, with the
/// evaluation backend it resolved to (never Auto).  One entry per successful
/// compile, so entries.size() == ServiceStats::compiled even when the same
/// key recompiles after parole.
struct EngineInfo {
  std::string sorter;  ///< registry name
  std::size_t n = 0;   ///< vector arity
  std::size_t shard = 0;
  netlist::Backend backend = netlist::Backend::Interpreter;
};

/// One coherent view of a SortService's lifetime counters and latency
/// distributions (see SortService::stats()).
struct ServiceStats {
  std::uint64_t submitted = 0;     ///< requests accepted into the queue
  std::uint64_t completed = 0;     ///< requests answered Ok
  std::uint64_t rejected = 0;      ///< QueueFull rejections (Reject policy)
  std::uint64_t expired = 0;       ///< deadline-cancelled requests
  std::uint64_t stopped = 0;       ///< requests refused after stop()
  std::uint64_t failed = 0;        ///< requests failed with an exception
  std::uint64_t unroutable = 0;    ///< patterns the fabric blocks on (PermuteService only)
  std::uint64_t batches = 0;       ///< micro-batches formed
  std::uint64_t compiled = 0;      ///< (sorter, n) engines compiled (cache misses, per shard)

  // Native-backend (JIT) activity attributed to this service: deltas of the
  // process-wide netlist::jit_counters() since the service was constructed.
  // All three stay 0 when no engine resolves to Backend::Native.
  std::uint64_t jit_compiles = 0;    ///< kernels compiled by the system toolchain
  std::uint64_t jit_cache_hits = 0;  ///< kernels served from the in-process or on-disk cache
  std::uint64_t jit_fallbacks = 0;   ///< native requests that fell back to the SIMD interpreter

  // Sharding (totals across per_shard; 0 on a 1-shard service):
  std::uint64_t steals = 0;           ///< micro-batches taken by work stealing
  std::uint64_t stolen_requests = 0;  ///< requests answered off their home shard

  // Robustness ladder (see fault_injection.hpp and DESIGN.md):
  std::uint64_t retries = 0;            ///< engine compile attempts retried after a failure
  std::uint64_t quarantined = 0;        ///< (sorter, n) engines quarantined for good
  std::uint64_t degraded = 0;           ///< requests answered via the per-vector fallback
  std::uint64_t self_check_failed = 0;  ///< output lanes that failed the batch self-check
  std::uint64_t cheap_checks = 0;       ///< output lanes verified by the cheap structural probe
  std::uint64_t unrecoverable = 0;      ///< requests answered Status::Failed

  // Edge counters (see edge/edge_server.hpp): always 0 in a plain in-process
  // SortService snapshot; EdgeServer::stats() fills them in so edge-level
  // rejections are first-class telemetry next to the queue's own.
  std::uint64_t shedded = 0;               ///< requests answered Shedded (admission / in-flight cap / QueueFull)
  std::uint64_t decode_errors = 0;         ///< malformed request frames (connection then closed)
  std::uint64_t duplicate_ids = 0;         ///< frames rejected for reusing an in-flight id on their connection
  std::uint64_t connections_accepted = 0;  ///< TCP connections accepted
  std::uint64_t connections_dropped = 0;   ///< TCP connections refused at the connection cap
  std::uint64_t bytes_in = 0;              ///< wire bytes read from clients
  std::uint64_t bytes_out = 0;             ///< wire bytes written to clients

  /// One entry per executor shard (size == SortService::shard_count()).
  std::vector<ShardStats> per_shard;

  /// Every engine compile so far, in compile order (size == compiled).
  std::vector<EngineInfo> engines;

  HistogramSnapshot batch_size;     ///< requests coalesced per micro-batch
  HistogramSnapshot queue_wait_us;  ///< submit -> batch formation, microseconds
  HistogramSnapshot eval_us;        ///< micro-batch evaluation time, microseconds

  /// The whole snapshot as one JSON object (delegates to stats_json.hpp).
  [[nodiscard]] std::string to_json() const;
};

}  // namespace absort::service
