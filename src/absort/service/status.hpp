#pragma once
// Terminal request status shared by every serving endpoint (SortService,
// PermuteService).  One enum -- and one to_string -- so the CLI, the edge
// protocol's status mapping, and the tests never drift between workloads.

namespace absort::service {

/// Terminal state of one request.
enum class Status {
  Ok,          ///< evaluated; the result payload is valid
  QueueFull,   ///< rejected: queue at capacity under the Reject policy
  Expired,     ///< cancelled: deadline passed before evaluation
  Stopped,     ///< rejected: submitted after stop()
  Failed,      ///< unrecoverable: every degradation rung failed for this request
  Unroutable,  ///< well-formed but unrealizable on this fabric (e.g. a
               ///< permutation an omega network blocks on)
};

[[nodiscard]] constexpr const char* to_string(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::QueueFull: return "queue-full";
    case Status::Expired: return "expired";
    case Status::Stopped: return "stopped";
    case Status::Failed: return "failed";
    case Status::Unroutable: return "unroutable";
  }
  return "?";
}

}  // namespace absort::service
