#pragma once
// Deterministic, seed-driven fault injection for the serving layer.
//
// The paper's adaptive networks contain *steering* components (muxes,
// swappers, prefix adders) that can misbehave -- netlist/transform.cpp
// already models single stuck-at and output-swap faults (FaultKind).  A
// serving layer that claims production scale must survive a bad engine, not
// just a busy queue, so SortService accepts a FaultPlan: a seeded schedule
// of injection points that perturbs the *batch* path only.  The per-vector
// fallback path (LevelizedCircuit::eval / BinarySorter::sort) is never
// faulted: it is the trusted reference the degradation ladder retreats to.
//
// Injection sites (all consulted from the dispatcher thread only):
//   * Compile  -- make_batch_sorter() for a (sorter, n) key throws, which
//                 exercises the retry-with-backoff and quarantine paths;
//   * Eval     -- the compiled engine's run() throws mid-batch;
//   * Latency  -- the batch path stalls for a configured spike before
//                 evaluating (deadline and linger behaviour under load);
//   * Circuit  -- the batch is evaluated through eval_with_fault() with a
//                 seeded (component, FaultKind) structural fault, cycling
//                 through the applicable FaultKinds so every kind appears;
//   * Corrupt  -- output lanes are bit-flipped after a healthy evaluation
//                 (models a DMA / memory fault rather than a logic fault).
//
// Determinism: all decisions derive from one Xoshiro256 stream seeded at
// construction, and the first opportunity at each site (and each FaultKind)
// always fires, so a chaos run of any length covers every fault class.
// Decision methods serialize on an internal mutex, so one plan can be shared
// by every shard dispatcher of a sharded SortService (the decision *order*
// then depends on dispatch interleaving, but each decision stays a draw from
// the one seeded stream and coverage guarantees hold).  Counters are
// atomics: dispatchers record while tests and the CLI read concurrently.

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "absort/netlist/circuit.hpp"
#include "absort/netlist/transform.hpp"
#include "absort/util/rng.hpp"

namespace absort::service {

struct FaultPlanOptions {
  std::uint64_t seed = 1;

  /// Per-opportunity firing probabilities in [0, 1].  Independently of the
  /// probability, the first opportunity at each enabled site fires (at the
  /// Circuit site, the first opportunity for each still-uncovered FaultKind),
  /// so enabling a site guarantees an injection when the site is reached.
  double compile_fail = 0;   ///< make_batch_sorter() throws for this attempt
  double eval_throw = 0;     ///< engine run() throws for this batch
  double latency = 0;        ///< batch path sleeps latency_spike first
  double circuit_fault = 0;  ///< batch evaluated through a structural fault
  double corrupt = 0;        ///< output lanes bit-flipped after evaluation

  std::chrono::microseconds latency_spike{500};

  /// When a corruption fires, ceil(corrupt_fraction * lanes) lanes are hit.
  double corrupt_fraction = 0.25;

  /// Hard cap on total injections (all sites); the plan goes quiet after.
  std::uint64_t max_faults = UINT64_MAX;

  /// All sites on at moderate rates -- the schedule behind `serve --selftest
  /// --chaos <seed>` and the chaos tests.
  [[nodiscard]] static FaultPlanOptions chaos(std::uint64_t seed);
};

class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanOptions opts);

  [[nodiscard]] const FaultPlanOptions& options() const noexcept { return opts_; }

  /// True if the plan can ever perturb evaluated outputs (Circuit/Corrupt
  /// sites enabled): SortService forces the output self-check on in that
  /// case so Status::Ok always implies a correct result.
  [[nodiscard]] bool corrupts_outputs() const noexcept;

  // -- injection decisions (any dispatcher thread; internally serialized) ---
  //
  // sorter/n identify the key for the failure message baked into injected
  // exceptions (so a test seeing one can tell it apart from a real failure).

  /// Should this make_batch_sorter() attempt throw?
  [[nodiscard]] bool fail_compile(std::string_view sorter, std::size_t n);

  /// Should this batch evaluation throw?
  [[nodiscard]] bool fail_eval(std::string_view sorter, std::size_t n);

  /// Stall to apply before evaluating this batch (0 = none).
  [[nodiscard]] std::chrono::microseconds latency_spike();

  /// Structural fault to evaluate this batch through, if the site fires.
  /// While any FaultKind is still uncovered, a circuit that supports an
  /// uncovered kind fires unconditionally on it (so coverage is guaranteed
  /// as soon as a compatible circuit is dispatched); afterwards the pick
  /// cycles kinds round-robin over a uniformly random applicable component.
  /// Returns nullopt when the site does not fire or nothing is applicable.
  [[nodiscard]] std::optional<netlist::Fault> pick_circuit_fault(const netlist::Circuit& c);

  /// Lane indices (subset of [0, lanes)) to bit-flip after evaluation;
  /// empty when the site does not fire.
  [[nodiscard]] std::vector<std::size_t> pick_corrupt_lanes(std::size_t lanes);

  /// Flips a deterministic bit of `bits` in place (the corruption applied to
  /// each picked lane).
  void corrupt_bits(std::vector<std::uint8_t>& bits);

  // -- observability (any thread) ------------------------------------------

  struct Counters {
    std::uint64_t compile_fails = 0;
    std::uint64_t eval_throws = 0;
    std::uint64_t latency_spikes = 0;
    std::uint64_t circuit_faults = 0;
    std::uint64_t corrupted_lanes = 0;
    /// Structural faults by FaultKind (StuckControl0/1, OutputsSwapped).
    std::array<std::uint64_t, 3> circuit_faults_by_kind{};

    [[nodiscard]] std::uint64_t total() const noexcept {
      return compile_fails + eval_throws + latency_spikes + circuit_faults + corrupted_lanes;
    }
    /// True when every enabled fault class has fired at least once (the
    /// chaos selftest's coverage gate).
    [[nodiscard]] bool covers(const FaultPlanOptions& o) const noexcept;
  };

  [[nodiscard]] Counters counters() const noexcept;

 private:
  /// One seeded coin flip for a site; fires unconditionally while
  /// `forced_left` > 0 (decrementing it), never after the max_faults budget.
  /// Caller holds m_.
  bool fire(double p, std::uint32_t& forced_left);

  FaultPlanOptions opts_;
  /// Serializes rng_/force_*/next_kind_ across shard dispatchers.
  std::mutex m_;
  Xoshiro256 rng_;

  // Forced first-fire budgets per site (see header comment).
  std::uint32_t force_compile_ = 1;
  std::uint32_t force_eval_ = 1;
  std::uint32_t force_latency_ = 1;
  std::uint32_t force_corrupt_ = 1;
  std::size_t next_kind_ = 0;  ///< round-robin FaultKind preference

  std::atomic<std::uint64_t> budget_used_{0};
  std::atomic<std::uint64_t> compile_fails_{0};
  std::atomic<std::uint64_t> eval_throws_{0};
  std::atomic<std::uint64_t> latency_spikes_{0};
  std::atomic<std::uint64_t> circuit_faults_{0};
  std::atomic<std::uint64_t> corrupted_lanes_{0};
  std::array<std::atomic<std::uint64_t>, 3> by_kind_{};
};

/// The exception type every injected compile/eval failure throws: lets tests
/// and retry logic distinguish scheduled chaos from genuine engine bugs.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace absort::service
