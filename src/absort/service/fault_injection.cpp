#include "absort/service/fault_injection.hpp"

#include <algorithm>
#include <string>

namespace absort::service {

FaultPlanOptions FaultPlanOptions::chaos(std::uint64_t seed) {
  FaultPlanOptions o;
  o.seed = seed;
  // Rates chosen so a few hundred requests exercise every ladder rung:
  // compile_fail at 0.5 with 3 retry attempts quarantines a key with
  // probability 1/8 per cold compile, eval throws degrade whole batches,
  // circuit faults and corruptions drive the self-check repair path.
  o.compile_fail = 0.5;
  o.eval_throw = 0.10;
  o.latency = 0.05;
  o.circuit_fault = 0.15;
  o.corrupt = 0.15;
  o.latency_spike = std::chrono::microseconds(500);
  o.corrupt_fraction = 0.25;
  return o;
}

FaultPlan::FaultPlan(FaultPlanOptions opts) : opts_(opts), rng_(opts.seed) {
  // Sites the schedule never enables get no forced first fire.
  if (opts_.compile_fail <= 0) force_compile_ = 0;
  if (opts_.eval_throw <= 0) force_eval_ = 0;
  if (opts_.latency <= 0) force_latency_ = 0;
  if (opts_.corrupt <= 0) force_corrupt_ = 0;
}

bool FaultPlan::corrupts_outputs() const noexcept {
  return opts_.circuit_fault > 0 || opts_.corrupt > 0;
}

bool FaultPlan::fire(double p, std::uint32_t& forced_left) {
  if (p <= 0) return false;
  if (budget_used_.load(std::memory_order_relaxed) >= opts_.max_faults) return false;
  bool hit;
  if (forced_left > 0) {
    --forced_left;
    hit = true;
  } else {
    // rng_() >> 11 is a uniform 53-bit value; compare in [0, 1).
    const double u = static_cast<double>(rng_() >> 11) * 0x1.0p-53;
    hit = u < p;
  }
  if (hit) budget_used_.fetch_add(1, std::memory_order_relaxed);
  return hit;
}

bool FaultPlan::fail_compile(std::string_view, std::size_t) {
  std::lock_guard lk(m_);
  if (!fire(opts_.compile_fail, force_compile_)) return false;
  compile_fails_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultPlan::fail_eval(std::string_view, std::size_t) {
  std::lock_guard lk(m_);
  if (!fire(opts_.eval_throw, force_eval_)) return false;
  eval_throws_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::chrono::microseconds FaultPlan::latency_spike() {
  std::lock_guard lk(m_);
  if (!fire(opts_.latency, force_latency_)) return std::chrono::microseconds{0};
  latency_spikes_.fetch_add(1, std::memory_order_relaxed);
  return opts_.latency_spike;
}

std::optional<netlist::Fault> FaultPlan::pick_circuit_fault(const netlist::Circuit& c) {
  if (opts_.circuit_fault <= 0) return std::nullopt;
  std::lock_guard lk(m_);
  static constexpr netlist::FaultKind kKinds[] = {netlist::FaultKind::StuckControl0,
                                                  netlist::FaultKind::StuckControl1,
                                                  netlist::FaultKind::OutputsSwapped};
  // Collect applicable components per kind once; small circuits make this
  // cheap and it keeps the pick uniform.  Not every circuit supports every
  // kind (gate-only netlists have no control slots to stick).
  std::array<std::vector<std::size_t>, 3> sites;
  for (std::size_t i = 0; i < c.num_components(); ++i) {
    for (std::size_t k = 0; k < 3; ++k) {
      if (fault_applicable(c, {i, kKinds[k]})) sites[k].push_back(i);
    }
  }
  // Coverage first: a kind that has never fired and that this circuit
  // supports fires unconditionally.  Guarantees every FaultKind appears as
  // soon as a compatible circuit is dispatched, regardless of run length.
  std::size_t pick = 3;
  for (std::size_t k = 0; k < 3 && pick == 3; ++k) {
    if (by_kind_[k].load(std::memory_order_relaxed) == 0 && !sites[k].empty()) pick = k;
  }
  std::uint32_t forced = pick < 3 ? 1 : 0;
  if (!fire(opts_.circuit_fault, forced)) return std::nullopt;
  if (pick == 3) {
    // Steady state: cycle the preferred kind round-robin, falling through to
    // the other kinds when this circuit does not support the preferred one.
    for (std::size_t attempt = 0; attempt < 3 && pick == 3; ++attempt) {
      const std::size_t k = (next_kind_ + attempt) % 3;
      if (!sites[k].empty()) pick = k;
    }
    if (pick == 3) {
      // Nothing applicable at all (a pure-wiring circuit): undo the budget.
      budget_used_.fetch_sub(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    next_kind_ = (pick + 1) % 3;
  }
  const netlist::Fault f{sites[pick][rng_.below(sites[pick].size())], kKinds[pick]};
  circuit_faults_.fetch_add(1, std::memory_order_relaxed);
  by_kind_[static_cast<std::size_t>(kKinds[pick])].fetch_add(1, std::memory_order_relaxed);
  return f;
}

std::vector<std::size_t> FaultPlan::pick_corrupt_lanes(std::size_t lanes) {
  if (lanes == 0) return {};
  std::lock_guard lk(m_);
  if (!fire(opts_.corrupt, force_corrupt_)) return {};
  const double want = opts_.corrupt_fraction * static_cast<double>(lanes);
  const std::size_t count =
      std::clamp<std::size_t>(static_cast<std::size_t>(want) + (want > 0 ? 1 : 0), 1, lanes);
  std::vector<std::size_t> picked;
  picked.reserve(count);
  // Floyd's subset sampling keeps the pick O(count) and duplicate-free.
  for (std::size_t j = lanes - count; j < lanes; ++j) {
    const std::size_t t = rng_.below(j + 1);
    if (std::find(picked.begin(), picked.end(), t) == picked.end()) {
      picked.push_back(t);
    } else {
      picked.push_back(j);
    }
  }
  corrupted_lanes_.fetch_add(picked.size(), std::memory_order_relaxed);
  return picked;
}

void FaultPlan::corrupt_bits(std::vector<std::uint8_t>& bits) {
  if (bits.empty()) return;
  std::lock_guard lk(m_);
  bits[rng_.below(bits.size())] ^= 1;
}

bool FaultPlan::Counters::covers(const FaultPlanOptions& o) const noexcept {
  if (o.compile_fail > 0 && compile_fails == 0) return false;
  if (o.eval_throw > 0 && eval_throws == 0) return false;
  if (o.latency > 0 && latency_spikes == 0) return false;
  if (o.corrupt > 0 && corrupted_lanes == 0) return false;
  if (o.circuit_fault > 0) {
    for (const auto k : circuit_faults_by_kind) {
      if (k == 0) return false;
    }
  }
  return true;
}

FaultPlan::Counters FaultPlan::counters() const noexcept {
  Counters c;
  c.compile_fails = compile_fails_.load(std::memory_order_relaxed);
  c.eval_throws = eval_throws_.load(std::memory_order_relaxed);
  c.latency_spikes = latency_spikes_.load(std::memory_order_relaxed);
  c.circuit_faults = circuit_faults_.load(std::memory_order_relaxed);
  c.corrupted_lanes = corrupted_lanes_.load(std::memory_order_relaxed);
  for (std::size_t k = 0; k < 3; ++k) {
    c.circuit_faults_by_kind[k] = by_kind_[k].load(std::memory_order_relaxed);
  }
  return c;
}

}  // namespace absort::service
