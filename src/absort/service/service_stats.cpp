#include "absort/service/service_stats.hpp"

#include <bit>
#include <cstdarg>
#include <cstdio>

namespace absort::service {

namespace {

std::size_t bucket_of(std::uint64_t v) noexcept {
  const std::size_t b = static_cast<std::size_t>(std::bit_width(v));
  return b < kHistBuckets ? b : kHistBuckets - 1;
}

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

double HistogramSnapshot::mean() const {
  return total ? static_cast<double>(sum) / static_cast<double>(total) : 0.0;
}

std::uint64_t HistogramSnapshot::percentile(double p) const {
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  const double want = p * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    cum += counts[b];
    if (static_cast<double>(cum) >= want && cum > 0) return bucket_upper(b);
  }
  return bucket_upper(kHistBuckets - 1);
}

std::uint64_t HistogramSnapshot::bucket_lower(std::size_t b) {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

std::uint64_t HistogramSnapshot::bucket_upper(std::size_t b) {
  return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
}

std::string HistogramSnapshot::to_json() const {
  std::string out;
  append(out, "{\"total\": %llu, \"mean\": %.1f, \"p50\": %llu, \"p90\": %llu, \"p99\": %llu, ",
         static_cast<unsigned long long>(total), mean(),
         static_cast<unsigned long long>(percentile(0.50)),
         static_cast<unsigned long long>(percentile(0.90)),
         static_cast<unsigned long long>(percentile(0.99)));
  out += "\"buckets\": [";
  bool first = true;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    if (counts[b] == 0) continue;
    append(out, "%s{\"le\": %llu, \"count\": %llu}", first ? "" : ", ",
           static_cast<unsigned long long>(bucket_upper(b)),
           static_cast<unsigned long long>(counts[b]));
    first = false;
  }
  out += "]}";
  return out;
}

void Histogram::record(std::uint64_t v) noexcept {
  counts_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot s;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    s.counts[b] = counts_[b].load(std::memory_order_relaxed);
  }
  s.total = total_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

std::string ServiceStats::to_json() const {
  std::string out = "{\n";
  const auto counter = [&](const char* k, std::uint64_t v, bool comma = true) {
    append(out, "  \"%s\": %llu%s\n", k, static_cast<unsigned long long>(v), comma ? "," : "");
  };
  counter("submitted", submitted);
  counter("completed", completed);
  counter("rejected", rejected);
  counter("expired", expired);
  counter("stopped", stopped);
  counter("failed", failed);
  counter("batches", batches);
  counter("compiled", compiled);
  counter("retries", retries);
  counter("quarantined", quarantined);
  counter("degraded", degraded);
  counter("self_check_failed", self_check_failed);
  counter("unrecoverable", unrecoverable);
  out += "  \"batch_size\": " + batch_size.to_json() + ",\n";
  out += "  \"queue_wait_us\": " + queue_wait_us.to_json() + ",\n";
  out += "  \"eval_us\": " + eval_us.to_json() + "\n}";
  return out;
}

}  // namespace absort::service
