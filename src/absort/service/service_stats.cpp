#include "absort/service/service_stats.hpp"

#include <bit>

#include "absort/service/stats_json.hpp"

namespace absort::service {

namespace {

std::size_t bucket_of(std::uint64_t v) noexcept {
  const std::size_t b = static_cast<std::size_t>(std::bit_width(v));
  return b < kHistBuckets ? b : kHistBuckets - 1;
}

}  // namespace

double HistogramSnapshot::mean() const {
  return total ? static_cast<double>(sum) / static_cast<double>(total) : 0.0;
}

std::uint64_t HistogramSnapshot::percentile(double p) const {
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  const double want = p * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    cum += counts[b];
    if (static_cast<double>(cum) >= want && cum > 0) return bucket_upper(b);
  }
  return bucket_upper(kHistBuckets - 1);
}

std::uint64_t HistogramSnapshot::bucket_lower(std::size_t b) {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

std::uint64_t HistogramSnapshot::bucket_upper(std::size_t b) {
  return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
}

std::string HistogramSnapshot::to_json() const { return histogram_json(*this); }

void Histogram::record(std::uint64_t v) noexcept {
  counts_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot s;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    s.counts[b] = counts_[b].load(std::memory_order_relaxed);
  }
  s.total = total_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

std::string ServiceStats::to_json() const { return stats_json(*this); }

}  // namespace absort::service
