#pragma once
// ShardedExecutor<Key, Request>: the workload-agnostic core of the serving
// layer -- per-core executors with affinity routing, bounded submission
// queues, micro-batch coalescing under a deadline-clipped linger budget, and
// victim-lock-only work stealing.  SortService (sorter-keyed) and
// PermuteService (permuter-keyed) both ride it: each maps its workload key
// to a shard via hash_name_n % shard_count, submits Requests, and supplies a
// process callback that evaluates one formed micro-batch.
//
// Request contract (duck-typed; enforced at instantiation):
//   * `Key key() const`             -- coalescing key (equality-comparable);
//   * `Clock::time_point deadline`  -- absolute; time_point::max() = none;
//   * `Clock::time_point enqueued`  -- written by the executor at admission.
//
// The executor never touches promises or results.  Admission failures come
// back as Admit values with the Request *intact* (not moved from), so the
// owner resolves its own promise with its own status type; an accepted
// request is handed to the process callback exactly once -- batched with
// same-key neighbours, possibly on a thief shard -- including during
// drain-then-stop.  The callback runs on the dispatcher thread of the shard
// named by its first argument and may use that index for dispatcher-owned
// per-shard state (engine caches, scratch arenas) without locks.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#if defined(__linux__) && defined(__GLIBC__)
#include <pthread.h>
#include <sched.h>
#endif

namespace absort::service {

/// splitmix64 finalizer: full-avalanche mix for the affinity hash.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// FNV-1a over the workload name mixed with n, so routing is stable across
/// runs (a pointer hash would reshuffle shards with every ASLR draw) and
/// across services sharing one traffic pattern.  This is the affinity hash
/// the sharding tests pin down: do not change it.
inline std::uint64_t hash_name_n(std::string_view name, std::size_t n) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char ch : name) {
    h ^= static_cast<std::uint8_t>(ch);
    h *= 0x100000001B3ULL;
  }
  return mix64(h ^ (static_cast<std::uint64_t>(n) * 0x9E3779B97F4A7C15ULL));
}

/// Best-effort dispatcher pinning; a no-op where pthread_setaffinity_np is
/// unavailable or the process affinity mask forbids the core.
inline void pin_to_core(std::size_t index) {
#if defined(__linux__) && defined(__GLIBC__)
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(index % hw), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof set, &set);
#else
  (void)index;
#endif
}

/// The executor slice of a service's options (see ServiceOptions /
/// PermuteOptions for the full serving-policy story).
struct ExecutorOptions {
  std::size_t shards = 1;           ///< per-core executors (clamped to >= 1)
  std::size_t steal_threshold = 4;  ///< sibling depth that invites a steal; 0 disables
  bool pin_threads = false;         ///< pin dispatcher i to core i % hw
  std::size_t queue_capacity = 4096;  ///< bounded submission slots per shard
  std::size_t max_batch_lanes = 512;  ///< micro-batch size cap
  std::chrono::microseconds max_linger{200};  ///< straggler wait; 0 disables

  enum class Overflow {
    Block,   ///< wait for space (up to the request's deadline)
    Reject,  ///< fail fast with Admit::QueueFull
  } overflow = Overflow::Block;
};

/// Outcome of one admission attempt.  Anything but Accepted leaves the
/// Request untouched for the caller to answer.
enum class Admit {
  Accepted,   ///< queued; the process callback will see it exactly once
  QueueFull,  ///< Reject policy and the shard's queue is at capacity
  Expired,    ///< Block policy and the deadline passed while waiting for a slot
  Stopped,    ///< stop() has begun on this shard
};

template <typename Key, typename Request>
class ShardedExecutor {
 public:
  using Clock = std::chrono::steady_clock;
  /// Evaluates one formed micro-batch on shard `shard`'s dispatcher thread.
  using ProcessFn = std::function<void(std::size_t shard, const Key& key,
                                       std::vector<Request>& batch)>;

  /// Per-shard counters (relaxed atomics; snapshotted by the owner's
  /// stats()).  routed / steals / stolen_requests are maintained here;
  /// batches / lanes belong to the process callback, which alone knows how
  /// many lanes survived expiry.
  struct ShardCounters {
    std::atomic<std::uint64_t> routed{0};           ///< requests admitted here
    std::atomic<std::uint64_t> batches{0};          ///< micro-batches evaluated here
    std::atomic<std::uint64_t> lanes{0};            ///< live lanes across those batches
    std::atomic<std::uint64_t> steals{0};           ///< batches stolen from siblings
    std::atomic<std::uint64_t> stolen_requests{0};  ///< requests inside those batches
  };

  ShardedExecutor(ExecutorOptions opts, ProcessFn process)
      : opts_(std::move(opts)), process_(std::move(process)) {
    opts_.shards = std::max<std::size_t>(1, opts_.shards);
    opts_.queue_capacity = std::max<std::size_t>(1, opts_.queue_capacity);
    opts_.max_batch_lanes = std::max<std::size_t>(1, opts_.max_batch_lanes);
    shards_.reserve(opts_.shards);
    for (std::size_t i = 0; i < opts_.shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(i));
    }
    // Dispatchers start only after every shard exists: thieves scan shards_.
    for (auto& sh : shards_) {
      Shard* p = sh.get();
      p->dispatcher = std::thread([this, p] { dispatch_loop(*p); });
    }
  }

  ~ShardedExecutor() { stop(); }

  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  /// Drain-then-stop: processes everything already accepted (including
  /// batches a thief stole and still holds), then joins every dispatcher.
  /// Idempotent; returned-means-drained for every caller.
  void stop() {
    for (auto& sh : shards_) {
      {
        std::lock_guard lk(sh->m);
        sh->stopping = true;
      }
      sh->cv_work.notify_all();
      sh->cv_space.notify_all();
    }
    // call_once also blocks late callers until the join completes.  A thief
    // holding a stolen batch answers it before seeing stopping, so joins
    // cover steals in flight.
    std::call_once(join_once_, [this] {
      for (auto& sh : shards_) sh->dispatcher.join();
    });
  }

  /// Admits `req` to shard `shard_idx` (caller routes -- typically
  /// hash_name_n(name, n) % shard_count()).  On Accepted the request was
  /// moved into the queue with `enqueued` stamped; on any other Admit the
  /// request is untouched and the caller answers it.
  [[nodiscard]] Admit submit(std::size_t shard_idx, Request& req) {
    Shard& sh = *shards_[shard_idx];
    const auto deadline = req.deadline;
    std::unique_lock lk(sh.m);
    if (sh.stopping) return Admit::Stopped;
    if (sh.queue.size() >= opts_.queue_capacity) {
      if (opts_.overflow == ExecutorOptions::Overflow::Reject) return Admit::QueueFull;
      // Block policy: wait for a slot on this shard, but never past the
      // request's deadline.  (An unbounded deadline waits plainly: wait_until
      // at time_point::max() can overflow inside the standard library and
      // time out immediately.)
      const auto have_slot = [&] {
        return sh.stopping || sh.queue.size() < opts_.queue_capacity;
      };
      bool got_slot = true;
      if (deadline == Clock::time_point::max()) {
        sh.cv_space.wait(lk, have_slot);
      } else {
        got_slot = sh.cv_space.wait_until(lk, deadline, have_slot);
      }
      if (sh.stopping) return Admit::Stopped;
      if (!got_slot) return Admit::Expired;
    }
    req.enqueued = Clock::now();
    sh.queue.push_back(std::move(req));
    const std::size_t depth = sh.queue.size();
    sh.depth.store(depth, std::memory_order_relaxed);
    sh.c.routed.fetch_add(1, std::memory_order_relaxed);
    lk.unlock();
    sh.cv_work.notify_one();
    // Backlogged: poke one round-robin sibling so an idle shard starts its
    // steal scan instead of sleeping through the imbalance.
    if (opts_.steal_threshold > 0 && shards_.size() > 1 && depth >= opts_.steal_threshold) {
      const std::size_t t =
          next_poke_.fetch_add(1, std::memory_order_relaxed) % (shards_.size() - 1);
      shards_[(shard_idx + 1 + t) % shards_.size()]->cv_work.notify_one();
    }
    return Admit::Accepted;
  }

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

  [[nodiscard]] ShardCounters& counters(std::size_t i) noexcept { return shards_[i]->c; }
  [[nodiscard]] const ShardCounters& counters(std::size_t i) const noexcept {
    return shards_[i]->c;
  }

  [[nodiscard]] std::size_t queue_depth(std::size_t i) const noexcept {
    return shards_[i]->depth.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const ExecutorOptions& options() const noexcept { return opts_; }

 private:
  /// How often an empty shard re-scans siblings for steal opportunities
  /// while at least one of them is backlogged.  Idle shards with no
  /// backlogged sibling do a plain (poll-free) cv wait instead.
  static constexpr std::chrono::microseconds kStealPoll{100};

  /// One per-core executor: bounded queue, coalescing dispatcher, depth
  /// mirror for lock-free steal scans.
  struct Shard {
    explicit Shard(std::size_t i) : index(i) {}

    const std::size_t index;
    mutable std::mutex m;
    std::condition_variable cv_work;   ///< queue became non-empty / stopping
    std::condition_variable cv_space;  ///< queue freed a slot / stopping
    std::deque<Request> queue;
    bool stopping = false;
    /// queue.size() mirror so steal scans never touch a sibling's mutex
    /// until a steal actually looks worthwhile.
    std::atomic<std::size_t> depth{0};

    ShardCounters c;
    std::thread dispatcher;  ///< started last; everything above is ready first
  };

  /// Moves up to the batch-size cap of key-matching requests out of `sh`'s
  /// queue (caller holds sh.m).
  void take_matching(Shard& sh, const Key& key, std::vector<Request>& batch) {
    for (auto it = sh.queue.begin();
         it != sh.queue.end() && batch.size() < opts_.max_batch_lanes;) {
      if (it->key() == key) {
        batch.push_back(std::move(*it));
        it = sh.queue.erase(it);
      } else {
        ++it;
      }
    }
    sh.depth.store(sh.queue.size(), std::memory_order_relaxed);
  }

  /// Any sibling of `self` at or past the steal threshold?
  [[nodiscard]] bool sibling_backlogged(const Shard& self) const {
    for (const auto& sh : shards_) {
      if (sh.get() == &self) continue;
      if (sh->depth.load(std::memory_order_relaxed) >= opts_.steal_threshold) return true;
    }
    return false;
  }

  /// Attempts to steal one micro-batch from a sibling over the steal
  /// threshold (thief holds no locks; the victim's lock is taken alone, so
  /// steals can never deadlock with submits or other steals).
  bool try_steal(Shard& thief, Key& key, std::vector<Request>& batch) {
    const std::size_t nsh = shards_.size();
    for (std::size_t off = 1; off < nsh; ++off) {
      Shard& victim = *shards_[(thief.index + off) % nsh];
      // Cheap pre-check on the lock-free depth mirror; confirmed under the
      // victim's lock (another thief, or the victim itself, may have drained
      // it in between).
      if (victim.depth.load(std::memory_order_relaxed) < opts_.steal_threshold) continue;
      std::unique_lock lk(victim.m);
      if (victim.queue.size() < opts_.steal_threshold || victim.queue.empty()) continue;
      key = victim.queue.front().key();
      take_matching(victim, key, batch);
      lk.unlock();
      victim.cv_space.notify_all();  // extraction freed the victim's slots
      thief.c.steals.fetch_add(1, std::memory_order_relaxed);
      thief.c.stolen_requests.fetch_add(batch.size(), std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  void dispatch_loop(Shard& sh) {
    if (opts_.pin_threads) pin_to_core(sh.index);
    std::vector<Request> batch;
    const bool can_steal = opts_.steal_threshold > 0 && shards_.size() > 1;
    for (;;) {
      batch.clear();
      Key key{};
      bool stolen = false;
      {
        std::unique_lock lk(sh.m);
        for (;;) {
          if (!sh.queue.empty()) break;
          if (sh.stopping) return;  // own queue drained; siblings drain their own
          if (can_steal && sibling_backlogged(sh)) {
            lk.unlock();
            if (try_steal(sh, key, batch)) {
              stolen = true;
              break;
            }
            lk.lock();
            // The backlog vanished between the scan and the lock (victim or
            // another thief drained it): poll briefly while any sibling still
            // looks backlogged, then fall back to the plain wait above.
            if (sh.queue.empty() && !sh.stopping) sh.cv_work.wait_for(lk, kStealPoll);
          } else {
            sh.cv_work.wait(lk);
          }
        }
        if (!stolen) {
          key = sh.queue.front().key();
          take_matching(sh, key, batch);
          // Linger for same-key stragglers: worth one pass through the
          // engine only if the batch is not already full.  The budget is
          // anchored at the oldest request's enqueue time (so a request
          // never waits more than max_linger total) and clipped to the
          // earliest deadline in the batch.  Skipped entirely while draining
          // and for stolen batches (their requests already lingered on the
          // victim; the thief exists to cut their wait, not extend it).
          if (!sh.stopping && opts_.max_linger.count() > 0 &&
              batch.size() < opts_.max_batch_lanes) {
            auto until = batch.front().enqueued + opts_.max_linger;
            for (const auto& r : batch) until = std::min(until, r.deadline);
            while (!sh.stopping && batch.size() < opts_.max_batch_lanes) {
              if (sh.cv_work.wait_until(lk, until) == std::cv_status::timeout) break;
              take_matching(sh, key, batch);
            }
          }
        }
      }
      if (!stolen) sh.cv_space.notify_all();  // extraction freed queue slots
      process_(sh.index, key, batch);
    }
  }

  ExecutorOptions opts_;
  ProcessFn process_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> next_poke_{0};  ///< round-robin thief wakeups
  std::once_flag join_once_;
};

}  // namespace absort::service
