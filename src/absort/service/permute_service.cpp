#include "absort/service/permute_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>

#include "absort/util/math.hpp"

namespace absort::service {

namespace {

std::uint64_t us_between(PermuteService::Clock::time_point a,
                         PermuteService::Clock::time_point b) {
  const auto d = std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

}  // namespace

PermuteService::PermuteService(PermuteOptions opts) : opts_(std::move(opts)) {
  opts_.shards = std::max<std::size_t>(1, opts_.shards);
  opts_.queue_capacity = std::max<std::size_t>(1, opts_.queue_capacity);
  opts_.max_batch_lanes = std::max<std::size_t>(1, opts_.max_batch_lanes);
  // Divide the machine across shards, exactly as SortService does.
  if (opts_.shards > 1 && opts_.batch.threads == 0) {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    opts_.batch.threads = std::max<std::size_t>(1, hw / opts_.shards);
  }
  jit_baseline_ = netlist::jit_counters();

  states_.reserve(opts_.shards);
  for (std::size_t i = 0; i < opts_.shards; ++i) {
    states_.push_back(std::make_unique<ShardState>());
  }

  ExecutorOptions eo;
  eo.shards = opts_.shards;
  eo.steal_threshold = opts_.steal_threshold;
  eo.pin_threads = opts_.pin_threads;
  eo.queue_capacity = opts_.queue_capacity;
  eo.max_batch_lanes = opts_.max_batch_lanes;
  eo.max_linger = opts_.max_linger;
  eo.overflow = opts_.overflow == PermuteOptions::Overflow::Reject
                    ? ExecutorOptions::Overflow::Reject
                    : ExecutorOptions::Overflow::Block;
  exec_ = std::make_unique<Executor>(
      eo, [this](std::size_t shard, const Key& key, std::vector<Request>& batch) {
        process(shard, key, batch);
      });
}

PermuteService::~PermuteService() { stop(); }

void PermuteService::stop() { exec_->stop(); }

std::size_t PermuteService::route(const Key& key) const noexcept {
  return static_cast<std::size_t>(hash_name_n(key.first->name, key.second) %
                                  exec_->shard_count());
}

std::size_t PermuteService::shard_of(std::string_view permuter, std::size_t n) const {
  const auto* entry = permuters::find_permuter(permuter);
  if (!entry) {
    throw std::invalid_argument("PermuteService: unknown permuter '" + std::string(permuter) +
                                "'; available: " + permuters::permuter_names());
  }
  return route(Key{entry, n});
}

std::future<PermuteResult> PermuteService::submit(std::string_view permuter,
                                                  std::vector<std::uint32_t> dest,
                                                  Clock::time_point deadline) {
  const auto* entry = permuters::find_permuter(permuter);
  if (!entry) {
    throw std::invalid_argument("PermuteService: unknown permuter '" + std::string(permuter) +
                                "'; available: " + permuters::permuter_names());
  }
  const std::size_t n = dest.size();
  if (n < 2 || !is_pow2(n)) {
    throw std::invalid_argument(
        "PermuteService: dest size must be a power of two >= 2 (got " + std::to_string(n) +
        ")");
  }
  // Reject garbage before the future machinery is engaged: duplicates and
  // out-of-range entries are caller errors, not serving outcomes.
  std::vector<bool> seen(n, false);
  for (const std::uint32_t d : dest) {
    if (d >= n || seen[d]) {
      throw std::invalid_argument("PermuteService: dest is not a permutation");
    }
    seen[d] = true;
  }

  Request req{entry, n, std::move(dest), std::promise<PermuteResult>{}, deadline, {}};
  auto future = req.promise.get_future();

  switch (exec_->submit(route(req.key()), req)) {
    case Admit::Accepted:
      submitted_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Admit::QueueFull:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      req.promise.set_value(PermuteResult{Status::QueueFull, {}});
      break;
    case Admit::Expired:
      expired_.fetch_add(1, std::memory_order_relaxed);
      req.promise.set_value(PermuteResult{Status::Expired, {}});
      break;
    case Admit::Stopped:
      stopped_.fetch_add(1, std::memory_order_relaxed);
      req.promise.set_value(PermuteResult{Status::Stopped, {}});
      break;
  }
  return future;
}

PermuteResult PermuteService::permute(std::string_view permuter,
                                      std::vector<std::uint32_t> dest) {
  return submit(permuter, std::move(dest)).get();
}

PermuteService::Engine* PermuteService::ensure_engine(std::size_t shard, const Key& key,
                                                      std::exception_ptr& factory_error) {
  auto& engines = states_[shard]->engines;
  auto it = engines.find(key);
  if (it == engines.end()) it = engines.emplace(key, Engine{}).first;
  Engine& e = it->second;

  if (!e.permuter) {
    try {
      e.permuter = key.first->factory(key.second);
    } catch (...) {
      // Deterministic configuration error (bad n for this fabric): no
      // fallback exists, so it surfaces as an exception.
      factory_error = std::current_exception();
      return nullptr;
    }
  }

  // Compile the route circuit once per (permuter, n, shard).  A compile
  // failure is not terminal: the host routing path answers every request
  // (counted degraded), and we don't retry -- the circuit is deterministic,
  // so the next attempt would fail identically.
  if (!e.runner && !e.compile_attempted) {
    e.compile_attempted = true;
    try {
      e.runner = std::make_unique<netlist::BatchRunner>(e.permuter->build_route_circuit(),
                                                        opts_.batch);
      compiled_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard lk(engines_m_);
      engine_infos_.push_back(EngineInfo{key.first->name, key.second, shard,
                                         e.runner->backend()});
    } catch (...) {
      // swallowed: the host path serves alone
    }
  }
  return &e;
}

void PermuteService::resolve_host(Engine& e, Request& r) {
  try {
    std::vector<std::size_t> wide(r.dest.begin(), r.dest.end());
    const auto routed = e.permuter->route(wide);
    if (!routed) {
      unroutable_.fetch_add(1, std::memory_order_relaxed);
      r.promise.set_value(PermuteResult{Status::Unroutable, {}});
      return;
    }
    PermuteResult res{Status::Ok, {}};
    res.output_source.assign(routed->begin(), routed->end());
    degraded_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    r.promise.set_value(std::move(res));
  } catch (...) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    r.promise.set_value(PermuteResult{Status::Failed, {}});
  }
}

void PermuteService::process(std::size_t shard, const Key& key, std::vector<Request>& batch) {
  ShardState& st = *states_[shard];
  const auto formed = Clock::now();

  // Cancel what already missed its deadline; collect the rest.
  std::vector<Request*> live;
  live.reserve(batch.size());
  for (auto& r : batch) {
    queue_wait_h_.record(us_between(r.enqueued, formed));
    if (r.deadline <= formed) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      r.promise.set_value(PermuteResult{Status::Expired, {}});
      continue;
    }
    live.push_back(&r);
  }
  if (live.empty()) return;

  auto& c = exec_->counters(shard);
  batches_.fetch_add(1, std::memory_order_relaxed);
  c.batches.fetch_add(1, std::memory_order_relaxed);
  c.lanes.fetch_add(live.size(), std::memory_order_relaxed);
  batch_size_h_.record(live.size());

  std::exception_ptr factory_error;
  Engine* engine = ensure_engine(shard, key, factory_error);
  if (!engine) {
    failed_.fetch_add(live.size(), std::memory_order_relaxed);
    for (auto* r : live) r->promise.set_exception(factory_error);
    return;
  }
  Engine& e = *engine;

  if (!e.runner) {
    // No compiled engine: every request rides the host reference path.
    for (auto* r : live) resolve_host(e, *r);
    return;
  }

  // Encode each request into its lane block; blocked patterns resolve
  // Unroutable right here, before any evaluation.
  const std::size_t lanes_per = e.permuter->lanes_per_request();
  std::vector<BitVec>& inputs = st.inputs;
  std::vector<BitVec>& outputs = st.outputs;
  inputs.resize(live.size() * lanes_per);
  std::vector<Request*> evald;
  evald.reserve(live.size());
  for (auto* r : live) {
    st.dest_tmp.assign(r->dest.begin(), r->dest.end());
    const std::span<BitVec> lanes{inputs.data() + evald.size() * lanes_per, lanes_per};
    if (!e.permuter->encode(st.dest_tmp, lanes)) {
      unroutable_.fetch_add(1, std::memory_order_relaxed);
      r->promise.set_value(PermuteResult{Status::Unroutable, {}});
      continue;
    }
    evald.push_back(r);
  }
  if (evald.empty()) return;
  inputs.resize(evald.size() * lanes_per);

  outputs.resize(inputs.size());
  const auto t0 = Clock::now();
  bool eval_ok = false;
  try {
    e.runner->run(inputs, outputs);
    eval_ok = true;
  } catch (...) {
    // The circuit path is an optimization: the host path still owns these.
  }
  eval_h_.record(us_between(t0, Clock::now()));
  if (!eval_ok) {
    for (auto* r : evald) resolve_host(e, *r);
    return;
  }

  for (std::size_t k = 0; k < evald.size(); ++k) {
    Request& r = *evald[k];
    const std::span<const BitVec> lanes{outputs.data() + k * lanes_per, lanes_per};
    e.permuter->decode(lanes, st.decoded_tmp);
    if (opts_.self_check) {
      // output_source[dest[i]] == i for all i is a complete oracle.
      bool ok = st.decoded_tmp.size() == r.n;
      for (std::size_t i = 0; ok && i < r.n; ++i) {
        ok = st.decoded_tmp[r.dest[i]] == i;
      }
      if (!ok) {
        self_check_failed_.fetch_add(1, std::memory_order_relaxed);
        resolve_host(e, r);
        continue;
      }
    }
    PermuteResult res{Status::Ok, {}};
    res.output_source.assign(st.decoded_tmp.begin(), st.decoded_tmp.end());
    completed_.fetch_add(1, std::memory_order_relaxed);
    r.promise.set_value(std::move(res));
  }
}

ServiceStats PermuteService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.stopped = stopped_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.unroutable = unroutable_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.compiled = compiled_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.self_check_failed = self_check_failed_.load(std::memory_order_relaxed);
  const auto jit = netlist::jit_counters();
  s.jit_compiles = jit.compiles - jit_baseline_.compiles;
  s.jit_cache_hits = jit.cache_hits - jit_baseline_.cache_hits;
  s.jit_fallbacks = jit.fallbacks - jit_baseline_.fallbacks;
  {
    std::lock_guard lk(engines_m_);
    s.engines = engine_infos_;
  }
  const std::size_t nsh = exec_->shard_count();
  s.per_shard.reserve(nsh);
  for (std::size_t i = 0; i < nsh; ++i) {
    const auto& c = exec_->counters(i);
    ShardStats ss;
    ss.routed = c.routed.load(std::memory_order_relaxed);
    ss.batches = c.batches.load(std::memory_order_relaxed);
    ss.steals = c.steals.load(std::memory_order_relaxed);
    ss.stolen_requests = c.stolen_requests.load(std::memory_order_relaxed);
    ss.queue_depth = exec_->queue_depth(i);
    const std::uint64_t lanes = c.lanes.load(std::memory_order_relaxed);
    ss.lane_occupancy =
        ss.batches == 0
            ? 0.0
            : static_cast<double>(lanes) /
                  (static_cast<double>(ss.batches) * static_cast<double>(opts_.max_batch_lanes));
    s.steals += ss.steals;
    s.stolen_requests += ss.stolen_requests;
    s.per_shard.push_back(ss);
  }
  s.batch_size = batch_size_h_.snapshot();
  s.queue_wait_us = queue_wait_h_.snapshot();
  s.eval_us = eval_h_.snapshot();
  return s;
}

}  // namespace absort::service
