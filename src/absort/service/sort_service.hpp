#pragma once
// SortService: an asynchronous, sharded micro-batching serving layer over
// the bit-sliced batch engine.
//
// One compiled word-program pass amortizes over up to kBlockLanes (512)
// vectors, so the engine's 10-40x batch speedups are only realized when
// requests arrive together.  Under live traffic they don't: producers
// submit one vector at a time.  SortService closes that gap the way
// inference servers do -- request coalescing under a latency budget:
//
//   * producers submit(sorter_name, vector [, deadline]) from any number of
//     threads and get a std::future<SortResult>;
//   * requests route to one of `shards` per-core executors by an affinity
//     hash of (sorter, n), so repeat traffic for one engine stays hot on one
//     shard (queue, dispatcher, compiled-engine cache, and pack/unpack
//     scratch all live there -- no cache-line bouncing between cores);
//   * each shard's bounded submission queue applies backpressure (Block) or
//     fails fast (Reject -> Status::QueueFull) when producers outrun it;
//   * each shard's coalescing dispatcher drains its queue, groups requests
//     by (sorter, n), and forms micro-batches up to max_batch_lanes,
//     lingering up to max_linger (never past a request's deadline) for
//     stragglers of the same key;
//   * a shard whose queue runs dry *steals* a micro-batch from a sibling
//     whose queue depth is at least steal_threshold -- imbalanced traffic
//     (one hot key) still spreads across cores, at the price of the thief
//     compiling its own engine for the stolen key;
//   * each (sorter, n) key compiles its BatchSorter engine once per shard
//     that serves it (registry -> make_batch_sorter); repeat traffic on the
//     home shard never recompiles;
//   * requests whose deadline passes while queued are cancelled
//     (Status::Expired) without being evaluated;
//   * stop() drains every shard's queue, answers everything in flight, then
//     joins the dispatchers; later submits fail fast with Status::Stopped.
//
// The queue/shard/steal machinery itself is the workload-agnostic
// ShardedExecutor<Key, Request> (sharded_executor.hpp), shared with
// PermuteService; this class owns what is sorting-specific -- the registry
// lookup, the compiled-engine cache, and the degradation ladder below.
//
// The batch engine is treated as an optimization, never a correctness
// dependency.  A degradation ladder guards it: engine compilation retries
// with capped exponential backoff; persistently failing engines are
// quarantined onto the trusted per-vector path (results stay bit-identical,
// stats count them `degraded`); an optional per-batch self-check (sortedness
// + population count -- a complete oracle for 0-1 outputs) re-evaluates only
// mismatched lanes; and only a request whose per-vector fallback also failed
// is answered with the terminal Status::Failed.  Ladder *state* (strikes,
// quarantine, parole) is global across shards: a fault detected on any shard
// quarantines the (sorter, n) key everywhere, so no shard keeps serving a
// suspect engine that another shard has already caught misbehaving.
// fault_injection.hpp provides the seeded FaultPlan chaos schedules that
// exercise the ladder.
//
// Every stage records into ServiceStats (counters + batch-size and latency
// histograms, plus per-shard batch/steal/occupancy counters); see
// service_stats.hpp.

#include <chrono>
#include <cstddef>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "absort/netlist/batch_eval.hpp"
#include "absort/netlist/levelized.hpp"
#include "absort/netlist/native_engine.hpp"
#include "absort/service/service_stats.hpp"
#include "absort/service/sharded_executor.hpp"
#include "absort/service/status.hpp"
#include "absort/sorters/registry.hpp"
#include "absort/util/bitvec.hpp"

namespace absort::service {

class FaultPlan;  // fault_injection.hpp; only chaos installers need it

struct SortResult {
  Status status = Status::Ok;
  BitVec output;  ///< valid only when status == Status::Ok
};

/// Batch-output verification tiers (the self-check rung of the degradation
/// ladder).  See ServiceOptions::self_check.
enum class SelfCheck {
  Off,   ///< trust the engine
  Full,  ///< per-lane 0-1 oracle: sorted + population count (complete)
  Cheap, ///< bit-sliced structural probe (one period of the network) over the
         ///< whole batch; complete against structural (comparator) faults,
         ///< blind to payload corruption -- see the field comment
};

struct ServiceOptions {
  /// Per-core executors (clamped to >= 1).  Each shard owns a bounded
  /// submission queue, a coalescing dispatcher thread, a compiled-engine
  /// cache, and -- through that cache -- its own BatchRunner worker pool and
  /// pack/unpack scratch.  Requests route by hash(sorter, n) % shards.
  /// 1 keeps the classic single-dispatcher service.
  std::size_t shards = 1;

  /// Work stealing: a shard whose queue runs dry steals one micro-batch from
  /// a sibling whose queue depth is at least this threshold (0 disables
  /// stealing).  Below the threshold the backlog is cheaper to serve on its
  /// home shard (warm engine) than to rebalance.
  std::size_t steal_threshold = 4;

  /// Pin shard dispatcher i to core i % hardware_concurrency via
  /// pthread_setaffinity_np.  Best effort: silently skipped on platforms
  /// without the call or when the process affinity mask forbids it.  With
  /// shards == cores and the default per-shard engine worker budget of 1,
  /// evaluation then never migrates across cores.
  bool pin_threads = false;

  /// Bounded submission queue slots *per shard* (clamped to >= 1).
  std::size_t queue_capacity = 4096;

  /// Micro-batch size cap; the engine evaluates up to kBlockLanes vectors
  /// per compiled-program pass, so that is the natural (and default) cap.
  /// 1 disables coalescing (every request rides its own pass).
  std::size_t max_batch_lanes = netlist::kBlockLanes;

  /// How long a dispatcher waits for same-key stragglers after picking up
  /// a request whose batch is not yet full.  0 disables lingering.
  std::chrono::microseconds max_linger{200};

  /// What submit() does when the target shard's queue is full.
  enum class Overflow {
    Block,   ///< wait for space (up to the request's deadline)
    Reject,  ///< fail fast with Status::QueueFull
  } overflow = Overflow::Block;

  /// Knobs for the per-key compiled engines ({threads, optimize}).  With
  /// shards > 1 and threads == 0, the constructor divides the machine:
  /// each shard's engines get max(1, hardware_concurrency / shards) workers,
  /// so shards never oversubscribe the cores they are meant to split.
  sorters::BatchOptions batch{};

  // -- robustness ladder (retry -> quarantine -> per-vector -> Failed) ------
  //
  // The batch engine is an optimization, never a correctness dependency: a
  // key whose engine misbehaves retreats to the per-vector reference path
  // (LevelizedCircuit::eval for combinational sorters, BinarySorter::sort
  // for model B), which stays bit-identical.  Ladder state is shared by all
  // shards (see header comment).  See DESIGN.md "Fault model".

  /// make_batch_sorter() attempts per key before the key is quarantined
  /// onto the per-vector path (clamped to >= 1).
  std::size_t compile_attempts = 3;

  /// Backoff between compile attempts doubles from `compile_backoff` up to
  /// `compile_backoff_cap` (the dispatcher sleeps, so keep these small).
  std::chrono::microseconds compile_backoff{200};
  std::chrono::microseconds compile_backoff_cap{10'000};

  /// Engine strikes (an eval exception or a self-check miss counts one,
  /// summed across shards) before the key is quarantined (clamped to >= 1).
  std::size_t quarantine_after = 3;

  /// Batches a quarantined key serves per-vector (on any shard) before its
  /// strikes are cleared and the batch path (including compilation) is
  /// retried.  0 makes quarantine permanent.  A flapping engine costs at
  /// most one faulty batch per `probation` healthy ones.
  std::size_t probation = 0;

  /// Batch-output verification tier.
  ///
  /// Full verifies every batch output lane with the complete 0-1 oracle
  /// (sorted + population count) and re-evaluates only mismatched lanes
  /// through the per-vector path.
  ///
  /// Cheap evaluates the sorter's self_check_probe() -- one period L of a
  /// periodic network, whose 0-1 fixpoints are exactly the sorted vectors --
  /// bit-sliced over the whole batch and flags lanes with L(y) != y.  One
  /// probe pass amortizes over up to kBlockLanes outputs, so it undercuts
  /// the per-lane oracle (E-T2 measures the gap).  It is *complete* against
  /// structural faults in comparator-only engines (a comparator fault
  /// preserves the population count, so a wrong output is unsorted and every
  /// unsorted output fails the probe), but blind to corruption that forges a
  /// sorted output with the wrong population count.  Sorters without a probe
  /// (self_check_probe() == nullopt, or probe compilation fails) fall back
  /// to the Full oracle for that key.
  ///
  /// Upgraded to Full whenever `fault_plan` can corrupt outputs (which can
  /// forge sorted-but-wrong outputs Cheap cannot see), so Status::Ok always
  /// implies a correct result.
  SelfCheck self_check = SelfCheck::Off;

  /// Seeded chaos schedule perturbing the batch path (testing; see
  /// fault_injection.hpp).  No-op when null.
  std::shared_ptr<FaultPlan> fault_plan;
};

class SortService {
 public:
  using Clock = std::chrono::steady_clock;

  explicit SortService(ServiceOptions opts = {});
  ~SortService();  ///< stop(): drain, answer, join

  SortService(const SortService&) = delete;
  SortService& operator=(const SortService&) = delete;

  /// Submits one vector to be sorted by registry sorter `sorter` at size
  /// input.size().  Unknown sorter names throw std::invalid_argument
  /// immediately (listing the available sorters); a sorter constructor or
  /// engine failure for this (sorter, n) is delivered through the future as
  /// an exception.  The future is always eventually satisfied.
  [[nodiscard]] std::future<SortResult> submit(
      std::string_view sorter, BitVec input,
      Clock::time_point deadline = Clock::time_point::max());

  /// Blocking convenience: submit and wait.
  [[nodiscard]] SortResult sort(std::string_view sorter, BitVec input);

  /// Drain-then-stop: processes everything already accepted (including
  /// batches a thief stole and still holds), then joins every dispatcher.
  /// Idempotent; safe to call from any thread.  Blocked submitters are
  /// released with Status::Stopped.
  void stop();

  /// Lifetime counters + histograms so far (callable any time, any thread).
  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] const ServiceOptions& options() const noexcept { return opts_; }

  /// Number of per-core executors (>= 1).
  [[nodiscard]] std::size_t shard_count() const noexcept { return exec_->shard_count(); }

  /// The shard the affinity hash routes (sorter, n) to -- observability and
  /// test hooks.  Unknown sorter names throw like submit().
  [[nodiscard]] std::size_t shard_of(std::string_view sorter, std::size_t n) const;

 private:
  /// Coalescing key: registry entry (stable static storage) + vector size.
  using Key = std::pair<const sorters::RegistryEntry*, std::size_t>;

  struct Request {
    const sorters::RegistryEntry* entry;
    std::size_t n;
    BitVec input;
    std::promise<SortResult> promise;
    Clock::time_point deadline;
    Clock::time_point enqueued{};  ///< stamped by the executor at admission

    [[nodiscard]] Key key() const noexcept { return Key{entry, n}; }
  };

  using Executor = ShardedExecutor<Key, Request>;

  /// A cached per-(sorter, n, shard) engine: the sorter instance (the
  /// fallback engine references it), its compiled BatchSorter, plus the
  /// lazily built per-vector fallback.  Ladder state lives in `ladder_`,
  /// shared by every shard.
  struct Engine {
    std::unique_ptr<sorters::BinarySorter> sorter;
    std::unique_ptr<sorters::BatchSorter> batch;  ///< null until compiled / while quarantined
    std::optional<netlist::Circuit> circuit;      ///< lazy; combinational only
    std::unique_ptr<netlist::LevelizedCircuit> fallback;  ///< lazy per-vector path
    /// Compiled self_check_probe() for the Cheap tier; null when the sorter
    /// has none (that key falls back to the Full oracle).  Lazy; built by
    /// ensure_probe() on the first Cheap-checked batch.
    std::unique_ptr<netlist::BitSlicedEvaluator> probe;
    bool probe_tried = false;
  };

  /// Degradation-ladder state for one (sorter, n), global across shards: a
  /// strike or quarantine recorded by any shard is honored by all of them
  /// before the next batch, and parole counts batches served anywhere.
  struct Ladder {
    std::size_t strikes = 0;   ///< eval exceptions + self-check misses so far
    bool quarantined = false;  ///< on the per-vector path (see parole)
    std::size_t parole = 0;    ///< quarantined batches left before re-trying
  };

  /// Dispatcher-owned per-shard state: the compiled-engine cache plus the
  /// pack/unpack staging buffers (the per-shard arena).  Touched only by
  /// that shard's dispatcher thread -- the hot path never shares cache
  /// lines with another shard.
  struct ShardState {
    std::map<Key, Engine> engines;
    std::vector<BitVec> inputs;   ///< reused across micro-batches
    std::vector<BitVec> outputs;  ///< reused across micro-batches
    std::vector<wordvec::Word> probe_mismatch;  ///< Cheap tier: per-lane L(y) != y bits
    std::vector<wordvec::Vec> probe_scratch;    ///< Cheap tier: packing scratch
  };

  /// Expires, evaluates, and answers one formed micro-batch (executor
  /// process callback; runs on shard `shard`'s dispatcher thread).
  void process(std::size_t shard, const Key& key, std::vector<Request>& batch);
  /// Compiles the key's engine on first sight on this shard, retrying with
  /// capped exponential backoff and quarantining (globally) on persistent
  /// failure; returns null only when the sorter factory itself threw
  /// (`factory_error` set).
  Engine* ensure_engine(std::size_t shard, const Key& key, std::exception_ptr& factory_error);
  /// One engine misbehaviour; quarantines the key (on every shard) at
  /// quarantine_after accumulated strikes.
  void strike(Engine& e, const Key& key);
  /// Compiles the engine's self_check_probe() on first use (Cheap tier);
  /// leaves e.probe null -- Full-oracle fallback -- when the sorter has no
  /// probe or compilation throws (the check must never take serving down).
  void ensure_probe(Engine& e);
  /// The trusted per-vector reference path (never fault-injected).
  BitVec per_vector(Engine& e, const BitVec& in);
  /// Affinity routing: hash(sorter, n) % shards.
  [[nodiscard]] std::size_t route(const Key& key) const noexcept;

  ServiceOptions opts_;

  std::vector<std::unique_ptr<ShardState>> states_;

  /// Ladder state shared by all shards; its mutex is cold-path only (taken
  /// once per micro-batch, never per request).
  mutable std::mutex ladder_m_;
  std::map<Key, Ladder> ladder_;

  /// Every engine compile (sorter, n, shard, resolved backend), recorded at
  /// compile time by whichever dispatcher did it; its mutex is cold-path only
  /// (taken once per compile and per stats() call).
  mutable std::mutex engines_m_;
  std::vector<EngineInfo> engine_infos_;

  /// Process-wide netlist::jit_counters() at construction; stats() reports
  /// the deltas so concurrent services don't charge each other's compiles.
  netlist::JitCounters jit_baseline_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> stopped_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> compiled_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> self_check_failed_{0};
  std::atomic<std::uint64_t> cheap_checks_{0};
  std::atomic<std::uint64_t> unrecoverable_{0};
  Histogram batch_size_h_;
  Histogram queue_wait_h_;
  Histogram eval_h_;

  /// Constructed last (after every member its process callback touches);
  /// declared last so it stops first on destruction.
  std::unique_ptr<Executor> exec_;
};

}  // namespace absort::service
