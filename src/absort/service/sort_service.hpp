#pragma once
// SortService: an asynchronous micro-batching serving layer over the
// bit-sliced batch engine.
//
// One compiled word-program pass amortizes over up to kBlockLanes (512)
// vectors, so the engine's 10-40x batch speedups are only realized when
// requests arrive together.  Under live traffic they don't: producers
// submit one vector at a time.  SortService closes that gap the way
// inference servers do -- request coalescing under a latency budget:
//
//   * producers submit(sorter_name, vector [, deadline]) from any number of
//     threads and get a std::future<SortResult>;
//   * a bounded submission queue applies backpressure (Block) or fails fast
//     (Reject -> Status::QueueFull) when producers outrun the engine;
//   * one coalescing dispatcher drains the queue, groups requests by
//     (sorter, n), and forms micro-batches up to max_batch_lanes, lingering
//     up to max_linger (never past a request's deadline) for stragglers of
//     the same key;
//   * each (sorter, n) key compiles its BatchSorter engine exactly once
//     (registry -> make_batch_sorter); repeat traffic never recompiles;
//   * requests whose deadline passes while queued are cancelled
//     (Status::Expired) without being evaluated;
//   * stop() drains the queue, answers everything in flight, then joins the
//     dispatcher; later submits fail fast with Status::Stopped.
//
// Every stage records into ServiceStats (counters + batch-size and latency
// histograms); see service_stats.hpp.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "absort/netlist/batch_eval.hpp"
#include "absort/service/service_stats.hpp"
#include "absort/sorters/registry.hpp"
#include "absort/util/bitvec.hpp"

namespace absort::service {

/// Terminal state of one request.
enum class Status {
  Ok,         ///< sorted; SortResult::output holds the result
  QueueFull,  ///< rejected: queue at capacity under the Reject policy
  Expired,    ///< cancelled: deadline passed before evaluation
  Stopped,    ///< rejected: submitted after stop()
};

[[nodiscard]] const char* to_string(Status s);

struct SortResult {
  Status status = Status::Ok;
  BitVec output;  ///< valid only when status == Status::Ok
};

struct ServiceOptions {
  /// Bounded submission queue slots (clamped to >= 1).
  std::size_t queue_capacity = 4096;

  /// Micro-batch size cap; the engine evaluates up to kBlockLanes vectors
  /// per compiled-program pass, so that is the natural (and default) cap.
  /// 1 disables coalescing (every request rides its own pass).
  std::size_t max_batch_lanes = netlist::kBlockLanes;

  /// How long the dispatcher waits for same-key stragglers after picking up
  /// a request whose batch is not yet full.  0 disables lingering.
  std::chrono::microseconds max_linger{200};

  /// What submit() does when the queue is full.
  enum class Overflow {
    Block,   ///< wait for space (up to the request's deadline)
    Reject,  ///< fail fast with Status::QueueFull
  } overflow = Overflow::Block;

  /// Knobs for the per-key compiled engines ({threads, optimize}).
  sorters::BatchOptions batch{};
};

class SortService {
 public:
  using Clock = std::chrono::steady_clock;

  explicit SortService(ServiceOptions opts = {});
  ~SortService();  ///< stop(): drain, answer, join

  SortService(const SortService&) = delete;
  SortService& operator=(const SortService&) = delete;

  /// Submits one vector to be sorted by registry sorter `sorter` at size
  /// input.size().  Unknown sorter names throw std::invalid_argument
  /// immediately (listing the available sorters); a sorter constructor or
  /// engine failure for this (sorter, n) is delivered through the future as
  /// an exception.  The future is always eventually satisfied.
  [[nodiscard]] std::future<SortResult> submit(
      std::string_view sorter, BitVec input,
      Clock::time_point deadline = Clock::time_point::max());

  /// Blocking convenience: submit and wait.
  [[nodiscard]] SortResult sort(std::string_view sorter, BitVec input);

  /// Drain-then-stop: processes everything already accepted, then joins the
  /// dispatcher.  Idempotent; safe to call from any thread.  Blocked
  /// submitters are released with Status::Stopped.
  void stop();

  /// Lifetime counters + histograms so far (callable any time, any thread).
  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] const ServiceOptions& options() const noexcept { return opts_; }

 private:
  /// Coalescing key: registry entry (stable static storage) + vector size.
  using Key = std::pair<const sorters::RegistryEntry*, std::size_t>;

  struct Request {
    const sorters::RegistryEntry* entry;
    std::size_t n;
    BitVec input;
    std::promise<SortResult> promise;
    Clock::time_point deadline;
    Clock::time_point enqueued;
  };

  /// A cached per-(sorter, n) engine: the sorter instance (the fallback
  /// engine references it) plus its compiled BatchSorter.
  struct Engine {
    std::unique_ptr<sorters::BinarySorter> sorter;
    std::unique_ptr<sorters::BatchSorter> batch;
  };

  void dispatch_loop();
  /// Moves up to the batch-size cap of key-matching requests out of the
  /// queue (caller holds m_).
  void take_matching(const Key& key, std::vector<Request>& batch);
  /// Expires, evaluates, and answers one formed micro-batch (no lock held).
  void process(const Key& key, std::vector<Request>& batch, std::vector<BitVec>& inputs,
               std::vector<BitVec>& outputs);

  ServiceOptions opts_;

  mutable std::mutex m_;
  std::condition_variable cv_work_;   ///< queue became non-empty / stopping
  std::condition_variable cv_space_;  ///< queue freed a slot / stopping
  std::deque<Request> queue_;
  bool stopping_ = false;

  std::map<Key, Engine> engines_;  ///< dispatcher-only (no lock needed)

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> stopped_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> compiled_{0};
  Histogram batch_size_h_;
  Histogram queue_wait_h_;
  Histogram eval_h_;

  std::once_flag join_once_;
  std::thread dispatcher_;  ///< started last; everything above is ready first
};

}  // namespace absort::service
