#pragma once
// SortService: an asynchronous micro-batching serving layer over the
// bit-sliced batch engine.
//
// One compiled word-program pass amortizes over up to kBlockLanes (512)
// vectors, so the engine's 10-40x batch speedups are only realized when
// requests arrive together.  Under live traffic they don't: producers
// submit one vector at a time.  SortService closes that gap the way
// inference servers do -- request coalescing under a latency budget:
//
//   * producers submit(sorter_name, vector [, deadline]) from any number of
//     threads and get a std::future<SortResult>;
//   * a bounded submission queue applies backpressure (Block) or fails fast
//     (Reject -> Status::QueueFull) when producers outrun the engine;
//   * one coalescing dispatcher drains the queue, groups requests by
//     (sorter, n), and forms micro-batches up to max_batch_lanes, lingering
//     up to max_linger (never past a request's deadline) for stragglers of
//     the same key;
//   * each (sorter, n) key compiles its BatchSorter engine exactly once
//     (registry -> make_batch_sorter); repeat traffic never recompiles;
//   * requests whose deadline passes while queued are cancelled
//     (Status::Expired) without being evaluated;
//   * stop() drains the queue, answers everything in flight, then joins the
//     dispatcher; later submits fail fast with Status::Stopped.
//
// The batch engine is treated as an optimization, never a correctness
// dependency.  A degradation ladder guards it: engine compilation retries
// with capped exponential backoff; persistently failing engines are
// quarantined onto the trusted per-vector path (results stay bit-identical,
// stats count them `degraded`); an optional per-batch self-check (sortedness
// + population count -- a complete oracle for 0-1 outputs) re-evaluates only
// mismatched lanes; and only a request whose per-vector fallback also failed
// is answered with the terminal Status::Failed.  fault_injection.hpp
// provides the seeded FaultPlan chaos schedules that exercise the ladder.
//
// Every stage records into ServiceStats (counters + batch-size and latency
// histograms); see service_stats.hpp.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include <optional>

#include "absort/netlist/batch_eval.hpp"
#include "absort/netlist/levelized.hpp"
#include "absort/service/service_stats.hpp"
#include "absort/sorters/registry.hpp"
#include "absort/util/bitvec.hpp"

namespace absort::service {

class FaultPlan;  // fault_injection.hpp; only chaos installers need it

/// Terminal state of one request.
enum class Status {
  Ok,         ///< sorted; SortResult::output holds the result
  QueueFull,  ///< rejected: queue at capacity under the Reject policy
  Expired,    ///< cancelled: deadline passed before evaluation
  Stopped,    ///< rejected: submitted after stop()
  Failed,     ///< unrecoverable: every degradation rung failed for this request
};

[[nodiscard]] const char* to_string(Status s);

struct SortResult {
  Status status = Status::Ok;
  BitVec output;  ///< valid only when status == Status::Ok
};

struct ServiceOptions {
  /// Bounded submission queue slots (clamped to >= 1).
  std::size_t queue_capacity = 4096;

  /// Micro-batch size cap; the engine evaluates up to kBlockLanes vectors
  /// per compiled-program pass, so that is the natural (and default) cap.
  /// 1 disables coalescing (every request rides its own pass).
  std::size_t max_batch_lanes = netlist::kBlockLanes;

  /// How long the dispatcher waits for same-key stragglers after picking up
  /// a request whose batch is not yet full.  0 disables lingering.
  std::chrono::microseconds max_linger{200};

  /// What submit() does when the queue is full.
  enum class Overflow {
    Block,   ///< wait for space (up to the request's deadline)
    Reject,  ///< fail fast with Status::QueueFull
  } overflow = Overflow::Block;

  /// Knobs for the per-key compiled engines ({threads, optimize}).
  sorters::BatchOptions batch{};

  // -- robustness ladder (retry -> quarantine -> per-vector -> Failed) ------
  //
  // The batch engine is an optimization, never a correctness dependency: a
  // key whose engine misbehaves retreats to the per-vector reference path
  // (LevelizedCircuit::eval for combinational sorters, BinarySorter::sort
  // for model B), which stays bit-identical.  See DESIGN.md "Fault model".

  /// make_batch_sorter() attempts per key before the key is quarantined
  /// onto the per-vector path (clamped to >= 1).
  std::size_t compile_attempts = 3;

  /// Backoff between compile attempts doubles from `compile_backoff` up to
  /// `compile_backoff_cap` (the dispatcher sleeps, so keep these small).
  std::chrono::microseconds compile_backoff{200};
  std::chrono::microseconds compile_backoff_cap{10'000};

  /// Engine strikes (an eval exception or a self-check miss counts one)
  /// before the key is quarantined (clamped to >= 1).
  std::size_t quarantine_after = 3;

  /// Batches a quarantined key serves per-vector before its strikes are
  /// cleared and the batch path (including compilation) is retried.
  /// 0 makes quarantine permanent.  A flapping engine costs at most one
  /// faulty batch per `probation` healthy ones.
  std::size_t probation = 0;

  /// Verify every batch output lane (sorted + population count -- a complete
  /// oracle for 0-1 outputs) and re-evaluate only mismatched lanes through
  /// the per-vector path.  Forced on whenever `fault_plan` can corrupt
  /// outputs, so Status::Ok always implies a correct result.
  bool self_check = false;

  /// Seeded chaos schedule perturbing the batch path (testing; see
  /// fault_injection.hpp).  No-op when null.
  std::shared_ptr<FaultPlan> fault_plan;
};

class SortService {
 public:
  using Clock = std::chrono::steady_clock;

  explicit SortService(ServiceOptions opts = {});
  ~SortService();  ///< stop(): drain, answer, join

  SortService(const SortService&) = delete;
  SortService& operator=(const SortService&) = delete;

  /// Submits one vector to be sorted by registry sorter `sorter` at size
  /// input.size().  Unknown sorter names throw std::invalid_argument
  /// immediately (listing the available sorters); a sorter constructor or
  /// engine failure for this (sorter, n) is delivered through the future as
  /// an exception.  The future is always eventually satisfied.
  [[nodiscard]] std::future<SortResult> submit(
      std::string_view sorter, BitVec input,
      Clock::time_point deadline = Clock::time_point::max());

  /// Blocking convenience: submit and wait.
  [[nodiscard]] SortResult sort(std::string_view sorter, BitVec input);

  /// Drain-then-stop: processes everything already accepted, then joins the
  /// dispatcher.  Idempotent; safe to call from any thread.  Blocked
  /// submitters are released with Status::Stopped.
  void stop();

  /// Lifetime counters + histograms so far (callable any time, any thread).
  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] const ServiceOptions& options() const noexcept { return opts_; }

 private:
  /// Coalescing key: registry entry (stable static storage) + vector size.
  using Key = std::pair<const sorters::RegistryEntry*, std::size_t>;

  struct Request {
    const sorters::RegistryEntry* entry;
    std::size_t n;
    BitVec input;
    std::promise<SortResult> promise;
    Clock::time_point deadline;
    Clock::time_point enqueued;
  };

  /// A cached per-(sorter, n) engine: the sorter instance (the fallback
  /// engine references it), its compiled BatchSorter, plus the lazily built
  /// per-vector fallback and the degradation-ladder state.
  struct Engine {
    std::unique_ptr<sorters::BinarySorter> sorter;
    std::unique_ptr<sorters::BatchSorter> batch;  ///< null until compiled / after quarantine
    std::optional<netlist::Circuit> circuit;      ///< lazy; combinational only
    std::unique_ptr<netlist::LevelizedCircuit> fallback;  ///< lazy per-vector path
    std::size_t strikes = 0;   ///< eval exceptions + self-check misses so far
    bool quarantined = false;  ///< on the per-vector path (see parole)
    std::size_t parole = 0;    ///< quarantined batches left before re-trying
  };

  void dispatch_loop();
  /// Moves up to the batch-size cap of key-matching requests out of the
  /// queue (caller holds m_).
  void take_matching(const Key& key, std::vector<Request>& batch);
  /// Expires, evaluates, and answers one formed micro-batch (no lock held).
  void process(const Key& key, std::vector<Request>& batch, std::vector<BitVec>& inputs,
               std::vector<BitVec>& outputs);
  /// Compiles the key's engine on first sight, retrying with capped
  /// exponential backoff and quarantining on persistent failure; returns
  /// null only when the sorter factory itself threw (`factory_error` set).
  Engine* ensure_engine(const Key& key, std::exception_ptr& factory_error);
  /// One engine misbehaviour; quarantines the key at quarantine_after.
  void strike(Engine& e);
  /// The trusted per-vector reference path (never fault-injected).
  BitVec per_vector(Engine& e, const BitVec& in);

  ServiceOptions opts_;

  mutable std::mutex m_;
  std::condition_variable cv_work_;   ///< queue became non-empty / stopping
  std::condition_variable cv_space_;  ///< queue freed a slot / stopping
  std::deque<Request> queue_;
  bool stopping_ = false;

  std::map<Key, Engine> engines_;  ///< dispatcher-only (no lock needed)

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> stopped_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> compiled_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> self_check_failed_{0};
  std::atomic<std::uint64_t> unrecoverable_{0};
  Histogram batch_size_h_;
  Histogram queue_wait_h_;
  Histogram eval_h_;

  std::once_flag join_once_;
  std::thread dispatcher_;  ///< started last; everything above is ready first
};

}  // namespace absort::service
