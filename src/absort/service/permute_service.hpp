#pragma once
// PermuteService: asynchronous, sharded micro-batching service for
// permutation routing -- the second workload riding the ShardedExecutor
// serving core that SortService extracted (sharded_executor.hpp).
//
// Producers submit(permuter_name, destination_permutation [, deadline]) and
// get a std::future<PermuteResult>; requests route to a per-core executor by
// the same affinity hash of (permuter, n), coalesce into micro-batches per
// (permuter, n) key under the deadline-clipped linger budget, and spread
// across cores by work stealing -- all policy identical to SortService
// because it *is* the same executor.
//
// What is permute-specific:
//   * the workload key is a permuters::RegistryEntry (networks/permuters.hpp)
//     instead of a sorter;
//   * each shard's engine cache compiles the permuter's route circuit into a
//     netlist::BatchRunner once per (permuter, n, shard); a request occupies
//     Permuter::lanes_per_request() lanes of the batch (lg n for the switch
//     fabrics, 1 for the sorting permuter);
//   * a pattern the fabric blocks on (omega on e.g. bit reversal) is
//     answered Status::Unroutable before any evaluation -- a well-formed
//     request whose answer is "this hardware cannot realize that", distinct
//     from every failure mode;
//   * the circuit path is an optimization, never a correctness dependency:
//     if the engine fails to compile or an evaluation throws, the request is
//     answered through the host routing algorithm (Permuter::route) and
//     counted `degraded`; optional self_check verifies every decoded result
//     against the submitted permutation (output_source[dest[i]] == i) and
//     repairs mismatches the same way.
//
// Malformed submissions -- an unknown permuter name, a non-power-of-two n,
// or a `dest` that is not a permutation (duplicate or out-of-range entries)
// -- throw std::invalid_argument immediately; the future machinery is never
// engaged for garbage.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <utility>
#include <vector>

#include "absort/netlist/batch_eval.hpp"
#include "absort/netlist/native_engine.hpp"
#include "absort/networks/permuters.hpp"
#include "absort/service/service_stats.hpp"
#include "absort/service/sharded_executor.hpp"
#include "absort/service/status.hpp"
#include "absort/util/bitvec.hpp"

namespace absort::service {

struct PermuteResult {
  Status status = Status::Ok;
  /// output_source[j] = the input whose packet the fabric routes to output
  /// j (the inverse of the submitted dest); valid only when status == Ok.
  std::vector<std::uint32_t> output_source;
};

struct PermuteOptions {
  /// Per-core executors, affinity-routed by hash(permuter, n) % shards
  /// (clamped to >= 1); see ServiceOptions::shards.
  std::size_t shards = 1;

  /// Work stealing threshold (0 disables); see ServiceOptions.
  std::size_t steal_threshold = 4;

  /// Pin shard dispatcher i to core i % hardware_concurrency (best effort).
  bool pin_threads = false;

  /// Bounded submission queue slots per shard (clamped to >= 1).
  std::size_t queue_capacity = 4096;

  /// Micro-batch cap in *requests*; a request occupies lanes_per_request()
  /// engine lanes, so the engine sees up to lanes_per_request() times this
  /// many vectors per pass.
  std::size_t max_batch_lanes = netlist::kBlockLanes;

  /// Straggler linger budget (0 disables); never past a request's deadline.
  std::chrono::microseconds max_linger{200};

  /// What submit() does when the target shard's queue is full.
  enum class Overflow {
    Block,   ///< wait for space (up to the request's deadline)
    Reject,  ///< fail fast with Status::QueueFull
  } overflow = Overflow::Block;

  /// Knobs for the per-key route-circuit engines; with shards > 1 and
  /// threads == 0 the constructor divides hardware_concurrency across
  /// shards, exactly as SortService does.
  netlist::BatchOptions batch{};

  /// Verify every decoded result against the submitted permutation
  /// (output_source[dest[i]] == i -- a complete oracle) and repair
  /// mismatches through the host routing path (counted degraded +
  /// self_check_failed).
  bool self_check = false;
};

class PermuteService {
 public:
  using Clock = std::chrono::steady_clock;

  explicit PermuteService(PermuteOptions opts = {});
  ~PermuteService();  ///< stop(): drain, answer, join

  PermuteService(const PermuteService&) = delete;
  PermuteService& operator=(const PermuteService&) = delete;

  /// Submits one destination permutation to be routed by registry permuter
  /// `permuter` at size dest.size().  Throws std::invalid_argument for an
  /// unknown name (listing the registry), a size that is not a power of two
  /// >= 2, or a `dest` that is not a permutation.  The future is always
  /// eventually satisfied; a blocked pattern resolves Status::Unroutable.
  [[nodiscard]] std::future<PermuteResult> submit(
      std::string_view permuter, std::vector<std::uint32_t> dest,
      Clock::time_point deadline = Clock::time_point::max());

  /// Blocking convenience: submit and wait.
  [[nodiscard]] PermuteResult permute(std::string_view permuter,
                                      std::vector<std::uint32_t> dest);

  /// Drain-then-stop; idempotent, safe from any thread.
  void stop();

  /// Lifetime counters + histograms so far (ServiceStats reused; the
  /// sorting-only ladder counters stay 0 and `unroutable` is live).
  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] const PermuteOptions& options() const noexcept { return opts_; }

  [[nodiscard]] std::size_t shard_count() const noexcept { return exec_->shard_count(); }

  /// The shard the affinity hash routes (permuter, n) to -- observability
  /// and test hooks.  Unknown permuter names throw like submit().
  [[nodiscard]] std::size_t shard_of(std::string_view permuter, std::size_t n) const;

 private:
  /// Coalescing key: registry entry (stable static storage) + fabric size.
  using Key = std::pair<const permuters::RegistryEntry*, std::size_t>;

  struct Request {
    const permuters::RegistryEntry* entry;
    std::size_t n;
    std::vector<std::uint32_t> dest;
    std::promise<PermuteResult> promise;
    Clock::time_point deadline;
    Clock::time_point enqueued{};  ///< stamped by the executor at admission

    [[nodiscard]] Key key() const noexcept { return Key{entry, n}; }
  };

  using Executor = ShardedExecutor<Key, Request>;

  /// A cached per-(permuter, n, shard) engine: the fabric instance (host
  /// routing + encode/decode) and its compiled route-circuit runner (null
  /// when compilation failed -- the host path then serves alone, degraded).
  struct Engine {
    std::unique_ptr<permuters::Permuter> permuter;
    std::unique_ptr<netlist::BatchRunner> runner;
    bool compile_attempted = false;
  };

  /// Dispatcher-owned per-shard state: engine cache + staging buffers.
  struct ShardState {
    std::map<Key, Engine> engines;
    std::vector<BitVec> inputs;            ///< encode staging, reused
    std::vector<BitVec> outputs;           ///< decode staging, reused
    std::vector<std::size_t> dest_tmp;     ///< u32 -> size_t widening scratch
    std::vector<std::size_t> decoded_tmp;  ///< decode scratch
  };

  void process(std::size_t shard, const Key& key, std::vector<Request>& batch);
  Engine* ensure_engine(std::size_t shard, const Key& key, std::exception_ptr& factory_error);
  /// Answers one request through the host routing algorithm (the trusted
  /// reference path); counts degraded.
  void resolve_host(Engine& e, Request& r);
  [[nodiscard]] std::size_t route(const Key& key) const noexcept;

  PermuteOptions opts_;

  std::vector<std::unique_ptr<ShardState>> states_;

  /// Every engine compile (permuter, n, shard, resolved backend); cold-path
  /// mutex (once per compile and per stats() call).
  mutable std::mutex engines_m_;
  std::vector<EngineInfo> engine_infos_;

  /// Process-wide netlist::jit_counters() at construction (stats() reports
  /// deltas, as in SortService).
  netlist::JitCounters jit_baseline_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> stopped_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> unroutable_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> compiled_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> self_check_failed_{0};
  Histogram batch_size_h_;
  Histogram queue_wait_h_;
  Histogram eval_h_;

  /// Constructed last (after every member its process callback touches);
  /// declared last so it stops first on destruction.
  std::unique_ptr<Executor> exec_;
};

}  // namespace absort::service
