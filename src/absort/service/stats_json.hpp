#pragma once
// Shared ServiceStats -> JSON rendering, used by every surface that exposes
// live service telemetry: `absort_cli serve --stats`, the TCP edge's `statsz`
// frames (edge/edge_server.hpp), and any test that wants to assert on the
// rendered form.  One renderer means the CLI dump and the wire dump can never
// drift apart.

#include <string>

#include "absort/service/service_stats.hpp"

namespace absort::service {

/// `h` as a JSON object: {"total":..,"mean":..,"p50":..,"p90":..,"p99":..,
/// "buckets":[{"le":..,"count":..}, ...]} (non-empty buckets only).
[[nodiscard]] std::string histogram_json(const HistogramSnapshot& h);

/// `s` as one JSON object: every counter (service + edge) followed by the
/// three histograms.  HistogramSnapshot::to_json / ServiceStats::to_json are
/// thin wrappers over these.
[[nodiscard]] std::string stats_json(const ServiceStats& s);

}  // namespace absort::service
