#pragma once
// Seed hygiene for randomized tests.
//
// Every randomized test derives its RNG through ABSORT_SEEDED_RNG, which
//   * seeds from the test's fixed fallback (runs stay deterministic),
//   * honours the ABSORT_TEST_SEED environment variable as an override, and
//   * SCOPED_TRACEs the seed, so any assertion failure inside the scope
//     prints the exact value needed to replay it:
//
//       ABSORT_TEST_SEED=12345 ./test_foo --gtest_filter=Failing.Test
//
// Tests that derive several seeds from one base (e.g. one per producer
// thread) call absort::testing::test_seed(fallback) directly and add their
// own trace.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "absort/util/rng.hpp"

namespace absort::testing {

/// The test seed: ABSORT_TEST_SEED if set to a number (decimal, 0x-hex, or
/// 0-octal), the test's own fallback otherwise.
inline std::uint64_t test_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("ABSORT_TEST_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 0);
    if (end != env && *end == '\0') return v;
  }
  return fallback;
}

}  // namespace absort::testing

/// Declares `::absort::Xoshiro256 name` seeded with test_seed(fallback) and
/// annotates every assertion failure in scope with the replay seed.
#define ABSORT_SEEDED_RNG(name, fallback)                                              \
  const std::uint64_t name##_seed = ::absort::testing::test_seed(fallback);            \
  SCOPED_TRACE(::testing::Message() << "replay: ABSORT_TEST_SEED=" << name##_seed);    \
  ::absort::Xoshiro256 name(name##_seed)
