// Tests for the columnsort baseline (Leighton [14]) -- experiment E-X1.

#include <gtest/gtest.h>

#include "absort/sorters/columnsort.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort::sorters {
namespace {

class ColumnsortExhaustiveTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(ColumnsortExhaustiveTest, SortsAllInputs) {
  const auto [n, r, s] = GetParam();
  ColumnsortSorter sorter(n, r, s);
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
    const auto in = BitVec::from_bits_of(x, n);
    const auto out = sorter.sort(in);
    EXPECT_TRUE(out.is_sorted_ascending())
        << "r=" << r << " s=" << s << " " << in.str() << " -> " << out.str();
    EXPECT_EQ(out.count_ones(), in.count_ones());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ColumnsortExhaustiveTest,
    ::testing::Values(std::tuple<std::size_t, std::size_t, std::size_t>{8, 4, 2},
                      std::tuple<std::size_t, std::size_t, std::size_t>{16, 8, 2},
                      std::tuple<std::size_t, std::size_t, std::size_t>{16, 16, 1},
                      std::tuple<std::size_t, std::size_t, std::size_t>{12, 6, 2}));

TEST(Columnsort, SortsRandomLargeInputs) {
  ABSORT_SEEDED_RNG(rng, 81);
  for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
    const auto [r, s] = ColumnsortSorter::choose_shape(n);
    ColumnsortSorter sorter(n, r, s);
    for (int rep = 0; rep < 25; ++rep) {
      const auto in = workload::random_bits(rng, n);
      const auto out = sorter.sort(in);
      EXPECT_TRUE(out.is_sorted_ascending()) << "n=" << n << " r=" << r << " s=" << s;
      EXPECT_EQ(out.count_ones(), in.count_ones());
    }
  }
}

TEST(Columnsort, ChooseShapeRespectsLeightonCondition) {
  for (std::size_t n : {16u, 64u, 256u, 1024u, 4096u, 65536u}) {
    const auto [r, s] = ColumnsortSorter::choose_shape(n);
    EXPECT_EQ(r * s, n);
    if (s > 1) {
      EXPECT_GE(r, 2 * (s - 1) * (s - 1)) << n;
      EXPECT_EQ(r % s, 0u) << n;
    }
  }
}

TEST(Columnsort, ShapeValidation) {
  EXPECT_THROW(ColumnsortSorter(16, 4, 2), std::invalid_argument);   // r*s != n
  EXPECT_THROW(ColumnsortSorter(32, 8, 4), std::invalid_argument);   // r < 2(s-1)^2
  EXPECT_THROW(ColumnsortSorter(24, 6, 4), std::invalid_argument);   // s does not divide r
  EXPECT_NO_THROW(ColumnsortSorter(32, 16, 2));
}

TEST(Columnsort, RouteIsSortingPermutation) {
  const std::size_t n = 512;
  const auto [r, s] = ColumnsortSorter::choose_shape(n);
  ColumnsortSorter sorter(n, r, s);
  ABSORT_SEEDED_RNG(rng, 83);
  for (int rep = 0; rep < 50; ++rep) {
    const auto tags = workload::random_bits(rng, n);
    const auto perm = sorter.route(tags);
    std::vector<bool> seen(n, false);
    for (auto p : perm) {
      ASSERT_LT(p, n);
      EXPECT_FALSE(seen[p]);
      seen[p] = true;
    }
  }
}

TEST(Columnsort, ColumnSortInvocationsCount) {
  ColumnsortSorter sorter(32, 16, 2);
  EXPECT_EQ(sorter.column_sorts(), 8u);  // 4 passes x 2 columns
  EXPECT_FALSE(sorter.is_combinational());
}

}  // namespace
}  // namespace absort::sorters
