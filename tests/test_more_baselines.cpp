// Tests for the additional nonadaptive baselines (the periodic balanced
// sorting network of [8],[9] and odd-even transposition), the zero-one
// principle word face, and the word-level sorting permuter (Table II row 2).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "absort/netlist/analyze.hpp"
#include "absort/networks/sorting_permuter.hpp"
#include "absort/sorters/alt_oem.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/periodic_balanced.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort::sorters {
namespace {

class PeriodicBalancedTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PeriodicBalancedTest, SortsExhaustively) {
  const std::size_t n = GetParam();
  PeriodicBalancedSorter s(n);
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
    const auto in = BitVec::from_bits_of(x, n);
    const auto out = s.sort(in);
    EXPECT_TRUE(out.is_sorted_ascending()) << in.str();
    EXPECT_EQ(out.count_ones(), in.count_ones());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PeriodicBalancedTest, ::testing::Values(2, 4, 8, 16));

TEST(PeriodicBalanced, StructuralCounts) {
  for (std::size_t n : {4u, 16u, 256u}) {
    PeriodicBalancedSorter s(n);
    EXPECT_EQ(s.comparator_count(), PeriodicBalancedSorter::expected_comparators(n)) << n;
    EXPECT_EQ(s.comparator_depth(), PeriodicBalancedSorter::expected_depth(n)) << n;
  }
}

TEST(PeriodicBalanced, EveryPassIsTheSameBlock) {
  // Periodicity: the comparator sequence repeats with period (n/2) lg n.
  PeriodicBalancedSorter s(16);
  const std::size_t period = 8 * 4;  // (n/2) lg n
  ASSERT_EQ(s.comparator_count(), period * 4);
}

TEST(PeriodicBalanced, SortsWordsViaZeroOne) {
  PeriodicBalancedSorter s(64);
  ABSORT_SEEDED_RNG(rng, 3);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<std::uint64_t> keys(64);
    for (auto& k : keys) k = rng.below(1000);
    const auto out = s.sort_words(keys);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  }
}

class OeTranspositionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OeTranspositionTest, SortsExhaustively) {
  const std::size_t n = GetParam();
  OddEvenTranspositionSorter s(n);
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
    const auto out = s.sort(BitVec::from_bits_of(x, n));
    EXPECT_TRUE(out.is_sorted_ascending());
  }
}

// Works for any n, not just powers of two.
INSTANTIATE_TEST_SUITE_P(Sizes, OeTranspositionTest, ::testing::Values(2, 3, 5, 8, 13, 16));

TEST(OeTransposition, ComparatorCount) {
  for (std::size_t n : {2u, 7u, 16u, 64u}) {
    OddEvenTranspositionSorter s(n);
    EXPECT_EQ(s.comparator_count(), OddEvenTranspositionSorter::expected_comparators(n)) << n;
  }
}

// --------------------------------------------------- zero-one principle

TEST(ZeroOne, BatcherSortsArbitraryWords) {
  BatcherOemSorter s(256);
  ABSORT_SEEDED_RNG(rng, 5);
  for (int rep = 0; rep < 100; ++rep) {
    std::vector<std::uint64_t> keys(256);
    for (auto& k : keys) k = rng();
    const auto out = s.sort_words(keys);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  }
}

TEST(ZeroOne, AltOemSortsArbitraryWordsToo) {
  // Fig. 4(b)'s network is comparators + wiring only and sorts all binary
  // inputs (tested exhaustively elsewhere), so by the zero-one principle it
  // sorts arbitrary totally ordered keys -- demonstrated here.
  AltOemSorter s(128);
  ABSORT_SEEDED_RNG(rng, 7);
  for (int rep = 0; rep < 100; ++rep) {
    std::vector<std::uint64_t> keys(128);
    for (auto& k : keys) k = rng.below(50);  // heavy ties, the nasty case
    const auto out = s.sort_words(keys);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  }
}

TEST(ZeroOne, RouteWordsIsConsistentPermutation) {
  BatcherOemSorter s(64);
  ABSORT_SEEDED_RNG(rng, 9);
  std::vector<std::uint64_t> keys(64);
  for (auto& k : keys) k = rng.below(10);
  const auto perm = s.route_words(keys);
  std::vector<bool> seen(64, false);
  std::vector<std::uint64_t> routed(64);
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_LT(perm[i], 64u);
    EXPECT_FALSE(seen[perm[i]]);
    seen[perm[i]] = true;
    routed[i] = keys[perm[i]];
  }
  EXPECT_TRUE(std::is_sorted(routed.begin(), routed.end()));
  EXPECT_EQ(routed, s.sort_words(keys));
}

}  // namespace
}  // namespace absort::sorters

namespace absort::networks {
namespace {

TEST(SortingPermuter, RealizesAllPermutationsOfEight) {
  SortingPermuter sp(8);
  std::vector<std::size_t> dest(8);
  std::iota(dest.begin(), dest.end(), 0);
  do {
    const auto perm = sp.route(dest);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(perm[dest[i]], i);
  } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST(SortingPermuter, RealizesRandomLargePermutations) {
  ABSORT_SEEDED_RNG(rng, 11);
  for (std::size_t n : {64u, 1024u}) {
    SortingPermuter sp(n);
    for (int rep = 0; rep < 10; ++rep) {
      const auto dest = workload::random_permutation(rng, n);
      const auto perm = sp.route(dest);
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(perm[dest[i]], i);
    }
  }
}

TEST(SortingPermuter, MovesPayloads) {
  SortingPermuter sp(32);
  ABSORT_SEEDED_RNG(rng, 13);
  const auto dest = workload::random_permutation(rng, 32);
  std::vector<char> payload(32);
  for (std::size_t i = 0; i < 32; ++i) payload[i] = static_cast<char>('a' + (i % 26));
  const auto out = sp.permute_packets(dest, payload);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(out[dest[i]], payload[i]);
}

TEST(SortingPermuter, BitLevelCostHasLgCubedShape) {
  // cost = 3 lg n x comparators = Theta(n lg^3 n): the ratio to n lg^3 n is
  // bounded and slowly varying.
  for (std::size_t n : {256u, 4096u, 65536u}) {
    SortingPermuter sp(n);
    const auto r = sp.cost_report();
    const double l = lg(double(n));
    const double ratio = r.cost / (double(n) * l * l * l);
    EXPECT_GT(ratio, 0.3) << n;
    EXPECT_LT(ratio, 1.0) << n;
  }
}

TEST(SortingPermuter, RoutingTimeIsLgCubed) {
  for (std::size_t n : {256u, 4096u}) {
    SortingPermuter sp(n);
    const double l = lg(double(n));
    // depth = lg n x lg n (lg n + 1)/2
    EXPECT_DOUBLE_EQ(sp.routing_time(), l * l * (l + 1) / 2) << n;
  }
}

TEST(SortingPermuter, RejectsBadInput) {
  SortingPermuter sp(8);
  EXPECT_THROW((void)sp.route({0, 1, 2}), std::invalid_argument);
  EXPECT_THROW((void)sp.route({0, 0, 1, 2, 3, 4, 5, 6}), std::invalid_argument);
}

}  // namespace
}  // namespace absort::networks
