// Integration tests: multi-module end-to-end scenarios that exercise the
// public API across layers, the way the examples (and a downstream user)
// compose it.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "absort/networks/benes.hpp"
#include "absort/networks/concentrator.hpp"
#include "absort/networks/radix_permuter.hpp"
#include "absort/networks/sorting_permuter.hpp"
#include "absort/sim/fish_hardware.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort {
namespace {

// Scenario 1: a two-stage switch fabric.  Stage 1 concentrates the r granted
// packets onto the first r trunks; stage 2 permutes the full trunk bundle so
// every granted packet reaches its requested destination port.
TEST(Integration, ConcentrateThenPermute) {
  const std::size_t n = 64;
  ABSORT_SEEDED_RNG(rng, 301);
  networks::Concentrator stage1(sorters::MuxMergeSorter::make(n));
  networks::RadixPermuter stage2(n, [](std::size_t w) { return sorters::MuxMergeSorter::make(w); });

  for (int rep = 0; rep < 25; ++rep) {
    // Grants and payloads.
    std::vector<bool> granted(n);
    std::vector<std::string> packets(n);
    std::size_t r = 0;
    for (std::size_t i = 0; i < n; ++i) {
      granted[i] = rng.biased_bit(1, 2);
      packets[i] = granted[i] ? "pkt" + std::to_string(i) : "-";
      r += granted[i] ? 1u : 0u;
    }
    const auto trunks = stage1.concentrate_packets(granted, packets);
    ASSERT_EQ(trunks.size(), n);
    for (std::size_t j = 0; j < r; ++j) ASSERT_NE(trunks[j], "-");

    // Each granted packet requests a distinct destination; idle trunks fill
    // the remaining ports (a complete permutation, as the permuter needs).
    const auto ports = workload::random_permutation(rng, n);
    const auto delivered = stage2.permute_packets(ports, trunks);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(delivered[ports[j]], trunks[j]);
    }
  }
}

// Scenario 2: the three permutation networks agree on every routed outcome.
TEST(Integration, AllPermutersAgree) {
  const std::size_t n = 32;
  ABSORT_SEEDED_RNG(rng, 303);
  networks::RadixPermuter radix(n, [](std::size_t w) { return sorters::MuxMergeSorter::make(w); });
  networks::SortingPermuter sorting(n);
  networks::BenesNetwork benes(n);
  const auto circuit = benes.build_circuit();

  for (int rep = 0; rep < 10; ++rep) {
    const auto dest = workload::random_permutation(rng, n);
    const auto p1 = radix.route(dest);
    const auto p2 = sorting.route(dest);
    EXPECT_EQ(p1, p2);  // both place input i at output dest[i]

    const auto controls = benes.compute_controls(dest);
    for (std::size_t probe = 0; probe < n; probe += 7) {
      BitVec in(n + controls.size());
      in[probe] = 1;
      for (std::size_t c = 0; c < controls.size(); ++c) in[n + c] = controls[c];
      const auto out = circuit.eval(in);
      EXPECT_EQ(out[dest[probe]], 1);
      EXPECT_EQ(out.count_ones(), 1u);
    }
  }
}

// Scenario 3: the clocked fish hardware used as a streaming concentrator --
// back-to-back sorts of independent grant vectors.
TEST(Integration, HardwareConcentratorStream) {
  const std::size_t n = 32, k = 4;
  sim::FishHardware hw(n, k);
  ABSORT_SEEDED_RNG(rng, 305);
  for (int frame = 0; frame < 20; ++frame) {
    std::vector<bool> active(n);
    BitVec tags(n);
    std::size_t r = 0;
    for (std::size_t i = 0; i < n; ++i) {
      active[i] = rng.bit();
      tags[i] = active[i] ? 0 : 1;
      r += active[i] ? 1u : 0u;
    }
    const auto sorted = hw.sort_overlapped(tags);
    // r zeros at the front = r granted packets concentrated.
    EXPECT_EQ(sorted, BitVec::sorted_with_ones(n, n - r));
  }
}

// Scenario 4: consistency across the faces at scale -- the routing face of
// the fish sorter feeds a payload permutation whose tag image equals the
// netlist-equivalent value sort.
TEST(Integration, FishCarryMatchesSort) {
  const std::size_t n = 256;
  sorters::FishSorter fish(n, 8);
  ABSORT_SEEDED_RNG(rng, 307);
  for (int rep = 0; rep < 20; ++rep) {
    const auto tags = workload::random_bits(rng, n);
    std::vector<std::size_t> ids(n);
    for (std::size_t i = 0; i < n; ++i) ids[i] = i;
    const auto carried = fish.carry(tags, ids);
    // Applying the carried arrangement to the tags reproduces sort().
    BitVec routed(n);
    for (std::size_t i = 0; i < n; ++i) routed[i] = tags[carried[i]];
    EXPECT_EQ(routed, fish.sort(tags));
    // No packet lost.
    EXPECT_EQ(std::set<std::size_t>(carried.begin(), carried.end()).size(), n);
  }
}

}  // namespace
}  // namespace absort
