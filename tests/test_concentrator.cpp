// Tests for Section IV's concentrators (experiment E-X3): any r <= m active
// inputs land on the first r outputs, with every sorter as the engine.

#include <gtest/gtest.h>

#include <string>

#include "absort/networks/concentrator.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/sorters/prefix_sorter.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort::networks {
namespace {

using sorters::BinarySorter;

struct Case {
  const char* label;
  std::unique_ptr<BinarySorter> (*make)(std::size_t);
};

std::unique_ptr<BinarySorter> make_batcher(std::size_t n) {
  return sorters::BatcherOemSorter::make(n);
}
std::unique_ptr<BinarySorter> make_prefix(std::size_t n) { return sorters::PrefixSorter::make(n); }
std::unique_ptr<BinarySorter> make_muxmerge(std::size_t n) {
  return sorters::MuxMergeSorter::make(n);
}
std::unique_ptr<BinarySorter> make_fish(std::size_t n) { return sorters::FishSorter::make(n); }

class ConcentratorTest : public ::testing::TestWithParam<Case> {};

TEST_P(ConcentratorTest, ExhaustiveMasksSixteenInputs) {
  const std::size_t n = 16;
  Concentrator con(GetParam().make(n));
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    std::vector<bool> active(n);
    std::size_t r = 0;
    for (std::size_t i = 0; i < n; ++i) {
      active[i] = (mask >> i) & 1;
      r += active[i] ? 1u : 0u;
    }
    const auto perm = con.concentrate(active);
    for (std::size_t j = 0; j < r; ++j) {
      EXPECT_TRUE(active[perm[j]]) << "mask=" << mask << " j=" << j;
    }
    for (std::size_t j = r; j < n; ++j) {
      EXPECT_FALSE(active[perm[j]]) << "mask=" << mask << " j=" << j;
    }
  }
}

TEST_P(ConcentratorTest, PacketPayloadsFollowTheirTags) {
  const std::size_t n = 64;
  Concentrator con(GetParam().make(n));
  ABSORT_SEEDED_RNG(rng, 91);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<bool> active(n);
    std::vector<std::string> payload(n);
    std::size_t r = 0;
    for (std::size_t i = 0; i < n; ++i) {
      active[i] = rng.bit();
      payload[i] = (active[i] ? "pkt" : "idle") + std::to_string(i);
      r += active[i] ? 1u : 0u;
    }
    const auto out = con.concentrate_packets(active, payload);
    for (std::size_t j = 0; j < r; ++j) {
      EXPECT_EQ(out[j].substr(0, 3), "pkt") << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, ConcentratorTest,
                         ::testing::Values(Case{"batcher", &make_batcher},
                                           Case{"prefix", &make_prefix},
                                           Case{"muxmerge", &make_muxmerge},
                                           Case{"fish", &make_fish}),
                         [](const auto& info) { return std::string(info.param.label); });

TEST(Concentrator, NarrowOutputEnforcesCapacity) {
  // (16, 4)-concentrator: up to 4 active inputs are fine, 5 must throw.
  Concentrator con(make_muxmerge(16), 4);
  std::vector<bool> active(16, false);
  for (std::size_t i = 0; i < 4; ++i) active[4 * i] = true;
  const auto perm = con.concentrate(active);
  EXPECT_EQ(perm.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_TRUE(active[perm[j]]);
  active[1] = true;
  EXPECT_THROW((void)con.concentrate(active), std::invalid_argument);
}

TEST(Concentrator, ValidatesArguments) {
  EXPECT_THROW(Concentrator(nullptr), std::invalid_argument);
  EXPECT_THROW(Concentrator(make_muxmerge(8), 9), std::invalid_argument);
  Concentrator con(make_muxmerge(8));
  EXPECT_THROW((void)con.concentrate(std::vector<bool>(7)), std::invalid_argument);
}

TEST(Concentrator, OrderPreservationWithinActives) {
  // Our sorters' route() never swaps equal tags (comparators are
  // no-ops on ties, swappers move blocks), so the concentrated packets of a
  // *comparator network* keep their relative order.  We check Batcher here
  // as a regression anchor for route() tie behaviour.
  const std::size_t n = 16;
  Concentrator con(make_batcher(n));
  ABSORT_SEEDED_RNG(rng, 93);
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<bool> active(n);
    std::size_t r = 0;
    for (std::size_t i = 0; i < n; ++i) {
      active[i] = rng.bit();
      r += active[i] ? 1u : 0u;
    }
    const auto perm = con.concentrate(active);
    // Batcher on 0/1 tags is not necessarily stable, but it must still place
    // exactly the actives first; stability is not asserted, presence is.
    std::vector<bool> got(n, false);
    for (std::size_t j = 0; j < r; ++j) {
      EXPECT_TRUE(active[perm[j]]);
      EXPECT_FALSE(got[perm[j]]);
      got[perm[j]] = true;
    }
  }
}

}  // namespace
}  // namespace absort::networks
