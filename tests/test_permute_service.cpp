// PermuteService + permuter registry: every fabric family served
// bit-identically to the batch networks/ reference, exhaustively at small n
// and randomized up to n = 1024, over direct submit.
//
// The reference for each family is the networks/ class itself (BenesNetwork,
// OmegaNetwork, SortingPermuter) -- not the permuters:: host path -- so a bug
// shared by the circuit lowering and its host wrapper cannot hide.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "absort/networks/benes.hpp"
#include "absort/networks/omega.hpp"
#include "absort/networks/permuters.hpp"
#include "absort/networks/sorting_permuter.hpp"
#include "absort/service/permute_service.hpp"
#include "absort/util/rng.hpp"
#include "test_seed.hpp"

namespace {

using absort::BitVec;
using absort::Xoshiro256;
using absort::service::PermuteOptions;
using absort::service::PermuteResult;
using absort::service::PermuteService;
using absort::service::Status;

std::vector<std::uint32_t> to_u32(const std::vector<std::size_t>& v) {
  return std::vector<std::uint32_t>(v.begin(), v.end());
}

/// The batch networks/ reference: output_source for `dest` through the named
/// fabric, or nullopt when that fabric blocks on the pattern.
std::optional<std::vector<std::size_t>> reference(const std::string& family,
                                                  const std::vector<std::size_t>& dest) {
  const std::size_t n = dest.size();
  if (family == "benes") {
    absort::networks::BenesNetwork net(n);
    std::vector<std::size_t> payload(n);
    std::iota(payload.begin(), payload.end(), std::size_t{0});
    return net.permute_packets(dest, payload);  // out[dest[i]] = i
  }
  if (family == "omega") {
    absort::networks::OmegaNetwork net(n);
    std::vector<std::optional<std::size_t>> od(n);
    for (std::size_t i = 0; i < n; ++i) od[i] = dest[i];
    auto r = net.route(od);
    if (r.blocked()) return std::nullopt;
    return r.output_source;
  }
  absort::networks::SortingPermuter sp(n);
  return sp.route(dest);
}

const char* kFamilies[] = {"sorting-permuter", "benes", "omega"};

}  // namespace

TEST(PermuterRegistry, NamesAndLookup) {
  const auto& reg = absort::permuters::registry();
  ASSERT_EQ(reg.size(), 3u);
  for (const char* f : kFamilies) {
    const auto* e = absort::permuters::find_permuter(f);
    ASSERT_NE(e, nullptr) << f;
    auto p = e->factory(8);
    EXPECT_EQ(p->size(), 8u);
    EXPECT_EQ(p->name(), f);
  }
  EXPECT_EQ(absort::permuters::find_permuter("no-such-fabric"), nullptr);
  try {
    (void)absort::permuters::make_permuter("no-such-fabric", 8);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& ex) {
    EXPECT_NE(std::string(ex.what()).find("benes"), std::string::npos);
  }
}

TEST(PermuterRegistry, LanesPerRequest) {
  EXPECT_EQ(absort::permuters::make_permuter("benes", 16)->lanes_per_request(), 4u);
  EXPECT_EQ(absort::permuters::make_permuter("omega", 16)->lanes_per_request(), 4u);
  EXPECT_EQ(absort::permuters::make_permuter("sorting-permuter", 16)->lanes_per_request(), 1u);
}

TEST(PermuterRegistry, BadSizeThrows) {
  for (const char* f : kFamilies) {
    EXPECT_THROW((void)absort::permuters::make_permuter(f, 3), std::invalid_argument) << f;
    EXPECT_THROW((void)absort::permuters::make_permuter(f, 0), std::invalid_argument) << f;
  }
}

// Circuit face vs networks reference, every permutation of n in {2, 4, 8},
// evaluated through plain Circuit::eval (no batch engine in the loop).
TEST(Permuters, RouteCircuitMatchesReferenceExhaustive) {
  for (const char* family : kFamilies) {
    for (const std::size_t n : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      SCOPED_TRACE(::testing::Message() << family << " n=" << n);
      auto perm = absort::permuters::make_permuter(family, n);
      const auto circuit = perm->build_route_circuit();
      const std::size_t lanes_per = perm->lanes_per_request();
      std::vector<BitVec> lanes(lanes_per), outs(lanes_per);
      std::vector<std::size_t> dest(n), decoded;
      std::iota(dest.begin(), dest.end(), std::size_t{0});
      do {
        const auto expect = reference(family, dest);
        const bool routable = perm->encode(dest, lanes);
        ASSERT_EQ(routable, expect.has_value());
        // Host face must agree on routability and result.
        const auto host = perm->route(dest);
        ASSERT_EQ(host.has_value(), expect.has_value());
        if (!expect) continue;
        EXPECT_EQ(*host, *expect);
        for (std::size_t b = 0; b < lanes_per; ++b) outs[b] = circuit.eval(lanes[b]);
        perm->decode(outs, decoded);
        ASSERT_EQ(decoded, *expect);
      } while (std::next_permutation(dest.begin(), dest.end()));
    }
  }
}

TEST(Permuters, NonPermutationThrows) {
  for (const char* family : kFamilies) {
    auto perm = absort::permuters::make_permuter(family, 4);
    EXPECT_THROW((void)perm->route({0, 1, 2}), std::invalid_argument) << family;
    EXPECT_THROW((void)perm->route({0, 1, 2, 2}), std::invalid_argument) << family;
    EXPECT_THROW((void)perm->route({0, 1, 2, 4}), std::invalid_argument) << family;
  }
}

// The service end to end: every permutation of n = 8 for every family,
// answered bit-identically to the networks reference (no self-check in the
// loop -- a wrong circuit result must surface as a wrong answer, not be
// silently repaired).
TEST(PermuteService, ExhaustiveN8AllFamilies) {
  PermuteOptions opts;
  opts.shards = 2;
  PermuteService svc(opts);
  for (const char* family : kFamilies) {
    SCOPED_TRACE(family);
    std::vector<std::size_t> dest(8);
    std::iota(dest.begin(), dest.end(), std::size_t{0});
    std::vector<std::vector<std::size_t>> perms;
    std::vector<std::future<PermuteResult>> futures;
    do {
      perms.push_back(dest);
      futures.push_back(svc.submit(family, to_u32(dest)));
    } while (std::next_permutation(dest.begin(), dest.end()));
    for (std::size_t k = 0; k < perms.size(); ++k) {
      const auto expect = reference(family, perms[k]);
      const auto got = futures[k].get();
      if (!expect) {
        ASSERT_EQ(got.status, Status::Unroutable);
        continue;
      }
      ASSERT_EQ(got.status, Status::Ok);
      ASSERT_EQ(got.output_source, to_u32(*expect));
    }
  }
  const auto st = svc.stats();
  EXPECT_EQ(st.completed + st.unroutable, st.submitted);
  EXPECT_GT(st.unroutable, 0u);  // omega blocks many n=8 patterns
  EXPECT_EQ(st.degraded, 0u);    // route circuits always compile
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GE(st.compiled, 3u);
  EXPECT_GT(st.batches, 0u);
}

// Randomized sweep up to n = 1024 (plus identity and a cyclic shift, which
// the omega fabric routes conflict-free, so every family shows Ok traffic).
TEST(PermuteService, RandomizedUpToN1024) {
  ABSORT_SEEDED_RNG(rng, 0xABBA5EED);
  PermuteOptions opts;
  opts.shards = 2;
  PermuteService svc(opts);
  for (const std::size_t n :
       {std::size_t{16}, std::size_t{64}, std::size_t{256}, std::size_t{1024}}) {
    std::vector<std::vector<std::size_t>> patterns;
    std::vector<std::size_t> ident(n);
    std::iota(ident.begin(), ident.end(), std::size_t{0});
    patterns.push_back(ident);
    std::vector<std::size_t> shift(n);
    for (std::size_t i = 0; i < n; ++i) shift[i] = (i + 1) % n;
    patterns.push_back(shift);
    for (int k = 0; k < 4; ++k) {
      patterns.push_back(absort::workload::random_permutation(rng, n));
    }
    for (const char* family : kFamilies) {
      SCOPED_TRACE(::testing::Message() << family << " n=" << n);
      std::vector<std::future<PermuteResult>> futures;
      for (const auto& dest : patterns) futures.push_back(svc.submit(family, to_u32(dest)));
      for (std::size_t k = 0; k < patterns.size(); ++k) {
        const auto expect = reference(family, patterns[k]);
        const auto got = futures[k].get();
        if (!expect) {
          ASSERT_EQ(got.status, Status::Unroutable) << "pattern " << k;
          continue;
        }
        ASSERT_EQ(got.status, Status::Ok) << "pattern " << k;
        ASSERT_EQ(got.output_source, to_u32(*expect)) << "pattern " << k;
      }
    }
  }
  const auto st = svc.stats();
  EXPECT_EQ(st.completed + st.unroutable, st.submitted);
  EXPECT_EQ(st.failed, 0u);
}

TEST(PermuteService, MalformedSubmissionsThrow) {
  PermuteService svc;
  EXPECT_THROW((void)svc.submit("no-such-fabric", {0, 1}), std::invalid_argument);
  EXPECT_THROW((void)svc.submit("benes", {0, 1, 2}), std::invalid_argument);    // n = 3
  EXPECT_THROW((void)svc.submit("benes", {}), std::invalid_argument);           // n = 0
  EXPECT_THROW((void)svc.submit("benes", {0, 0, 1, 2}), std::invalid_argument); // duplicate
  EXPECT_THROW((void)svc.submit("benes", {0, 1, 2, 7}), std::invalid_argument); // out of range
  // The service is still healthy afterwards.
  const auto r = svc.permute("benes", {1, 0, 3, 2});
  EXPECT_EQ(r.status, Status::Ok);
  EXPECT_EQ(r.output_source, (std::vector<std::uint32_t>{1, 0, 3, 2}));
}

TEST(PermuteService, DeadlineExpiresBeforeEvaluation) {
  PermuteService svc;
  const auto past = PermuteService::Clock::now() - std::chrono::milliseconds(5);
  auto f = svc.submit("benes", {1, 0, 3, 2}, past);
  EXPECT_EQ(f.get().status, Status::Expired);
  EXPECT_GE(svc.stats().expired, 1u);
}

TEST(PermuteService, SelfCheckCleanOnHealthyEngines) {
  ABSORT_SEEDED_RNG(rng, 0x5E1FC8EC);
  PermuteOptions opts;
  opts.self_check = true;
  PermuteService svc(opts);
  for (int k = 0; k < 16; ++k) {
    const auto dest = absort::workload::random_permutation(rng, 32);
    const auto r = svc.permute("benes", to_u32(dest));
    ASSERT_EQ(r.status, Status::Ok);
    for (std::size_t i = 0; i < dest.size(); ++i) ASSERT_EQ(r.output_source[dest[i]], i);
  }
  const auto st = svc.stats();
  EXPECT_EQ(st.self_check_failed, 0u);
  EXPECT_EQ(st.degraded, 0u);
}

TEST(PermuteService, InterpreterBackendBitIdentical) {
  ABSORT_SEEDED_RNG(rng, 0x17E7B0DE);
  PermuteOptions opts;
  opts.batch.backend = absort::netlist::Backend::Interpreter;
  PermuteService svc(opts);
  for (const char* family : kFamilies) {
    for (int k = 0; k < 4; ++k) {
      const auto dest = absort::workload::random_permutation(rng, 64);
      const auto expect = reference(family, dest);
      const auto got = svc.permute(family, to_u32(dest));
      if (!expect) {
        ASSERT_EQ(got.status, Status::Unroutable);
        continue;
      }
      ASSERT_EQ(got.status, Status::Ok) << family;
      ASSERT_EQ(got.output_source, to_u32(*expect)) << family;
    }
  }
  for (const auto& e : svc.stats().engines) {
    EXPECT_EQ(e.backend, absort::netlist::Backend::Interpreter);
  }
}

TEST(PermuteService, ShardRoutingIsStable) {
  PermuteOptions opts;
  opts.shards = 4;
  PermuteService svc(opts);
  ASSERT_EQ(svc.shard_count(), 4u);
  for (const char* family : kFamilies) {
    for (const std::size_t n : {std::size_t{8}, std::size_t{64}}) {
      const std::size_t expect =
          absort::service::hash_name_n(family, n) % svc.shard_count();
      EXPECT_EQ(svc.shard_of(family, n), expect) << family << " n=" << n;
    }
  }
  EXPECT_THROW((void)svc.shard_of("no-such-fabric", 8), std::invalid_argument);
  // Routed totals land on the shards the hash names.
  std::vector<std::future<PermuteResult>> futures;
  for (int k = 0; k < 32; ++k) futures.push_back(svc.submit("benes", {1, 0, 3, 2}));
  for (auto& f : futures) EXPECT_EQ(f.get().status, Status::Ok);
  const auto st = svc.stats();
  std::uint64_t routed = 0;
  for (const auto& sh : st.per_shard) routed += sh.routed;
  EXPECT_EQ(routed, st.submitted);
  EXPECT_GE(st.per_shard[svc.shard_of("benes", 4)].routed, 32u);
}

TEST(PermuteService, StopAnswersEverythingThenRefuses) {
  PermuteService svc;
  std::vector<std::future<PermuteResult>> futures;
  for (int k = 0; k < 64; ++k) futures.push_back(svc.submit("omega", {1, 2, 3, 0}));
  svc.stop();
  for (auto& f : futures) {
    const auto r = f.get();  // every accepted future resolves across stop()
    EXPECT_TRUE(r.status == Status::Ok || r.status == Status::Stopped);
  }
  auto late = svc.submit("omega", {1, 2, 3, 0});
  EXPECT_EQ(late.get().status, Status::Stopped);
  EXPECT_GE(svc.stats().stopped, 1u);
}
