// Sorter-agnostic property suite: every sorting network in the library must
// satisfy the same contract.  Parameterized over (sorter family, size).
//
// Properties:
//  P1  output = 0^(n-c) 1^c where c = count of ones (full functional spec)
//  P2  route() is a permutation (no packet lost or duplicated)
//  P3  idempotence: sorting a sorted sequence leaves it sorted
//  P4  monotonicity under bit flips 0->1: flipping any input bit to 1 never
//      decreases any output position's value (a known sorting-network
//      property on binary inputs)
//  P5  combinational sorters: netlist output == value simulation
//  P6  cost/depth positive and consistent between the two cost models

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "absort/netlist/analyze.hpp"
#include "absort/sorters/alt_oem.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/bitonic.hpp"
#include "absort/sorters/columnsort.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/hybrid_oem.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/sorters/periodic_balanced.hpp"
#include "absort/sorters/prefix_sorter.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort::sorters {
namespace {

struct Family {
  const char* label;
  std::function<std::unique_ptr<BinarySorter>(std::size_t)> make;
};

const Family kFamilies[] = {
    {"batcher", [](std::size_t n) { return BatcherOemSorter::make(n); }},
    {"bitonic", [](std::size_t n) { return BitonicSorter::make(n); }},
    {"alt_oem", [](std::size_t n) { return AltOemSorter::make(n); }},
    {"periodic", [](std::size_t n) { return PeriodicBalancedSorter::make(n); }},
    {"prefix", [](std::size_t n) { return PrefixSorter::make(n); }},
    {"muxmerge", [](std::size_t n) { return MuxMergeSorter::make(n); }},
    {"fish", [](std::size_t n) { return FishSorter::make(n); }},
    {"columnsort", [](std::size_t n) { return ColumnsortSorter::make(n); }},
    {"hybrid_oem", [](std::size_t n) { return std::make_unique<HybridOemSorter>(n, 4); }},
};

class SorterContractTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
 protected:
  std::unique_ptr<BinarySorter> sorter() const {
    return kFamilies[std::get<0>(GetParam())].make(std::get<1>(GetParam()));
  }
};

TEST_P(SorterContractTest, P1_OutputIsCanonicalSortedForm) {
  const auto s = sorter();
  const std::size_t n = s->size();
  ABSORT_SEEDED_RNG(rng, n + 1);
  for (int rep = 0; rep < 40; ++rep) {
    const auto in = workload::random_bits(rng, n);
    EXPECT_EQ(s->sort(in), BitVec::sorted_with_ones(n, in.count_ones()));
  }
  // boundary counts
  for (std::size_t ones : {std::size_t{0}, std::size_t{1}, n / 2, n - 1, n}) {
    const auto in = workload::random_bits_with_ones(rng, n, ones);
    EXPECT_EQ(s->sort(in), BitVec::sorted_with_ones(n, ones));
  }
}

TEST_P(SorterContractTest, P2_RouteIsPermutation) {
  const auto s = sorter();
  const std::size_t n = s->size();
  ABSORT_SEEDED_RNG(rng, n + 2);
  for (int rep = 0; rep < 25; ++rep) {
    const auto perm = s->route(workload::random_bits(rng, n));
    std::vector<bool> seen(n, false);
    for (auto p : perm) {
      ASSERT_LT(p, n);
      ASSERT_FALSE(seen[p]);
      seen[p] = true;
    }
  }
}

TEST_P(SorterContractTest, P3_Idempotence) {
  const auto s = sorter();
  const std::size_t n = s->size();
  for (std::size_t ones = 0; ones <= n; ones += std::max<std::size_t>(1, n / 16)) {
    const auto sorted = BitVec::sorted_with_ones(n, ones);
    EXPECT_EQ(s->sort(sorted), sorted) << ones;
  }
}

TEST_P(SorterContractTest, P4_MonotoneUnderBitRaise) {
  const auto s = sorter();
  const std::size_t n = s->size();
  ABSORT_SEEDED_RNG(rng, n + 3);
  for (int rep = 0; rep < 10; ++rep) {
    auto in = workload::random_bits(rng, n);
    const auto base = s->sort(in);
    const std::size_t flip = rng.below(n);
    if (in[flip] == 1) continue;
    in[flip] = 1;
    const auto raised = s->sort(in);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GE(raised[i], base[i]) << "position " << i;
    }
  }
}

TEST_P(SorterContractTest, P5_NetlistAgreesWithSimulation) {
  const auto s = sorter();
  if (!s->is_combinational()) GTEST_SKIP() << "model-B network, no single circuit";
  const std::size_t n = s->size();
  if (n > 256) GTEST_SKIP() << "netlist too large for this sweep";
  const auto c = s->build_circuit();
  ABSORT_SEEDED_RNG(rng, n + 4);
  for (int rep = 0; rep < 25; ++rep) {
    const auto in = workload::random_bits(rng, n);
    EXPECT_EQ(c.eval(in), s->sort(in));
  }
}

TEST_P(SorterContractTest, P6_CostModelsConsistent) {
  const auto s = sorter();
  const auto unit = s->cost_report(netlist::CostModel::paper_unit());
  const auto gate = s->cost_report(netlist::CostModel::gate_level());
  EXPECT_GT(unit.cost, 0);
  EXPECT_GT(unit.depth, 0);
  // Gate-level can only be costlier than unit accounting.
  EXPECT_GE(gate.cost, unit.cost);
  EXPECT_GE(gate.depth, unit.depth);
  // And by at most the largest per-component expansion factor (36/4 = 9).
  EXPECT_LE(gate.cost, 9 * unit.cost);
}

std::string param_name(const ::testing::TestParamInfo<std::tuple<std::size_t, std::size_t>>& i) {
  return std::string(kFamilies[std::get<0>(i.param)].label) + "_n" +
         std::to_string(std::get<1>(i.param));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, SorterContractTest,
                         ::testing::Combine(::testing::Range<std::size_t>(0, 9),
                                            ::testing::Values(std::size_t{16}, std::size_t{64},
                                                              std::size_t{256},
                                                              std::size_t{1024})),
                         param_name);

}  // namespace
}  // namespace absort::sorters
