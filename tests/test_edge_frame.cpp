// Property / fuzz-style tests for the edge wire codec (edge/frame.hpp).
//
// The decoder faces untrusted bytes, so the contract under test is strict:
//   * round-trip encode->decode is bit-exact for every registry sorter name
//     and ragged n (not just multiples of 8);
//   * every truncation of a valid frame is NeedMore -- never a crash, never
//     a bogus success;
//   * bad magic / version / type, oversized lengths, nonzero pad bits, and
//     length/structure contradictions each yield their typed DecodeError;
//   * random byte soup and random single-bit flips of valid frames never
//     crash and never decode into an impossible value.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "absort/edge/frame.hpp"
#include "absort/networks/permuters.hpp"
#include "absort/sorters/registry.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort {
namespace {

using edge::DecodeError;
using edge::DecodeResult;
using edge::MessageType;
using edge::Request;
using edge::Response;
using edge::WireStatus;

std::vector<std::uint8_t> encode(const Request& r) {
  std::vector<std::uint8_t> out;
  edge::encode_request(r, out);
  return out;
}

std::vector<std::uint8_t> encode(const Response& r) {
  std::vector<std::uint8_t> out;
  edge::encode_response(r, out);
  return out;
}

Request sort_request(std::string sorter, BitVec input, std::uint64_t id = 7,
                     std::uint32_t deadline_us = 1234) {
  Request r;
  r.type = MessageType::Sort;
  r.id = id;
  r.deadline_us = deadline_us;
  r.sorter = std::move(sorter);
  r.input = std::move(input);
  return r;
}

Request permute_request(std::string permuter, std::vector<std::uint16_t> dest,
                        std::uint64_t id = 7, std::uint32_t deadline_us = 1234) {
  Request r;
  r.type = MessageType::Permute;
  r.id = id;
  r.deadline_us = deadline_us;
  r.sorter = std::move(permuter);
  r.dest = std::move(dest);
  return r;
}

std::vector<std::uint16_t> random_dest(Xoshiro256& rng, std::size_t n) {
  const auto perm = workload::random_permutation(rng, n);
  std::vector<std::uint16_t> dest(n);
  for (std::size_t i = 0; i < n; ++i) dest[i] = static_cast<std::uint16_t>(perm[i]);
  return dest;
}

// ---------------------------------------------------------------- round trip

TEST(EdgeFrame, RequestRoundTripsAllSortersRaggedN) {
  ABSORT_SEEDED_RNG(rng, 101);
  std::uint64_t id = 1;
  for (const auto& e : sorters::registry()) {
    for (const std::size_t n : {1, 2, 3, 7, 8, 9, 15, 16, 63, 64, 65, 255, 257}) {
      const auto req = sort_request(e.name, workload::random_bits(rng, n), id,
                                    static_cast<std::uint32_t>(rng.below(1u << 30)));
      const auto bytes = encode(req);
      Request got;
      const auto res = edge::decode_request(bytes, got);
      ASSERT_EQ(res.error, DecodeError::None) << e.name << " n=" << n;
      EXPECT_EQ(res.consumed, bytes.size());
      EXPECT_EQ(got.type, MessageType::Sort);
      EXPECT_EQ(got.id, req.id);
      EXPECT_EQ(got.deadline_us, req.deadline_us);
      EXPECT_EQ(got.sorter, req.sorter);
      EXPECT_EQ(got.input, req.input) << e.name << " n=" << n;
      ++id;
    }
  }
}

TEST(EdgeFrame, ResponseRoundTripsEveryStatus) {
  ABSORT_SEEDED_RNG(rng, 102);
  for (const auto status : {WireStatus::Ok, WireStatus::Shedded, WireStatus::Expired,
                            WireStatus::Failed, WireStatus::BadRequest, WireStatus::Stopped,
                            WireStatus::Unroutable}) {
    Response r;
    r.type = MessageType::Sort;
    r.id = 0xDEADBEEFCAFEF00Dull;
    r.status = status;
    if (status == WireStatus::Ok) r.output = workload::random_bits(rng, 77);
    const auto bytes = encode(r);
    Response got;
    const auto res = edge::decode_response(bytes, got);
    ASSERT_EQ(res.error, DecodeError::None) << edge::to_string(status);
    EXPECT_EQ(res.consumed, bytes.size());
    EXPECT_EQ(got.id, r.id);
    EXPECT_EQ(got.status, status);
    if (status == WireStatus::Ok) EXPECT_EQ(got.output, r.output);
  }
}

TEST(EdgeFrame, StatsRoundTrip) {
  Request req;
  req.type = MessageType::Stats;
  req.id = 42;
  const auto bytes = encode(req);
  Request got;
  ASSERT_EQ(edge::decode_request(bytes, got).error, DecodeError::None);
  EXPECT_EQ(got.type, MessageType::Stats);
  EXPECT_EQ(got.id, 42u);

  Response resp;
  resp.type = MessageType::Stats;
  resp.id = 42;
  resp.status = WireStatus::Ok;
  resp.stats_json = "{\"submitted\": 3}";
  const auto rbytes = encode(resp);
  Response rgot;
  ASSERT_EQ(edge::decode_response(rbytes, rgot).error, DecodeError::None);
  EXPECT_EQ(rgot.stats_json, resp.stats_json);
}

TEST(EdgeFrame, PermuteRequestRoundTripsAllPermuters) {
  ABSORT_SEEDED_RNG(rng, 113);
  std::uint64_t id = 1;
  for (const auto& e : permuters::registry()) {
    for (const std::size_t n : {2, 4, 8, 16, 64, 256}) {
      const auto req = permute_request(e.name, random_dest(rng, n), id,
                                       static_cast<std::uint32_t>(rng.below(1u << 30)));
      const auto bytes = encode(req);
      Request got;
      const auto res = edge::decode_request(bytes, got);
      ASSERT_EQ(res.error, DecodeError::None) << e.name << " n=" << n;
      EXPECT_EQ(res.consumed, bytes.size());
      EXPECT_EQ(got.type, MessageType::Permute);
      EXPECT_EQ(got.id, req.id);
      EXPECT_EQ(got.deadline_us, req.deadline_us);
      EXPECT_EQ(got.sorter, req.sorter);
      EXPECT_EQ(got.dest, req.dest) << e.name << " n=" << n;
      ++id;
    }
  }
}

TEST(EdgeFrame, PermuteResponseRoundTripsOkAndUnroutable) {
  ABSORT_SEEDED_RNG(rng, 114);
  Response r;
  r.type = MessageType::Permute;
  r.id = 99;
  r.status = WireStatus::Ok;
  r.output_source = random_dest(rng, 32);
  const auto bytes = encode(r);
  Response got;
  ASSERT_EQ(edge::decode_response(bytes, got).error, DecodeError::None);
  EXPECT_EQ(got.type, MessageType::Permute);
  EXPECT_EQ(got.output_source, r.output_source);

  Response blocked;
  blocked.type = MessageType::Permute;
  blocked.id = 100;
  blocked.status = WireStatus::Unroutable;
  const auto bbytes = encode(blocked);
  Response bgot;
  ASSERT_EQ(edge::decode_response(bbytes, bgot).error, DecodeError::None);
  EXPECT_EQ(bgot.status, WireStatus::Unroutable);
  EXPECT_TRUE(bgot.output_source.empty());
}

TEST(EdgeFrame, BackToBackFramesDecodeInOrder) {
  ABSORT_SEEDED_RNG(rng, 103);
  std::vector<std::uint8_t> stream;
  std::vector<Request> sent;
  for (std::uint64_t i = 0; i < 5; ++i) {
    sent.push_back(sort_request("prefix", workload::random_bits(rng, 13 + i), i));
    edge::encode_request(sent.back(), stream);
  }
  std::size_t off = 0;
  for (const auto& want : sent) {
    Request got;
    const auto res = edge::decode_request(std::span(stream).subspan(off), got);
    ASSERT_EQ(res.error, DecodeError::None);
    EXPECT_EQ(got.id, want.id);
    EXPECT_EQ(got.input, want.input);
    off += res.consumed;
  }
  EXPECT_EQ(off, stream.size());
}

// ----------------------------------------------------------- malformed input

TEST(EdgeFrame, EveryTruncationIsNeedMore) {
  ABSORT_SEEDED_RNG(rng, 104);
  const auto bytes = encode(sort_request("mux-merger", workload::random_bits(rng, 37)));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Request got;
    const auto res = edge::decode_request(std::span(bytes).first(len), got);
    EXPECT_EQ(res.error, DecodeError::NeedMore) << "prefix length " << len;
    EXPECT_EQ(res.consumed, 0u);
  }
}

TEST(EdgeFrame, BadMagicVersionType) {
  ABSORT_SEEDED_RNG(rng, 105);
  const auto valid = encode(sort_request("prefix", workload::random_bits(rng, 16)));

  auto bad = valid;
  bad[4] ^= 0xFF;  // magic low byte (after the u32 length prefix)
  Request got;
  EXPECT_EQ(edge::decode_request(bad, got).error, DecodeError::BadMagic);

  bad = valid;
  bad[6] = 99;  // version
  EXPECT_EQ(edge::decode_request(bad, got).error, DecodeError::BadVersion);

  bad = valid;
  bad[7] = 0;  // type: 0 is not a MessageType
  EXPECT_EQ(edge::decode_request(bad, got).error, DecodeError::BadType);
  bad[7] = 200;
  EXPECT_EQ(edge::decode_request(bad, got).error, DecodeError::BadType);
}

TEST(EdgeFrame, OversizedDeclaredLengthRejectedBeforeBuffering) {
  std::vector<std::uint8_t> bytes(4);
  const std::uint32_t huge = static_cast<std::uint32_t>(edge::kMaxFrameBytes) + 1;
  for (int i = 0; i < 4; ++i) bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(huge >> (8 * i));
  Request got;
  // Only the 4-byte length is present, but the verdict must not be NeedMore:
  // a reader may never be baited into buffering a hostile length.
  EXPECT_EQ(edge::decode_request(bytes, got).error, DecodeError::Oversized);
}

TEST(EdgeFrame, OversizedNRejected) {
  ABSORT_SEEDED_RNG(rng, 106);
  auto bytes = encode(sort_request("prefix", workload::random_bits(rng, 24)));
  // Patch the n field (offset: 4 len + 2 magic + 1 ver + 1 type + 8 id +
  // 4 deadline + 1 name_len + 6 name = 27) to kMaxN + 1, keeping the frame
  // length unchanged -- both Oversized and BadLength would be acceptable
  // verdicts, but n is checked first so the error is the precise one.
  const std::size_t n_at = 27;
  const std::uint32_t bad_n = static_cast<std::uint32_t>(edge::kMaxN) + 1;
  for (int i = 0; i < 4; ++i) bytes[n_at + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(bad_n >> (8 * i));
  Request got;
  EXPECT_EQ(edge::decode_request(bytes, got).error, DecodeError::Oversized);
}

TEST(EdgeFrame, ZeroNSortIsEmptyPayloadNotOversized) {
  ABSORT_SEEDED_RNG(rng, 115);
  auto bytes = encode(sort_request("prefix", workload::random_bits(rng, 24)));
  // Same n-field offset as above; n = 0 is a well-framed request with
  // nothing to sort -- the precise verdict is EmptyPayload, not Oversized
  // (nothing about it is too big) and not BadLength (n is read before the
  // payload bytes, so the verdict must not depend on what follows).
  const std::size_t n_at = 27;
  for (std::size_t i = 0; i < 4; ++i) bytes[n_at + i] = 0;
  Request got;
  EXPECT_EQ(edge::decode_request(bytes, got).error, DecodeError::EmptyPayload);
}

TEST(EdgeFrame, PermuteMalformedPermutationsAreTyped) {
  ABSORT_SEEDED_RNG(rng, 116);
  const auto valid = encode(permute_request("benes", random_dest(rng, 8)));
  // Offsets: 4 len + 2 magic + 1 ver + 1 type + 8 id + 4 deadline +
  // 1 name_len + 5 name = 26 (n), 30 (first u16 dest entry).
  const std::size_t n_at = 26;
  const std::size_t dest_at = 30;
  Request got;

  auto bad = valid;  // n = 0: empty payload, checked before the entries
  for (std::size_t i = 0; i < 4; ++i) bad[n_at + i] = 0;
  EXPECT_EQ(edge::decode_request(bad, got).error, DecodeError::EmptyPayload);

  bad = valid;  // n > kMaxN: hostile size, rejected before reading entries
  const std::uint32_t huge_n = static_cast<std::uint32_t>(edge::kMaxN) + 1;
  for (std::size_t i = 0; i < 4; ++i) bad[n_at + i] = static_cast<std::uint8_t>(huge_n >> (8 * i));
  EXPECT_EQ(edge::decode_request(bad, got).error, DecodeError::Oversized);

  bad = valid;  // entry out of range (8 with n = 8)
  bad[dest_at] = 8;
  bad[dest_at + 1] = 0;
  EXPECT_EQ(edge::decode_request(bad, got).error, DecodeError::BadPermutation);

  bad = valid;  // duplicated entry: copy entry 0 over entry 1
  bad[dest_at + 2] = bad[dest_at];
  bad[dest_at + 3] = bad[dest_at + 1];
  EXPECT_EQ(edge::decode_request(bad, got).error, DecodeError::BadPermutation);
}

TEST(EdgeFrame, PermuteTruncationSweepIsNeedMore) {
  ABSORT_SEEDED_RNG(rng, 117);
  const auto bytes = encode(permute_request("omega", random_dest(rng, 16)));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Request got;
    const auto res = edge::decode_request(std::span(bytes).first(len), got);
    EXPECT_EQ(res.error, DecodeError::NeedMore) << "prefix length " << len;
    EXPECT_EQ(res.consumed, 0u);
  }
}

TEST(EdgeFrame, LengthContradictionsAreBadLength) {
  ABSORT_SEEDED_RNG(rng, 107);
  const auto valid = encode(sort_request("prefix", workload::random_bits(rng, 16)));

  // Declared length shrunk by one: the payload structure no longer fits.
  auto bad = valid;
  bad[0] = static_cast<std::uint8_t>(bad[0] - 1);
  bad.pop_back();
  Request got;
  EXPECT_EQ(edge::decode_request(bad, got).error, DecodeError::BadLength);

  // Declared length grown by one with a junk byte appended: trailing junk.
  bad = valid;
  bad[0] = static_cast<std::uint8_t>(bad[0] + 1);
  bad.push_back(0xEE);
  EXPECT_EQ(edge::decode_request(bad, got).error, DecodeError::BadLength);
}

TEST(EdgeFrame, ZeroAndOverlongNamesAreBadName) {
  ABSORT_SEEDED_RNG(rng, 108);
  auto bytes = encode(sort_request("prefix", workload::random_bits(rng, 16)));
  const std::size_t name_len_at = 20;  // 4 len + 16 header bytes
  auto bad = bytes;
  bad[name_len_at] = 0;
  Request got;
  EXPECT_EQ(edge::decode_request(bad, got).error, DecodeError::BadName);
  bad[name_len_at] = static_cast<std::uint8_t>(edge::kMaxSorterName + 1);
  EXPECT_EQ(edge::decode_request(bad, got).error, DecodeError::BadName);
}

TEST(EdgeFrame, NonzeroPadBitsAreBadPayload) {
  ABSORT_SEEDED_RNG(rng, 109);
  // n = 13 leaves 3 pad bits in the last payload byte.
  auto bytes = encode(sort_request("prefix", workload::random_bits(rng, 13)));
  bytes.back() |= 0x80;
  Request got;
  EXPECT_EQ(edge::decode_request(bytes, got).error, DecodeError::BadPayload);
}

// ------------------------------------------------------------------- fuzzing

TEST(EdgeFrame, RandomByteSoupNeverCrashes) {
  ABSORT_SEEDED_RNG(rng, 110);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = rng.below(128);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    Request req;
    const auto r1 = edge::decode_request(bytes, req);
    if (r1.error == DecodeError::None) {
      EXPECT_LE(r1.consumed, bytes.size());
      EXPECT_GE(req.input.size(), 1u);
    }
    Response resp;
    const auto r2 = edge::decode_response(bytes, resp);
    if (r2.error == DecodeError::None) EXPECT_LE(r2.consumed, bytes.size());
  }
}

TEST(EdgeFrame, SingleBitFlipsNeverCrashAndNeverLieAboutPayload) {
  ABSORT_SEEDED_RNG(rng, 111);
  const auto req = sort_request("batcher", workload::random_bits(rng, 29), 77, 5000);
  const auto valid = encode(req);
  for (std::size_t byte = 0; byte < valid.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = valid;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      Request got;
      const auto res = edge::decode_request(flipped, got);
      if (res.error != DecodeError::None) continue;  // typed rejection: fine
      // A flip that still decodes must have changed only in-band values
      // (header fields or payload bits -- e.g. flipping a bit of `n` from 29
      // to 28 keeps the same payload byte count and may stay valid).  The
      // decoded frame must be internally consistent: within bounds, and
      // re-encoding it reproduces the flipped bytes bit-exactly.
      EXPECT_EQ(res.consumed, flipped.size());
      EXPECT_GE(got.sorter.size(), 1u);
      EXPECT_LE(got.sorter.size(), edge::kMaxSorterName);
      EXPECT_GE(got.input.size(), 1u);
      EXPECT_LE(got.input.size(), edge::kMaxN);
      EXPECT_EQ(encode(got), flipped);
    }
  }
}

TEST(EdgeFrame, TruncationSweepOnResponses) {
  ABSORT_SEEDED_RNG(rng, 112);
  Response r;
  r.type = MessageType::Sort;
  r.id = 9;
  r.status = WireStatus::Ok;
  r.output = workload::random_bits(rng, 41);
  const auto bytes = encode(r);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Response got;
    EXPECT_EQ(edge::decode_response(std::span(bytes).first(len), got).error,
              DecodeError::NeedMore);
  }
}

}  // namespace
}  // namespace absort
