// Edge cases of the native codegen backend (codegen.hpp + native_engine.hpp):
// emitted-source determinism and cache-key hashing, degenerate programs
// (empty, single-op, register pressure past 256 live slots), toolchain
// failure degrading to the Simd interpreter, the ABSORT_BACKEND override of
// Backend::Auto, concurrent builds racing on one cache entry, and a
// cross-backend exhaustive 0-1 differential.  Tests that need the system
// compiler skip cleanly when no toolchain can produce a loadable .so.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "absort/netlist/batch_eval.hpp"
#include "absort/netlist/codegen.hpp"
#include "absort/netlist/native_engine.hpp"
#include "absort/sorters/registry.hpp"
#include "absort/sorters/sorter.hpp"
#include "absort/util/bitvec.hpp"
#include "absort/util/wordvec.hpp"

namespace absort {
namespace {

using netlist::WordInstr;
using netlist::WordProgram;
using Op = WordInstr::Op;

/// RAII environment override; restores the previous value (or absence) on
/// scope exit so test order never leaks configuration.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* prev = std::getenv(name)) {
      had_ = true;
      saved_ = prev;
    }
    if (value) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_, saved_;
  bool had_ = false;
};

/// All 2^n inputs in numeric order (zero-one principle sweep).
std::vector<BitVec> all_inputs(std::size_t n) {
  std::vector<BitVec> batch;
  batch.reserve(std::size_t{1} << n);
  for (std::uint64_t v = 0; v < (std::uint64_t{1} << n); ++v) {
    batch.push_back(BitVec::from_bits_of(v, n));
  }
  return batch;
}

TEST(Codegen, EmitIsDeterministicAndHashSeparatesKernels) {
  WordProgram p;
  p.num_inputs = 1;
  p.num_slots = 1;
  p.instrs = {{Op::Load, 0, 0}, {Op::Not, 0, 0}};
  p.output_slots = {0};

  const std::string s1 = netlist::emit_c_source(p);
  EXPECT_EQ(s1, netlist::emit_c_source(p));  // same program -> same source

  WordProgram q = p;
  q.instrs.push_back({Op::Not, 0, 0});
  const std::string s2 = netlist::emit_c_source(q);
  EXPECT_NE(s1, s2);
  EXPECT_NE(netlist::fnv1a64(s1), netlist::fnv1a64(s2));

  // The cache key chains the compiler identity through the seed: the same
  // source under two compilers must land on two cache entries.
  const std::uint64_t src_hash = netlist::fnv1a64(s1);
  EXPECT_NE(netlist::fnv1a64("cc", src_hash), netlist::fnv1a64("gcc-12", src_hash));
}

TEST(Codegen, EmittedAbiMatchesProgramShape) {
  WordProgram p;
  p.num_inputs = 3;
  p.num_slots = 4;
  p.instrs = {{Op::Load, 0, 0}, {Op::Load, 1, 1}, {Op::Load, 2, 2},
              {Op::Mux, 3, 0, 1, 2}};
  p.output_slots = {3, 0};
  const std::string src = netlist::emit_c_source(p);
  char abi[128];
  std::snprintf(abi, sizeof abi, "const uint64_t absort_kernel_abi[4] = {%lluULL, 3ULL, 2ULL, %lluULL};",
                static_cast<unsigned long long>(netlist::kKernelAbiVersion),
                static_cast<unsigned long long>(wordvec::kSimdWords));
  EXPECT_NE(src.find(abi), std::string::npos) << src.substr(0, 400);
}

TEST(Codegen, EmptyProgramCompilesToANoOpKernel) {
  if (!netlist::native_toolchain_available()) GTEST_SKIP() << "no native toolchain";
  WordProgram p;  // zero inputs, zero outputs, zero instructions
  std::string err;
  const auto k = netlist::build_native_kernel(p, &err);
  ASSERT_NE(k, nullptr) << err;
  // All three entry points must be well-formed no-ops.
  k->run_word(nullptr, nullptr);
  k->run_simd(nullptr, nullptr);
  k->run_simd_x2(nullptr, nullptr);
}

TEST(Codegen, SingleOpKernelsComputeTheOp) {
  if (!netlist::native_toolchain_available()) GTEST_SKIP() << "no native toolchain";

  {  // one real op between loads and the epilogue: AndNot
    WordProgram p;
    p.num_inputs = 2;
    p.num_slots = 3;
    p.instrs = {{Op::Load, 0, 0}, {Op::Load, 1, 1}, {Op::AndNot, 2, 0, 1}};
    p.output_slots = {2};
    std::string err;
    const auto k = netlist::build_native_kernel(p, &err);
    ASSERT_NE(k, nullptr) << err;
    const std::uint64_t in[2] = {0xF0F0F0F0F0F0F0F0ULL, 0xFF00FF00FF00FF00ULL};
    std::uint64_t out[1] = {0};
    k->run_word(in, out);
    EXPECT_EQ(out[0], in[0] & ~in[1]);
  }
  {  // a kernel with no inputs at all: Const1
    WordProgram p;
    p.num_inputs = 0;
    p.num_slots = 1;
    p.instrs = {{Op::Const1, 0}};
    p.output_slots = {0};
    std::string err;
    const auto k = netlist::build_native_kernel(p, &err);
    ASSERT_NE(k, nullptr) << err;
    std::uint64_t out[1] = {0};
    k->run_word(nullptr, out);
    EXPECT_EQ(out[0], ~std::uint64_t{0});
  }
}

TEST(Codegen, ProgramBeyond256LiveSlotsIsCorrect) {
  if (!netlist::native_toolchain_available()) GTEST_SKIP() << "no native toolchain";
  // A NOT-chain across 300 distinct slots, every slot a primary output, so
  // all 300 locals are live at the epilogue -- far past the 16 vector
  // registers the allocator has, and past the 256-slot mark where any
  // byte-sized indexing in the pipeline would wrap.
  constexpr std::uint32_t kSlots = 300;
  WordProgram p;
  p.num_inputs = 1;
  p.num_slots = kSlots;
  p.instrs.push_back({Op::Load, 0, 0});
  for (std::uint32_t s = 1; s < kSlots; ++s) {
    p.instrs.push_back({Op::Not, s, s - 1});
  }
  for (std::uint32_t s = 0; s < kSlots; ++s) p.output_slots.push_back(s);

  std::string err;
  const auto k = netlist::build_native_kernel(p, &err);
  ASSERT_NE(k, nullptr) << err;

  const std::uint64_t in[1] = {0xDEADBEEFCAFEF00DULL};
  std::vector<std::uint64_t> out(kSlots, 0);
  k->run_word(in, out.data());
  for (std::uint32_t s = 0; s < kSlots; ++s) {
    ASSERT_EQ(out[s], (s % 2 == 0) ? in[0] : ~in[0]) << "slot " << s;
  }
}

TEST(Codegen, BrokenCompilerDegradesToSimdAndCountsFallback) {
  ScopedEnv cc("ABSORT_CC", "/nonexistent/absort-cc-definitely-missing");
  EXPECT_FALSE(netlist::native_toolchain_available());

  const auto before = netlist::jit_counters();
  const auto* e = sorters::find_sorter("prefix");
  ASSERT_NE(e, nullptr);
  const auto sorter = e->factory(8);
  const auto engine = sorter->make_batch_sorter({.backend = netlist::Backend::Native});
  EXPECT_EQ(engine->backend(), netlist::Backend::Simd);  // the jit-fallback rung
  const auto after = netlist::jit_counters();
  EXPECT_GT(after.fallbacks, before.fallbacks);
  EXPECT_EQ(after.compiles, before.compiles);

  // The degraded engine still sorts every 0-1 input.
  const auto batch = all_inputs(8);
  const auto out = engine->run(batch);
  ASSERT_EQ(out.size(), batch.size());
  for (std::size_t v = 0; v < batch.size(); ++v) {
    ASSERT_EQ(out[v], BitVec::sorted_with_ones(8, batch[v].count_ones())) << "input " << v;
  }
}

TEST(Codegen, BackendEnvOverridesAutoOnly) {
  {
    ScopedEnv be("ABSORT_BACKEND", "interpreter");
    EXPECT_EQ(netlist::resolve_backend(netlist::Backend::Auto),
              netlist::Backend::Interpreter);
    // Explicit requests pass through untouched.
    EXPECT_EQ(netlist::resolve_backend(netlist::Backend::Simd), netlist::Backend::Simd);
  }
  {
    ScopedEnv be("ABSORT_BACKEND", "simd");
    EXPECT_EQ(netlist::resolve_backend(netlist::Backend::Auto), netlist::Backend::Simd);
  }
  {  // unknown or self-referential values are ignored, never fatal
    ScopedEnv be("ABSORT_BACKEND", "nonsense");
    EXPECT_NE(netlist::resolve_backend(netlist::Backend::Auto), netlist::Backend::Auto);
  }
  {
    ScopedEnv be("ABSORT_BACKEND", "auto");
    EXPECT_NE(netlist::resolve_backend(netlist::Backend::Auto), netlist::Backend::Auto);
  }
}

TEST(Codegen, AutoDeclinesNativeForOversizedPrograms) {
  // Auto is size-aware: past kNativeAutoMaxInstrs a kernel could only build
  // at -O0, which loses to the Simd interpreter, so Auto prefers Simd.
  EXPECT_EQ(netlist::resolve_backend(netlist::Backend::Auto,
                                     netlist::kNativeAutoMaxInstrs + 1),
            netlist::Backend::Simd);
  if (netlist::native_toolchain_available()) {
    EXPECT_EQ(netlist::resolve_backend(netlist::Backend::Auto,
                                       netlist::kNativeAutoMaxInstrs),
              netlist::Backend::Native);
  }
  // Explicit requests -- API or ABSORT_BACKEND -- override the gate.
  EXPECT_EQ(netlist::resolve_backend(netlist::Backend::Native,
                                     netlist::kNativeAutoMaxInstrs + 1),
            netlist::Backend::Native);
  ScopedEnv be("ABSORT_BACKEND", "native");
  EXPECT_EQ(netlist::resolve_backend(netlist::Backend::Auto,
                                     netlist::kNativeAutoMaxInstrs + 1),
            netlist::Backend::Native);
}

TEST(Codegen, ConcurrentBuildsShareOneCompile) {
  if (!netlist::native_toolchain_available()) GTEST_SKIP() << "no native toolchain";
#if !defined(_WIN32)
  // Fresh on-disk cache plus a program unique to this test: neither the
  // in-process registry nor the disk can satisfy the first build.
  const std::string dir =
      "/tmp/absort-codegen-test." + std::to_string(static_cast<unsigned long>(::getpid()));
  (void)std::system(("rm -rf '" + dir + "'").c_str());
  ScopedEnv cache("ABSORT_JIT_CACHE", dir.c_str());

  WordProgram p;
  p.num_inputs = 2;
  p.num_slots = 3;
  p.instrs = {{Op::Load, 0, 0}, {Op::Load, 1, 1}};
  for (std::uint32_t i = 0; i < 41; ++i) {
    p.instrs.push_back({(i % 3 == 0) ? Op::Xor : (i % 3 == 1) ? Op::AndNot : Op::Or,
                        2, (i % 2) ? 2u : 0u, 1});
  }
  p.output_slots = {2};

  const auto before = netlist::jit_counters();
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const netlist::NativeKernel>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { got[t] = netlist::build_native_kernel(p); });
  }
  for (auto& t : threads) t.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(got[t], nullptr) << "thread " << t;
    EXPECT_EQ(got[t].get(), got[0].get()) << "thread " << t;  // one shared kernel
  }
  const auto after = netlist::jit_counters();
  EXPECT_EQ(after.compiles - before.compiles, 1u);
  EXPECT_EQ(after.cache_hits - before.cache_hits, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(after.fallbacks, before.fallbacks);

  (void)std::system(("rm -rf '" + dir + "'").c_str());
#endif
}

TEST(Codegen, TwoProcessCacheRaceIsIdempotent) {
  if (!netlist::native_toolchain_available()) GTEST_SKIP() << "no native toolchain";
#if !defined(_WIN32)
  // Several *processes* race on one empty on-disk cache entry -- unlike the
  // threaded test above, no in-process build mutex serializes them, so every
  // child walks the full mkdir + write-source + compile + rename path at
  // once.  All must succeed (a losing rename loads the winner's .so instead
  // of reporting a failed build), and the directory must end up clean: one
  // source, one .so, no .tmp debris.
  const std::string dir =
      "/tmp/absort-codegen-race." + std::to_string(static_cast<unsigned long>(::getpid()));
  (void)std::system(("rm -rf '" + dir + "'").c_str());
  ScopedEnv cache("ABSORT_JIT_CACHE", dir.c_str());

  WordProgram p;
  p.num_inputs = 2;
  p.num_slots = 3;
  p.instrs = {{Op::Load, 0, 0}, {Op::Load, 1, 1}};
  for (std::uint32_t i = 0; i < 53; ++i) {
    p.instrs.push_back({(i % 3 == 0) ? Op::Or : (i % 3 == 1) ? Op::Xor : Op::AndNot,
                        2, (i % 2) ? 2u : 1u, 0});
  }
  p.output_slots = {2};

  // Reference output computed in-process via the same kernel semantics.
  const std::uint64_t in[2] = {0xA5A5A5A5DEADBEEFULL, 0x0F0F0F0F12345678ULL};

  constexpr int kProcs = 4;
  std::vector<pid_t> kids;
  for (int c = 0; c < kProcs; ++c) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: fresh process, empty in-process registry -- everything rides
      // on the shared disk cache.  _exit() keeps gtest machinery out.
      std::string err;
      const auto k = netlist::build_native_kernel(p, &err);
      if (!k) ::_exit(2);
      std::uint64_t out[1] = {0};
      k->run_word(in, out);
      std::uint64_t expect_out[1] = {0};
      {  // recompute via a second build (in-process cache hit) for sanity
        const auto k2 = netlist::build_native_kernel(p);
        if (!k2 || k2.get() != k.get()) ::_exit(3);
        k2->run_word(in, expect_out);
      }
      ::_exit(out[0] == expect_out[0] ? 0 : 4);
    }
    kids.push_back(pid);
  }
  for (const pid_t pid : kids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "child " << pid;
  }

  // The parent builds last: a child installed the entry, so this resolves
  // from disk without a compile.
  const auto before = netlist::jit_counters();
  std::string err;
  const auto k = netlist::build_native_kernel(p, &err);
  ASSERT_NE(k, nullptr) << err;
  const auto after = netlist::jit_counters();
  EXPECT_EQ(after.compiles, before.compiles);
  EXPECT_EQ(after.cache_hits - before.cache_hits, 1u);

  // Directory hygiene: exactly the content-addressed .c and .so, no tmp
  // debris from the losing racers.
  DIR* d = ::opendir(dir.c_str());
  ASSERT_NE(d, nullptr);
  std::size_t sources = 0, shared_objects = 0, other = 0;
  while (const dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    if (name.size() > 2 && name.compare(name.size() - 2, 2, ".c") == 0) {
      ++sources;
    } else if (name.size() > 3 && name.compare(name.size() - 3, 3, ".so") == 0) {
      ++shared_objects;
    } else {
      ++other;  // .tmp leftovers land here
    }
  }
  ::closedir(d);
  EXPECT_EQ(sources, 1u);
  EXPECT_EQ(shared_objects, 1u);
  EXPECT_EQ(other, 0u) << "tmp debris left in " << dir;

  (void)std::system(("rm -rf '" + dir + "'").c_str());
#endif
}

TEST(Codegen, NativeBitIdenticalToInterpreterExhaustive) {
  if (!netlist::native_toolchain_available()) GTEST_SKIP() << "no native toolchain";
  const auto batch = all_inputs(8);
  for (const char* name : {"prefix", "batcher"}) {
    SCOPED_TRACE(name);
    const auto* e = sorters::find_sorter(name);
    ASSERT_NE(e, nullptr);
    const auto sorter = e->factory(8);
    const auto interp = sorter->make_batch_sorter({.backend = netlist::Backend::Interpreter});
    const auto native = sorter->make_batch_sorter({.backend = netlist::Backend::Native});
    EXPECT_EQ(interp->backend(), netlist::Backend::Interpreter);
    ASSERT_EQ(native->backend(), netlist::Backend::Native);

    const auto a = interp->run(batch);
    const auto b = native->run(batch);
    ASSERT_EQ(a.size(), batch.size());
    ASSERT_EQ(b.size(), batch.size());
    for (std::size_t v = 0; v < batch.size(); ++v) {
      ASSERT_EQ(a[v], b[v]) << "input " << v;
      ASSERT_EQ(b[v], BitVec::sorted_with_ones(8, batch[v].count_ones())) << "input " << v;
    }
  }
}

}  // namespace
}  // namespace absort
