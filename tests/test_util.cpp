// Unit tests for util: math helpers, BitVec, the PRNG, workload generators.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "absort/util/bitvec.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort {
namespace {

TEST(Math, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(4));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(Math, Ilog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(4), 2u);
  EXPECT_EQ(ilog2(1024), 10u);
}

TEST(Math, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
}

TEST(Math, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
}

TEST(Math, RequirePow2Throws) {
  EXPECT_NO_THROW(require_pow2(8, 2, "t"));
  EXPECT_THROW(require_pow2(6, 2, "t"), std::invalid_argument);
  EXPECT_THROW(require_pow2(2, 4, "t"), std::invalid_argument);
}

TEST(BitVec, ParseIgnoresSeparators) {
  const auto v = BitVec::parse("1010/11 0_1");
  EXPECT_EQ(v.str(), "10101101");
}

TEST(BitVec, StrGrouping) {
  const auto v = BitVec::parse("10101011");
  EXPECT_EQ(v.str(2), "10/10/10/11");
}

TEST(BitVec, SortedWithOnes) {
  EXPECT_EQ(BitVec::sorted_with_ones(4, 0).str(), "0000");
  EXPECT_EQ(BitVec::sorted_with_ones(4, 2).str(), "0011");
  EXPECT_EQ(BitVec::sorted_with_ones(4, 4).str(), "1111");
  EXPECT_THROW(BitVec::sorted_with_ones(4, 5), std::invalid_argument);
}

TEST(BitVec, FromBitsOf) {
  EXPECT_EQ(BitVec::from_bits_of(0b1101, 4).str(), "1011");  // little-endian
  EXPECT_EQ(BitVec::from_bits_of(0, 3).str(), "000");
}

TEST(BitVec, CountAndSorted) {
  const auto v = BitVec::parse("00101");
  EXPECT_EQ(v.count_ones(), 2u);
  EXPECT_EQ(v.count_zeros(), 3u);
  EXPECT_FALSE(v.is_sorted_ascending());
  EXPECT_TRUE(BitVec::parse("000111").is_sorted_ascending());
  EXPECT_TRUE(BitVec::parse("0000").is_sorted_ascending());
  EXPECT_TRUE(BitVec().is_sorted_ascending());
}

TEST(BitVec, SliceConcat) {
  const auto v = BitVec::parse("10110");
  EXPECT_EQ(v.slice(1, 3).str(), "011");
  EXPECT_EQ(v.slice(0, 2).concat(v.slice(2, 3)), v);
  EXPECT_THROW(v.slice(3, 3), std::out_of_range);
}

TEST(BitVec, Shuffle2) {
  EXPECT_EQ(BitVec::parse("0011").shuffle2().str(), "0101");
  EXPECT_EQ(BitVec::parse("11110001").shuffle2().str(), "10101011");  // Example 1 of the paper
}

TEST(BitVec, Reversed) { EXPECT_EQ(BitVec::parse("100").reversed().str(), "001"); }

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, BelowInRange) {
  ABSORT_SEEDED_RNG(rng, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Workload, RandomBitsWithOnes) {
  ABSORT_SEEDED_RNG(rng, 7);
  for (std::size_t ones = 0; ones <= 16; ++ones) {
    const auto v = workload::random_bits_with_ones(rng, 16, ones);
    EXPECT_EQ(v.size(), 16u);
    EXPECT_EQ(v.count_ones(), ones);
  }
}

TEST(Workload, RandomPermutationIsPermutation) {
  ABSORT_SEEDED_RNG(rng, 9);
  const auto p = workload::random_permutation(rng, 64);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 63u);
}

TEST(Workload, BisortedGenerator) {
  ABSORT_SEEDED_RNG(rng, 11);
  for (int i = 0; i < 50; ++i) {
    const auto v = workload::random_bisorted(rng, 16);
    EXPECT_TRUE(v.slice(0, 8).is_sorted_ascending());
    EXPECT_TRUE(v.slice(8, 8).is_sorted_ascending());
  }
}

TEST(Workload, KSortedGenerator) {
  ABSORT_SEEDED_RNG(rng, 13);
  for (int i = 0; i < 50; ++i) {
    const auto v = workload::random_k_sorted(rng, 16, 4);
    for (std::size_t b = 0; b < 4; ++b) {
      EXPECT_TRUE(v.slice(b * 4, 4).is_sorted_ascending());
    }
  }
}

TEST(Workload, CleanKSortedGenerator) {
  ABSORT_SEEDED_RNG(rng, 17);
  for (int i = 0; i < 50; ++i) {
    const auto v = workload::random_clean_k_sorted(rng, 16, 4);
    for (std::size_t b = 0; b < 4; ++b) {
      const auto blk = v.slice(b * 4, 4);
      EXPECT_TRUE(blk == BitVec::zeros(4) || blk == BitVec::ones(4));
    }
  }
}

}  // namespace
}  // namespace absort
