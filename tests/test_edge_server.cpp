// End-to-end tests for the TCP serving edge (edge/edge_server.hpp) over
// loopback: bit-exactness vs direct per-vector sort, pipelining with
// out-of-order completion, admission control (per-connection in-flight cap +
// Reject-queue shedding), deadline expiry, malformed-frame handling, the
// connection cap, and the statsz endpoint.  Runs under the TSan leg, which
// covers the reactor + waiter + client threads together.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "absort/edge/edge_client.hpp"
#include "absort/edge/edge_server.hpp"
#include "absort/edge/frame.hpp"
#include "absort/networks/permuters.hpp"
#include "absort/service/permute_service.hpp"
#include "absort/service/sort_service.hpp"
#include "absort/sorters/registry.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort {
namespace {

using edge::EdgeClient;
using edge::EdgeOptions;
using edge::EdgeServer;
using edge::MessageType;
using edge::Response;
using edge::WireStatus;

constexpr const char* kHost = "127.0.0.1";

struct Harness {
  service::SortService service;
  EdgeServer server;

  explicit Harness(service::ServiceOptions so = {}, EdgeOptions eo = {})
      : service(so), server(service, eo) {
    server.start();
  }
};

/// Both workloads behind one edge: Sort frames hit the sort service, Permute
/// frames the permute service.
struct PermuteHarness {
  service::SortService sort_service;
  service::PermuteService permute_service;
  EdgeServer server;

  explicit PermuteHarness(service::ServiceOptions so = {}, service::PermuteOptions po = {},
                          EdgeOptions eo = {})
      : sort_service(so), permute_service(po), server(sort_service, permute_service, eo) {
    server.start();
  }
};

std::vector<std::uint16_t> random_dest(Xoshiro256& rng, std::size_t n) {
  const auto perm = workload::random_permutation(rng, n);
  std::vector<std::uint16_t> dest(n);
  for (std::size_t i = 0; i < n; ++i) dest[i] = static_cast<std::uint16_t>(perm[i]);
  return dest;
}

TEST(EdgeServer, SingleClientRoundTripBitExact) {
  Harness h;
  EdgeClient client;
  client.connect(kHost, h.server.port());
  ABSORT_SEEDED_RNG(rng, 301);
  const auto ref = sorters::make_sorter("prefix", 64);
  for (int i = 0; i < 32; ++i) {
    const auto in = workload::random_bits(rng, 64);
    const auto resp = client.sort("prefix", in);
    ASSERT_EQ(resp.status, WireStatus::Ok);
    EXPECT_EQ(resp.output, ref->sort(in));
  }
  const auto c = h.server.counters();
  EXPECT_EQ(c.connections_accepted, 1u);
  EXPECT_EQ(c.requests, 32u);
  EXPECT_EQ(c.responses, 32u);
  EXPECT_EQ(c.shedded, 0u);
  EXPECT_EQ(c.decode_errors, 0u);
  EXPECT_GT(c.bytes_in, 0u);
  EXPECT_GT(c.bytes_out, 0u);
}

TEST(EdgeServer, EightConcurrentClientsMixedKeysBitExact) {
  Harness h;
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kRequests = 40;
  const struct {
    const char* sorter;
    std::size_t n;
  } keys[] = {{"prefix", 64}, {"mux-merger", 128}, {"batcher", 32}, {"fish", 64}};
  std::vector<std::unique_ptr<sorters::BinarySorter>> refs;
  for (const auto& k : keys) refs.push_back(sorters::make_sorter(k.sorter, k.n));

  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> ok{0};
  std::vector<std::thread> threads;
  for (std::size_t cidx = 0; cidx < kClients; ++cidx) {
    threads.emplace_back([&, cidx] {
      Xoshiro256 rng(absort::testing::test_seed(0xED6E) ^ cidx);
      EdgeClient client;
      client.connect(kHost, h.server.port());
      for (std::size_t i = 0; i < kRequests; ++i) {
        const std::size_t k = (cidx + i) % std::size(keys);
        const auto in = workload::random_bits(rng, keys[k].n);
        const auto resp = client.sort(keys[k].sorter, in);
        if (resp.status == WireStatus::Ok && resp.output == refs[k]->sort(in)) {
          ok.fetch_add(1);
        } else {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(ok.load(), kClients * kRequests);
  const auto c = h.server.counters();
  EXPECT_EQ(c.connections_accepted, kClients);
  EXPECT_EQ(c.requests, kClients * kRequests);
  EXPECT_EQ(c.responses, kClients * kRequests);
}

TEST(EdgeServer, MultiReactorServesManyClients) {
  EdgeOptions eo;
  eo.reactors = 3;
  Harness h({}, eo);
  ABSORT_SEEDED_RNG(rng, 303);
  const auto ref = sorters::make_sorter("prefix", 32);
  // More clients than reactors, so the round-robin handoff path (adopting a
  // connection on a non-accepting reactor) is exercised.
  std::vector<EdgeClient> clients(7);
  for (auto& c : clients) c.connect(kHost, h.server.port());
  for (int round = 0; round < 5; ++round) {
    for (auto& c : clients) {
      const auto in = workload::random_bits(rng, 32);
      const auto resp = c.sort("prefix", in);
      ASSERT_EQ(resp.status, WireStatus::Ok);
      EXPECT_EQ(resp.output, ref->sort(in));
    }
  }
  EXPECT_EQ(h.server.counters().connections_accepted, 7u);
}

TEST(EdgeServer, PipelinedOutOfOrderCompletionById) {
  Harness h;
  EdgeClient client;
  client.connect(kHost, h.server.port());
  ABSORT_SEEDED_RNG(rng, 304);
  // Two keys with very different costs interleaved on one connection: the
  // responses may arrive in any order; ids pair them up.
  std::map<std::uint64_t, std::pair<std::string, BitVec>> sent;
  for (int i = 0; i < 24; ++i) {
    const bool big = (i % 2) == 0;
    const std::size_t n = big ? 1024 : 16;
    const char* sorter = big ? "mux-merger" : "prefix";
    const auto in = workload::random_bits(rng, n);
    sent.emplace(client.send_sort(sorter, in), std::make_pair(std::string(sorter), in));
  }
  std::map<std::string, std::unique_ptr<sorters::BinarySorter>> refs;
  refs.emplace("mux-merger", sorters::make_sorter("mux-merger", 1024));
  refs.emplace("prefix", sorters::make_sorter("prefix", 16));
  for (std::size_t i = 0; i < 24; ++i) {
    Response resp;
    ASSERT_TRUE(client.recv(resp));
    const auto it = sent.find(resp.id);
    ASSERT_NE(it, sent.end()) << "unknown id " << resp.id;
    ASSERT_EQ(resp.status, WireStatus::Ok);
    EXPECT_EQ(resp.output, refs.at(it->second.first)->sort(it->second.second));
    sent.erase(it);
  }
  EXPECT_TRUE(sent.empty());
}

TEST(EdgeServer, PerConnectionInflightCapSheds) {
  service::ServiceOptions so;
  so.max_linger = std::chrono::microseconds(2000);  // hold requests so in-flight builds up
  EdgeOptions eo;
  eo.max_inflight_per_conn = 2;
  Harness h(so, eo);
  EdgeClient client;
  client.connect(kHost, h.server.port());
  ABSORT_SEEDED_RNG(rng, 305);
  constexpr std::size_t kBurst = 64;
  for (std::size_t i = 0; i < kBurst; ++i) {
    (void)client.send_sort("prefix", workload::random_bits(rng, 256));
  }
  std::size_t ok = 0, shed = 0;
  for (std::size_t i = 0; i < kBurst; ++i) {
    Response resp;
    ASSERT_TRUE(client.recv(resp));
    if (resp.status == WireStatus::Ok) {
      ++ok;
    } else {
      ASSERT_EQ(resp.status, WireStatus::Shedded);
      ++shed;
    }
  }
  // The cap guarantees overload turned into explicit shedding, not
  // buffering: with the whole burst written before any read, at most a
  // handful can sneak through between completions.
  EXPECT_GT(shed, 0u);
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_EQ(h.server.counters().shedded, shed);
}

TEST(EdgeServer, RejectQueueOverflowBecomesShedded) {
  service::ServiceOptions so;
  so.overflow = service::ServiceOptions::Overflow::Reject;
  so.queue_capacity = 1;
  so.max_batch_lanes = 1;
  so.max_linger = std::chrono::microseconds(0);
  Harness h(so);
  EdgeClient client;
  client.connect(kHost, h.server.port());
  ABSORT_SEEDED_RNG(rng, 306);
  constexpr std::size_t kBurst = 128;
  for (std::size_t i = 0; i < kBurst; ++i) {
    (void)client.send_sort("mux-merger", workload::random_bits(rng, 512));
  }
  std::size_t ok = 0, shed = 0;
  for (std::size_t i = 0; i < kBurst; ++i) {
    Response resp;
    ASSERT_TRUE(client.recv(resp));
    resp.status == WireStatus::Ok ? ++ok : ++shed;
    if (resp.status != WireStatus::Ok) EXPECT_EQ(resp.status, WireStatus::Shedded);
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GT(shed, 0u);  // a 1-slot queue cannot absorb a 128-deep burst
  // Edge shedding and the service's own Reject counter line up: every
  // QueueFull rejection became a Shedded wire response (the in-flight cap
  // did not trigger here, so the counts match exactly... unless the burst
  // outran the default cap too, which the cap below rules out).
  const auto stats = h.server.stats();
  EXPECT_EQ(stats.shedded, shed);
  EXPECT_GE(stats.shedded, stats.rejected);
}

TEST(EdgeServer, TightDeadlineExpires) {
  service::ServiceOptions so;
  so.max_linger = std::chrono::microseconds(5000);
  Harness h(so);
  EdgeClient client;
  client.connect(kHost, h.server.port());
  // A 1 us relative deadline is in the past by the time the dispatcher forms
  // the batch (the linger window alone is 5000 us): deterministic expiry.
  const auto resp = client.sort("prefix", BitVec(64), /*deadline_us=*/1);
  EXPECT_EQ(resp.status, WireStatus::Expired);
  EXPECT_EQ(h.server.stats().expired, 1u);
}

TEST(EdgeServer, GarbageFrameAnswersBadRequestThenCloses) {
  Harness h;
  EdgeClient client;
  client.connect(kHost, h.server.port());
  client.send_raw({0x10, 0x00, 0x00, 0x00,  // length = 16
                   0xFF, 0xFF,              // bad magic
                   0x01, 0x01, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  Response resp;
  ASSERT_TRUE(client.recv(resp));
  EXPECT_EQ(resp.status, WireStatus::BadRequest);
  EXPECT_FALSE(client.recv(resp));  // server closed the torn stream
  EXPECT_EQ(h.server.counters().decode_errors, 1u);
}

TEST(EdgeServer, OversizedLengthPrefixCloses) {
  Harness h;
  EdgeClient client;
  client.connect(kHost, h.server.port());
  client.send_raw({0xFF, 0xFF, 0xFF, 0x7F});  // 2 GiB declared length
  Response resp;
  ASSERT_TRUE(client.recv(resp));
  EXPECT_EQ(resp.status, WireStatus::BadRequest);
  EXPECT_FALSE(client.recv(resp));
  EXPECT_EQ(h.server.counters().decode_errors, 1u);
}

TEST(EdgeServer, UnknownSorterIsBadRequestNotFatal) {
  Harness h;
  EdgeClient client;
  client.connect(kHost, h.server.port());
  const auto bad = client.sort("nosuch", BitVec(16));
  EXPECT_EQ(bad.status, WireStatus::BadRequest);
  // The connection survives: a well-formed frame with a bad name is the
  // client's mistake, not a torn stream.
  const auto good = client.sort("prefix", BitVec(16));
  EXPECT_EQ(good.status, WireStatus::Ok);
}

TEST(EdgeServer, ConnectionCapDropsExtraClients) {
  EdgeOptions eo;
  eo.max_connections = 1;
  Harness h({}, eo);
  EdgeClient first;
  first.connect(kHost, h.server.port());
  ASSERT_EQ(first.sort("prefix", BitVec(16)).status, WireStatus::Ok);

  EdgeClient second;
  second.connect(kHost, h.server.port());  // accepted by the kernel, then dropped
  Response resp;
  EXPECT_FALSE(second.recv(resp));  // immediate EOF
  EXPECT_EQ(h.server.counters().connections_dropped, 1u);

  // The first connection is unaffected.
  EXPECT_EQ(first.sort("prefix", BitVec(16)).status, WireStatus::Ok);
}

TEST(EdgeServer, StatszReturnsCombinedJson) {
  Harness h;
  EdgeClient client;
  client.connect(kHost, h.server.port());
  ABSORT_SEEDED_RNG(rng, 307);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(client.sort("prefix", workload::random_bits(rng, 64)).status, WireStatus::Ok);
  }
  const auto json = client.statsz();
  for (const char* field :
       {"\"submitted\"", "\"completed\"", "\"shedded\"", "\"decode_errors\"",
        "\"connections_accepted\"", "\"connections_dropped\"", "\"bytes_in\"", "\"bytes_out\"",
        "\"batch_size\"", "\"queue_wait_us\"", "\"eval_us\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // The snapshot reflects this connection's own traffic.
  EXPECT_NE(json.find("\"completed\": 8"), std::string::npos) << json;
  EXPECT_NE(json.find("\"connections_accepted\": 1"), std::string::npos) << json;
}

TEST(EdgeServer, PermuteEndToEndAllFamilies) {
  PermuteHarness h;
  EdgeClient client;
  client.connect(kHost, h.server.port());
  ABSORT_SEEDED_RNG(rng, 310);
  constexpr std::size_t kN = 16;
  std::size_t ok = 0, unroutable = 0;
  for (const char* family : {"sorting-permuter", "benes", "omega"}) {
    const auto ref = permuters::make_permuter(family, kN);
    for (int i = 0; i < 12; ++i) {
      // Identity first so every family (omega included) sees a routable
      // pattern; then random permutations, classified by the host reference.
      std::vector<std::uint16_t> dest(kN);
      if (i == 0) {
        for (std::size_t j = 0; j < kN; ++j) dest[j] = static_cast<std::uint16_t>(j);
      } else {
        dest = random_dest(rng, kN);
      }
      const std::vector<std::size_t> wide(dest.begin(), dest.end());
      const auto resp = client.permute(family, dest);
      if (!ref->route(wide).has_value()) {
        EXPECT_EQ(resp.status, WireStatus::Unroutable) << family;
        ++unroutable;
        continue;
      }
      ASSERT_EQ(resp.status, WireStatus::Ok) << family << " perm " << i;
      ASSERT_EQ(resp.output_source.size(), kN);
      for (std::size_t j = 0; j < kN; ++j) {
        EXPECT_EQ(resp.output_source[dest[j]], j) << family << " perm " << i;
      }
      ++ok;
    }
  }
  EXPECT_GE(ok, 3u);  // at least the identity per family routed
  const auto stats = h.server.stats();
  EXPECT_EQ(stats.unroutable, unroutable);
  // Random 16-wide patterns nearly always block omega, so the Unroutable
  // path was really exercised (identity keeps at least one omega Ok).
  EXPECT_GT(unroutable, 0u);
}

TEST(EdgeServer, PermuteAndSortInterleaveOnOneConnection) {
  PermuteHarness h;
  EdgeClient client;
  client.connect(kHost, h.server.port());
  ABSORT_SEEDED_RNG(rng, 311);
  const auto ref = sorters::make_sorter("prefix", 64);
  for (int i = 0; i < 8; ++i) {
    const auto in = workload::random_bits(rng, 64);
    const auto sresp = client.sort("prefix", in);
    ASSERT_EQ(sresp.status, WireStatus::Ok);
    EXPECT_EQ(sresp.output, ref->sort(in));
    const auto dest = random_dest(rng, 8);
    const auto presp = client.permute("benes", dest);
    ASSERT_EQ(presp.status, WireStatus::Ok);
    ASSERT_EQ(presp.output_source.size(), 8u);
    for (std::size_t j = 0; j < 8; ++j) EXPECT_EQ(presp.output_source[dest[j]], j);
  }
  const auto json = client.statsz();
  for (const char* field : {"\"unroutable\"", "\"duplicate_ids\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST(EdgeServer, PermuteOnSortOnlyEdgeIsBadRequestNotFatal) {
  Harness h;  // no PermuteService wired in
  EdgeClient client;
  client.connect(kHost, h.server.port());
  ABSORT_SEEDED_RNG(rng, 312);
  const auto bad = client.permute("benes", random_dest(rng, 8));
  EXPECT_EQ(bad.status, WireStatus::BadRequest);
  // A well-formed frame for an unserved workload is the client's mistake,
  // not a torn stream: the connection survives.
  const auto good = client.sort("prefix", BitVec(16));
  EXPECT_EQ(good.status, WireStatus::Ok);
}

TEST(EdgeServer, UnknownPermuterIsBadRequestNotFatal) {
  PermuteHarness h;
  EdgeClient client;
  client.connect(kHost, h.server.port());
  ABSORT_SEEDED_RNG(rng, 313);
  const auto bad = client.permute("nosuch", random_dest(rng, 8));
  EXPECT_EQ(bad.status, WireStatus::BadRequest);
  const auto good = client.permute("benes", random_dest(rng, 8));
  EXPECT_EQ(good.status, WireStatus::Ok);
}

TEST(EdgeServer, DuplicateInFlightIdRejectedThenIdReusable) {
  service::ServiceOptions so;
  so.max_linger = std::chrono::microseconds(50000);  // hold the first request in flight
  Harness h(so);
  EdgeClient client;
  client.connect(kHost, h.server.port());
  ABSORT_SEEDED_RNG(rng, 314);

  edge::Request req;
  req.type = MessageType::Sort;
  req.id = 7;
  req.sorter = "prefix";
  req.input = workload::random_bits(rng, 64);
  client.send(req);
  client.send(req);  // same id while the first is still in flight: protocol error

  // The rejection is enqueued by the reactor immediately; the Ok follows
  // once the linger window closes.  Both carry id 7.
  std::size_t got_ok = 0, got_bad = 0;
  for (int i = 0; i < 2; ++i) {
    Response resp;
    ASSERT_TRUE(client.recv(resp));
    EXPECT_EQ(resp.id, 7u);
    resp.status == WireStatus::Ok ? ++got_ok : ++got_bad;
    if (resp.status != WireStatus::Ok) EXPECT_EQ(resp.status, WireStatus::BadRequest);
  }
  EXPECT_EQ(got_ok, 1u);
  EXPECT_EQ(got_bad, 1u);
  EXPECT_EQ(h.server.counters().duplicate_ids, 1u);

  // Once answered, the id leaves the in-flight set and may be reused.
  client.send(req);
  Response resp;
  ASSERT_TRUE(client.recv(resp));
  EXPECT_EQ(resp.id, 7u);
  EXPECT_EQ(resp.status, WireStatus::Ok);
  EXPECT_EQ(h.server.counters().duplicate_ids, 1u);
}

TEST(EdgeServer, StopAnswersInFlightOrClosesCleanly) {
  auto h = std::make_unique<Harness>();
  EdgeClient client;
  client.connect(kHost, h->server.port());
  ASSERT_EQ(client.sort("prefix", BitVec(32)).status, WireStatus::Ok);
  h->server.stop();
  // After stop, the connection is gone; recv sees EOF (any still-buffered
  // responses first, but this client has none outstanding).
  Response resp;
  EXPECT_FALSE(client.recv(resp));
  // stop() is idempotent and the harness destructor stops again safely.
  h->server.stop();
}

}  // namespace
}  // namespace absort
