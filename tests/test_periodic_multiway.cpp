// The two sorter families of ROADMAP item 1 as first-class registry
// citizens:
//
//  * periodic-k -- the constant-periodic brick sorter (one block of 3 or 4
//    alternating brick layers applied t times).  Checked: the closed forms
//    for iterations/comparators/depth, arbitrary (non-power-of-two) n, and
//    the self_check_probe() fixpoint theorem -- L(y) == y exactly when y is
//    sorted, over ALL 2^n inputs (this is what the service's Cheap tier
//    stands on, so it is proved here for every probe-bearing sorter).
//
//  * multiway-k -- k-way merging over n-sorter blocks (Shi-Yan-Wagh shape,
//    built on the fish path's build_kway_merger).  Checked: leaf/merger
//    block counts against an independently computed closed form, exhaustive
//    0-1 correctness across k, and route()'s data-carrying face.
//
// Both families: sort_batch bit-identity against Circuit::eval on every
// explicit backend, and ragged batch shapes through the compile-once
// BatchSorter path (including one shape past kBlockLanes).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "absort/netlist/batch_eval.hpp"
#include "absort/sorters/multiway.hpp"
#include "absort/sorters/periodic_balanced.hpp"
#include "absort/sorters/periodic_k.hpp"
#include "absort/sorters/registry.hpp"
#include "absort/util/bitvec.hpp"
#include "test_seed.hpp"

namespace absort {
namespace {

using sorters::MultiwaySorter;
using sorters::OddEvenTranspositionSorter;
using sorters::PeriodicBalancedSorter;
using sorters::PeriodicKSorter;

// ------------------------------------------------------ periodic-k formulas

TEST(PeriodicK, IterationCostDepthClosedForms) {
  for (const std::size_t period : {3u, 4u}) {
    for (const std::size_t n : {2u, 3u, 4u, 5u, 6u, 7u, 8u, 12u, 16u, 48u}) {
      const PeriodicKSorter s(n, period);
      SCOPED_TRACE(::testing::Message() << "n=" << n << " period=" << period);
      EXPECT_EQ(s.period(), period);
      EXPECT_EQ(s.iterations(), PeriodicKSorter::expected_iterations(n, period));
      EXPECT_EQ(s.comparator_count(), PeriodicKSorter::expected_comparators(n, period));
      EXPECT_EQ(s.comparator_depth(), PeriodicKSorter::expected_depth(n, period));
      // One block is period layers; the whole program is t blocks of it.
      const std::size_t even = n / 2, odd = (n - 1) / 2;
      const std::size_t block = period == 3 ? 2 * even + odd : 2 * even + 2 * odd;
      EXPECT_EQ(s.comparator_count(), s.iterations() * block);
    }
  }
  // The iteration bound is the brick-wall collapse: period 3 yields 2t+1
  // alternating layers, period 4 yields 4t -- both must reach n layers.
  for (std::size_t n = 2; n <= 64; ++n) {
    EXPECT_GE(2 * PeriodicKSorter::expected_iterations(n, 3) + 1, n);
    EXPECT_GE(4 * PeriodicKSorter::expected_iterations(n, 4), n);
  }
}

TEST(PeriodicK, RejectsBadPeriods) {
  EXPECT_THROW(PeriodicKSorter(8, 2), std::invalid_argument);
  EXPECT_THROW(PeriodicKSorter(8, 5), std::invalid_argument);
}

// periodic-k is the registry's only arbitrary-n combinational sorter: the
// bricks truncate at the boundary, so every n works.  Exhaustive 0-1 sweep
// on the awkward sizes the power-of-two families reject.
TEST(PeriodicK, SortsEveryInputAtNonPowerOfTwoSizes) {
  for (const std::size_t period : {3u, 4u}) {
    for (const std::size_t n : {2u, 3u, 5u, 6u, 7u, 9u, 10u}) {
      const PeriodicKSorter s(n, period);
      const auto circuit = s.build_circuit();
      SCOPED_TRACE(::testing::Message() << "n=" << n << " period=" << period);
      for (std::uint64_t v = 0; v < (std::uint64_t{1} << n); ++v) {
        const auto in = BitVec::from_bits_of(v, n);
        const auto expect = BitVec::sorted_with_ones(n, in.count_ones());
        ASSERT_EQ(s.sort(in), expect) << "input " << v;
        ASSERT_EQ(circuit.eval(in), expect) << "input " << v;
      }
    }
  }
}

// --------------------------------------------- the self-check probe theorem

/// Asserts the fixpoint theorem the Cheap tier stands on: the probe circuit
/// L satisfies L(y) == y exactly when y is sorted, over ALL 2^n inputs.
void expect_probe_is_sortedness_oracle(const sorters::BinarySorter& s) {
  const auto block = s.self_check_probe();
  ASSERT_TRUE(block.has_value()) << s.name();
  const std::size_t n = s.size();
  SCOPED_TRACE(::testing::Message() << s.name() << " n=" << n);
  for (std::uint64_t v = 0; v < (std::uint64_t{1} << n); ++v) {
    const auto y = BitVec::from_bits_of(v, n);
    const bool fixpoint = block->eval(y) == y;
    ASSERT_EQ(fixpoint, y.is_sorted_ascending()) << "y = " << y.str();
  }
}

TEST(SelfCheckProbe, FixpointsAreExactlyTheSortedVectors) {
  for (const std::size_t n : {2u, 5u, 8u, 10u}) {
    expect_probe_is_sortedness_oracle(PeriodicKSorter(n, 3));
    expect_probe_is_sortedness_oracle(PeriodicKSorter(n, 4));
    expect_probe_is_sortedness_oracle(OddEvenTranspositionSorter(n));
  }
  for (const std::size_t n : {2u, 4u, 8u}) {
    expect_probe_is_sortedness_oracle(PeriodicBalancedSorter(n));
  }
}

// The serving layer's Cheap tier runs the probe through the packed-domain
// fixpoint check (no lane unpack).  Its mismatch bits must agree with
// per-lane sortedness on a batch mixing sorted and unsorted vectors, across
// every lane-block width (sub-word, one-word, SIMD, x2-unrolled) and with a
// ragged tail.
TEST(SelfCheckProbe, PackedFixpointCheckFlagsExactlyTheUnsortedLanes) {
  ABSORT_SEEDED_RNG(rng, 0xF1EDC0DE);
  const PeriodicKSorter s(19, 3);
  const netlist::BitSlicedEvaluator probe(*s.self_check_probe(), {});
  const std::size_t widths[] = {1,  5,  64, 65, netlist::kBlockLanes / 2,
                                netlist::kBlockLanes, netlist::kBlockLanes - 3};
  for (const std::size_t lanes : widths) {
    std::vector<BitVec> batch;
    for (std::size_t i = 0; i < lanes; ++i) {
      auto v = workload::random_bits(rng, 19);
      if (i % 2 == 0) v = BitVec::sorted_with_ones(19, v.count_ones());
      batch.push_back(std::move(v));
    }
    std::vector<wordvec::Word> mm(wordvec::num_passes(lanes), ~wordvec::Word{0});
    std::vector<wordvec::Vec> scratch;
    probe.check_fixpoint_lane_block(batch, 0, lanes, scratch, mm);
    SCOPED_TRACE(::testing::Message() << "lanes=" << lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
      const bool flagged = (mm[i / wordvec::kLanes] >> (i % wordvec::kLanes)) & 1;
      ASSERT_EQ(flagged, !batch[i].is_sorted_ascending()) << "lane " << i;
    }
    // Padding bits past `lanes` in the last word must be clear.
    if (lanes % wordvec::kLanes != 0) {
      ASSERT_EQ(mm.back() & ~wordvec::lane_mask(lanes % wordvec::kLanes), 0u);
    }
  }
}

TEST(SelfCheckProbe, NonPeriodicSortersHaveNone) {
  // The probe is a periodic-structure property; everything else reports
  // nullopt and the service's Cheap tier falls back to the Full oracle.
  for (const char* name : {"batcher", "prefix", "mux-merger", "multiway-k", "fish"}) {
    const auto s = sorters::make_sorter(name, 16);
    EXPECT_FALSE(s->self_check_probe().has_value()) << name;
  }
}

// ------------------------------------------------------ multiway-k structure

TEST(Multiway, BlockCountClosedForms) {
  for (const std::size_t n : {4u, 8u, 16u, 64u, 256u}) {
    for (const std::size_t k : {2u, 4u, 8u, 16u}) {
      if (k > n) continue;
      SCOPED_TRACE(::testing::Message() << "n=" << n << " k=" << k);
      // Independent derivation: j splitting levels until groups fit in one
      // leaf block, k^j leaves, (k^j - 1)/(k - 1) mergers (a full k-ary
      // tree's internal nodes).
      std::size_t j = 0, m = n;
      while (m > k) {
        ++j;
        m /= k;
      }
      std::size_t leaves = 1;
      for (std::size_t i = 0; i < j; ++i) leaves *= k;
      EXPECT_EQ(MultiwaySorter::expected_leaf_sorters(n, k), leaves);
      EXPECT_EQ(MultiwaySorter::expected_mergers(n, k),
                j == 0 ? 0u : (leaves - 1) / (k - 1));
    }
  }
}

TEST(Multiway, SortsEveryInputAcrossK) {
  for (const std::size_t k : {2u, 4u, 8u}) {
    const std::size_t n = 8;
    const MultiwaySorter s(n, k);
    const auto circuit = s.build_circuit();
    SCOPED_TRACE(::testing::Message() << "k=" << k);
    for (std::uint64_t v = 0; v < (std::uint64_t{1} << n); ++v) {
      const auto in = BitVec::from_bits_of(v, n);
      const auto expect = BitVec::sorted_with_ones(n, in.count_ones());
      ASSERT_EQ(s.sort(in), expect) << "input " << v;
      ASSERT_EQ(circuit.eval(in), expect) << "input " << v;
    }
  }
}

TEST(Multiway, RouteCarriesPayloads) {
  ABSORT_SEEDED_RNG(rng, 0x3141592653589793);
  const MultiwaySorter s(16, 4);
  for (int rep = 0; rep < 50; ++rep) {
    const auto tags = workload::random_bits(rng, 16);
    const auto perm = s.route(tags);
    std::vector<bool> seen(16, false);
    for (const auto p : perm) {
      ASSERT_LT(p, 16u);
      ASSERT_FALSE(seen[p]) << "route() is not a permutation";
      seen[p] = true;
    }
    // The network carries data: applying the permutation to the tags
    // themselves must produce the sorted sequence.
    ASSERT_EQ(s.sort(tags), BitVec::sorted_with_ones(16, tags.count_ones()));
  }
}

TEST(Multiway, RejectsBadShapes) {
  EXPECT_THROW(MultiwaySorter(12, 4), std::invalid_argument);  // n not pow2
  EXPECT_THROW(MultiwaySorter(16, 3), std::invalid_argument);  // k not pow2
  EXPECT_THROW(MultiwaySorter(8, 16), std::invalid_argument);  // k > n
}

// ----------------------------------------- batch engines, the three backends

/// sort_batch must be bit-for-bit Circuit::eval on every explicit backend
/// (Native silently degrades to Simd without a toolchain -- still
/// bit-identical, which is the property under test).
void expect_backend_bit_identity(const sorters::BinarySorter& s) {
  ABSORT_SEEDED_RNG(rng, 0x0BACCE5500000000 + s.size());
  const auto circuit = s.build_circuit();
  std::vector<BitVec> batch;
  std::vector<BitVec> expect;
  for (int i = 0; i < 300; ++i) {
    batch.push_back(workload::random_bits(rng, s.size()));
    expect.push_back(circuit.eval(batch.back()));
  }
  for (const auto be :
       {netlist::Backend::Interpreter, netlist::Backend::Simd, netlist::Backend::Native}) {
    sorters::BatchOptions opts;
    opts.backend = be;
    const auto out = s.sort_batch(batch, opts);
    SCOPED_TRACE(::testing::Message() << s.name() << " backend=" << netlist::to_string(be));
    for (std::size_t i = 0; i < batch.size(); ++i) ASSERT_EQ(out[i], expect[i]) << "lane " << i;
  }
}

TEST(BatchBackends, PeriodicKBitIdenticalOnEveryBackend) {
  expect_backend_bit_identity(PeriodicKSorter(12, 3));
  expect_backend_bit_identity(PeriodicKSorter(12, 4));
}

TEST(BatchBackends, MultiwayBitIdenticalOnEveryBackend) {
  expect_backend_bit_identity(MultiwaySorter(16, 4));
}

/// One compile-once engine fed every ragged shape, including one past
/// kBlockLanes so the multi-block path runs.
void expect_ragged_batches_match_sort(const sorters::BinarySorter& s) {
  ABSORT_SEEDED_RNG(rng, 0x4A66ED00 + s.size());
  const auto engine = s.make_batch_sorter();
  const std::size_t counts[] = {1, 3, 64, 65, 200, netlist::kBlockLanes + 1};
  for (const std::size_t count : counts) {
    std::vector<BitVec> batch;
    for (std::size_t i = 0; i < count; ++i) batch.push_back(workload::random_bits(rng, s.size()));
    const auto out = engine->run(batch);
    SCOPED_TRACE(::testing::Message() << s.name() << " count=" << count);
    ASSERT_EQ(out.size(), count);
    for (std::size_t i = 0; i < count; ++i) ASSERT_EQ(out[i], s.sort(batch[i])) << "lane " << i;
  }
}

TEST(BatchShapes, RaggedBatchesMatchPerVectorSort) {
  expect_ragged_batches_match_sort(PeriodicKSorter(11, 3));  // odd n, batched
  expect_ragged_batches_match_sort(MultiwaySorter(16, 4));
}

}  // namespace
}  // namespace absort
