// Tests for the permutation networks: the Benes baseline with the looping
// algorithm, and the radix permuter built from binary sorters (Fig. 10,
// experiments E-F10 / E-T2).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "absort/netlist/analyze.hpp"
#include "absort/networks/benes.hpp"
#include "absort/networks/radix_permuter.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/sorters/prefix_sorter.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort::networks {
namespace {

// Evaluates a Benes netlist on unary data to recover the realized
// permutation: feeding a single 1 at input i must produce a 1 only at
// output dest[i].
void expect_benes_realizes(const BenesNetwork& net, const netlist::Circuit& circuit,
                           const std::vector<std::size_t>& dest) {
  const auto controls = net.compute_controls(dest);
  const std::size_t n = net.size();
  for (std::size_t i = 0; i < n; ++i) {
    BitVec in(n + controls.size());
    in[i] = 1;
    for (std::size_t c = 0; c < controls.size(); ++c) in[n + c] = controls[c];
    const auto out = circuit.eval(in);
    for (std::size_t o = 0; o < n; ++o) {
      EXPECT_EQ(out[o], o == dest[i] ? 1 : 0) << "input " << i << " output " << o;
    }
  }
}

TEST(Benes, RealizesAllPermutationsOfEight) {
  BenesNetwork net(8);
  const auto circuit = net.build_circuit();
  std::vector<std::size_t> dest(8);
  std::iota(dest.begin(), dest.end(), 0);
  do {
    const auto controls = net.compute_controls(dest);
    ASSERT_EQ(controls.size(), BenesNetwork::switch_count(8));
    // Cheap full check: evaluate with distinct one-hot probes.
    expect_benes_realizes(net, circuit, dest);
  } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST(Benes, RealizesRandomLargePermutations) {
  ABSORT_SEEDED_RNG(rng, 111);
  for (std::size_t n : {16u, 64u, 256u}) {
    BenesNetwork net(n);
    const auto circuit = net.build_circuit();
    for (int rep = 0; rep < 5; ++rep) {
      const auto dest = workload::random_permutation(rng, n);
      expect_benes_realizes(net, circuit, dest);
    }
  }
}

TEST(Benes, StructuralCounts) {
  for (std::size_t n : {2u, 4u, 8u, 64u, 1024u}) {
    BenesNetwork net(n);
    const auto circuit = net.build_circuit();
    const auto r = netlist::analyze_unit(circuit);
    EXPECT_DOUBLE_EQ(r.cost, static_cast<double>(BenesNetwork::switch_count(n))) << n;
    EXPECT_DOUBLE_EQ(r.depth, static_cast<double>(BenesNetwork::switch_stages(n))) << n;
  }
  EXPECT_EQ(BenesNetwork::switch_count(8), 20u);   // 4 * (2*3 - 1)
  EXPECT_EQ(BenesNetwork::switch_stages(8), 5u);
}

TEST(Benes, RejectsNonPermutations) {
  BenesNetwork net(8);
  EXPECT_THROW((void)net.compute_controls({0, 0, 1, 2, 3, 4, 5, 6}), std::invalid_argument);
  EXPECT_THROW((void)net.compute_controls({0, 1, 2}), std::invalid_argument);
}

// ---------------------------------------------------------- radix permuter

struct Engine {
  const char* label;
  sorters::SorterFactory factory;
};

Engine muxmerge_engine() {
  return {"muxmerge", [](std::size_t n) { return sorters::MuxMergeSorter::make(n); }};
}
Engine prefix_engine() {
  return {"prefix", [](std::size_t n) { return sorters::PrefixSorter::make(n); }};
}
Engine batcher_engine() {
  return {"batcher", [](std::size_t n) { return sorters::BatcherOemSorter::make(n); }};
}
// The fish sorter needs n >= 4; the innermost windows fall back to a
// comparator-level sorter, exactly as a hardware realization would.
Engine fish_engine() {
  return {"fish", [](std::size_t n) -> std::unique_ptr<sorters::BinarySorter> {
            if (n >= 8) return sorters::FishSorter::make(n);
            return sorters::MuxMergeSorter::make(n);
          }};
}

class RadixPermuterTest : public ::testing::TestWithParam<int> {};

sorters::SorterFactory engine_for(int id) {
  switch (id) {
    case 0: return muxmerge_engine().factory;
    case 1: return prefix_engine().factory;
    case 2: return batcher_engine().factory;
    default: return fish_engine().factory;
  }
}

TEST_P(RadixPermuterTest, RealizesAllPermutationsOfEight) {
  RadixPermuter rp(8, engine_for(GetParam()));
  std::vector<std::size_t> dest(8);
  std::iota(dest.begin(), dest.end(), 0);
  do {
    const auto perm = rp.route(dest);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(perm[dest[i]], i);
    }
  } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST_P(RadixPermuterTest, RealizesRandomLargePermutations) {
  ABSORT_SEEDED_RNG(rng, 113);
  for (std::size_t n : {16u, 64u, 256u, 1024u}) {
    RadixPermuter rp(n, engine_for(GetParam()));
    for (int rep = 0; rep < 10; ++rep) {
      const auto dest = workload::random_permutation(rng, n);
      const auto perm = rp.route(dest);
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(perm[dest[i]], i);
    }
  }
}

TEST_P(RadixPermuterTest, MovesPayloadsToDestinations) {
  const std::size_t n = 64;
  RadixPermuter rp(n, engine_for(GetParam()));
  ABSORT_SEEDED_RNG(rng, 127);
  const auto dest = workload::random_permutation(rng, n);
  std::vector<int> payload(n);
  for (std::size_t i = 0; i < n; ++i) payload[i] = static_cast<int>(1000 + i);
  const auto out = rp.permute_packets(dest, payload);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[dest[i]], payload[i]);
}

INSTANTIATE_TEST_SUITE_P(Engines, RadixPermuterTest, ::testing::Values(0, 1, 2, 3),
                         [](const auto& info) {
                           switch (info.param) {
                             case 0: return "muxmerge";
                             case 1: return "prefix";
                             case 2: return "batcher";
                             default: return "fish";
                           }
                         });

TEST(RadixPermuter, RejectsNonPermutations) {
  RadixPermuter rp(8, muxmerge_engine().factory);
  EXPECT_THROW((void)rp.route({0, 0, 1, 2, 3, 4, 5, 6}), std::invalid_argument);
  EXPECT_THROW((void)rp.route({0, 1}), std::invalid_argument);
}

TEST(RadixPermuter, CostScalesAsNLgNWithFishSorters) {
  // eq. (26): O(n lg n) bit-level cost.  cost / (n lg n) must be bounded and
  // non-increasing over a 16x size range.
  const auto unit = netlist::CostModel::paper_unit();
  const double c1 = RadixPermuter(1024, fish_engine().factory).cost_report(unit).cost;
  const double c2 = RadixPermuter(16384, fish_engine().factory).cost_report(unit).cost;
  const double r1 = c1 / (1024.0 * 10);
  const double r2 = c2 / (16384.0 * 14);
  EXPECT_LE(r2, r1 * 1.10);
  EXPECT_LT(r2, 40.0);  // small constant, nothing like lg n
}

TEST(RadixPermuter, RoutingTimeScalesAsLgCubedWithFishSorters) {
  const auto unit = netlist::CostModel::paper_unit();
  for (std::size_t n : {256u, 1024u, 4096u}) {
    const double t = RadixPermuter(n, fish_engine().factory).routing_time(unit);
    const double lcube = lg(double(n)) * lg(double(n)) * lg(double(n));
    EXPECT_LT(t, 8 * lcube) << n;
  }
}

TEST(RadixPermuter, MuxMergeEngineCostHasExtraLgFactor) {
  // O(n lg^2 n) vs O(n lg n): the mux-merger-based permuter must be costlier
  // than the fish-based one by a factor that grows with n.
  const auto unit = netlist::CostModel::paper_unit();
  double prev_ratio = 0;
  for (std::size_t n : {256u, 1024u, 4096u}) {
    const double mm = RadixPermuter(n, muxmerge_engine().factory).cost_report(unit).cost;
    const double fish = RadixPermuter(n, fish_engine().factory).cost_report(unit).cost;
    const double ratio = mm / fish;
    EXPECT_GT(ratio, prev_ratio) << n;
    prev_ratio = ratio;
  }
}

}  // namespace
}  // namespace absort::networks
