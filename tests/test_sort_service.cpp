// Tests for the serving layer: SortService correctness under multi-producer
// load (bit-identical to per-vector sort()), deadline cancellation, queue
// overflow policies, drain-then-stop shutdown, the sorter registry, and the
// ServiceStats histograms.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "absort/netlist/native_engine.hpp"
#include "absort/service/service_stats.hpp"
#include "absort/service/sort_service.hpp"
#include "absort/sorters/registry.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort {
namespace {

using namespace std::chrono_literals;
using service::ServiceOptions;
using service::SortResult;
using service::SortService;
using service::Status;

// ---------------------------------------------------------------- registry

TEST(Registry, EveryEntryConstructsAndSorts) {
  ABSORT_SEEDED_RNG(rng, 3);
  for (const auto& e : sorters::registry()) {
    const auto sorter = e.factory(16);
    ASSERT_NE(sorter, nullptr) << e.name;
    const auto in = workload::random_bits(rng, 16);
    const auto out = sorter->sort(in);
    std::size_t ones = 0, got = 0;
    for (std::size_t i = 0; i < 16; ++i) ones += in[i], got += out[i];
    EXPECT_EQ(got, ones) << e.name;
    for (std::size_t i = 1; i < 16; ++i) EXPECT_LE(out[i - 1], out[i]) << e.name;
    EXPECT_EQ(sorters::find_sorter(e.name), &e);
  }
}

TEST(Registry, UnknownNameThrowsListingSorters) {
  EXPECT_EQ(sorters::find_sorter("nosuch"), nullptr);
  try {
    (void)sorters::make_sorter("nosuch", 16);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nosuch"), std::string::npos);
    EXPECT_NE(msg.find("available"), std::string::npos);
    EXPECT_NE(msg.find("prefix"), std::string::npos);
  }
}

// --------------------------------------------------------------- histogram

TEST(Histogram, BucketsAndPercentiles) {
  EXPECT_EQ(service::HistogramSnapshot::bucket_lower(0), 0u);
  EXPECT_EQ(service::HistogramSnapshot::bucket_upper(0), 0u);
  EXPECT_EQ(service::HistogramSnapshot::bucket_lower(1), 1u);
  EXPECT_EQ(service::HistogramSnapshot::bucket_upper(1), 1u);
  EXPECT_EQ(service::HistogramSnapshot::bucket_lower(4), 8u);
  EXPECT_EQ(service::HistogramSnapshot::bucket_upper(4), 15u);

  service::Histogram h;
  for (std::uint64_t v : {0u, 1u, 2u, 3u, 100u}) h.record(v);
  const auto s = h.snapshot();
  EXPECT_EQ(s.total, 5u);
  EXPECT_EQ(s.sum, 106u);
  EXPECT_DOUBLE_EQ(s.mean(), 106.0 / 5.0);
  EXPECT_EQ(s.counts[0], 1u);  // value 0
  EXPECT_EQ(s.counts[1], 1u);  // value 1
  EXPECT_EQ(s.counts[2], 2u);  // values 2, 3
  EXPECT_EQ(s.counts[7], 1u);  // value 100 in [64, 127]
  EXPECT_LE(s.percentile(0.5), s.percentile(0.99));
  EXPECT_EQ(s.percentile(0.99), 127u);  // upper bound of 100's bucket
  const auto json = s.to_json();
  EXPECT_NE(json.find("\"total\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

// ----------------------------------------------------------- serving: core

TEST(SortService, MultiProducerBitIdenticalToPerVectorSort) {
  const struct {
    const char* name;
    std::size_t n;
  } keys[] = {{"prefix", 64}, {"batcher", 32}, {"fish", 64}};
  std::vector<std::unique_ptr<sorters::BinarySorter>> refs;
  for (const auto& k : keys) refs.push_back(sorters::make_sorter(k.name, k.n));

  SortService svc;
  constexpr std::size_t kProducers = 4, kRequests = 100, kWindow = 8;
  // Producers derive per-thread seeds from one replayable base; the trace
  // lives on this thread, where the mismatch count is actually asserted.
  const std::uint64_t base_seed = testing::test_seed(41);
  SCOPED_TRACE(::testing::Message() << "replay: ABSORT_TEST_SEED=" << base_seed);
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Xoshiro256 rng(base_seed + p);
      struct InFlight {
        std::future<SortResult> fut;
        BitVec expect;
      };
      std::vector<InFlight> window;
      const auto settle = [&](InFlight& f) {
        const auto r = f.fut.get();
        if (r.status != Status::Ok || r.output != f.expect) {
          mismatches.fetch_add(1);
        }
      };
      for (std::size_t i = 0; i < kRequests; ++i) {
        const std::size_t k = rng.below(std::size(keys));
        auto in = workload::random_bits(rng, keys[k].n);
        auto expect = refs[k]->sort(in);
        window.push_back(InFlight{svc.submit(keys[k].name, std::move(in)),
                                  std::move(expect)});
        if (window.size() >= kWindow) {
          settle(window.front());
          window.erase(window.begin());
        }
      }
      for (auto& f : window) settle(f);
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(mismatches.load(), 0u);

  const auto st = svc.stats();
  EXPECT_EQ(st.submitted, kProducers * kRequests);
  EXPECT_EQ(st.completed, kProducers * kRequests);
  EXPECT_EQ(st.failed, 0u);
  // Repeat traffic over 3 keys compiles exactly 3 engines, ever.
  EXPECT_EQ(st.compiled, 3u);
  EXPECT_GE(st.batches, 1u);
  EXPECT_LE(st.batches, st.completed);
  // Histograms saw every request / batch.
  EXPECT_EQ(st.batch_size.total, st.batches);
  EXPECT_EQ(st.batch_size.sum, st.completed);
  EXPECT_EQ(st.queue_wait_us.total, kProducers * kRequests);
  EXPECT_EQ(st.eval_us.total, st.batches);
  const auto json = st.to_json();
  for (const char* field : {"\"submitted\"", "\"batch_size\"", "\"queue_wait_us\"",
                            "\"eval_us\"", "\"buckets\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // Terminal-state reconciliation: every submission resolved exactly once.
  EXPECT_EQ(st.submitted, st.completed + st.failed + st.expired + st.stopped);
  // The edge counters live in ServiceStats so one JSON covers the whole
  // serving stack, but a plain SortService never touches them: all zero
  // here, rendered all the same (EdgeServer::stats() fills them in).
  EXPECT_EQ(st.shedded, 0u);
  EXPECT_EQ(st.decode_errors, 0u);
  EXPECT_EQ(st.connections_accepted, 0u);
  EXPECT_EQ(st.connections_dropped, 0u);
  EXPECT_EQ(st.bytes_in, 0u);
  EXPECT_EQ(st.bytes_out, 0u);
  for (const char* field : {"\"shedded\": 0", "\"decode_errors\": 0",
                            "\"connections_accepted\": 0", "\"connections_dropped\": 0",
                            "\"bytes_in\": 0", "\"bytes_out\": 0"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

// JIT telemetry contract: engines[] describes exactly the engines this
// service compiled (one entry per compiled engine, resolved backend never
// Auto), the jit_* counters are per-service deltas of the process-wide JIT
// counters, and to_json renders all of it.
TEST(SortService, JitCountersAndEngineInfosReconcile) {
  const bool native = netlist::native_toolchain_available();
  ServiceOptions so;
  so.batch.backend = netlist::Backend::Auto;
  SortService svc(so);

  Xoshiro256 rng(testing::test_seed(43));
  const struct {
    const char* name;
    std::size_t n;
  } keys[] = {{"prefix", 64}, {"batcher", 32}};
  for (const auto& k : keys) {  // two rounds: second must reuse the engine
    for (int round = 0; round < 2; ++round) {
      const auto r = svc.sort(k.name, workload::random_bits(rng, k.n));
      ASSERT_EQ(r.status, Status::Ok);
    }
  }

  const auto st = svc.stats();
  EXPECT_EQ(st.compiled, 2u);
  ASSERT_EQ(st.engines.size(), st.compiled);  // one EngineInfo per engine, ever
  for (const auto& e : st.engines) {
    EXPECT_FALSE(e.sorter.empty());
    EXPECT_GT(e.n, 0u);
    EXPECT_NE(e.backend, netlist::Backend::Auto);  // always resolved
    EXPECT_EQ(e.backend, native ? netlist::Backend::Native : netlist::Backend::Simd);
  }

  // Each single-circuit engine performed exactly one kernel build (a fresh
  // compile or a cache hit); without a toolchain the JIT is never entered.
  if (native) {
    EXPECT_EQ(st.jit_compiles + st.jit_cache_hits, 2u);
    EXPECT_EQ(st.jit_fallbacks, 0u);
  } else {
    EXPECT_EQ(st.jit_compiles, 0u);
    EXPECT_EQ(st.jit_cache_hits, 0u);
  }

  const auto json = st.to_json();
  for (const char* field :
       {"\"jit_compiles\"", "\"jit_cache_hits\"", "\"jit_fallbacks\"", "\"engines\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  const std::string backend_field =
      std::string("\"backend\": \"") + netlist::to_string(st.engines[0].backend) + "\"";
  EXPECT_NE(json.find(backend_field), std::string::npos) << backend_field;
}

TEST(SortService, UnknownSorterThrowsImmediately) {
  SortService svc;
  EXPECT_THROW((void)svc.submit("nosuch", BitVec(8)), std::invalid_argument);
}

TEST(SortService, BadSizeForSorterFailsThroughFuture) {
  SortService svc;
  ABSORT_SEEDED_RNG(rng, 5);
  // fish requires a power-of-two n >= 4, so the factory throws at n = 7 --
  // delivered through the future, not the submit call.
  auto fut = svc.submit("fish", workload::random_bits(rng, 7));
  EXPECT_THROW((void)fut.get(), std::exception);
  EXPECT_EQ(svc.stats().failed, 1u);
}

// ------------------------------------------------------ serving: deadlines

TEST(SortService, ExpiredDeadlineCancelsWithoutEvaluating) {
  SortService svc;
  ABSORT_SEEDED_RNG(rng, 7);
  const auto in = workload::random_bits(rng, 32);
  auto late = svc.submit("prefix", in, SortService::Clock::now() - 1ms);
  const auto r = late.get();
  EXPECT_EQ(r.status, Status::Expired);
  EXPECT_EQ(r.output.size(), 0u);
  EXPECT_EQ(svc.stats().expired, 1u);
  // A generous deadline still sorts.
  auto ok = svc.sort("prefix", in);
  EXPECT_EQ(ok.status, Status::Ok);
  EXPECT_EQ(svc.stats().completed, 1u);
}

// ------------------------------------------------------- serving: shutdown

TEST(SortService, StopDrainsEverythingAccepted) {
  ServiceOptions so;
  so.max_linger = 0us;  // drain promptly
  SortService svc(so);
  ABSORT_SEEDED_RNG(rng, 11);
  std::vector<std::future<SortResult>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(svc.submit("prefix", workload::random_bits(rng, 64)));
  }
  svc.stop();
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::Ok);
  EXPECT_EQ(svc.stats().completed, 64u);
}

TEST(SortService, SubmitAfterStopIsStopped) {
  SortService svc;
  svc.stop();
  svc.stop();  // idempotent
  auto fut = svc.submit("prefix", BitVec(16));
  const auto r = fut.get();
  EXPECT_EQ(r.status, Status::Stopped);
  EXPECT_EQ(svc.stats().stopped, 1u);
}

// ------------------------------------------------------- serving: overflow
//
// Overflow needs a full queue, which needs the dispatcher busy.  A 1-slot
// queue plus a long linger pins it down: the first request is extracted and
// lingers for same-key company, a second (different-key) request then holds
// the only slot, and a third hits the policy under test.  The sleep gives
// the dispatcher time to extract the first request; the linger (much longer
// than any step here) keeps the timing slack generous.

TEST(SortService, RejectPolicyFailsFastWithQueueFull) {
  ServiceOptions so;
  so.queue_capacity = 1;
  so.overflow = ServiceOptions::Overflow::Reject;
  so.max_linger = 500ms;
  SortService svc(so);
  ABSORT_SEEDED_RNG(rng, 13);

  auto lingering = svc.submit("prefix", workload::random_bits(rng, 32));
  std::this_thread::sleep_for(50ms);  // dispatcher extracts it, starts lingering
  auto queued = svc.submit("batcher", workload::random_bits(rng, 16));
  auto overflow = svc.submit("batcher", workload::random_bits(rng, 16));

  const auto r = overflow.get();
  EXPECT_EQ(r.status, Status::QueueFull);
  EXPECT_EQ(svc.stats().rejected, 1u);
  EXPECT_EQ(lingering.get().status, Status::Ok);
  EXPECT_EQ(queued.get().status, Status::Ok);
}

TEST(SortService, BlockPolicyWaitsForSpace) {
  ServiceOptions so;
  so.queue_capacity = 1;
  so.overflow = ServiceOptions::Overflow::Block;
  so.max_linger = 100ms;
  SortService svc(so);
  ABSORT_SEEDED_RNG(rng, 17);

  auto lingering = svc.submit("prefix", workload::random_bits(rng, 32));
  std::this_thread::sleep_for(30ms);
  auto queued = svc.submit("batcher", workload::random_bits(rng, 16));
  // Blocks until the linger expires and the queue drains, then goes through.
  auto blocked = svc.submit("batcher", workload::random_bits(rng, 16));

  EXPECT_EQ(blocked.get().status, Status::Ok);
  EXPECT_EQ(lingering.get().status, Status::Ok);
  EXPECT_EQ(queued.get().status, Status::Ok);
  EXPECT_EQ(svc.stats().rejected, 0u);
}

TEST(SortService, BlockPolicyRespectsDeadlineWhileWaiting) {
  ServiceOptions so;
  so.queue_capacity = 1;
  so.overflow = ServiceOptions::Overflow::Block;
  so.max_linger = 500ms;
  SortService svc(so);
  ABSORT_SEEDED_RNG(rng, 19);

  auto lingering = svc.submit("prefix", workload::random_bits(rng, 32));
  std::this_thread::sleep_for(50ms);
  auto queued = svc.submit("batcher", workload::random_bits(rng, 16));
  // The queue stays full for the rest of the 500ms linger; a 30ms deadline
  // expires while blocked waiting for a slot.
  auto r = svc.submit("batcher", workload::random_bits(rng, 16),
                      SortService::Clock::now() + 30ms)
               .get();
  EXPECT_EQ(r.status, Status::Expired);
  EXPECT_EQ(lingering.get().status, Status::Ok);
  EXPECT_EQ(queued.get().status, Status::Ok);
}

// ----------------------------------------------------- serving: coalescing

TEST(SortService, LingerCoalescesSameKeyRequests) {
  ServiceOptions so;
  so.max_linger = 200ms;  // plenty to catch a burst submitted back to back
  SortService svc(so);
  ABSORT_SEEDED_RNG(rng, 23);
  std::vector<std::future<SortResult>> futs;
  constexpr std::size_t kBurst = 32;
  for (std::size_t i = 0; i < kBurst; ++i) {
    futs.push_back(svc.submit("prefix", workload::random_bits(rng, 64)));
  }
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::Ok);
  const auto st = svc.stats();
  EXPECT_EQ(st.completed, kBurst);
  // The burst must not have run one-request-per-pass: the dispatcher picks
  // up the first request alone at worst, then coalesces the rest.
  EXPECT_LE(st.batches, kBurst / 2);
  EXPECT_EQ(st.compiled, 1u);
}

TEST(SortService, MaxBatchLanesOneDisablesCoalescing) {
  ServiceOptions so;
  so.max_batch_lanes = 1;
  so.max_linger = 0us;
  SortService svc(so);
  ABSORT_SEEDED_RNG(rng, 29);
  std::vector<std::future<SortResult>> futs;
  for (int i = 0; i < 16; ++i) {
    futs.push_back(svc.submit("prefix", workload::random_bits(rng, 32)));
  }
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::Ok);
  const auto st = svc.stats();
  EXPECT_EQ(st.batches, 16u);
  EXPECT_EQ(st.batch_size.total, 16u);
  EXPECT_EQ(st.batch_size.percentile(0.99), 1u);
}

}  // namespace
}  // namespace absort
