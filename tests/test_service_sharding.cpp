// Tests for the sharded SortService: affinity routing, multi-producer
// bit-identity across shard counts, work stealing, drain-on-stop with steals
// in flight, per-shard Block/Reject overflow semantics, and the global
// degradation ladder (a fault caught on one shard quarantines the engine on
// every shard).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <iterator>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "absort/service/fault_injection.hpp"
#include "absort/service/service_stats.hpp"
#include "absort/service/sort_service.hpp"
#include "absort/sorters/registry.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort {
namespace {

using namespace std::chrono_literals;
using service::ServiceOptions;
using service::SortResult;
using service::SortService;
using service::Status;

struct Key {
  const char* sorter;
  std::size_t n;
};

// ----------------------------------------------------------------- routing

TEST(ServiceSharding, RoutingIsStableAndSpreadsKeys) {
  ServiceOptions so;
  so.shards = 8;
  SortService svc(so);
  EXPECT_EQ(svc.shard_count(), 8u);

  // Same key -> same shard, every time (affinity is the point of the hash).
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(svc.shard_of("prefix", 64), svc.shard_of("prefix", 64));
  }
  // Routing only depends on (sorter, n), so a second service agrees.
  SortService svc2(so);
  EXPECT_EQ(svc.shard_of("prefix", 64), svc2.shard_of("prefix", 64));

  // A spread of keys must not all pile onto one shard.
  std::vector<std::size_t> used;
  for (const char* s : {"prefix", "batcher", "mux-merger", "fish"}) {
    for (const std::size_t n : {16, 32, 64, 128, 256}) {
      used.push_back(svc.shard_of(s, n));
    }
  }
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  EXPECT_GT(used.size(), 1u) << "20 keys hashed to a single shard of 8";

  EXPECT_THROW((void)svc.shard_of("nosuch", 16), std::invalid_argument);
  // A 1-shard service routes everything to shard 0.
  SortService mono;
  EXPECT_EQ(mono.shard_count(), 1u);
  EXPECT_EQ(mono.shard_of("fish", 64), 0u);
}

// ----------------------------------------------- determinism across shards

// Same inputs -> bit-identical outputs at 1, 2, and 8 shards, under
// multi-producer load with routing and stealing both active; every answer is
// also checked against the per-vector reference oracle.
TEST(ServiceSharding, MultiProducerBitIdenticalAcross128Shards) {
  const Key keys[] = {{"prefix", 64}, {"batcher", 32}, {"mux-merger", 128}, {"fish", 64}};
  std::vector<std::unique_ptr<sorters::BinarySorter>> refs;
  for (const auto& k : keys) refs.push_back(sorters::make_sorter(k.sorter, k.n));

  constexpr std::size_t kProducers = 4, kRequests = 120, kWindow = 8;
  const std::uint64_t base_seed = testing::test_seed(211);
  SCOPED_TRACE(::testing::Message() << "replay: ABSORT_TEST_SEED=" << base_seed);

  // outputs[shard_config][producer] = concatenated output bits, in order.
  std::vector<std::vector<std::vector<BitVec>>> outputs;
  for (const std::size_t shards : {1u, 2u, 8u}) {
    ServiceOptions so;
    so.shards = shards;
    so.steal_threshold = 2;  // keep thieves active during the run
    so.max_linger = 200us;
    SortService svc(so);

    std::vector<std::vector<BitVec>> per_producer(kProducers);
    std::atomic<std::size_t> mismatches{0};
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        Xoshiro256 rng(base_seed + p);  // same stream for every shard count
        struct InFlight {
          std::size_t key;
          BitVec input;
          std::future<SortResult> fut;
        };
        std::vector<InFlight> window;
        const auto settle = [&](InFlight f) {
          const auto r = f.fut.get();
          if (r.status != Status::Ok || r.output != refs[f.key]->sort(f.input)) {
            mismatches.fetch_add(1);
          } else {
            per_producer[p].push_back(r.output);
          }
        };
        for (std::size_t i = 0; i < kRequests; ++i) {
          const std::size_t k = rng.below(std::size(keys));
          auto in = workload::random_bits(rng, keys[k].n);
          auto fut = svc.submit(keys[k].sorter, in);
          window.push_back(InFlight{k, std::move(in), std::move(fut)});
          if (window.size() >= kWindow) {
            settle(std::move(window.front()));
            window.erase(window.begin());
          }
        }
        for (auto& f : window) settle(std::move(f));
      });
    }
    for (auto& t : producers) t.join();
    EXPECT_EQ(mismatches.load(), 0u) << "shards=" << shards;

    const auto st = svc.stats();
    EXPECT_EQ(st.submitted, kProducers * kRequests) << "shards=" << shards;
    EXPECT_EQ(st.completed, kProducers * kRequests) << "shards=" << shards;
    EXPECT_EQ(st.per_shard.size(), shards);
    std::uint64_t routed = 0;
    for (const auto& sh : st.per_shard) routed += sh.routed;
    EXPECT_EQ(routed, st.submitted) << "shards=" << shards;
    outputs.push_back(std::move(per_producer));
  }

  // Identical per-producer output sequences regardless of the shard count.
  for (std::size_t cfg = 1; cfg < outputs.size(); ++cfg) {
    ASSERT_EQ(outputs[cfg].size(), outputs[0].size());
    for (std::size_t p = 0; p < outputs[0].size(); ++p) {
      EXPECT_EQ(outputs[cfg][p], outputs[0][p]) << "config " << cfg << " producer " << p;
    }
  }
}

// ------------------------------------------------------------ work stealing

// A hot key routes every request to one home shard; with a low steal
// threshold and sustained backlog, sibling shards must pick up part of the
// load -- and every stolen answer must still be correct.
TEST(ServiceSharding, StealingSpreadsHotKeyBacklog) {
  ServiceOptions so;
  so.shards = 4;
  so.steal_threshold = 1;
  so.max_batch_lanes = 4;  // many small batches -> many steal opportunities
  so.max_linger = 0us;
  SortService svc(so);

  const auto ref = sorters::make_sorter("prefix", 64);
  constexpr std::size_t kProducers = 4, kRequests = 400, kWindow = 16;
  const std::uint64_t base_seed = testing::test_seed(223);
  SCOPED_TRACE(::testing::Message() << "replay: ABSORT_TEST_SEED=" << base_seed);

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Xoshiro256 rng(base_seed + p);
      struct InFlight {
        BitVec input;
        std::future<SortResult> fut;
      };
      std::vector<InFlight> window;
      const auto settle = [&](InFlight f) {
        const auto r = f.fut.get();
        if (r.status != Status::Ok || r.output != ref->sort(f.input)) mismatches.fetch_add(1);
      };
      for (std::size_t i = 0; i < kRequests; ++i) {
        auto in = workload::random_bits(rng, 64);
        auto fut = svc.submit("prefix", in);
        window.push_back(InFlight{std::move(in), std::move(fut)});
        if (window.size() >= kWindow) {
          settle(std::move(window.front()));
          window.erase(window.begin());
        }
      }
      for (auto& f : window) settle(std::move(f));
    });
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  const auto st = svc.stats();
  EXPECT_EQ(st.completed, kProducers * kRequests);
  EXPECT_GT(st.steals, 0u) << "no sibling ever stole from the backlogged home shard";
  EXPECT_GT(st.stolen_requests, 0u);
  // The hot key has one home shard: every request routed there.
  const std::size_t home = svc.shard_of("prefix", 64);
  for (std::size_t i = 0; i < st.per_shard.size(); ++i) {
    EXPECT_EQ(st.per_shard[i].routed, i == home ? st.submitted : 0u) << "shard " << i;
  }
  // Stolen batches were evaluated off the home shard.
  std::uint64_t away_batches = 0, away_steals = 0;
  for (std::size_t i = 0; i < st.per_shard.size(); ++i) {
    if (i == home) continue;
    away_batches += st.per_shard[i].batches;
    away_steals += st.per_shard[i].steals;
  }
  EXPECT_EQ(away_steals, st.steals);  // only thieves record steals
  EXPECT_GT(away_batches, 0u);
}

TEST(ServiceSharding, StealThresholdZeroDisablesStealing) {
  ServiceOptions so;
  so.shards = 4;
  so.steal_threshold = 0;
  so.max_batch_lanes = 4;
  so.max_linger = 0us;
  SortService svc(so);
  ABSORT_SEEDED_RNG(rng, 227);
  std::vector<std::future<SortResult>> futs;
  for (int i = 0; i < 256; ++i) {
    futs.push_back(svc.submit("prefix", workload::random_bits(rng, 64)));
  }
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::Ok);
  const auto st = svc.stats();
  EXPECT_EQ(st.steals, 0u);
  EXPECT_EQ(st.stolen_requests, 0u);
  const std::size_t home = svc.shard_of("prefix", 64);
  EXPECT_EQ(st.per_shard[home].batches, st.batches);
}

// --------------------------------------------------------- drain-then-stop

// stop() must answer every accepted request even while thieves hold stolen
// batches: a burst lands on one shard, siblings steal from it, and stop()
// races the processing.  Nothing may be lost or answered non-Ok.
TEST(ServiceSharding, StopDrainsWithStealsInFlight) {
  for (int round = 0; round < 3; ++round) {
    ServiceOptions so;
    so.shards = 4;
    so.steal_threshold = 1;
    so.max_batch_lanes = 2;  // small batches keep steals mid-flight at stop()
    so.max_linger = 0us;
    SortService svc(so);
    ABSORT_SEEDED_RNG(rng, 229 + round);

    constexpr std::size_t kBurst = 256;
    std::vector<std::future<SortResult>> futs;
    futs.reserve(kBurst);
    for (std::size_t i = 0; i < kBurst; ++i) {
      futs.push_back(svc.submit("prefix", workload::random_bits(rng, 64)));
    }
    svc.stop();  // races the dispatchers and any thief mid-batch
    for (auto& f : futs) EXPECT_EQ(f.get().status, Status::Ok);
    const auto st = svc.stats();
    EXPECT_EQ(st.submitted, kBurst);
    EXPECT_EQ(st.completed, kBurst);
    EXPECT_EQ(st.submitted, st.completed + st.failed + st.expired + st.unrecoverable);
  }
}

// ------------------------------------------------- per-shard queue overflow
//
// queue_capacity bounds each shard's queue independently.  The probe needs
// two keys on one shard (a lingering one to pin its dispatcher + one to hold
// the 1-slot queue) and a third key on a *different* shard to show the other
// queue is unaffected.  Keys are discovered through shard_of at runtime --
// the affinity hash is stable but not chosen by this test.

struct ShardKeys {
  Key pin;    ///< extracted first; its linger pins the busy shard's dispatcher
  Key full;   ///< then holds the busy shard's only queue slot
  Key other;  ///< routes to a different shard
};

bool find_shard_keys(const SortService& svc, ShardKeys& out) {
  const Key candidates[] = {{"prefix", 16},  {"prefix", 32},   {"prefix", 64},
                            {"batcher", 16}, {"batcher", 32},  {"batcher", 64},
                            {"mux-merger", 16}, {"mux-merger", 32}, {"mux-merger", 64}};
  std::map<std::size_t, std::vector<Key>> by_shard;
  for (const auto& k : candidates) {
    by_shard[svc.shard_of(k.sorter, k.n)].push_back(k);
  }
  for (const auto& [shard, keys] : by_shard) {
    if (keys.size() < 2) continue;
    for (const auto& [other_shard, other_keys] : by_shard) {
      if (other_shard == shard) continue;
      out = ShardKeys{keys[0], keys[1], other_keys[0]};
      return true;
    }
  }
  return false;  // all nine keys on one shard: possible in principle, not seen
}

// ------------------------------------------- stealing x deadline interaction

// A stolen micro-batch must honor the *original* deadlines of its requests:
// the thief dispatches immediately (no second linger window on top of the
// wait already served on the victim), and a request whose deadline passed in
// the victim's queue is answered Expired even though a thief carried it.
//
// Deterministic setup: two keys that share a home shard (found at runtime,
// as in the overflow probes).  steal_threshold is 2, so a single queued
// request can never be stolen -- the pin below lands on the home dispatcher
// with certainty -- while the 6-deep wave stays stealable.  A request on the
// first key pins the home dispatcher inside a 400 ms linger window; the wave
// on the second key with 150 ms budgets then lands in the home queue,
// untouchable by the lingering dispatcher (wrong key) -- only the idle
// sibling can serve it, by stealing.  If the stolen batch re-lingered, the
// wave would sit out the deadline clip (t0 + 150 ms) and come back Expired
// at batch formation; honoring the originals means Ok, fast.
TEST(ServiceSharding, StolenBatchesHonorOriginalDeadlines) {
  ServiceOptions so;
  so.shards = 2;
  so.steal_threshold = 2;
  so.max_batch_lanes = 64;    // batches stay partial -> the linger window opens
  so.max_linger = 400ms;
  SortService svc(so);
  ShardKeys k{};
  if (!find_shard_keys(svc, k)) GTEST_SKIP() << "degenerate key->shard mapping";
  const auto ref = sorters::make_sorter(k.full.sorter, k.full.n);
  ABSORT_SEEDED_RNG(rng, 271);

  // Prewarm both engines (and the process-wide JIT registry) so the timed
  // phase below measures serving, not first-touch kernel builds.
  ASSERT_EQ(svc.sort(k.pin.sorter, workload::random_bits(rng, k.pin.n)).status, Status::Ok);
  ASSERT_EQ(svc.sort(k.full.sorter, workload::random_bits(rng, k.full.n)).status, Status::Ok);

  // Pin the home dispatcher: a single unbounded-deadline request (depth 1 <
  // steal_threshold, so no thief can race it away) opens the full 400 ms
  // linger window on its key.
  auto pinned = svc.submit(k.pin.sorter, workload::random_bits(rng, k.pin.n));
  std::this_thread::sleep_for(50ms);
  ASSERT_EQ(pinned.wait_for(0ms), std::future_status::timeout)
      << "the home dispatcher is not lingering on the pin";

  // Phase A: the wave, 150 ms budgets.  Only the thief can serve it in time.
  const auto t0 = SortService::Clock::now();
  struct InFlight {
    BitVec input;
    std::future<SortResult> fut;
  };
  std::vector<InFlight> wave;
  for (int i = 0; i < 6; ++i) {
    auto in = workload::random_bits(rng, k.full.n);
    auto fut = svc.submit(k.full.sorter, in, t0 + 150ms);
    wave.push_back(InFlight{std::move(in), std::move(fut)});
  }
  // Sweeper: an unbounded-deadline straggler on the wave's key.  If a steal
  // landed mid-wave and left exactly one deadline request queued (below the
  // steal threshold, stranded until the pin's linger ends), the sweeper
  // lifts the depth back over the threshold so the thief returns for it.
  auto sweeper = svc.submit(k.full.sorter, workload::random_bits(rng, k.full.n));

  for (auto& f : wave) {
    const auto r = f.fut.get();
    ASSERT_EQ(r.status, Status::Ok) << "150 ms budget burned -- stolen batch re-lingered?";
    EXPECT_EQ(r.output, ref->sort(f.input));
  }
  EXPECT_LT(SortService::Clock::now() - t0, 400ms);

  // Phase B: two requests already expired when enqueued (two, to stay
  // stealable); the thief that carries them must answer Expired, not serve
  // them late.  The home dispatcher is still inside its linger window.
  const auto past = SortService::Clock::now() - 1ms;
  auto dead1 = svc.submit(k.full.sorter, workload::random_bits(rng, k.full.n), past);
  auto dead2 = svc.submit(k.full.sorter, workload::random_bits(rng, k.full.n), past);
  EXPECT_EQ(dead1.get().status, Status::Expired);
  EXPECT_EQ(dead2.get().status, Status::Expired);

  EXPECT_EQ(pinned.get().status, Status::Ok);
  EXPECT_EQ(sweeper.get().status, Status::Ok);
  const auto st = svc.stats();
  EXPECT_GT(st.steals, 0u) << "nothing was stolen: the probe did not exercise the thief";
  EXPECT_GE(st.stolen_requests, 6u);  // at minimum the wave travelled via steals
  const std::size_t home = svc.shard_of(k.full.sorter, k.full.n);
  EXPECT_EQ(st.per_shard[home].steals, 0u);  // only the sibling thieves
}

TEST(ServiceSharding, RejectIsPerShardQueue) {
  ServiceOptions so;
  so.shards = 2;
  so.steal_threshold = 0;  // a thief would drain the deliberately full queue
  so.queue_capacity = 1;
  so.overflow = ServiceOptions::Overflow::Reject;
  so.max_linger = 500ms;
  SortService svc(so);
  ShardKeys k{};
  if (!find_shard_keys(svc, k)) GTEST_SKIP() << "degenerate key->shard mapping";
  ABSORT_SEEDED_RNG(rng, 233);

  auto lingering = svc.submit(k.pin.sorter, workload::random_bits(rng, k.pin.n));
  std::this_thread::sleep_for(50ms);  // dispatcher extracts it, starts lingering
  auto queued = svc.submit(k.full.sorter, workload::random_bits(rng, k.full.n));
  auto overflow = svc.submit(k.full.sorter, workload::random_bits(rng, k.full.n));
  // The sibling shard's 1-slot queue is empty: same service, same instant,
  // accepted and served while the other shard is rejecting.
  auto elsewhere = svc.submit(k.other.sorter, workload::random_bits(rng, k.other.n));

  EXPECT_EQ(overflow.get().status, Status::QueueFull);
  EXPECT_EQ(elsewhere.get().status, Status::Ok);
  EXPECT_EQ(svc.stats().rejected, 1u);
  EXPECT_EQ(lingering.get().status, Status::Ok);
  EXPECT_EQ(queued.get().status, Status::Ok);
}

TEST(ServiceSharding, BlockIsPerShardQueue) {
  ServiceOptions so;
  so.shards = 2;
  so.steal_threshold = 0;
  so.queue_capacity = 1;
  so.overflow = ServiceOptions::Overflow::Block;
  so.max_linger = 500ms;
  SortService svc(so);
  ShardKeys k{};
  if (!find_shard_keys(svc, k)) GTEST_SKIP() << "degenerate key->shard mapping";
  ABSORT_SEEDED_RNG(rng, 239);

  auto lingering = svc.submit(k.pin.sorter, workload::random_bits(rng, k.pin.n));
  std::this_thread::sleep_for(50ms);
  auto queued = svc.submit(k.full.sorter, workload::random_bits(rng, k.full.n));
  // Submitting to the *other* shard does not block even though this shard's
  // queue is full (Block waits on the target shard's queue only).
  const auto t0 = SortService::Clock::now();
  auto elsewhere = svc.submit(k.other.sorter, workload::random_bits(rng, k.other.n));
  EXPECT_LT(SortService::Clock::now() - t0, 200ms);
  EXPECT_EQ(elsewhere.get().status, Status::Ok);
  // On the full shard, Block still respects the deadline while waiting.
  const auto r = svc.submit(k.full.sorter, workload::random_bits(rng, k.full.n),
                            SortService::Clock::now() + 30ms)
                     .get();
  EXPECT_EQ(r.status, Status::Expired);
  EXPECT_EQ(lingering.get().status, Status::Ok);
  EXPECT_EQ(queued.get().status, Status::Ok);
}

// ----------------------------------------------------- global quarantine

// Regression for the sharded degradation ladder: quarantine state is keyed
// per (sorter, n) *globally*.  A structural fault caught on one shard must
// stop every shard -- including thieves that serve the key during the
// follow-up flood -- from ever re-running the bad engine.
TEST(ServiceSharding, QuarantineOnOneShardCoversAllShards) {
  ServiceOptions so;
  so.shards = 4;
  so.steal_threshold = 1;  // force other shards to touch the quarantined key
  so.max_batch_lanes = 8;
  so.max_linger = 0us;
  so.quarantine_after = 1;  // first caught fault quarantines
  so.probation = 0;         // and quarantine is permanent
  service::FaultPlanOptions fo;
  fo.corrupt = 1.0;  // every batch through the engine gets corrupted...
  fo.corrupt_fraction = 1.0;
  so.fault_plan = std::make_shared<service::FaultPlan>(fo);  // ...forcing self_check on
  SortService svc(so);

  const auto ref = sorters::make_sorter("prefix", 64);
  ABSORT_SEEDED_RNG(rng, 241);

  // Phase 1: one request on the home shard.  The corrupted batch fails the
  // self-check, gets repaired per-vector, and quarantines the key globally.
  {
    const auto in = workload::random_bits(rng, 64);
    const auto r = svc.submit("prefix", in).get();
    ASSERT_EQ(r.status, Status::Ok);
    EXPECT_EQ(r.output, ref->sort(in));
  }
  const auto st1 = svc.stats();
  EXPECT_EQ(st1.self_check_failed, 1u);
  EXPECT_EQ(st1.quarantined, 1u);  // global: one quarantine, not one per shard
  EXPECT_EQ(st1.degraded, 1u);

  // Phase 2: flood the same key from several producers so thieves on other
  // shards serve it too.  If any shard still had a live engine, its first
  // batch would corrupt -> self_check_failed would grow past phase 1's value.
  constexpr std::size_t kProducers = 4, kRequests = 200, kWindow = 16;
  std::atomic<std::size_t> bad{0};
  std::vector<std::thread> producers;
  const std::uint64_t base_seed = testing::test_seed(251);
  SCOPED_TRACE(::testing::Message() << "replay: ABSORT_TEST_SEED=" << base_seed);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Xoshiro256 prng(base_seed + p);
      struct InFlight {
        BitVec input;
        std::future<SortResult> fut;
      };
      std::vector<InFlight> window;
      const auto settle = [&](InFlight f) {
        const auto r = f.fut.get();
        if (r.status != Status::Ok || r.output != ref->sort(f.input)) bad.fetch_add(1);
      };
      for (std::size_t i = 0; i < kRequests; ++i) {
        auto in = workload::random_bits(prng, 64);
        auto fut = svc.submit("prefix", in);
        window.push_back(InFlight{std::move(in), std::move(fut)});
        if (window.size() >= kWindow) {
          settle(std::move(window.front()));
          window.erase(window.begin());
        }
      }
      for (auto& f : window) settle(std::move(f));
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(bad.load(), 0u);

  const auto st2 = svc.stats();
  // No shard served the bad engine again: no new self-check miss, no new
  // quarantine, and every flood request went through the per-vector path.
  EXPECT_EQ(st2.self_check_failed, st1.self_check_failed);
  EXPECT_EQ(st2.quarantined, 1u);
  EXPECT_EQ(st2.degraded, st1.degraded + kProducers * kRequests);
  EXPECT_EQ(st2.unrecoverable, 0u);
  // And other shards really did touch the quarantined key (stolen batches).
  EXPECT_GT(st2.steals, 0u);
  const std::size_t home = svc.shard_of("prefix", 64);
  std::uint64_t away_batches = 0;
  for (std::size_t i = 0; i < st2.per_shard.size(); ++i) {
    if (i != home) away_batches += st2.per_shard[i].batches;
  }
  EXPECT_GT(away_batches, 0u);
}

// ------------------------------------------------ pinning / hw-shards smoke

// shards = hardware_concurrency with pinning on: the configuration the TSan
// ctest leg runs.  Pinning is best-effort (a no-op where unsupported), so
// this asserts serving correctness, not affinity placement.
TEST(ServiceSharding, HardwareShardsWithPinningServeCorrectly) {
  const unsigned hc = std::thread::hardware_concurrency();
  ServiceOptions so;
  so.shards = hc == 0 ? 1 : hc;
  so.pin_threads = true;
  so.steal_threshold = 2;
  so.max_linger = 100us;
  SortService svc(so);
  EXPECT_EQ(svc.shard_count(), hc == 0 ? 1u : hc);

  const Key keys[] = {{"prefix", 64}, {"batcher", 32}, {"fish", 64}};
  std::vector<std::unique_ptr<sorters::BinarySorter>> refs;
  for (const auto& k : keys) refs.push_back(sorters::make_sorter(k.sorter, k.n));
  ABSORT_SEEDED_RNG(rng, 257);
  struct InFlight {
    std::size_t key;
    BitVec input;
    std::future<SortResult> fut;
  };
  std::vector<InFlight> inflight;
  for (std::size_t i = 0; i < 192; ++i) {
    const std::size_t k = i % std::size(keys);
    auto in = workload::random_bits(rng, keys[k].n);
    auto fut = svc.submit(keys[k].sorter, in);
    inflight.push_back(InFlight{k, std::move(in), std::move(fut)});
  }
  for (auto& f : inflight) {
    const auto r = f.fut.get();
    ASSERT_EQ(r.status, Status::Ok);
    EXPECT_EQ(r.output, refs[f.key]->sort(f.input));
  }
  EXPECT_EQ(svc.stats().completed, 192u);
}

// Per-shard counters surface in the JSON render (dashboards scrape this).
TEST(ServiceSharding, StatsJsonRendersPerShardCounters) {
  ServiceOptions so;
  so.shards = 2;
  SortService svc(so);
  ABSORT_SEEDED_RNG(rng, 263);
  (void)svc.sort("prefix", workload::random_bits(rng, 32));
  const auto json = svc.stats().to_json();
  EXPECT_NE(json.find("\"shards\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"per_shard\": ["), std::string::npos);
  EXPECT_NE(json.find("\"steals\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"stolen_requests\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"lane_occupancy\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\""), std::string::npos);
}

}  // namespace
}  // namespace absort
