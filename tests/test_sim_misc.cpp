// Tests for sim::Schedule, sim::ClockedCircuit basics, and the golden
// netlist regression anchor.

#include <gtest/gtest.h>

#include "absort/netlist/serialize.hpp"
#include "absort/sim/clock.hpp"
#include "absort/sim/clocked_circuit.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"

namespace absort {
namespace {

TEST(Schedule, CriticalPathIsMaxFinish) {
  sim::Schedule s;
  EXPECT_DOUBLE_EQ(s.critical_path(), 0.0);
  EXPECT_DOUBLE_EQ(s.step("a", 0, 5), 5.0);
  EXPECT_DOUBLE_EQ(s.step("b", 2, 10), 12.0);  // overlapping branch
  EXPECT_DOUBLE_EQ(s.step("c", 5, 3), 8.0);
  EXPECT_DOUBLE_EQ(s.critical_path(), 12.0);
  ASSERT_EQ(s.steps().size(), 3u);
  EXPECT_EQ(s.steps()[1].label, "b");
  EXPECT_DOUBLE_EQ(s.steps()[1].start, 2.0);
  EXPECT_DOUBLE_EQ(s.steps()[1].finish, 12.0);
}

TEST(ClockedCircuit, TwoBitCounter) {
  // d0 = !q0; d1 = q1 XOR q0 -- a classic ripple counter built from the
  // primitives, stepped eight times around.
  netlist::Circuit c;
  const auto q0 = c.input();
  const auto q1 = c.input();
  const auto d0 = c.not_gate(q0);
  const auto d1 = c.xor_gate(q1, q0);
  c.mark_output(q0);
  c.mark_output(q1);
  sim::ClockedCircuit cc(std::move(c), {}, {{0, d0, 0}, {1, d1, 0}});
  int expect = 0;
  for (int t = 0; t < 8; ++t) {
    const auto out = cc.step(BitVec{});
    EXPECT_EQ(out[0] + 2 * out[1], expect % 4) << t;
    ++expect;
  }
  EXPECT_EQ(cc.cycles(), 8u);
  cc.reset();
  EXPECT_EQ(cc.cycles(), 0u);
  EXPECT_EQ(cc.step(BitVec{}).str(), "00");
}

TEST(ClockedCircuit, ValidatesBindings) {
  netlist::Circuit c;
  const auto a = c.input();
  c.mark_output(a);
  // unclaimed input
  EXPECT_THROW(sim::ClockedCircuit(c, {}, {}), std::invalid_argument);
  // double claim
  EXPECT_THROW(sim::ClockedCircuit(c, {0, 0}, {}), std::invalid_argument);
  // bad register wire
  EXPECT_THROW(sim::ClockedCircuit(c, {}, {{0, 99, 0}}), std::invalid_argument);
}

// Golden anchor: the serialized 8-input mux-merger netlist.  If a refactor
// changes the construction (component order, pattern tables, counts), this
// fails loudly and the golden text below must be consciously regenerated
// with `absort_cli save mux-merger 8`.
TEST(Golden, MuxMergeSorter8IsStable) {
  const auto c = sorters::MuxMergeSorter(8).build_circuit();
  const auto text = netlist::to_text(c);
  // Structural fingerprint rather than full text: counts + pattern tables.
  // C(8) = 47 units = 7 comparators + 10 four-way switches (4 units each).
  EXPECT_EQ(c.num_components(), 8u /*inputs*/ + 7u /*comparators*/ + 10u /*switch4x4*/);
  const auto inv = c.inventory();
  EXPECT_EQ(inv[static_cast<std::size_t>(netlist::Kind::Comparator)], 7u);
  EXPECT_EQ(inv[static_cast<std::size_t>(netlist::Kind::Switch4x4)], 10u);
  EXPECT_NE(text.find("swap4 0 0 2 1 3 0 3 1 2 2 1 3 0 1 3 0 2"), std::string::npos)
      << "IN-SWAP pattern table changed";
  EXPECT_NE(text.find("swap4 1 0 1 2 3 0 2 3 1 0 2 3 1 2 3 0 1"), std::string::npos)
      << "OUT-SWAP pattern table changed";
}

}  // namespace
}  // namespace absort
