// Tests for the self-routing substrate: omega network, rank circuits, the
// ranking concentrator of [11]/[13] style, the carrying netlist, and the
// word-level radix sorter built from binary sorting steps.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "absort/blocks/rank.hpp"
#include "absort/netlist/analyze.hpp"
#include "absort/networks/rank_concentrator.hpp"
#include "absort/sorters/carrying.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/sorters/prefix_sorter.hpp"
#include "absort/sorters/radix_wordsort.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort {
namespace {

// ----------------------------------------------------------------- omega

TEST(Omega, SelfRoutesSingletons) {
  // A single packet always reaches its destination (omega is a banyan:
  // unique path, never blocked alone).
  networks::OmegaNetwork net(16);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t d = 0; d < 16; ++d) {
      std::vector<std::optional<std::size_t>> dest(16);
      dest[i] = d;
      const auto r = net.route(dest);
      EXPECT_EQ(r.conflicts, 0u);
      EXPECT_EQ(r.output_source[d], i) << i << "->" << d;
    }
  }
}

TEST(Omega, ReverseFlowSelfRoutesSingletons) {
  networks::OmegaNetwork net(16, networks::OmegaFlow::Reverse);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t d = 0; d < 16; ++d) {
      std::vector<std::optional<std::size_t>> dest(16);
      dest[i] = d;
      const auto r = net.route(dest);
      EXPECT_EQ(r.conflicts, 0u);
      EXPECT_EQ(r.output_source[d], i) << i << "->" << d;
    }
  }
}

TEST(Omega, IdentityAndShiftsRouteCleanly) {
  // The identity and all cyclic shifts are classic omega-passable patterns.
  networks::OmegaNetwork net(32);
  for (std::size_t shift = 0; shift < 32; ++shift) {
    std::vector<std::optional<std::size_t>> dest(32);
    for (std::size_t i = 0; i < 32; ++i) dest[i] = (i + shift) % 32;
    const auto r = net.route(dest);
    EXPECT_EQ(r.conflicts, 0u) << "shift " << shift;
    for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(r.output_source[(i + shift) % 32], i);
  }
}

TEST(Omega, SomePermutationsBlock) {
  // Omega is blocking: the bit-reversal permutation collides for n >= 8.
  networks::OmegaNetwork net(8);
  std::vector<std::optional<std::size_t>> dest(8);
  for (std::size_t i = 0; i < 8; ++i) {
    dest[i] = ((i & 1) << 2) | (i & 2) | ((i >> 2) & 1);
  }
  EXPECT_GT(net.route(dest).conflicts, 0u);
  EXPECT_THROW((void)net.compute_controls(dest), std::invalid_argument);
}

TEST(Omega, ForwardOmegaBlocksOnSparseConcentration) {
  // Why the concentrator needs the *reverse* flow: forward omega collides
  // even on simple monotone compact traffic with gaps.
  networks::OmegaNetwork net(16, networks::OmegaFlow::Forward);
  std::vector<std::optional<std::size_t>> dest(16);
  dest[0] = 0;
  dest[2] = 1;
  dest[4] = 2;
  EXPECT_GT(net.route(dest).conflicts, 0u);
}

TEST(Omega, MonotoneCompactTrafficNeverBlocksExhaustive) {
  // The property the rank concentrator relies on, checked exhaustively on
  // the *reverse* (inverse banyan) flow: for every activity mask of 16
  // inputs and every offset of the compact destination window, routing is
  // conflict-free.
  networks::OmegaNetwork net(16, networks::OmegaFlow::Reverse);
  for (std::uint32_t mask = 0; mask < (1u << 16); mask += 7) {  // dense sample
    const auto actives = static_cast<std::size_t>(__builtin_popcount(mask));
    if (actives == 0) continue;
    for (std::size_t offset : {std::size_t{0}, std::size_t{3}, 16 - actives}) {
      if (offset + actives > 16) continue;
      std::vector<std::optional<std::size_t>> dest(16);
      std::size_t rank = 0;
      for (std::size_t i = 0; i < 16; ++i) {
        if ((mask >> i) & 1u) dest[i] = offset + rank++;
      }
      const auto r = net.route(dest);
      EXPECT_EQ(r.conflicts, 0u) << "mask=" << mask << " offset=" << offset;
    }
  }
}

TEST(Omega, NetlistMatchesSelfRouting) {
  networks::OmegaNetwork net(16, networks::OmegaFlow::Reverse);
  const auto circuit = net.build_circuit();
  ABSORT_SEEDED_RNG(rng, 41);
  for (int rep = 0; rep < 50; ++rep) {
    // A random monotone compact pattern (so controls exist).
    std::vector<std::optional<std::size_t>> dest(16);
    std::size_t rank = 0;
    for (std::size_t i = 0; i < 16; ++i) {
      if (rng.bit()) dest[i] = rank++;
    }
    if (rank == 0) continue;
    const auto controls = net.compute_controls(dest);
    // One-hot probes: input i's packet must surface at dest[i].
    for (std::size_t i = 0; i < 16; ++i) {
      if (!dest[i]) continue;
      BitVec in(16 + controls.size());
      in[i] = 1;
      for (std::size_t c = 0; c < controls.size(); ++c) in[16 + c] = controls[c];
      const auto out = circuit.eval(in);
      EXPECT_EQ(out[*dest[i]], 1) << i;
    }
  }
}

TEST(Omega, StructuralCounts) {
  const auto r = netlist::analyze_unit(networks::OmegaNetwork(64).build_circuit());
  EXPECT_DOUBLE_EQ(r.cost, 32.0 * 6);  // (n/2) lg n switches
  EXPECT_DOUBLE_EQ(r.depth, 6.0);      // lg n stages
}

// ------------------------------------------------------------------ ranks

TEST(RankCircuit, PrefixCountsExhaustive) {
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    netlist::Circuit c;
    const auto bits = c.inputs(n);
    for (const auto& cnt : blocks::prefix_counts(c, bits)) {
      for (auto w : cnt) c.mark_output(w);
    }
    const std::size_t width = ilog2(n) + 1;
    for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
      const auto in = BitVec::from_bits_of(x, n);
      const auto out = c.eval(in);
      std::size_t running = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::size_t got = 0;
        for (std::size_t j = 0; j < width; ++j) {
          got |= static_cast<std::size_t>(out[i * width + j]) << j;
        }
        EXPECT_EQ(got, running) << "x=" << x << " i=" << i;
        running += in[i];
      }
    }
  }
}

TEST(RankCircuit, PopulationCount) {
  netlist::Circuit c;
  const auto bits = c.inputs(8);
  for (auto w : blocks::population_count(c, bits)) c.mark_output(w);
  for (std::uint64_t x = 0; x < 256; ++x) {
    const auto in = BitVec::from_bits_of(x, 8);
    const auto out = c.eval(in);
    std::size_t got = 0;
    for (std::size_t j = 0; j < out.size(); ++j) got |= static_cast<std::size_t>(out[j]) << j;
    EXPECT_EQ(got, in.count_ones());
  }
}

// ------------------------------------------------- ranking concentrator

TEST(RankConcentrator, ExhaustiveMasks) {
  networks::RankConcentrator con(16);
  for (std::uint32_t mask = 0; mask < (1u << 16); mask += 3) {
    std::vector<bool> active(16);
    for (std::size_t i = 0; i < 16; ++i) active[i] = (mask >> i) & 1u;
    const auto out = con.concentrate(active);
    // Stable: the j-th concentrated output is the j-th active input.
    std::size_t j = 0;
    for (std::size_t i = 0; i < 16; ++i) {
      if (active[i]) {
        ASSERT_LT(j, out.size());
        EXPECT_EQ(out[j], i) << "mask=" << mask;
        ++j;
      }
    }
    EXPECT_EQ(j, out.size());
  }
}

TEST(RankConcentrator, CostIsNLgSquared) {
  // Section IV: "The ranking tree-based constructions given in [11], [13],
  // exact O(n lg^2 n) cost."  The ratio to n lg^2 n must be bounded; the
  // ratio to n lg n must grow.
  const auto unit = netlist::CostModel::paper_unit();
  double prev_nlgn = 0;
  for (std::size_t n : {64u, 256u, 1024u}) {
    const double cost = networks::RankConcentrator(n).cost_report(unit).cost;
    const double l = lg(double(n));
    EXPECT_LT(cost / (double(n) * l * l), 8.0) << n;
    const double nlgn = cost / (double(n) * l);
    EXPECT_GT(nlgn, prev_nlgn) << n;
    prev_nlgn = nlgn;
  }
}

// ------------------------------------------------------ carrying netlist

TEST(CarryingSorter, PayloadPlanesFollowTheTags) {
  const std::size_t n = 16, w = 5;
  netlist::Circuit c;
  sorters::CarryingBundle in;
  in.tags = c.inputs(n);
  in.payload.resize(w);
  for (auto& plane : in.payload) plane = c.inputs(n);
  const auto out = sorters::build_carrying_muxmerge_sorter(c, in);
  for (auto t : out.tags) c.mark_output(t);
  for (const auto& plane : out.payload) {
    for (auto p : plane) c.mark_output(p);
  }

  sorters::MuxMergeSorter model(n);
  ABSORT_SEEDED_RNG(rng, 43);
  for (int rep = 0; rep < 200; ++rep) {
    const auto tags = workload::random_bits(rng, n);
    // Payload: each lane carries a distinct w-bit id.
    std::vector<std::uint64_t> ids(n);
    for (std::size_t i = 0; i < n; ++i) ids[i] = rng.below(1u << w);
    BitVec input = tags;
    for (std::size_t p = 0; p < w; ++p) {
      for (std::size_t i = 0; i < n; ++i) {
        input.push_back(static_cast<Bit>((ids[i] >> p) & 1u));
      }
    }
    const auto result = c.eval(input);
    // Tag plane equals the plain sorter.
    const auto expect_tags = model.sort(tags);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(result[i], expect_tags[i]);
    // Payload planes carry the ids exactly where carry() says.
    const auto expect_ids = model.carry(tags, ids);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t got = 0;
      for (std::size_t p = 0; p < w; ++p) {
        got |= static_cast<std::uint64_t>(result[n + p * n + i]) << p;
      }
      EXPECT_EQ(got, expect_ids[i]) << "lane " << i;
    }
  }
}

TEST(CarryingSorter, PrefixSorterPayloadPlanesFollowTheTags) {
  const std::size_t n = 16, w = 4;
  netlist::Circuit c;
  sorters::CarryingBundle in;
  in.tags = c.inputs(n);
  in.payload.resize(w);
  for (auto& plane : in.payload) plane = c.inputs(n);
  const auto out = sorters::build_carrying_prefix_sorter(c, in);
  for (auto t : out.tags) c.mark_output(t);
  for (const auto& plane : out.payload) {
    for (auto p : plane) c.mark_output(p);
  }

  sorters::PrefixSorter model(n);
  ABSORT_SEEDED_RNG(rng, 45);
  for (int rep = 0; rep < 200; ++rep) {
    const auto tags = workload::random_bits(rng, n);
    std::vector<std::uint64_t> ids(n);
    for (std::size_t i = 0; i < n; ++i) ids[i] = rng.below(1u << w);
    BitVec input = tags;
    for (std::size_t p = 0; p < w; ++p) {
      for (std::size_t i = 0; i < n; ++i) {
        input.push_back(static_cast<Bit>((ids[i] >> p) & 1u));
      }
    }
    const auto result = c.eval(input);
    const auto expect_tags = model.sort(tags);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(result[i], expect_tags[i]);
    const auto expect_ids = model.carry(tags, ids);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t got = 0;
      for (std::size_t p = 0; p < w; ++p) {
        got |= static_cast<std::uint64_t>(result[n + p * n + i]) << p;
      }
      EXPECT_EQ(got, expect_ids[i]) << "lane " << i;
    }
  }
}

TEST(CarryingSorter, CostScalesWithPayloadWidth) {
  const auto unit = netlist::CostModel::paper_unit();
  const auto cost_with = [&](std::size_t w) {
    netlist::Circuit c;
    sorters::CarryingBundle in;
    in.tags = c.inputs(64);
    in.payload.resize(w);
    for (auto& plane : in.payload) plane = c.inputs(64);
    const auto out = sorters::build_carrying_muxmerge_sorter(c, in);
    for (auto t : out.tags) c.mark_output(t);
    for (const auto& plane : out.payload) {
      for (auto p : plane) c.mark_output(p);
    }
    return netlist::analyze(c, unit).cost;
  };
  const double c0 = cost_with(0), c1 = cost_with(1), c4 = cost_with(4);
  EXPECT_GT(c1, c0);
  // Each extra plane adds the same slave-switch increment.
  EXPECT_NEAR(c4 - c1, 3 * (c1 - c0), 1e-9);
}

// ------------------------------------------------------- radix wordsort

TEST(RadixWordSort, MatchesStableSort) {
  sorters::RadixWordSorter s(64, 8);
  ABSORT_SEEDED_RNG(rng, 47);
  for (int rep = 0; rep < 100; ++rep) {
    std::vector<std::uint64_t> keys(64);
    for (auto& k : keys) k = rng.below(256);
    auto expect = keys;
    std::stable_sort(expect.begin(), expect.end());
    EXPECT_EQ(s.sort(keys), expect);
  }
}

TEST(RadixWordSort, IsStable) {
  sorters::RadixWordSorter s(16, 4);
  ABSORT_SEEDED_RNG(rng, 53);
  for (int rep = 0; rep < 100; ++rep) {
    std::vector<std::uint64_t> keys(16);
    for (auto& k : keys) k = rng.below(4);  // heavy duplicates
    const auto perm = s.route(keys);
    // Stability: among equal keys, original order is preserved.
    for (std::size_t i = 0; i + 1 < 16; ++i) {
      if (keys[perm[i]] == keys[perm[i + 1]]) {
        EXPECT_LT(perm[i], perm[i + 1]);
      }
    }
  }
}

TEST(RadixWordSort, SingleBitEqualsBinarySorter) {
  sorters::RadixWordSorter radix(32, 1);
  sorters::MuxMergeSorter binary(32);
  ABSORT_SEEDED_RNG(rng, 59);
  for (int rep = 0; rep < 50; ++rep) {
    const auto tags = workload::random_bits(rng, 32);
    std::vector<std::uint64_t> keys(32);
    for (std::size_t i = 0; i < 32; ++i) keys[i] = tags[i];
    const auto sorted = radix.sort(keys);
    const auto expect = binary.sort(tags);
    for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(sorted[i], expect[i]);
  }
}

TEST(RadixWordSort, ValidatesInput) {
  sorters::RadixWordSorter s(8, 3);
  EXPECT_THROW((void)s.sort(std::vector<std::uint64_t>(7)), std::invalid_argument);
  EXPECT_THROW((void)s.sort(std::vector<std::uint64_t>(8, 9)), std::invalid_argument);
  EXPECT_THROW(sorters::RadixWordSorter(12, 4), std::invalid_argument);
  EXPECT_THROW(sorters::RadixWordSorter(8, 0), std::invalid_argument);
}

TEST(RadixWordSort, CostReportScalesWithBits) {
  const auto unit = netlist::CostModel::paper_unit();
  const double c4 = sorters::RadixWordSorter(64, 4).cost_report(unit).cost;
  const double c8 = sorters::RadixWordSorter(64, 8).cost_report(unit).cost;
  EXPECT_NEAR(c8, 2 * c4, 1e-9);
}

}  // namespace
}  // namespace absort
