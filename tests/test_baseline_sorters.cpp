// Tests for the nonadaptive baselines: Batcher's odd-even merge network
// (Fig. 4(a)), the bitonic sorter, and the alternative odd-even merge
// network with balanced merging blocks (Fig. 4(b)).

#include <gtest/gtest.h>

#include <memory>

#include "absort/netlist/analyze.hpp"
#include "absort/sorters/alt_oem.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/bitonic.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort::sorters {
namespace {

using Factory = std::unique_ptr<BinarySorter> (*)(std::size_t);

struct Case {
  const char* label;
  Factory make;
};

class BaselineSorterTest : public ::testing::TestWithParam<std::tuple<Case, std::size_t>> {};

TEST_P(BaselineSorterTest, SortsExhaustively) {
  const auto [cs, n] = GetParam();
  const auto sorter = cs.make(n);
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
    const auto in = BitVec::from_bits_of(x, n);
    const auto out = sorter->sort(in);
    EXPECT_TRUE(out.is_sorted_ascending()) << cs.label << " " << in.str() << " -> " << out.str();
    EXPECT_EQ(out.count_ones(), in.count_ones());
  }
}

TEST_P(BaselineSorterTest, NetlistMatchesValueSimulation) {
  const auto [cs, n] = GetParam();
  const auto sorter = cs.make(n);
  const auto circuit = sorter->build_circuit();
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
    const auto in = BitVec::from_bits_of(x, n);
    EXPECT_EQ(circuit.eval(in), sorter->sort(in)) << cs.label << " " << in.str();
  }
}

TEST_P(BaselineSorterTest, RouteIsAPermutationThatSorts) {
  const auto [cs, n] = GetParam();
  const auto sorter = cs.make(n);
  ABSORT_SEEDED_RNG(rng, n);
  for (int rep = 0; rep < 50; ++rep) {
    const auto tags = workload::random_bits(rng, n);
    const auto perm = sorter->route(tags);
    std::vector<bool> seen(n, false);
    for (auto p : perm) {
      ASSERT_LT(p, n);
      EXPECT_FALSE(seen[p]);
      seen[p] = true;
    }
    BitVec routed(n);
    for (std::size_t i = 0; i < n; ++i) routed[i] = tags[perm[i]];
    EXPECT_TRUE(routed.is_sorted_ascending());
  }
}

constexpr Case kBatcher{"batcher_oem", &BatcherOemSorter::make};
constexpr Case kBitonic{"bitonic", &BitonicSorter::make};
constexpr Case kAltOem{"alt_oem", &AltOemSorter::make};

INSTANTIATE_TEST_SUITE_P(
    All, BaselineSorterTest,
    ::testing::Combine(::testing::Values(kBatcher, kBitonic, kAltOem),
                       ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{4},
                                         std::size_t{8}, std::size_t{16})),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).label) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------- structural assertions

TEST(BatcherOem, ComparatorCountMatchesClosedForm) {
  for (std::size_t n : {2u, 4u, 8u, 16u, 64u, 256u, 1024u}) {
    BatcherOemSorter s(n);
    EXPECT_EQ(s.comparator_count(), BatcherOemSorter::expected_comparators(n)) << n;
  }
}

TEST(BatcherOem, DepthMatchesClosedForm) {
  for (std::size_t n : {2u, 4u, 8u, 16u, 64u, 256u}) {
    BatcherOemSorter s(n);
    const auto r = netlist::analyze_unit(s.build_circuit());
    EXPECT_DOUBLE_EQ(r.depth, static_cast<double>(BatcherOemSorter::expected_depth(n))) << n;
  }
}

TEST(Bitonic, ComparatorCountMatchesClosedForm) {
  for (std::size_t n : {2u, 4u, 8u, 16u, 64u, 256u}) {
    BitonicSorter s(n);
    EXPECT_EQ(s.comparator_count(), BitonicSorter::expected_comparators(n)) << n;
  }
}

TEST(Bitonic, DepthMatchesClosedForm) {
  for (std::size_t n : {2u, 4u, 8u, 16u, 64u, 256u}) {
    BitonicSorter s(n);
    const auto r = netlist::analyze_unit(s.build_circuit());
    EXPECT_DOUBLE_EQ(r.depth, static_cast<double>(BitonicSorter::expected_depth(n))) << n;
  }
}

TEST(AltOem, ComparatorCountMatchesRecurrence) {
  for (std::size_t n : {2u, 4u, 8u, 16u, 64u, 256u}) {
    AltOemSorter s(n);
    EXPECT_EQ(s.comparator_count(), AltOemSorter::expected_comparators(n)) << n;
  }
}

TEST(AltOem, RedundantFirstStageStillSorts) {
  AltOemSorter s(16, /*include_redundant_first_stage=*/true);
  for (std::uint64_t x = 0; x < (1u << 16); x += 257) {  // sampled
    const auto in = BitVec::from_bits_of(x, 16);
    EXPECT_TRUE(s.sort(in).is_sorted_ascending());
  }
  // The redundant stage adds exactly n/2 comparators.
  EXPECT_EQ(s.comparator_count(), AltOemSorter::expected_comparators(16) + 8);
}

TEST(Fig1, FourInputSortingNetworkCostAndDepth) {
  // The introduction's Fig. 1 example: a 4-input sorting network with cost 5
  // and depth 3.  Batcher's 4-input OEM network is exactly that network.
  BatcherOemSorter s(4);
  EXPECT_EQ(s.comparator_count(), 5u);
  const auto r = netlist::analyze_unit(s.build_circuit());
  EXPECT_DOUBLE_EQ(r.cost, 5.0);
  EXPECT_DOUBLE_EQ(r.depth, 3.0);
}

// Fig. 4 comparison: for 16 inputs the alternative network trades comparator
// placement but both sort; the alternative costs more (the balanced block is
// "more complex than n/2 - 1 two-input comparators").
TEST(Fig4, BatcherVsAlternativeSixteenInputs) {
  BatcherOemSorter batcher(16);
  AltOemSorter alt(16);
  EXPECT_EQ(batcher.comparator_count(), 63u);
  EXPECT_GT(alt.comparator_count(), batcher.comparator_count());
}

// Larger-size randomized checks (exhaustive is infeasible past ~20 inputs).
class BaselineLargeTest : public ::testing::TestWithParam<Case> {};

TEST_P(BaselineLargeTest, SortsRandomLargeInputs) {
  const auto cs = GetParam();
  ABSORT_SEEDED_RNG(rng, 101);
  for (std::size_t n : {64u, 256u, 1024u}) {
    const auto sorter = cs.make(n);
    for (int rep = 0; rep < 20; ++rep) {
      const auto in = workload::random_bits(rng, n);
      const auto out = sorter->sort(in);
      EXPECT_TRUE(out.is_sorted_ascending());
      EXPECT_EQ(out.count_ones(), in.count_ones());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All, BaselineLargeTest,
                         ::testing::Values(kBatcher, kBitonic, kAltOem),
                         [](const auto& info) { return std::string(info.param.label); });

}  // namespace
}  // namespace absort::sorters
