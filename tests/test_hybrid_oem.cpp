// Tests for the hybrid OEM family (the Section III.A reader exercise).

#include <gtest/gtest.h>

#include "absort/netlist/analyze.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/hybrid_oem.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort::sorters {
namespace {

class HybridOemTest : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(HybridOemTest, SortsExhaustively) {
  const auto [n, b] = GetParam();
  HybridOemSorter s(n, b);
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
    const auto in = BitVec::from_bits_of(x, n);
    const auto out = s.sort(in);
    EXPECT_TRUE(out.is_sorted_ascending()) << "b=" << b << " " << in.str();
    EXPECT_EQ(out.count_ones(), in.count_ones());
  }
}

TEST_P(HybridOemTest, ComparatorCountMatchesClosedForm) {
  const auto [n, b] = GetParam();
  HybridOemSorter s(n, b);
  EXPECT_EQ(s.comparator_count(), HybridOemSorter::expected_comparators(n, b));
}

INSTANTIATE_TEST_SUITE_P(Shapes, HybridOemTest,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{8, 1},
                                           std::pair<std::size_t, std::size_t>{8, 2},
                                           std::pair<std::size_t, std::size_t>{8, 4},
                                           std::pair<std::size_t, std::size_t>{8, 8},
                                           std::pair<std::size_t, std::size_t>{16, 2},
                                           std::pair<std::size_t, std::size_t>{16, 4},
                                           std::pair<std::size_t, std::size_t>{16, 16}));

TEST(HybridOem, EndpointsMatchTheKnownNetworks) {
  // b = n is pure Batcher.
  EXPECT_EQ(HybridOemSorter::expected_comparators(64, 64),
            BatcherOemSorter::expected_comparators(64));
  HybridOemSorter pure(16, 16);
  EXPECT_EQ(pure.comparator_count(), BatcherOemSorter::expected_comparators(16));
}

TEST(HybridOem, NonadaptiveTradeIsMonotone) {
  // The exercise's measured answer: per-level, a balanced merging block
  // costs (m/2) lg m while Batcher's odd-even merge costs (m/2)(lg m - 1)+1,
  // so every shift of work toward the merge side *raises* the nonadaptive
  // comparator count: cost(b) is strictly decreasing in b and pure Batcher
  // (b = n) is optimal.  The Fig. 4(b) distribution only pays off once the
  // adaptive patch-up (Network 1) replaces the balanced blocks with O(n)
  // steering -- which is exactly the paper's point.
  for (std::size_t n : {64u, 1024u, 65536u}) {
    // b = 1 and b = 2 tie exactly (a size-2 balanced block IS a comparator);
    // beyond that the count is strictly decreasing in b.
    EXPECT_EQ(HybridOemSorter::expected_comparators(n, 1),
              HybridOemSorter::expected_comparators(n, 2));
    std::size_t prev = HybridOemSorter::expected_comparators(n, 2);
    for (std::size_t b = 4; b <= n; b *= 2) {
      const auto cost = HybridOemSorter::expected_comparators(n, b);
      EXPECT_LT(cost, prev) << "n=" << n << " b=" << b;
      prev = cost;
    }
    EXPECT_EQ(HybridOemSorter::best_block(n), n) << n;
  }
}

TEST(HybridOem, RandomLargeInputs) {
  ABSORT_SEEDED_RNG(rng, 91);
  for (std::size_t n : {256u, 1024u}) {
    HybridOemSorter s(n, HybridOemSorter::best_block(n));
    for (int rep = 0; rep < 20; ++rep) {
      const auto in = workload::random_bits(rng, n);
      EXPECT_TRUE(s.sort(in).is_sorted_ascending());
    }
  }
}

TEST(HybridOem, NetlistMatchesSimulation) {
  HybridOemSorter s(16, 4);
  const auto c = s.build_circuit();
  for (std::uint64_t x = 0; x < (1u << 16); x += 11) {
    const auto in = BitVec::from_bits_of(x, 16);
    EXPECT_EQ(c.eval(in), s.sort(in));
  }
}

TEST(HybridOem, ValidatesShape) {
  EXPECT_THROW(HybridOemSorter(16, 32), std::invalid_argument);
  EXPECT_THROW(HybridOemSorter(16, 3), std::invalid_argument);
  EXPECT_THROW(HybridOemSorter(12, 2), std::invalid_argument);
}

}  // namespace
}  // namespace absort::sorters
