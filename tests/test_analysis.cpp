// Tests for the analysis layer: closed-form models, Table II, crossovers.

#include <gtest/gtest.h>

#include "absort/analysis/activity.hpp"
#include "absort/analysis/crossover.hpp"
#include "absort/analysis/formulas.hpp"
#include "absort/analysis/tables.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/util/math.hpp"

#include "test_seed.hpp"

namespace absort::analysis {
namespace {

TEST(Formulas, BatcherMatchesConstruction) {
  for (std::size_t n : {4u, 16u, 256u, 4096u}) {
    const auto c = batcher_binary_sorter(n);
    EXPECT_DOUBLE_EQ(c.cost,
                     static_cast<double>(sorters::BatcherOemSorter::expected_comparators(n)));
    EXPECT_DOUBLE_EQ(c.depth,
                     static_cast<double>(sorters::BatcherOemSorter::expected_depth(n)));
  }
}

TEST(Formulas, AdaptiveSortersBeatBatcherCostAsymptotically) {
  // The paper's headline: O(lg^2 n) cost factor over Batcher's binary sorter.
  double prev = 0;
  for (std::size_t e = 8; e <= 20; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    const double ratio = batcher_binary_sorter(n).cost / muxmerge_sorter_paper(n).cost;
    EXPECT_GT(ratio, prev) << n;
    prev = ratio;
  }
  EXPECT_GT(prev, 1.0);  // by n = 2^20 Batcher is strictly costlier
}

TEST(Formulas, FishIsLinearCost) {
  for (std::size_t e = 10; e <= 24; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    const std::size_t k = sorters::FishSorter::default_k(n);
    EXPECT_LE(fish_sorter_paper(n, k).cost / static_cast<double>(n), 18.0) << n;
  }
}

TEST(Formulas, AksConstantsDominateUntilExtremeN) {
  // AKS cost per element ~ 3050 lg n never beats 4 lg n; AKS *depth* beats
  // the mux-merger's lg^2 n only around lg n ~ 6100.
  const double cross = aks_depth_crossover_lg_n();
  EXPECT_GT(cross, 3000.0);
  EXPECT_LT(cross, 7000.0);
  // And at any practical size AKS is worse on both metrics:
  for (std::size_t e = 4; e <= 30; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    EXPECT_GT(aks_model(n).cost, muxmerge_sorter_paper(n).cost) << n;
    EXPECT_GT(aks_model(n).depth, muxmerge_sorter_paper(n).depth) << n;
  }
}

TEST(Formulas, ColumnsortPipeliningShape) {
  // Section III.C: time-multiplexed columnsort is O(lg^4 n) unpipelined and
  // O(lg^2 n) pipelined; pipelining must help by a growing factor.
  double prev = 0;
  for (std::size_t e = 12; e <= 24; e += 4) {
    const std::size_t n = std::size_t{1} << e;
    const double up = columnsort_timemux(n, false).time;
    const double pp = columnsort_timemux(n, true).time;
    EXPECT_GT(up / pp, prev) << n;
    prev = up / pp;
  }
}

TEST(Formulas, ColumnsortWithoutTimeMultiplexingCostsNLgSquared) {
  // "a practical binary columnsort network ... would require ... a bit-level
  // cost of O(n lg^2 n).  In contrast, the mux-merger ... only O(n lg n)."
  double prev = 0;
  for (std::size_t e = 14; e <= 26; e += 4) {
    const std::size_t n = std::size_t{1} << e;
    const double ratio = columnsort_network(n).cost / muxmerge_sorter_paper(n).cost;
    EXPECT_GT(ratio, prev) << n;
    prev = ratio;
  }
}

TEST(Table2, HasTheSixRowsAndThePaperWinsOnCost) {
  // "the network given in this paper has the smallest order of cost
  // complexity": order-of-growth, so the fish-based row wins from some size
  // onward (its ~17x constant makes the crossover vs Jan-Oruc's n lg^2 n
  // land around lg n ~ 20).
  const std::size_t n = std::size_t{1} << 26;
  const auto rows = table2(n);
  ASSERT_EQ(rows.size(), 6u);
  double best = 1e300;
  std::size_t best_idx = 99;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].model.cost < best) {
      best = rows[i].model.cost;
      best_idx = i;
    }
  }
  EXPECT_EQ(rows[best_idx].construction, "This paper (fish sorters)");
  // And the crossover against Jan-Oruc exists and is moderate:
  const auto cross = first_crossover([](std::size_t m) { return this_paper_permuter_fish(m).cost; },
                                     [](std::size_t m) { return jan_oruc_permuter(m).cost; }, 10,
                                     40);
  EXPECT_NE(cross, 0u);
  EXPECT_LE(cross, std::size_t{1} << 30);
}

TEST(Table2, RendersAllRows) {
  const auto rows = table2(1 << 12);
  const auto text = render_table2(rows, 1 << 12);
  for (const auto& r : rows) {
    EXPECT_NE(text.find(r.construction), std::string::npos) << r.construction;
  }
}

TEST(Activity, ComparatorActivityMatchesHandCount) {
  // One comparator: active iff inputs are (1, 0) -- a quarter of uniform
  // random pairs.
  netlist::Circuit c;
  const auto a = c.input();
  const auto b = c.input();
  const auto [lo, hi] = c.comparator(a, b);
  c.mark_output(lo);
  c.mark_output(hi);
  ABSORT_SEEDED_RNG(rng, 1);
  const auto r = measure_activity(c, rng, 4000);
  const double frac =
      r.active[static_cast<std::size_t>(netlist::Kind::Comparator)] / 4000.0;
  EXPECT_NEAR(frac, 0.25, 0.03);
  EXPECT_NEAR(r.steering_activity(), 0.25, 0.03);
}

TEST(Activity, AdaptiveNetworksSteerMoreThanBatcher) {
  // The adaptive networks route blocks through always-consulted switches;
  // Batcher's comparators exchange only on (1,0) inputs.  The measured
  // steering activity must reflect that (see bench_ablation A4).
  ABSORT_SEEDED_RNG(rng, 2);
  const auto batcher =
      measure_activity(sorters::BatcherOemSorter(256).build_circuit(), rng, 50);
  const auto adaptive =
      measure_activity(sorters::MuxMergeSorter(256).build_circuit(), rng, 50);
  EXPECT_LT(batcher.steering_activity(), adaptive.steering_activity());
}

TEST(Crossover, SweepAndFirstCrossover) {
  const auto a = [](std::size_t n) { return static_cast<double>(n) * 2; };
  const auto b = [](std::size_t n) { return static_cast<double>(n) * lg(double(n)); };
  const auto pts = ratio_sweep(a, b, 2, 6);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_EQ(pts.front().n, 4u);
  EXPECT_DOUBLE_EQ(pts.front().ratio, 1.0);  // 2n = n lg n at n=4
  // a < b first at n = 8 (2n < 3n).
  EXPECT_EQ(first_crossover(a, b, 2, 6), 8u);
  EXPECT_EQ(first_crossover(b, a, 4, 6), 0u);  // never
}

}  // namespace
}  // namespace absort::analysis
