// Tests for the paper's sequence classes (Definitions 1-5) and for
// Theorems 1 and 2 as executable properties.

#include <gtest/gtest.h>

#include <set>

#include "absort/seqclass/seqclass.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort {
namespace {

using namespace seqclass;

TEST(ClassA, PaperExamples) {
  // "0000/1010, 00/1010/11, 101010/11, 00/0101/11, 11111111 are all elements
  // of A_8."
  EXPECT_TRUE(in_class_a(BitVec::parse("00001010")));
  EXPECT_TRUE(in_class_a(BitVec::parse("00101011")));
  EXPECT_TRUE(in_class_a(BitVec::parse("10101011")));
  EXPECT_TRUE(in_class_a(BitVec::parse("00010111")));
  EXPECT_TRUE(in_class_a(BitVec::parse("11111111")));
}

TEST(ClassA, NonMembers) {
  EXPECT_FALSE(in_class_a(BitVec::parse("01000010")));  // 01-pair, clean run, 10-pair
  EXPECT_FALSE(in_class_a(BitVec::parse("01001011")));
  EXPECT_FALSE(in_class_a(BitVec::parse("110")));  // odd length
  // but a clean pair *between* runs is fine: (00)(10)(00)(00) is a member
  EXPECT_TRUE(in_class_a(BitVec::parse("00100000")));
}

TEST(ClassA, SortedSequencesAreMembers) {
  // Remark after Definition 1: any sorted binary sequence belongs to A_n.
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    for (std::size_t ones = 0; ones <= n; ++ones) {
      EXPECT_TRUE(in_class_a(BitVec::sorted_with_ones(n, ones)))
          << "n=" << n << " ones=" << ones;
    }
  }
}

TEST(ClassA, EnumerationMatchesPredicateExhaustively) {
  // For n = 8: enumerate all 2^8 sequences, check the predicate against
  // membership in the enumerated set.
  const auto members = enumerate_class_a(8);
  std::set<std::string> set;
  for (const auto& m : members) set.insert(m.str());
  for (std::uint64_t x = 0; x < 256; ++x) {
    const auto v = BitVec::from_bits_of(x, 8);
    EXPECT_EQ(in_class_a(v), set.count(v.str()) == 1) << v.str();
  }
}

TEST(ClassA, EnumerationMatchesClosedForm) {
  // |A_n| = n^2 - n + 2 exactly (see class_a_count's derivation).
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    EXPECT_EQ(enumerate_class_a(n).size(), class_a_count(n)) << n;
  }
  EXPECT_EQ(class_a_count(2), 4u);    // all 2-bit strings
  EXPECT_EQ(class_a_count(4), 14u);   // all but (01)(10) and (10)(01)
  EXPECT_THROW((void)class_a_count(7), std::invalid_argument);
}

TEST(ClassA, LinearCheckerMatchesReferenceExhaustively) {
  // The O(n) scanner and the O(n^2) split-search must agree on every
  // sequence of length up to 16 (and on odd lengths).
  for (std::size_t n : {2u, 4u, 6u, 8u, 10u, 12u, 16u}) {
    for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
      const auto v = BitVec::from_bits_of(x, n);
      ASSERT_EQ(in_class_a_linear(v), in_class_a(v)) << v.str();
    }
  }
  EXPECT_FALSE(in_class_a_linear(BitVec::parse("110")));
}

TEST(ClassA, LinearCheckerOnLargeMembers) {
  ABSORT_SEEDED_RNG(rng, 77);
  for (int rep = 0; rep < 200; ++rep) {
    EXPECT_TRUE(in_class_a_linear(workload::random_class_a(rng, 1024)));
    // A random sequence of that length is (overwhelmingly) not a member.
    EXPECT_FALSE(in_class_a_linear(workload::random_bits(rng, 1024)));
  }
}

TEST(CleanSorted, Basic) {
  EXPECT_TRUE(is_clean_sorted(BitVec::parse("0000")));
  EXPECT_TRUE(is_clean_sorted(BitVec::parse("111")));
  EXPECT_FALSE(is_clean_sorted(BitVec::parse("0001")));
  EXPECT_TRUE(is_clean_sorted(BitVec()));
}

TEST(Bisorted, Basic) {
  EXPECT_TRUE(is_bisorted(BitVec::parse("00010001")));  // Example 3
  EXPECT_TRUE(is_bisorted(BitVec::parse("0101")));
  EXPECT_FALSE(is_bisorted(BitVec::parse("0110")));
  EXPECT_FALSE(is_bisorted(BitVec::parse("1010")));
  // halves of size 1 are trivially sorted
  EXPECT_TRUE(is_bisorted(BitVec::parse("10")));
}

TEST(KSorted, Definition4Example) {
  // "for k = 4, 1111/0001/0011/0111 is a 4-sorted sequence"
  EXPECT_TRUE(is_k_sorted(BitVec::parse("1111000100110111"), 4));
  EXPECT_FALSE(is_k_sorted(BitVec::parse("1111001000110111"), 4));
}

TEST(CleanKSorted, Definition5Example) {
  // "for k = 4, 1111/0000/0000/1111 is a clean 4-sorted sequence"
  EXPECT_TRUE(is_clean_k_sorted(BitVec::parse("1111000000001111"), 4));
  EXPECT_FALSE(is_clean_k_sorted(BitVec::parse("1111000100110111"), 4));
}

TEST(Enumerators, BisortedCount) {
  EXPECT_EQ(enumerate_bisorted(8).size(), 25u);  // (4+1)^2
  for (const auto& v : enumerate_bisorted(8)) EXPECT_TRUE(is_bisorted(v));
}

TEST(Enumerators, KSortedCount) {
  EXPECT_EQ(enumerate_k_sorted(8, 4).size(), 81u);  // (2+1)^4
  for (const auto& v : enumerate_k_sorted(8, 4)) EXPECT_TRUE(is_k_sorted(v, 4));
}

// --------------------------------------------------------------------------
// Theorem 1: the shuffle of the concatenation of two sorted halves is in A_n.
// Exhaustive over all pairs of sorted halves for n up to 64.
// --------------------------------------------------------------------------

class Theorem1Test : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Theorem1Test, ShuffleOfSortedHalvesIsClassA) {
  const std::size_t n = GetParam();
  const std::size_t h = n / 2;
  for (std::size_t u = 0; u <= h; ++u) {
    for (std::size_t l = 0; l <= h; ++l) {
      const auto x = theorem1_shuffle(BitVec::sorted_with_ones(h, u),
                                      BitVec::sorted_with_ones(h, l));
      EXPECT_TRUE(in_class_a(x)) << "n=" << n << " u=" << u << " l=" << l << " -> " << x.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Theorem1Test, ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(Theorem1, PaperExample1) {
  // Xu = 1111, XL = 0001 -> 10101011 in A_8.
  const auto x = theorem1_shuffle(BitVec::parse("1111"), BitVec::parse("0001"));
  EXPECT_EQ(x.str(2), "10/10/10/11");
  EXPECT_TRUE(in_class_a(x));
}

// --------------------------------------------------------------------------
// Theorem 2: after the mirrored comparator stage, one half is clean and the
// other half is in A_{n/2}.  Exhaustive over every member of A_n.
// --------------------------------------------------------------------------

class Theorem2Test : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Theorem2Test, OneHalfCleanOtherClassA) {
  const std::size_t n = GetParam();
  for (const auto& z : enumerate_class_a(n)) {
    const auto y = balanced_first_stage(z);
    const auto yu = y.slice(0, n / 2);
    const auto yl = y.slice(n / 2, n / 2);
    const bool ok = (is_clean_sorted(yu) && in_class_a(yl)) ||
                    (is_clean_sorted(yl) && in_class_a(yu));
    EXPECT_TRUE(ok) << "z=" << z.str() << " y=" << y.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Theorem2Test, ::testing::Values(4, 8, 16, 32, 64));

TEST(Theorem2, PaperExample2) {
  // Z = 101010/11 -> Yu = 1000, Yl = 1111.
  const auto y = balanced_first_stage(BitVec::parse("10101011"));
  EXPECT_EQ(y.slice(0, 4).str(), "1000");
  EXPECT_EQ(y.slice(4, 4).str(), "1111");
}

// Conservation: the mirrored stage permutes values (same multiset).
TEST(Theorem2, StagePreservesOnesCount) {
  ABSORT_SEEDED_RNG(rng, 23);
  for (int i = 0; i < 200; ++i) {
    const auto v = workload::random_bits(rng, 32);
    EXPECT_EQ(balanced_first_stage(v).count_ones(), v.count_ones());
  }
}

// The theorem's precondition matters: the generator must produce members.
TEST(Workload, RandomClassAIsMember) {
  ABSORT_SEEDED_RNG(rng, 29);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(in_class_a(workload::random_class_a(rng, 32)));
  }
}

}  // namespace
}  // namespace absort
