// Tests for Network 1, the adaptive prefix binary sorter (Fig. 5):
// exhaustive sorting, netlist == value simulation, routing, and the
// structural cost assertions (experiment E-F5).

#include <gtest/gtest.h>

#include "absort/netlist/analyze.hpp"
#include "absort/sorters/prefix_sorter.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort::sorters {
namespace {

class PrefixSorterExhaustiveTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrefixSorterExhaustiveTest, SortsAllInputs) {
  const std::size_t n = GetParam();
  PrefixSorter s(n);
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
    const auto in = BitVec::from_bits_of(x, n);
    const auto out = s.sort(in);
    EXPECT_TRUE(out.is_sorted_ascending()) << in.str() << " -> " << out.str();
    EXPECT_EQ(out.count_ones(), in.count_ones());
  }
}

TEST_P(PrefixSorterExhaustiveTest, NetlistMatchesValueSimulation) {
  const std::size_t n = GetParam();
  PrefixSorter s(n);
  const auto circuit = s.build_circuit();
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
    const auto in = BitVec::from_bits_of(x, n);
    EXPECT_EQ(circuit.eval(in), s.sort(in)) << in.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrefixSorterExhaustiveTest, ::testing::Values(2, 4, 8, 16));

TEST(PrefixSorter, SortsRandomLargeInputsValueLevel) {
  ABSORT_SEEDED_RNG(rng, 31);
  for (std::size_t n : {32u, 128u, 1024u, 4096u}) {
    PrefixSorter s(n);
    for (int rep = 0; rep < 25; ++rep) {
      const auto in = workload::random_bits(rng, n);
      const auto out = s.sort(in);
      EXPECT_TRUE(out.is_sorted_ascending());
      EXPECT_EQ(out.count_ones(), in.count_ones());
    }
  }
}

TEST(PrefixSorter, NetlistMatchesValueSimulationRandomLarge) {
  ABSORT_SEEDED_RNG(rng, 37);
  for (std::size_t n : {32u, 64u, 128u}) {
    PrefixSorter s(n);
    const auto circuit = s.build_circuit();
    for (int rep = 0; rep < 50; ++rep) {
      const auto in = workload::random_bits(rng, n);
      EXPECT_EQ(circuit.eval(in), s.sort(in));
    }
  }
}

TEST(PrefixSorter, SortsExtremeOnesCounts) {
  // Every exact ones-count at one size: exercises all select-chain paths.
  const std::size_t n = 64;
  PrefixSorter s(n);
  ABSORT_SEEDED_RNG(rng, 41);
  for (std::size_t ones = 0; ones <= n; ++ones) {
    const auto in = workload::random_bits_with_ones(rng, n, ones);
    const auto out = s.sort(in);
    EXPECT_TRUE(out.is_sorted_ascending()) << "ones=" << ones;
    EXPECT_EQ(out.count_ones(), ones);
  }
}

TEST(PrefixSorter, RouteIsSortingPermutation) {
  const std::size_t n = 32;
  PrefixSorter s(n);
  ABSORT_SEEDED_RNG(rng, 43);
  for (int rep = 0; rep < 100; ++rep) {
    const auto tags = workload::random_bits(rng, n);
    const auto perm = s.route(tags);
    std::vector<bool> seen(n, false);
    for (auto p : perm) {
      ASSERT_LT(p, n);
      EXPECT_FALSE(seen[p]);
      seen[p] = true;
    }
    // Routing keeps 0-tagged packets ahead of 1-tagged packets.
    BitVec routed(n);
    for (std::size_t i = 0; i < n; ++i) routed[i] = tags[perm[i]];
    EXPECT_TRUE(routed.is_sorted_ascending());
  }
}

// ------------------------------------------------- structural (E-F5)

TEST(PrefixSorter, UnitCostMatchesConstructionRecurrence) {
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u, 256u}) {
    PrefixSorter s(n);
    const auto r = netlist::analyze_unit(s.build_circuit());
    EXPECT_DOUBLE_EQ(r.cost, PrefixSorter::expected_unit_cost(n)) << n;
  }
}

TEST(PrefixSorter, CostIsWithinConstantOfPaperClosedForm) {
  // Paper: 3 n lg n + O(lg^2 n).  Our construction adds the adder/select
  // logic (O(n) total), so cost / (n lg n) must approach 3 from above and
  // stay below 3 + o(1) with a small slack.
  for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
    const double ratio =
        PrefixSorter::expected_unit_cost(n) / (static_cast<double>(n) * lg(double(n)));
    EXPECT_GE(ratio, 3.0) << n;
    EXPECT_LE(ratio, 3.0 + 24.0 / lg(static_cast<double>(n))) << n;  // 3 + O(1/lg n)
  }
}

TEST(PrefixSorter, DepthWithinPaperBound) {
  for (std::size_t n : {4u, 16u, 64u, 256u}) {
    PrefixSorter s(n);
    const auto r = netlist::analyze_unit(s.build_circuit());
    EXPECT_LE(r.depth, PrefixSorter::expected_unit_depth(n) + 1) << n;
    EXPECT_GE(r.depth, static_cast<double>(ilog2(n))) << n;
  }
}

TEST(PrefixSorter, CostBeatsBatcherByGrowingFactor) {
  // The headline claim: O(lg^2 n) cost advantage over Batcher's binary
  // sorters -- the ratio Batcher/prefix must grow with n.
  double prev = 0;
  for (std::size_t n : {64u, 256u, 1024u, 4096u, 16384u}) {
    const double batcher = static_cast<double>(n) * lg(double(n)) * lg(double(n)) / 4.0;
    const double ratio = batcher / PrefixSorter::expected_unit_cost(n);
    EXPECT_GT(ratio, prev);
    prev = ratio;
  }
}

TEST(PrefixSorter, RippleAdderVariantSortsAndMatchesSimulation) {
  // The ablation variant must be functionally indistinguishable.
  for (std::size_t n : {4u, 8u, 16u}) {
    PrefixSorter s(n, PrefixSorter::AdderKind::Ripple);
    const auto circuit = s.build_circuit();
    for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
      const auto in = BitVec::from_bits_of(x, n);
      EXPECT_TRUE(circuit.eval(in).is_sorted_ascending()) << in.str();
      EXPECT_EQ(circuit.eval(in), s.sort(in)) << in.str();
    }
  }
}

TEST(PrefixSorter, RippleVariantIsCheaper) {
  for (std::size_t n : {64u, 1024u}) {
    const auto ks = netlist::analyze_unit(
        PrefixSorter(n, PrefixSorter::AdderKind::KoggeStone).build_circuit());
    const auto rp =
        netlist::analyze_unit(PrefixSorter(n, PrefixSorter::AdderKind::Ripple).build_circuit());
    EXPECT_LT(rp.cost, ks.cost) << n;
  }
}

TEST(PrefixSorter, RejectsBadSizes) {
  EXPECT_THROW(PrefixSorter(0), std::invalid_argument);
  EXPECT_THROW(PrefixSorter(1), std::invalid_argument);
  EXPECT_THROW(PrefixSorter(12), std::invalid_argument);
}

}  // namespace
}  // namespace absort::sorters
