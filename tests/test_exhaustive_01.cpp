// Exhaustive 0-1 verification sweep (the zero-one principle, Section I):
// every registered sorter is driven over ALL 2^n binary inputs through the
// bit-sliced batch engine and checked bit-for-bit against the per-vector
// netlist evaluation (Circuit::eval for combinational sorters, the value
// face for model B) and against the unique correct 0-1 answer
// sorted_with_ones(n, popcount).
//
// Tier-1 covers every n <= 12 a sorter accepts; the n = 16 sweep (65536
// inputs per sorter) runs behind the `slow` ctest label, which sets
// ABSORT_SLOW_TESTS=1 (without it the test skips in milliseconds).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "absort/netlist/circuit.hpp"
#include "absort/sorters/registry.hpp"
#include "absort/util/bitvec.hpp"

namespace absort {
namespace {

/// All 2^n inputs, in numeric order (little-endian bit expansion).
std::vector<BitVec> all_inputs(std::size_t n) {
  std::vector<BitVec> batch;
  batch.reserve(std::size_t{1} << n);
  for (std::uint64_t v = 0; v < (std::uint64_t{1} << n); ++v) {
    batch.push_back(BitVec::from_bits_of(v, n));
  }
  return batch;
}

/// Runs the full sweep for one sorter at one size; returns false (skipping)
/// when the sorter rejects this n.
bool sweep(const sorters::RegistryEntry& e, std::size_t n) {
  std::unique_ptr<sorters::BinarySorter> sorter;
  try {
    sorter = e.factory(n);
  } catch (const std::exception&) {
    return false;  // size not supported by this construction
  }
  SCOPED_TRACE(::testing::Message() << e.name << " n=" << n);

  const auto batch = all_inputs(n);
  const auto engine = sorter->make_batch_sorter();
  const auto out = engine->run(batch);
  if (out.size() != batch.size()) {
    ADD_FAILURE() << e.name << " n=" << n << ": engine returned " << out.size() << " of "
                  << batch.size() << " outputs";
    return true;
  }

  // Combinational sorters are additionally checked against the reference
  // netlist walk -- the engine must be bit-identical to Circuit::eval.
  const bool comb = sorter->is_combinational();
  netlist::Circuit circuit;
  if (comb) circuit = sorter->build_circuit();

  for (std::size_t v = 0; v < batch.size(); ++v) {
    const auto expect = BitVec::sorted_with_ones(n, batch[v].count_ones());
    if (out[v] != expect) {
      ADD_FAILURE() << e.name << " n=" << n << ": engine wrong on input " << v << " ("
                    << batch[v].str() << " -> " << out[v].str() << ", want " << expect.str()
                    << ")";
      return true;  // one detailed failure is enough
    }
    const auto ref = comb ? circuit.eval(batch[v]) : sorter->sort(batch[v]);
    if (out[v] != ref) {
      ADD_FAILURE() << e.name << " n=" << n << ": engine disagrees with "
                    << (comb ? "Circuit::eval" : "sort()") << " on input " << v;
      return true;
    }
  }
  return true;
}

TEST(Exhaustive01, EverySorterEveryInputUpToN12) {
  for (const auto& e : sorters::registry()) {
    std::size_t sizes_covered = 0;
    for (std::size_t n = 2; n <= 12; ++n) {
      if (sweep(e, n)) ++sizes_covered;
      if (::testing::Test::HasFailure()) return;
    }
    // Every registered construction must accept at least one size in range;
    // a registry entry this sweep cannot reach would be silent dead weight.
    EXPECT_GE(sizes_covered, 1u) << e.name;
  }
}

// Regression guard for the sweep's coverage: the number of sorters the
// tier-1 sweep actually reaches (>= 1 accepted size in [2, 12]) must equal
// registry().size().  A future registry entry whose construction rejects
// every n <= 12 would silently fall out of the sweep above; this makes that
// a failure with the entry's name attached.
TEST(Exhaustive01, SweepCoversExactlyTheRegistry) {
  std::size_t swept = 0;
  for (const auto& e : sorters::registry()) {
    bool reachable = false;
    for (std::size_t n = 2; n <= 12 && !reachable; ++n) {
      try {
        reachable = e.factory(n) != nullptr;
      } catch (const std::exception&) {
      }
    }
    EXPECT_TRUE(reachable) << e.name << " accepts no size in [2, 12]";
    if (reachable) ++swept;
  }
  EXPECT_EQ(swept, sorters::registry().size());
}

TEST(Exhaustive01, EverySorterEveryInputN16Slow) {
  if (const char* env = std::getenv("ABSORT_SLOW_TESTS"); !env || env[0] == '0') {
    GTEST_SKIP() << "set ABSORT_SLOW_TESTS=1 (or run `ctest -L slow`) for the 2^16 sweep";
  }
  for (const auto& e : sorters::registry()) {
    sweep(e, 16);
    if (::testing::Test::HasFailure()) return;
  }
}

}  // namespace
}  // namespace absort
