// Tests for the clocked-hardware realization of Network 3 (model B as a real
// sequential circuit): the hardware must agree with the value-level fish
// sorter and with the functional spec, and its datapath cost must stay O(n).

#include <gtest/gtest.h>

#include "absort/netlist/analyze.hpp"
#include "absort/sim/fish_hardware.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort::sim {
namespace {

class FishHardwareExhaustiveTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(FishHardwareExhaustiveTest, SortsAllInputs) {
  const auto [n, k] = GetParam();
  FishHardware hw(n, k);
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
    const auto in = BitVec::from_bits_of(x, n);
    const auto out = hw.sort(in);
    EXPECT_TRUE(out.is_sorted_ascending())
        << "n=" << n << " k=" << k << " " << in.str() << " -> " << out.str();
    EXPECT_EQ(out.count_ones(), in.count_ones());
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FishHardwareExhaustiveTest,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{4, 2},
                                           std::pair<std::size_t, std::size_t>{8, 2},
                                           std::pair<std::size_t, std::size_t>{8, 4},
                                           std::pair<std::size_t, std::size_t>{16, 4}));

TEST(FishHardware, AgreesWithValueLevelFishSorter) {
  ABSORT_SEEDED_RNG(rng, 19);
  for (auto [n, k] : {std::pair<std::size_t, std::size_t>{32, 4},
                      std::pair<std::size_t, std::size_t>{64, 8},
                      std::pair<std::size_t, std::size_t>{128, 4}}) {
    FishHardware hw(n, k);
    sorters::FishSorter model(n, k);
    for (int rep = 0; rep < 20; ++rep) {
      const auto in = workload::random_bits(rng, n);
      EXPECT_EQ(hw.sort(in), model.sort(in)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(FishHardware, CycleCountMatchesSchedule) {
  FishHardware hw(64, 8);
  EXPECT_EQ(hw.cycles_per_sort(), 8u + 3u * 8u + 1u);  // k + lg(n/k)*k + 1
  (void)hw.sort(BitVec::zeros(64));
  EXPECT_EQ(hw.machine().cycles(), hw.cycles_per_sort());
}

TEST(FishHardware, RepeatedSortsAreIndependent) {
  FishHardware hw(32, 4);
  ABSORT_SEEDED_RNG(rng, 21);
  for (int rep = 0; rep < 10; ++rep) {
    const auto in = workload::random_bits(rng, 32);
    EXPECT_EQ(hw.sort(in), BitVec::sorted_with_ones(32, in.count_ones()));
  }
}

TEST(FishHardware, DatapathCostStaysLinearAtDefaultK) {
  // The hardware adds register-hold muxes and rank/write-enable control on
  // top of the paper's abstract datapath; the total must still be O(n).
  const auto unit = netlist::CostModel::paper_unit();
  double prev_per_n = 1e9;
  for (std::size_t n : {256u, 1024u, 4096u}) {
    FishHardware hw(n, sorters::FishSorter::default_k(n));
    const double per_n = hw.datapath_report(unit).cost / static_cast<double>(n);
    EXPECT_LT(per_n, 30.0) << n;  // ~2x the abstract 15n, still linear
    EXPECT_LT(per_n, prev_per_n * 1.05) << n;
    prev_per_n = per_n;
  }
}

TEST(FishHardware, HardwareOverheadIsBounded) {
  const auto unit = netlist::CostModel::paper_unit();
  const std::size_t n = 1024, k = 16;
  FishHardware hw(n, k);
  sorters::FishSorter model(n, k);
  const double hw_cost = hw.datapath_report(unit).cost;
  const double abstract = model.cost_report(unit).cost;
  EXPECT_GT(hw_cost, abstract);        // holds registers, enables, rank units
  EXPECT_LT(hw_cost, 2.5 * abstract);  // ... but only a constant factor more
}

TEST(FishHardware, OverlappedScheduleSortsIdentically) {
  ABSORT_SEEDED_RNG(rng, 23);
  for (auto [n, k] : {std::pair<std::size_t, std::size_t>{16, 4},
                      std::pair<std::size_t, std::size_t>{64, 8}}) {
    FishHardware hw(n, k);
    for (int rep = 0; rep < 20; ++rep) {
      const auto in = workload::random_bits(rng, n);
      const auto slow = hw.sort(in);
      const auto fast = hw.sort_overlapped(in);
      EXPECT_EQ(fast, slow) << "n=" << n << " k=" << k;
      EXPECT_TRUE(fast.is_sorted_ascending());
    }
  }
}

TEST(FishHardware, OverlappedScheduleExhaustive) {
  FishHardware hw(16, 4);
  for (std::uint64_t x = 0; x < (1u << 16); ++x) {
    const auto in = BitVec::from_bits_of(x, 16);
    const auto out = hw.sort_overlapped(in);
    ASSERT_TRUE(out.is_sorted_ascending()) << in.str();
    ASSERT_EQ(out.count_ones(), in.count_ones());
  }
}

TEST(FishHardware, OverlappedScheduleIsShorter) {
  FishHardware hw(256, 8);
  EXPECT_LT(hw.cycles_per_sort_overlapped(), hw.cycles_per_sort());
  EXPECT_EQ(hw.cycles_per_sort_overlapped(), 17u);  // 2k + 1
  (void)hw.sort_overlapped(BitVec::zeros(256));
  EXPECT_EQ(hw.machine().cycles(), 17u);
}

TEST(FishHardware, StreamSortsEveryFrame) {
  ABSORT_SEEDED_RNG(rng, 29);
  for (auto [n, k] : {std::pair<std::size_t, std::size_t>{16, 4},
                      std::pair<std::size_t, std::size_t>{32, 4},
                      std::pair<std::size_t, std::size_t>{64, 8}}) {
    FishHardware hw(n, k);
    std::vector<BitVec> frames;
    for (int f = 0; f < 7; ++f) frames.push_back(workload::random_bits(rng, n));
    const auto results = hw.sort_stream(frames);
    ASSERT_EQ(results.size(), frames.size());
    for (std::size_t f = 0; f < frames.size(); ++f) {
      EXPECT_EQ(results[f], BitVec::sorted_with_ones(n, frames[f].count_ones()))
          << "n=" << n << " k=" << k << " frame " << f;
    }
  }
}

TEST(FishHardware, StreamThroughputIsOneFramePerK) {
  FishHardware hw(64, 8);
  std::vector<BitVec> frames(10, BitVec::zeros(64));
  (void)hw.sort_stream(frames);
  EXPECT_EQ(hw.machine().cycles(), hw.cycles_per_stream(10));
  // Steady state beats isolated overlapped sorts by ~2x.
  EXPECT_LT(hw.cycles_per_stream(10), 10 * hw.cycles_per_sort_overlapped());
}

TEST(FishHardware, StreamHandlesEdgeCases) {
  FishHardware hw(16, 4);
  EXPECT_TRUE(hw.sort_stream({}).empty());
  const auto one = hw.sort_stream({BitVec::parse("1010010111110000")});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_TRUE(one[0].is_sorted_ascending());
  EXPECT_THROW((void)hw.sort_stream({BitVec::zeros(8)}), std::invalid_argument);
}

TEST(FishHardware, StreamMatchesIsolatedSorts) {
  FishHardware hw(32, 4);
  ABSORT_SEEDED_RNG(rng, 31);
  std::vector<BitVec> frames;
  for (int f = 0; f < 5; ++f) frames.push_back(workload::random_bits(rng, 32));
  const auto streamed = hw.sort_stream(frames);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    EXPECT_EQ(streamed[f], hw.sort(frames[f])) << f;
  }
}

TEST(FishHardware, RejectsBadShapes) {
  EXPECT_THROW(FishHardware(16, 16), std::invalid_argument);
  EXPECT_THROW(FishHardware(12, 2), std::invalid_argument);
  EXPECT_THROW(FishHardware(16, 3), std::invalid_argument);
}

}  // namespace
}  // namespace absort::sim
