// Tests for the building blocks of Section II: swappers (Fig. 2),
// multiplexers/demultiplexers (Fig. 3), the prefix adder, and the balanced
// merging block.  Structural assertions check the paper's unit cost/depth.

#include <gtest/gtest.h>

#include "absort/blocks/balanced_merger.hpp"
#include "absort/blocks/comparator_stage.hpp"
#include "absort/blocks/mux.hpp"
#include "absort/blocks/prefix_adder.hpp"
#include "absort/blocks/swapper.hpp"
#include "absort/netlist/analyze.hpp"
#include "absort/seqclass/seqclass.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort {
namespace {

using netlist::Circuit;
using netlist::WireId;
using netlist::analyze_unit;

// ---------------------------------------------------------------- swappers

class TwoWaySwapperTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TwoWaySwapperTest, SwapsHalvesUnderControl) {
  const std::size_t n = GetParam();
  Circuit c;
  const auto in = c.inputs(n);
  const auto ctrl = c.input();
  const auto out = blocks::two_way_swapper(c, in, ctrl);
  c.mark_outputs(out);

  ABSORT_SEEDED_RNG(rng, 5);
  for (int rep = 0; rep < 20; ++rep) {
    auto data = workload::random_bits(rng, n);
    auto with0 = data;
    with0.push_back(0);
    auto with1 = data;
    with1.push_back(1);
    EXPECT_EQ(c.eval(with0), data);
    const auto swapped = data.slice(n / 2, n / 2).concat(data.slice(0, n / 2));
    EXPECT_EQ(c.eval(with1), swapped);
  }
}

TEST_P(TwoWaySwapperTest, CostIsHalfNDepthOne) {
  const std::size_t n = GetParam();
  Circuit c;
  const auto in = c.inputs(n);
  const auto ctrl = c.input();
  c.mark_outputs(blocks::two_way_swapper(c, in, ctrl));
  const auto r = analyze_unit(c);
  EXPECT_DOUBLE_EQ(r.cost, static_cast<double>(n) / 2);  // Fig. 2(a): cost n/2
  EXPECT_DOUBLE_EQ(r.depth, 1.0);                        // depth 1
}

INSTANTIATE_TEST_SUITE_P(Sizes, TwoWaySwapperTest, ::testing::Values(2, 4, 8, 16, 64));

class FourWaySwapperTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FourWaySwapperTest, AppliesQuarterPermutations) {
  const std::size_t n = GetParam();
  // Use the IN-SWAP table and verify every select value applies its pattern.
  const auto pats = blocks::in_swap_patterns();
  Circuit c;
  const auto in = c.inputs(n);
  const auto s0 = c.input();
  const auto s1 = c.input();
  c.mark_outputs(blocks::four_way_swapper(c, in, s0, s1, pats));

  ABSORT_SEEDED_RNG(rng, 6);
  const auto data = workload::random_bits(rng, n);
  const std::size_t q = n / 4;
  for (std::size_t s = 0; s < 4; ++s) {
    auto input = data;
    input.push_back(static_cast<Bit>(s & 1));         // s0
    input.push_back(static_cast<Bit>((s >> 1) & 1));  // s1
    const auto out = c.eval(input);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(out.slice(j * q, q), data.slice(pats[s][j] * q, q))
          << "n=" << n << " s=" << s << " quarter=" << j;
    }
  }
}

TEST_P(FourWaySwapperTest, CostIsNDepthOne) {
  const std::size_t n = GetParam();
  Circuit c;
  const auto in = c.inputs(n);
  const auto s0 = c.input();
  const auto s1 = c.input();
  c.mark_outputs(blocks::four_way_swapper(c, in, s0, s1, blocks::out_swap_patterns()));
  const auto r = analyze_unit(c);
  EXPECT_DOUBLE_EQ(r.cost, static_cast<double>(n));  // Fig. 2(b): cost n
  EXPECT_DOUBLE_EQ(r.depth, 1.0);
  EXPECT_EQ(r.inventory[static_cast<std::size_t>(netlist::Kind::Switch4x4)], n / 4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FourWaySwapperTest, ::testing::Values(4, 8, 16, 64));

TEST(KSwap, SplitsCleanHalvesUpAndRestDown) {
  // Feed a 4-sorted sequence of 16 bits; control each block swapper by its
  // middle bit as the fish sorter does, and check Theorem 4's conclusion.
  const std::size_t n = 16, k = 4;
  Circuit c;
  const auto in = c.inputs(n);
  std::vector<WireId> ctrls;
  for (std::size_t b = 0; b < k; ++b) ctrls.push_back(in[b * (n / k) + n / (2 * k)]);
  c.mark_outputs(blocks::k_swap(c, in, ctrls));

  ABSORT_SEEDED_RNG(rng, 8);
  for (int rep = 0; rep < 100; ++rep) {
    const auto v = workload::random_k_sorted(rng, n, k);
    const auto out = c.eval(v);
    const auto upper = out.slice(0, n / 2);
    const auto lower = out.slice(n / 2, n / 2);
    EXPECT_TRUE(seqclass::is_clean_k_sorted(upper, k)) << v.str(4) << " -> " << out.str(4);
    EXPECT_TRUE(seqclass::is_k_sorted(lower, k)) << v.str(4) << " -> " << out.str(4);
    EXPECT_EQ(out.count_ones(), v.count_ones());
  }
}

TEST(KSwap, PaperExampleFig8) {
  // Fig. 8: 16-input 4-way merger input 1111/0001/0011/0111.
  const std::size_t n = 16, k = 4;
  Circuit c;
  const auto in = c.inputs(n);
  std::vector<WireId> ctrls;
  for (std::size_t b = 0; b < k; ++b) ctrls.push_back(in[b * (n / k) + n / (2 * k)]);
  c.mark_outputs(blocks::k_swap(c, in, ctrls));
  const auto out = c.eval(BitVec::parse("1111000100110111"));
  // Example 4: clean halves 11, 00, 11, 11 up; 11/01/00/01 down.
  EXPECT_EQ(out.slice(0, 8).str(2), "11/00/11/11");
  EXPECT_EQ(out.slice(8, 8).str(2), "11/01/00/01");
}

// ------------------------------------------------------------ mux / demux

class MuxNkTest : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(MuxNkTest, SelectsTheRightGroup) {
  const auto [n, k] = GetParam();
  const std::size_t groups = n / k;
  const std::size_t selw = ilog2(groups);
  Circuit c;
  const auto in = c.inputs(n);
  const auto sel = c.inputs(selw);
  c.mark_outputs(blocks::mux_nk(c, in, k, sel));

  ABSORT_SEEDED_RNG(rng, 10);
  const auto data = workload::random_bits(rng, n);
  for (std::size_t g = 0; g < groups; ++g) {
    auto input = data;
    for (std::size_t b = 0; b < selw; ++b) input.push_back(static_cast<Bit>((g >> b) & 1));
    EXPECT_EQ(c.eval(input), data.slice(g * k, k)) << "group " << g;
  }
}

TEST_P(MuxNkTest, CostMatchesCoupledTrees) {
  const auto [n, k] = GetParam();
  Circuit c;
  const auto in = c.inputs(n);
  const auto sel = c.inputs(ilog2(n / k));
  c.mark_outputs(blocks::mux_nk(c, in, k, sel));
  const auto r = analyze_unit(c);
  // k coupled (n/k,1)-multiplexers: exactly n-k (2,1)-muxes (paper: "n costs"),
  // depth lg(n/k).
  EXPECT_DOUBLE_EQ(r.cost, static_cast<double>(n - k));
  EXPECT_DOUBLE_EQ(r.depth, static_cast<double>(ilog2(n / k)));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MuxNkTest,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{16, 4},
                                           std::pair<std::size_t, std::size_t>{16, 1},
                                           std::pair<std::size_t, std::size_t>{32, 8},
                                           std::pair<std::size_t, std::size_t>{64, 4}));

class DemuxKnTest : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(DemuxKnTest, RoutesToTheRightGroup) {
  const auto [n, k] = GetParam();
  const std::size_t groups = n / k;
  const std::size_t selw = ilog2(groups);
  Circuit c;
  const auto in = c.inputs(k);
  const auto sel = c.inputs(selw);
  c.mark_outputs(blocks::demux_kn(c, in, n, sel));

  ABSORT_SEEDED_RNG(rng, 12);
  const auto data = workload::random_bits(rng, k);
  for (std::size_t g = 0; g < groups; ++g) {
    auto input = data;
    for (std::size_t b = 0; b < selw; ++b) input.push_back(static_cast<Bit>((g >> b) & 1));
    const auto out = c.eval(input);
    for (std::size_t g2 = 0; g2 < groups; ++g2) {
      if (g2 == g) {
        EXPECT_EQ(out.slice(g2 * k, k), data);
      } else {
        EXPECT_EQ(out.slice(g2 * k, k), BitVec::zeros(k));
      }
    }
  }
}

TEST_P(DemuxKnTest, CostMatchesCoupledTrees) {
  const auto [n, k] = GetParam();
  Circuit c;
  const auto in = c.inputs(k);
  const auto sel = c.inputs(ilog2(n / k));
  c.mark_outputs(blocks::demux_kn(c, in, n, sel));
  const auto r = analyze_unit(c);
  EXPECT_DOUBLE_EQ(r.cost, static_cast<double>(n - k));
  EXPECT_DOUBLE_EQ(r.depth, static_cast<double>(ilog2(n / k)));
}

INSTANTIATE_TEST_SUITE_P(Shapes, DemuxKnTest,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{16, 4},
                                           std::pair<std::size_t, std::size_t>{16, 1},
                                           std::pair<std::size_t, std::size_t>{32, 8},
                                           std::pair<std::size_t, std::size_t>{64, 4}));

TEST(MuxTree, Fig3Shape16to4) {
  // The (16,4)-multiplexer of Fig. 3(a): 4 groups of 4, 2 select bits.
  Circuit c;
  const auto in = c.inputs(16);
  const auto sel = c.inputs(2);
  c.mark_outputs(blocks::mux_nk(c, in, 4, sel));
  const auto r = analyze_unit(c);
  EXPECT_DOUBLE_EQ(r.cost, 12.0);
  EXPECT_DOUBLE_EQ(r.depth, 2.0);
}

// ------------------------------------------------------------ prefix adder

class PrefixAdderTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrefixAdderTest, AddsExhaustivelyOrRandomly) {
  const std::size_t w = GetParam();
  Circuit c;
  const auto a = c.inputs(w);
  const auto b = c.inputs(w);
  auto sum = blocks::prefix_adder(c, a, b);
  ASSERT_EQ(sum.size(), w + 1);
  for (auto s : sum) c.mark_output(s);

  const std::uint64_t lim = std::uint64_t{1} << w;
  if (w <= 6) {
    for (std::uint64_t x = 0; x < lim; ++x) {
      for (std::uint64_t y = 0; y < lim; ++y) {
        const auto in = BitVec::from_bits_of(x, w).concat(BitVec::from_bits_of(y, w));
        EXPECT_EQ(c.eval(in), BitVec::from_bits_of(x + y, w + 1)) << x << "+" << y;
      }
    }
  } else {
    ABSORT_SEEDED_RNG(rng, w);
    for (int rep = 0; rep < 500; ++rep) {
      const std::uint64_t x = rng.below(lim), y = rng.below(lim);
      const auto in = BitVec::from_bits_of(x, w).concat(BitVec::from_bits_of(y, w));
      EXPECT_EQ(c.eval(in), BitVec::from_bits_of(x + y, w + 1)) << x << "+" << y;
    }
  }
}

TEST_P(PrefixAdderTest, DepthIsLogarithmic) {
  const std::size_t w = GetParam();
  Circuit c;
  const auto a = c.inputs(w);
  const auto b = c.inputs(w);
  for (auto s : blocks::prefix_adder(c, a, b)) c.mark_output(s);
  const auto r = analyze_unit(c);
  EXPECT_LE(r.depth, 2.0 * static_cast<double>(ceil_log2(w)) + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Widths, PrefixAdderTest, ::testing::Values(1, 2, 3, 4, 5, 6, 8, 13, 16));

class RippleAdderTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RippleAdderTest, AddsExhaustively) {
  const std::size_t w = GetParam();
  Circuit c;
  const auto a = c.inputs(w);
  const auto b = c.inputs(w);
  for (auto s : blocks::ripple_adder(c, a, b)) c.mark_output(s);
  const std::uint64_t lim = std::uint64_t{1} << w;
  for (std::uint64_t x = 0; x < lim; ++x) {
    for (std::uint64_t y = 0; y < lim; ++y) {
      const auto in = BitVec::from_bits_of(x, w).concat(BitVec::from_bits_of(y, w));
      EXPECT_EQ(c.eval(in), BitVec::from_bits_of(x + y, w + 1)) << x << "+" << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, RippleAdderTest, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(RippleAdder, CheaperButDeeperThanKoggeStone) {
  const std::size_t w = 16;
  Circuit ks, rp;
  for (auto s : blocks::prefix_adder(ks, ks.inputs(w), ks.inputs(w))) ks.mark_output(s);
  for (auto s : blocks::ripple_adder(rp, rp.inputs(w), rp.inputs(w))) rp.mark_output(s);
  const auto rks = analyze_unit(ks);
  const auto rrp = analyze_unit(rp);
  EXPECT_LT(rrp.cost, rks.cost);
  EXPECT_GT(rrp.depth, rks.depth);
}

// ------------------------------------------------------- balanced merger

class BalancedMergerTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BalancedMergerTest, SortsEveryClassAMember) {
  const std::size_t n = GetParam();
  Circuit c;
  const auto in = c.inputs(n);
  c.mark_outputs(blocks::balanced_merging_block(c, in));
  for (const auto& z : seqclass::enumerate_class_a(n)) {
    const auto out = c.eval(z);
    EXPECT_TRUE(out.is_sorted_ascending()) << z.str() << " -> " << out.str();
    EXPECT_EQ(out.count_ones(), z.count_ones());
  }
}

TEST_P(BalancedMergerTest, CostAndDepth) {
  const std::size_t n = GetParam();
  Circuit c;
  const auto in = c.inputs(n);
  c.mark_outputs(blocks::balanced_merging_block(c, in));
  const auto r = analyze_unit(c);
  EXPECT_DOUBLE_EQ(r.cost, static_cast<double>(n / 2 * ilog2(n)));  // (n/2) lg n
  EXPECT_DOUBLE_EQ(r.depth, static_cast<double>(ilog2(n)));         // lg n
}

INSTANTIATE_TEST_SUITE_P(Sizes, BalancedMergerTest, ::testing::Values(2, 4, 8, 16, 32, 64));

// The balanced merger sorts the shuffle of any two sorted halves (the use in
// Fig. 4(b)); Theorem 1 + the merger property, end to end.
TEST(BalancedMerger, MergesShuffledSortedHalves) {
  const std::size_t n = 32;
  Circuit c;
  const auto in = c.inputs(n);
  c.mark_outputs(blocks::balanced_merging_block(c, in));
  for (std::size_t u = 0; u <= n / 2; ++u) {
    for (std::size_t l = 0; l <= n / 2; ++l) {
      const auto z = seqclass::theorem1_shuffle(BitVec::sorted_with_ones(n / 2, u),
                                                BitVec::sorted_with_ones(n / 2, l));
      EXPECT_TRUE(c.eval(z).is_sorted_ascending());
    }
  }
}

}  // namespace
}  // namespace absort
