// Fault injection and graceful degradation.
//
// Part 1 -- the fault model itself, differentially: every applicable
// (component, FaultKind) of the small prefix and mux-merger sorters is
// evaluated over ALL 2^n inputs.  For each faulted output, either the 0-1
// self-check oracle (sortedness + population count) detects it, or the
// output is still the correct sorted sequence -- and a clean re-evaluation
// always recovers the exact reference answer.  This is the property the
// service's degradation ladder stands on.
//
// Part 2 -- the ladder through SortService with scripted FaultPlans: compile
// retry, quarantine + parole, whole-batch per-vector fallback after an eval
// throw, self-check repair of corrupted lanes, and structural-circuit-fault
// recovery.  Every test asserts bit-identical results against per-vector
// sort(), so "graceful" always means "correct", never "mostly correct".

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <future>
#include <memory>
#include <vector>

#include "absort/netlist/transform.hpp"
#include "absort/service/fault_injection.hpp"
#include "absort/service/sort_service.hpp"
#include "absort/sorters/periodic_k.hpp"
#include "absort/sorters/registry.hpp"
#include "absort/util/bitvec.hpp"
#include "test_seed.hpp"

namespace absort {
namespace {

using namespace std::chrono_literals;
using service::FaultPlan;
using service::FaultPlanOptions;
using service::ServiceOptions;
using service::SortResult;
using service::SortService;
using service::Status;

/// The 0-1 self-check oracle exactly as the service applies it.
bool self_check_passes(const BitVec& out, const BitVec& in) {
  return out.is_sorted_ascending() && out.count_ones() == in.count_ones();
}

// ------------------------------------------------- part 1: the fault model

TEST(FaultModel, EveryFaultEitherDetectedOrHarmlessAndRecoverable) {
  for (const char* name : {"prefix", "mux-merger"}) {
    for (const std::size_t n : {4u, 8u}) {
      const auto sorter = sorters::make_sorter(name, n);
      const auto circuit = sorter->build_circuit();
      std::size_t faults_tried = 0, detected = 0;
      for (std::size_t comp = 0; comp < circuit.num_components(); ++comp) {
        for (const auto kind :
             {netlist::FaultKind::StuckControl0, netlist::FaultKind::StuckControl1,
              netlist::FaultKind::OutputsSwapped}) {
          const netlist::Fault f{comp, kind};
          if (!netlist::fault_applicable(circuit, f)) continue;
          ++faults_tried;
          bool fault_seen = false;
          for (std::uint64_t v = 0; v < (std::uint64_t{1} << n); ++v) {
            const auto in = BitVec::from_bits_of(v, n);
            const auto expect = BitVec::sorted_with_ones(n, in.count_ones());
            const auto out = netlist::eval_with_fault(circuit, in, f);
            if (self_check_passes(out, in)) {
              // The oracle is complete for 0-1 outputs: passing it must mean
              // the output IS the sorted sequence, faulted hardware or not.
              ASSERT_EQ(out, expect) << name << " n=" << n << " comp=" << comp
                                     << " kind=" << static_cast<int>(kind) << " input=" << v;
            } else {
              fault_seen = true;
              // Detected: the ladder re-evaluates cleanly and must recover.
              ASSERT_EQ(circuit.eval(in), expect)
                  << name << " n=" << n << " comp=" << comp << " input=" << v;
            }
          }
          if (fault_seen) ++detected;
        }
      }
      // The sweep must actually exercise the model: these circuits have
      // applicable sites of every kind, and most single faults are visible
      // on at least one of the 2^n inputs.
      EXPECT_GT(faults_tried, 0u) << name << " n=" << n;
      EXPECT_GT(detected, 0u) << name << " n=" << n;
    }
  }
}

// ----------------------------------------- part 2: the ladder in SortService

/// Submits `count` seeded random requests, waits for all, and asserts every
/// one came back Ok and bit-identical to per-vector sort().
void expect_all_ok(SortService& svc, const char* sorter, std::size_t n, std::size_t count,
                   Xoshiro256& rng) {
  const auto ref = sorters::make_sorter(sorter, n);
  std::vector<std::future<SortResult>> futs;
  std::vector<BitVec> expects;
  for (std::size_t i = 0; i < count; ++i) {
    auto in = workload::random_bits(rng, n);
    expects.push_back(ref->sort(in));
    futs.push_back(svc.submit(sorter, std::move(in)));
  }
  for (std::size_t i = 0; i < count; ++i) {
    const auto r = futs[i].get();
    ASSERT_EQ(r.status, Status::Ok) << "request " << i;
    ASSERT_EQ(r.output, expects[i]) << "request " << i;
  }
}

TEST(ServiceFaults, StatusFailedHasAName) {
  EXPECT_STREQ(service::to_string(Status::Failed), "failed");
}

TEST(ServiceFaults, CompileFailureRetriesThenSucceeds) {
  ABSORT_SEEDED_RNG(rng, 101);
  FaultPlanOptions fo;
  fo.seed = rng_seed;
  fo.compile_fail = 1.0;
  fo.max_faults = 2;  // exactly the first two compile attempts fail
  ServiceOptions so;
  so.compile_attempts = 3;
  so.compile_backoff = 1ms;  // exercise the backoff sleep without slowing CI
  so.fault_plan = std::make_shared<FaultPlan>(fo);
  SortService svc(so);

  expect_all_ok(svc, "prefix", 16, 8, rng);
  const auto st = svc.stats();
  EXPECT_EQ(st.compiled, 1u);      // third attempt succeeded
  EXPECT_EQ(st.retries, 2u);       // two retry sleeps
  EXPECT_EQ(st.quarantined, 0u);
  EXPECT_EQ(st.degraded, 0u);      // batch path healthy after compile
  EXPECT_EQ(so.fault_plan->counters().compile_fails, 2u);
}

TEST(ServiceFaults, PersistentCompileFailureQuarantinesOntoPerVectorPath) {
  ABSORT_SEEDED_RNG(rng, 102);
  FaultPlanOptions fo;
  fo.seed = rng_seed;
  fo.compile_fail = 1.0;  // every attempt, forever
  ServiceOptions so;
  so.compile_attempts = 2;
  so.compile_backoff = 0us;
  so.fault_plan = std::make_shared<FaultPlan>(fo);
  SortService svc(so);

  expect_all_ok(svc, "prefix", 16, 12, rng);   // combinational fallback
  expect_all_ok(svc, "fish", 16, 12, rng);     // model-B fallback (sort())
  const auto st = svc.stats();
  EXPECT_EQ(st.compiled, 0u);
  EXPECT_EQ(st.quarantined, 2u);  // both keys
  EXPECT_EQ(st.degraded, 24u);    // every request served per-vector
  EXPECT_EQ(st.completed, 24u);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GE(st.retries, 2u);
}

TEST(ServiceFaults, EvalThrowFallsBackWholeBatchBitExact) {
  ABSORT_SEEDED_RNG(rng, 103);
  FaultPlanOptions fo;
  fo.seed = rng_seed;
  fo.eval_throw = 1.0;
  fo.max_faults = 1;  // one poisoned batch, then healthy
  ServiceOptions so;
  so.quarantine_after = 5;
  so.max_linger = 50ms;  // coalesce the burst into one batch
  so.fault_plan = std::make_shared<FaultPlan>(fo);
  SortService svc(so);

  expect_all_ok(svc, "batcher", 16, 16, rng);
  const auto st = svc.stats();
  EXPECT_GE(st.degraded, 1u);  // the poisoned batch was repaired per-vector
  EXPECT_EQ(st.quarantined, 0u);
  EXPECT_EQ(st.completed, 16u);
  EXPECT_EQ(so.fault_plan->counters().eval_throws, 1u);
}

TEST(ServiceFaults, CorruptedLanesDetectedBySelfCheckAndRepaired) {
  ABSORT_SEEDED_RNG(rng, 104);
  FaultPlanOptions fo;
  fo.seed = rng_seed;
  fo.corrupt = 1.0;  // every batch gets bit-flipped lanes
  fo.corrupt_fraction = 0.5;
  ServiceOptions so;
  so.quarantine_after = 1000;  // keep the batch path engaged throughout
  so.fault_plan = std::make_shared<FaultPlan>(fo);
  SortService svc(so);
  // Installing a corrupting plan must force the *complete* self-check on
  // (Full, not Cheap: the structural probe cannot see corruption that forges
  // a sorted output with the wrong popcount).
  EXPECT_EQ(svc.options().self_check, service::SelfCheck::Full);

  expect_all_ok(svc, "mux-merger", 32, 32, rng);
  const auto st = svc.stats();
  EXPECT_GE(st.self_check_failed, 1u);
  EXPECT_GE(st.degraded, 1u);              // corrupted lanes re-evaluated
  EXPECT_EQ(st.completed, 32u);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GE(so.fault_plan->counters().corrupted_lanes, 1u);
}

TEST(ServiceFaults, StructuralCircuitFaultsOfEveryKindRecovered) {
  ABSORT_SEEDED_RNG(rng, 105);
  constexpr std::size_t kN = 16;
  const char* names[] = {"prefix", "mux-merger", "batcher"};

  // Premise check: across these circuits, every FaultKind has an applicable
  // site (Mux21 controls in prefix/mux-merger, 2-output comparators in
  // batcher), so the plan's coverage-first pick must fire all three.
  std::array<bool, 3> applicable{};
  for (const char* name : names) {
    const auto circuit = sorters::make_sorter(name, kN)->build_circuit();
    for (std::size_t i = 0; i < circuit.num_components(); ++i) {
      for (std::size_t k = 0; k < 3; ++k) {
        if (netlist::fault_applicable(circuit, {i, static_cast<netlist::FaultKind>(k)})) {
          applicable[k] = true;
        }
      }
    }
  }
  for (std::size_t k = 0; k < 3; ++k) ASSERT_TRUE(applicable[k]) << "FaultKind " << k;

  FaultPlanOptions fo;
  fo.seed = rng_seed;
  fo.circuit_fault = 1.0;  // every combinational batch rides a faulted circuit
  ServiceOptions so;
  so.quarantine_after = 1000;
  so.fault_plan = std::make_shared<FaultPlan>(fo);
  SortService svc(so);

  // Sequential blocking sorts: one micro-batch (and one fault pick) each.
  std::size_t completed = 0;
  for (std::size_t round = 0; round < 4; ++round) {
    for (const char* name : names) {
      const auto ref = sorters::make_sorter(name, kN);
      const auto in = workload::random_bits(rng, kN);
      const auto r = svc.sort(name, in);
      ASSERT_EQ(r.status, Status::Ok) << name;
      ASSERT_EQ(r.output, ref->sort(in)) << name;
      ++completed;
    }
  }
  const auto c = so.fault_plan->counters();
  EXPECT_GE(c.circuit_faults, 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_GE(c.circuit_faults_by_kind[k], 1u) << "FaultKind " << k;
  }
  const auto st = svc.stats();
  EXPECT_EQ(st.completed, completed);
  EXPECT_EQ(st.failed, 0u);
}

TEST(ServiceFaults, QuarantineParoleRestoresBatchPath) {
  ABSORT_SEEDED_RNG(rng, 106);
  FaultPlanOptions fo;
  fo.seed = rng_seed;
  fo.eval_throw = 1.0;
  fo.max_faults = 1;  // one strike's worth of chaos, then permanently healthy
  ServiceOptions so;
  so.quarantine_after = 1;  // first strike quarantines
  so.probation = 1;         // ... for exactly one batch
  so.max_linger = 0us;
  so.fault_plan = std::make_shared<FaultPlan>(fo);
  SortService svc(so);

  // Sequential blocking sorts, one batch each.  Batch 1: injected throw ->
  // strike -> quarantine (served per-vector).  Batch 2: parole expires on
  // dispatch -> recompile -> healthy batch path for the rest.
  const auto ref = sorters::make_sorter("batcher", 16);
  for (std::size_t i = 0; i < 6; ++i) {
    const auto in = workload::random_bits(rng, 16);
    const auto r = svc.sort("batcher", in);
    ASSERT_EQ(r.status, Status::Ok) << "request " << i;
    ASSERT_EQ(r.output, ref->sort(in)) << "request " << i;
  }
  const auto st = svc.stats();
  EXPECT_EQ(st.quarantined, 1u);
  EXPECT_EQ(st.compiled, 2u);  // once cold, once after parole
  EXPECT_EQ(st.degraded, 1u);  // only the poisoned batch
  EXPECT_EQ(st.completed, 6u);
}

TEST(ServiceFaults, ChaosScheduleEveryFutureResolvesBitExact) {
  // The in-process version of `absort_cli serve --selftest --chaos`: full
  // chaos schedule, mixed keys, and the strongest possible postcondition --
  // every future resolves Ok with the exact per-vector answer.
  ABSORT_SEEDED_RNG(rng, 107);
  ServiceOptions so;
  so.quarantine_after = 2;
  so.probation = 3;
  so.compile_backoff = 100us;
  so.compile_backoff_cap = 2ms;
  so.fault_plan = std::make_shared<FaultPlan>(FaultPlanOptions::chaos(rng_seed));
  SortService svc(so);

  for (const char* name : {"prefix", "mux-merger", "fish"}) {
    expect_all_ok(svc, name, 16, 40, rng);
  }
  const auto st = svc.stats();
  EXPECT_EQ(st.completed, 120u);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.unrecoverable, 0u);
  EXPECT_GE(so.fault_plan->counters().total(), 4u);  // chaos actually ran
}

// ------------------------------- part 3: the Cheap structural self-check tier

// Differential fault sweep for the Cheap probe, at circuit level: inject
// every applicable single-component structural fault into a periodic-k
// instance and check, over ALL 2^n inputs, that the one-block probe detects
// exactly what the full 0-1 oracle detects -- or the faulted output is
// provably harmless (it IS the correct sorted sequence).
//
// Exact agreement is no accident: periodic-k is comparator-only, so the only
// applicable FaultKind is OutputsSwapped, which permutes (never duplicates)
// values -- the population count is always preserved, hence a wrong output
// is wrong only by being unsorted, and both checks reduce to sortedness.
// The popcount leg of the Full oracle exists for *corrupting* faults, which
// is exactly why a corrupting FaultPlan forces SelfCheck::Full.
TEST(CheapSelfCheck, ProbeMatchesOracleOnEveryStructuralFault) {
  constexpr std::size_t kN = 8;
  const sorters::PeriodicKSorter sorter(kN, 3);
  const auto circuit = sorter.build_circuit();
  const auto block = sorter.self_check_probe();
  ASSERT_TRUE(block.has_value());

  std::size_t faults_tried = 0, detected = 0;
  for (std::size_t comp = 0; comp < circuit.num_components(); ++comp) {
    for (const auto kind :
         {netlist::FaultKind::StuckControl0, netlist::FaultKind::StuckControl1,
          netlist::FaultKind::OutputsSwapped}) {
      const netlist::Fault f{comp, kind};
      if (!netlist::fault_applicable(circuit, f)) continue;
      ++faults_tried;
      bool fault_seen = false;
      for (std::uint64_t v = 0; v < (std::uint64_t{1} << kN); ++v) {
        const auto in = BitVec::from_bits_of(v, kN);
        const auto expect = BitVec::sorted_with_ones(kN, in.count_ones());
        const auto out = netlist::eval_with_fault(circuit, in, f);
        const bool oracle_ok = self_check_passes(out, in);
        const bool probe_ok = block->eval(out) == out;
        // The probe must catch every fault the full oracle catches (and,
        // comparator networks being swap-only, nothing more).
        ASSERT_EQ(probe_ok, oracle_ok)
            << "comp=" << comp << " kind=" << static_cast<int>(kind) << " input=" << v;
        if (oracle_ok) {
          ASSERT_EQ(out, expect) << "comp=" << comp << " input=" << v;  // harmless
        } else {
          fault_seen = true;
        }
      }
      if (fault_seen) ++detected;
    }
  }
  EXPECT_GT(faults_tried, 0u);
  EXPECT_GT(detected, 0u);
}

TEST(CheapSelfCheck, CleanOnHealthyTrafficAndCountsProbedLanes) {
  ABSORT_SEEDED_RNG(rng, 108);
  ServiceOptions so;
  so.self_check = service::SelfCheck::Cheap;
  SortService svc(so);
  EXPECT_EQ(svc.options().self_check, service::SelfCheck::Cheap);  // no plan: not upgraded

  // periodic-k carries a probe: every lane goes through the bit-sliced
  // structural check, none may flag, and results stay bit-exact.
  expect_all_ok(svc, "periodic-k", 48, 40, rng);
  const auto st = svc.stats();
  EXPECT_EQ(st.completed, 40u);
  EXPECT_EQ(st.cheap_checks, 40u);
  EXPECT_EQ(st.self_check_failed, 0u);
  EXPECT_EQ(st.degraded, 0u);
}

TEST(CheapSelfCheck, ProbelessSorterFallsBackToFullOracle) {
  ABSORT_SEEDED_RNG(rng, 109);
  ServiceOptions so;
  so.self_check = service::SelfCheck::Cheap;
  SortService svc(so);

  // batcher has no probe: the Cheap tier serves it through the Full oracle
  // instead -- checked (bit-exact) but never counted as a cheap probe.
  expect_all_ok(svc, "batcher", 16, 24, rng);
  auto st = svc.stats();
  EXPECT_EQ(st.completed, 24u);
  EXPECT_EQ(st.cheap_checks, 0u);
  EXPECT_EQ(st.self_check_failed, 0u);

  // ... while a probe-bearing key on the same service uses the probe.
  expect_all_ok(svc, "oe-transposition", 16, 24, rng);
  st = svc.stats();
  EXPECT_EQ(st.completed, 48u);
  EXPECT_EQ(st.cheap_checks, 24u);
  EXPECT_EQ(st.self_check_failed, 0u);
}

TEST(CheapSelfCheck, CorruptingPlanUpgradesCheapToFull) {
  // Requesting Cheap under a corrupting plan must not stick: Status::Ok has
  // to keep implying a correct result, and only the Full oracle sees forged
  // sorted-but-wrong-popcount outputs.
  ABSORT_SEEDED_RNG(rng, 110);
  FaultPlanOptions fo;
  fo.seed = rng_seed;
  fo.corrupt = 1.0;
  fo.corrupt_fraction = 0.5;
  ServiceOptions so;
  so.self_check = service::SelfCheck::Cheap;
  so.quarantine_after = 1000;
  so.fault_plan = std::make_shared<FaultPlan>(fo);
  SortService svc(so);
  EXPECT_EQ(svc.options().self_check, service::SelfCheck::Full);

  expect_all_ok(svc, "periodic-k", 32, 32, rng);
  const auto st = svc.stats();
  EXPECT_GE(st.self_check_failed, 1u);
  EXPECT_EQ(st.cheap_checks, 0u);  // Full tier: the probe never runs
  EXPECT_EQ(st.completed, 32u);
}

}  // namespace
}  // namespace absort
