// Tests for the netlist substrate: component semantics, evaluation,
// cost/depth analysis, wiring permutations.

#include <gtest/gtest.h>

#include "absort/netlist/analyze.hpp"
#include "absort/netlist/circuit.hpp"
#include "absort/netlist/wiring.hpp"

namespace absort::netlist {
namespace {

TEST(Circuit, GateSemantics) {
  Circuit c;
  const auto a = c.input();
  const auto b = c.input();
  c.mark_output(c.and_gate(a, b));
  c.mark_output(c.or_gate(a, b));
  c.mark_output(c.xor_gate(a, b));
  c.mark_output(c.not_gate(a));
  for (std::uint64_t x = 0; x < 4; ++x) {
    const auto in = BitVec::from_bits_of(x, 2);
    const auto out = c.eval(in);
    EXPECT_EQ(out[0], in[0] & in[1]);
    EXPECT_EQ(out[1], in[0] | in[1]);
    EXPECT_EQ(out[2], in[0] ^ in[1]);
    EXPECT_EQ(out[3], 1 - in[0]);
  }
}

TEST(Circuit, ConstSemantics) {
  Circuit c;
  c.mark_output(c.constant(0));
  c.mark_output(c.constant(1));
  const auto out = c.eval(BitVec{});
  EXPECT_EQ(out.str(), "01");
}

TEST(Circuit, MuxSemantics) {
  Circuit c;
  const auto a0 = c.input();
  const auto a1 = c.input();
  const auto s = c.input();
  c.mark_output(c.mux(a0, a1, s));
  EXPECT_EQ(c.eval(BitVec{1, 0, 0})[0], 1);  // sel=0 -> a0
  EXPECT_EQ(c.eval(BitVec{1, 0, 1})[0], 0);  // sel=1 -> a1
  EXPECT_EQ(c.eval(BitVec{0, 1, 1})[0], 1);
}

TEST(Circuit, DemuxSemantics) {
  Circuit c;
  const auto d = c.input();
  const auto s = c.input();
  const auto [o0, o1] = c.demux(d, s);
  c.mark_output(o0);
  c.mark_output(o1);
  EXPECT_EQ(c.eval(BitVec{1, 0}).str(), "10");
  EXPECT_EQ(c.eval(BitVec{1, 1}).str(), "01");
  EXPECT_EQ(c.eval(BitVec{0, 0}).str(), "00");
  EXPECT_EQ(c.eval(BitVec{0, 1}).str(), "00");
}

TEST(Circuit, ComparatorSemantics) {
  Circuit c;
  const auto a = c.input();
  const auto b = c.input();
  const auto [lo, hi] = c.comparator(a, b);
  c.mark_output(lo);
  c.mark_output(hi);
  EXPECT_EQ(c.eval(BitVec{0, 0}).str(), "00");
  EXPECT_EQ(c.eval(BitVec{1, 0}).str(), "01");
  EXPECT_EQ(c.eval(BitVec{0, 1}).str(), "01");
  EXPECT_EQ(c.eval(BitVec{1, 1}).str(), "11");
}

TEST(Circuit, Switch2x2Semantics) {
  Circuit c;
  const auto a = c.input();
  const auto b = c.input();
  const auto ctrl = c.input();
  const auto [o0, o1] = c.switch2x2(a, b, ctrl);
  c.mark_output(o0);
  c.mark_output(o1);
  EXPECT_EQ(c.eval(BitVec{1, 0, 0}).str(), "10");  // straight
  EXPECT_EQ(c.eval(BitVec{1, 0, 1}).str(), "01");  // crossed
}

TEST(Circuit, Switch4x4Semantics) {
  Circuit c;
  const auto in = c.inputs(4);
  const auto s0 = c.input();
  const auto s1 = c.input();
  // pattern s: rotate by s.
  Swap4Patterns pats{{{0, 1, 2, 3}, {1, 2, 3, 0}, {2, 3, 0, 1}, {3, 0, 1, 2}}};
  const auto t = c.register_swap4_patterns(pats);
  const auto out = c.switch4x4({in[0], in[1], in[2], in[3]}, s0, s1, t);
  for (auto w : out) c.mark_output(w);
  // data = 1000 so the position of the 1 tracks the selected rotation.
  EXPECT_EQ(c.eval(BitVec{1, 0, 0, 0, /*s0=*/0, /*s1=*/0}).str(), "1000");
  EXPECT_EQ(c.eval(BitVec{1, 0, 0, 0, /*s0=*/1, /*s1=*/0}).str(), "0001");
  EXPECT_EQ(c.eval(BitVec{1, 0, 0, 0, /*s0=*/0, /*s1=*/1}).str(), "0010");
  EXPECT_EQ(c.eval(BitVec{1, 0, 0, 0, /*s0=*/1, /*s1=*/1}).str(), "0100");
}

TEST(Circuit, RegisterPatternsDeduplicates) {
  Circuit c;
  Swap4Patterns p{{{0, 1, 2, 3}, {1, 0, 3, 2}, {2, 3, 0, 1}, {3, 2, 1, 0}}};
  EXPECT_EQ(c.register_swap4_patterns(p), c.register_swap4_patterns(p));
}

TEST(Circuit, UseBeforeDefineThrows) {
  Circuit c;
  EXPECT_THROW(c.not_gate(123), std::logic_error);
}

TEST(Circuit, EvalChecksInputArity) {
  Circuit c;
  c.inputs(3);
  EXPECT_THROW(c.eval(BitVec{0, 1}), std::invalid_argument);
}

TEST(Analyze, UnitCostCountsComponents) {
  Circuit c;
  const auto a = c.input();
  const auto b = c.input();
  const auto [lo, hi] = c.comparator(a, b);
  const auto x = c.and_gate(lo, hi);
  c.mark_output(x);
  const auto r = analyze_unit(c);
  EXPECT_DOUBLE_EQ(r.cost, 2.0);   // comparator + and (inputs are free)
  EXPECT_DOUBLE_EQ(r.depth, 2.0);  // comparator then and
  EXPECT_EQ(r.inventory[static_cast<std::size_t>(Kind::Comparator)], 1u);
}

TEST(Analyze, DepthIsLongestPathToMarkedOutput) {
  Circuit c;
  const auto a = c.input();
  // chain of 5 NOTs, but only the 2nd is marked.
  auto w = a;
  WireId second = kNoWire;
  for (int i = 0; i < 5; ++i) {
    w = c.not_gate(w);
    if (i == 1) second = w;
  }
  c.mark_output(second);
  EXPECT_DOUBLE_EQ(analyze_unit(c).depth, 2.0);
  c.mark_output(w);
  EXPECT_DOUBLE_EQ(analyze_unit(c).depth, 5.0);
}

TEST(Analyze, GateLevelModelWeighsSwitches) {
  Circuit c;
  const auto a = c.input();
  const auto b = c.input();
  const auto s = c.input();
  const auto [o0, o1] = c.switch2x2(a, b, s);
  c.mark_output(o0);
  c.mark_output(o1);
  const auto unit = analyze(c, CostModel::paper_unit());
  const auto gate = analyze(c, CostModel::gate_level());
  EXPECT_DOUBLE_EQ(unit.cost, 1.0);
  EXPECT_DOUBLE_EQ(gate.cost, 6.0);
  EXPECT_DOUBLE_EQ(gate.depth, 2.0);
}

TEST(Wiring, ShuffleTwoWay) {
  const std::vector<WireId> in{0, 1, 2, 3, 4, 5, 6, 7};
  const auto out = wiring::shuffle(in, 2);
  EXPECT_EQ(out, (std::vector<WireId>{0, 4, 1, 5, 2, 6, 3, 7}));
  EXPECT_EQ(wiring::unshuffle(out, 2), in);
}

TEST(Wiring, ShuffleFourWay) {
  const std::vector<WireId> in{0, 1, 2, 3, 4, 5, 6, 7};
  const auto out = wiring::shuffle(in, 4);
  EXPECT_EQ(out, (std::vector<WireId>{0, 2, 4, 6, 1, 3, 5, 7}));
  EXPECT_EQ(wiring::unshuffle(out, 4), in);
}

TEST(Wiring, OddEvenSplit) {
  const std::vector<WireId> in{10, 11, 12, 13, 14, 15};
  EXPECT_EQ(wiring::odd_even_split(in), (std::vector<WireId>{10, 12, 14, 11, 13, 15}));
}

TEST(Wiring, PermuteValidates) {
  const std::vector<WireId> in{1, 2, 3};
  EXPECT_THROW(wiring::permute(in, {0, 1}), std::invalid_argument);
  EXPECT_THROW(wiring::permute(in, {0, 1, 7}), std::invalid_argument);
  EXPECT_EQ(wiring::permute(in, {2, 0, 1}), (std::vector<WireId>{3, 1, 2}));
}

}  // namespace
}  // namespace absort::netlist
