// Tests for netlist text serialization (round-trip fidelity) and the
// model-B cycle tracer (VCD export).

#include <gtest/gtest.h>

#include "absort/netlist/serialize.hpp"
#include "absort/sim/fish_hardware.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/sorters/prefix_sorter.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort {
namespace {

TEST(Serialize, RoundTripsSmallCircuit) {
  netlist::Circuit c;
  const auto a = c.input();
  const auto b = c.input();
  const auto s = c.input();
  const auto [lo, hi] = c.comparator(a, b);
  const auto [x, y] = c.switch2x2(lo, hi, s);
  c.mark_output(c.xor_gate(x, y));
  c.mark_output(c.constant(1));

  const auto text = netlist::to_text(c);
  const auto back = netlist::from_text(text);
  EXPECT_EQ(netlist::to_text(back), text);  // canonical fixed point
  for (std::uint64_t v = 0; v < 8; ++v) {
    const auto in = BitVec::from_bits_of(v, 3);
    EXPECT_EQ(back.eval(in), c.eval(in)) << v;
  }
}

TEST(Serialize, RoundTripsAdaptiveSorters) {
  ABSORT_SEEDED_RNG(rng, 61);
  for (std::size_t n : {8u, 32u}) {
    for (const auto* which : {"prefix", "muxmerge"}) {
      const auto circuit = std::string(which) == "prefix"
                               ? sorters::PrefixSorter(n).build_circuit()
                               : sorters::MuxMergeSorter(n).build_circuit();
      const auto back = netlist::from_text(netlist::to_text(circuit));
      EXPECT_EQ(back.num_components(), circuit.num_components());
      for (int rep = 0; rep < 25; ++rep) {
        const auto in = workload::random_bits(rng, n);
        EXPECT_EQ(back.eval(in), circuit.eval(in)) << which << " n=" << n;
      }
    }
  }
}

TEST(Serialize, RejectsGarbage) {
  EXPECT_THROW((void)netlist::from_text(""), std::invalid_argument);
  EXPECT_THROW((void)netlist::from_text("bogus header\n"), std::invalid_argument);
  EXPECT_THROW((void)netlist::from_text("absort-netlist v1\nfrobnicate 1 2\n"),
               std::invalid_argument);
  EXPECT_THROW((void)netlist::from_text("absort-netlist v1\nnot 5\n"), std::invalid_argument);
}

TEST(Trace, RecordsAndExportsVcd) {
  sim::Trace t({{"clk_phase", 1}, {"bus", 3}});
  t.record(BitVec{1, 0, 1, 0});
  t.record(BitVec{0, 0, 1, 0});  // only clk_phase changes
  t.record(BitVec{0, 1, 1, 1});
  const auto vcd = t.to_vcd("fish");
  EXPECT_NE(vcd.find("$scope module fish"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! clk_phase"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 3 \" bus"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("#2"), std::string::npos);
  // Frame 1 must not re-emit the unchanged bus value.
  const auto frame1 = vcd.substr(vcd.find("#1"), vcd.find("#2") - vcd.find("#1"));
  EXPECT_EQ(frame1.find('b'), std::string::npos);
}

TEST(Trace, RejectsBadFrames) {
  sim::Trace t({{"a", 2}});
  EXPECT_THROW(t.record(BitVec{1}), std::invalid_argument);
  EXPECT_THROW(sim::Trace({{"zero", 0}}), std::invalid_argument);
}

TEST(Trace, FishHardwareRecordsFullSchedule) {
  sim::FishHardware hw(16, 4);
  auto trace = hw.make_trace();
  hw.attach_trace(&trace);
  ABSORT_SEEDED_RNG(rng, 67);
  const auto in = workload::random_bits(rng, 16);
  const auto out = hw.sort(in);
  EXPECT_TRUE(out.is_sorted_ascending());
  EXPECT_EQ(trace.num_frames(), hw.cycles_per_sort());
  const auto vcd = trace.to_vcd();
  EXPECT_NE(vcd.find("front_sel"), std::string::npos);
  EXPECT_NE(vcd.find("level_active"), std::string::npos);
  hw.attach_trace(nullptr);
}

}  // namespace
}  // namespace absort
