// Tests for the netlist optimizer: behaviour preservation (exhaustive),
// constant folding, dead-component elimination, and savings on the real
// constructions.  Includes the mutation checks that prove the property
// suites detect broken swapper tables.

#include <gtest/gtest.h>

#include "absort/blocks/swapper.hpp"
#include "absort/netlist/optimize.hpp"
#include "absort/netlist/transform.hpp"
#include "absort/seqclass/seqclass.hpp"
#include "absort/sim/fish_hardware.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/sorters/prefix_sorter.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort::netlist {
namespace {

void expect_equivalent(const Circuit& a, const Circuit& b, std::size_t max_exhaustive = 16) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_outputs(), b.num_outputs());
  if (a.num_inputs() <= max_exhaustive) {
    for (std::uint64_t x = 0; x < (std::uint64_t{1} << a.num_inputs()); ++x) {
      const auto in = BitVec::from_bits_of(x, a.num_inputs());
      ASSERT_EQ(a.eval(in), b.eval(in)) << in.str();
    }
  } else {
    ABSORT_SEEDED_RNG(rng, a.num_inputs());
    for (int rep = 0; rep < 200; ++rep) {
      const auto in = workload::random_bits(rng, a.num_inputs());
      ASSERT_EQ(a.eval(in), b.eval(in)) << in.str();
    }
  }
}

TEST(Optimize, FoldsConstantsThroughEveryKind) {
  Circuit c;
  const auto a = c.input();
  const auto one = c.constant(1);
  const auto zero = c.constant(0);
  c.mark_output(c.and_gate(a, one));            // -> a
  c.mark_output(c.and_gate(a, zero));           // -> 0
  c.mark_output(c.or_gate(a, zero));            // -> a
  c.mark_output(c.xor_gate(a, one));            // -> !a (one NOT survives)
  c.mark_output(c.mux(zero, one, a));           // -> a
  const auto [d0, d1] = c.demux(a, zero);       // -> (a, 0)
  c.mark_output(d0);
  c.mark_output(d1);
  const auto [lo, hi] = c.comparator(a, one);   // -> (a, 1)
  c.mark_output(lo);
  c.mark_output(hi);
  const auto [s0, s1] = c.switch2x2(a, one, one);  // crossed -> (1, a)
  c.mark_output(s0);
  c.mark_output(s1);

  OptimizeStats st;
  const auto opt = optimize(c, &st);
  expect_equivalent(c, opt);
  EXPECT_EQ(st.after, 1u);  // only the NOT remains
  EXPECT_GT(st.folded, 0u);
  validate(opt);
}

TEST(Optimize, RemovesDeadLogic) {
  Circuit c;
  const auto a = c.input();
  const auto b = c.input();
  (void)c.and_gate(a, b);  // dead
  (void)c.comparator(a, b);  // dead
  c.mark_output(c.xor_gate(a, b));
  OptimizeStats st;
  const auto opt = optimize(c, &st);
  expect_equivalent(c, opt);
  EXPECT_EQ(st.after, 1u);
  EXPECT_GE(st.dead, 2u);
}

TEST(Optimize, FoldsConstantSelectSwitch4) {
  Circuit c;
  const auto in = c.inputs(4);
  const auto zero = c.constant(0);
  const auto one = c.constant(1);
  const auto t = c.register_swap4_patterns(blocks::in_swap_patterns());
  // Select value 2 (s0=0, s1=1) is a fixed quarter permutation.
  const auto o = c.switch4x4({in[0], in[1], in[2], in[3]}, zero, one, t);
  for (auto w : o) c.mark_output(w);
  OptimizeStats st;
  const auto opt = optimize(c, &st);
  expect_equivalent(c, opt);
  EXPECT_EQ(st.after, 0u);  // pure rewiring
}

TEST(Optimize, SortersAreAlreadyLean) {
  // The adaptive sorter netlists contain no foldable scaffolding: the
  // optimizer must keep them bit-identical in size (a regression guard on
  // builder quality).
  for (std::size_t n : {8u, 32u, 128u}) {
    OptimizeStats st;
    const auto c = sorters::MuxMergeSorter(n).build_circuit();
    const auto opt = optimize(c, &st);
    expect_equivalent(c, opt);
    EXPECT_EQ(st.before, st.after) << n;
  }
}

TEST(Optimize, ShrinksFishHardwareEnableTrees) {
  // The clocked datapath drives its write-enable demux trees from constant 1
  // and gates them with phase signals -- some of that folds away.
  sim::FishHardware hw(32, 4);
  // Use the observable circuit (register next-state wires marked as outputs)
  // so the savings reflect genuine constant folding, not dead-stripping the
  // sequential datapath.
  const auto c = hw.machine().observable_combinational();
  OptimizeStats st;
  const auto opt = optimize(c, &st);
  expect_equivalent(c, opt, /*max_exhaustive=*/0);
  EXPECT_LT(st.after, st.before);
  EXPECT_GT(st.folded + st.dead, 0u);
}

TEST(Optimize, PrefixSorterPreservedExhaustively) {
  const auto c = sorters::PrefixSorter(8).build_circuit();
  OptimizeStats st;
  const auto opt = optimize(c, &st);
  expect_equivalent(c, opt);
  for (std::uint64_t x = 0; x < 256; ++x) {
    EXPECT_TRUE(opt.eval(BitVec::from_bits_of(x, 8)).is_sorted_ascending());
  }
}

// ---------------------------------------------------------- mutation tests
// A deliberately corrupted IN-SWAP table must be caught by the exhaustive
// bisorted sweep -- evidence the Table I test actually bites.

TEST(Mutation, CorruptInSwapTableIsDetected) {
  auto bad = blocks::in_swap_patterns();
  std::swap(bad[2][0], bad[2][3]);  // break select=2's arrangement
  Circuit c;
  const auto in = c.inputs(16);
  const auto b2 = in[4];
  const auto b4 = in[12];
  const auto staged = blocks::four_way_swapper(c, in, b4, b2, bad);
  // Rebuild the merger manually around the corrupted first stage.
  const auto upper = std::vector<WireId>(staged.begin(), staged.begin() + 8);
  std::vector<WireId> lower(staged.begin() + 8, staged.end());
  const auto merged = sorters::build_mux_merger(c, lower);
  std::vector<WireId> bundle = upper;
  bundle.insert(bundle.end(), merged.begin(), merged.end());
  const auto out =
      blocks::four_way_swapper(c, bundle, b4, b2, blocks::out_swap_patterns());
  c.mark_outputs(out);

  std::size_t failures = 0;
  for (const auto& x : seqclass::enumerate_bisorted(16)) {
    failures += c.eval(x).is_sorted_ascending() ? 0u : 1u;
  }
  EXPECT_GT(failures, 0u) << "corrupted IN-SWAP table slipped past the sweep";
}

TEST(Mutation, CorruptOutSwapTableIsDetected) {
  auto bad = blocks::out_swap_patterns();
  bad[3] = {0, 1, 2, 3};  // select=3 must swap halves; identity is wrong
  Circuit c;
  const auto in = c.inputs(16);
  const auto b2 = in[4];
  const auto b4 = in[12];
  const auto staged =
      blocks::four_way_swapper(c, in, b4, b2, blocks::in_swap_patterns());
  std::vector<WireId> lower(staged.begin() + 8, staged.end());
  const auto merged = sorters::build_mux_merger(c, lower);
  std::vector<WireId> bundle(staged.begin(), staged.begin() + 8);
  bundle.insert(bundle.end(), merged.begin(), merged.end());
  c.mark_outputs(blocks::four_way_swapper(c, bundle, b4, b2, bad));

  std::size_t failures = 0;
  for (const auto& x : seqclass::enumerate_bisorted(16)) {
    failures += c.eval(x).is_sorted_ascending() ? 0u : 1u;
  }
  EXPECT_GT(failures, 0u);
}

}  // namespace
}  // namespace absort::netlist
