// Tests for the netlist tooling: structural validation, DOT export, fault
// injection (the failure-injection arm of the test strategy), and the
// levelized / parallel evaluator.

#include <gtest/gtest.h>

#include "absort/netlist/levelized.hpp"
#include "absort/netlist/transform.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/sorters/prefix_sorter.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort::netlist {
namespace {

TEST(Validate, AcceptsEveryBuilderProducedSorter) {
  for (std::size_t n : {4u, 16u, 64u}) {
    EXPECT_NO_THROW(validate(sorters::PrefixSorter(n).build_circuit())) << n;
    EXPECT_NO_THROW(validate(sorters::MuxMergeSorter(n).build_circuit())) << n;
  }
}

TEST(ToDot, RendersSmallCircuit) {
  Circuit c;
  const auto a = c.input();
  const auto b = c.input();
  const auto [lo, hi] = c.comparator(a, b);
  c.mark_output(lo);
  c.mark_output(hi);
  const auto dot = to_dot(c);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("Comparator"), std::string::npos);
  EXPECT_NE(dot.find("y0"), std::string::npos);
}

TEST(ToDot, RefusesHugeCircuits) {
  const auto c = sorters::MuxMergeSorter(1024).build_circuit();
  EXPECT_THROW((void)to_dot(c, 100), std::invalid_argument);
}

TEST(Faults, ApplicabilityRules) {
  Circuit c;
  const auto a = c.input();
  const auto b = c.input();
  const auto s = c.input();
  (void)c.switch2x2(a, b, s);          // component 3
  (void)c.and_gate(a, b);              // component 4
  EXPECT_TRUE(fault_applicable(c, {3, FaultKind::StuckControl0}));
  EXPECT_TRUE(fault_applicable(c, {3, FaultKind::OutputsSwapped}));
  EXPECT_FALSE(fault_applicable(c, {4, FaultKind::StuckControl0}));
  EXPECT_FALSE(fault_applicable(c, {4, FaultKind::OutputsSwapped}));
  EXPECT_FALSE(fault_applicable(c, {99, FaultKind::StuckControl0}));
}

TEST(Faults, StuckControlChangesSwitchBehaviour) {
  Circuit c;
  const auto a = c.input();
  const auto b = c.input();
  const auto s = c.input();
  const auto [o0, o1] = c.switch2x2(a, b, s);
  c.mark_output(o0);
  c.mark_output(o1);
  const BitVec crossed{1, 0, 1};
  EXPECT_EQ(c.eval(crossed).str(), "01");
  EXPECT_EQ(eval_with_fault(c, crossed, {3, FaultKind::StuckControl0}).str(), "10");
  const BitVec straight{1, 0, 0};
  EXPECT_EQ(eval_with_fault(c, straight, {3, FaultKind::StuckControl1}).str(), "01");
}

// The point of fault injection: a broken network must be *caught* by the
// sortedness property.  For each sorter, every applicable single fault on a
// steering element must produce at least one input whose output is unsorted
// or loses packets (over an exhaustive input sweep at n = 8).
template <typename Sorter>
void expect_faults_detectable(std::size_t n, double min_detect_rate) {
  Sorter s(n);
  const auto c = s.build_circuit();
  std::size_t applicable = 0, detected = 0;
  for (std::size_t comp = 0; comp < c.num_components(); ++comp) {
    for (FaultKind kind :
         {FaultKind::StuckControl0, FaultKind::StuckControl1, FaultKind::OutputsSwapped}) {
      const Fault f{comp, kind};
      if (!fault_applicable(c, f)) continue;
      ++applicable;
      bool caught = false;
      for (std::uint64_t x = 0; x < (std::uint64_t{1} << n) && !caught; ++x) {
        const auto in = BitVec::from_bits_of(x, n);
        const auto out = eval_with_fault(c, in, f);
        caught = !out.is_sorted_ascending() || out.count_ones() != in.count_ones();
      }
      detected += caught ? 1u : 0u;
    }
  }
  ASSERT_GT(applicable, 0u);
  EXPECT_GE(static_cast<double>(detected), min_detect_rate * static_cast<double>(applicable))
      << detected << "/" << applicable;
}

TEST(Faults, PrefixSorterFaultsAreDetected) {
  // Steering faults in Network 1 (swapper controls) are all observable;
  // OutputsSwapped on a demux-free datapath is too.
  expect_faults_detectable<sorters::PrefixSorter>(8, 0.90);
}

TEST(Faults, MuxMergeSorterFaultsAreDetected) {
  expect_faults_detectable<sorters::MuxMergeSorter>(8, 0.95);
}

// ----------------------------------------------------------- levelized

TEST(Levelized, MatchesSequentialEvalExhaustively) {
  for (std::size_t n : {8u, 16u}) {
    sorters::MuxMergeSorter s(n);
    auto base = s.build_circuit();
    const LevelizedCircuit lev(base);
    for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); x += 3) {
      const auto in = BitVec::from_bits_of(x, n);
      EXPECT_EQ(lev.eval(in), base.eval(in)) << in.str();
    }
  }
}

TEST(Levelized, LevelCountEqualsUnitDepthForUnitModels) {
  // With every component one level, #levels-1 = max topological depth,
  // which for comparator-only circuits equals the unit depth.
  sorters::MuxMergeSorter s(64);
  const LevelizedCircuit lev(s.build_circuit());
  EXPECT_EQ(lev.num_levels() - 1, static_cast<std::size_t>(64 == 0 ? 0 : 36));  // lg^2 64 = 36
}

TEST(Levelized, ParallelMatchesSequential) {
  sorters::PrefixSorter s(256);
  const LevelizedCircuit lev(s.build_circuit());
  ABSORT_SEEDED_RNG(rng, 7);
  for (int rep = 0; rep < 20; ++rep) {
    const auto in = workload::random_bits(rng, 256);
    const auto seq = lev.eval(in);
    EXPECT_EQ(lev.eval_parallel(in, 4), seq);
    EXPECT_EQ(lev.eval_parallel(in, 1), seq);
  }
}

TEST(Levelized, ReportsWidths) {
  sorters::MuxMergeSorter s(256);
  const LevelizedCircuit lev(s.build_circuit());
  EXPECT_GE(lev.max_level_width(), 256u);  // the input level alone is n wide
  EXPECT_GT(lev.num_levels(), 1u);
}

TEST(Levelized, ChecksInputArity) {
  sorters::MuxMergeSorter s(8);
  const LevelizedCircuit lev(s.build_circuit());
  EXPECT_THROW((void)lev.eval(BitVec::zeros(7)), std::invalid_argument);
  EXPECT_THROW((void)lev.eval_parallel(BitVec::zeros(9), 2), std::invalid_argument);
}

}  // namespace
}  // namespace absort::netlist
