// Tests for the Batcher-banyan switch: the sort-then-route architecture the
// paper's opening sentence alludes to ("many routing problems ... can be
// cast as sorting problems").

#include <gtest/gtest.h>

#include <numeric>
#include <optional>

#include "absort/networks/batcher_banyan.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/bitonic.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort::networks {
namespace {

std::vector<std::optional<std::size_t>> random_partial(Xoshiro256& rng, std::size_t n,
                                                       std::size_t actives) {
  const auto dests = workload::random_permutation(rng, n);
  std::vector<std::optional<std::size_t>> out(n);
  // Place `actives` packets on random inputs with distinct destinations.
  const auto inputs = workload::random_permutation(rng, n);
  for (std::size_t j = 0; j < actives; ++j) out[inputs[j]] = dests[j];
  return out;
}

TEST(BatcherBanyan, RoutesAllFullPermutationsOfEight) {
  BatcherBanyan bb(8);
  std::vector<std::size_t> dest(8);
  std::iota(dest.begin(), dest.end(), 0);
  do {
    std::vector<std::optional<std::size_t>> d(8);
    for (std::size_t i = 0; i < 8; ++i) d[i] = dest[i];
    const auto out = bb.route(d);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(out[dest[i]], i);
  } while (std::next_permutation(dest.begin(), dest.end()));
}

TEST(BatcherBanyan, RoutesRandomPartialPermutations) {
  ABSORT_SEEDED_RNG(rng, 71);
  for (std::size_t n : {16u, 64u, 256u}) {
    BatcherBanyan bb(n);
    for (std::size_t actives : {std::size_t{1}, n / 4, n / 2, n - 1, n}) {
      for (int rep = 0; rep < 10; ++rep) {
        const auto d = random_partial(rng, n, actives);
        const auto out = bb.route(d);
        std::size_t delivered = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (d[i]) {
            EXPECT_EQ(out[*d[i]], i) << "n=" << n << " actives=" << actives;
            ++delivered;
          }
        }
        EXPECT_EQ(delivered, actives);
        // Idle outputs report no packet.
        std::size_t occupied = 0;
        for (std::size_t o = 0; o < n; ++o) occupied += out[o] != n ? 1u : 0u;
        EXPECT_EQ(occupied, actives);
      }
    }
  }
}

TEST(BatcherBanyan, WorksWithBitonicSorterToo) {
  BatcherBanyan bb(32, std::make_unique<sorters::BitonicSorter>(32));
  ABSORT_SEEDED_RNG(rng, 73);
  for (int rep = 0; rep < 25; ++rep) {
    const auto d = random_partial(rng, 32, 20);
    const auto out = bb.route(d);
    for (std::size_t i = 0; i < 32; ++i) {
      if (d[i]) EXPECT_EQ(out[*d[i]], i);
    }
  }
}

TEST(BatcherBanyan, MovesPayloads) {
  BatcherBanyan bb(16);
  ABSORT_SEEDED_RNG(rng, 79);
  const auto d = random_partial(rng, 16, 9);
  std::vector<int> payload(16);
  for (std::size_t i = 0; i < 16; ++i) payload[i] = static_cast<int>(100 + i);
  const auto out = bb.permute_packets(d, payload);
  for (std::size_t i = 0; i < 16; ++i) {
    if (d[i]) {
      ASSERT_TRUE(out[*d[i]].has_value());
      EXPECT_EQ(*out[*d[i]], payload[i]);
    }
  }
}

TEST(BatcherBanyan, RejectsDuplicateDestinations) {
  BatcherBanyan bb(8);
  std::vector<std::optional<std::size_t>> d(8);
  d[0] = 3;
  d[5] = 3;
  EXPECT_THROW((void)bb.route(d), std::invalid_argument);
  d[5] = 9;
  EXPECT_THROW((void)bb.route(d), std::invalid_argument);
}

TEST(BatcherBanyan, CostIsSorterPlusFabric) {
  BatcherBanyan bb(256);
  const auto r = bb.cost_report();
  // Dominated by the word sorter: Theta(n lg^3 n); the fabric adds
  // (n/2) lg n switches.
  const double l = lg(256.0);
  EXPECT_GT(r.cost, 256.0 / 2 * l);  // at least the fabric
  EXPECT_LT(r.cost, 256.0 * l * l * l * 1.0);
  EXPECT_EQ(r.components,
            sorters::BatcherOemSorter::expected_comparators(256) +
                OmegaNetwork::switch_count(256));
}

}  // namespace
}  // namespace absort::networks
