// Direct unit coverage of the sorter registry's lookup and error paths --
// previously only reachable through CLI smoke tests.  The registry is the
// seam every front end (CLI, benches, SortService, the TCP edge) resolves
// sorters through, so its failure modes are contract, not incidentals:
// unknown names must throw listing every available sorter, and the
// duplicate-name guard must refuse a table where two entries collide.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/registry.hpp"

namespace absort {
namespace {

TEST(Registry, FindReturnsEntryWithMatchingName) {
  for (const auto& e : sorters::registry()) {
    const auto* found = sorters::find_sorter(e.name);
    ASSERT_NE(found, nullptr) << e.name;
    EXPECT_EQ(found, &e) << e.name;
  }
}

TEST(Registry, FindUnknownReturnsNull) {
  EXPECT_EQ(sorters::find_sorter("no-such-sorter"), nullptr);
  EXPECT_EQ(sorters::find_sorter(""), nullptr);
  // Prefixes and near-misses of real names must not match.
  EXPECT_EQ(sorters::find_sorter("batch"), nullptr);
  EXPECT_EQ(sorters::find_sorter("periodic-"), nullptr);
}

TEST(Registry, MakeUnknownThrowsListingEveryName) {
  try {
    (void)sorters::make_sorter("no-such-sorter", 8);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& ex) {
    const std::string msg = ex.what();
    EXPECT_NE(msg.find("no-such-sorter"), std::string::npos) << msg;
    for (const auto& e : sorters::registry()) {
      EXPECT_NE(msg.find(e.name), std::string::npos) << "missing " << e.name << " in: " << msg;
    }
  }
}

TEST(Registry, NamesListContainsTheNewFamilies) {
  const auto names = sorters::sorter_names();
  EXPECT_NE(names.find("periodic-k"), std::string::npos) << names;
  EXPECT_NE(names.find("multiway-k"), std::string::npos) << names;
}

TEST(Registry, DuplicateNameGuardThrows) {
  // The guard registry() itself runs at first use: a crafted table with a
  // colliding name must be refused.
  std::vector<sorters::RegistryEntry> dup = {
      {"batcher", "one", &sorters::BatcherOemSorter::make},
      {"bitonic", "two", &sorters::BatcherOemSorter::make},
      {"batcher", "three", &sorters::BatcherOemSorter::make},
  };
  EXPECT_THROW(sorters::validate_registry(dup), std::logic_error);
  // And the real table passes (otherwise registry() would already have
  // thrown on first use above).
  EXPECT_NO_THROW(sorters::validate_registry(sorters::registry()));
}

TEST(Registry, EveryFactoryConstructsASorterThatIdentifiesItself) {
  // The registry name is the serving-layer cache key; the sorter's own
  // name() is the diagnostic identity.  Some entries abbreviate ("batcher"
  // -> "batcher-oem", "periodic" -> "periodic-balanced"), so the contract is
  // a non-empty self-identification -- and the two new families, which set
  // the going-forward convention, must match their registry names exactly.
  for (const auto& e : sorters::registry()) {
    std::unique_ptr<sorters::BinarySorter> s;
    // Probe a few sizes; every entry accepts at least one (the exhaustive
    // sweep's coverage test enforces that).
    for (const std::size_t n : {16u, 8u, 4u}) {
      try {
        s = e.factory(n);
        break;
      } catch (const std::exception&) {
      }
    }
    ASSERT_NE(s, nullptr) << e.name;
    EXPECT_FALSE(s->name().empty()) << e.name;
  }
  EXPECT_EQ(sorters::make_sorter("periodic-k", 8)->name(), "periodic-k");
  EXPECT_EQ(sorters::make_sorter("multiway-k", 8)->name(), "multiway-k");
}

}  // namespace
}  // namespace absort
