// Tests for the bit-sliced batch evaluation engine: wordvec lane packing,
// the compiled word program (against Circuit::eval bit-for-bit), the
// threaded BatchRunner's determinism, and BinarySorter::sort_batch across
// every registered sorter.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "absort/netlist/batch_eval.hpp"
#include "absort/netlist/levelized.hpp"
#include "absort/netlist/program_opt.hpp"
#include "absort/sorters/alt_oem.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/bitonic.hpp"
#include "absort/sorters/columnsort.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/hybrid_oem.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/sorters/periodic_balanced.hpp"
#include "absort/sorters/prefix_sorter.hpp"
#include "absort/util/rng.hpp"
#include "absort/util/wordvec.hpp"

#include "test_seed.hpp"

namespace absort {
namespace {

using netlist::BatchRunner;
using netlist::BitSlicedEvaluator;
using sorters::BinarySorter;

std::vector<BitVec> random_batch(Xoshiro256& rng, std::size_t b, std::size_t n) {
  std::vector<BitVec> batch;
  batch.reserve(b);
  for (std::size_t i = 0; i < b; ++i) batch.push_back(workload::random_bits(rng, n));
  return batch;
}

TEST(Wordvec, PackUnpackRoundTrip) {
  ABSORT_SEEDED_RNG(rng, 7);
  const std::size_t n = 37;
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{17}, wordvec::kLanes}) {
    const auto batch = random_batch(rng, lanes + 3, n);
    std::vector<wordvec::Word> words(n);
    wordvec::pack_lanes(batch, 2, lanes, words);
    std::vector<BitVec> back(batch.size(), BitVec(n));
    wordvec::unpack_lanes(words, 2, lanes, back);
    for (std::size_t l = 0; l < lanes; ++l) EXPECT_EQ(back[2 + l], batch[2 + l]);
  }
}

TEST(Wordvec, LaneMask) {
  EXPECT_EQ(wordvec::lane_mask(0), 0u);
  EXPECT_EQ(wordvec::lane_mask(1), 1u);
  EXPECT_EQ(wordvec::lane_mask(64), ~std::uint64_t{0});
  EXPECT_EQ(wordvec::broadcast(0), 0u);
  EXPECT_EQ(wordvec::broadcast(1), ~std::uint64_t{0});
}

// Every primitive kind in one circuit (including a Switch4x4 with a
// registered pattern table), evaluated exhaustively against Circuit::eval.
TEST(BitSliced, AllPrimitivesExhaustive) {
  netlist::Circuit c;
  const auto ins = c.inputs(6);
  c.mark_output(c.not_gate(ins[0]));
  c.mark_output(c.and_gate(ins[0], ins[1]));
  c.mark_output(c.or_gate(ins[0], ins[1]));
  c.mark_output(c.xor_gate(ins[0], ins[1]));
  c.mark_output(c.constant(0));
  c.mark_output(c.constant(1));
  c.mark_output(c.mux(ins[0], ins[1], ins[2]));
  const auto [d0, d1] = c.demux(ins[0], ins[2]);
  c.mark_output(d0);
  c.mark_output(d1);
  const auto [lo, hi] = c.comparator(ins[0], ins[1]);
  c.mark_output(lo);
  c.mark_output(hi);
  const auto [s0, s1] = c.switch2x2(ins[0], ins[1], ins[2]);
  c.mark_output(s0);
  c.mark_output(s1);
  const netlist::Swap4Patterns pat = {{{0, 1, 2, 3}, {1, 0, 3, 2}, {2, 3, 0, 1}, {3, 0, 1, 2}}};
  const auto table = c.register_swap4_patterns(pat);
  const auto sw4 = c.switch4x4({ins[0], ins[1], ins[2], ins[3]}, ins[4], ins[5], table);
  for (const auto w : sw4) c.mark_output(w);

  std::vector<BitVec> batch;
  for (std::uint64_t x = 0; x < 64; ++x) batch.push_back(BitVec::from_bits_of(x, 6));
  const BitSlicedEvaluator ev(c);
  const auto got = ev.eval_batch(batch);
  ASSERT_EQ(got.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(got[i], c.eval(batch[i])) << "input " << batch[i].str();
  }
}

// All 256 8-bit inputs in one batch: exercises the 4-word-unrolled path end
// to end (one full 256-lane block) on a real sorter netlist.
TEST(BitSliced, Exhaustive256LaneBlock) {
  const auto sorter = sorters::PrefixSorter::make(8);
  const auto c = sorter->build_circuit();
  std::vector<BitVec> batch;
  for (std::uint64_t x = 0; x < 256; ++x) batch.push_back(BitVec::from_bits_of(x, 8));
  const BitSlicedEvaluator ev(c);
  const auto got = ev.eval_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(got[i], c.eval(batch[i])) << "input " << batch[i].str();
  }
}

TEST(BitSliced, LevelizedConstructorAgrees) {
  const auto c = sorters::MuxMergeSorter::make(16)->build_circuit();
  const netlist::LevelizedCircuit lc(c);
  ABSORT_SEEDED_RNG(rng, 11);
  const auto batch = random_batch(rng, 70, 16);
  const auto a = BitSlicedEvaluator(c).eval_batch(batch);
  const auto b = BitSlicedEvaluator(lc).eval_batch(batch);
  EXPECT_EQ(a, b);
}

TEST(BatchRunner, ThreadCountsAgreeAndAreDeterministic) {
  const auto c = sorters::PrefixSorter::make(64)->build_circuit();
  ABSORT_SEEDED_RNG(rng, 13);
  // 1000 vectors: 3 full 256-lane blocks plus a ragged tail.
  const auto batch = random_batch(rng, 1000, 64);
  BatchRunner one(c, {.threads = 1});
  BatchRunner many(c, {.threads = 8});
  const auto ref = one.run(batch);
  for (int rep = 0; rep < 3; ++rep) EXPECT_EQ(many.run(batch), ref);
  // A runner is reusable across differently-sized batches.
  const auto small = random_batch(rng, 3, 64);
  EXPECT_EQ(many.run(small), one.run(small));
  EXPECT_TRUE(many.run({}).empty());
}

TEST(BatchRunner, ArityChecked) {
  const auto c = sorters::MuxMergeSorter::make(8)->build_circuit();
  BatchRunner r(c);
  const std::vector<BitVec> bad{BitVec(7)};
  EXPECT_THROW((void)r.run(bad), std::invalid_argument);
}

// eval_parallel clamps its worker count to the circuit width: on a tiny
// circuit a large `threads` argument must not change the result (and must
// not spawn workers at all -- observable only as it staying fast/correct).
TEST(LevelizedCircuit, ParallelClampTinyCircuit) {
  const auto c = sorters::BatcherOemSorter::make(8)->build_circuit();
  const netlist::LevelizedCircuit lc(c);
  ABSORT_SEEDED_RNG(rng, 17);
  for (int i = 0; i < 10; ++i) {
    const auto in = workload::random_bits(rng, 8);
    EXPECT_EQ(lc.eval_parallel(in, 64), lc.eval(in));
  }
}

struct SorterCase {
  const char* name;
  sorters::SorterFactory make;
};

const SorterCase kSorters[] = {
    {"batcher", sorters::BatcherOemSorter::make},
    {"bitonic", sorters::BitonicSorter::make},
    {"alt-oem", sorters::AltOemSorter::make},
    {"periodic", sorters::PeriodicBalancedSorter::make},
    {"oe-transposition", sorters::OddEvenTranspositionSorter::make},
    {"prefix", sorters::PrefixSorter::make},
    {"mux-merger", sorters::MuxMergeSorter::make},
    {"hybrid-oem", sorters::HybridOemSorter::make},
    {"fish", sorters::FishSorter::make},
    {"columnsort", sorters::ColumnsortSorter::make},
};

class SortBatch : public ::testing::TestWithParam<SorterCase> {};

// sort_batch == per-vector ground truth for every sorter and every awkward
// batch shape: B = 1, B not a multiple of 64, ragged 256-block tails, and
// all-zero / all-one lanes mixed in.
TEST_P(SortBatch, AgreesWithSingleVectorEvaluation) {
  const auto& param = GetParam();
  ABSORT_SEEDED_RNG(rng, 23);
  for (const std::size_t n : {std::size_t{4}, std::size_t{16}, std::size_t{64}}) {
    const auto sorter = param.make(n);
    for (const std::size_t b : {std::size_t{1}, std::size_t{5}, std::size_t{64},
                                std::size_t{130}, std::size_t{520}}) {
      auto batch = random_batch(rng, b, n);
      batch.front() = BitVec::zeros(n);
      batch.back() = BitVec::ones(n);
      // Ground truth: the netlist itself where one exists, else the value
      // face (which the suite separately proves equal to the netlist).
      std::vector<BitVec> expect;
      if (sorter->is_combinational()) {
        const auto c = sorter->build_circuit();
        for (const auto& v : batch) expect.push_back(c.eval(v));
      } else {
        for (const auto& v : batch) expect.push_back(sorter->sort(v));
      }
      EXPECT_EQ(sorter->sort_batch(batch, {.threads = 1}), expect)
          << param.name << " n=" << n << " b=" << b << " (1 thread)";
      EXPECT_EQ(sorter->sort_batch(batch, {.threads = 4}), expect)
          << param.name << " n=" << n << " b=" << b << " (4 threads)";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSorters, SortBatch, ::testing::ValuesIn(kSorters),
                         [](const auto& info) {
                           std::string s = info.param.name;
                           for (auto& ch : s) {
                             if (ch == '-') ch = '_';
                           }
                           return s;
                         });

// Every circuit any registered sorter's batch path compiles: the netlist for
// combinational sorters, the sub-circuits (small sorter / k-way merger /
// column sorter) for the model-B ones.
std::vector<netlist::Circuit> batch_circuits_of(const BinarySorter& s) {
  std::vector<netlist::Circuit> out;
  if (s.is_combinational()) {
    out.push_back(s.build_circuit());
  } else if (const auto* fish = dynamic_cast<const sorters::FishSorter*>(&s)) {
    out.push_back(fish->small_sorter_circuit());
    out.push_back(fish->merger_circuit());
  } else if (const auto* cs = dynamic_cast<const sorters::ColumnsortSorter*>(&s)) {
    out.push_back(cs->column_sorter_circuit());
  }
  return out;
}

// Differential property test: the optimized word program is bit-identical to
// the unoptimized lowering on every circuit the batch paths compile, across
// ragged batch sizes that exercise the 64-, 256-, and 512-lane interpreter
// paths and both 1-thread and threaded runs.
TEST(ProgramOptimizer, OptimizedMatchesUnoptimizedEverySorter) {
  ABSORT_SEEDED_RNG(rng, 29);
  for (const auto& sc : kSorters) {
    for (const std::size_t n : {std::size_t{16}, std::size_t{64}}) {
      const auto sorter = sc.make(n);
      for (const auto& c : batch_circuits_of(*sorter)) {
        const BitSlicedEvaluator opt(c, {.opt_level = 1});
        const BitSlicedEvaluator raw(c, {.opt_level = 0});
        EXPECT_LE(opt.stats().ops_after, opt.stats().ops_before) << sc.name;
        for (const std::size_t b : {std::size_t{1}, std::size_t{65}, std::size_t{257},
                                    std::size_t{520}}) {
          const auto batch = random_batch(rng, b, opt.num_inputs());
          EXPECT_EQ(opt.eval_batch(batch), raw.eval_batch(batch))
              << sc.name << " n=" << n << " b=" << b;
        }
        // The threaded runner and the optimization level commute.
        BatchRunner opt_many(c, {.threads = 4, .opt_level = 1});
        BatchRunner raw_many(c, {.threads = 4, .opt_level = 0});
        const auto batch = random_batch(rng, 300, opt.num_inputs());
        EXPECT_EQ(opt_many.run(batch), raw_many.run(batch)) << sc.name << " n=" << n;
      }
    }
  }
}

// The acceptance bar from the issue: the optimizer removes at least 15% of
// the word ops from the adaptive sorters' netlists.
TEST(ProgramOptimizer, ShrinksAdaptiveSorterProgramsAtLeast15Percent) {
  const struct {
    const char* name;
    sorters::SorterFactory make;
  } cases[] = {
      {"prefix", sorters::PrefixSorter::make},
      {"mux-merger", sorters::MuxMergeSorter::make},
  };
  for (const auto& cse : cases) {
    for (const std::size_t n : {std::size_t{16}, std::size_t{64}, std::size_t{256}}) {
      const BitSlicedEvaluator ev(cse.make(n)->build_circuit());
      const auto& st = ev.stats();
      EXPECT_LE(st.ops_after * 100, st.ops_before * 85)
          << cse.name << " n=" << n << ": " << st.ops_before << " -> " << st.ops_after;
      EXPECT_LE(st.slots_after, st.slots_before);
      EXPECT_LE(st.peak_live, st.slots_after);
    }
  }
}

// The single-caller contract is enforced, not just documented: a second
// thread entering run() while one is inside throws std::logic_error instead
// of corrupting the shared job state.  A worker hammers run() in a loop
// (each call takes milliseconds) while this thread keeps calling run() too,
// so the calls overlap on any scheduler within a couple of attempts; the
// deadline only bounds a pathological machine.
TEST(BatchRunner, ConcurrentRunThrowsLogicError) {
  const auto c = sorters::PrefixSorter::make(256)->build_circuit();
  BatchRunner r(c, {.threads = 2});
  ABSORT_SEEDED_RNG(rng, 43);
  const auto batch = random_batch(rng, 4096, 256);
  std::atomic<bool> stop{false};
  std::atomic<int> threw{0};
  std::thread worker([&] {
    while (!stop.load()) {
      try {
        (void)r.run(batch);
      } catch (const std::logic_error&) {
        threw.fetch_add(1);
      }
    }
  });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (threw.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    try {
      (void)r.run(batch);
    } catch (const std::logic_error&) {
      threw.fetch_add(1);
    }
  }
  stop.store(true);
  worker.join();
  EXPECT_GE(threw.load(), 1) << "two concurrent run() calls never collided";
  // The runner stays usable after a rejected entry.
  EXPECT_EQ(r.run(batch), BatchRunner(c, {.threads = 1}).run(batch));
}

// The one BatchOptions face everything takes: every spelling of {threads,
// opt_level, backend} produces identical output, and the explicit backends
// agree with whatever Auto resolves to.
TEST(BatchOptions, SpellingsAndBackendsAgree) {
  const auto sorter = sorters::FishSorter::make(64);
  ABSORT_SEEDED_RNG(rng, 47);
  const auto batch = random_batch(rng, 130, 64);
  const auto ref = sorter->sort_batch(batch, {.threads = 1});
  EXPECT_EQ(sorter->sort_batch(batch), ref);  // defaulted options
  EXPECT_EQ(sorter->sort_batch(batch, {.threads = 0, .opt_level = 0}), ref);
  std::vector<BitVec> out(batch.size());
  sorter->sort_batch(batch, std::span<BitVec>(out), {.threads = 2});
  EXPECT_EQ(out, ref);

  const auto c = sorters::PrefixSorter::make(32)->build_circuit();
  const auto cbatch = random_batch(rng, 70, 32);
  BatchRunner auto_be(c, {.backend = netlist::Backend::Auto});
  for (const auto be : {netlist::Backend::Interpreter, netlist::Backend::Simd}) {
    BatchRunner r(c, {.backend = be});
    EXPECT_EQ(r.backend(), be);
    EXPECT_EQ(r.run(cbatch), auto_be.run(cbatch)) << netlist::to_string(be);
  }
  // Auto never stays Auto once resolved.
  EXPECT_NE(auto_be.backend(), netlist::Backend::Auto);
}

// The Backend enum's string faces round-trip, and unknown names are rejected
// (the CLI leans on this to print the valid set).
TEST(BatchOptions, BackendParseRoundTrip) {
  using netlist::Backend;
  for (const auto be :
       {Backend::Auto, Backend::Interpreter, Backend::Simd, Backend::Native}) {
    Backend parsed{};
    ASSERT_TRUE(netlist::parse_backend(netlist::to_string(be), parsed));
    EXPECT_EQ(parsed, be);
  }
  Backend out{};
  EXPECT_FALSE(netlist::parse_backend("bogus", out));
  EXPECT_FALSE(netlist::parse_backend("", out));
  EXPECT_STREQ(netlist::backend_names(), "auto|interpreter|simd|native");
}

// make_batch_sorter: the compile-once engine the serving layer caches.  One
// engine, many run() calls, bit-identical to sort_batch for every sorter.
TEST(BatchSorter, CompiledEngineMatchesSortBatchEverySorter) {
  ABSORT_SEEDED_RNG(rng, 53);
  for (const auto& sc : kSorters) {
    const auto sorter = sc.make(16);
    const auto engine = sorter->make_batch_sorter(sorters::BatchOptions{.threads = 1});
    ASSERT_NE(engine, nullptr) << sc.name;
    EXPECT_EQ(engine->size(), 16u) << sc.name;
    EXPECT_NE(engine->backend(), sorters::Backend::Auto) << sc.name;
    for (const std::size_t b : {std::size_t{1}, std::size_t{70}, std::size_t{300}}) {
      const auto batch = random_batch(rng, b, 16);
      EXPECT_EQ(engine->run(batch), sorter->sort_batch(batch, {.threads = 1}))
          << sc.name << " b=" << b;
    }
    const std::vector<BitVec> bad{BitVec(15)};
    EXPECT_THROW((void)engine->run(bad), std::invalid_argument) << sc.name;
    std::vector<BitVec> short_out(2);
    const auto batch = random_batch(rng, 3, 16);
    EXPECT_THROW(engine->run(batch, std::span<BitVec>(short_out)), std::invalid_argument)
        << sc.name;
  }
}

TEST(BatchRunner, CallerBufferOverloadReusesStorage) {
  const auto c = sorters::PrefixSorter::make(16)->build_circuit();
  BatchRunner r(c, {.threads = 2});
  ABSORT_SEEDED_RNG(rng, 31);
  const auto batch = random_batch(rng, 300, 16);
  std::vector<BitVec> out(batch.size());
  r.run(batch, std::span<BitVec>(out));
  EXPECT_EQ(out, r.run(batch));
  // A pre-sized output buffer is filled in place (no reallocation).
  const Bit* p0 = out.front().data().data();
  r.run(batch, std::span<BitVec>(out));
  EXPECT_EQ(out.front().data().data(), p0);
  EXPECT_EQ(out, r.run(batch));
  std::vector<BitVec> bad(batch.size() - 1);
  EXPECT_THROW(r.run(batch, std::span<BitVec>(bad)), std::invalid_argument);
}

// build_kway_merger's sorted-bit outputs against the value-level kway_merge
// model, on random inputs whose k groups are each sorted (its precondition).
TEST(FishSorter, KwayMergerCircuitMatchesValueModel) {
  ABSORT_SEEDED_RNG(rng, 37);
  for (const std::size_t m : {std::size_t{16}, std::size_t{64}}) {
    for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
      netlist::Circuit c;
      const auto in = c.inputs(m);
      c.mark_outputs(sorters::build_kway_merger(c, in, k));
      const std::size_t g = m / k;
      for (int it = 0; it < 20; ++it) {
        auto v = workload::random_bits(rng, m);
        for (std::size_t blk = 0; blk < k; ++blk) {
          std::size_t ones = 0;
          for (std::size_t i = 0; i < g; ++i) ones += v[blk * g + i];
          for (std::size_t i = 0; i < g; ++i) v[blk * g + i] = i >= g - ones ? 1 : 0;
        }
        EXPECT_EQ(c.eval(v), sorters::kway_merge(v, k))
            << "m=" << m << " k=" << k << " in=" << v.str();
      }
    }
  }
}

}  // namespace
}  // namespace absort
