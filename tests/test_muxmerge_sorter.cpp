// Tests for Network 2, the mux-merger binary sorter (Fig. 6), Theorem 3, and
// the Table I merge decisions (experiments E-T1, E-F6).

#include <gtest/gtest.h>

#include "absort/netlist/analyze.hpp"
#include "absort/seqclass/seqclass.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort::sorters {
namespace {

class MuxMergeExhaustiveTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MuxMergeExhaustiveTest, SortsAllInputs) {
  const std::size_t n = GetParam();
  MuxMergeSorter s(n);
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
    const auto in = BitVec::from_bits_of(x, n);
    const auto out = s.sort(in);
    EXPECT_TRUE(out.is_sorted_ascending()) << in.str() << " -> " << out.str();
    EXPECT_EQ(out.count_ones(), in.count_ones());
  }
}

TEST_P(MuxMergeExhaustiveTest, NetlistMatchesValueSimulation) {
  const std::size_t n = GetParam();
  MuxMergeSorter s(n);
  const auto circuit = s.build_circuit();
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
    const auto in = BitVec::from_bits_of(x, n);
    EXPECT_EQ(circuit.eval(in), s.sort(in)) << in.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MuxMergeExhaustiveTest, ::testing::Values(2, 4, 8, 16));

TEST(MuxMergeSorter, SortsRandomLargeInputs) {
  ABSORT_SEEDED_RNG(rng, 51);
  for (std::size_t n : {32u, 256u, 1024u, 4096u}) {
    MuxMergeSorter s(n);
    for (int rep = 0; rep < 25; ++rep) {
      const auto in = workload::random_bits(rng, n);
      const auto out = s.sort(in);
      EXPECT_TRUE(out.is_sorted_ascending());
      EXPECT_EQ(out.count_ones(), in.count_ones());
    }
  }
}

TEST(MuxMergeSorter, NetlistMatchesValueSimulationRandomLarge) {
  ABSORT_SEEDED_RNG(rng, 53);
  for (std::size_t n : {32u, 64u, 128u, 256u}) {
    MuxMergeSorter s(n);
    const auto circuit = s.build_circuit();
    for (int rep = 0; rep < 50; ++rep) {
      const auto in = workload::random_bits(rng, n);
      EXPECT_EQ(circuit.eval(in), s.sort(in));
    }
  }
}

// --------------------------------------------------------------- Theorem 3

class Theorem3Test : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Theorem3Test, TwoQuartersCleanTwoFormBisorted) {
  const std::size_t n = GetParam();
  const std::size_t q = n / 4;
  for (const auto& x : seqclass::enumerate_bisorted(n)) {
    int clean = 0;
    std::vector<BitVec> dirty;
    for (std::size_t j = 0; j < 4; ++j) {
      const auto quarter = x.slice(j * q, q);
      if (seqclass::is_clean_sorted(quarter)) {
        ++clean;
      } else {
        dirty.push_back(quarter);
      }
    }
    EXPECT_GE(clean, 2) << x.str();
    if (dirty.size() == 2) {
      EXPECT_TRUE(seqclass::is_bisorted(dirty[0].concat(dirty[1]))) << x.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Theorem3Test, ::testing::Values(4, 8, 16, 32, 64));

TEST(Theorem3, PaperExample3) {
  // 0001/0001: quarters 00, 01, 00, 01 -- two clean, the others give 0101.
  const auto x = BitVec::parse("00010001");
  EXPECT_TRUE(seqclass::is_bisorted(x));
  EXPECT_TRUE(seqclass::is_clean_sorted(x.slice(0, 2)));
  EXPECT_TRUE(seqclass::is_clean_sorted(x.slice(4, 2)));
  EXPECT_TRUE(seqclass::is_bisorted(x.slice(2, 2).concat(x.slice(6, 2))));
}

// ------------------------------------------------------- Table I (E-T1)

TEST(TableI, MergerSortsEveryBisortedInputAtManySizes) {
  // The merger must merge *every* bisorted sequence (exhaustive over the
  // (n/2+1)^2 patterns).
  for (std::size_t n : {4u, 8u, 16u, 32u, 64u, 128u}) {
    netlist::Circuit c;
    const auto in = c.inputs(n);
    c.mark_outputs(build_mux_merger(c, in));
    for (const auto& x : seqclass::enumerate_bisorted(n)) {
      const auto out = c.eval(x);
      EXPECT_TRUE(out.is_sorted_ascending()) << "n=" << n << " " << x.str() << " -> " << out.str();
      EXPECT_EQ(out.count_ones(), x.count_ones());
    }
  }
}

TEST(TableI, DecisionRowsMatchQuarterDispositions) {
  // For every bisorted input, the decision row must describe reality:
  //  select 0 -> q0,q2 all-0 and q1++q3 bisorted
  //  select 1 -> q0 all-0, q3 all-1, q1++q2 bisorted
  //  select 2 -> q1 all-1, q2 all-0, q3++q0 bisorted
  //  select 3 -> q1,q3 all-1 and q0++q2 bisorted
  const std::size_t n = 32, q = n / 4;
  for (const auto& x : seqclass::enumerate_bisorted(n)) {
    const auto d = mux_merger_decision(x);
    const auto quarter = [&](std::size_t j) { return x.slice(j * q, q); };
    switch (d.select) {
      case 0:
        EXPECT_EQ(quarter(0), BitVec::zeros(q)) << x.str();
        EXPECT_EQ(quarter(2), BitVec::zeros(q)) << x.str();
        EXPECT_TRUE(seqclass::is_bisorted(quarter(1).concat(quarter(3)))) << x.str();
        break;
      case 1:
        EXPECT_EQ(quarter(0), BitVec::zeros(q)) << x.str();
        EXPECT_EQ(quarter(3), BitVec::ones(q)) << x.str();
        EXPECT_TRUE(seqclass::is_bisorted(quarter(1).concat(quarter(2)))) << x.str();
        break;
      case 2:
        EXPECT_EQ(quarter(1), BitVec::ones(q)) << x.str();
        EXPECT_EQ(quarter(2), BitVec::zeros(q)) << x.str();
        EXPECT_TRUE(seqclass::is_bisorted(quarter(3).concat(quarter(0)))) << x.str();
        break;
      case 3:
        EXPECT_EQ(quarter(1), BitVec::ones(q)) << x.str();
        EXPECT_EQ(quarter(3), BitVec::ones(q)) << x.str();
        EXPECT_TRUE(seqclass::is_bisorted(quarter(0).concat(quarter(2)))) << x.str();
        break;
      default:
        FAIL() << "select out of range";
    }
  }
}

TEST(TableI, OutSwapUsesExactlyThreePatterns) {
  // The paper's OUT-SWAP set has three permutations; selects 1 and 2 share
  // one.  (The IN-SWAP table is documented in EXPERIMENTS.md.)
  const auto d1 = mux_merger_decision(BitVec::parse("00011111"));  // select 1
  const auto d2 = mux_merger_decision(BitVec::parse("11110001"));  // select 2
  EXPECT_EQ(d1.out_pattern, d2.out_pattern);
  const auto d0 = mux_merger_decision(BitVec::parse("00010001"));  // select 0
  EXPECT_EQ(d0.out_pattern, (std::array<std::uint8_t, 4>{0, 1, 2, 3}));
  const auto d3 = mux_merger_decision(BitVec::parse("01110111"));  // select 3
  EXPECT_EQ(d3.out_pattern, (std::array<std::uint8_t, 4>{2, 3, 0, 1}));
}

TEST(TableI, DecisionValidatesInput) {
  EXPECT_THROW((void)mux_merger_decision(BitVec::parse("0110")), std::invalid_argument);
  EXPECT_THROW((void)mux_merger_decision(BitVec::parse("01")), std::invalid_argument);
}

// ------------------------------------------------- structural (E-F6)

TEST(MuxMergeSorter, UnitCostMatchesClosedForm) {
  // C(n) = 4 n lg n - 7n + 7 exactly (merger Cm(m) = 4m - 7).
  for (std::size_t n : {2u, 4u, 8u, 16u, 64u, 256u, 1024u}) {
    MuxMergeSorter s(n);
    const auto r = netlist::analyze_unit(s.build_circuit());
    EXPECT_DOUBLE_EQ(r.cost, MuxMergeSorter::expected_unit_cost(n)) << n;
  }
}

TEST(MuxMergeSorter, UnitDepthIsExactlyLgSquared) {
  // D(n) = lg^2 n: confirms the abstract's O(lg^2 n) and documents the
  // printed "D(n) = 2 lg n" as a typo (see EXPERIMENTS.md).
  for (std::size_t n : {2u, 4u, 8u, 16u, 64u, 256u, 1024u}) {
    MuxMergeSorter s(n);
    const auto r = netlist::analyze_unit(s.build_circuit());
    EXPECT_DOUBLE_EQ(r.depth, MuxMergeSorter::expected_unit_depth(n)) << n;
  }
}

TEST(MuxMergerBlock, CostIsFourMMinusSeven) {
  for (std::size_t m : {4u, 8u, 16u, 64u, 256u}) {
    netlist::Circuit c;
    const auto in = c.inputs(m);
    c.mark_outputs(build_mux_merger(c, in));
    const auto r = netlist::analyze_unit(c);
    EXPECT_DOUBLE_EQ(r.cost, 4.0 * static_cast<double>(m) - 7.0) << m;
    EXPECT_DOUBLE_EQ(r.depth, 2.0 * static_cast<double>(ilog2(m)) - 1.0) << m;
  }
}

TEST(MuxMergeSorter, RejectsBadSizes) {
  EXPECT_THROW(MuxMergeSorter(0), std::invalid_argument);
  EXPECT_THROW(MuxMergeSorter(3), std::invalid_argument);
  EXPECT_THROW(MuxMergeSorter(24), std::invalid_argument);
}

}  // namespace
}  // namespace absort::sorters
