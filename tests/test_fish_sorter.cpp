// Tests for Network 3, the time-multiplexed fish binary sorter
// (Figs. 7-9, Theorem 4, eqs. (7)-(26); experiments E-F7/E-F8/E-F9).

#include <gtest/gtest.h>

#include "absort/seqclass/seqclass.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"

#include "test_seed.hpp"

namespace absort::sorters {
namespace {

class FishExhaustiveTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(FishExhaustiveTest, SortsAllInputs) {
  const auto [n, k] = GetParam();
  FishSorter s(n, k);
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
    const auto in = BitVec::from_bits_of(x, n);
    const auto out = s.sort(in);
    EXPECT_TRUE(out.is_sorted_ascending())
        << "n=" << n << " k=" << k << " " << in.str() << " -> " << out.str();
    EXPECT_EQ(out.count_ones(), in.count_ones());
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FishExhaustiveTest,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{4, 2},
                                           std::pair<std::size_t, std::size_t>{8, 2},
                                           std::pair<std::size_t, std::size_t>{8, 4},
                                           std::pair<std::size_t, std::size_t>{16, 2},
                                           std::pair<std::size_t, std::size_t>{16, 4},
                                           std::pair<std::size_t, std::size_t>{16, 8}));

TEST(FishSorter, SortsRandomLargeInputs) {
  ABSORT_SEEDED_RNG(rng, 61);
  for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
    for (std::size_t k : {std::size_t{2}, std::size_t{8}, FishSorter::default_k(n)}) {
      FishSorter s(n, k);
      for (int rep = 0; rep < 15; ++rep) {
        const auto in = workload::random_bits(rng, n);
        const auto out = s.sort(in);
        EXPECT_TRUE(out.is_sorted_ascending()) << "n=" << n << " k=" << k;
        EXPECT_EQ(out.count_ones(), in.count_ones());
      }
    }
  }
}

TEST(FishSorter, RouteIsSortingPermutation) {
  FishSorter s(64, 8);
  ABSORT_SEEDED_RNG(rng, 67);
  for (int rep = 0; rep < 100; ++rep) {
    const auto tags = workload::random_bits(rng, 64);
    const auto perm = s.route(tags);
    std::vector<bool> seen(64, false);
    for (auto p : perm) {
      ASSERT_LT(p, 64u);
      EXPECT_FALSE(seen[p]);
      seen[p] = true;
    }
    BitVec routed(64);
    for (std::size_t i = 0; i < 64; ++i) routed[i] = tags[perm[i]];
    EXPECT_TRUE(routed.is_sorted_ascending());
  }
}

TEST(FishSorter, RejectsBadShapes) {
  EXPECT_THROW(FishSorter(16, 1), std::invalid_argument);
  EXPECT_THROW(FishSorter(16, 3), std::invalid_argument);
  EXPECT_THROW(FishSorter(16, 16), std::invalid_argument);
  EXPECT_THROW(FishSorter(12, 2), std::invalid_argument);
  EXPECT_THROW(FishSorter(2, 2), std::invalid_argument);
}

TEST(FishSorter, DefaultKTracksLgN) {
  EXPECT_EQ(FishSorter::default_k(16), 4u);
  EXPECT_EQ(FishSorter::default_k(1024), 16u);   // next_pow2(10)
  EXPECT_EQ(FishSorter::default_k(65536), 16u);  // lg = 16 exactly
  EXPECT_EQ(FishSorter::default_k(4), 2u);       // clamped to n/2
}

TEST(FishSorter, IsNotCombinational) {
  FishSorter s(16, 4);
  EXPECT_FALSE(s.is_combinational());
  EXPECT_THROW(s.build_circuit(), std::logic_error);
}

// ------------------------------------------------------------ k-way merger

class KwayMergerTest : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(KwayMergerTest, MergesEveryKSortedInput) {
  const auto [n, k] = GetParam();
  for (const auto& v : seqclass::enumerate_k_sorted(n, k)) {
    const auto out = kway_merge(v, k);
    EXPECT_TRUE(out.is_sorted_ascending()) << v.str(n / k) << " -> " << out.str();
    EXPECT_EQ(out.count_ones(), v.count_ones());
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, KwayMergerTest,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{8, 2},
                                           std::pair<std::size_t, std::size_t>{8, 4},
                                           std::pair<std::size_t, std::size_t>{16, 4},
                                           std::pair<std::size_t, std::size_t>{32, 4},
                                           std::pair<std::size_t, std::size_t>{16, 8},
                                           std::pair<std::size_t, std::size_t>{64, 8}));

TEST(KwayMerger, RandomLargeKSorted) {
  ABSORT_SEEDED_RNG(rng, 71);
  for (int rep = 0; rep < 100; ++rep) {
    const auto v = workload::random_k_sorted(rng, 1024, 16);
    const auto out = kway_merge(v, 16);
    EXPECT_TRUE(out.is_sorted_ascending());
    EXPECT_EQ(out.count_ones(), v.count_ones());
  }
}

// Fig. 8: the 16-input four-way mux-merger worked example.
TEST(KwayMerger, Fig8WorkedExample) {
  const auto in = BitVec::parse("1111/0001/0011/0111");
  EXPECT_TRUE(seqclass::is_k_sorted(in, 4));
  const auto out = kway_merge(in, 4);
  EXPECT_EQ(out.str(4), "0000/0011/1111/1111");  // 10 ones, sorted
}

// Fig. 9: the eight-input four-way clean sorter worked example.
TEST(CleanSorter, Fig9WorkedExample) {
  const auto in = BitVec::parse("11/00/11/11");  // Example 4's clean half
  EXPECT_TRUE(seqclass::is_clean_k_sorted(in, 4));
  EXPECT_EQ(kway_clean_sort(in, 4).str(2), "00/11/11/11");
}

TEST(CleanSorter, SortsEveryCleanKSortedInput) {
  for (std::size_t k : {2u, 4u, 8u}) {
    const std::size_t n = 4 * k;
    for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << k); ++mask) {
      BitVec v;
      for (std::size_t b = 0; b < k; ++b) {
        const Bit bit = static_cast<Bit>((mask >> b) & 1);
        v = v.concat(bit ? BitVec::ones(n / k) : BitVec::zeros(n / k));
      }
      const auto out = kway_clean_sort(v, k);
      EXPECT_TRUE(out.is_sorted_ascending()) << v.str();
      EXPECT_EQ(out.count_ones(), v.count_ones());
    }
  }
}

// -------------------------------------------------------- cost / timing

TEST(FishSorter, UnitCostWithinPaperBound) {
  // eq. (17): measured unit cost must stay below the paper's closed-form
  // bound at every (n, k).
  const auto unit = netlist::CostModel::paper_unit();
  for (std::size_t n : {16u, 64u, 256u, 1024u, 4096u}) {
    for (std::size_t k : {std::size_t{2}, std::size_t{4}, FishSorter::default_k(n)}) {
      if (k > n / 2) continue;
      FishSorter s(n, k);
      const auto r = s.cost_report(unit);
      EXPECT_LE(r.cost, FishSorter::paper_cost(n, k)) << "n=" << n << " k=" << k;
      EXPECT_GT(r.cost, 0) << "n=" << n << " k=" << k;
    }
  }
}

TEST(FishSorter, CostIsLinearAtDefaultK) {
  // eq. (19): C(n, lg n) = O(n) with constant <= 17 (plus polylog slack).
  const auto unit = netlist::CostModel::paper_unit();
  for (std::size_t n : {256u, 1024u, 4096u, 16384u}) {
    FishSorter s(n, FishSorter::default_k(n));
    const auto r = s.cost_report(unit);
    const double l = lg(static_cast<double>(n));
    EXPECT_LE(r.cost, 17.0 * static_cast<double>(n) + 5 * l * l * lg(l) + 4 * l * lg(l)) << n;
  }
}

TEST(FishSorter, CostRatioToNShrinksTowardConstant) {
  // The per-element cost must not grow with n (that is what O(n) means here).
  const auto unit = netlist::CostModel::paper_unit();
  const double r1 = FishSorter(1024, 16).cost_report(unit).cost / 1024.0;
  const double r2 = FishSorter(16384, 16).cost_report(unit).cost / 16384.0;
  EXPECT_LE(r2, r1 * 1.05);
  EXPECT_LE(r2, 17.0);
}

TEST(FishSorter, DepthWithinPaperBound) {
  const auto unit = netlist::CostModel::paper_unit();
  for (std::size_t n : {64u, 256u, 1024u}) {
    const std::size_t k = FishSorter::default_k(n);
    FishSorter s(n, k);
    EXPECT_LE(s.cost_report(unit).depth, FishSorter::paper_depth_bound(n, k)) << n;
  }
}

TEST(FishSorter, PipeliningHelpsAndBoundsHold) {
  for (std::size_t n : {256u, 1024u, 4096u, 16384u}) {
    FishSorter s(n, FishSorter::default_k(n));
    const auto t = s.timing();
    EXPECT_LT(t.total_pipelined, t.total_unpipelined) << n;
    const double l = lg(static_cast<double>(n));
    // eq. (24): unpipelined = O(lg^3 n); eq. (26): pipelined = O(lg^2 n).
    EXPECT_LE(t.total_unpipelined, 8.0 * l * l * l) << n;
    EXPECT_LE(t.total_pipelined, 8.0 * l * l) << n;
  }
}

TEST(FishSorter, MergerCostTracksEquation15) {
  // eq. (15): C_km(n,k) = 11n - 11k + k lg(n/k) + 4k lg k lg(n/k) + 4k lg k.
  // Our merger substitutes exact sub-blocks for the paper's rounded ones
  // (mux trees cost n-k not n, mux-merger 4m-7 not 4m, k-sorter
  // 4k lg k - 7k + 7), so the measured cost must track the closed form
  // within a modest band from below.
  const auto unit = netlist::CostModel::paper_unit();
  for (auto [n, k] : {std::pair<std::size_t, std::size_t>{256, 4},
                      std::pair<std::size_t, std::size_t>{1024, 8},
                      std::pair<std::size_t, std::size_t>{4096, 16}}) {
    FishSorter s(n, k);
    const double total = s.cost_report(unit).cost;
    // Subtract the front end (mux + small sorter + demux) to isolate the
    // merger, using the same exact sub-reports the implementation sums.
    const std::size_t g = n / k;
    const double front =
        2.0 * (static_cast<double>(n) - static_cast<double>(g)) +  // mux + demux trees
        netlist::analyze_unit(MuxMergeSorter(g).build_circuit()).cost;
    const double merger = total - front;
    const double nn = static_cast<double>(n), kk = static_cast<double>(k);
    const double lnk = lg(nn / kk), lk = lg(kk);
    const double eq15 = 11 * nn - 11 * kk + kk * lnk + 4 * kk * lk * lnk + 4 * kk * lk;
    EXPECT_LE(merger, eq15) << "n=" << n << " k=" << k;
    EXPECT_GE(merger, 0.75 * eq15) << "n=" << n << " k=" << k;
  }
}

TEST(FishSorter, MergerDepthTracksEquation16) {
  // eq. (16): D_km(n,k) <= lg(n/k) + 2 lg n lg(n/k) + 2 lg^2 k.  The
  // dataflow depth in cost_report must respect the bound.
  const auto unit = netlist::CostModel::paper_unit();
  for (auto [n, k] : {std::pair<std::size_t, std::size_t>{256, 4},
                      std::pair<std::size_t, std::size_t>{1024, 8}}) {
    FishSorter s(n, k);
    const double total_depth = s.cost_report(unit).depth;
    const double nn = static_cast<double>(n), kk = static_cast<double>(k);
    const double lnk = lg(nn / kk), lk = lg(kk), ln = lg(nn);
    const double front_depth = 2 * lk + lnk * lnk;  // mux + small sorter + demux
    const double eq16 = lnk + 2 * ln * lnk + 2 * lk * lk;
    EXPECT_LE(total_depth - front_depth, eq16) << "n=" << n << " k=" << k;
  }
}

TEST(FishSorter, PipelinedTimeMatchesScheduleCriticalPath) {
  for (std::size_t n : {64u, 256u}) {
    FishSorter s(n, FishSorter::default_k(n));
    const auto t = s.timing();
    EXPECT_DOUBLE_EQ(s.schedule(true).critical_path(), t.total_pipelined) << n;
    EXPECT_DOUBLE_EQ(s.schedule(false).critical_path(), t.total_unpipelined) << n;
  }
}

}  // namespace
}  // namespace absort::sorters
